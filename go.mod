module hipcloud

go 1.22
