// Command hiplint runs the repo's custom static-analysis suite
// (internal/analysis) over the given package patterns and exits non-zero
// on findings. It is wired into `make lint` and the `make check` gate.
//
// Usage:
//
//	hiplint [-checks bufown,secflow,...] [-list] [-waivers] [-counts] [patterns...]
//
// Patterns default to ./... and accept directories or module import
// paths, recursively with /... . All matched packages are loaded into one
// program, so the interprocedural analyzers (secflow, lockorder, and the
// summary-aware bufown/simdet/schedblock) see cross-package call chains.
// Findings print as
//
//	file:line:col: [check] message
//
// and can be waived at the source line with //lint:allow <check> <reason>
// (the reason is mandatory; a bare waiver, an unknown check name, or a
// waiver that suppresses nothing is itself a finding).
//
// -waivers lists every active //lint:allow with file:line and reason
// instead of running the checks; -counts runs the checks and prints
// per-analyzer finding counts as JSON (exit 0 regardless), for tracking
// the finding trajectory across PRs via `make lint-fix-scan`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"hipcloud/internal/analysis"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	waivers := flag.Bool("waivers", false, "report every active //lint:allow waiver and exit")
	counts := flag.Bool("counts", false, "print per-analyzer finding counts as JSON (always exit 0)")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *checks != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*checks, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "hiplint:", err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader("")
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiplint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiplint:", err)
		os.Exit(2)
	}

	if *waivers {
		ws := analysis.CollectWaivers(pkgs)
		for _, w := range ws {
			fmt.Printf("%s:%d: [%s] %s\n", w.Pos.Filename, w.Pos.Line, w.Check, w.Reason)
		}
		fmt.Printf("%d active waiver(s)\n", len(ws))
		return
	}

	prog := analysis.NewProgram(pkgs)
	diags := analysis.RunProgram(prog, analyzers)

	if *counts {
		byCheck := map[string]int{}
		for _, a := range analyzers {
			byCheck[a.Name] = 0
		}
		byCheck["lint"] = 0
		for _, d := range diags {
			byCheck[d.Check]++
		}
		out := struct {
			Findings map[string]int `json:"findings"`
			Total    int            `json:"total"`
			Waivers  int            `json:"waivers"`
		}{Findings: byCheck, Total: len(diags), Waivers: len(analysis.CollectWaivers(pkgs))}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "hiplint:", err)
			os.Exit(2)
		}
		return
	}

	failed := false
	for _, d := range diags {
		fmt.Println(d)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
