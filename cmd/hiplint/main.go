// Command hiplint runs the repo's custom static-analysis suite
// (internal/analysis) over the given package patterns and exits non-zero
// on findings. It is wired into `make lint` and the `make check` gate.
//
// Usage:
//
//	hiplint [-checks bufown,appendalias,...] [-list] [patterns...]
//
// Patterns default to ./... and accept directories or module import
// paths, recursively with /... . Findings print as
//
//	file:line:col: [check] message
//
// and can be waived at the source line with //lint:allow <check> <reason>
// (the reason is mandatory; a bare waiver is itself a finding).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hipcloud/internal/analysis"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *checks != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*checks, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "hiplint:", err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader("")
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiplint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiplint:", err)
		os.Exit(2)
	}

	failed := false
	for _, pkg := range pkgs {
		for _, d := range analysis.Run(pkg, analyzers) {
			fmt.Println(d)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
