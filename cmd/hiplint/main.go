// Command hiplint runs the repo's custom static-analysis suite
// (internal/analysis) over the given package patterns and exits non-zero
// on findings. It is wired into `make lint` and the `make check` gate.
//
// Usage:
//
//	hiplint [-checks bufown,secflow,...] [-list] [-waivers] [-counts] [-budget [-write]] [patterns...]
//
// Patterns default to ./... and accept directories or module import
// paths, recursively with /... . All matched packages are loaded into one
// program, so the interprocedural analyzers (secflow, lockorder, and the
// summary-aware bufown/simdet/schedblock) see cross-package call chains.
// Findings print as
//
//	file:line:col: [check] message
//
// and can be waived at the source line with //lint:allow <check> <reason>
// (the reason is mandatory; a bare waiver, an unknown check name, or a
// waiver that suppresses nothing is itself a finding).
//
// -waivers lists every active //lint:allow with file:line and reason
// instead of running the checks; -counts runs the checks and prints
// per-analyzer finding counts as JSON (exit 0 regardless), for tracking
// the finding trajectory across PRs via `make lint-fix-scan`.
//
// -budget runs the compiler-diagnostic layer of the hotpath contract
// instead of the AST analyzers: it rebuilds the module with
// -gcflags='-m=2 -d=ssa/check_bce/debug=1', folds the escape and
// bounds-check diagnostics onto the hotpath hot set, and compares the
// per-function counts against the tracked LINT_BUDGET.json at the module
// root. Any drift fails: regressions must be fixed, improvements must be
// committed by regenerating the snapshot with -budget -write (wired as
// `make lint-budget`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hipcloud/internal/analysis"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	waivers := flag.Bool("waivers", false, "report every active //lint:allow waiver and exit")
	counts := flag.Bool("counts", false, "print per-analyzer finding counts as JSON (always exit 0)")
	budget := flag.Bool("budget", false, "check compiler escape/bounds diagnostics over the hot set against LINT_BUDGET.json")
	write := flag.Bool("write", false, "with -budget: regenerate LINT_BUDGET.json instead of diffing")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *checks != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*checks, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "hiplint:", err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader("")
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiplint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiplint:", err)
		os.Exit(2)
	}

	if *waivers {
		ws := analysis.CollectWaivers(pkgs)
		for _, w := range ws {
			fmt.Printf("%s:%d: [%s] %s\n", w.Pos.Filename, w.Pos.Line, w.Check, w.Reason)
		}
		fmt.Printf("%d active waiver(s)\n", len(ws))
		return
	}

	prog := analysis.NewProgram(pkgs)

	if *budget {
		cur, err := analysis.ComputeBudget(prog, "go", loader.ModRoot, loader.ModPath, patterns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hiplint:", err)
			os.Exit(2)
		}
		budgetPath := filepath.Join(loader.ModRoot, analysis.BudgetFile)
		if *write {
			if err := analysis.WriteBudget(budgetPath, cur); err != nil {
				fmt.Fprintln(os.Stderr, "hiplint:", err)
				os.Exit(2)
			}
			esc, bnd := analysis.BudgetTotals(cur)
			fmt.Printf("wrote %s: %d hot function(s), %d escape(s), %d retained bounds check(s)\n",
				analysis.BudgetFile, len(cur.Functions), esc, bnd)
			return
		}
		tracked, err := analysis.LoadBudget(budgetPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hiplint:", err)
			os.Exit(2)
		}
		drift := analysis.DiffBudget(tracked, cur)
		for _, d := range drift {
			fmt.Println(d)
		}
		if len(drift) > 0 {
			fmt.Printf("%d function(s) drifted from %s; fix regressions, then `make lint-budget` and commit\n",
				len(drift), analysis.BudgetFile)
			os.Exit(1)
		}
		return
	}

	diags := analysis.RunProgram(prog, analyzers)

	if *counts {
		byCheck := map[string]int{}
		for _, a := range analyzers {
			byCheck[a.Name] = 0
		}
		byCheck["lint"] = 0
		for _, d := range diags {
			byCheck[d.Check]++
		}
		out := struct {
			Findings map[string]int `json:"findings"`
			Total    int            `json:"total"`
			Waivers  int            `json:"waivers"`
			Budget   map[string]int `json:"budget"`
		}{Findings: byCheck, Total: len(diags), Waivers: len(analysis.CollectWaivers(pkgs)), Budget: map[string]int{}}
		// Fold in the budget-layer trajectory (hot-set size plus compiler
		// escape/bounds totals); a failed diagnostic build degrades to
		// zeros rather than failing the report.
		if cur, err := analysis.ComputeBudget(prog, "go", loader.ModRoot, loader.ModPath, patterns); err == nil {
			esc, bnd := analysis.BudgetTotals(cur)
			out.Budget["functions"] = len(cur.Functions)
			out.Budget["escapes"] = esc
			out.Budget["bounds"] = bnd
		} else {
			fmt.Fprintln(os.Stderr, "hiplint: budget layer skipped:", err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "hiplint:", err)
			os.Exit(2)
		}
		return
	}

	failed := false
	for _, d := range diags {
		fmt.Println(d)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
