package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"hipcloud/internal/experiments"
	"hipcloud/internal/secio"
)

// stormScenarioJSON is one transport tier's column of BENCH_CONTROL.json.
type stormScenarioJSON struct {
	Scenario   string `json:"scenario"`
	Clients    int    `json:"clients"`
	ContactsOK int    `json:"contacts_ok"`
	Redials    int    `json:"redials"`
	EchoOK     int    `json:"echo_ok"`
	EchoFail   int    `json:"echo_fail"`
	Recontacts int    `json:"recontacts"`
	// Re-contact latency: dead-peer detection to restored service.
	RecontactP50Ms float64 `json:"recontact_p50_ms"`
	RecontactP99Ms float64 `json:"recontact_p99_ms"`
	// Dipped: connectivity fell below 95% after the evacuation.
	// RecoveryMs is evacuation-to-95%-reconnected; 0 with dipped=true
	// means the herd never recovered inside the run.
	Dipped     bool    `json:"dipped"`
	RecoveryMs float64 `json:"recovery_ms"`
	// Backpressure counters: HIP responder admission queue, rendezvous
	// relay rate limiter, DNS server pending-queue shedding.
	CtlShed uint64 `json:"ctl_shed"`
	RVSShed uint64 `json:"rvs_shed"`
	DNSShed uint64 `json:"dns_shed"`
	// HIP control-plane retransmissions across all hosts — the
	// amplification the jittered capped backoff must bound.
	Retransmits uint64 `json:"retransmits"`
}

// stormBenchReport is the BENCH_CONTROL.json document: the storm
// experiment's per-tier resilience numbers at the tracked configuration.
type stormBenchReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	Seed        int64  `json:"seed"`
	// Schedule parameters, so the numbers are interpretable standalone.
	VirtualDurationS float64             `json:"virtual_duration_s"`
	Servers          int                 `json:"servers"`
	Clients          int                 `json:"clients"`
	Schedule         string              `json:"schedule"`
	Scenarios        []stormScenarioJSON `json:"scenarios"`
}

// runStormBench runs the storm experiment and, with jsonOut, emits the
// BENCH_CONTROL.json document on stdout (progress goes to stderr so stdout
// stays valid JSON for redirection).
func runStormBench(seed int64, short, jsonOut bool) {
	cfg := experiments.StormConfig{Seed: seed}
	if short {
		cfg.Duration = 12 * time.Second
		cfg.Servers = 4
		cfg.Clients = 48
	}
	if !jsonOut {
		fmt.Println("running storm (evacuation + re-contact herd, 3 scenarios)...")
		_, tbl := experiments.RunStorm(cfg)
		fmt.Println(tbl)
		return
	}

	fmt.Fprintln(os.Stderr, "storm: evacuation + re-contact herd, 3 scenarios...")
	results, _ := experiments.RunStorm(cfg)
	cfg.Duration = 60 * time.Second // mirror fill() for the report header
	if short {
		cfg.Duration = 12 * time.Second
	}
	rep := stormBenchReport{
		GeneratedBy:      "go run ./cmd/benchcloud -run storm -json (via make bench)",
		GoVersion:        runtime.Version(),
		Seed:             seed,
		VirtualDurationS: cfg.Duration.Seconds(),
		Servers:          cfg.Servers,
		Clients:          cfg.Clients,
		Schedule: "0.30D inter-zone loss 8% for 0.25D; 0.35D zone-a host 0 fails, " +
			"all service VMs evacuate at once; 0.36D DNS CPU stall for 0.06D",
	}
	if rep.Servers == 0 {
		rep.Servers = 8
	}
	if rep.Clients == 0 {
		rep.Clients = 500
	}
	for _, r := range results {
		rep.Scenarios = append(rep.Scenarios, stormScenarioJSON{
			Scenario:       kindName(r.Kind),
			Clients:        r.Clients,
			ContactsOK:     r.ContactsOK,
			Redials:        r.Redials,
			EchoOK:         r.EchoOK,
			EchoFail:       r.EchoFail,
			Recontacts:     r.Recontacts,
			RecontactP50Ms: float64(r.RecontactP50) / 1e6,
			RecontactP99Ms: float64(r.RecontactP99) / 1e6,
			Dipped:         r.Dipped,
			RecoveryMs:     float64(r.Recovery) / 1e6,
			CtlShed:        r.CtlShed,
			RVSShed:        r.RVSShed,
			DNSShed:        r.DNSShed,
			Retransmits:    r.Retransmits,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "storm:", err)
		os.Exit(1)
	}
}

func kindName(k secio.Kind) string {
	switch k {
	case secio.HIP:
		return "hip"
	case secio.SSL:
		return "ssl"
	default:
		return "basic"
	}
}
