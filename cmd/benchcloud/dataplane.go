package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"runtime"
	"time"

	"hipcloud/internal/esp"
	"hipcloud/internal/hip"
	"hipcloud/internal/hipudp"
	"hipcloud/internal/identity"
	"hipcloud/internal/keymat"
)

// dataplanePayload is the packet size every dataplane number is quoted
// at — the same 1400-byte near-MTU payload the esp benchmarks use.
const dataplanePayload = 1400

// dataplaneSuiteNumbers is one crypto row of BENCH_DATAPLANE.json.
type dataplaneSuiteNumbers struct {
	Suite string `json:"suite"`
	// SealGBps/OpenGBps are single-core steady-state throughput of the
	// zero-copy SealAppend/OpenAppend paths over 1400-byte payloads.
	SealGBps float64 `json:"seal_gb_per_s"`
	OpenGBps float64 `json:"open_gb_per_s"`
	// SealNsPerPkt is the per-packet latency view of the same number.
	SealNsPerPkt float64 `json:"seal_ns_per_pkt"`
}

// dataplaneUDPNumbers is one socket-engine row of BENCH_DATAPLANE.json:
// a localhost hipudp stream transfer with the engine configured on or
// off, plus the syscall amortization the engine achieved.
type dataplaneUDPNumbers struct {
	Batching bool `json:"batching"`
	// GoodputMbps is application payload bits per wall-clock second for
	// a one-way localhost stream transfer (full HIP/ESP framing).
	GoodputMbps float64 `json:"goodput_mbit_per_s"`
	// TxSyscallsPerPkt / RxSyscallsPerPkt are the dialer's send/receive
	// syscalls divided by datagrams moved; < 1.0 means mmsg batching is
	// coalescing, == 1.0 is the classic one-syscall-per-packet driver.
	TxSyscallsPerPkt float64 `json:"tx_syscalls_per_pkt"`
	RxSyscallsPerPkt float64 `json:"rx_syscalls_per_pkt"`
	TxPackets        uint64  `json:"tx_packets"`
}

// dataplaneReport is the BENCH_DATAPLANE.json document.
type dataplaneReport struct {
	GeneratedBy  string                  `json:"generated_by"`
	GoVersion    string                  `json:"go_version"`
	PayloadBytes int                     `json:"payload_bytes"`
	VectoredIO   bool                    `json:"vectored_io"`
	Suites       []dataplaneSuiteNumbers `json:"suites"`
	UDP          []dataplaneUDPNumbers   `json:"udp_localhost"`
}

// dataplaneSuites are the suites the report tracks: the paper-era pair,
// then the modern AEAD set the negotiation prefers.
var dataplaneSuites = []keymat.Suite{
	keymat.SuiteAESCTRSHA256,
	keymat.SuiteAESCBCSHA256,
	keymat.SuiteAESGCM128,
	keymat.SuiteAESGCM256,
	keymat.SuiteChaCha20Poly1305,
}

// benchSuite measures SealAppend and OpenAppend throughput for one
// suite. Open works over a pre-sealed ring of packets re-opened through
// fresh inbound SAs, so the replay window never interferes.
func benchSuite(s keymat.Suite, measure time.Duration) (dataplaneSuiteNumbers, error) {
	encLen, err := s.EncKeyLen()
	if err != nil {
		return dataplaneSuiteNumbers{}, err
	}
	authLen, err := s.AuthKeyLen()
	if err != nil {
		return dataplaneSuiteNumbers{}, err
	}
	encKey := bytes.Repeat([]byte{0x17}, encLen)
	authKey := bytes.Repeat([]byte{0x2B}, authLen)
	out, err := esp.NewOutbound(1, s, encKey, authKey)
	if err != nil {
		return dataplaneSuiteNumbers{}, err
	}
	payload := bytes.Repeat([]byte{0x5A}, dataplanePayload)
	dst := make([]byte, 0, out.SealedLen(dataplanePayload))

	// Seal throughput.
	var sealOps int
	start := time.Now()
	for time.Since(start) < measure {
		for i := 0; i < 256; i++ {
			dst, err = out.SealAppend(dst[:0], payload)
			if err != nil {
				return dataplaneSuiteNumbers{}, err
			}
		}
		sealOps += 256
	}
	sealDur := time.Since(start)

	// Open throughput: seal a ring of packets once, then re-open it
	// through fresh inbound SAs (one NewInbound per 1024 opens is noise).
	ringOut, err := esp.NewOutbound(2, s, encKey, authKey)
	if err != nil {
		return dataplaneSuiteNumbers{}, err
	}
	const ring = 1024
	pkts := make([][]byte, ring)
	for i := range pkts {
		pkts[i], err = ringOut.Seal(payload)
		if err != nil {
			return dataplaneSuiteNumbers{}, err
		}
	}
	open := make([]byte, 0, dataplanePayload+64)
	var openOps int
	start = time.Now()
	for time.Since(start) < measure {
		in, err := esp.NewInbound(2, s, encKey, authKey)
		if err != nil {
			return dataplaneSuiteNumbers{}, err
		}
		for _, pkt := range pkts {
			open, err = in.OpenAppend(open[:0], pkt)
			if err != nil {
				return dataplaneSuiteNumbers{}, err
			}
		}
		openOps += ring
	}
	openDur := time.Since(start)

	gbps := func(ops int, d time.Duration) float64 {
		return float64(ops) * dataplanePayload / d.Seconds() / 1e9
	}
	return dataplaneSuiteNumbers{
		Suite:        s.String(),
		SealGBps:     round3(gbps(sealOps, sealDur)),
		OpenGBps:     round3(gbps(openOps, openDur)),
		SealNsPerPkt: round3(float64(sealDur.Nanoseconds()) / float64(sealOps)),
	}, nil
}

// benchUDP runs a one-way localhost stream transfer between two fresh
// stacks and reports goodput plus the dialer's syscall amortization.
func benchUDP(opts hipudp.Options, totalBytes int) (dataplaneUDPNumbers, error) {
	idI := identity.MustGenerate(identity.AlgECDSA)
	idR := identity.MustGenerate(identity.AlgECDSA)
	mk := func(id *identity.HostIdentity) (*hipudp.Stack, error) {
		h, err := hip.NewHost(hip.Config{Identity: id, Locator: netip.MustParseAddr("127.0.0.1")})
		if err != nil {
			return nil, err
		}
		return hipudp.NewStackOpts(h, "127.0.0.1:0", opts)
	}
	a, err := mk(idI)
	if err != nil {
		return dataplaneUDPNumbers{}, err
	}
	defer a.Close()
	b, err := mk(idR)
	if err != nil {
		return dataplaneUDPNumbers{}, err
	}
	defer b.Close()
	epA := netip.AddrPortFrom(netip.MustParseAddr("127.0.0.1"), uint16(a.LocalAddr().Port))
	epB := netip.AddrPortFrom(netip.MustParseAddr("127.0.0.1"), uint16(b.LocalAddr().Port))
	a.AddPeer(idR.HIT(), epB)
	b.AddPeer(idI.HIT(), epA)

	l, err := b.Listen(5001)
	if err != nil {
		return dataplaneUDPNumbers{}, err
	}
	// Sink: drain the stream, then echo one byte so the sender knows
	// every payload byte was delivered (not just buffered).
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 64*1024)
		for n := 0; n < totalBytes; {
			rn, err := c.Read(buf)
			if err != nil {
				return
			}
			n += rn
		}
		c.Write([]byte{1})
	}()

	c, err := a.Dial(idR.HIT(), 5001, 10*time.Second)
	if err != nil {
		return dataplaneUDPNumbers{}, err
	}
	defer c.Close()
	msg := make([]byte, 16*1024)
	start := time.Now()
	for n := 0; n < totalBytes; n += len(msg) {
		if _, err := c.Write(msg); err != nil {
			return dataplaneUDPNumbers{}, err
		}
	}
	ack := make([]byte, 1)
	if _, err := c.Read(ack); err != nil {
		return dataplaneUDPNumbers{}, err
	}
	elapsed := time.Since(start)

	st := a.Stats()
	perPkt := func(sys, pkts uint64) float64 {
		if pkts == 0 {
			return 0
		}
		return round3(float64(sys) / float64(pkts))
	}
	return dataplaneUDPNumbers{
		Batching:         opts.TxShards > 0 || opts.RxBatch > 1,
		GoodputMbps:      round3(float64(totalBytes) * 8 / elapsed.Seconds() / 1e6),
		TxSyscallsPerPkt: perPkt(st.TxSyscalls, st.TxPackets+st.TxErrors),
		RxSyscallsPerPkt: perPkt(st.RxSyscalls, st.RxPackets),
		TxPackets:        st.TxPackets,
	}, nil
}

func round3(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }

// runDataplaneBench produces the BENCH_DATAPLANE.json document (or a
// human-readable table without -json).
func runDataplaneBench(jsonOut bool) {
	rep := dataplaneReport{
		GeneratedBy:  "benchcloud -run dataplane",
		GoVersion:    runtime.Version(),
		PayloadBytes: dataplanePayload,
		VectoredIO:   hipudp.VectoredIO(),
	}
	for _, s := range dataplaneSuites {
		row, err := benchSuite(s, 300*time.Millisecond)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dataplane:", err)
			os.Exit(1)
		}
		rep.Suites = append(rep.Suites, row)
	}
	const transfer = 8 << 20
	for _, opts := range []hipudp.Options{{}, hipudp.DefaultOptions()} {
		row, err := benchUDP(opts, transfer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dataplane udp:", err)
			os.Exit(1)
		}
		rep.UDP = append(rep.UDP, row)
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
		return
	}
	fmt.Printf("ESP data plane, %d-byte payloads (single core):\n", dataplanePayload)
	fmt.Printf("  %-22s %12s %12s %14s\n", "suite", "seal GB/s", "open GB/s", "seal ns/pkt")
	for _, r := range rep.Suites {
		fmt.Printf("  %-22s %12.3f %12.3f %14.1f\n", r.Suite, r.SealGBps, r.OpenGBps, r.SealNsPerPkt)
	}
	fmt.Printf("hipudp localhost stream, %d MiB transfer (vectored I/O compiled: %v):\n",
		transfer>>20, rep.VectoredIO)
	fmt.Printf("  %-10s %14s %18s %18s\n", "batching", "goodput Mb/s", "tx syscalls/pkt", "rx syscalls/pkt")
	for _, r := range rep.UDP {
		fmt.Printf("  %-10v %14.1f %18.3f %18.3f\n", r.Batching, r.GoodputMbps, r.TxSyscallsPerPkt, r.RxSyscallsPerPkt)
	}
}
