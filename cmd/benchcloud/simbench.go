package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"hipcloud/internal/experiments"
	"hipcloud/internal/netsim"
)

// simBenchBaseline records the measurements taken on this machine
// immediately before the run-to-completion rewrite (parked-goroutine
// packet pumps over a closure-allocating binary heap), so BENCH_SIM.json
// always carries its own point of comparison.
var simBenchBaseline = simBenchNumbers{
	DenseEventNs:    125.0,
	ProcHandoffNs:   891.5,
	Fig2ShortWallS:  29.4,
	ChaosShortWallS: 3.3,
}

// simBenchNumbers is one column of BENCH_SIM.json: scheduler microbench
// latencies plus end-to-end wall clock for the two tracked experiments.
type simBenchNumbers struct {
	// DenseEventNs is ns per fired event with the queue kept hot by
	// self-rescheduling handlers — raw scheduler dispatch cost.
	DenseEventNs float64 `json:"dense_event_ns_per_op"`
	// TimerResetFireNs is ns per Reset+fire cycle including a superseded
	// deadline (the simtcp/hipsim service-loop pattern). Zero in the
	// baseline column: the old scheduler had no re-armable Timer.
	TimerResetFireNs float64 `json:"timer_reset_fire_ns_per_op,omitempty"`
	// SleepWakeNs is ns per Proc.Sleep round trip (park, wheel, resume).
	SleepWakeNs float64 `json:"sleep_wake_ns_per_op,omitempty"`
	// ProcHandoffNs is ns per two-process wait-queue round trip — the
	// cost every packet paid pre-rewrite, now only process code pays.
	ProcHandoffNs float64 `json:"proc_handoff_ns_per_op"`
	// Fig2ShortWallS / ChaosShortWallS are wall-clock seconds for
	// `-run fig2 -short` and `-run chaos -short` at seed 1.
	Fig2ShortWallS  float64 `json:"fig2_short_wall_s"`
	ChaosShortWallS float64 `json:"chaos_short_wall_s"`
}

// simBenchReport is the BENCH_SIM.json document.
type simBenchReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	Seed        int64  `json:"seed"`
	// Baseline is the pre-rewrite measurement this report compares
	// against; Current is this run.
	Baseline simBenchNumbers `json:"baseline_pre_rewrite"`
	Current  simBenchNumbers `json:"current"`
	// DenseEventsPerSec is Current.DenseEventNs as a rate, for the
	// headline "events per second" number.
	DenseEventsPerSec float64 `json:"dense_events_per_sec"`
	// Speedup columns: baseline / current, so >1 is faster.
	SpeedupDenseEvents float64 `json:"speedup_dense_events"`
	// SpeedupHotPath compares the old per-packet cost (goroutine
	// handoff) against the new one (run-to-completion dispatch): the
	// packet pumps moved between those two regimes.
	SpeedupHotPath  float64 `json:"speedup_hot_path"`
	SpeedupFig2Wall float64 `json:"speedup_fig2_wall"`
	SpeedupChaos    float64 `json:"speedup_chaos_wall"`
}

// benchDenseEvents measures raw dispatch: n self-rescheduling events.
func benchDenseEvents(seed int64, n int) float64 {
	s := netsim.New(seed)
	fired := 0
	var fn func()
	fn = func() {
		fired++
		if fired < n {
			s.After(time.Microsecond, fn)
		}
	}
	s.After(0, fn)
	start := time.Now()
	s.Run(0)
	return float64(time.Since(start)) / float64(n)
}

// benchTimerResetFire measures the service-loop deadline pattern: a timer
// re-arming itself twice per fire (one superseded deadline per cycle).
func benchTimerResetFire(seed int64, n int) float64 {
	s := netsim.New(seed)
	fired := 0
	var tm *netsim.Timer
	tm = s.NewTimer(func() {
		fired++
		if fired < n {
			tm.Reset(s.Now() + 20*time.Microsecond)
			tm.Reset(s.Now() + 10*time.Microsecond)
		}
	})
	tm.Reset(10 * time.Microsecond)
	start := time.Now()
	s.Run(0)
	return float64(time.Since(start)) / float64(n)
}

// benchSleepWake measures one process sleeping in a loop.
func benchSleepWake(seed int64, n int) float64 {
	s := netsim.New(seed)
	s.Spawn("sleeper", func(p *netsim.Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(10 * time.Microsecond)
		}
	})
	start := time.Now()
	s.Run(0)
	d := time.Since(start)
	s.Shutdown()
	return float64(d) / float64(n)
}

// benchProcHandoff measures two processes ping-ponging via wait queues.
func benchProcHandoff(seed int64, n int) float64 {
	s := netsim.New(seed)
	q1, q2 := netsim.NewWaitQueue(s), netsim.NewWaitQueue(s)
	s.Spawn("a", func(p *netsim.Proc) {
		for i := 0; i < n; i++ {
			q1.Wait(p, 0)
			q2.WakeOne()
		}
	})
	s.Spawn("b", func(p *netsim.Proc) {
		for i := 0; i < n; i++ {
			q1.WakeOne()
			q2.Wait(p, 0)
		}
	})
	start := time.Now()
	s.Run(0)
	d := time.Since(start)
	s.Shutdown()
	return float64(d) / float64(n)
}

// runSimBench produces the BENCH_SIM.json report: scheduler microbenches
// plus wall clock for the short fig2 and chaos runs (stderr keeps the
// human progress so stdout stays valid JSON for redirection).
func runSimBench(seed int64, jsonOut bool) {
	progress := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	rep := simBenchReport{
		GeneratedBy: "go run ./cmd/benchcloud -run simbench -json (via make bench)",
		GoVersion:   runtime.Version(),
		Seed:        seed,
		Baseline:    simBenchBaseline,
	}

	progress("simbench: dense events...")
	rep.Current.DenseEventNs = benchDenseEvents(seed, 5_000_000)
	progress("simbench: timer reset+fire...")
	rep.Current.TimerResetFireNs = benchTimerResetFire(seed, 2_000_000)
	progress("simbench: proc sleep/wake...")
	rep.Current.SleepWakeNs = benchSleepWake(seed, 1_000_000)
	progress("simbench: proc handoff...")
	rep.Current.ProcHandoffNs = benchProcHandoff(seed, 500_000)

	progress("simbench: fig2 -short wall clock (3 scenarios x 8 client counts)...")
	start := time.Now()
	experiments.RunFig2(experiments.Fig2Config{Duration: 8 * time.Second, Seed: seed})
	rep.Current.Fig2ShortWallS = time.Since(start).Seconds()

	progress("simbench: chaos -short wall clock (3 scenarios)...")
	start = time.Now()
	experiments.RunChaos(experiments.ChaosConfig{Duration: 12 * time.Second, Seed: seed})
	rep.Current.ChaosShortWallS = time.Since(start).Seconds()

	rep.DenseEventsPerSec = 1e9 / rep.Current.DenseEventNs
	rep.SpeedupDenseEvents = rep.Baseline.DenseEventNs / rep.Current.DenseEventNs
	rep.SpeedupHotPath = rep.Baseline.ProcHandoffNs / rep.Current.DenseEventNs
	rep.SpeedupFig2Wall = rep.Baseline.Fig2ShortWallS / rep.Current.Fig2ShortWallS
	rep.SpeedupChaos = rep.Baseline.ChaosShortWallS / rep.Current.ChaosShortWallS

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("scheduler: dense %.1f ns/event (%.2fM events/s), timer %.1f ns/cycle, sleep/wake %.1f ns, handoff %.1f ns\n",
		rep.Current.DenseEventNs, rep.DenseEventsPerSec/1e6,
		rep.Current.TimerResetFireNs, rep.Current.SleepWakeNs, rep.Current.ProcHandoffNs)
	fmt.Printf("wall clock: fig2 -short %.1fs (was %.1fs), chaos -short %.1fs (was %.1fs)\n",
		rep.Current.Fig2ShortWallS, rep.Baseline.Fig2ShortWallS,
		rep.Current.ChaosShortWallS, rep.Baseline.ChaosShortWallS)
	fmt.Printf("speedup: %.1fx dense events, %.1fx hot path vs goroutine handoff, %.1fx fig2, %.1fx chaos\n",
		rep.SpeedupDenseEvents, rep.SpeedupHotPath, rep.SpeedupFig2Wall, rep.SpeedupChaos)
}
