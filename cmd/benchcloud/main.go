// Command benchcloud regenerates every table and figure of the paper's
// evaluation section inside the simulated testbed:
//
//	benchcloud -run fig2      Figure 2: RUBiS throughput vs concurrent clients
//	benchcloud -run rtt       §V-B: response times at 120 req/s
//	benchcloud -run fig3      Figure 3: iperf + RTT across connectivity modes
//	benchcloud -run private   Figure 2 workload on the OpenNebula profile
//	benchcloud -run bex       §IV-B: base-exchange and puzzle cost analysis
//	benchcloud -run dos       §IV-B: BEX flood, fixed vs adaptive puzzles
//	benchcloud -run chaos     fault schedule: request loss + recovery per scenario
//	benchcloud -run storm     control-plane overload: host evacuation under a
//	                          re-contact herd (-json emits BENCH_CONTROL.json)
//	benchcloud -run all       everything above
//	benchcloud -run simbench  scheduler throughput + experiment wall clock
//	                          (not part of `all`; -json emits BENCH_SIM.json)
//	benchcloud -run dataplane ESP seal/open throughput per cipher suite +
//	                          real-UDP localhost goodput and syscall
//	                          amortization (not part of `all`; -json emits
//	                          BENCH_DATAPLANE.json)
//
// Durations are virtual time; -short trims them for quick runs.
// -cpuprofile writes a pprof CPU profile covering the selected runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"hipcloud/internal/cloud"
	"hipcloud/internal/experiments"
	"hipcloud/internal/keymat"
)

func main() {
	run := flag.String("run", "all", "experiment: fig2|rtt|fig3|private|bex|dos|chaos|storm|simbench|dataplane|all")
	short := flag.Bool("short", false, "shorter virtual durations")
	seed := flag.Int64("seed", 1, "simulation seed")
	jsonOut := flag.Bool("json", false, "simbench/storm/dataplane: emit the BENCH_SIM.json / BENCH_CONTROL.json / BENCH_DATAPLANE.json document on stdout")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	modern := flag.Bool("modern", false, "fig3: negotiate the modern AEAD HIP_CIPHER set (keymat.PreferredAEAD) instead of the 2012 transforms")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	dur := 30 * time.Second
	if *short {
		dur = 8 * time.Second
	}

	want := func(name string) bool {
		return *run == "all" || strings.Contains(*run, name)
	}
	ran := false

	if want("fig2") {
		ran = true
		fmt.Println("running fig2 (this sweeps 3 scenarios x 8 client counts)...")
		_, tbl := experiments.RunFig2(experiments.Fig2Config{Duration: dur, Seed: *seed})
		fmt.Println(tbl)
	}
	if want("rtt") {
		ran = true
		_, tbl := experiments.RunResponseTimes(experiments.RTConfig{Duration: dur, Seed: *seed})
		fmt.Println(tbl)
	}
	if want("fig3") {
		ran = true
		var suites []keymat.Suite
		if *modern {
			suites = keymat.PreferredAEAD
		}
		_, tbl, err := experiments.RunFig3(experiments.Fig3Config{Seed: *seed, Suites: suites})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig3:", err)
			os.Exit(1)
		}
		fmt.Println(tbl)
	}
	if want("private") {
		ran = true
		fmt.Println("running private-cloud cross-check (OpenNebula profile)...")
		_, tbl := experiments.RunFig2(experiments.Fig2Config{
			Profile: cloud.OpenNebula, Duration: dur, Seed: *seed,
			Clients: []int{2, 6, 20, 50},
		})
		fmt.Println(tbl)
		_, rt := experiments.RunResponseTimes(experiments.RTConfig{Profile: cloud.OpenNebula, Duration: dur, Seed: *seed})
		fmt.Println(rt)
	}
	if want("dos") {
		ran = true
		fmt.Println("running DoS flood comparison (fixed vs adaptive puzzles)...")
		_, tbl, err := experiments.RunDoSTable(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dos:", err)
			os.Exit(1)
		}
		fmt.Println(tbl)
	}
	if want("bex") {
		ran = true
		_, tbl, err := experiments.RunBEXTable(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bex:", err)
			os.Exit(1)
		}
		fmt.Println(tbl)
		_, ptbl := experiments.RunPuzzleSweep(nil, 16, *seed)
		fmt.Println(ptbl)
	}
	if want("chaos") {
		ran = true
		chaosDur := 45 * time.Second
		if *short {
			chaosDur = 12 * time.Second
		}
		fmt.Println("running chaos fault schedule (3 scenarios)...")
		_, tbl := experiments.RunChaos(experiments.ChaosConfig{Duration: chaosDur, Seed: *seed})
		fmt.Println(tbl)
	}
	if want("storm") {
		ran = true
		runStormBench(*seed, *short, *jsonOut)
	}
	if strings.Contains(*run, "simbench") {
		ran = true
		runSimBench(*seed, *jsonOut)
	}
	if strings.Contains(*run, "dataplane") {
		ran = true
		runDataplaneBench(*jsonOut)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
}
