// Command hipproxy is a real reverse HTTP proxy demonstrating the paper's
// end-to-middle deployment on a live machine: consumers speak plain HTTP
// to the front TCP port; the proxy forwards each request to backend web
// servers over HIP-protected streams (ESP over UDP), round-robin.
//
// A self-contained demo runs the backends in-process:
//
//	hipproxy -front 127.0.0.1:8080 -backends 2
//	curl http://127.0.0.1:8080/
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"net/netip"
	"sync"
	"time"

	"hipcloud/internal/hip"
	"hipcloud/internal/hipudp"
	"hipcloud/internal/identity"
	"hipcloud/internal/microhttp"
)

type backend struct {
	name  string
	hit   netip.Addr
	stack *hipudp.Stack
}

func main() {
	front := flag.String("front", "127.0.0.1:8080", "plain HTTP front address")
	nBack := flag.Int("backends", 2, "in-process demo backends")
	basePort := flag.Int("baseport", 10600, "first UDP port for HIP stacks")
	flag.Parse()

	// Proxy's own HIP stack.
	proxyStack := newStack("proxy", fmt.Sprintf("127.0.0.1:%d", *basePort))
	var backends []*backend
	for i := 0; i < *nBack; i++ {
		name := fmt.Sprintf("web%d", i+1)
		b := &backend{name: name, stack: newStack(name, fmt.Sprintf("127.0.0.1:%d", *basePort+1+i))}
		b.hit = b.stack.Host().HIT()
		proxyStack.AddPeer(b.hit, netip.MustParseAddrPort(fmt.Sprintf("127.0.0.1:%d", *basePort+1+i)))
		b.stack.AddPeer(proxyStack.Host().HIT(), netip.MustParseAddrPort(fmt.Sprintf("127.0.0.1:%d", *basePort)))
		backends = append(backends, b)
		go serveBackend(b)
	}

	ln, err := net.Listen("tcp", *front)
	if err != nil {
		log.Fatalf("front listen: %v", err)
	}
	fmt.Printf("hipproxy: plain HTTP on %s -> %d backends over HIP\n", *front, len(backends))
	for _, b := range backends {
		fmt.Printf("  backend %s HIT %v\n", b.name, b.hit)
	}

	var mu sync.Mutex
	next := 0
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			defer c.Close()
			br := bufio.NewReader(c)
			for {
				req, err := microhttp.ReadRequest(br)
				if err != nil {
					return
				}
				mu.Lock()
				b := backends[next%len(backends)]
				next++
				mu.Unlock()
				resp := forward(proxyStack, b, req)
				if err := microhttp.WriteResponse(c, resp); err != nil {
					return
				}
				if req.WantsClose() {
					return
				}
			}
		}(c)
	}
}

func forward(stack *hipudp.Stack, b *backend, req *microhttp.Request) *microhttp.Response {
	conn, err := stack.Dial(b.hit, 80, 5*time.Second)
	if err != nil {
		return &microhttp.Response{Status: 502, Body: []byte(err.Error())}
	}
	defer conn.Close()
	resp, err := microhttp.RoundTrip(conn, bufio.NewReader(conn), req)
	if err != nil {
		return &microhttp.Response{Status: 502, Body: []byte(err.Error())}
	}
	return resp
}

func newStack(name, listen string) *hipudp.Stack {
	id := identity.MustGenerate(identity.AlgECDSA)
	ap := netip.MustParseAddrPort(listen)
	host, err := hip.NewHost(hip.Config{Identity: id, Locator: ap.Addr(), DomainID: name})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	stack, err := hipudp.NewStack(host, listen)
	if err != nil {
		log.Fatalf("%s: bind %s: %v", name, listen, err)
	}
	return stack
}

// serveBackend answers HTTP over HIP streams with a tiny status page.
func serveBackend(b *backend) {
	l, err := b.stack.Listen(80)
	if err != nil {
		log.Fatalf("%s: %v", b.name, err)
	}
	served := 0
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			br := bufio.NewReader(conn)
			for {
				req, err := microhttp.ReadRequest(br)
				if err != nil {
					return
				}
				served++
				body := fmt.Sprintf("<html><body>served by %s over HIP (request #%d, path %s, peer %v)</body></html>\n",
					b.name, served, req.Path, conn.PeerHIT())
				resp := &microhttp.Response{
					Status:  200,
					Headers: map[string]string{"Content-Type": "text/html", "X-Served-By": b.name},
					Body:    []byte(body),
				}
				if err := microhttp.WriteResponse(conn, resp); err != nil {
					return
				}
				if req.WantsClose() {
					return
				}
			}
		}()
	}
}
