// Command hipd is a minimal HIP daemon over real UDP: it generates (or
// loads) a host identity, prints its HIT, and either serves an encrypted
// echo service or connects to a peer and round-trips a message through
// the BEET-ESP tunnel. Two terminals on one machine demonstrate the full
// base exchange:
//
//	terminal 1:  hipd -listen 127.0.0.1:10500
//	terminal 2:  hipd -listen 127.0.0.1:10501 \
//	                -peer <HIT-from-terminal-1>@127.0.0.1:10500 \
//	                -msg "hello over hip"
package main

import (
	"flag"
	"fmt"
	"log"
	"net/netip"
	"strings"
	"time"

	"hipcloud/internal/hip"
	"hipcloud/internal/hipudp"
	"hipcloud/internal/identity"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:10500", "UDP address to bind")
	peer := flag.String("peer", "", "peer as HIT@host:port (client mode)")
	msg := flag.String("msg", "ping over hip", "message to send in client mode")
	alg := flag.String("alg", "ecdsa", "host identity algorithm: rsa|ecdsa|ed25519")
	flag.Parse()

	var a identity.Algorithm
	switch *alg {
	case "rsa":
		a = identity.AlgRSA
	case "ed25519":
		a = identity.AlgEd25519
	default:
		a = identity.AlgECDSA
	}
	id, err := identity.Generate(a)
	if err != nil {
		log.Fatalf("generating identity: %v", err)
	}
	hostAddr, err := netip.ParseAddrPort(*listen)
	if err != nil {
		log.Fatalf("parsing -listen: %v", err)
	}
	host, err := hip.NewHost(hip.Config{Identity: id, Locator: hostAddr.Addr()})
	if err != nil {
		log.Fatalf("creating HIP host: %v", err)
	}
	stack, err := hipudp.NewStack(host, *listen)
	if err != nil {
		log.Fatalf("binding: %v", err)
	}
	defer stack.Close()
	fmt.Printf("hipd: HIT %v listening on %v (%v identity)\n", id.HIT(), stack.LocalAddr(), a)

	if *peer == "" {
		serve(stack)
		return
	}
	parts := strings.SplitN(*peer, "@", 2)
	if len(parts) != 2 {
		log.Fatalf("-peer must be HIT@host:port")
	}
	peerHIT, err := netip.ParseAddr(parts[0])
	if err != nil || !identity.IsHIT(peerHIT) {
		log.Fatalf("bad peer HIT %q", parts[0])
	}
	peerEP, err := netip.ParseAddrPort(parts[1])
	if err != nil {
		log.Fatalf("bad peer endpoint %q", parts[1])
	}
	stack.AddPeer(peerHIT, peerEP)

	start := time.Now()
	conn, err := stack.Dial(peerHIT, 7, 10*time.Second)
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	fmt.Printf("hipd: base exchange + stream handshake in %v\n", time.Since(start).Round(time.Millisecond))
	if _, err := conn.Write([]byte(*msg)); err != nil {
		log.Fatalf("write: %v", err)
	}
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		log.Fatalf("read: %v", err)
	}
	fmt.Printf("hipd: echo from %v: %q\n", conn.PeerHIT(), buf[:n])
	conn.Close()
}

// serve runs an encrypted echo service on stream port 7.
func serve(stack *hipudp.Stack) {
	l, err := stack.Listen(7)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	fmt.Println("hipd: echo service on HIP stream port 7; ctrl-c to stop")
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			buf := make([]byte, 4096)
			for {
				n, err := conn.Read(buf)
				if err != nil {
					return
				}
				fmt.Printf("hipd: %d bytes from %v\n", n, conn.PeerHIT())
				if _, err := conn.Write(buf[:n]); err != nil {
					return
				}
			}
		}()
	}
}
