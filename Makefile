GO ?= go

.PHONY: all check lint lint-budget budget lint-fix-scan vet build test race bench-smoke fuzz-smoke chaos-smoke storm-smoke bench bench-full

all: check

# The full pre-merge gate: the custom analyzer suite, the hot-path
# allocation budget, static checks, build, tests (incl. race on the
# concurrent packages), a quick allocation-guard smoke over the crypto
# fast paths, a short fuzz run over the wire-format parsers, and a
# short-seed chaos run (determinism plus HIP-recovers-the-migration, via
# the fault-injection harness), and a short-seed storm run
# (control-plane overload under mass evacuation).
check: lint budget vet build test race bench-smoke fuzz-smoke chaos-smoke storm-smoke

# hiplint (cmd/hiplint + internal/analysis) machine-checks the DESIGN.md
# §5a contracts: buffer ownership (bufown), append-API aliasing
# (appendalias), simulator determinism (simdet, schedblock), constant-time
# compares (ctcompare), lock discipline (lockedsend, lockorder), secret
# hygiene (secflow) and hot-path allocation idioms (hotpath). The whole
# module loads into one program so the interprocedural checks see
# cross-package call chains. Findings are waived only with
# //lint:allow <check> <reason>; the hot set carries zero waivers.
lint:
	$(GO) run ./cmd/hiplint ./...

# The compiler-diagnostic half of the hotpath contract: rebuild with
# -gcflags='-m=2 -d=ssa/check_bce/debug=1', fold escape and retained
# bounds-check diagnostics onto the hot set, and fail on ANY drift from
# the tracked LINT_BUDGET.json — regressions must be fixed, improvements
# committed via `make lint-budget`. The go build cache replays the
# diagnostics, so a clean tree re-checks in seconds.
budget:
	$(GO) run ./cmd/hiplint -budget ./...

# Regenerate LINT_BUDGET.json from the current tree; commit the result.
lint-budget:
	$(GO) run ./cmd/hiplint -budget -write ./...

# Reporting mode: per-analyzer finding counts as JSON (always exit 0),
# for tracking the finding trajectory across PRs.
lint-fix-scan:
	$(GO) run ./cmd/hiplint -counts ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race detection is scoped to the packages that actually run concurrent
# goroutines sharing state: netsim (scheduler handoff between process
# goroutines), simtcp and hipsim (pump/kernel processes over netsim),
# hipudp (real sockets: reader/timer goroutines vs callers), teredo
# (tunnel taps in scheduler context) and rubis (request handlers against
# the shared in-memory DB). rvs, hipdns and cloud are single-threaded
# sans-io today, but they sit directly on the control-plane path the
# concurrent layers drive, so they run under race too as cheap insurance
# against a goroutine slipping in. Everything else is sans-io
# single-threaded code already covered by `test`; re-running it under
# race only slowed the gate.
RACE_PKGS = ./internal/netsim ./internal/simtcp ./internal/hipsim \
	./internal/hipudp ./internal/teredo ./internal/rubis ./internal/faults \
	./internal/rvs ./internal/hipdns ./internal/cloud

race:
	$(GO) test -race $(RACE_PKGS)

# Fast allocation smoke: the Seal/Record benches report B/op and allocs/op;
# the AllocsPerRun guard tests (run by `test`) enforce the 0-alloc contract.
# The scheduler microbenches ride along so a regression in the
# run-to-completion core (event dispatch, timer churn) shows up in B/op
# before it shows up in BENCH_SIM.json.
bench-smoke:
	$(GO) test -run=NONE -bench='Seal|Record|EventThroughput|TimerResetFire|ProcSleepWake' \
		-benchtime=10x -benchmem \
		./internal/esp ./internal/tlslite ./internal/keymat ./internal/netsim

# Short fuzz pass over every wire-format fuzz target (go test allows one
# -fuzz pattern per invocation, hence one line per target), so the
# checked-in corpora and 30 s of fresh inputs run in the gate.
FUZZTIME ?= 30s

fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzOpen$$ -fuzztime=$(FUZZTIME) ./internal/esp
	$(GO) test -run=NONE -fuzz=FuzzSealOpenRoundTrip$$ -fuzztime=$(FUZZTIME) ./internal/esp
	$(GO) test -run=NONE -fuzz=FuzzReadRequest$$ -fuzztime=$(FUZZTIME) ./internal/microhttp
	$(GO) test -run=NONE -fuzz=FuzzReadResponse$$ -fuzztime=$(FUZZTIME) ./internal/microhttp
	$(GO) test -run=NONE -fuzz=FuzzParseMessage$$ -fuzztime=$(FUZZTIME) ./internal/hipdns

# Short-seed chaos run: drives the RUBiS tiers through the fault
# schedule (internal/faults) for all three scenarios and prints the
# recovery/request-loss table. Byte-identical output for a fixed seed.
chaos-smoke:
	$(GO) run ./cmd/benchcloud -run chaos -short -seed 1

# Short-seed storm run: evacuates every service VM off one physical host
# under inter-zone loss and a DNS CPU stall, and prints the re-contact /
# recovery / shed table per transport tier. Byte-identical for a fixed seed.
storm-smoke:
	$(GO) run ./cmd/benchcloud -run storm -short -seed 1

# Regenerate the tracked benchmark snapshots: BENCH_SIM.json (scheduler
# microbench latencies plus fig2/chaos short-run wall clock, against the
# recorded pre-rewrite baseline), BENCH_CONTROL.json (the full-scale
# storm experiment: re-contact latency, recovery time, shed and
# retransmit counts per transport tier) and BENCH_DATAPLANE.json (ESP
# seal/open GB/s per cipher suite plus real-UDP localhost goodput and
# syscalls-per-packet, batching on vs off). Commit the refreshed files
# when the numbers move for a reason. Each snapshot is written to a temp
# file and renamed into place, so an interrupted or failing run can
# never leave a truncated tracked file behind.
bench:
	$(GO) run ./cmd/benchcloud -run simbench -json > BENCH_SIM.json.tmp
	mv BENCH_SIM.json.tmp BENCH_SIM.json
	@cat BENCH_SIM.json
	$(GO) run ./cmd/benchcloud -run storm -json > BENCH_CONTROL.json.tmp
	mv BENCH_CONTROL.json.tmp BENCH_CONTROL.json
	@cat BENCH_CONTROL.json
	$(GO) run ./cmd/benchcloud -run dataplane -json > BENCH_DATAPLANE.json.tmp
	mv BENCH_DATAPLANE.json.tmp BENCH_DATAPLANE.json
	@cat BENCH_DATAPLANE.json

# Full Go benchmark sweep, including the paper-figure reproductions.
bench-full:
	$(GO) test -run=NONE -bench . -benchmem ./...
