GO ?= go

.PHONY: all check vet build test race bench-smoke bench

all: check

# The full pre-merge gate: static checks, build, tests (incl. race) and a
# quick allocation-guard smoke over the crypto fast paths.
check: vet build test race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fast allocation smoke: the Seal/Record benches report B/op and allocs/op;
# the AllocsPerRun guard tests (run by `test`) enforce the 0-alloc contract.
bench-smoke:
	$(GO) test -run=NONE -bench='Seal|Record' -benchtime=10x -benchmem \
		./internal/esp ./internal/tlslite ./internal/keymat ./internal/netsim

# Full benchmark sweep, including the paper-figure reproductions.
bench:
	$(GO) test -run=NONE -bench . -benchmem ./...
