package hipcloud

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes every example end-to-end (each is a complete
// scenario with its own assertions that log.Fatal on failure). Skipped in
// -short mode: each run compiles and simulates a full deployment.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow; run without -short")
	}
	cases := map[string]string{
		"quickstart":  "served over ESP",
		"multitenant": "multi-tenant isolation holds",
		"hybridcloud": "hybrid hop secured",
		"migration":   "rehomed the association",
		"teredonat":   "triangular routing",
	}
	for name, want := range cases {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+name)
			done := make(chan struct{})
			var out []byte
			var err error
			go func() {
				out, err = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(3 * time.Minute):
				cmd.Process.Kill()
				t.Fatalf("example %s timed out", name)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Fatalf("example %s output missing %q:\n%s", name, want, out)
			}
		})
	}
}
