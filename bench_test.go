package hipcloud

// Repository-level benchmarks: one per table/figure of the paper plus the
// ablations called out in DESIGN.md. Each benchmark iteration runs a full
// deterministic simulation; figures of merit from the virtual experiment
// (throughput, response time, bandwidth, RTT) are attached via
// b.ReportMetric, so `go test -bench . -benchmem` regenerates the paper's
// numbers alongside the harness's real cost.

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"hipcloud/internal/cloud"
	"hipcloud/internal/experiments"
	"hipcloud/internal/identity"
	"hipcloud/internal/keymat"
	"hipcloud/internal/netsim"
	"hipcloud/internal/proxy"
	"hipcloud/internal/rubis"
	"hipcloud/internal/secio"
	"hipcloud/internal/simtcp"
	"hipcloud/internal/tlslite"
	"hipcloud/internal/workload"
)

// benchSrvID is a shared server identity for the TLS benches.
var benchSrvID = identity.MustGenerate(identity.AlgRSA)

// benchFig2 runs one Figure 2 cell per iteration.
func benchFig2(b *testing.B, kind secio.Kind, clients int) {
	cfg := experiments.Fig2Config{Duration: 10 * time.Second, Warmup: 2 * time.Second}
	var lastTput, lastRT float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		pt := experiments.RunFig2Point(cfg, kind, clients)
		lastTput = pt.Throughput
		lastRT = float64(pt.MeanRT.Milliseconds())
	}
	b.ReportMetric(lastTput, "req/s(virtual)")
	b.ReportMetric(lastRT, "ms-mean-RT(virtual)")
}

// Figure 2: RUBiS throughput, basic vs HIP vs SSL at the paper's low,
// knee and high concurrency points.
func BenchmarkFig2(b *testing.B) {
	for _, clients := range []int{6, 30, 50} {
		for _, kind := range []secio.Kind{secio.Basic, secio.HIP, secio.SSL} {
			b.Run(fmt.Sprintf("%s/clients=%d", kind, clients), func(b *testing.B) {
				benchFig2(b, kind, clients)
			})
		}
	}
}

// §V-B: mean response times at 120 req/s.
func BenchmarkResponseTime(b *testing.B) {
	for _, kind := range []secio.Kind{secio.Basic, secio.HIP, secio.SSL} {
		b.Run(kind.String(), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				pt := experiments.RunResponseTimePoint(experiments.RTConfig{
					Duration: 10 * time.Second, Warmup: 2 * time.Second, Seed: int64(i + 1),
				}, kind)
				mean = float64(pt.Mean.Microseconds()) / 1000
			}
			b.ReportMetric(mean, "ms-mean-RT(virtual)")
		})
	}
}

// Figure 3: iperf bandwidth and ICMP RTT per connectivity mode.
func BenchmarkFig3(b *testing.B) {
	for _, mode := range experiments.Fig3Modes {
		b.Run(mode.String(), func(b *testing.B) {
			var mbps, rtt float64
			for i := 0; i < b.N; i++ {
				pt, err := experiments.RunFig3Mode(experiments.Fig3Config{
					Bytes: 2 << 20, Pings: 8, Seed: int64(i + 1),
				}, mode)
				if err != nil {
					b.Fatal(err)
				}
				mbps = pt.Mbps
				rtt = float64(pt.MeanRTT.Microseconds()) / 1000
			}
			b.ReportMetric(mbps, "Mbit/s(virtual)")
			b.ReportMetric(rtt, "ms-RTT(virtual)")
		})
	}
}

// §V-A cross-check: the private OpenNebula profile.
func BenchmarkPrivateCloud(b *testing.B) {
	for _, kind := range []secio.Kind{secio.Basic, secio.HIP} {
		b.Run(kind.String(), func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				pt := experiments.RunFig2Point(experiments.Fig2Config{
					Profile: cloud.OpenNebula, Duration: 10 * time.Second,
					Warmup: 2 * time.Second, Seed: int64(i + 1),
				}, kind, 50)
				tput = pt.Throughput
			}
			b.ReportMetric(tput, "req/s(virtual)")
		})
	}
}

// §IV-B: base-exchange cost, RSA-2048 vs ECDSA P-256 host identities.
func BenchmarkBEX(b *testing.B) {
	for _, alg := range []identity.Algorithm{identity.AlgRSA, identity.AlgECDSA} {
		b.Run(alg.String(), func(b *testing.B) {
			var wall, resp float64
			for i := 0; i < b.N; i++ {
				pt, err := experiments.RunBEX(alg, 8, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				wall = float64(pt.WallLatency.Microseconds()) / 1000
				resp = float64(pt.RespCPU.Microseconds()) / 1000
			}
			b.ReportMetric(wall, "ms-BEX(virtual)")
			b.ReportMetric(resp, "ms-responder-CPU(virtual)")
		})
	}
}

// --- ablations (design choices called out in DESIGN.md) ---

// Ablation: ESP transform suites on the same deployment.
func BenchmarkAblationESPSuite(b *testing.B) {
	// Exercised at the data-plane level: per-suite seal+open costs are in
	// internal/esp benchmarks; here we compare suite overhead on the wire.
	for _, s := range []keymat.Suite{keymat.SuiteAESCTRSHA256, keymat.SuiteAESCBCSHA256, keymat.SuiteNullSHA256} {
		b.Run(s.String(), func(b *testing.B) {
			b.ReportMetric(float64(espOverhead(s)), "bytes/packet-overhead")
			for i := 0; i < b.N; i++ {
				_ = s
			}
		})
	}
}

func espOverhead(s keymat.Suite) int {
	// Re-exported through the association API in normal use; this keeps
	// the ablation table self-contained.
	switch s {
	case keymat.SuiteNullSHA256:
		return 26
	case keymat.SuiteAESCTRSHA256:
		return 34
	default:
		return 57
	}
}

// Ablation: load-balancing policy under heterogeneous backend load.
func BenchmarkAblationLBPolicy(b *testing.B) {
	run := func(policy proxy.Policy, seed int64) float64 {
		s := netsim.New(seed)
		n := netsim.NewNetwork(s)
		c := cloud.New(n, cloud.EC2)
		t := &cloud.Tenant{Name: "t", VLAN: 1}
		db := c.Zones[0].Launch("db", cloud.Large, t)
		// Heterogeneous web tier: one micro, one large.
		w1 := c.Zones[0].Launch("w1", cloud.Micro, t)
		w2 := c.Zones[0].Launch("w2", cloud.Large, t)
		lbNode := c.AttachExternal("lb", 8, 4)
		cliNode := c.AttachExternal("cli", 8, 8)
		dataset := rubis.Populate(seed, 200, 1000)

		plain := func(nd *netsim.Node) *secio.Transport {
			return &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(nd, simtcp.NewPlainFabric(nd))}
		}
		dbT := plain(db.Node)
		s.Spawn("db", (&rubis.DBServer{DB: dataset, Transport: dbT}).Run)
		var addrs []*cloud.VM
		for _, vm := range []*cloud.VM{w1, w2} {
			wt := plain(vm.Node)
			ws := &rubis.WebServer{
				Name: vm.Name, Config: rubis.DefaultWebConfig, Transport: wt,
				DB: rubis.NewDBClient(wt, db.Addr(), 6),
			}
			s.Spawn(vm.Name, ws.Run)
			addrs = append(addrs, vm)
		}
		front := plain(lbNode)
		lb := &proxy.Proxy{Name: "lb", Front: front, Back: front, Policy: policy}
		for _, vm := range addrs {
			lb.AddBackend(vm.Name, vm.Addr(), rubis.WebPort)
		}
		s.Spawn("lb", lb.Run)
		mix := rubis.NewMix(seed, dataset.NumItems(), dataset.NumUsers())
		w := &workload.ClosedLoop{
			Transport: plain(cliNode), Target: lbNode.Addr(), Port: proxy.FrontPort,
			Clients: 40, Duration: 10 * time.Second, Warmup: 2 * time.Second, NextPath: mix.Next,
		}
		res := w.Run(s)
		s.Run(20 * time.Second)
		s.Shutdown()
		return res.Throughput()
	}
	for _, policy := range []proxy.Policy{proxy.RoundRobin, proxy.LeastConn} {
		b.Run(policy.String(), func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				tput = run(policy, int64(i+1))
			}
			b.ReportMetric(tput, "req/s(virtual)")
		})
	}
}

// Ablation: MySQL query cache on/off at the §V-B operating point.
func BenchmarkAblationDBCache(b *testing.B) {
	for _, cache := range []bool{false, true} {
		name := "off"
		if cache {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				d := experiments.Deploy(experiments.DeployConfig{
					Kind: secio.Basic, NumWeb: 1, DBCache: cache, Seed: int64(i + 1),
				})
				mix := rubis.NewMix(int64(i+1), d.DB.NumItems(), d.DB.NumUsers())
				addr, port := d.FrontAddr()
				w := &workload.OpenLoop{
					Transport: d.ClientT, Target: addr, Port: port,
					Rate: 60, Duration: 8 * time.Second, Warmup: 2 * time.Second,
					NextPath: mix.Next,
				}
				res := w.Run(d.Sim)
				d.Sim.Run(20 * time.Second)
				d.Sim.Shutdown()
				mean = float64(res.Latency.Mean().Microseconds()) / 1000
			}
			b.ReportMetric(mean, "ms-mean-RT(virtual)")
		})
	}
}

// Ablation: puzzle difficulty as the DoS knob (initiator-side cost).
func BenchmarkAblationPuzzleK(b *testing.B) {
	for _, k := range []uint8{1, 8, 16} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			var wall float64
			for i := 0; i < b.N; i++ {
				pt, err := experiments.RunBEX(identity.AlgECDSA, k, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				wall = float64(pt.InitCPU.Microseconds()) / 1000
			}
			b.ReportMetric(wall, "ms-initiator-CPU(virtual)")
		})
	}
}

// Ablation: full vs resumed SSL handshake (virtual crypto cost). Session
// resumption is what lets per-connection SSL amortize toward pure
// data-plane costs — the regime in which the paper's HIP≈SSL comparison
// holds.
func BenchmarkAblationTLSResumption(b *testing.B) {
	costs := cloud.TLSCosts(true)
	measure := func(resume bool) time.Duration {
		s := netsim.New(1)
		n := netsim.NewNetwork(s)
		a := n.AddNode("a", 4, 4)
		bn := n.AddNode("b", 4, 4)
		n.Connect(a, netip.MustParseAddr("10.0.0.1"), bn, netip.MustParseAddr("10.0.0.2"), netsim.Link{Latency: time.Millisecond})
		cli := &secio.Transport{Kind: secio.SSL, Stack: simtcp.NewStack(a, simtcp.NewPlainFabric(a)), Costs: costs}
		srv := &secio.Transport{Kind: secio.SSL, Stack: simtcp.NewStack(bn, simtcp.NewPlainFabric(bn)), Identity: benchSrvID, Costs: costs}
		if resume {
			cli.TLSCache = tlslite.NewSessionCache()
			cli.TLSServerName = "srv"
			srv.TLSSessions = tlslite.NewServerSessions()
		}
		l := srv.MustListen(443)
		s.Spawn("server", func(p *netsim.Proc) {
			for {
				c, err := l.Accept(p, 0)
				if err != nil {
					return
				}
				c.Close()
			}
		})
		s.Spawn("client", func(p *netsim.Proc) {
			for i := 0; i < 10; i++ {
				c, err := cli.Dial(p, netip.MustParseAddr("10.0.0.2"), 443)
				if err != nil {
					return
				}
				c.Close()
			}
		})
		s.Run(time.Minute)
		busy := bn.CPU().BusyTime()
		s.Shutdown()
		return busy
	}
	for _, resume := range []bool{false, true} {
		name := "full"
		if resume {
			name = "resumed"
		}
		b.Run(name, func(b *testing.B) {
			var busy time.Duration
			for i := 0; i < b.N; i++ {
				busy = measure(resume)
			}
			b.ReportMetric(float64(busy.Microseconds())/1000, "ms-server-CPU-10-conns(virtual)")
		})
	}
}
