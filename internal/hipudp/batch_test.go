package hipudp

import (
	"fmt"
	"hash/maphash"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"hipcloud/internal/hip"
	"hipcloud/internal/identity"
)

// pairOpts is pair with explicit I/O options on both stacks.
func pairOpts(t *testing.T, opts Options) (*Stack, *Stack) {
	t.Helper()
	mk := func(id *identity.HostIdentity) *Stack {
		h, err := hip.NewHost(hip.Config{Identity: id, Locator: netip.MustParseAddr("127.0.0.1")})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewStackOpts(h, "127.0.0.1:0", opts)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(idA), mk(idB)
	t.Cleanup(func() { a.Close(); b.Close() })
	epA := netip.MustParseAddrPort(fmt.Sprintf("127.0.0.1:%d", a.LocalAddr().Port))
	epB := netip.MustParseAddrPort(fmt.Sprintf("127.0.0.1:%d", b.LocalAddr().Port))
	a.AddPeer(idB.HIT(), epB)
	b.AddPeer(idA.HIT(), epA)
	return a, b
}

// echoBytes pushes total bytes through one stream and reads the echo.
func echoBytes(t *testing.T, a, b *Stack, total int) {
	t.Helper()
	l, err := b.Listen(9)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			if _, err := c.Write(buf[:n]); err != nil {
				return
			}
		}
	}()
	c, err := a.Dial(idB.HIT(), 9, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := make([]byte, 1400)
	got := make([]byte, 4096)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for n := 0; n < total; {
			rn, err := c.Read(got)
			if err != nil {
				t.Errorf("echo read after %d/%d bytes: %v", n, total, err)
				return
			}
			n += rn
		}
	}()
	for n := 0; n < total; n += len(msg) {
		if _, err := c.Write(msg); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("echo stalled")
	}
}

// TestSyncWriteErrorSurfaces is the regression test for the old
// writeFrame silently discarding WriteToUDPAddrPort's error and byte
// count: with the synchronous engine, a write on a closed socket must
// bump TxErrors and surface through TxErr.
func TestSyncWriteErrorSurfaces(t *testing.T) {
	h, err := hip.NewHost(hip.Config{Identity: idA, Locator: netip.MustParseAddr("127.0.0.1")})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStackOpts(h, "127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.sender != nil {
		t.Fatal("Options{} must not start the async sender")
	}
	ep := netip.MustParseAddrPort("127.0.0.1:9")
	s.writeFrame(frameESP, ep, []byte("ok"))
	if st := s.Stats(); st.TxErrors != 0 || st.TxPackets != 1 {
		t.Fatalf("healthy write: TxErrors=%d TxPackets=%d, want 0/1", st.TxErrors, st.TxPackets)
	}
	s.pc.Close() // break the socket under the stack
	s.writeFrame(frameESP, ep, []byte("lost"))
	st := s.Stats()
	if st.TxErrors != 1 {
		t.Fatalf("TxErrors = %d after write on closed socket, want 1", st.TxErrors)
	}
	if st.TxPackets != 1 {
		t.Fatalf("TxPackets = %d, failed frame must not be counted as sent", st.TxPackets)
	}
	if s.TxErr() == nil {
		t.Fatal("TxErr() = nil, want the retained write error")
	}
	s.Close()
}

// TestBatchedWriteErrorSurfaces verifies the async sender path also
// counts socket failures instead of swallowing them.
func TestBatchedWriteErrorSurfaces(t *testing.T) {
	h, err := hip.NewHost(hip.Config{Identity: idA, Locator: netip.MustParseAddr("127.0.0.1")})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStackOpts(h, "127.0.0.1:0", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s.pc.Close() // break the socket under the stack
	ep := netip.MustParseAddrPort("127.0.0.1:9")
	for i := 0; i < 4; i++ {
		s.writeFrame(frameESP, ep, []byte("lost"))
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().TxErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("TxErrors never incremented for writes on a closed socket")
		}
		time.Sleep(time.Millisecond)
	}
	if s.TxErr() == nil {
		t.Fatal("TxErr() = nil, want the retained write error")
	}
	s.Close()
}

// TestBatchingReducesSyscalls drives enough localhost traffic through
// the batched engine that sendmmsg/recvmmsg must coalesce: strictly
// fewer syscalls than packets on both sides of the socket.
func TestBatchingReducesSyscalls(t *testing.T) {
	if !batchIO {
		t.Skip("vectored I/O not compiled in on this platform")
	}
	a, b := pairOpts(t, DefaultOptions())
	echoBytes(t, a, b, 512*1024)
	for _, tc := range []struct {
		name string
		st   Stats
	}{{"dialer", a.Stats()}, {"listener", b.Stats()}} {
		if tc.st.TxPackets == 0 || tc.st.RxPackets == 0 {
			t.Fatalf("%s: no traffic counted: %+v", tc.name, tc.st)
		}
		if tc.st.TxSyscalls >= tc.st.TxPackets {
			t.Errorf("%s: TxSyscalls=%d >= TxPackets=%d — sendmmsg batching ineffective",
				tc.name, tc.st.TxSyscalls, tc.st.TxPackets)
		}
		if tc.st.RxSyscalls >= tc.st.RxPackets {
			t.Errorf("%s: RxSyscalls=%d >= RxPackets=%d — recvmmsg batching ineffective",
				tc.name, tc.st.RxSyscalls, tc.st.RxPackets)
		}
		if tc.st.TxErrors != 0 {
			t.Errorf("%s: TxErrors=%d during healthy echo", tc.name, tc.st.TxErrors)
		}
	}
}

// TestSyncEngineStillWorks runs the echo over the fully synchronous
// engine (the pre-batching behavior) to keep that path honest.
func TestSyncEngineStillWorks(t *testing.T) {
	a, b := pairOpts(t, Options{})
	echoBytes(t, a, b, 64*1024)
	st := a.Stats()
	if st.TxSyscalls != st.TxBatches || st.TxPackets != st.TxSyscalls {
		t.Errorf("sync engine must be one syscall per packet: %+v", st)
	}
	if st.TxErrors != 0 {
		t.Errorf("TxErrors=%d during healthy echo", st.TxErrors)
	}
}

// TestShardOrderingSingleAssociation checks the sharding invariant the
// sender relies on: every frame of one association hashes to one shard.
func TestShardOrderingSingleAssociation(t *testing.T) {
	sd := &sender{shards: make([]*senderShard, 4), seed: maphash.MakeSeed()}
	ep := netip.MustParseAddrPort("10.0.0.1:4500")
	first := sd.shardFor(ep)
	for i := 0; i < 100; i++ {
		if sd.shardFor(ep) != first {
			t.Fatal("same endpoint hashed to different shards")
		}
	}
	if runtime.GOOS == "linux" && !batchIO && runtime.GOARCH == "amd64" {
		t.Fatal("amd64 linux must compile the vectored engine")
	}
}
