//go:build linux && arm64

package hipudp

// linux/arm64 ABI numbers for the vector syscalls.
const (
	sysSENDMMSG = 269
	sysRECVMMSG = 243
)
