package hipudp

import (
	"io"
	"net"
	"net/netip"
)

// rxBatchMax caps the recvmmsg vector length (and thus the per-stack
// receive buffer arena at rxBatchMax * 64KiB).
const rxBatchMax = 32

// VectoredIO reports whether this build carries the sendmmsg/recvmmsg
// fast path (Linux amd64/arm64). Elsewhere batching still amortizes
// scheduling, but each datagram costs one syscall.
func VectoredIO() bool { return batchIO }

// sendLoop is the engine-independent fallback: one write syscall per
// frame. It stops at the first failure so the caller can attribute the
// error to the exact frame.
func sendLoop(pc *net.UDPConn, batch []txPacket) (sent, nsys int, err error) {
	for _, p := range batch {
		nsys++
		n, werr := pc.WriteToUDPAddrPort(p.buf, p.ep)
		if werr != nil {
			return sent, nsys, werr
		}
		if n != len(p.buf) {
			return sent, nsys, io.ErrShortWrite
		}
		sent++
	}
	return sent, nsys, nil
}

// readOne is the engine-independent fallback: a single blocking
// ReadFromUDPAddrPort into the first buffer.
func readOne(pc *net.UDPConn, bufs [][]byte, sizes []int, eps []netip.AddrPort) (cnt, nsys int, err error) {
	n, ep, rerr := pc.ReadFromUDPAddrPort(bufs[0])
	if rerr != nil {
		return 0, 1, rerr
	}
	sizes[0] = n
	eps[0] = ep
	return 1, 1, nil
}
