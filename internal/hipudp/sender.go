package hipudp

import (
	"hash/maphash"
	"net/netip"
	"sync"
)

// txPacket is one framed datagram awaiting transmission.
type txPacket struct {
	buf []byte
	ep  netip.AddrPort
}

const (
	// txBatchSize is the most datagrams one sender flush covers (the
	// sendmmsg vector length on Linux).
	txBatchSize = 32
	// txQueueCap bounds each shard's backlog. Overflow drops the frame —
	// datagram semantics; blocking here would stall the protocol core,
	// which enqueues while holding the stack lock.
	txQueueCap = 1024
)

// sender fans outgoing frames across per-destination worker shards.
// The stack keys shards by UDP endpoint: hipudp installs one ESP SA
// pair per peer and one endpoint per peer, so endpoint sharding IS
// per-SA sharding — packets of one association always traverse the
// same queue and stay ordered, while different associations transmit
// concurrently and amortize syscalls via sendmmsg batching.
type sender struct {
	shards []*senderShard
	seed   maphash.Seed
	wg     sync.WaitGroup
}

type senderShard struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []txPacket
	closed bool
}

func newSender(s *Stack, shards int) *sender {
	sd := &sender{
		shards: make([]*senderShard, shards),
		seed:   maphash.MakeSeed(),
	}
	for i := range sd.shards {
		sh := &senderShard{}
		sh.cond = sync.NewCond(&sh.mu)
		sd.shards[i] = sh
		sd.wg.Add(1)
		go func() {
			defer sd.wg.Done()
			s.senderLoop(sh)
		}()
	}
	return sd
}

// shardFor hashes the destination endpoint to a shard.
func (sd *sender) shardFor(ep netip.AddrPort) *senderShard {
	if len(sd.shards) == 1 {
		return sd.shards[0]
	}
	var h maphash.Hash
	h.SetSeed(sd.seed)
	b := ep.Addr().As16()
	h.Write(b[:])
	h.WriteByte(byte(ep.Port() >> 8))
	h.WriteByte(byte(ep.Port()))
	return sd.shards[h.Sum64()%uint64(len(sd.shards))]
}

// enqueue hands a frame to its shard, dropping on overflow.
func (sd *sender) enqueue(s *Stack, p txPacket) {
	sh := sd.shardFor(p.ep)
	sh.mu.Lock()
	if sh.closed || len(sh.queue) >= txQueueCap {
		sh.mu.Unlock()
		s.stats.txDrops.Add(1)
		return
	}
	sh.queue = append(sh.queue, p)
	sh.mu.Unlock()
	sh.cond.Signal()
}

// close stops all shards after their queues drain and waits for the
// workers to exit.
func (sd *sender) close() {
	for _, sh := range sd.shards {
		sh.mu.Lock()
		sh.closed = true
		sh.mu.Unlock()
		sh.cond.Broadcast()
	}
	sd.wg.Wait()
}

// senderLoop drains one shard's queue in sendmmsg-sized slices.
func (s *Stack) senderLoop(sh *senderShard) {
	eng := newTxEngine()
	batch := make([]txPacket, 0, txBatchSize)
	for {
		sh.mu.Lock()
		for len(sh.queue) == 0 && !sh.closed {
			sh.cond.Wait()
		}
		if len(sh.queue) == 0 && sh.closed {
			sh.mu.Unlock()
			return
		}
		n := len(sh.queue)
		if n > txBatchSize {
			n = txBatchSize
		}
		batch = append(batch[:0], sh.queue[:n]...)
		rest := copy(sh.queue, sh.queue[n:])
		clear(sh.queue[rest:]) // drop buf references for GC
		sh.queue = sh.queue[:rest]
		sh.mu.Unlock()
		s.transmit(eng, batch)
	}
}

// transmit pushes one batch through the platform engine, retrying
// partial progress and folding results into the stats.
func (s *Stack) transmit(eng *txEngine, batch []txPacket) {
	for len(batch) > 0 {
		sent, nsys, err := eng.send(s.pc, s.rc, batch)
		s.stats.txSyscalls.Add(uint64(nsys))
		s.stats.txBatches.Add(1)
		for _, p := range batch[:sent] {
			s.stats.txPackets.Add(1)
			s.stats.txBytes.Add(uint64(len(p.buf)))
		}
		batch = batch[sent:]
		if err != nil {
			// The socket refused a frame (typically: stack closing). Count
			// the failed head, then keep trying the rest — a transient
			// error must not silently discard the tail of the batch.
			s.noteTxErr(err)
			if len(batch) > 0 {
				batch = batch[1:]
			}
		}
	}
}
