package hipudp

import (
	"bytes"
	"fmt"
	"io"
	"net/netip"
	"testing"
	"time"

	"hipcloud/internal/hip"
	"hipcloud/internal/identity"
)

var (
	idA = identity.MustGenerate(identity.AlgECDSA)
	idB = identity.MustGenerate(identity.AlgECDSA)
)

// pair brings up two stacks on localhost and cross-registers them.
func pair(t *testing.T) (*Stack, *Stack) {
	t.Helper()
	mk := func(id *identity.HostIdentity) *Stack {
		h, err := hip.NewHost(hip.Config{Identity: id, Locator: netip.MustParseAddr("127.0.0.1")})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewStack(h, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(idA), mk(idB)
	t.Cleanup(func() { a.Close(); b.Close() })
	epA := netip.MustParseAddrPort(fmt.Sprintf("127.0.0.1:%d", a.LocalAddr().Port))
	epB := netip.MustParseAddrPort(fmt.Sprintf("127.0.0.1:%d", b.LocalAddr().Port))
	a.AddPeer(idB.HIT(), epB)
	b.AddPeer(idA.HIT(), epA)
	return a, b
}

func TestRealUDPBaseExchange(t *testing.T) {
	a, b := pair(t)
	if err := a.Establish(idB.HIT(), 5*time.Second); err != nil {
		t.Fatalf("establish: %v", err)
	}
	// Both sides hold an established association.
	if st, ok := a.AssociationState(idB.HIT()); !ok || st != hip.Established {
		t.Fatal("initiator association missing")
	}
	if st, ok := b.AssociationState(idA.HIT()); !ok || st != hip.Established {
		t.Fatal("responder association missing")
	}
	// Idempotent re-establish.
	if err := a.Establish(idB.HIT(), time.Second); err != nil {
		t.Fatalf("re-establish: %v", err)
	}
}

func TestRealUDPStreamEcho(t *testing.T) {
	a, b := pair(t)
	l, err := b.Listen(7)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 256)
		n, err := c.Read(buf)
		if err != nil {
			return
		}
		c.Write(buf[:n])
		c.Close()
	}()
	c, err := a.Dial(idB.HIT(), 7, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	msg := []byte("encrypted echo over real udp")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 256)
	n, err := c.Read(buf)
	if err != nil || !bytes.Equal(buf[:n], msg) {
		t.Fatalf("read: %q %v", buf[:n], err)
	}
	if c.PeerHIT() != idB.HIT() {
		t.Fatal("peer HIT mismatch")
	}
	c.Close()
}

func TestRealUDPBulkTransfer(t *testing.T) {
	a, b := pair(t)
	l, err := b.Listen(9)
	if err != nil {
		t.Fatal(err)
	}
	const total = 300 << 10
	recvDone := make(chan []byte, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			recvDone <- nil
			return
		}
		var got []byte
		buf := make([]byte, 32*1024)
		for len(got) < total {
			n, err := c.Read(buf)
			if n > 0 {
				got = append(got, buf[:n]...)
			}
			if err != nil {
				break
			}
		}
		recvDone <- got
	}()
	c, err := a.Dial(idB.HIT(), 9, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, total)
	for i := range data {
		data[i] = byte(i * 13)
	}
	if _, err := c.Write(data); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.Close()
	select {
	case got := <-recvDone:
		if !bytes.Equal(got, data) {
			t.Fatalf("bulk mismatch: %d of %d bytes", len(got), total)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("bulk transfer timed out")
	}
}

func TestDialUnknownPeer(t *testing.T) {
	a, _ := pair(t)
	if _, err := a.Dial(idA.HIT(), 7, time.Second); err != ErrUnknownPeer {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestDialNoListener(t *testing.T) {
	a, _ := pair(t)
	_, err := a.Dial(idB.HIT(), 4242, 2*time.Second)
	if err == nil {
		t.Fatal("dial succeeded without listener")
	}
}

func TestCloseUnblocksReaders(t *testing.T) {
	a, b := pair(t)
	l, _ := b.Listen(7)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		io.Copy(io.Discard, c)
	}()
	c, err := a.Dial(idB.HIT(), 7, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 16))
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read returned nil after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader not unblocked by Close")
	}
}

func TestMultiplePeersShareOneIP(t *testing.T) {
	// Three stacks on 127.0.0.1 with different ports: HIP locators carry
	// no port, so endpoint resolution must demux by HIT (regression test
	// for the localhost-proxy scenario).
	ids := []*identity.HostIdentity{
		identity.MustGenerate(identity.AlgECDSA),
		identity.MustGenerate(identity.AlgECDSA),
		identity.MustGenerate(identity.AlgECDSA),
	}
	var stacks []*Stack
	for _, id := range ids {
		h, err := hip.NewHost(hip.Config{Identity: id, Locator: netip.MustParseAddr("127.0.0.1")})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewStack(h, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		stacks = append(stacks, s)
		t.Cleanup(func() { s.Close() })
	}
	ep := func(s *Stack) netip.AddrPort {
		return netip.MustParseAddrPort(fmt.Sprintf("127.0.0.1:%d", s.LocalAddr().Port))
	}
	// Stack 0 is the client; 1 and 2 are servers it knows by HIT.
	for i := 1; i <= 2; i++ {
		stacks[0].AddPeer(ids[i].HIT(), ep(stacks[i]))
		stacks[i].AddPeer(ids[0].HIT(), ep(stacks[0]))
	}
	for i := 1; i <= 2; i++ {
		srv := stacks[i]
		l, err := srv.Listen(80)
		if err != nil {
			t.Fatal(err)
		}
		idx := i
		go func() {
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				go func() {
					defer c.Close()
					buf := make([]byte, 64)
					if _, err := c.Read(buf); err != nil {
						return
					}
					c.Write([]byte(fmt.Sprintf("server-%d", idx)))
				}()
			}
		}()
	}
	// Both servers must be independently reachable despite the shared IP.
	for i := 1; i <= 2; i++ {
		c, err := stacks[0].Dial(ids[i].HIT(), 80, 5*time.Second)
		if err != nil {
			t.Fatalf("dial server %d: %v", i, err)
		}
		c.Write([]byte("who are you"))
		buf := make([]byte, 64)
		n, err := c.Read(buf)
		if err != nil {
			t.Fatalf("read from server %d: %v", i, err)
		}
		want := fmt.Sprintf("server-%d", i)
		if string(buf[:n]) != want {
			t.Fatalf("got %q, want %q — endpoint demux crossed peers", buf[:n], want)
		}
		c.Close()
	}
}
