//go:build linux && (amd64 || arm64)

// Linux fast path: sendmmsg/recvmmsg move up to txBatchSize/rxBatchMax
// datagrams per syscall. Only the stdlib syscall package is used; the
// mmsghdr layout and the syscall numbers (absent from the generated
// amd64 table) are declared here. Everything the kernel dereferences —
// iovecs, sockaddr storage, the mmsghdr vector itself — lives in the
// engine structs, which the calling goroutine keeps alive across the
// syscall.
package hipudp

import (
	"encoding/binary"
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors the kernel's struct mmsghdr on 64-bit Linux.
type mmsghdr struct {
	Hdr syscall.Msghdr
	Len uint32
	_   [4]byte
}

// batchIO reports whether the vectored fast path is compiled in.
const batchIO = true

type txEngine struct {
	msgs [txBatchSize]mmsghdr
	iovs [txBatchSize]syscall.Iovec
	sa4  [txBatchSize]syscall.RawSockaddrInet4
	sa6  [txBatchSize]syscall.RawSockaddrInet6
}

func newTxEngine() *txEngine { return &txEngine{} }

// send transmits up to txBatchSize frames with one sendmmsg. A nil
// RawConn (SyscallConn failed at startup) falls back to the loop.
func (e *txEngine) send(pc *net.UDPConn, rc syscall.RawConn, batch []txPacket) (sent, nsys int, err error) {
	if rc == nil {
		return sendLoop(pc, batch)
	}
	n := len(batch)
	if n > txBatchSize {
		n = txBatchSize
	}
	for i := 0; i < n; i++ {
		p := batch[i]
		e.iovs[i].Base = &p.buf[0]
		e.iovs[i].SetLen(len(p.buf))
		h := &e.msgs[i].Hdr
		*h = syscall.Msghdr{Iov: &e.iovs[i], Iovlen: 1}
		addr := p.ep.Addr()
		if addr.Is4() || addr.Is4In6() {
			sa := &e.sa4[i]
			sa.Family = syscall.AF_INET
			sa.Addr = addr.As4()
			binary.BigEndian.PutUint16((*[2]byte)(unsafe.Pointer(&sa.Port))[:], p.ep.Port())
			h.Name = (*byte)(unsafe.Pointer(sa))
			h.Namelen = uint32(unsafe.Sizeof(*sa))
		} else {
			sa := &e.sa6[i]
			sa.Family = syscall.AF_INET6
			sa.Addr = addr.As16()
			binary.BigEndian.PutUint16((*[2]byte)(unsafe.Pointer(&sa.Port))[:], p.ep.Port())
			h.Name = (*byte)(unsafe.Pointer(sa))
			h.Namelen = uint32(unsafe.Sizeof(*sa))
		}
		e.msgs[i].Len = 0
	}
	werr := rc.Write(func(fd uintptr) bool {
		for {
			r, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&e.msgs[0])), uintptr(n), 0, 0, 0)
			switch errno {
			case 0:
				sent = int(r)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // wait for writability, then retry
			default:
				err = errno
				return true
			}
		}
	})
	nsys = 1
	if werr != nil && err == nil {
		err = werr
	}
	return sent, nsys, err
}

type rxEngine struct {
	msgs  [rxBatchMax]mmsghdr
	iovs  [rxBatchMax]syscall.Iovec
	names [rxBatchMax]syscall.RawSockaddrAny
}

func newRxEngine() *rxEngine { return &rxEngine{} }

// read drains up to len(bufs) datagrams with one recvmmsg, filling
// sizes and source endpoints per message.
func (e *rxEngine) read(pc *net.UDPConn, rc syscall.RawConn, bufs [][]byte, sizes []int, eps []netip.AddrPort) (cnt, nsys int, err error) {
	if rc == nil || len(bufs) == 1 {
		return readOne(pc, bufs, sizes, eps)
	}
	n := len(bufs)
	if n > rxBatchMax {
		n = rxBatchMax
	}
	for i := 0; i < n; i++ {
		e.iovs[i].Base = &bufs[i][0]
		e.iovs[i].SetLen(len(bufs[i]))
		e.msgs[i].Hdr = syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&e.names[i])),
			Namelen: uint32(unsafe.Sizeof(e.names[i])),
			Iov:     &e.iovs[i],
			Iovlen:  1,
		}
		e.msgs[i].Len = 0
	}
	rerr := rc.Read(func(fd uintptr) bool {
		for {
			r, _, errno := syscall.Syscall6(sysRECVMMSG, fd,
				uintptr(unsafe.Pointer(&e.msgs[0])), uintptr(n), 0, 0, 0)
			switch errno {
			case 0:
				cnt = int(r)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // wait for readability, then retry
			default:
				err = errno
				return true
			}
		}
	})
	nsys = 1
	if rerr != nil && err == nil {
		err = rerr
	}
	for i := 0; i < cnt; i++ {
		sizes[i] = int(e.msgs[i].Len)
		eps[i] = rawToAddrPort(&e.names[i])
	}
	return cnt, nsys, err
}

// rawToAddrPort converts a kernel-filled sockaddr to netip form.
func rawToAddrPort(ra *syscall.RawSockaddrAny) netip.AddrPort {
	switch ra.Addr.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(ra))
		port := binary.BigEndian.Uint16((*[2]byte)(unsafe.Pointer(&sa.Port))[:])
		return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), port)
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(ra))
		port := binary.BigEndian.Uint16((*[2]byte)(unsafe.Pointer(&sa.Port))[:])
		addr := netip.AddrFrom16(sa.Addr)
		if addr.Is4In6() {
			addr = addr.Unmap()
		}
		return netip.AddrPortFrom(addr, port)
	}
	return netip.AddrPort{}
}
