// Package hipudp runs the HIP stack over real UDP sockets: the same
// sans-io protocol cores (hipcloud/internal/hip, /esp, /stream) that power
// the simulator drive actual network I/O here, so the base exchange, the
// BEET-ESP data plane and reliable streams work between OS processes —
// e.g. on localhost, or between the paper's "power user" workstation and
// a cloud VM.
//
// Framing: one UDP socket carries both planes, distinguished by a leading
// byte (0 = HIP control packet, 1 = ESP). Inside ESP, payloads use the
// same inner-type byte + port-pair mux as the simulator fabric.
package hipudp

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"syscall"
	"time"

	"hipcloud/internal/hip"
	"hipcloud/internal/stream"
)

// Frame type bytes.
const (
	frameHIP byte = 0
	frameESP byte = 1
)

// Inner ESP payload types (must match across implementations).
const (
	innerStream byte = 1
)

// Errors returned by the stack.
var (
	ErrClosed      = errors.New("hipudp: stack closed")
	ErrTimeout     = errors.New("hipudp: timed out")
	ErrUnknownPeer = errors.New("hipudp: unknown peer HIT")
	ErrRefused     = errors.New("hipudp: connection refused")
	ErrPortInUse   = errors.New("hipudp: port already bound")
)

// Options tunes the stack's socket I/O engine.
type Options struct {
	// TxShards is the number of asynchronous sender shards. Outgoing
	// frames hash by destination endpoint — the stack installs one ESP SA
	// pair and one endpoint per peer, so endpoint sharding is per-SA
	// sharding: one association's frames stay ordered on one shard while
	// different associations transmit concurrently and amortize syscalls
	// via sendmmsg batching. 0 disables the sender: frames go out
	// synchronously, one syscall each, from the protocol goroutine.
	TxShards int
	// RxBatch is how many datagrams one receive syscall may drain
	// (recvmmsg on Linux; capped at rxBatchMax). 0 or 1 reads singly.
	RxBatch int
}

// DefaultOptions enables batched I/O: two sender shards and full-width
// receive vectors.
func DefaultOptions() Options {
	return Options{TxShards: 2, RxBatch: rxBatchMax}
}

// Stack is a HIP endpoint over one UDP socket.
type Stack struct {
	mu    sync.Mutex
	host  *hip.Host
	pc    *net.UDPConn
	rc    syscall.RawConn
	opts  Options
	epoch time.Time

	// peers maps HITs to UDP endpoints (the static hosts-file role).
	peers map[netip.Addr]netip.AddrPort
	// hitToEP maps peer HITs to their last-observed UDP endpoints: HIP
	// locators carry no port, so several peers may share one IP (e.g.
	// localhost demos) and only the HIT disambiguates them.
	hitToEP map[netip.Addr]netip.AddrPort
	// locToEP maps peer locators back to UDP endpoints as a last resort.
	locToEP map[netip.Addr]netip.AddrPort

	estab map[netip.Addr][]chan error

	conns     map[connKey]*Conn
	listeners map[uint16]*Listener
	nextPort  uint16
	rng       *rand.Rand

	closed bool
	done   chan struct{}

	// Socket counters and the async sender (nil when TxShards == 0).
	stats   ioStats
	txErrMu sync.Mutex
	txErr   error
	sender  *sender
}

type connKey struct {
	peer       netip.Addr // HIT
	localPort  uint16
	remotePort uint16
}

// cryptoSeed draws the per-stack RNG seed from crypto/rand. This RNG
// feeds puzzle nonces and ISNs on a real network path, so a predictable
// seed (the old time.Now().UnixNano()) would let an observer who knows
// the rough start time reconstruct the stream and pre-solve puzzles.
func cryptoSeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		panic("hipudp: crypto/rand unavailable: " + err.Error())
	}
	return int64(binary.LittleEndian.Uint64(b[:]))
}

// NewStack binds a UDP socket at listen (e.g. "127.0.0.1:10500") for the
// given HIP host, with batched I/O defaults. The host's configured
// locator should match the bound address.
func NewStack(host *hip.Host, listen string) (*Stack, error) {
	return NewStackOpts(host, listen, DefaultOptions())
}

// NewStackOpts is NewStack with explicit I/O options (Options{} yields
// the fully synchronous, one-syscall-per-packet engine).
func NewStackOpts(host *hip.Host, listen string, opts Options) (*Stack, error) {
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, err
	}
	pc, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, err
	}
	s := &Stack{
		host:      host,
		pc:        pc,
		opts:      opts,
		epoch:     time.Now(),
		peers:     make(map[netip.Addr]netip.AddrPort),
		hitToEP:   make(map[netip.Addr]netip.AddrPort),
		locToEP:   make(map[netip.Addr]netip.AddrPort),
		estab:     make(map[netip.Addr][]chan error),
		conns:     make(map[connKey]*Conn),
		listeners: make(map[uint16]*Listener),
		nextPort:  41000,
		rng:       rand.New(rand.NewSource(cryptoSeed())),
		done:      make(chan struct{}),
	}
	// RawConn enables the sendmmsg/recvmmsg fast path; on failure the
	// engines fall back to one syscall per packet.
	if rc, rcErr := pc.SyscallConn(); rcErr == nil {
		s.rc = rc
	}
	if opts.TxShards > 0 {
		s.sender = newSender(s, opts.TxShards)
	}
	go s.readLoop()
	go s.timerLoop()
	return s, nil
}

// LocalAddr returns the bound UDP address.
func (s *Stack) LocalAddr() *net.UDPAddr { return s.pc.LocalAddr().(*net.UDPAddr) }

// Host returns the underlying HIP host. The host is guarded by the
// stack's internal lock; prefer AssociationState for concurrent reads.
func (s *Stack) Host() *hip.Host { return s.host }

// AssociationState safely reads the association state with peerHIT.
func (s *Stack) AssociationState(peerHIT netip.Addr) (hip.State, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.host.Association(peerHIT)
	if !ok {
		return 0, false
	}
	return a.State(), true
}

// now returns the stack's monotonic time as a duration from its epoch
// (what the sans-io cores expect).
func (s *Stack) now() time.Duration { return time.Since(s.epoch) }

// AddPeer registers a peer HIT at a UDP endpoint.
func (s *Stack) AddPeer(hit netip.Addr, ep netip.AddrPort) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peers[hit] = ep
	s.locToEP[ep.Addr()] = ep
}

// Close shuts the stack down.
func (s *Stack) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	for _, c := range s.conns {
		c.inner.Abort()
		c.cond.Broadcast()
	}
	for _, l := range s.listeners {
		l.closed = true
		l.cond.Broadcast()
	}
	s.mu.Unlock()
	// Drain the async sender before tearing the socket down so already
	// queued frames still reach the wire.
	if s.sender != nil {
		s.sender.close()
	}
	return s.pc.Close()
}

// readLoop drains inbound datagrams in recvmmsg-sized vectors and
// dispatches them. Each datagram is still copied out of the reusable
// receive arena before the protocol cores see it.
func (s *Stack) readLoop() {
	eng := newRxEngine()
	nbuf := s.opts.RxBatch
	if nbuf < 1 {
		nbuf = 1
	}
	if nbuf > rxBatchMax {
		nbuf = rxBatchMax
	}
	bufs := make([][]byte, nbuf)
	for i := range bufs {
		bufs[i] = make([]byte, 64*1024)
	}
	sizes := make([]int, nbuf)
	eps := make([]netip.AddrPort, nbuf)
	for {
		cnt, nsys, err := eng.read(s.pc, s.rc, bufs, sizes, eps)
		s.stats.rxSyscalls.Add(uint64(nsys))
		if cnt > 0 {
			s.stats.rxBatches.Add(1)
		}
		for i := 0; i < cnt; i++ {
			n := sizes[i]
			s.stats.rxPackets.Add(1)
			s.stats.rxBytes.Add(uint64(n))
			if n < 1 {
				continue
			}
			buf := bufs[i]
			data := make([]byte, n-1)
			copy(data, buf[1:n])
			switch buf[0] {
			case frameHIP:
				s.onControl(data, eps[i])
			case frameESP:
				s.onData(data)
			}
		}
		if err != nil {
			// Stop only on shutdown; transient socket errors (e.g. an ICMP
			// port-unreachable surfacing on the UDP socket) must not kill
			// the read loop.
			select {
			case <-s.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
		}
	}
}

func (s *Stack) onControl(data []byte, from netip.AddrPort) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.locToEP[from.Addr()] = from
	// Remember the sender HIT's endpoint (header bytes 8..24).
	if len(data) >= 40 {
		var h [16]byte
		copy(h[:], data[8:24])
		s.hitToEP[netip.AddrFrom16(h)] = from
	}
	s.host.OnPacket(data, from.Addr(), s.now())
	s.host.TakeCost() // real CPU already paid
	s.flushLocked()
}

func (s *Stack) onData(data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	payload, peerHIT, err := s.host.OpenData(data, false)
	s.host.TakeCost()
	if err != nil || len(payload) < 1+4 || payload[0] != innerStream {
		return
	}
	remotePort := binary.BigEndian.Uint16(payload[1:])
	localPort := binary.BigEndian.Uint16(payload[3:])
	seg, err := stream.ParseSegment(payload[5:])
	if err != nil {
		return
	}
	key := connKey{peer: peerHIT, localPort: localPort, remotePort: remotePort}
	c, ok := s.conns[key]
	if !ok {
		if seg.Flags&stream.FlagSYN == 0 || seg.Flags&stream.FlagACK != 0 {
			return
		}
		l, ok := s.listeners[localPort]
		if !ok || len(l.backlog) >= 64 {
			return
		}
		c = s.newConnLocked(key)
		l.backlog = append(l.backlog, c)
		l.cond.Broadcast()
	}
	c.inner.OnSegment(seg, s.now())
	s.pumpLocked(c)
	c.cond.Broadcast()
}

// flushLocked sends pending control packets and resolves establishment
// waiters. Callers hold s.mu.
func (s *Stack) flushLocked() {
	for _, op := range s.host.Outgoing() {
		s.writeFrame(frameHIP, s.controlEndpoint(op), op.Data)
	}
	for _, ev := range s.host.Events() {
		var res error
		switch ev.Kind {
		case hip.EventEstablished:
			res = nil
		case hip.EventFailed:
			res = ErrRefused
		default:
			continue
		}
		for _, ch := range s.estab[ev.PeerHIT] {
			ch <- res
		}
		delete(s.estab, ev.PeerHIT)
	}
}

// controlEndpoint resolves a control packet's destination: by the
// receiver HIT in the packet header first (several peers may share one
// IP), then by registered peers, then by locator.
func (s *Stack) controlEndpoint(op hip.OutPacket) netip.AddrPort {
	if len(op.Data) >= 40 {
		var h [16]byte
		copy(h[:], op.Data[24:40])
		hit := netip.AddrFrom16(h)
		if ep, ok := s.hitToEP[hit]; ok && ep.Addr() == op.Dst {
			return ep
		}
		if ep, ok := s.peers[hit]; ok && ep.Addr() == op.Dst {
			return ep
		}
	}
	if ep, ok := s.locToEP[op.Dst]; ok {
		return ep
	}
	return netip.AddrPortFrom(op.Dst, uint16(s.LocalAddr().Port))
}

func (s *Stack) writeFrame(typ byte, ep netip.AddrPort, data []byte) {
	buf := make([]byte, 1+len(data))
	buf[0] = typ
	copy(buf[1:], data)
	p := txPacket{buf: buf, ep: ep}
	if s.sender != nil {
		s.sender.enqueue(s, p)
		return
	}
	s.writeNow(p)
}

// writeNow is the synchronous send path (TxShards == 0). Errors and
// short writes are counted and retained instead of being discarded.
func (s *Stack) writeNow(p txPacket) {
	n, err := s.pc.WriteToUDPAddrPort(p.buf, p.ep)
	s.stats.txSyscalls.Add(1)
	s.stats.txBatches.Add(1)
	if err == nil && n != len(p.buf) {
		err = io.ErrShortWrite
	}
	if err != nil {
		s.noteTxErr(err)
		return
	}
	s.stats.txPackets.Add(1)
	s.stats.txBytes.Add(uint64(n))
}

// timerLoop drives HIP retransmissions and stream RTOs.
func (s *Stack) timerLoop() {
	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
		}
		s.mu.Lock()
		now := s.now()
		if dl := s.host.NextDeadline(); dl != 0 && now >= dl {
			s.host.OnTimer(now)
			s.host.TakeCost()
			s.flushLocked()
		}
		s.host.Maintain(now)
		s.host.TakeCost()
		s.flushLocked()
		for _, c := range s.conns {
			if c.deadline != 0 && now >= c.deadline {
				c.inner.OnTimer(now)
				s.pumpLocked(c)
				c.cond.Broadcast()
			}
		}
		s.mu.Unlock()
	}
}

// Establish runs (or reuses) the base exchange with peerHIT.
func (s *Stack) Establish(peerHIT netip.Addr, timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if a, ok := s.host.Association(peerHIT); ok && a.State() == hip.Established {
		s.mu.Unlock()
		return nil
	}
	ep, ok := s.peers[peerHIT]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownPeer
	}
	ch := make(chan error, 1)
	s.estab[peerHIT] = append(s.estab[peerHIT], ch)
	s.host.Connect(peerHIT, ep.Addr(), s.now())
	s.host.TakeCost()
	s.flushLocked()
	s.mu.Unlock()
	select {
	case err := <-ch:
		return err
	case <-time.After(timeout):
		return ErrTimeout
	case <-s.done:
		return ErrClosed
	}
}

func (s *Stack) newConnLocked(key connKey) *Conn {
	c := &Conn{
		stack: s,
		key:   key,
		inner: stream.New(stream.Config{}, s.rng.Uint32()),
	}
	c.cond = sync.NewCond(&s.mu)
	s.conns[key] = c
	return c
}

// pumpLocked flushes a conn's outgoing segments through ESP. Callers hold
// s.mu.
func (s *Stack) pumpLocked(c *Conn) {
	segs, deadline := c.inner.Poll(s.now())
	c.deadline = deadline
	for _, seg := range segs {
		wire := seg.Marshal()
		payload := make([]byte, 5+len(wire))
		payload[0] = innerStream
		binary.BigEndian.PutUint16(payload[1:], c.key.localPort)
		binary.BigEndian.PutUint16(payload[3:], c.key.remotePort)
		copy(payload[5:], wire)
		pkt, dst, err := s.host.SealData(c.key.peer, payload, false)
		s.host.TakeCost()
		if err != nil {
			c.inner.Abort()
			return
		}
		// ESP destinations resolve by peer HIT first (shared-IP safety).
		ep, ok := s.hitToEP[c.key.peer]
		if !ok || ep.Addr() != dst {
			if pep, ok2 := s.peers[c.key.peer]; ok2 && pep.Addr() == dst {
				ep = pep
			} else if lep, ok3 := s.locToEP[dst]; ok3 {
				ep = lep
			} else {
				continue
			}
		}
		s.writeFrame(frameESP, ep, pkt)
	}
}

// Dial opens a reliable stream to peerHIT:port over ESP.
func (s *Stack) Dial(peerHIT netip.Addr, port uint16, timeout time.Duration) (*Conn, error) {
	if err := s.Establish(peerHIT, timeout); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.nextPort++
	key := connKey{peer: peerHIT, localPort: s.nextPort, remotePort: port}
	c := s.newConnLocked(key)
	c.inner.Open(s.now())
	s.pumpLocked(c)
	deadline := time.Now().Add(timeout)
	for !c.inner.Established() && c.inner.State() != stream.StateReset {
		if time.Now().After(deadline) {
			delete(s.conns, key)
			s.mu.Unlock()
			return nil, ErrTimeout
		}
		c.waitLocked(100 * time.Millisecond)
	}
	if c.inner.State() == stream.StateReset {
		delete(s.conns, key)
		s.mu.Unlock()
		return nil, ErrRefused
	}
	s.mu.Unlock()
	return c, nil
}

// Listener accepts inbound streams.
type Listener struct {
	stack   *Stack
	port    uint16
	backlog []*Conn
	cond    *sync.Cond
	closed  bool
}

// Listen binds a stream listener on port.
func (s *Stack) Listen(port uint16) (*Listener, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, used := s.listeners[port]; used {
		return nil, ErrPortInUse
	}
	l := &Listener{stack: s, port: port}
	l.cond = sync.NewCond(&s.mu)
	s.listeners[port] = l
	return l, nil
}

// Accept blocks until a connection arrives.
func (l *Listener) Accept() (*Conn, error) {
	l.stack.mu.Lock()
	defer l.stack.mu.Unlock()
	for len(l.backlog) == 0 {
		if l.closed || l.stack.closed {
			return nil, ErrClosed
		}
		l.cond.Wait()
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, nil
}

// Close stops the listener.
func (l *Listener) Close() {
	l.stack.mu.Lock()
	defer l.stack.mu.Unlock()
	l.closed = true
	delete(l.stack.listeners, l.port)
	l.cond.Broadcast()
}

// Conn is a reliable stream inside the ESP tunnel. It implements
// io.ReadWriteCloser.
type Conn struct {
	stack    *Stack
	key      connKey
	inner    *stream.Conn
	cond     *sync.Cond
	deadline time.Duration
}

// PeerHIT returns the remote host identity tag.
func (c *Conn) PeerHIT() netip.Addr { return c.key.peer }

// waitLocked waits on the conn's condition with a wake-up bound so
// timer-driven progress is observed.
func (c *Conn) waitLocked(max time.Duration) {
	t := time.AfterFunc(max, func() { c.cond.Broadcast() })
	c.cond.Wait()
	t.Stop()
}

// Read blocks until data, EOF or reset.
func (c *Conn) Read(b []byte) (int, error) {
	c.stack.mu.Lock()
	defer c.stack.mu.Unlock()
	for {
		n, err := c.inner.Read(b)
		if n > 0 {
			if c.inner.MaybeWindowUpdate() {
				c.stack.pumpLocked(c)
			}
			return n, nil
		}
		switch err {
		case stream.ErrEOF:
			return 0, ErrClosed
		case stream.ErrReset:
			return 0, ErrRefused
		}
		if c.stack.closed {
			return 0, ErrClosed
		}
		c.waitLocked(200 * time.Millisecond)
	}
}

// Write blocks until all of b is buffered.
func (c *Conn) Write(b []byte) (int, error) {
	c.stack.mu.Lock()
	defer c.stack.mu.Unlock()
	total := 0
	for len(b) > 0 {
		n, err := c.inner.Write(b)
		if err != nil {
			return total, ErrClosed
		}
		if n > 0 {
			total += n
			b = b[n:]
			c.stack.pumpLocked(c)
		} else {
			if c.stack.closed {
				return total, ErrClosed
			}
			c.waitLocked(200 * time.Millisecond)
		}
	}
	return total, nil
}

// Close starts an orderly shutdown.
func (c *Conn) Close() error {
	c.stack.mu.Lock()
	defer c.stack.mu.Unlock()
	c.inner.Close()
	c.stack.pumpLocked(c)
	return nil
}
