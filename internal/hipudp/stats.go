package hipudp

import "sync/atomic"

// ioStats counts data-plane socket work. All fields are atomics: the
// sender shards and the read loop update them without taking the stack
// lock.
type ioStats struct {
	txPackets  atomic.Uint64
	txBytes    atomic.Uint64
	txSyscalls atomic.Uint64
	txBatches  atomic.Uint64
	txErrors   atomic.Uint64
	txDrops    atomic.Uint64
	rxPackets  atomic.Uint64
	rxBytes    atomic.Uint64
	rxSyscalls atomic.Uint64
	rxBatches  atomic.Uint64
}

// Stats is a point-in-time copy of the stack's socket counters.
type Stats struct {
	// TxPackets/TxBytes count datagrams (frames) actually written.
	TxPackets, TxBytes uint64
	// TxSyscalls counts send syscalls; with sendmmsg batching it grows
	// slower than TxPackets — TxSyscalls/TxPackets is the syscalls-per-
	// packet figure tracked in BENCH_DATAPLANE.json.
	TxSyscalls uint64
	// TxBatches counts sender flushes (each covering >=1 packet).
	TxBatches uint64
	// TxErrors counts frames the socket refused (write error or short
	// write). The first such error is retained and exposed via TxErr.
	TxErrors uint64
	// TxDrops counts frames dropped because a sender shard's queue was
	// full (datagram semantics: drop, don't block the protocol core).
	TxDrops uint64
	// Rx counters mirror the Tx ones for the read side.
	RxPackets, RxBytes, RxSyscalls, RxBatches uint64
}

// Stats returns a snapshot of the stack's socket counters.
func (s *Stack) Stats() Stats {
	return Stats{
		TxPackets:  s.stats.txPackets.Load(),
		TxBytes:    s.stats.txBytes.Load(),
		TxSyscalls: s.stats.txSyscalls.Load(),
		TxBatches:  s.stats.txBatches.Load(),
		TxErrors:   s.stats.txErrors.Load(),
		TxDrops:    s.stats.txDrops.Load(),
		RxPackets:  s.stats.rxPackets.Load(),
		RxBytes:    s.stats.rxBytes.Load(),
		RxSyscalls: s.stats.rxSyscalls.Load(),
		RxBatches:  s.stats.rxBatches.Load(),
	}
}

// TxErr returns the first socket write error the stack observed (nil if
// none). Sends are asynchronous under batching, so errors surface here
// and in Stats().TxErrors rather than from Conn.Write.
func (s *Stack) TxErr() error {
	s.txErrMu.Lock()
	defer s.txErrMu.Unlock()
	return s.txErr
}

// noteTxErr records the first write failure and counts every one.
func (s *Stack) noteTxErr(err error) {
	s.stats.txErrors.Add(1)
	if err == nil {
		return
	}
	s.txErrMu.Lock()
	if s.txErr == nil {
		s.txErr = err
	}
	s.txErrMu.Unlock()
}
