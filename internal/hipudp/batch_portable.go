//go:build !linux || !(amd64 || arm64)

// Portable engines: one syscall per datagram through the net package.
// Batching still amortizes scheduling and lock traffic, just not
// syscalls; the Stats counters make the difference visible.
package hipudp

import (
	"net"
	"net/netip"
	"syscall"
)

// batchIO reports whether the vectored fast path is compiled in.
const batchIO = false

type txEngine struct{}

func newTxEngine() *txEngine { return &txEngine{} }

func (e *txEngine) send(pc *net.UDPConn, rc syscall.RawConn, batch []txPacket) (sent, nsys int, err error) {
	return sendLoop(pc, batch)
}

type rxEngine struct{}

func newRxEngine() *rxEngine { return &rxEngine{} }

func (e *rxEngine) read(pc *net.UDPConn, rc syscall.RawConn, bufs [][]byte, sizes []int, eps []netip.AddrPort) (cnt, nsys int, err error) {
	return readOne(pc, bufs, sizes, eps)
}
