//go:build linux && amd64

package hipudp

// The generated amd64 syscall table predates sendmmsg, so both vector
// syscall numbers are pinned here (linux/amd64 ABI).
const (
	sysSENDMMSG = 307
	sysRECVMMSG = 299
)
