package secio

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"hipcloud/internal/cloud"
	"hipcloud/internal/hip"
	"hipcloud/internal/hipsim"
	"hipcloud/internal/identity"
	"hipcloud/internal/netsim"
	"hipcloud/internal/simtcp"
)

var (
	addrA = netip.MustParseAddr("10.0.0.1")
	addrB = netip.MustParseAddr("10.0.0.2")
	srvID = identity.MustGenerate(identity.AlgECDSA)
	cliID = identity.MustGenerate(identity.AlgECDSA)
)

// build returns matched client/server transports for the scenario and the
// address clients should dial.
func build(t *testing.T, kind Kind) (*netsim.Sim, *Transport, *Transport, netip.Addr) {
	t.Helper()
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	a := n.AddNode("a", 2, 2)
	b := n.AddNode("b", 2, 2)
	n.Connect(a, addrA, b, addrB, netsim.Link{Latency: time.Millisecond})
	switch kind {
	case HIP:
		reg := hipsim.NewRegistry()
		mk := func(node *netsim.Node, id *identity.HostIdentity) *Transport {
			h, err := hip.NewHost(hip.Config{Identity: id, Locator: node.Addr()})
			if err != nil {
				t.Fatal(err)
			}
			return &Transport{Kind: HIP, Stack: simtcp.NewStack(node, hipsim.New(node, h, reg))}
		}
		return s, mk(a, cliID), mk(b, srvID), srvID.HIT()
	case SSL:
		cli := &Transport{Kind: SSL, Stack: simtcp.NewStack(a, simtcp.NewPlainFabric(a)), Costs: cloud.TLSCosts(false)}
		srv := &Transport{Kind: SSL, Stack: simtcp.NewStack(b, simtcp.NewPlainFabric(b)), Identity: srvID, Costs: cloud.TLSCosts(false)}
		return s, cli, srv, addrB
	default:
		cli := &Transport{Kind: Basic, Stack: simtcp.NewStack(a, simtcp.NewPlainFabric(a))}
		srv := &Transport{Kind: Basic, Stack: simtcp.NewStack(b, simtcp.NewPlainFabric(b))}
		return s, cli, srv, addrB
	}
}

func TestEchoAcrossAllScenarios(t *testing.T) {
	for _, kind := range []Kind{Basic, HIP, SSL} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			s, cli, srv, target := build(t, kind)
			l := srv.MustListen(80)
			s.Spawn("server", func(p *netsim.Proc) {
				c, err := l.Accept(p, 0)
				if err != nil {
					return
				}
				defer c.Close()
				buf := make([]byte, 64)
				n, err := c.Read(buf)
				if err != nil {
					return
				}
				c.Write(buf[:n])
			})
			var got []byte
			s.Spawn("client", func(p *netsim.Proc) {
				c, err := cli.Dial(p, target, 80)
				if err != nil {
					t.Errorf("dial: %v", err)
					return
				}
				defer c.Close()
				c.Write([]byte("ping"))
				buf := make([]byte, 64)
				n, err := c.Read(buf)
				if err == nil {
					got = buf[:n]
				}
			})
			s.Run(30 * time.Second)
			s.Shutdown()
			if !bytes.Equal(got, []byte("ping")) {
				t.Fatalf("got %q", got)
			}
		})
	}
}

func TestSSLListenerRequiresIdentity(t *testing.T) {
	s, cli, _, _ := build(t, SSL)
	bad := &Transport{Kind: SSL, Stack: cli.Stack}
	if _, err := bad.Listen(99); err != ErrNeedIdentity {
		t.Fatalf("err = %v, want ErrNeedIdentity", err)
	}
	_ = s
}

func TestSSLWirePayloadIsEncrypted(t *testing.T) {
	s, cli, srv, target := build(t, SSL)
	secret := []byte("SUPER-SECRET-TOKEN-1234567890-ABCDEF")
	var leaked bool
	s.SetTracer(func(at netsim.VTime, kind netsim.TraceKind, node string, pkt *netsim.Packet, note string) {
		if bytes.Contains(pkt.Payload, secret) {
			leaked = true
		}
	})
	l := srv.MustListen(80)
	s.Spawn("server", func(p *netsim.Proc) {
		c, err := l.Accept(p, 0)
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 128)
		c.Read(buf)
	})
	s.Spawn("client", func(p *netsim.Proc) {
		c, err := cli.Dial(p, target, 80)
		if err != nil {
			return
		}
		defer c.Close()
		c.Write(secret)
	})
	s.Run(30 * time.Second)
	s.Shutdown()
	if leaked {
		t.Fatal("secret visible on the wire under SSL")
	}
}

func TestHIPWirePayloadIsEncrypted(t *testing.T) {
	s, cli, srv, target := build(t, HIP)
	secret := []byte("SUPER-SECRET-TOKEN-1234567890-ABCDEF")
	var leaked bool
	s.SetTracer(func(at netsim.VTime, kind netsim.TraceKind, node string, pkt *netsim.Packet, note string) {
		if bytes.Contains(pkt.Payload, secret) {
			leaked = true
		}
	})
	l := srv.MustListen(80)
	s.Spawn("server", func(p *netsim.Proc) {
		c, err := l.Accept(p, 0)
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 128)
		c.Read(buf)
	})
	s.Spawn("client", func(p *netsim.Proc) {
		c, err := cli.Dial(p, target, 80)
		if err != nil {
			return
		}
		defer c.Close()
		c.Write(secret)
	})
	s.Run(30 * time.Second)
	s.Shutdown()
	if leaked {
		t.Fatal("secret visible on the wire under HIP/ESP")
	}
}

func TestBasicWirePayloadIsPlain(t *testing.T) {
	// Sanity: the tracer actually sees payloads — basic MUST leak.
	s, cli, srv, target := build(t, Basic)
	secret := []byte("VISIBLE-ON-THE-WIRE")
	var seen bool
	s.SetTracer(func(at netsim.VTime, kind netsim.TraceKind, node string, pkt *netsim.Packet, note string) {
		if bytes.Contains(pkt.Payload, secret) {
			seen = true
		}
	})
	l := srv.MustListen(80)
	s.Spawn("server", func(p *netsim.Proc) {
		c, err := l.Accept(p, 0)
		if err != nil {
			return
		}
		defer c.Close()
		c.Read(make([]byte, 128))
	})
	s.Spawn("client", func(p *netsim.Proc) {
		c, err := cli.Dial(p, target, 80)
		if err != nil {
			return
		}
		defer c.Close()
		c.Write(secret)
	})
	s.Run(30 * time.Second)
	s.Shutdown()
	if !seen {
		t.Fatal("tracer never saw the plaintext under basic — eavesdropping check is vacuous")
	}
}

func TestRebindAcrossProcs(t *testing.T) {
	s, cli, srv, target := build(t, SSL)
	l := srv.MustListen(80)
	s.Spawn("server", func(p *netsim.Proc) {
		c, err := l.Accept(p, 0)
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 64)
		for {
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			if _, err := c.Write(buf[:n]); err != nil {
				return
			}
		}
	})
	var rounds int
	s.Spawn("owner", func(p *netsim.Proc) {
		c, err := cli.Dial(p, target, 80)
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		c.Write([]byte("one"))
		if _, err := c.Read(buf); err == nil {
			rounds++
		}
		// Hand the pooled connection to a different process.
		done := netsim.NewWaitQueue(s)
		p.Spawn("borrower", func(bp *netsim.Proc) {
			c.Rebind(bp)
			c.Write([]byte("two"))
			if _, err := c.Read(buf); err == nil {
				rounds++
			}
			done.WakeAll()
		})
		done.Wait(p, 0)
		c.Rebind(p)
		c.Write([]byte("three"))
		if _, err := c.Read(buf); err == nil {
			rounds++
		}
		c.Close()
	})
	s.Run(30 * time.Second)
	s.Shutdown()
	if rounds != 3 {
		t.Fatalf("rounds = %d, want 3 across rebinds", rounds)
	}
}
