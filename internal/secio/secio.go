// Package secio selects the security scenario of the paper's evaluation:
// it exposes one Dial/Listen/Accept interface over the three transports
// compared in Figure 2 —
//
//	Basic: plain streams (no protection),
//	HIP:   streams inside BEET-mode ESP via the HIP fabric,
//	SSL:   plain streams wrapped in the tlslite channel,
//
// so the RUBiS service, the reverse proxy and the workload generators are
// written once and measured three times.
package secio

import (
	"errors"
	"io"
	"net/netip"
	"time"

	"hipcloud/internal/identity"
	"hipcloud/internal/keymat"
	"hipcloud/internal/netsim"
	"hipcloud/internal/simtcp"
	"hipcloud/internal/tlslite"
)

// Kind selects the security scenario.
type Kind int

// Scenarios, in the paper's terminology.
const (
	Basic Kind = iota
	HIP
	SSL
)

func (k Kind) String() string {
	switch k {
	case Basic:
		return "basic"
	case HIP:
		return "hip"
	case SSL:
		return "ssl"
	}
	return "kind(?)"
}

// ErrNeedIdentity is returned when SSL listeners lack a server identity.
var ErrNeedIdentity = errors.New("secio: SSL transport requires an identity")

// Transport binds a scenario to a node's stream stack.
type Transport struct {
	Kind  Kind
	Stack *simtcp.Stack
	// Identity is the tlslite server credential (SSL only).
	Identity *identity.HostIdentity
	// Costs is the tlslite cost model (SSL only).
	Costs tlslite.Costs
	// TLSCache enables client-side SSL session resumption (SSL only).
	TLSCache *tlslite.SessionCache
	// TLSSessions enables server-side SSL session resumption (SSL only).
	TLSSessions *tlslite.ServerSessions
	// TLSServerName keys the client session cache (SSL only).
	TLSServerName string
	// TLSSuites selects the tlslite record suites (SSL only). Nil keeps
	// the legacy AES-CTR channel and a byte-identical wire, so existing
	// goldens are untouched; a non-nil list turns on transcript-bound
	// suite negotiation (e.g. tlslite.PreferredSuites for the modern
	// single-pass AEAD record layer).
	TLSSuites []keymat.Suite
	// Rand supplies handshake randomness (SSL only; nil = crypto/rand).
	// Simulation drivers must pass the sim's seeded RNG: ECDSA signatures
	// over the hello randoms vary in DER length with their content, so
	// real entropy leaks into virtual transmission timing otherwise.
	Rand io.Reader
	// DialTimeout bounds connection establishment (default 10s).
	DialTimeout time.Duration
}

func (t *Transport) dialTimeout() time.Duration {
	if t.DialTimeout > 0 {
		return t.DialTimeout
	}
	return 10 * time.Second
}

// Conn is a byte stream bound to a process. Rebind transfers it to
// another process for connection pooling.
type Conn interface {
	io.ReadWriteCloser
	Rebind(p *netsim.Proc)
	// Abort resets the connection immediately, waking any process blocked
	// on it with an error. Close is graceful (FIN after the send buffer
	// drains) and does NOT unblock a stalled reader — watchdogs and
	// timeout paths must use Abort.
	Abort()
}

// charger bills tlslite CPU costs to the node's processor on behalf of
// whichever process the connection is currently bound to.
func (t *Transport) charger(b *simtcp.BoundConn) func(time.Duration) {
	node := t.Stack.Node()
	return func(d time.Duration) { node.CPU().Use(b.Proc(), d) }
}

// Dial connects to peer:port under the scenario. For HIP, peer is a HIT
// or an LSI; otherwise an IP address.
func (t *Transport) Dial(p *netsim.Proc, peer netip.Addr, port uint16) (Conn, error) {
	c, err := t.Stack.Dial(p, peer, port, t.dialTimeout())
	if err != nil {
		return nil, err
	}
	bound := c.Bind(p)
	if t.Kind != SSL {
		return bound, nil
	}
	tc, err := tlslite.Client(bound, tlslite.Config{
		Costs:      t.Costs,
		Charge:     t.charger(bound),
		Cache:      t.TLSCache,
		ServerName: t.TLSServerName,
		Rand:       t.Rand,
		Suites:     t.TLSSuites,
	})
	if err != nil {
		c.Abort()
		return nil, err
	}
	return &tlsConn{Conn: tc, raw: c, bound: bound}, nil
}

// Listener accepts scenario connections.
type Listener struct {
	t *Transport
	l *simtcp.Listener
}

// Listen binds a listener on port.
func (t *Transport) Listen(port uint16) (*Listener, error) {
	if t.Kind == SSL && t.Identity == nil {
		return nil, ErrNeedIdentity
	}
	l, err := t.Stack.Listen(port)
	if err != nil {
		return nil, err
	}
	return &Listener{t: t, l: l}, nil
}

// MustListen is Listen that panics on error.
func (t *Transport) MustListen(port uint16) *Listener {
	l, err := t.Listen(port)
	if err != nil {
		panic(err)
	}
	return l
}

// AcceptRaw waits for a connection without performing the security
// handshake; servers pass the raw connection to a handler process which
// calls Transport.ServerConn, so handshakes don't serialize the accept
// loop.
func (l *Listener) AcceptRaw(p *netsim.Proc, timeout time.Duration) (*simtcp.Conn, error) {
	return l.l.Accept(p, timeout)
}

// Accept waits for a connection and completes any security handshake
// inline (convenience for single-connection servers and tests).
func (l *Listener) Accept(p *netsim.Proc, timeout time.Duration) (Conn, error) {
	c, err := l.l.Accept(p, timeout)
	if err != nil {
		return nil, err
	}
	return l.t.ServerConn(p, c)
}

// ServerConn upgrades a raw accepted connection for the scenario,
// performing the server-side handshake in the calling process.
func (t *Transport) ServerConn(p *netsim.Proc, c *simtcp.Conn) (Conn, error) {
	bound := c.Bind(p)
	if t.Kind != SSL {
		return bound, nil
	}
	tc, err := tlslite.Server(bound, tlslite.Config{
		Identity: t.Identity,
		Costs:    t.Costs,
		Charge:   t.charger(bound),
		Sessions: t.TLSSessions,
		Rand:     t.Rand,
		Suites:   t.TLSSuites,
	})
	if err != nil {
		c.Abort()
		return nil, err
	}
	return &tlsConn{Conn: tc, raw: c, bound: bound}, nil
}

// Close stops the listener.
func (l *Listener) Close() { l.l.Close() }

// tlsConn closes both the channel and the carrier stream.
type tlsConn struct {
	*tlslite.Conn
	raw   *simtcp.Conn
	bound *simtcp.BoundConn
}

func (c *tlsConn) Close() error {
	err := c.Conn.Close()
	c.raw.Close()
	return err
}

// Rebind transfers the carrier stream to another process.
func (c *tlsConn) Rebind(p *netsim.Proc) { c.bound.Rebind(p) }

// Abort resets the carrier stream immediately.
func (c *tlsConn) Abort() { c.raw.Abort() }
