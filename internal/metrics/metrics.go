// Package metrics provides the measurement plumbing of the benchmark
// harness: latency histograms with mean/stddev/percentiles (what jmeter
// and httperf report), throughput counters, and fixed-width table
// rendering for regenerating the paper's figures as text.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Histogram collects duration samples.
type Histogram struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(d time.Duration) {
	h.samples = append(h.samples, d)
	h.sorted = false
}

// Count reports the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the arithmetic mean.
func (h *Histogram) Mean() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// StdDev returns the population standard deviation.
func (h *Histogram) StdDev() time.Duration {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	mean := float64(h.Mean())
	var acc float64
	for _, s := range h.samples {
		d := float64(s) - mean
		acc += d * d
	}
	return time.Duration(math.Sqrt(acc / float64(n)))
}

// Percentile returns the p-th percentile (0 < p <= 100).
func (h *Histogram) Percentile(p float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	idx := int(math.Ceil(p/100*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Min returns the smallest sample.
func (h *Histogram) Min() time.Duration { return h.Percentile(0.0001) }

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.Percentile(100) }

// Summary is a compact, printable digest.
type Summary struct {
	Count         int
	Mean, StdDev  time.Duration
	P50, P95, P99 time.Duration
	Min, Max      time.Duration
}

// Summarize digests the histogram.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(), Mean: h.Mean(), StdDev: h.StdDev(),
		P50: h.Percentile(50), P95: h.Percentile(95), P99: h.Percentile(99),
		Min: h.Min(), Max: h.Max(),
	}
}

// Table renders aligned rows for harness output.
type Table struct {
	Title   string
	Header  []string
	rows    [][]string
	Caption string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Row appends one row; cells are formatted with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.1fms", float64(v)/1e6)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}

// Mbps converts bytes over a duration to megabits per second.
func Mbps(bytes uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds() / 1e6
}

// Rate converts a count over a duration to events per second.
func Rate(count int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(count) / d.Seconds()
}
