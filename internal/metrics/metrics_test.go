package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.StdDev() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
	for _, ms := range []int{10, 20, 30, 40, 50} {
		h.Add(time.Duration(ms) * time.Millisecond)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 30*time.Millisecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	// Population stddev of {10..50 step 10} ms = sqrt(200) ms ≈ 14.14ms.
	want := time.Duration(math.Sqrt(200) * float64(time.Millisecond))
	if d := h.StdDev() - want; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("stddev = %v, want ≈%v", h.StdDev(), want)
	}
	if h.Percentile(50) != 30*time.Millisecond {
		t.Fatalf("p50 = %v", h.Percentile(50))
	}
	if h.Min() != 10*time.Millisecond || h.Max() != 50*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	s := h.Summarize()
	if s.Count != 5 || s.P99 != 50*time.Millisecond {
		t.Fatalf("summary: %+v", s)
	}
}

func TestHistogramAddAfterPercentile(t *testing.T) {
	var h Histogram
	h.Add(5 * time.Millisecond)
	_ = h.Percentile(50) // sorts
	h.Add(1 * time.Millisecond)
	if h.Percentile(1) != time.Millisecond {
		t.Fatal("sample added after sorting was lost or misplaced")
	}
}

// Property: percentiles are monotone and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(samples []uint16) bool {
		if len(samples) == 0 {
			return true
		}
		var h Histogram
		for _, s := range samples {
			h.Add(time.Duration(s) * time.Microsecond)
		}
		prev := time.Duration(-1)
		for p := 1.0; p <= 100; p += 7 {
			v := h.Percentile(p)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "name", "value", "latency")
	tbl.Row("alpha", 3.14159, 1500*time.Microsecond)
	tbl.Row("beta-longer-name", 42, "raw")
	tbl.Caption = "a caption"
	out := tbl.String()
	for _, want := range []string{"== demo ==", "alpha", "3.1", "1.5ms", "beta-longer-name", "a caption"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title, header, separator, 2 rows, caption.
	if len(lines) != 6 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	// Columns aligned: header and rows share the separator's width.
	if len(lines[1]) > len(lines[2])+2 {
		t.Fatalf("misaligned header/separator:\n%s", out)
	}
}

func TestMbpsAndRate(t *testing.T) {
	if got := Mbps(12_500_000, time.Second); got != 100 {
		t.Fatalf("Mbps = %v", got)
	}
	if got := Rate(300, 10*time.Second); got != 30 {
		t.Fatalf("Rate = %v", got)
	}
	if Mbps(1, 0) != 0 || Rate(1, 0) != 0 {
		t.Fatal("zero-duration should not divide by zero")
	}
}
