// Deterministic Host Identity generation for simulations.
//
// The experiment harness needs identical HITs on every run: HITs feed the
// HIP puzzle (I = HMAC(secret, HIT-I | HIT-R)), so identities drawn from
// crypto/rand change the number of puzzle attempts — and with it the
// charged CPU cost — from run to run, breaking byte-identical replay and
// golden-output tests. Since Go 1.20 the stdlib key generators are
// deliberately nondeterministic even with a fixed io.Reader
// (randutil.MaybeReadByte), so this file derives keys from an explicit
// seed with hand-rolled, fully deterministic constructions:
//
//   - RSA-2048: primes drawn from an HMAC-SHA256 counter DRBG, key built
//     directly from (p, q, e); PKCS#1 v1.5 signatures are deterministic
//     by construction.
//   - ECDSA P-256: scalar from the DRBG; signing uses a deterministic
//     per-message nonce (RFC 6979 style: HMAC of key and digest), so
//     signature bytes — and their variable DER length — replay exactly.
//   - Ed25519: seed keys (deterministic keygen and signatures by spec).
//
// These identities are for simulation only: the seed fully determines the
// private key, so anyone who knows the seed string owns the identity.
// Real drivers (cmd/hipd, examples) keep using Generate / crypto/rand.
package identity

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/ed25519"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/asn1"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
	"sync"
)

// detStream is an HMAC-SHA256 counter DRBG: block i is
// HMAC(key, uint64(i)), with key = HMAC(domain-sep, seed).
type detStream struct {
	key []byte
	ctr uint64
	buf []byte
}

func newDetStream(domain, seed string) *detStream {
	m := hmac.New(sha256.New, []byte("hipcloud-identity-detgen-v1"))
	io.WriteString(m, domain)
	m.Write([]byte{0})
	io.WriteString(m, seed)
	return &detStream{key: m.Sum(nil)}
}

func (d *detStream) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if len(d.buf) == 0 {
			var ctr [8]byte
			binary.BigEndian.PutUint64(ctr[:], d.ctr)
			d.ctr++
			m := hmac.New(sha256.New, d.key)
			m.Write(ctr[:])
			d.buf = m.Sum(nil)
		}
		c := copy(p, d.buf)
		p = p[c:]
		d.buf = d.buf[c:]
	}
	return n, nil
}

var bigOne = big.NewInt(1)

// detPrime draws candidates from s until one is prime and coprime in p-1
// with e. Top two bits are forced so the product of two such primes has
// exactly 2*len bits; the low bit makes candidates odd.
func detPrime(s *detStream, bytes int, e *big.Int) *big.Int {
	buf := make([]byte, bytes)
	for {
		if _, err := io.ReadFull(s, buf); err != nil {
			panic(err) // detStream never fails
		}
		buf[0] |= 0xc0
		buf[bytes-1] |= 1
		p := new(big.Int).SetBytes(buf)
		if !p.ProbablyPrime(32) {
			continue
		}
		pm1 := new(big.Int).Sub(p, bigOne)
		if new(big.Int).GCD(nil, nil, pm1, e).Cmp(bigOne) != 0 {
			continue
		}
		return p
	}
}

// detRSAKey builds an RSA key of the given size from the stream. Unlike
// rsa.GenerateKey it is reproducible: same stream, same key.
func detRSAKey(s *detStream, bits int) (*rsa.PrivateKey, error) {
	e := big.NewInt(65537)
	p := detPrime(s, bits/16, e)
	q := detPrime(s, bits/16, e)
	for p.Cmp(q) == 0 {
		q = detPrime(s, bits/16, e)
	}
	n := new(big.Int).Mul(p, q)
	phi := new(big.Int).Mul(new(big.Int).Sub(p, bigOne), new(big.Int).Sub(q, bigOne))
	d := new(big.Int).ModInverse(e, phi)
	if d == nil {
		return nil, fmt.Errorf("identity: no modular inverse (non-coprime primes)")
	}
	priv := &rsa.PrivateKey{
		PublicKey: rsa.PublicKey{N: n, E: 65537},
		D:         d,
		Primes:    []*big.Int{p, q},
	}
	priv.Precompute()
	if err := priv.Validate(); err != nil {
		return nil, fmt.Errorf("identity: deterministic RSA key invalid: %w", err)
	}
	return priv, nil
}

// detECDSAKey derives a P-256 scalar from the stream:
// d = 1 + (x mod (n-1)) for a 256-bit draw x.
func detECDSAKey(s *detStream) *ecdsa.PrivateKey {
	curve := elliptic.P256()
	nm1 := new(big.Int).Sub(curve.Params().N, bigOne)
	var b [32]byte
	if _, err := io.ReadFull(s, b[:]); err != nil {
		panic(err)
	}
	d := new(big.Int).SetBytes(b[:])
	d.Mod(d, nm1)
	d.Add(d, bigOne)
	priv := &ecdsa.PrivateKey{D: d}
	priv.Curve = curve
	priv.X, priv.Y = curve.ScalarBaseMult(d.Bytes())
	return priv
}

// ecdsaSignature is the standard ASN.1 SEQUENCE { r, s } wire form,
// compatible with ecdsa.VerifyASN1.
type ecdsaSignature struct {
	R, S *big.Int
}

// detECDSASigner signs with a deterministic per-message nonce instead of
// the stdlib's randomized (hedged) nonce, so signature bytes — including
// the 70–72 byte DER length wobble — are a pure function of the message.
type detECDSASigner struct {
	priv *ecdsa.PrivateKey
}

func (ds detECDSASigner) Public() crypto.PublicKey { return &ds.priv.PublicKey }

// detNonce derives k in [1, n-1] from the private scalar and digest
// (RFC 6979 in spirit: unique and secret per message, not bit-exact 6979).
func (ds detECDSASigner) detNonce(digest []byte, retry uint32, n *big.Int) *big.Int {
	var key [32]byte
	ds.priv.D.FillBytes(key[:])
	m := hmac.New(sha256.New, key[:])
	m.Write(digest)
	var r [4]byte
	binary.BigEndian.PutUint32(r[:], retry)
	m.Write(r[:])
	k := new(big.Int).SetBytes(m.Sum(nil))
	k.Mod(k, new(big.Int).Sub(n, bigOne))
	k.Add(k, bigOne)
	return k
}

func (ds detECDSASigner) Sign(_ io.Reader, digest []byte, _ crypto.SignerOpts) ([]byte, error) {
	curve := ds.priv.Curve
	n := curve.Params().N
	z := new(big.Int).SetBytes(digest)
	z.Mod(z, n)
	for retry := uint32(0); ; retry++ {
		k := ds.detNonce(digest, retry, n)
		rx, _ := curve.ScalarBaseMult(k.Bytes())
		r := new(big.Int).Mod(rx, n)
		if r.Sign() == 0 {
			continue
		}
		kInv := new(big.Int).ModInverse(k, n)
		s := new(big.Int).Mul(r, ds.priv.D)
		s.Add(s, z)
		s.Mul(s, kInv)
		s.Mod(s, n)
		if s.Sign() == 0 {
			continue
		}
		return asn1.Marshal(ecdsaSignature{R: r, S: s})
	}
}

// detCache memoizes derived identities: repeated runs (determinism tests,
// chaos replay) rebuild deployments with identical seeds, and RSA prime
// derivation costs tens of milliseconds per key. Sharing the *HostIdentity
// is safe — it is immutable after construction — and cannot perturb
// determinism, because a cached key is byte-identical to a rederived one.
var detCache = struct {
	mu sync.Mutex
	m  map[string]*HostIdentity
}{m: make(map[string]*HostIdentity)}

// GenerateDeterministic derives a Host Identity entirely from (alg, seed):
// the same pair yields the same key, HIT and signature bytes on every run
// and every platform. Simulation use only — the seed IS the private key.
func GenerateDeterministic(alg Algorithm, seed string) (*HostIdentity, error) {
	ck := fmt.Sprintf("%d\x00%s", alg, seed)
	detCache.mu.Lock()
	hi, ok := detCache.m[ck]
	detCache.mu.Unlock()
	if ok {
		return hi, nil
	}
	hi, err := generateDeterministic(alg, seed)
	if err != nil {
		return nil, err
	}
	detCache.mu.Lock()
	detCache.m[ck] = hi
	detCache.mu.Unlock()
	return hi, nil
}

func generateDeterministic(alg Algorithm, seed string) (*HostIdentity, error) {
	switch alg {
	case AlgRSA:
		k, err := detRSAKey(newDetStream("rsa-2048", seed), 2048)
		if err != nil {
			return nil, err
		}
		return fromSigner(alg, k)
	case AlgECDSA:
		k := detECDSAKey(newDetStream("ecdsa-p256", seed))
		return fromSigner(alg, detECDSASigner{priv: k})
	case AlgEd25519:
		var b [ed25519.SeedSize]byte
		s := newDetStream("ed25519", seed)
		if _, err := io.ReadFull(s, b[:]); err != nil {
			return nil, err
		}
		return fromSigner(alg, ed25519.NewKeyFromSeed(b[:]))
	}
	return nil, ErrBadAlgorithm
}

// MustGenerateDeterministic is GenerateDeterministic that panics on error.
func MustGenerateDeterministic(alg Algorithm, seed string) *HostIdentity {
	hi, err := GenerateDeterministic(alg, seed)
	if err != nil {
		panic(err)
	}
	return hi
}
