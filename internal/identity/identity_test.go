package identity

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

// cached identities: RSA keygen is slow; share across tests.
var (
	rsaHI   = MustGenerate(AlgRSA)
	ecHI    = MustGenerate(AlgECDSA)
	edHI    = MustGenerate(AlgEd25519)
	testHIs = []*HostIdentity{rsaHI, ecHI, edHI}
)

func TestHITHasORCHIDPrefix(t *testing.T) {
	for _, hi := range testHIs {
		hit := hi.HIT()
		if !IsHIT(hit) {
			t.Errorf("%v: HIT %v not in %v", hi.Algorithm(), hit, HITPrefix)
		}
		if !hit.Is6() {
			t.Errorf("%v: HIT is not IPv6", hi.Algorithm())
		}
	}
}

func TestHITStableAndDistinct(t *testing.T) {
	seen := map[netip.Addr]bool{}
	for _, hi := range testHIs {
		pub, err := ParsePublicID(hi.Algorithm(), hi.Public().DER)
		if err != nil {
			t.Fatalf("%v: reparse: %v", hi.Algorithm(), err)
		}
		if pub.HIT() != hi.HIT() {
			t.Errorf("%v: HIT changed across reparse: %v vs %v", hi.Algorithm(), pub.HIT(), hi.HIT())
		}
		if seen[hi.HIT()] {
			t.Errorf("HIT collision for %v", hi.Algorithm())
		}
		seen[hi.HIT()] = true
	}
}

func TestSignVerify(t *testing.T) {
	msg := []byte("the base exchange packet contents")
	for _, hi := range testHIs {
		sig, err := hi.Sign(msg)
		if err != nil {
			t.Fatalf("%v: sign: %v", hi.Algorithm(), err)
		}
		pub := hi.Public()
		if err := pub.Verify(msg, sig); err != nil {
			t.Errorf("%v: verify: %v", hi.Algorithm(), err)
		}
		bad := append([]byte(nil), msg...)
		bad[0] ^= 0xff
		if err := pub.Verify(bad, sig); err == nil {
			t.Errorf("%v: tampered message verified", hi.Algorithm())
		}
		badSig := append([]byte(nil), sig...)
		badSig[len(badSig)/2] ^= 0x01
		if err := pub.Verify(msg, badSig); err == nil {
			t.Errorf("%v: tampered signature verified", hi.Algorithm())
		}
	}
}

func TestCrossKeyVerifyFails(t *testing.T) {
	msg := []byte("hello")
	sig, err := ecHI.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	other := MustGenerate(AlgECDSA).Public()
	if err := other.Verify(msg, sig); err == nil {
		t.Fatal("signature verified under wrong key")
	}
}

func TestParsePublicIDRejectsGarbage(t *testing.T) {
	if _, err := ParsePublicID(AlgRSA, []byte("not DER at all")); err == nil {
		t.Fatal("garbage DER accepted")
	}
	// Valid DER of the wrong algorithm must be rejected.
	if _, err := ParsePublicID(AlgRSA, ecHI.Public().DER); err != ErrBadAlgorithm {
		t.Fatalf("wrong-alg err = %v, want ErrBadAlgorithm", err)
	}
	if _, err := ParsePublicID(Algorithm(42), ecHI.Public().DER); err != ErrBadAlgorithm {
		t.Fatalf("unknown-alg err = %v, want ErrBadAlgorithm", err)
	}
}

func TestGenerateUnknownAlgorithm(t *testing.T) {
	if _, err := Generate(AlgDSA); err != ErrBadAlgorithm {
		t.Fatalf("err = %v, want ErrBadAlgorithm", err)
	}
}

func TestLSIFromHIT(t *testing.T) {
	lsi, err := LSIFromHIT(ecHI.HIT())
	if err != nil {
		t.Fatal(err)
	}
	if !IsLSI(lsi) {
		t.Fatalf("derived LSI %v not in %v", lsi, LSIPrefix)
	}
	again, _ := LSIFromHIT(ecHI.HIT())
	if lsi != again {
		t.Fatal("LSI derivation not deterministic")
	}
	if _, err := LSIFromHIT(netip.MustParseAddr("192.0.2.1")); err != ErrNotHIT {
		t.Fatalf("err = %v, want ErrNotHIT", err)
	}
}

func TestLSIAllocatorUniqueAndReversible(t *testing.T) {
	a := NewLSIAllocator()
	hits := []netip.Addr{rsaHI.HIT(), ecHI.HIT(), edHI.HIT()}
	seen := map[netip.Addr]netip.Addr{}
	for _, hit := range hits {
		lsi, err := a.Assign(hit)
		if err != nil {
			t.Fatal(err)
		}
		if prior, dup := seen[lsi]; dup {
			t.Fatalf("LSI %v assigned to both %v and %v", lsi, prior, hit)
		}
		seen[lsi] = hit
		back, ok := a.Lookup(lsi)
		if !ok || back != hit {
			t.Fatalf("Lookup(%v) = %v,%v", lsi, back, ok)
		}
		// Idempotent.
		lsi2, _ := a.Assign(hit)
		if lsi2 != lsi {
			t.Fatalf("re-Assign changed LSI: %v vs %v", lsi2, lsi)
		}
	}
}

func TestLSIAllocatorCollisionFallback(t *testing.T) {
	a := NewLSIAllocator()
	hit1 := ecHI.HIT()
	lsi1, _ := a.Assign(hit1)
	// Force the derived LSI of a second HIT to collide by pre-inserting it.
	hit2 := rsaHI.HIT()
	derived, _ := LSIFromHIT(hit2)
	a.byLSI[derived] = hit1 // simulate collision
	lsi2, err := a.Assign(hit2)
	if err != nil {
		t.Fatal(err)
	}
	if lsi2 == derived || lsi2 == lsi1 {
		t.Fatalf("collision not avoided: %v", lsi2)
	}
	if !IsLSI(lsi2) {
		t.Fatalf("fallback LSI %v outside prefix", lsi2)
	}
}

func TestDeriveHITPropertyPrefixAlwaysORCHID(t *testing.T) {
	f := func(der []byte) bool {
		return HITPrefix.Contains(deriveHIT(der))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveHITPropertyDistinctInputsDistinctTags(t *testing.T) {
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		return deriveHIT(a) != deriveHIT(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSignVerifyECDSA(b *testing.B) {
	msg := []byte("base exchange packet bytes for signing")
	for i := 0; i < b.N; i++ {
		sig, err := ecHI.Sign(msg)
		if err != nil {
			b.Fatal(err)
		}
		pub := ecHI.Public()
		if err := pub.Verify(msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHITDerivation(b *testing.B) {
	der := ecHI.Public().DER
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = deriveHIT(der)
	}
}
