package identity

import (
	"bytes"
	"testing"
)

// TestDeterministicStable: same (alg, seed) must reproduce the same HIT,
// HI encoding and signature bytes — bypassing the cache for the rebuild.
func TestDeterministicStable(t *testing.T) {
	msg := []byte("the quick brown fox")
	for _, alg := range []Algorithm{AlgRSA, AlgECDSA, AlgEd25519} {
		a, err := generateDeterministic(alg, "stable-seed")
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		b, err := generateDeterministic(alg, "stable-seed")
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if a.HIT() != b.HIT() {
			t.Errorf("%v: HITs differ across rederivations: %v vs %v", alg, a.HIT(), b.HIT())
		}
		if !bytes.Equal(a.Public().DER, b.Public().DER) {
			t.Errorf("%v: HI encodings differ across rederivations", alg)
		}
		s1, err := a.Sign(msg)
		if err != nil {
			t.Fatalf("%v sign: %v", alg, err)
		}
		s2, err := b.Sign(msg)
		if err != nil {
			t.Fatalf("%v sign: %v", alg, err)
		}
		if !bytes.Equal(s1, s2) {
			t.Errorf("%v: signatures nondeterministic", alg)
		}
	}
}

// TestDeterministicDistinctSeeds: different seeds must give different HITs.
func TestDeterministicDistinctSeeds(t *testing.T) {
	for _, alg := range []Algorithm{AlgRSA, AlgECDSA, AlgEd25519} {
		a := MustGenerateDeterministic(alg, "seed-a")
		b := MustGenerateDeterministic(alg, "seed-b")
		if a.HIT() == b.HIT() {
			t.Errorf("%v: distinct seeds share a HIT", alg)
		}
	}
}

// TestDeterministicSignVerify: signatures from deterministic keys must
// verify through the standard wire-compatible path, and fail on tampering.
func TestDeterministicSignVerify(t *testing.T) {
	msg := []byte("verify me")
	for _, alg := range []Algorithm{AlgRSA, AlgECDSA, AlgEd25519} {
		hi := MustGenerateDeterministic(alg, "sv-seed")
		sig, err := hi.Sign(msg)
		if err != nil {
			t.Fatalf("%v sign: %v", alg, err)
		}
		pub := hi.Public()
		if err := pub.Verify(msg, sig); err != nil {
			t.Errorf("%v: valid signature rejected: %v", alg, err)
		}
		// Round-trip the public identity through its wire form, as a HIP
		// peer would receive it.
		parsed, err := ParsePublicID(alg, pub.DER)
		if err != nil {
			t.Fatalf("%v parse: %v", alg, err)
		}
		if err := parsed.Verify(msg, sig); err != nil {
			t.Errorf("%v: parsed identity rejects valid signature: %v", alg, err)
		}
		bad := append([]byte(nil), msg...)
		bad[0] ^= 1
		if err := parsed.Verify(bad, sig); err == nil {
			t.Errorf("%v: tampered message accepted", alg)
		}
	}
}

// TestDeterministicCache: the cache must hand back the identical identity.
func TestDeterministicCache(t *testing.T) {
	a := MustGenerateDeterministic(AlgECDSA, "cache-seed")
	b := MustGenerateDeterministic(AlgECDSA, "cache-seed")
	if a != b {
		t.Error("cache did not dedupe identical (alg, seed)")
	}
}
