// Package identity implements HIP Host Identities: public-key identities
// (RSA, ECDSA P-256, Ed25519), Host Identity Tags (HITs — 128-bit
// ORCHID-style hashes with the dedicated IPv6 prefix, RFC 4843/5201) and
// Local-Scope Identifiers (LSIs — per-host IPv4 aliases from 1.0.0.0/8,
// RFC 5338).
package identity

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/ed25519"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
	"net/netip"
	"sync"
)

// Algorithm identifies the Host Identity key algorithm (RFC 5201 registry
// values where they exist).
type Algorithm uint8

// Supported HI algorithms.
const (
	AlgDSA     Algorithm = 3 // registry value; unsupported here
	AlgRSA     Algorithm = 5
	AlgECDSA   Algorithm = 7 // RFC 7401 ECDSA
	AlgEd25519 Algorithm = 13
)

func (a Algorithm) String() string {
	switch a {
	case AlgRSA:
		return "RSA"
	case AlgECDSA:
		return "ECDSA-P256"
	case AlgEd25519:
		return "Ed25519"
	case AlgDSA:
		return "DSA"
	}
	return fmt.Sprintf("alg(%d)", uint8(a))
}

// HITPrefix is the ORCHID prefix reserved for HITs (2001:10::/28).
var HITPrefix = netip.MustParsePrefix("2001:10::/28")

// LSIPrefix is the local-scope identifier prefix (1.0.0.0/8).
var LSIPrefix = netip.MustParsePrefix("1.0.0.0/8")

// Errors returned by this package.
var (
	ErrBadAlgorithm = errors.New("identity: unsupported algorithm")
	ErrBadSignature = errors.New("identity: signature verification failed")
	ErrNotHIT       = errors.New("identity: address is not a HIT")
)

// HostIdentity is a private-public HIP identity.
type HostIdentity struct {
	alg  Algorithm
	priv crypto.Signer
	pub  PublicID
}

// PublicID is the public half of a Host Identity: enough to verify
// signatures and derive the HIT.
type PublicID struct {
	Alg Algorithm
	// DER is the PKIX-marshaled public key (the canonical HI wire form
	// used in HOST_ID parameters and for HIT derivation).
	DER []byte
	key crypto.PublicKey
	hit netip.Addr
}

// Generate creates a fresh Host Identity. RSA uses 2048-bit keys.
func Generate(alg Algorithm) (*HostIdentity, error) {
	switch alg {
	case AlgRSA:
		k, err := rsa.GenerateKey(rand.Reader, 2048)
		if err != nil {
			return nil, err
		}
		return fromSigner(alg, k)
	case AlgECDSA:
		k, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
		if err != nil {
			return nil, err
		}
		return fromSigner(alg, k)
	case AlgEd25519:
		_, k, err := ed25519.GenerateKey(rand.Reader)
		if err != nil {
			return nil, err
		}
		return fromSigner(alg, k)
	}
	return nil, ErrBadAlgorithm
}

// MustGenerate is Generate that panics on error (setup/test convenience).
func MustGenerate(alg Algorithm) *HostIdentity {
	hi, err := Generate(alg)
	if err != nil {
		panic(err)
	}
	return hi
}

func fromSigner(alg Algorithm, s crypto.Signer) (*HostIdentity, error) {
	pub, err := NewPublicID(alg, s.Public())
	if err != nil {
		return nil, err
	}
	return &HostIdentity{alg: alg, priv: s, pub: *pub}, nil
}

// NewPublicID wraps a parsed public key.
func NewPublicID(alg Algorithm, key crypto.PublicKey) (*PublicID, error) {
	der, err := x509.MarshalPKIXPublicKey(key)
	if err != nil {
		return nil, err
	}
	p := &PublicID{Alg: alg, DER: der, key: key}
	p.hit = deriveHIT(der)
	return p, nil
}

// ParsePublicID parses the wire form (algorithm + PKIX DER) of an HI.
func ParsePublicID(alg Algorithm, der []byte) (*PublicID, error) {
	key, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("identity: parsing HI: %w", err)
	}
	switch alg {
	case AlgRSA:
		if _, ok := key.(*rsa.PublicKey); !ok {
			return nil, ErrBadAlgorithm
		}
	case AlgECDSA:
		if _, ok := key.(*ecdsa.PublicKey); !ok {
			return nil, ErrBadAlgorithm
		}
	case AlgEd25519:
		if _, ok := key.(ed25519.PublicKey); !ok {
			return nil, ErrBadAlgorithm
		}
	default:
		return nil, ErrBadAlgorithm
	}
	// The identity outlives the packet that carried the key, and parsed
	// parameter bodies alias the packet's arena — so the DER copy is
	// deliberate (exact-size): aliasing would pin the whole arena for the
	// identity's lifetime.
	derCopy := make([]byte, len(der))
	copy(derCopy, der)
	p := &PublicID{Alg: alg, DER: derCopy, key: key}
	p.hit = deriveHIT(der)
	return p, nil
}

// deriveHIT computes the ORCHID-style HIT: the 28-bit prefix 2001:10::/28
// followed by the top 100 bits of SHA-256 over the canonical HI encoding.
func deriveHIT(der []byte) netip.Addr {
	sum := sha256.Sum256(der)
	var a [16]byte
	// Prefix 2001:0010::/28 -> first 28 bits fixed.
	a[0], a[1], a[2] = 0x20, 0x01, 0x00
	// Remaining 4 bits of a[3] plus 12 more bytes and change come from hash.
	// Take 100 bits of digest: fill a[3]&0x0f then a[4..15].
	a[3] = 0x10 | (sum[0] >> 4)
	for i := 0; i < 12; i++ {
		a[4+i] = sum[i]<<4 | sum[i+1]>>4
	}
	return netip.AddrFrom16(a)
}

// Public returns the public half.
func (h *HostIdentity) Public() PublicID { return h.pub }

// Algorithm returns the key algorithm.
func (h *HostIdentity) Algorithm() Algorithm { return h.alg }

// HIT returns the Host Identity Tag.
func (h *HostIdentity) HIT() netip.Addr { return h.pub.hit }

// HIT returns the Host Identity Tag for the public identity.
func (p *PublicID) HIT() netip.Addr { return p.hit }

// Key returns the parsed public key.
func (p *PublicID) Key() crypto.PublicKey { return p.key }

// Sign signs msg with the private key. RSA uses PKCS#1v1.5/SHA-256, ECDSA
// uses ASN.1/SHA-256, Ed25519 signs the message directly.
func (h *HostIdentity) Sign(msg []byte) ([]byte, error) {
	switch h.alg {
	case AlgRSA, AlgECDSA:
		sum := sha256.Sum256(msg)
		return h.priv.Sign(rand.Reader, sum[:], crypto.SHA256)
	case AlgEd25519:
		return h.priv.Sign(rand.Reader, msg, crypto.Hash(0))
	}
	return nil, ErrBadAlgorithm
}

// Verify checks sig over msg against the public identity.
func (p *PublicID) Verify(msg, sig []byte) error {
	switch p.Alg {
	case AlgRSA:
		sum := sha256.Sum256(msg)
		if err := rsa.VerifyPKCS1v15(p.key.(*rsa.PublicKey), crypto.SHA256, sum[:], sig); err != nil {
			return ErrBadSignature
		}
		return nil
	case AlgECDSA:
		sum := sha256.Sum256(msg)
		if !ecdsa.VerifyASN1(p.key.(*ecdsa.PublicKey), sum[:], sig) {
			return ErrBadSignature
		}
		return nil
	case AlgEd25519:
		if !ed25519.Verify(p.key.(ed25519.PublicKey), msg, sig) {
			return ErrBadSignature
		}
		return nil
	}
	return ErrBadAlgorithm
}

// IsHIT reports whether a is inside the ORCHID HIT prefix.
func IsHIT(a netip.Addr) bool { return a.Is6() && HITPrefix.Contains(a) }

// IsLSI reports whether a is a local-scope identifier.
func IsLSI(a netip.Addr) bool { return a.Is4() && LSIPrefix.Contains(a) }

// LSIFromHIT derives a deterministic default LSI for a HIT: 1.x.y.z from
// the low bytes of the HIT (SHA-1 folded for spread). Hosts may override
// via LSIAllocator when collisions occur.
func LSIFromHIT(hit netip.Addr) (netip.Addr, error) {
	if !IsHIT(hit) {
		return netip.Addr{}, ErrNotHIT
	}
	b := hit.As16()
	sum := sha1.Sum(b[:])
	return netip.AddrFrom4([4]byte{1, sum[0], sum[1], sum[2]}), nil
}

// LSIAllocator hands out unique LSIs per HIT on one host.
type LSIAllocator struct {
	mu    sync.Mutex
	byHIT map[netip.Addr]netip.Addr
	byLSI map[netip.Addr]netip.Addr
	next  uint32
}

// NewLSIAllocator creates an empty allocator.
func NewLSIAllocator() *LSIAllocator {
	return &LSIAllocator{
		byHIT: make(map[netip.Addr]netip.Addr),
		byLSI: make(map[netip.Addr]netip.Addr),
		next:  1,
	}
}

// Assign returns the LSI for hit, allocating one if needed. The default
// derivation is used unless it collides with an existing assignment.
func (a *LSIAllocator) Assign(hit netip.Addr) (netip.Addr, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if lsi, ok := a.byHIT[hit]; ok {
		return lsi, nil
	}
	lsi, err := LSIFromHIT(hit)
	if err != nil {
		return netip.Addr{}, err
	}
	for {
		if _, taken := a.byLSI[lsi]; !taken {
			break
		}
		a.next++
		lsi = netip.AddrFrom4([4]byte{1, byte(a.next >> 16), byte(a.next >> 8), byte(a.next)})
	}
	a.byHIT[hit] = lsi
	a.byLSI[lsi] = hit
	return lsi, nil
}

// Lookup resolves an LSI back to its HIT.
func (a *LSIAllocator) Lookup(lsi netip.Addr) (netip.Addr, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	hit, ok := a.byLSI[lsi]
	return hit, ok
}

// HITOf returns the LSI previously assigned for hit, if any.
func (a *LSIAllocator) HITOf(hit netip.Addr) (netip.Addr, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lsi, ok := a.byHIT[hit]
	return lsi, ok
}
