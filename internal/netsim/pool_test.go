package netsim

import "testing"

func TestBufPoolClassSelection(t *testing.T) {
	for _, tc := range []struct{ n, wantCap int }{
		{0, classSmall}, {1, classSmall}, {classSmall, classSmall},
		{classSmall + 1, classMTU}, {1400, classMTU}, {classMTU, classMTU},
		{classSeg, classSeg}, {classMax, classMax},
	} {
		b := GetBuf(tc.n)
		if len(b) != tc.n {
			t.Fatalf("GetBuf(%d) len = %d", tc.n, len(b))
		}
		if cap(b) < tc.wantCap {
			t.Fatalf("GetBuf(%d) cap = %d, want >= %d", tc.n, cap(b), tc.wantCap)
		}
		PutBuf(b)
	}
	// Oversized requests fall through to plain allocation.
	big := GetBuf(classMax + 1)
	if len(big) != classMax+1 {
		t.Fatalf("oversized GetBuf len = %d", len(big))
	}
	PutBuf(big) // must not panic; joins classMax
}

func TestBufPoolReusesBuffers(t *testing.T) {
	b := GetBuf(1400)
	b[0] = 0xEE
	PutBuf(b)
	// The next same-class Get on this goroutine should hand back the same
	// backing array (sync.Pool per-P cache).
	c := GetBuf(600)
	if &b[0] != &c[0] {
		t.Log("pool did not reuse the buffer (legal but unexpected under no GC pressure)")
	}
	PutBuf(c)
}

func TestBufPoolSubsliceRejoinsSmallerClass(t *testing.T) {
	b := GetBuf(classSeg) // 16 KiB class
	sub := b[:100:classMTU]
	PutBuf(sub) // cap 2048 → MTU class, not Seg
	got := GetBuf(classMTU)
	if cap(got) < classMTU {
		t.Fatalf("cap = %d", cap(got))
	}
	PutBuf(got)
}

func TestBufPoolZeroAllocSteadyState(t *testing.T) {
	for i := 0; i < 8; i++ {
		PutBuf(GetBuf(1400))
	}
	allocs := testing.AllocsPerRun(200, func() {
		PutBuf(GetBuf(1400))
	})
	// Strictly zero in steady state; tolerate a stray GC clearing the
	// pool mid-measurement.
	if allocs >= 1 {
		t.Errorf("GetBuf/PutBuf allocates %v/op, want 0", allocs)
	}
}

func BenchmarkBufPoolGetPut1400(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PutBuf(GetBuf(1400))
	}
}
