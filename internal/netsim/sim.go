// Package netsim is a deterministic discrete-event network simulator.
//
// It provides the substrate the paper's testbed (Amazon EC2 / OpenNebula)
// is substituted with: virtual time, processes, finite CPU resources,
// links with latency and bandwidth, NAT middleboxes, UDP-style sockets
// and ICMP echo.
//
// The scheduler is run-to-completion: most simulation activity (packet
// delivery, transport pumps, timer fires) executes as direct callbacks on
// the scheduler goroutine, with no context switch. Goroutine-backed
// processes (Proc) remain for code that genuinely blocks — client
// workloads, stream reads — and exactly one goroutine (the scheduler or a
// single process) executes at any moment. All wakeups go through the
// event queue, with a monotonic sequence number breaking ties, so runs
// are fully deterministic for a fixed RNG seed.
//
// Events live in a hierarchical timer wheel (slot width 2^14 ns ≈ 16.4µs,
// 4096 slots ≈ 67ms horizon) with a binary-heap overflow tier for
// far-future timers (RTO, rekey, housekeeping); see DESIGN.md §5.2.
package netsim

import (
	"fmt"
	"io"
	"math/bits"
	"math/rand"
	"time"
)

// VTime is a virtual timestamp: the duration since the simulation epoch.
type VTime = time.Duration

// Event kinds. A typed kind plus payload fields replaces the old
// heap-allocated func() closure on every hot path: Sleep, WaitQueue
// timeouts, WakeOne, packet delivery and re-armable timers schedule
// nothing but a recycled event node.
type evKind uint8

const (
	evFunc    evKind = iota // call fn
	evWake                  // resume parked process p
	evSpawn                 // first resume of process p (body start)
	evTimeout               // WaitQueue timeout for waiter w (gen-guarded)
	evTimer                 // Timer fire for tm (gen-guarded)
	evDeliver               // packet pkt arrives at iface dst
)

// event is a scheduled occurrence. Events with equal time fire in the
// order they were scheduled (seq).
type event struct {
	at   VTime
	seq  uint64
	next *event // slot chain link while parked in the wheel
	kind evKind
	gen  uint64 // generation guard for evTimeout / evTimer
	fn   func()
	p    *Proc
	w    *waiter
	tm   *Timer
	dst  *Iface
	pkt  *Packet
}

// eventHeap is a typed binary min-heap of events ordered by (at, seq).
// It serves two roles: the exact-order "due" heap for events at or below
// the wheel's base tick, and the overflow tier for events beyond the
// wheel horizon. Typed (no container/heap) to keep *event out of
// interface{} boxing.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	// Sift up.
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() *event {
	q := *h
	n := len(q) - 1
	root := q[0]
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return root
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
}

// Timer wheel geometry. A slot covers 2^slotShift nanoseconds of virtual
// time; the wheel spans wheelSlots of them. Packet-scale events (link
// latencies, serialization, RTTs) land in the wheel in O(1); anything
// farther out (RTO backoff tails, rekey intervals, housekeeping) goes to
// the overflow heap and migrates in as the wheel turns.
const (
	slotShift  = 14 // 16.384µs per slot
	wheelBits  = 12
	wheelSlots = 1 << wheelBits // 4096 slots ≈ 67ms horizon
	wheelMask  = wheelSlots - 1
	wheelWords = wheelSlots / 64
)

// Sim is a discrete-event simulation. The zero value is not usable; create
// one with New.
type Sim struct {
	now VTime
	seq uint64

	// Scheduling tiers. Invariants:
	//   - cur holds every pending event whose tick (at >> slotShift) is
	//     <= base, in exact (at, seq) heap order;
	//   - slots hold events with tick in (base, base+wheelSlots), unordered
	//     within a slot (cur re-sorts a slot when it drains);
	//   - overflow holds events with tick >= base+wheelSlots.
	// base only advances, and only to a tick that holds events, so the
	// pop order is the exact (at, seq) total order of the old global heap.
	base     int64
	cur      eventHeap
	overflow eventHeap
	slots    [wheelSlots]*event
	bitmap   [wheelWords]uint64
	nWheel   int

	free        []*event  // recycled event nodes
	waiterFree  []*waiter // recycled WaitQueue waiters
	procFree    []*Proc   // recycled processes (goroutine kept parked)
	eventsFired uint64

	rng     *rand.Rand
	sched   chan struct{} // control returned to scheduler
	current *Proc         // process currently executing, nil in handlers
	parked  []*Proc       // parked processes (swap-remove by parkedIdx)
	closed  bool
	tracer  Tracer
}

// New creates a simulation whose random choices (loss, jitter) derive from
// seed. The same seed reproduces the same run exactly.
func New(seed int64) *Sim {
	return &Sim{
		rng:   rand.New(rand.NewSource(seed)),
		sched: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() VTime { return s.now }

// Rand returns the simulation's deterministic RNG. It must only be used
// from within simulation events/processes.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// EventsFired reports the total number of events dispatched so far; the
// scheduler microbenchmarks divide it by wall time for events/sec.
func (s *Sim) EventsFired() uint64 { return s.eventsFired }

// Pending reports the number of scheduled, not-yet-fired events.
func (s *Sim) Pending() int { return len(s.cur) + s.nWheel + len(s.overflow) }

// newEvent takes a node from the freelist (or allocates one), stamps it
// with the clamped time and the next sequence number, and returns it for
// the caller to fill in and insert.
func (s *Sim) newEvent(t VTime) *event {
	if t < s.now {
		t = s.now
	}
	s.seq++
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at, ev.seq = t, s.seq
	return ev
}

// insert places ev into the tier its tick belongs to. Also used to push
// back an already-stamped event (horizon stop, overflow migration), so it
// must not touch at/seq.
func (s *Sim) insert(ev *event) {
	tick := int64(ev.at >> slotShift)
	switch {
	case tick <= s.base:
		s.cur.push(ev)
	case tick < s.base+wheelSlots:
		idx := int(tick) & wheelMask
		ev.next = s.slots[idx]
		s.slots[idx] = ev
		s.bitmap[idx>>6] |= 1 << uint(idx&63)
		s.nWheel++
	default:
		s.overflow.push(ev)
	}
}

// recycle clears an event's payload and returns the node to the freelist.
func (s *Sim) recycle(ev *event) {
	ev.next = nil
	ev.fn = nil
	ev.p = nil
	ev.w = nil
	ev.tm = nil
	ev.dst = nil
	ev.pkt = nil
	s.free = append(s.free, ev)
}

// next pops the globally earliest event, turning the wheel and migrating
// overflow entries as needed. Returns nil when no events remain.
func (s *Sim) next() *event {
	for {
		if len(s.cur) > 0 {
			return s.cur.pop()
		}
		if s.nWheel > 0 {
			s.advance()
			continue
		}
		if len(s.overflow) > 0 {
			// Wheel empty: jump straight to the overflow's earliest tick.
			s.base = int64(s.overflow[0].at >> slotShift)
			s.migrate()
			continue
		}
		return nil
	}
}

// advance turns the wheel to the next occupied slot, drains it into cur,
// and pulls overflow events that the new base brings within the horizon.
func (s *Sim) advance() {
	baseIdx := int(s.base) & wheelMask
	idx := s.scanFrom((baseIdx + 1) & wheelMask)
	dist := int64((idx - baseIdx) & wheelMask)
	s.base += dist
	s.bitmap[idx>>6] &^= 1 << uint(idx&63)
	n := s.slots[idx]
	s.slots[idx] = nil
	for n != nil {
		nx := n.next
		n.next = nil
		s.cur.push(n)
		s.nWheel--
		n = nx
	}
	s.migrate()
}

// scanFrom returns the index of the first occupied slot at or after start,
// circularly. The caller guarantees the wheel is nonempty.
func (s *Sim) scanFrom(start int) int {
	wi := start >> 6
	w := s.bitmap[wi] &^ ((1 << uint(start&63)) - 1)
	for {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
		wi = (wi + 1) & (wheelWords - 1)
		w = s.bitmap[wi]
	}
}

// migrate moves overflow events that now fall within the wheel horizon
// into their slots (or cur, for the base tick itself).
func (s *Sim) migrate() {
	limit := s.base + wheelSlots
	for len(s.overflow) > 0 && int64(s.overflow[0].at>>slotShift) < limit {
		s.insert(s.overflow.pop())
	}
}

// At schedules fn to run at virtual time t (clamped to now). It may be
// called from scheduler context (events, process code) or between runs.
func (s *Sim) At(t VTime, fn func()) {
	ev := s.newEvent(t)
	ev.kind = evFunc
	ev.fn = fn
	s.insert(ev)
}

// After schedules fn to run d from now.
func (s *Sim) After(d VTime, fn func()) { s.At(s.now+d, fn) }

// scheduleWake schedules the closure-free resumption of p at t.
func (s *Sim) scheduleWake(t VTime, p *Proc) {
	ev := s.newEvent(t)
	ev.kind = evWake
	ev.p = p
	s.insert(ev)
}

// scheduleDeliver schedules pkt's arrival at iface dst at t — the packet
// hot path, with no closure allocated per packet.
func (s *Sim) scheduleDeliver(t VTime, dst *Iface, pkt *Packet) {
	ev := s.newEvent(t)
	ev.kind = evDeliver
	ev.dst = dst
	ev.pkt = pkt
	s.insert(ev)
}

// Run executes events until the queue is empty, the horizon is exceeded, or
// no runnable process remains. It returns the virtual time reached.
func (s *Sim) Run(horizon VTime) VTime {
	for {
		ev := s.next()
		if ev == nil {
			break
		}
		if horizon > 0 && ev.at > horizon {
			s.now = horizon
			// Push back (at/seq intact) so a later Run can continue.
			s.insert(ev)
			break
		}
		s.now = ev.at
		s.fire(ev)
	}
	return s.now
}

// fire dispatches one event. The node is recycled before dispatch: the
// handler only ever sees the freelist, never ev, so a reschedule inside
// the handler may legitimately reuse the node.
// DebugLog, when non-nil, receives one line per fired event (time, kind,
// seq, packet metadata). Diffing the logs of two same-seed runs pinpoints
// the first divergent event when chasing a determinism bug — far more
// precise than comparing rounded experiment tables.
var DebugLog io.Writer

func (s *Sim) fire(ev *event) {
	kind, gen := ev.kind, ev.gen
	fn, p, w, tm := ev.fn, ev.p, ev.w, ev.tm
	dst, pkt := ev.dst, ev.pkt
	seq := ev.seq
	s.recycle(ev)
	s.eventsFired++
	if DebugLog != nil {
		if pkt != nil {
			fmt.Fprintf(DebugLog, "%d k%d s%d %s->%s p%d sz%d pl%d\n", s.now, kind, seq, pkt.Src, pkt.Dst, pkt.Proto, pkt.Size, len(pkt.Payload))
		} else {
			fmt.Fprintf(DebugLog, "%d k%d s%d\n", s.now, kind, seq)
		}
	}
	switch kind {
	case evFunc:
		fn()
	case evWake:
		s.wake(p)
	case evSpawn:
		if !p.started {
			p.started = true
			go p.loop()
		}
		s.transferTo(p)
	case evTimeout:
		// Stale if the waiter was recycled (gen moved on) or already woken
		// (no longer queued).
		if w.gen == gen && w.idx >= 0 {
			w.q.remove(w)
			w.timedOut = true
			s.wake(w.p)
		}
	case evTimer:
		if tm.gen == gen && tm.armed {
			tm.armed = false
			tm.fn()
		}
	case evDeliver:
		dst.node.receive(dst, pkt)
	}
}

// Shutdown aborts every parked process and every pooled idle worker so
// their goroutines unwind. It must be called from outside scheduler
// context after Run returns. Processes are resumed one at a time (LIFO,
// deterministically) with the aborted flag set; their API calls panic
// with a sentinel recovered by the worker loop.
func (s *Sim) Shutdown() {
	s.closed = true
	for len(s.parked) > 0 {
		p := s.parked[len(s.parked)-1]
		s.parked = s.parked[:len(s.parked)-1]
		p.parkedIdx = -1
		p.aborted = true
		p.resume <- struct{}{}
		<-s.sched
	}
	for _, p := range s.procFree {
		p.aborted = true
		p.resume <- struct{}{}
		<-s.sched
	}
	s.procFree = nil
}

// simAbort is panicked inside a process when the simulation shuts down.
type simAbort struct{}

// Proc is a simulated process backed by a goroutine. All blocking methods
// must be called from the process's own goroutine; calling one from a
// run-to-completion handler (scheduler context) panics. Proc structs,
// their resume channels and their goroutines are pooled across
// spawn/exit: an exited process's worker parks on its channel and is
// reused by a later Spawn.
type Proc struct {
	sim       *Sim
	name      string
	resume    chan struct{}
	body      func(p *Proc)
	parkedIdx int
	aborted   bool
	started   bool
}

// Spawn starts a new process running fn at the current virtual time.
func (s *Sim) Spawn(name string, fn func(p *Proc)) {
	var p *Proc
	if n := len(s.procFree); n > 0 {
		p = s.procFree[n-1]
		s.procFree[n-1] = nil
		s.procFree = s.procFree[:n-1]
	} else {
		p = &Proc{sim: s, resume: make(chan struct{}), parkedIdx: -1}
	}
	p.name, p.body = name, fn
	ev := s.newEvent(s.now)
	ev.kind = evSpawn
	ev.p = p
	s.insert(ev)
}

// loop is the pooled worker: each iteration runs one spawned body, then
// returns the Proc to the freelist and hands control back. The goroutine
// exits only on shutdown abort.
func (p *Proc) loop() {
	s := p.sim
	for {
		<-p.resume
		if p.aborted {
			s.sched <- struct{}{}
			return
		}
		p.runBody()
		if p.aborted {
			// Unwound by Shutdown mid-body: do not rejoin the pool.
			s.sched <- struct{}{}
			return
		}
		p.name, p.body = "", nil
		// Safe to touch scheduler state: the scheduler is blocked in
		// transferTo until we signal sched below.
		s.procFree = append(s.procFree, p)
		s.sched <- struct{}{}
	}
}

// runBody runs the spawned function, recovering the shutdown-abort panic.
func (p *Proc) runBody() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(simAbort); !ok {
				panic(r)
			}
		}
	}()
	p.body(p)
}

// transferTo hands control to p's goroutine and blocks until it parks or
// exits. Must run in scheduler context.
func (s *Sim) transferTo(p *Proc) {
	s.current = p
	p.resume <- struct{}{}
	<-s.sched
	s.current = nil
}

// park blocks the calling process until it is woken via an event. The
// caller must have arranged for a wake before parking. Calling it from a
// run-to-completion handler is a contract violation and panics: handlers
// run on the scheduler goroutine and must never block (DESIGN.md §5.2).
func (p *Proc) park() {
	s := p.sim
	if s.current != p {
		panic("netsim: blocking Proc API called from scheduler context (proc " + p.name + ")")
	}
	p.parkedIdx = len(s.parked)
	s.parked = append(s.parked, p)
	s.sched <- struct{}{}
	<-p.resume
	if p.aborted {
		panic(simAbort{})
	}
}

// wake resumes a parked process. Must run in scheduler context (inside an
// event callback).
func (s *Sim) wake(p *Proc) {
	i := p.parkedIdx
	if i < 0 {
		panic("netsim: waking non-parked process " + p.name)
	}
	last := len(s.parked) - 1
	s.parked[i] = s.parked[last]
	s.parked[i].parkedIdx = i
	s.parked[last] = nil
	s.parked = s.parked[:last]
	p.parkedIdx = -1
	s.transferTo(p)
}

// Name returns the process name (for traces).
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation the process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() VTime { return p.sim.now }

// Sleep suspends the process for d of virtual time. Allocation-free: the
// wake rides a recycled typed event, not a closure.
func (p *Proc) Sleep(d VTime) {
	if d < 0 {
		d = 0
	}
	p.sim.scheduleWake(p.sim.now+d, p)
	p.park()
}

// Spawn starts a sibling process (convenience for fan-out inside a process).
func (p *Proc) Spawn(name string, fn func(p *Proc)) { p.sim.Spawn(name, fn) }

// waiter represents one entry blocked on a WaitQueue: either a process
// (p set), possibly racing a timeout, or a scheduler-context callback
// (fn set) used by async resource acquisition. Waiters are pooled; gen
// guards pooled reuse against stale timeout events still in the wheel.
type waiter struct {
	p        *Proc
	fn       func()
	q        *WaitQueue
	seq      uint64 // FIFO order within the queue
	idx      int    // heap index in q.ws; -1 when not queued
	gen      uint64
	timedOut bool
}

// getWaiter takes a waiter from the freelist or allocates one.
func (s *Sim) getWaiter() *waiter {
	if n := len(s.waiterFree); n > 0 {
		w := s.waiterFree[n-1]
		s.waiterFree[n-1] = nil
		s.waiterFree = s.waiterFree[:n-1]
		return w
	}
	return &waiter{idx: -1}
}

// putWaiter recycles w, bumping gen so any stale timeout event for it
// becomes a no-op when its slot drains.
func (s *Sim) putWaiter(w *waiter) {
	w.gen++
	w.p, w.fn, w.q = nil, nil, nil
	w.timedOut = false
	s.waiterFree = append(s.waiterFree, w)
}

// WaitQueue is a FIFO queue of waiters blocked on a condition. It is a
// min-heap on a per-queue sequence number with stored indices, so a
// timeout cancels its entry in O(log n) (the old linear scan + slide-down
// was O(n) per timeout under load) while WakeOne still pops strict FIFO.
type WaitQueue struct {
	s   *Sim
	ws  []*waiter
	seq uint64
}

// NewWaitQueue creates a wait queue bound to s.
func NewWaitQueue(s *Sim) *WaitQueue { return &WaitQueue{s: s} }

// Len reports the number of queued waiters.
func (q *WaitQueue) Len() int { return len(q.ws) }

func (q *WaitQueue) less(i, j int) bool { return q.ws[i].seq < q.ws[j].seq }

func (q *WaitQueue) swap(i, j int) {
	q.ws[i], q.ws[j] = q.ws[j], q.ws[i]
	q.ws[i].idx, q.ws[j].idx = i, j
}

func (q *WaitQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *WaitQueue) down(i int) {
	n := len(q.ws)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}

func (q *WaitQueue) push(w *waiter) {
	q.seq++
	w.seq = q.seq
	w.q = q
	w.idx = len(q.ws)
	q.ws = append(q.ws, w)
	q.up(w.idx)
}

// remove unlinks w from the heap by its stored index (swap-remove + fix).
func (q *WaitQueue) remove(w *waiter) {
	i := w.idx
	last := len(q.ws) - 1
	if i != last {
		q.swap(i, last)
	}
	q.ws[last] = nil
	q.ws = q.ws[:last]
	if i != last {
		q.down(i)
		q.up(i)
	}
	w.idx = -1
}

// popMin removes and returns the longest-waiting entry.
func (q *WaitQueue) popMin() *waiter {
	w := q.ws[0]
	q.remove(w)
	return w
}

// Wait blocks p until WakeOne/WakeAll reaches it or the timeout elapses.
// timeout <= 0 means no timeout. It reports whether the wait timed out.
// Allocation-free in steady state: the waiter and the timeout event are
// both pooled.
func (q *WaitQueue) Wait(p *Proc, timeout VTime) (timedOut bool) {
	w := q.s.getWaiter()
	w.p = p
	q.push(w)
	if timeout > 0 {
		ev := q.s.newEvent(q.s.now + timeout)
		ev.kind = evTimeout
		ev.w = w
		ev.gen = w.gen
		q.s.insert(ev)
	}
	p.park()
	timedOut = w.timedOut
	q.s.putWaiter(w)
	return timedOut
}

// WaitFn enqueues fn as a waiter with no timeout; when its turn comes
// (WakeOne/WakeAll), fn runs in scheduler context at the current time.
// A woken fn must re-check its condition — like a woken process, it raced
// other claimants and may need to re-enqueue. Callers keep fn pre-bound
// (e.g. a pooled task's method value) so steady state allocates nothing.
func (q *WaitQueue) WaitFn(fn func()) {
	w := q.s.getWaiter()
	w.fn = fn
	q.push(w)
}

// WakeOne schedules the wakeup of the longest-waiting entry, if any.
// The wake happens via the event queue (at the current time) so the
// caller keeps running first; it reports whether an entry was woken.
func (q *WaitQueue) WakeOne() bool {
	if len(q.ws) == 0 {
		return false
	}
	w := q.popMin()
	if w.fn != nil {
		fn := w.fn
		q.s.putWaiter(w)
		q.s.At(q.s.now, fn)
		return true
	}
	q.s.scheduleWake(q.s.now, w.p)
	return true
}

// WakeAll wakes every waiting entry.
func (q *WaitQueue) WakeAll() {
	for q.WakeOne() {
	}
}

// Timer is a re-armable virtual-time timer firing a pre-bound callback in
// scheduler context — the run-to-completion replacement for a process
// sleeping until its next deadline. Stop/Reset are O(1): the wheel entry
// is cancelled lazily via a generation check when its slot drains, so no
// wheel surgery is ever needed.
type Timer struct {
	s     *Sim
	fn    func()
	gen   uint64
	at    VTime
	armed bool
}

// NewTimer creates a timer that calls fn when it fires. fn runs in
// scheduler context and must not block.
func (s *Sim) NewTimer(fn func()) *Timer { return &Timer{s: s, fn: fn} }

// Reset (re)arms the timer to fire at absolute virtual time t, replacing
// any earlier deadline. Re-arming to the already-armed deadline is a
// no-op, so callers may re-assert their deadline every pass for free.
func (t *Timer) Reset(at VTime) {
	if at < t.s.now {
		at = t.s.now
	}
	if t.armed && t.at == at {
		return
	}
	t.gen++
	t.armed = true
	t.at = at
	ev := t.s.newEvent(at)
	ev.kind = evTimer
	ev.tm = t
	ev.gen = t.gen
	t.s.insert(ev)
}

// Stop disarms the timer; a pending fire becomes a no-op.
func (t *Timer) Stop() {
	if t.armed {
		t.gen++
		t.armed = false
	}
}

// Armed reports whether the timer has a pending deadline.
func (t *Timer) Armed() bool { return t.armed }

// When returns the armed deadline (meaningless when !Armed).
func (t *Timer) When() VTime { return t.at }
