// Package netsim is a deterministic discrete-event network simulator.
//
// It provides the substrate the paper's testbed (Amazon EC2 / OpenNebula)
// is substituted with: virtual time, processes (goroutine-per-process,
// strictly sequential execution), finite CPU resources, links with latency
// and bandwidth, NAT middleboxes, UDP-style sockets and ICMP echo.
//
// The simulator is simpy-style: each process runs in its own goroutine but
// exactly one goroutine (the scheduler or a single process) executes at any
// moment. All inter-process wakeups go through the event queue, with a
// monotonic sequence number breaking ties, so runs are fully deterministic
// for a fixed RNG seed.
package netsim

import (
	"fmt"
	"math/rand"
	"time"
)

// VTime is a virtual timestamp: the duration since the simulation epoch.
type VTime = time.Duration

// event is a scheduled callback. Events with equal time fire in the order
// they were scheduled (seq).
type event struct {
	at  VTime
	seq uint64
	fn  func()
}

// eventHeap is a typed binary min-heap of events ordered by (at, seq).
// It replaces container/heap to keep *event values out of interface{}
// boxing — the scheduler's push/pop are the hottest calls in a busy
// simulation — and to allow the Sim's event freelist to recycle nodes.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	// Sift up.
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() *event {
	q := *h
	n := len(q) - 1
	root := q[0]
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return root
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
}

// Sim is a discrete-event simulation. The zero value is not usable; create
// one with New.
type Sim struct {
	now    VTime
	queue  eventHeap
	free   []*event // recycled event nodes; no caller retains a fired *event
	seq    uint64
	rng    *rand.Rand
	sched  chan struct{} // control returned to scheduler
	parked map[*Proc]struct{}
	closed bool
	nproc  int
	tracer Tracer
}

// New creates a simulation whose random choices (loss, jitter) derive from
// seed. The same seed reproduces the same run exactly.
func New(seed int64) *Sim {
	return &Sim{
		rng:    rand.New(rand.NewSource(seed)),
		sched:  make(chan struct{}),
		parked: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() VTime { return s.now }

// Rand returns the simulation's deterministic RNG. It must only be used
// from within simulation events/processes.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at virtual time t (clamped to now). It may be
// called from scheduler context (events, process code). The returned
// event is owned by the scheduler and recycled after it fires; callers
// must not retain it.
func (s *Sim) At(t VTime, fn func()) *event {
	if t < s.now {
		t = s.now
	}
	s.seq++
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		ev.at, ev.seq, ev.fn = t, s.seq, fn
	} else {
		ev = &event{at: t, seq: s.seq, fn: fn}
	}
	s.queue.push(ev)
	return ev
}

// After schedules fn to run d from now.
func (s *Sim) After(d VTime, fn func()) *event { return s.At(s.now+d, fn) }

// Run executes events until the queue is empty, the horizon is exceeded, or
// no runnable process remains. It returns the virtual time reached.
func (s *Sim) Run(horizon VTime) VTime {
	for len(s.queue) > 0 {
		ev := s.queue.pop()
		if horizon > 0 && ev.at > horizon {
			s.now = horizon
			// Push back so a later Run can continue.
			s.queue.push(ev)
			break
		}
		s.now = ev.at
		fn := ev.fn
		// Recycle before firing: fn only sees the freelist, never ev, so
		// a reschedule inside fn may legitimately reuse this node.
		ev.fn = nil
		s.free = append(s.free, ev)
		if fn != nil {
			fn()
		}
	}
	return s.now
}

// Shutdown aborts every parked process so their goroutines unwind. It must
// be called from outside scheduler context after Run returns. Processes are
// resumed one at a time with the aborted flag set; their API calls panic
// with a sentinel recovered by the process wrapper.
func (s *Sim) Shutdown() {
	s.closed = true
	for p := range s.parked {
		delete(s.parked, p)
		p.aborted = true
		// The resume order is map-random, but Shutdown runs after Run has
		// returned: every process just unwinds via the abort panic, so no
		// observable event order depends on it.
		//lint:allow simdet shutdown unwind order cannot affect results; sim is already stopped
		p.resume <- struct{}{}
		<-s.sched
	}
}

// simAbort is panicked inside a process when the simulation shuts down.
type simAbort struct{}

// Proc is a simulated process. All blocking methods must be called from the
// process's own goroutine.
type Proc struct {
	sim     *Sim
	name    string
	resume  chan struct{}
	aborted bool
}

// Spawn starts a new process running fn at the current virtual time.
func (s *Sim) Spawn(name string, fn func(p *Proc)) {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	s.nproc++
	s.After(0, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(simAbort); !ok {
						panic(r)
					}
				}
				s.sched <- struct{}{}
			}()
			<-p.resume
			if p.aborted {
				panic(simAbort{})
			}
			fn(p)
		}()
		s.transferTo(p)
	})
}

// transferTo hands control to p's goroutine and blocks until it parks or
// exits. Must run in scheduler context.
func (s *Sim) transferTo(p *Proc) {
	p.resume <- struct{}{}
	<-s.sched
}

// park blocks the calling process until it is woken via an event. The
// caller must have arranged for a wake before parking.
func (p *Proc) park() {
	p.sim.parked[p] = struct{}{}
	p.sim.sched <- struct{}{}
	<-p.resume
	if p.aborted {
		panic(simAbort{})
	}
}

// wake resumes a parked process. Must run in scheduler context (inside an
// event callback).
func (s *Sim) wake(p *Proc) {
	if _, ok := s.parked[p]; !ok {
		panic(fmt.Sprintf("netsim: waking non-parked process %s", p.name))
	}
	delete(s.parked, p)
	s.transferTo(p)
}

// Name returns the process name (for traces).
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation the process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() VTime { return p.sim.now }

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d VTime) {
	if d <= 0 {
		d = 0
	}
	p.sim.After(d, func() { p.sim.wake(p) })
	p.park()
}

// Spawn starts a sibling process (convenience for fan-out inside a process).
func (p *Proc) Spawn(name string, fn func(p *Proc)) { p.sim.Spawn(name, fn) }

// waiter represents one process blocked on a condition, possibly with a
// timeout racing the wake.
type waiter struct {
	p     *Proc
	fired bool
	// timedOut reports which of the racing events won.
	timedOut bool
}

// WaitQueue is a FIFO queue of processes blocked on a condition.
type WaitQueue struct {
	s  *Sim
	ws []*waiter
}

// NewWaitQueue creates a wait queue bound to s.
func NewWaitQueue(s *Sim) *WaitQueue { return &WaitQueue{s: s} }

// Len reports the number of blocked processes.
func (q *WaitQueue) Len() int { return len(q.ws) }

// Wait blocks p until WakeOne/WakeAll reaches it or the timeout elapses.
// timeout <= 0 means no timeout. It reports whether the wait timed out.
func (q *WaitQueue) Wait(p *Proc, timeout VTime) (timedOut bool) {
	w := &waiter{p: p}
	q.ws = append(q.ws, w)
	if timeout > 0 {
		q.s.After(timeout, func() {
			if w.fired {
				return
			}
			w.fired = true
			w.timedOut = true
			// Remove from queue.
			for i, x := range q.ws {
				if x == w {
					q.ws = append(q.ws[:i], q.ws[i+1:]...)
					break
				}
			}
			q.s.wake(p)
		})
	}
	p.park()
	return w.timedOut
}

// WakeOne schedules the wakeup of the longest-waiting process, if any.
// The wake happens via the event queue (at the current time) so the caller
// keeps running first; it reports whether a process was woken.
func (q *WaitQueue) WakeOne() bool {
	for len(q.ws) > 0 {
		w := q.ws[0]
		q.ws = q.ws[1:]
		if w.fired {
			continue
		}
		w.fired = true
		q.s.After(0, func() { q.s.wake(w.p) })
		return true
	}
	return false
}

// WakeAll wakes every waiting process.
func (q *WaitQueue) WakeAll() {
	for q.WakeOne() {
	}
}
