package netsim

import (
	"net/netip"
	"testing"
	"time"
)

func TestLinkDownDropsEverything(t *testing.T) {
	s := New(1)
	n, a, b := twoHosts(s, Link{Latency: time.Millisecond})
	l := n.LinkBetween(a, b)
	bs := b.MustBindUDP(7)
	var got int
	s.Spawn("rx", func(p *Proc) {
		for {
			if _, err := bs.RecvFrom(p, 50*time.Millisecond); err != nil {
				return
			}
			got++
		}
	})
	as := a.MustBindUDP(0)
	dst := netip.AddrPortFrom(mustAddr("10.0.0.2"), 7)
	s.Spawn("tx", func(p *Proc) {
		as.SendTo(dst, []byte("up1"))
		p.Sleep(10 * time.Millisecond)
		l.Down = true
		as.SendTo(dst, []byte("down"))
		p.Sleep(10 * time.Millisecond)
		l.Down = false
		as.SendTo(dst, []byte("up2"))
	})
	s.Run(0)
	if got != 2 {
		t.Fatalf("delivered %d packets, want 2 (one dropped while link down)", got)
	}
	if l.Drops() != 1 {
		t.Fatalf("link drops = %d, want 1", l.Drops())
	}
}

func TestFaultDropDecision(t *testing.T) {
	s := New(1)
	n, a, b := twoHosts(s, Link{Latency: time.Millisecond})
	l := n.LinkBetween(a, b)
	var seen int
	l.Fault = func(pkt *Packet) FaultDecision {
		seen++
		return FaultDecision{Drop: seen == 1} // drop only the first
	}
	bs := b.MustBindUDP(7)
	var got []string
	s.Spawn("rx", func(p *Proc) {
		for {
			dg, err := bs.RecvFrom(p, 50*time.Millisecond)
			if err != nil {
				return
			}
			got = append(got, string(dg.Payload))
		}
	})
	as := a.MustBindUDP(0)
	dst := netip.AddrPortFrom(mustAddr("10.0.0.2"), 7)
	s.Spawn("tx", func(p *Proc) {
		as.SendTo(dst, []byte("one"))
		as.SendTo(dst, []byte("two"))
	})
	s.Run(0)
	if len(got) != 1 || got[0] != "two" {
		t.Fatalf("delivered %v, want [two]", got)
	}
}

// TestFaultCorruptDeliversCopy checks both corruption semantics: the
// receiver sees exactly one flipped bit, and the sender-retained buffer
// (a retransmission queue, in real use) is untouched because corruption
// clones the payload rather than mutating it in place.
func TestFaultCorruptDeliversCopy(t *testing.T) {
	s := New(1)
	n, a, b := twoHosts(s, Link{Latency: time.Millisecond})
	l := n.LinkBetween(a, b)
	l.Fault = func(pkt *Packet) FaultDecision { return FaultDecision{Corrupt: true} }
	original := []byte("retained by sender")
	sent := append([]byte(nil), original...)
	bs := b.MustBindUDP(7)
	var got []byte
	s.Spawn("rx", func(p *Proc) {
		dg, err := bs.RecvFrom(p, 0)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		got = dg.Payload
	})
	as := a.MustBindUDP(0)
	s.Spawn("tx", func(p *Proc) {
		as.SendTo(netip.AddrPortFrom(mustAddr("10.0.0.2"), 7), sent)
	})
	s.Run(0)
	if string(sent) != string(original) {
		t.Fatalf("sender buffer mutated: %q", sent)
	}
	if len(got) != len(original) {
		t.Fatalf("len(got) = %d, want %d", len(got), len(original))
	}
	diffBits := 0
	for i := range got {
		for x := got[i] ^ original[i]; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("payload differs in %d bits, want exactly 1 (got %q)", diffBits, got)
	}
}

func TestFaultDuplicate(t *testing.T) {
	s := New(1)
	n, a, b := twoHosts(s, Link{Latency: time.Millisecond})
	l := n.LinkBetween(a, b)
	l.Fault = func(pkt *Packet) FaultDecision { return FaultDecision{Duplicate: true} }
	bs := b.MustBindUDP(7)
	var got int
	s.Spawn("rx", func(p *Proc) {
		for {
			if _, err := bs.RecvFrom(p, 50*time.Millisecond); err != nil {
				return
			}
			got++
		}
	})
	as := a.MustBindUDP(0)
	s.Spawn("tx", func(p *Proc) {
		as.SendTo(netip.AddrPortFrom(mustAddr("10.0.0.2"), 7), []byte("dup"))
	})
	s.Run(0)
	if got != 2 {
		t.Fatalf("delivered %d copies, want 2", got)
	}
}

func TestFaultDelayReorders(t *testing.T) {
	s := New(1)
	n, a, b := twoHosts(s, Link{Latency: time.Millisecond})
	l := n.LinkBetween(a, b)
	first := true
	l.Fault = func(pkt *Packet) FaultDecision {
		if first {
			first = false
			return FaultDecision{Delay: 20 * time.Millisecond}
		}
		return FaultDecision{}
	}
	bs := b.MustBindUDP(7)
	var got []string
	s.Spawn("rx", func(p *Proc) {
		for i := 0; i < 2; i++ {
			dg, err := bs.RecvFrom(p, 0)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			got = append(got, string(dg.Payload))
		}
	})
	as := a.MustBindUDP(0)
	dst := netip.AddrPortFrom(mustAddr("10.0.0.2"), 7)
	s.Spawn("tx", func(p *Proc) {
		as.SendTo(dst, []byte("first"))
		as.SendTo(dst, []byte("second"))
	})
	s.Run(0)
	if len(got) != 2 || got[0] != "second" || got[1] != "first" {
		t.Fatalf("arrival order %v, want [second first]", got)
	}
}

func TestNodeDownNeitherSendsNorReceives(t *testing.T) {
	s := New(1)
	_, a, b := twoHosts(s, Link{Latency: time.Millisecond})
	bs := b.MustBindUDP(7)
	var got int
	s.Spawn("rx", func(p *Proc) {
		for {
			if _, err := bs.RecvFrom(p, 100*time.Millisecond); err != nil {
				return
			}
			got++
		}
	})
	as := a.MustBindUDP(0)
	dst := netip.AddrPortFrom(mustAddr("10.0.0.2"), 7)
	s.Spawn("tx", func(p *Proc) {
		as.SendTo(dst, []byte("1")) // delivered
		p.Sleep(5 * time.Millisecond)
		a.Down = true
		as.SendTo(dst, []byte("2")) // sender down: dropped at origin
		p.Sleep(5 * time.Millisecond)
		a.Down = false
		b.Down = true
		as.SendTo(dst, []byte("3")) // receiver down: dropped on arrival
		p.Sleep(5 * time.Millisecond)
		b.Down = false
		as.SendTo(dst, []byte("4")) // delivered
	})
	s.Run(0)
	if got != 2 {
		t.Fatalf("delivered %d packets, want 2", got)
	}
}

func TestNATReset(t *testing.T) {
	s := New(1)
	n := NewNetwork(s)
	inside := n.AddNode("inside", 1, 1)
	natNode := n.AddNode("nat", 2, 10)
	server := n.AddNode("server", 1, 1)
	n.Connect(inside, mustAddr("192.168.0.2"), natNode, mustAddr("192.168.0.1"), Link{})
	n.Connect(natNode, mustAddr("203.0.113.1"), server, mustAddr("198.51.100.1"), Link{})
	inside.AddDefaultRoute(mustAddr("192.168.0.1"))
	server.AddDefaultRoute(mustAddr("203.0.113.1"))
	nat := natNode.EnableNAT(NATFullCone, mustAddr("192.168.0.1"))

	ss := server.MustBindUDP(53)
	var ext []netip.AddrPort
	s.Spawn("server", func(p *Proc) {
		for {
			dg, err := ss.RecvFrom(p, 100*time.Millisecond)
			if err != nil {
				return
			}
			ext = append(ext, dg.Src)
		}
	})
	cs := inside.MustBindUDP(4000)
	dst := netip.AddrPortFrom(mustAddr("198.51.100.1"), 53)
	s.Spawn("client", func(p *Proc) {
		cs.SendTo(dst, []byte("a"))
		p.Sleep(10 * time.Millisecond)
		nat.Reset()
		if nat.Mappings() != 0 {
			t.Errorf("mappings after reset = %d, want 0", nat.Mappings())
		}
		cs.SendTo(dst, []byte("b"))
	})
	s.Run(0)
	if len(ext) != 2 {
		t.Fatalf("server saw %d packets, want 2", len(ext))
	}
	if ext[0] == ext[1] {
		t.Fatalf("external mapping survived reset: %v", ext)
	}
}

func TestCPUStallBlocksWork(t *testing.T) {
	s := New(1)
	n := NewNetwork(s)
	a := n.AddNode("a", 1, 1)
	var done VTime
	s.Spawn("staller", func(p *Proc) {
		a.CPU().Stall(p, 30*time.Millisecond)
	})
	s.Spawn("worker", func(p *Proc) {
		p.Sleep(time.Millisecond) // let the staller grab the core first
		a.CPU().Use(p, time.Millisecond)
		done = p.Now()
	})
	s.Run(0)
	if done < 30*time.Millisecond {
		t.Fatalf("work finished at %v, want after the 30ms stall", done)
	}
}
