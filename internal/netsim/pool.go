// Buffer pooling for packet bodies.
//
// Every hop in the simulator (and the real-UDP drivers) used to allocate
// fresh byte slices for packet payloads, wire segments and crypto output;
// at Fig. 2/3 scale that is millions of short-lived allocations per run.
// GetBuf/PutBuf recycle those bodies through sync.Pools in a few size
// classes covering the common cases: small control messages, MTU-sized
// packets, TCP segments up to the stream layer's windows, and 64 KiB
// datagram-max bodies.
//
// The pool stores *[N]byte array pointers rather than slices: pointer
// types are direct interface values, so Put and Get themselves do not
// allocate (a []byte in an interface{} would heap-box the slice header
// on every Put, defeating the point).
//
// Ownership contract: a buffer passed to PutBuf must have no other live
// references — putting a buffer twice, or putting while a reader still
// holds a sub-slice, corrupts unrelated packets later. Dropping a buffer
// without PutBuf is always safe (the GC reclaims it); when in doubt,
// leak rather than double-put.
package netsim

import "sync"

// Pool size classes in bytes. A buffer in pool i has capacity >= classes[i].
const (
	classSmall = 512
	classMTU   = 2048
	classSeg   = 16384
	classMax   = 65536
)

var (
	poolSmall = sync.Pool{New: func() interface{} { return new([classSmall]byte) }}
	poolMTU   = sync.Pool{New: func() interface{} { return new([classMTU]byte) }}
	poolSeg   = sync.Pool{New: func() interface{} { return new([classSeg]byte) }}
	poolMax   = sync.Pool{New: func() interface{} { return new([classMax]byte) }}
)

// GetBuf returns a length-n buffer from the smallest size class that fits,
// or a fresh allocation for oversized requests. Contents are undefined.
func GetBuf(n int) []byte {
	switch {
	case n <= classSmall:
		return poolSmall.Get().(*[classSmall]byte)[:n]
	case n <= classMTU:
		return poolMTU.Get().(*[classMTU]byte)[:n]
	case n <= classSeg:
		return poolSeg.Get().(*[classSeg]byte)[:n]
	case n <= classMax:
		return poolMax.Get().(*[classMax]byte)[:n]
	default:
		return make([]byte, n)
	}
}

// PutBuf recycles a buffer obtained from GetBuf (or anywhere else) into
// the largest size class its capacity supports. Sub-slices of pooled
// buffers are accepted: capacity, not length, decides the class, and a
// shortened buffer simply rejoins a smaller class. Buffers below the
// smallest class are left to the GC. The caller must own b exclusively.
func PutBuf(b []byte) {
	c := cap(b)
	switch {
	case c >= classMax:
		poolMax.Put((*[classMax]byte)(b[:classMax:c]))
	case c >= classSeg:
		poolSeg.Put((*[classSeg]byte)(b[:classSeg:c]))
	case c >= classMTU:
		poolMTU.Put((*[classMTU]byte)(b[:classMTU:c]))
	case c >= classSmall:
		poolSmall.Put((*[classSmall]byte)(b[:classSmall:c]))
	}
}

// BufPool adapts GetBuf/PutBuf to the buffer-pool interfaces other layers
// (internal/stream, internal/simtcp) accept, without those packages
// importing netsim types at construction sites that don't need them.
type BufPool struct{}

// Get returns a length-n pooled buffer.
func (BufPool) Get(n int) []byte { return GetBuf(n) }

// Put recycles b.
func (BufPool) Put(b []byte) { PutBuf(b) }
