package netsim

import "time"

// Resource is a counted resource (e.g. CPU cores) with a FIFO grant queue.
type Resource struct {
	s     *Sim
	cap   int
	inUse int
	q     *WaitQueue
}

// NewResource creates a resource with capacity units.
func NewResource(s *Sim, capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	return &Resource{s: s, cap: capacity, q: NewWaitQueue(s)}
}

// Acquire blocks p until one unit is available and claims it.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.cap {
		r.q.Wait(p, 0)
	}
	r.inUse++
}

// AcquireFn is the scheduler-context counterpart of Acquire: if a unit is
// free it is claimed and granted runs immediately; otherwise retry is
// enqueued in the same FIFO as blocking processes and runs when a unit is
// released. Like a woken process, retry must re-attempt the acquisition
// (other claimants may get there first) — typically by calling AcquireFn
// again with itself. Keeping retry pre-bound makes the path allocation-free.
func (r *Resource) AcquireFn(granted, retry func()) {
	if r.TryAcquire() {
		granted()
		return
	}
	r.q.WaitFn(retry)
}

// TryAcquire claims a unit if one is free without blocking.
func (r *Resource) TryAcquire() bool {
	if r.inUse >= r.cap {
		return false
	}
	r.inUse++
	return true
}

// Release returns one unit and wakes the next waiter.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("netsim: Release of idle resource")
	}
	r.inUse--
	r.q.WakeOne()
}

// InUse reports the number of units currently claimed.
func (r *Resource) InUse() int { return r.inUse }

// Capacity reports the total number of units.
func (r *Resource) Capacity() int { return r.cap }

// SchedQuantum is the CPU scheduling time slice: long compute requests
// are broken into quanta and requeued, approximating the round-robin
// processor sharing of a real kernel scheduler (without it, one large
// request would monopolize a core FIFO-style and distort mean latencies).
const SchedQuantum = 500 * time.Microsecond

// CPU models the processor of a simulated host: a core pool with a speed
// factor relative to one reference compute unit (≈ one 2012-era EC2 compute
// unit). Work expressed in reference-seconds takes work/speed wall time on
// one core, sliced into SchedQuantum pieces.
type CPU struct {
	cores *Resource
	speed float64
	// busy accumulates core-seconds consumed, for utilization reports.
	busy time.Duration
	s    *Sim
	// tasks recycles cpuTask structs (and their bound callbacks) across
	// UseAsync charges.
	tasks []*cpuTask
}

// NewCPU creates a CPU with the given core count and per-core speed factor.
func NewCPU(s *Sim, cores int, speed float64) *CPU {
	if speed <= 0 {
		speed = 1
	}
	return &CPU{cores: NewResource(s, cores), speed: speed, s: s}
}

// Use charges work (expressed as time on a reference core) to the CPU:
// the process queues for a core, holds it for up to one scheduling
// quantum, requeues, and repeats until the work is done. Zero or negative
// work is a no-op.
func (c *CPU) Use(p *Proc, work time.Duration) {
	if work <= 0 {
		return
	}
	remaining := time.Duration(float64(work) / c.speed)
	for remaining > 0 {
		slice := remaining
		if slice > SchedQuantum {
			slice = SchedQuantum
		}
		c.cores.Acquire(p)
		c.busy += slice
		p.Sleep(slice)
		c.cores.Release()
		remaining -= slice
	}
}

// Stall seizes one core exclusively for d of virtual time without
// quantum slicing: unlike Use, no other process shares the core until it
// is released. It models a hung core (hypervisor pause, IO stall) rather
// than scheduled work; internal/faults seizes every core this way for a
// full backend stall.
func (c *CPU) Stall(p *Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	c.cores.Acquire(p)
	c.busy += d
	p.Sleep(d)
	c.cores.Release()
}

// cpuTask is one in-flight UseAsync charge. Tasks are pooled per CPU and
// carry their scheduler callbacks as method values bound once at
// allocation, so steady-state async charging allocates nothing.
type cpuTask struct {
	c         *CPU
	remaining time.Duration
	slice     time.Duration
	done      func()
	tryFn     func() // bound t.try: (re)attempt core acquisition
	grantFn   func() // bound t.grant: core claimed, consume one slice
	sliceFn   func() // bound t.sliceDone: slice elapsed
}

func (c *CPU) getTask() *cpuTask {
	if n := len(c.tasks); n > 0 {
		t := c.tasks[n-1]
		c.tasks[n-1] = nil
		c.tasks = c.tasks[:n-1]
		return t
	}
	t := &cpuTask{c: c}
	t.tryFn = t.try
	t.grantFn = t.grant
	t.sliceFn = t.sliceDone
	return t
}

func (t *cpuTask) try() { t.c.cores.AcquireFn(t.grantFn, t.tryFn) }

func (t *cpuTask) grant() {
	slice := t.remaining
	if slice > SchedQuantum {
		slice = SchedQuantum
	}
	t.slice = slice
	t.c.busy += slice
	t.c.s.After(slice, t.sliceFn)
}

func (t *cpuTask) sliceDone() {
	c := t.c
	c.cores.Release()
	t.remaining -= t.slice
	if t.remaining > 0 {
		t.try()
		return
	}
	done := t.done
	t.done = nil
	c.tasks = append(c.tasks, t)
	if done != nil {
		done()
	}
}

// UseAsync charges work to the CPU from scheduler context, with no
// process: the charge queues for a core through the same FIFO as blocking
// Use, consumes it in SchedQuantum slices, and calls done (may be nil)
// once fully charged. It is the run-to-completion counterpart of Use —
// identical queueing, slicing and busy accounting, minus the goroutine.
func (c *CPU) UseAsync(work time.Duration, done func()) {
	if work <= 0 {
		if done != nil {
			done()
		}
		return
	}
	t := c.getTask()
	t.remaining = time.Duration(float64(work) / c.speed)
	t.done = done
	t.try()
}

// Cores reports the number of cores.
func (c *CPU) Cores() int { return c.cores.Capacity() }

// BusyTime reports accumulated core-time consumed.
func (c *CPU) BusyTime() time.Duration { return c.busy }

// Queue reports how many processes are waiting for or holding cores.
func (c *CPU) Queue() int { return c.cores.InUse() }

// Speed reports the per-core speed factor.
func (c *CPU) Speed() float64 { return c.speed }
