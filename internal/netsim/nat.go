package netsim

import (
	"net/netip"
	"time"
)

// NATType selects the translation/filtering behaviour of a NAT middlebox.
type NATType int

// NAT behaviours per the classic STUN taxonomy.
const (
	// NATFullCone: one external mapping per internal endpoint; any
	// external host may send to the mapped port.
	NATFullCone NATType = iota
	// NATRestrictedCone: as full cone, but inbound packets are accepted
	// only from addresses the internal host has sent to.
	NATRestrictedCone
	// NATPortRestricted: inbound must match an (address,port) previously
	// contacted.
	NATPortRestricted
	// NATSymmetric: a distinct external mapping per destination;
	// inbound only from that exact destination.
	NATSymmetric
)

func (t NATType) String() string {
	switch t {
	case NATFullCone:
		return "full-cone"
	case NATRestrictedCone:
		return "restricted-cone"
	case NATPortRestricted:
		return "port-restricted"
	case NATSymmetric:
		return "symmetric"
	}
	return "nat(?)"
}

type natKey struct {
	proto Proto
	in    netip.AddrPort
	// dst is only set for symmetric NATs.
	dst netip.AddrPort
}

type natMapping struct {
	key      natKey
	external netip.AddrPort
	lastUsed VTime
	// peers records destinations contacted through this mapping, for
	// port-restricted filtering; peerAddrs is the address-only view the
	// restricted-cone check consults, so the per-inbound-packet filter is
	// a single lookup rather than a scan over every contacted endpoint.
	peers     map[netip.AddrPort]bool
	peerAddrs map[netip.Addr]bool
}

// NAT is network address/port translation state attached to a middlebox
// node. The node must have exactly one inside interface; the external
// address is the first non-inside interface address.
type NAT struct {
	node     *Node
	typ      NATType
	external netip.Addr
	byKey    map[natKey]*natMapping
	byExt    map[uint16]*natMapping
	nextPort uint16
	timeout  time.Duration
	drops    uint64
}

// EnableNAT turns nd into a NAT middlebox of the given type. insideAddr
// must be one of nd's interface addresses; packets arriving on that
// interface are translated outbound, packets arriving on any other
// interface are matched against mappings.
func (nd *Node) EnableNAT(typ NATType, insideAddr netip.Addr) *NAT {
	nat := &NAT{
		node:     nd,
		typ:      typ,
		byKey:    make(map[natKey]*natMapping),
		byExt:    make(map[uint16]*natMapping),
		nextPort: 20000,
		timeout:  2 * time.Minute,
	}
	var marked bool
	for _, i := range nd.ifaces {
		if i.addr == insideAddr {
			i.inside = true
			marked = true
		} else if !nat.external.IsValid() {
			nat.external = i.addr
		}
	}
	if !marked {
		panic("netsim: EnableNAT: insideAddr is not an interface of " + nd.name)
	}
	if !nat.external.IsValid() {
		panic("netsim: EnableNAT: node has no outside interface")
	}
	nd.nat = nat
	nd.forward = true
	return nat
}

// ExternalAddr returns the NAT's public address.
func (n *NAT) ExternalAddr() netip.Addr { return n.external }

// Type returns the NAT behaviour.
func (n *NAT) Type() NATType { return n.typ }

// Drops reports inbound packets rejected by filtering.
func (n *NAT) Drops() uint64 { return n.drops }

// Mappings reports the number of active mappings.
func (n *NAT) Mappings() int { return len(n.byKey) }

// SetTimeout configures mapping expiry (default 2 minutes).
func (n *NAT) SetTimeout(d time.Duration) { n.timeout = d }

// Reset discards every active mapping (a middlebox reboot / conntrack
// flush — the NAT-rebinding fault of internal/faults). Inbound packets
// for old mappings drop until the inside host transmits again, and the
// re-punched mapping lands on a fresh external port.
func (n *NAT) Reset() {
	n.byKey = make(map[natKey]*natMapping)
	n.byExt = make(map[uint16]*natMapping)
}

// process translates pkt arriving on iface in. It returns the (possibly
// rewritten) packet to continue routing, or nil if the packet is dropped.
func (n *NAT) process(in *Iface, pkt *Packet) *Packet {
	now := n.node.net.sim.now
	if in.inside {
		// Outbound: allocate or refresh a mapping and rewrite source.
		key := natKey{proto: pkt.Proto, in: pkt.Src}
		if n.typ == NATSymmetric {
			key.dst = pkt.Dst
		}
		m := n.byKey[key]
		if m != nil && now-m.lastUsed > n.timeout {
			n.expire(m)
			m = nil
		}
		if m == nil {
			m = &natMapping{
				key:       key,
				external:  netip.AddrPortFrom(n.external, n.allocPort()),
				peers:     make(map[netip.AddrPort]bool),
				peerAddrs: make(map[netip.Addr]bool),
			}
			n.byKey[key] = m
			n.byExt[m.external.Port()] = m
		}
		m.lastUsed = now
		m.peers[pkt.Dst] = true
		m.peerAddrs[pkt.Dst.Addr()] = true
		out := *pkt
		out.Src = m.external
		return &out
	}
	// Inbound: must match a mapping on the external address.
	if pkt.Dst.Addr() != n.external {
		return pkt // transit traffic not addressed to the NAT
	}
	m := n.byExt[pkt.Dst.Port()]
	if m == nil || now-m.lastUsed > n.timeout {
		if m != nil {
			n.expire(m)
		}
		n.drops++
		n.node.net.trace(TraceDrop, n.node, pkt, "nat: no mapping")
		return nil
	}
	if !n.inboundAllowed(m, pkt.Src) {
		n.drops++
		n.node.net.trace(TraceDrop, n.node, pkt, "nat: filtered")
		return nil
	}
	m.lastUsed = now
	out := *pkt
	out.Dst = m.key.in
	return &out
}

func (n *NAT) inboundAllowed(m *natMapping, src netip.AddrPort) bool {
	switch n.typ {
	case NATFullCone:
		return true
	case NATRestrictedCone:
		return m.peerAddrs[src.Addr()]
	case NATPortRestricted:
		return m.peers[src]
	case NATSymmetric:
		return m.key.dst == src
	}
	return false
}

func (n *NAT) allocPort() uint16 {
	for {
		n.nextPort++
		if n.nextPort < 20000 {
			n.nextPort = 20000
		}
		if _, used := n.byExt[n.nextPort]; !used {
			return n.nextPort
		}
	}
}

func (n *NAT) expire(m *natMapping) {
	delete(n.byKey, m.key)
	delete(n.byExt, m.external.Port())
}
