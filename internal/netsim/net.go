package netsim

import (
	"fmt"
	"net/netip"
	"time"
)

// Proto identifies the simulated layer-4 protocol of a packet.
type Proto uint8

// Simulated protocol numbers (mirroring IANA where one exists).
const (
	ProtoICMP Proto = 1
	ProtoUDP  Proto = 17
	ProtoESP  Proto = 50
	ProtoHIP  Proto = 139
)

func (p Proto) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoUDP:
		return "udp"
	case ProtoESP:
		return "esp"
	case ProtoHIP:
		return "hip"
	}
	return fmt.Sprintf("proto(%d)", uint8(p))
}

// Packet is a simulated datagram. Size is the on-wire size including all
// headers below the payload; it determines serialization delay.
type Packet struct {
	Src, Dst netip.AddrPort
	Proto    Proto
	Payload  []byte
	Size     int
	TTL      int
	// ID is a unique packet id for traces.
	ID uint64
}

// HeaderOverhead is the modeled per-packet IPv4+L2 header cost in bytes.
const HeaderOverhead = 40

// DefaultTTL is the initial hop limit of simulated packets.
const DefaultTTL = 64

// Network is a collection of nodes connected by links.
type Network struct {
	sim    *Sim
	nodes  map[string]*Node
	byAddr map[netip.Addr]*Node
	pktID  uint64
}

// NewNetwork creates an empty network on s.
func NewNetwork(s *Sim) *Network {
	return &Network{sim: s, nodes: make(map[string]*Node), byAddr: make(map[netip.Addr]*Node)}
}

// Sim returns the owning simulation.
func (n *Network) Sim() *Sim { return n.sim }

// Node returns the named node, or nil.
func (n *Network) Node(name string) *Node { return n.nodes[name] }

// NodeByAddr returns the node owning addr, or nil.
func (n *Network) NodeByAddr(a netip.Addr) *Node { return n.byAddr[a] }

// Node is a simulated host, router or middlebox.
type Node struct {
	net     *Network
	name    string
	ifaces  []*Iface
	routes  []route
	forward bool
	cpu     *CPU
	// perPacketCPU is charged per packet sent or delivered locally; it
	// models kernel/NIC processing on the host.
	perPacketCPU time.Duration

	udp      map[uint16]*UDPSocket
	nextPort uint16
	echoes   map[uint64]*echoWait
	echoSeq  uint64
	nat      *NAT

	// Raw protocol taps: proto -> handler. Used by in-sim HIP/ESP stacks.
	rawTaps map[Proto]func(pkt *Packet)

	// Filter, when non-nil, inspects every packet arriving at the node
	// (before forwarding or delivery); returning false drops it. Used by
	// VLAN segmentation and firewall middleboxes.
	Filter func(pkt *Packet) bool

	// Down, when true, detaches the node from the network: it neither
	// sends nor receives (a crashed VM / powered-off host). Processes on
	// the node keep running; only its traffic dies. Toggled by
	// fault-injection layers (internal/faults, cloud.Crash).
	Down bool

	// FaultFilter, when non-nil, inspects every packet arriving at the
	// node ahead of Filter; returning false drops it. It is the
	// fault-injection analogue of Filter (partitions), kept separate so
	// injected faults never clobber a deployment's VLAN/firewall policy.
	FaultFilter func(pkt *Packet) bool

	// Stats
	rxPackets, txPackets uint64
	rxBytes, txBytes     uint64
}

type route struct {
	prefix  netip.Prefix
	via     *Iface
	nextHop netip.Addr // zero => directly attached
}

// Iface is one attachment point of a node; a link joins two ifaces.
type Iface struct {
	node *Node
	addr netip.Addr
	link *Link
	peer *Iface
	// tx models transmission serialization: the time this direction of the
	// link is busy until.
	busyUntil VTime
	// inside marks the private side of a NAT middlebox.
	inside bool
}

// Addr returns the interface address.
func (i *Iface) Addr() netip.Addr { return i.addr }

// Link connects two interfaces with symmetric latency/bandwidth and
// independent per-direction serialization.
type Link struct {
	Latency   time.Duration
	Bandwidth float64 // bytes per second; <=0 means infinite
	LossProb  float64
	DupProb   float64
	Jitter    time.Duration // uniform [0,Jitter) extra latency per packet
	// QueueLimit bounds the backlog of serialization delay; packets that
	// would wait longer are dropped (tail drop). Zero means unlimited.
	QueueLimit time.Duration

	// Down, when true, drops every packet offered to the link in either
	// direction (carrier loss / pulled cable). Toggled by fault-injection
	// schedules (internal/faults.FlapLink).
	Down bool

	// Fault, when non-nil, is consulted per packet after the LossProb
	// draw and can drop, corrupt, duplicate or delay it (see
	// FaultDecision). Installed by internal/faults impairment windows;
	// nil costs nothing on the hot path.
	Fault func(pkt *Packet) FaultDecision

	a, b    *Iface
	drops   uint64
	carried uint64
}

// FaultDecision is a Link.Fault verdict for one packet.
type FaultDecision struct {
	// Drop discards the packet (counted in Link.Drops).
	Drop bool
	// Corrupt delivers a bit-flipped copy of the payload instead of the
	// original. The copy is freshly allocated — never drawn from the
	// buffer pool — because the receiver recycles what it consumes while
	// the sender may still retain the original (HIP retransmission
	// buffers); the original is abandoned in transit (see DESIGN.md §5).
	Corrupt bool
	// Duplicate delivers a second copy shortly after the first
	// (independent of Link.DupProb).
	Duplicate bool
	// Delay adds extra one-way latency for this packet only; delaying
	// some packets past their successors reorders the flow.
	Delay time.Duration
}

// Drops reports the number of packets dropped by loss or queue overflow.
func (l *Link) Drops() uint64 { return l.drops }

// Carried reports the number of packets that traversed the link.
func (l *Link) Carried() uint64 { return l.carried }

// AddNode creates a node. cores/speed configure its CPU (see CPU).
func (n *Network) AddNode(name string, cores int, speed float64) *Node {
	if _, dup := n.nodes[name]; dup {
		panic("netsim: duplicate node " + name)
	}
	nd := &Node{
		net:      n,
		name:     name,
		cpu:      NewCPU(n.sim, cores, speed),
		udp:      make(map[uint16]*UDPSocket),
		nextPort: 32768,
		echoes:   make(map[uint64]*echoWait),
		rawTaps:  make(map[Proto]func(*Packet)),
	}
	n.nodes[name] = nd
	return nd
}

// AddRouter creates a forwarding node with ample CPU.
func (n *Network) AddRouter(name string) *Node {
	nd := n.AddNode(name, 8, 100)
	nd.forward = true
	return nd
}

// Name returns the node name.
func (nd *Node) Name() string { return nd.name }

// CPU returns the node's processor.
func (nd *Node) CPU() *CPU { return nd.cpu }

// Net returns the network the node belongs to.
func (nd *Node) Net() *Network { return nd.net }

// SetPerPacketCPU sets the per-packet host processing charge.
func (nd *Node) SetPerPacketCPU(d time.Duration) { nd.perPacketCPU = d }

// PerPacketCPU returns the per-packet host processing charge.
func (nd *Node) PerPacketCPU() time.Duration { return nd.perPacketCPU }

// SetForwarding enables IP forwarding on the node.
func (nd *Node) SetForwarding(v bool) { nd.forward = v }

// Addrs returns all interface addresses of the node.
func (nd *Node) Addrs() []netip.Addr {
	out := make([]netip.Addr, 0, len(nd.ifaces))
	for _, i := range nd.ifaces {
		out = append(out, i.addr)
	}
	return out
}

// Addr returns the node's first address; it panics if the node has none.
func (nd *Node) Addr() netip.Addr {
	if len(nd.ifaces) == 0 {
		panic("netsim: node " + nd.name + " has no interfaces")
	}
	return nd.ifaces[0].addr
}

// PromoteAddr makes the interface owning a the node's primary — the
// address Addr() reports and the source new sockets bind to. Live
// migration promotes the fresh attachment so replies and control traffic
// stop sourcing from the abandoned locator. Reports whether a was found.
func (nd *Node) PromoteAddr(a netip.Addr) bool {
	for idx, i := range nd.ifaces {
		if i.addr != a {
			continue
		}
		copy(nd.ifaces[1:idx+1], nd.ifaces[:idx])
		nd.ifaces[0] = i
		return true
	}
	return false
}

// Connect links a and b with the given characteristics, assigning addrA and
// addrB to the new interfaces. It returns the link.
func (n *Network) Connect(a *Node, addrA netip.Addr, b *Node, addrB netip.Addr, l Link) *Link {
	link := &l
	ia := &Iface{node: a, addr: addrA, link: link}
	ib := &Iface{node: b, addr: addrB, link: link}
	ia.peer, ib.peer = ib, ia
	link.a, link.b = ia, ib
	a.ifaces = append(a.ifaces, ia)
	b.ifaces = append(b.ifaces, ib)
	n.byAddr[addrA] = a
	n.byAddr[addrB] = b
	// Host routes for the directly connected peer.
	a.routes = append(a.routes, route{prefix: netip.PrefixFrom(addrB, addrB.BitLen()), via: ia})
	b.routes = append(b.routes, route{prefix: netip.PrefixFrom(addrA, addrA.BitLen()), via: ib})
	return link
}

// LinkBetween returns the link directly connecting a and b (the first,
// when several exist), or nil — the handle fault schedules use to flap or
// impair a specific hop.
func (n *Network) LinkBetween(a, b *Node) *Link {
	for _, i := range a.ifaces {
		if i.peer != nil && i.peer.node == b {
			return i.link
		}
	}
	return nil
}

// AddRoute installs prefix -> nextHop reachable via the interface whose
// direct peer is nextHop.
func (nd *Node) AddRoute(prefix netip.Prefix, nextHop netip.Addr) {
	for _, i := range nd.ifaces {
		if i.peer != nil && i.peer.addr == nextHop {
			nd.routes = append(nd.routes, route{prefix: prefix, via: i, nextHop: nextHop})
			return
		}
	}
	panic(fmt.Sprintf("netsim: %s: next hop %v is not directly attached", nd.name, nextHop))
}

// AddDefaultRoute installs 0.0.0.0/0 and ::/0 via nextHop, replacing any
// existing default routes (so a migrated VM prefers its new gateway).
func (nd *Node) AddDefaultRoute(nextHop netip.Addr) {
	kept := nd.routes[:0]
	for _, r := range nd.routes {
		if r.prefix.Bits() != 0 {
			kept = append(kept, r)
		}
	}
	nd.routes = kept
	nd.AddRoute(netip.MustParsePrefix("0.0.0.0/0"), nextHop)
	nd.AddRoute(netip.MustParsePrefix("::/0"), nextHop)
}

// lookupRoute returns the longest-prefix-match route for dst.
func (nd *Node) lookupRoute(dst netip.Addr) (route, bool) {
	best := -1
	var out route
	for _, r := range nd.routes {
		if r.prefix.Contains(dst) && r.prefix.Bits() > best {
			best = r.prefix.Bits()
			out = r
		}
	}
	return out, best >= 0
}

// ownsAddr reports whether addr is local to the node.
func (nd *Node) ownsAddr(a netip.Addr) bool {
	for _, i := range nd.ifaces {
		if i.addr == a {
			return true
		}
	}
	return false
}

// TapRaw registers a handler receiving every locally delivered packet of
// the given protocol. Handlers run in scheduler context and must not block;
// they typically enqueue into a socket-like buffer and wake a process.
func (nd *Node) TapRaw(p Proto, fn func(pkt *Packet)) { nd.rawTaps[p] = fn }

// SendRaw emits a packet with the given protocol from this node. extraSize
// is added to len(payload)+HeaderOverhead to model encapsulation overheads.
func (nd *Node) SendRaw(proto Proto, src, dst netip.AddrPort, payload []byte, extraSize int) {
	n := nd.net
	n.pktID++
	pkt := &Packet{
		Src: src, Dst: dst, Proto: proto,
		Payload: payload,
		Size:    len(payload) + HeaderOverhead + extraSize,
		TTL:     DefaultTTL,
		ID:      n.pktID,
	}
	nd.txPackets++
	nd.txBytes += uint64(pkt.Size)
	nd.route(pkt)
}

// route forwards or delivers pkt from this node.
func (nd *Node) route(pkt *Packet) {
	if nd.Down {
		nd.net.trace(TraceDrop, nd, pkt, "node down")
		return
	}
	if nd.ownsAddr(pkt.Dst.Addr()) {
		nd.deliver(pkt)
		return
	}
	r, ok := nd.lookupRoute(pkt.Dst.Addr())
	if !ok {
		nd.net.trace(TraceDrop, nd, pkt, "no route")
		return
	}
	nd.transmit(r.via, pkt)
}

// transmit sends pkt out via iface, modeling serialization, loss and
// propagation, then hands it to the peer node.
func (nd *Node) transmit(via *Iface, pkt *Packet) {
	l := via.link
	s := nd.net.sim
	if l.Down {
		l.drops++
		nd.net.trace(TraceDrop, nd, pkt, "link down")
		return
	}
	if l.LossProb > 0 && s.rng.Float64() < l.LossProb {
		l.drops++
		nd.net.trace(TraceDrop, nd, pkt, "loss")
		return
	}
	var fd FaultDecision
	if l.Fault != nil {
		fd = l.Fault(pkt)
		if fd.Drop {
			l.drops++
			nd.net.trace(TraceDrop, nd, pkt, "fault drop")
			return
		}
	}
	start := s.now
	if via.busyUntil > start {
		start = via.busyUntil
	}
	var tx time.Duration
	if l.Bandwidth > 0 {
		tx = time.Duration(float64(pkt.Size) / l.Bandwidth * float64(time.Second))
	}
	if l.QueueLimit > 0 && start-s.now > l.QueueLimit {
		l.drops++
		nd.net.trace(TraceDrop, nd, pkt, "queue overflow")
		return
	}
	via.busyUntil = start + tx
	delay := l.Latency + fd.Delay
	if l.Jitter > 0 {
		delay += time.Duration(s.rng.Int63n(int64(l.Jitter)))
	}
	if fd.Corrupt && len(pkt.Payload) > 0 {
		// Deliver a corrupted copy, not the original mutated in place:
		// senders may retain the payload for retransmission (HIP control
		// packets), so an in-place flip would poison every retry. The
		// original buffer is abandoned — the link cannot tell whether the
		// sender still owns it, so it must not recycle it into the pool.
		bad := *pkt
		bad.Payload = GetBuf(len(pkt.Payload))
		copy(bad.Payload, pkt.Payload)
		bad.Payload[s.rng.Intn(len(bad.Payload))] ^= 1 << uint(s.rng.Intn(8))
		pkt = &bad
	}
	arrival := start + tx + delay
	peer := via.peer
	l.carried++
	// Typed delivery event: the per-packet hot path schedules a recycled
	// event node, never a closure.
	s.scheduleDeliver(arrival, peer, pkt)
	if fd.Duplicate || (l.DupProb > 0 && s.rng.Float64() < l.DupProb) {
		dup := *pkt
		// The duplicate needs its own payload: receivers may recycle a
		// packet's body into the buffer pool after consuming it, and two
		// deliveries of one backing array would double-free it. A pooled
		// copy is exactly right here — the receiver recycles it like any
		// other body.
		dup.Payload = GetBuf(len(pkt.Payload))
		copy(dup.Payload, pkt.Payload)
		s.scheduleDeliver(arrival+time.Microsecond, peer, &dup)
	}
	nd.net.trace(TraceTx, nd, pkt, via.addr.String())
}

// receive handles a packet arriving on iface in.
func (nd *Node) receive(in *Iface, pkt *Packet) {
	pkt.TTL--
	if pkt.TTL <= 0 {
		nd.net.trace(TraceDrop, nd, pkt, "ttl expired")
		return
	}
	if nd.Down {
		nd.net.trace(TraceDrop, nd, pkt, "node down")
		return
	}
	if nd.FaultFilter != nil && !nd.FaultFilter(pkt) {
		nd.net.trace(TraceDrop, nd, pkt, "fault filtered")
		return
	}
	if nd.Filter != nil && !nd.Filter(pkt) {
		nd.net.trace(TraceDrop, nd, pkt, "filtered")
		return
	}
	if nd.nat != nil {
		pkt = nd.nat.process(in, pkt)
		if pkt == nil {
			return
		}
	}
	if nd.ownsAddr(pkt.Dst.Addr()) {
		nd.deliver(pkt)
		return
	}
	if !nd.forward {
		nd.net.trace(TraceDrop, nd, pkt, "not forwarding")
		return
	}
	nd.route(pkt)
}

// deliver hands a locally addressed packet to ICMP, a raw tap or a socket.
func (nd *Node) deliver(pkt *Packet) {
	nd.rxPackets++
	nd.rxBytes += uint64(pkt.Size)
	nd.net.trace(TraceRx, nd, pkt, "")
	switch pkt.Proto {
	case ProtoICMP:
		nd.handleICMP(pkt)
		return
	}
	if tap := nd.rawTaps[pkt.Proto]; tap != nil {
		tap(pkt)
		return
	}
	if pkt.Proto == ProtoUDP {
		if sock := nd.udp[pkt.Dst.Port()]; sock != nil {
			sock.enqueue(pkt)
			return
		}
	}
	nd.net.trace(TraceDrop, nd, pkt, "no listener")
}

// Stats reports packet/byte counters for the node.
func (nd *Node) Stats() (rxPkts, txPkts, rxBytes, txBytes uint64) {
	return nd.rxPackets, nd.txPackets, nd.rxBytes, nd.txBytes
}
