package netsim

import (
	"errors"
	"net/netip"
	"time"
)

// Errors returned by socket operations.
var (
	ErrTimeout     = errors.New("netsim: operation timed out")
	ErrPortInUse   = errors.New("netsim: port already bound")
	ErrSocketClose = errors.New("netsim: socket closed")
)

// Datagram is one received UDP payload with its source.
type Datagram struct {
	Src     netip.AddrPort
	Payload []byte
}

// UDPSocket is a bound simulated UDP endpoint.
type UDPSocket struct {
	node   *Node
	local  netip.AddrPort
	buf    []Datagram
	maxBuf int
	wq     *WaitQueue
	closed bool
	// ExtraSize is added to every sent packet's wire size; used by
	// encapsulating layers (e.g. Teredo) to model header overhead.
	ExtraSize int
	// Handler, when non-nil, receives datagrams in scheduler context
	// instead of buffering them for RecvFrom. It must not block.
	Handler func(dg Datagram)
}

// BindUDP binds a UDP socket on port (0 picks an ephemeral port). The local
// address is the node's first interface address.
func (nd *Node) BindUDP(port uint16) (*UDPSocket, error) {
	if port == 0 {
		for {
			nd.nextPort++
			if nd.nextPort < 32768 {
				nd.nextPort = 32768
			}
			if _, used := nd.udp[nd.nextPort]; !used {
				port = nd.nextPort
				break
			}
		}
	} else if _, used := nd.udp[port]; used {
		return nil, ErrPortInUse
	}
	s := &UDPSocket{
		node:   nd,
		local:  netip.AddrPortFrom(nd.Addr(), port),
		maxBuf: 512,
		wq:     NewWaitQueue(nd.net.sim),
	}
	nd.udp[port] = s
	return s, nil
}

// MustBindUDP is BindUDP that panics on error (for topology setup code).
func (nd *Node) MustBindUDP(port uint16) *UDPSocket {
	s, err := nd.BindUDP(port)
	if err != nil {
		panic(err)
	}
	return s
}

// LocalAddr returns the bound address.
func (s *UDPSocket) LocalAddr() netip.AddrPort { return s.local }

// Rehome re-binds the socket's source address to the node's current
// primary address, keeping the port. Sockets capture their source at bind
// time, so a live-migrated VM calls this (after PromoteAddr) to stop
// sourcing datagrams from its abandoned locator.
func (s *UDPSocket) Rehome() {
	s.local = netip.AddrPortFrom(s.node.Addr(), s.local.Port())
}

// Node returns the owning node.
func (s *UDPSocket) Node() *Node { return s.node }

// Close unbinds the socket and wakes blocked receivers.
func (s *UDPSocket) Close() {
	if s.closed {
		return
	}
	s.closed = true
	delete(s.node.udp, s.local.Port())
	s.wq.WakeAll()
}

// SendTo transmits payload to dst. It runs in scheduler context and does
// not block; CPU cost is not charged here (callers running as processes
// should charge per-packet CPU via the node's CPU explicitly, which the
// higher-level conn types do).
func (s *UDPSocket) SendTo(dst netip.AddrPort, payload []byte) {
	if s.closed {
		return
	}
	s.node.SendRaw(ProtoUDP, s.local, dst, payload, s.ExtraSize+8)
}

// enqueue delivers a packet into the socket buffer (scheduler context).
func (s *UDPSocket) enqueue(pkt *Packet) {
	if s.closed {
		return
	}
	dg := Datagram{Src: pkt.Src, Payload: pkt.Payload}
	if s.Handler != nil {
		s.Handler(dg)
		return
	}
	if len(s.buf) >= s.maxBuf {
		s.node.net.trace(TraceDrop, s.node, pkt, "socket buffer full")
		return
	}
	s.buf = append(s.buf, dg)
	s.wq.WakeOne()
}

// RecvFrom blocks p until a datagram arrives or timeout elapses
// (timeout <= 0 blocks forever).
func (s *UDPSocket) RecvFrom(p *Proc, timeout time.Duration) (Datagram, error) {
	deadline := VTime(0)
	if timeout > 0 {
		deadline = p.Now() + timeout
	}
	for len(s.buf) == 0 {
		if s.closed {
			return Datagram{}, ErrSocketClose
		}
		remain := VTime(0)
		if deadline > 0 {
			remain = deadline - p.Now()
			if remain <= 0 {
				return Datagram{}, ErrTimeout
			}
		}
		if s.wq.Wait(p, remain) {
			return Datagram{}, ErrTimeout
		}
	}
	dg := s.buf[0]
	s.buf = s.buf[1:]
	return dg, nil
}

// Pending reports buffered datagram count.
func (s *UDPSocket) Pending() int { return len(s.buf) }

// --- ICMP echo ---

type echoWait struct {
	wq   *WaitQueue
	done bool
	rtt  time.Duration
	sent VTime
}

// icmpEcho payload layout: [0]=type (8 request, 0 reply), then 8-byte id.
const (
	icmpEchoRequest = 8
	icmpEchoReply   = 0
)

// Ping sends an ICMP echo of the given payload size to dst and waits for
// the reply, returning the RTT. It blocks the calling process.
func (nd *Node) Ping(p *Proc, dst netip.Addr, size int, timeout time.Duration) (time.Duration, error) {
	nd.echoSeq++
	id := nd.echoSeq
	w := &echoWait{wq: NewWaitQueue(nd.net.sim), sent: p.Now()}
	nd.echoes[id] = w
	defer delete(nd.echoes, id)
	if size < 9 {
		size = 9
	}
	payload := make([]byte, size)
	payload[0] = icmpEchoRequest
	putUint64(payload[1:9], id)
	src := netip.AddrPortFrom(nd.Addr(), 0)
	nd.SendRaw(ProtoICMP, src, netip.AddrPortFrom(dst, 0), payload, 0)
	if !w.done {
		if w.wq.Wait(p, timeout) {
			return 0, ErrTimeout
		}
	}
	return w.rtt, nil
}

func (nd *Node) handleICMP(pkt *Packet) {
	if len(pkt.Payload) < 9 {
		return
	}
	switch pkt.Payload[0] {
	case icmpEchoRequest:
		reply := make([]byte, len(pkt.Payload))
		copy(reply, pkt.Payload)
		reply[0] = icmpEchoReply
		nd.SendRaw(ProtoICMP, netip.AddrPortFrom(pkt.Dst.Addr(), 0), netip.AddrPortFrom(pkt.Src.Addr(), 0), reply, 0)
	case icmpEchoReply:
		id := getUint64(pkt.Payload[1:9])
		if w := nd.echoes[id]; w != nil && !w.done {
			w.done = true
			w.rtt = nd.net.sim.now - w.sent
			w.wq.WakeAll()
		}
	}
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

func getUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}
