package netsim

import (
	"net/netip"
	"testing"
	"time"
)

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

// twoHosts builds a <-> b over one link and returns them.
func twoHosts(s *Sim, l Link) (*Network, *Node, *Node) {
	n := NewNetwork(s)
	a := n.AddNode("a", 1, 1)
	b := n.AddNode("b", 1, 1)
	n.Connect(a, mustAddr("10.0.0.1"), b, mustAddr("10.0.0.2"), l)
	return n, a, b
}

func TestUDPDelivery(t *testing.T) {
	s := New(1)
	_, a, b := twoHosts(s, Link{Latency: 5 * time.Millisecond})
	var got Datagram
	var at VTime
	bs := b.MustBindUDP(7)
	s.Spawn("rx", func(p *Proc) {
		dg, err := bs.RecvFrom(p, 0)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		got = dg
		at = p.Now()
	})
	as := a.MustBindUDP(9000)
	s.Spawn("tx", func(p *Proc) {
		as.SendTo(netip.AddrPortFrom(mustAddr("10.0.0.2"), 7), []byte("hello"))
	})
	s.Run(0)
	if string(got.Payload) != "hello" {
		t.Fatalf("payload = %q", got.Payload)
	}
	if got.Src != as.LocalAddr() {
		t.Fatalf("src = %v, want %v", got.Src, as.LocalAddr())
	}
	if at != 5*time.Millisecond {
		t.Fatalf("arrival at %v, want 5ms", at)
	}
}

func TestUDPRecvTimeout(t *testing.T) {
	s := New(1)
	_, _, b := twoHosts(s, Link{})
	bs := b.MustBindUDP(7)
	var err error
	s.Spawn("rx", func(p *Proc) {
		_, err = bs.RecvFrom(p, 3*time.Millisecond)
	})
	s.Run(0)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	s := New(1)
	// 1 MB/s, zero latency: a 1040-byte packet (1000 payload + 40 hdr)
	// takes ~1.048ms. Two packets queue behind each other.
	_, a, b := twoHosts(s, Link{Bandwidth: 1e6})
	bs := b.MustBindUDP(7)
	var arrivals []VTime
	s.Spawn("rx", func(p *Proc) {
		for i := 0; i < 2; i++ {
			if _, err := bs.RecvFrom(p, 0); err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			arrivals = append(arrivals, p.Now())
		}
	})
	as := a.MustBindUDP(0)
	dst := netip.AddrPortFrom(mustAddr("10.0.0.2"), 7)
	s.Spawn("tx", func(p *Proc) {
		as.SendTo(dst, make([]byte, 1000))
		as.SendTo(dst, make([]byte, 1000))
	})
	s.Run(0)
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	per := time.Duration(1048.0 / 1e6 * 1e9)
	if diff := arrivals[0] - per; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("first arrival %v, want ≈%v", arrivals[0], per)
	}
	if diff := arrivals[1] - 2*per; diff < -2*time.Microsecond || diff > 2*time.Microsecond {
		t.Fatalf("second arrival %v, want ≈%v (serialized)", arrivals[1], 2*per)
	}
}

func TestRoutingViaRouter(t *testing.T) {
	s := New(1)
	n := NewNetwork(s)
	a := n.AddNode("a", 1, 1)
	r := n.AddRouter("r")
	b := n.AddNode("b", 1, 1)
	n.Connect(a, mustAddr("10.0.1.1"), r, mustAddr("10.0.1.254"), Link{Latency: time.Millisecond})
	n.Connect(r, mustAddr("10.0.2.254"), b, mustAddr("10.0.2.1"), Link{Latency: time.Millisecond})
	a.AddDefaultRoute(mustAddr("10.0.1.254"))
	b.AddDefaultRoute(mustAddr("10.0.2.254"))
	r.AddRoute(netip.MustParsePrefix("10.0.2.0/24"), mustAddr("10.0.2.1"))

	bs := b.MustBindUDP(7)
	ok := false
	s.Spawn("rx", func(p *Proc) {
		dg, err := bs.RecvFrom(p, 0)
		if err == nil && string(dg.Payload) == "via-router" {
			ok = true
		}
	})
	as := a.MustBindUDP(0)
	s.Spawn("tx", func(p *Proc) {
		as.SendTo(netip.AddrPortFrom(mustAddr("10.0.2.1"), 7), []byte("via-router"))
	})
	s.Run(0)
	if !ok {
		t.Fatal("packet not delivered across router")
	}
}

func TestPingRTT(t *testing.T) {
	s := New(1)
	_, a, _ := twoHosts(s, Link{Latency: 4 * time.Millisecond})
	var rtt time.Duration
	var err error
	s.Spawn("ping", func(p *Proc) {
		rtt, err = a.Ping(p, mustAddr("10.0.0.2"), 64, time.Second)
	})
	s.Run(0)
	if err != nil {
		t.Fatalf("ping: %v", err)
	}
	if rtt != 8*time.Millisecond {
		t.Fatalf("rtt = %v, want 8ms", rtt)
	}
}

func TestPingTimeoutOnLoss(t *testing.T) {
	s := New(1)
	_, a, _ := twoHosts(s, Link{Latency: time.Millisecond, LossProb: 1.0})
	var err error
	s.Spawn("ping", func(p *Proc) {
		_, err = a.Ping(p, mustAddr("10.0.0.2"), 64, 50*time.Millisecond)
	})
	s.Run(0)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestLinkLossDropsPackets(t *testing.T) {
	s := New(2)
	_, a, b := twoHosts(s, Link{LossProb: 0.5})
	bs := b.MustBindUDP(7)
	received := 0
	s.Spawn("rx", func(p *Proc) {
		for {
			if _, err := bs.RecvFrom(p, 0); err != nil {
				return
			}
			received++
		}
	})
	as := a.MustBindUDP(0)
	dst := netip.AddrPortFrom(mustAddr("10.0.0.2"), 7)
	s.Spawn("tx", func(p *Proc) {
		for i := 0; i < 200; i++ {
			as.SendTo(dst, []byte("x"))
			p.Sleep(time.Millisecond)
		}
	})
	s.Run(0)
	s.Shutdown()
	if received < 60 || received > 140 {
		t.Fatalf("received %d of 200 at 50%% loss", received)
	}
}

func TestTTLExpiry(t *testing.T) {
	s := New(1)
	n := NewNetwork(s)
	// Build a two-node routing loop.
	a := n.AddRouter("a")
	b := n.AddRouter("b")
	n.Connect(a, mustAddr("10.0.0.1"), b, mustAddr("10.0.0.2"), Link{})
	a.AddDefaultRoute(mustAddr("10.0.0.2"))
	b.AddDefaultRoute(mustAddr("10.0.0.1"))
	drops := 0
	s.SetTracer(func(at VTime, kind TraceKind, node string, pkt *Packet, note string) {
		if kind == TraceDrop && note == "ttl expired" {
			drops++
		}
	})
	as := a.MustBindUDP(0)
	s.Spawn("tx", func(p *Proc) {
		as.SendTo(netip.AddrPortFrom(mustAddr("192.0.2.1"), 1), []byte("loop"))
	})
	s.Run(0)
	if drops != 1 {
		t.Fatalf("ttl drops = %d, want 1", drops)
	}
}

func TestNATOutboundInbound(t *testing.T) {
	s := New(1)
	n := NewNetwork(s)
	inside := n.AddNode("inside", 1, 1)
	nat := n.AddNode("nat", 2, 10)
	server := n.AddNode("server", 1, 1)
	n.Connect(inside, mustAddr("192.168.0.2"), nat, mustAddr("192.168.0.1"), Link{Latency: time.Millisecond})
	n.Connect(nat, mustAddr("203.0.113.1"), server, mustAddr("198.51.100.1"), Link{Latency: time.Millisecond})
	inside.AddDefaultRoute(mustAddr("192.168.0.1"))
	server.AddDefaultRoute(mustAddr("203.0.113.1"))
	natbox := nat.EnableNAT(NATPortRestricted, mustAddr("192.168.0.1"))

	ss := server.MustBindUDP(53)
	var seenSrc netip.AddrPort
	s.Spawn("server", func(p *Proc) {
		dg, err := ss.RecvFrom(p, 0)
		if err != nil {
			t.Errorf("server recv: %v", err)
			return
		}
		seenSrc = dg.Src
		ss.SendTo(dg.Src, []byte("reply"))
	})
	cs := inside.MustBindUDP(4000)
	var gotReply bool
	s.Spawn("client", func(p *Proc) {
		cs.SendTo(netip.AddrPortFrom(mustAddr("198.51.100.1"), 53), []byte("query"))
		dg, err := cs.RecvFrom(p, time.Second)
		if err == nil && string(dg.Payload) == "reply" {
			gotReply = true
		}
	})
	s.Run(0)
	if seenSrc.Addr() != mustAddr("203.0.113.1") {
		t.Fatalf("server saw src %v, want NAT external addr", seenSrc)
	}
	if !gotReply {
		t.Fatal("reply did not traverse NAT back")
	}
	if natbox.Mappings() != 1 {
		t.Fatalf("mappings = %d, want 1", natbox.Mappings())
	}
}

func TestNATFiltersUnsolicited(t *testing.T) {
	s := New(1)
	n := NewNetwork(s)
	inside := n.AddNode("inside", 1, 1)
	nat := n.AddNode("nat", 2, 10)
	attacker := n.AddNode("attacker", 1, 1)
	n.Connect(inside, mustAddr("192.168.0.2"), nat, mustAddr("192.168.0.1"), Link{})
	n.Connect(nat, mustAddr("203.0.113.1"), attacker, mustAddr("198.51.100.9"), Link{})
	inside.AddDefaultRoute(mustAddr("192.168.0.1"))
	attacker.AddDefaultRoute(mustAddr("203.0.113.1"))
	natbox := nat.EnableNAT(NATPortRestricted, mustAddr("192.168.0.1"))

	as := attacker.MustBindUDP(666)
	s.Spawn("attacker", func(p *Proc) {
		// Blind spray at likely NAT ports.
		for port := uint16(20001); port < 20010; port++ {
			as.SendTo(netip.AddrPortFrom(mustAddr("203.0.113.1"), port), []byte("evil"))
		}
	})
	s.Run(0)
	if natbox.Drops() != 9 {
		t.Fatalf("nat drops = %d, want 9", natbox.Drops())
	}
}

func TestNATSymmetricPerDestination(t *testing.T) {
	s := New(1)
	n := NewNetwork(s)
	inside := n.AddNode("inside", 1, 1)
	nat := n.AddNode("nat", 2, 10)
	r := n.AddRouter("r")
	s1 := n.AddNode("s1", 1, 1)
	s2 := n.AddNode("s2", 1, 1)
	n.Connect(inside, mustAddr("192.168.0.2"), nat, mustAddr("192.168.0.1"), Link{})
	n.Connect(nat, mustAddr("203.0.113.1"), r, mustAddr("203.0.113.254"), Link{})
	n.Connect(r, mustAddr("198.51.100.254"), s1, mustAddr("198.51.100.1"), Link{})
	n.Connect(r, mustAddr("198.51.101.254"), s2, mustAddr("198.51.101.1"), Link{})
	inside.AddDefaultRoute(mustAddr("192.168.0.1"))
	nat.AddDefaultRoute(mustAddr("203.0.113.254"))
	s1.AddDefaultRoute(mustAddr("198.51.100.254"))
	s2.AddDefaultRoute(mustAddr("198.51.101.254"))
	r.AddRoute(netip.MustParsePrefix("203.0.113.0/24"), mustAddr("203.0.113.1"))
	nat.EnableNAT(NATSymmetric, mustAddr("192.168.0.1"))

	var src1, src2 netip.AddrPort
	sock1 := s1.MustBindUDP(53)
	sock2 := s2.MustBindUDP(53)
	s.Spawn("s1", func(p *Proc) {
		dg, err := sock1.RecvFrom(p, 0)
		if err == nil {
			src1 = dg.Src
		}
	})
	s.Spawn("s2", func(p *Proc) {
		dg, err := sock2.RecvFrom(p, 0)
		if err == nil {
			src2 = dg.Src
		}
	})
	cs := inside.MustBindUDP(4000)
	s.Spawn("client", func(p *Proc) {
		cs.SendTo(netip.AddrPortFrom(mustAddr("198.51.100.1"), 53), []byte("a"))
		cs.SendTo(netip.AddrPortFrom(mustAddr("198.51.101.1"), 53), []byte("b"))
	})
	s.Run(0)
	if !src1.IsValid() || !src2.IsValid() {
		t.Fatal("packets not delivered")
	}
	if src1.Port() == src2.Port() {
		t.Fatalf("symmetric NAT reused port %d for both destinations", src1.Port())
	}
}

func TestLinkDuplication(t *testing.T) {
	s := New(5)
	_, a, b := twoHosts(s, Link{DupProb: 1.0})
	bs := b.MustBindUDP(7)
	got := 0
	s.Spawn("rx", func(p *Proc) {
		for {
			if _, err := bs.RecvFrom(p, 0); err != nil {
				return
			}
			got++
		}
	})
	as := a.MustBindUDP(0)
	s.Spawn("tx", func(p *Proc) {
		as.SendTo(netip.AddrPortFrom(mustAddr("10.0.0.2"), 7), []byte("dup me"))
	})
	s.Run(time.Second)
	s.Shutdown()
	if got != 2 {
		t.Fatalf("received %d copies, want 2 at DupProb=1", got)
	}
}

func TestLinkJitterSpreadsArrivals(t *testing.T) {
	s := New(9)
	_, a, b := twoHosts(s, Link{Latency: time.Millisecond, Jitter: 5 * time.Millisecond})
	bs := b.MustBindUDP(7)
	var arrivals []VTime
	s.Spawn("rx", func(p *Proc) {
		for {
			if _, err := bs.RecvFrom(p, 0); err != nil {
				return
			}
			arrivals = append(arrivals, p.Now())
		}
	})
	as := a.MustBindUDP(0)
	s.Spawn("tx", func(p *Proc) {
		for i := 0; i < 20; i++ {
			as.SendTo(netip.AddrPortFrom(mustAddr("10.0.0.2"), 7), []byte("j"))
			p.Sleep(10 * time.Millisecond)
		}
	})
	s.Run(time.Minute)
	s.Shutdown()
	if len(arrivals) != 20 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	// Delays relative to send times must not all be equal.
	distinct := map[VTime]bool{}
	for i, at := range arrivals {
		distinct[at-VTime(i)*10*time.Millisecond] = true
	}
	if len(distinct) < 5 {
		t.Fatalf("jitter produced only %d distinct delays", len(distinct))
	}
}

func TestLinkQueueLimitDrops(t *testing.T) {
	s := New(1)
	// 100 KB/s link, 10ms queue limit: a burst of large packets must tail-drop.
	_, a, b := twoHosts(s, Link{Bandwidth: 100e3, QueueLimit: 10 * time.Millisecond})
	bs := b.MustBindUDP(7)
	got := 0
	s.Spawn("rx", func(p *Proc) {
		for {
			if _, err := bs.RecvFrom(p, 0); err != nil {
				return
			}
			got++
		}
	})
	as := a.MustBindUDP(0)
	s.Spawn("tx", func(p *Proc) {
		for i := 0; i < 50; i++ {
			as.SendTo(netip.AddrPortFrom(mustAddr("10.0.0.2"), 7), make([]byte, 1400))
		}
	})
	s.Run(time.Minute)
	s.Shutdown()
	if got >= 50 {
		t.Fatal("queue limit dropped nothing")
	}
	if got == 0 {
		t.Fatal("queue limit dropped everything")
	}
}
