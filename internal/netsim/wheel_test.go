package netsim

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

// refSched is an independent reference scheduler: a flat slice popped by
// linear min-scan on (at, seq). Deliberately naive — it shares no code
// with the timer wheel, so agreement between the two is evidence the
// wheel's three tiers (cur heap / slots / overflow heap) preserve the
// exact (at, seq) total order across slot boundaries, horizon jumps and
// re-entrant scheduling.
type refSched struct {
	now VTime
	seq uint64
	evs []refEv
}

type refEv struct {
	at  VTime
	seq uint64
	fn  func()
}

func (r *refSched) Now() VTime { return r.now }

func (r *refSched) At(t VTime, fn func()) {
	if t < r.now {
		t = r.now
	}
	r.seq++
	r.evs = append(r.evs, refEv{at: t, seq: r.seq, fn: fn})
}

func (r *refSched) Run() {
	for len(r.evs) > 0 {
		best := 0
		for i := 1; i < len(r.evs); i++ {
			e, b := r.evs[i], r.evs[best]
			if e.at < b.at || (e.at == b.at && e.seq < b.seq) {
				best = i
			}
		}
		ev := r.evs[best]
		r.evs[best] = r.evs[len(r.evs)-1]
		r.evs = r.evs[:len(r.evs)-1]
		r.now = ev.at
		ev.fn()
	}
}

// clock abstracts Sim and refSched for the shared workload generator.
type clock interface {
	Now() VTime
	At(t VTime, fn func())
}

// wheelWorkload drives a randomized schedule against c and returns the
// (id, fire-time) trace. Offsets are drawn across the wheel's regimes:
// zero (same-timestamp ties), sub-slot, in-wheel, exact slot multiples
// (boundary ticks) and beyond-horizon (overflow tier, including jumps
// that advance base past the whole wheel). A fraction of handlers
// re-entrantly schedule children, which exercises insertion below and
// around a moving base.
func wheelWorkload(c clock, seed int64) []VTime {
	rng := rand.New(rand.NewSource(seed))
	var trace []VTime
	var id int
	offset := func() VTime {
		switch rng.Intn(5) {
		case 0:
			return 0
		case 1:
			return VTime(rng.Int63n(int64(20 * time.Microsecond)))
		case 2:
			return VTime(rng.Int63n(int64(50 * time.Millisecond)))
		case 3:
			// Exact slot-width multiples land on tick boundaries.
			return VTime(rng.Int63n(64)) << slotShift
		default:
			// Beyond the ~67ms horizon: overflow tier.
			return VTime(int64(70*time.Millisecond) + rng.Int63n(int64(2*time.Second)))
		}
	}
	var schedule func(depth int)
	schedule = func(depth int) {
		at := c.Now() + offset()
		myID := VTime(id)
		id++
		c.At(at, func() {
			trace = append(trace, myID, c.Now())
			if depth > 0 && rng.Intn(3) == 0 {
				for n := rng.Intn(3); n >= 0; n-- {
					schedule(depth - 1)
				}
			}
		})
	}
	for i := 0; i < 2000; i++ {
		schedule(3)
	}
	return trace
}

// TestWheelDifferential checks the wheel against the reference scheduler
// on randomized workloads: identical (id, time) fire traces, event for
// event, across several seeds.
func TestWheelDifferential(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		s := New(1)
		wheelTrace := wheelWorkload(s, seed)
		s.Run(0)
		ref := &refSched{}
		refTrace := wheelWorkload(ref, seed)
		ref.Run()
		if len(wheelTrace) != len(refTrace) {
			t.Fatalf("seed %d: wheel fired %d entries, reference %d", seed, len(wheelTrace), len(refTrace))
		}
		for i := range wheelTrace {
			if wheelTrace[i] != refTrace[i] {
				t.Fatalf("seed %d: trace diverges at %d: wheel %v, reference %v", seed, i, wheelTrace[i], refTrace[i])
			}
		}
	}
}

// TestWheelHorizonStopResume checks that stopping Run at a horizon and
// resuming preserves order for events at, before and after the stop time,
// including overflow events migrated across the pause.
func TestWheelHorizonStopResume(t *testing.T) {
	s := New(1)
	var got []int
	for i, d := range []VTime{
		90 * time.Millisecond, // overflow at schedule time
		10 * time.Millisecond,
		50 * time.Millisecond,
		50 * time.Millisecond, // same-timestamp tie
		200 * time.Millisecond,
	} {
		i := i
		s.At(d, func() { got = append(got, i) })
	}
	s.Run(50 * time.Millisecond) // stops with the 50ms events pending or fired
	s.At(60*time.Millisecond, func() { got = append(got, 5) })
	s.Run(0)
	want := []int{1, 2, 3, 5, 0, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestTimerResetStop checks the generation-guarded Timer: reschedules
// supersede earlier deadlines, Stop cancels, and a Reset to the same
// deadline neither duplicates nor drops the fire.
func TestTimerResetStop(t *testing.T) {
	s := New(1)
	var fires []VTime
	tm := s.NewTimer(func() { fires = append(fires, s.Now()) })
	tm.Reset(10 * time.Millisecond)
	tm.Reset(10 * time.Millisecond) // same deadline: no-op, still one fire
	tm.Reset(5 * time.Millisecond)  // earlier: supersedes
	s.Run(0)
	if len(fires) != 1 || fires[0] != 5*time.Millisecond {
		t.Fatalf("fires = %v, want [5ms]", fires)
	}
	if tm.Armed() {
		t.Fatal("timer still armed after fire")
	}

	tm.Reset(20 * time.Millisecond)
	tm.Stop()
	s.Run(0)
	if len(fires) != 1 {
		t.Fatalf("stopped timer fired: %v", fires)
	}

	// Stop then re-arm: only the new deadline fires, even though the
	// stale event node for 30ms is still in the queue when 25ms is set.
	tm.Reset(30 * time.Millisecond)
	tm.Stop()
	tm.Reset(25 * time.Millisecond)
	s.Run(0)
	if len(fires) != 2 || fires[1] != 25*time.Millisecond {
		t.Fatalf("fires = %v, want second at 25ms", fires)
	}
}

// TestParkFromSchedulerContextPanics checks the runtime backstop behind
// the hiplint schedblock rule: a blocking Proc API reached from a
// run-to-completion handler must panic loudly instead of deadlocking the
// scheduler goroutine.
func TestParkFromSchedulerContextPanics(t *testing.T) {
	s := New(1)
	q := NewWaitQueue(s)
	var leaked *Proc
	s.Spawn("victim", func(p *Proc) {
		leaked = p
		q.Wait(p, 0) // parks forever; woken only during Shutdown
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("blocking Proc API from scheduler context did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "scheduler context") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	s.At(time.Millisecond, func() {
		leaked.Sleep(time.Millisecond) // contract violation: handler blocks
	})
	s.Run(0)
}

// TestWaitTimeoutFIFOAndCancel checks WaitQueue semantics under the
// indexed-heap waiter set: FIFO wake order, O(log n) mid-queue timeout
// removal, and no spurious wake from a stale timeout event after the
// waiter was already woken and recycled.
func TestWaitTimeoutFIFOAndCancel(t *testing.T) {
	s := New(1)
	q := NewWaitQueue(s)
	var woke []string
	wait := func(name string, timeout time.Duration) {
		s.Spawn(name, func(p *Proc) {
			if q.Wait(p, timeout) {
				woke = append(woke, name+"-timeout")
			} else {
				woke = append(woke, name)
			}
		})
	}
	wait("a", 0)
	wait("b", 10*time.Millisecond) // times out mid-queue
	wait("c", 0)
	s.At(20*time.Millisecond, func() { q.WakeOne() }) // wakes a
	s.At(30*time.Millisecond, func() { q.WakeOne() }) // wakes c (b gone)
	s.Run(0)
	want := []string{"b-timeout", "a", "c"}
	if len(woke) != len(want) {
		t.Fatalf("woke = %v, want %v", woke, want)
	}
	for i := range want {
		if woke[i] != want[i] {
			t.Fatalf("woke = %v, want %v", woke, want)
		}
	}

	// Wake before the timeout expires: the pending timeout event must not
	// re-wake or corrupt the recycled waiter.
	woke = woke[:0]
	now := s.Now()
	wait("d", 50*time.Millisecond)
	s.At(now+time.Millisecond, func() { q.WakeOne() })
	// Another waiter reuses the slot while d's timeout event is in flight.
	s.At(now+2*time.Millisecond, func() { wait("e", 0) })
	s.At(now+60*time.Millisecond, func() { q.WakeOne() })
	s.Run(0)
	want = []string{"d", "e"}
	if len(woke) != len(want) {
		t.Fatalf("woke = %v, want %v", woke, want)
	}
	for i := range want {
		if woke[i] != want[i] {
			t.Fatalf("woke = %v, want %v", woke, want)
		}
	}
}
