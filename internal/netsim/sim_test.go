package netsim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(2*time.Millisecond, func() { got = append(got, 2) })
	s.At(1*time.Millisecond, func() { got = append(got, 1) })
	s.At(2*time.Millisecond, func() { got = append(got, 3) }) // same time: FIFO
	s.At(0, func() { got = append(got, 0) })
	s.Run(0)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestRunHorizon(t *testing.T) {
	s := New(1)
	fired := false
	s.At(10*time.Millisecond, func() { fired = true })
	end := s.Run(5 * time.Millisecond)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if end != 5*time.Millisecond {
		t.Fatalf("end = %v, want 5ms", end)
	}
	s.Run(0)
	if !fired {
		t.Fatal("event not fired on continued run")
	}
}

func TestProcSleep(t *testing.T) {
	s := New(1)
	var wake VTime
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(7 * time.Millisecond)
		wake = p.Now()
	})
	s.Run(0)
	if wake != 7*time.Millisecond {
		t.Fatalf("woke at %v, want 7ms", wake)
	}
}

func TestProcInterleaving(t *testing.T) {
	s := New(1)
	var log []string
	s.Spawn("a", func(p *Proc) {
		log = append(log, "a0")
		p.Sleep(2 * time.Millisecond)
		log = append(log, "a2")
		p.Sleep(2 * time.Millisecond)
		log = append(log, "a4")
	})
	s.Spawn("b", func(p *Proc) {
		p.Sleep(1 * time.Millisecond)
		log = append(log, "b1")
		p.Sleep(2 * time.Millisecond)
		log = append(log, "b3")
	})
	s.Run(0)
	want := []string{"a0", "b1", "a2", "b3", "a4"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestWaitQueueWakeOrder(t *testing.T) {
	s := New(1)
	q := NewWaitQueue(s)
	var order []string
	for _, name := range []string{"p1", "p2", "p3"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			q.Wait(p, 0)
			order = append(order, name)
		})
	}
	s.Spawn("waker", func(p *Proc) {
		p.Sleep(time.Millisecond)
		q.WakeAll()
	})
	s.Run(0)
	if len(order) != 3 || order[0] != "p1" || order[1] != "p2" || order[2] != "p3" {
		t.Fatalf("wake order = %v, want FIFO", order)
	}
}

func TestWaitQueueTimeout(t *testing.T) {
	s := New(1)
	q := NewWaitQueue(s)
	var timedOut bool
	var at VTime
	s.Spawn("waiter", func(p *Proc) {
		timedOut = q.Wait(p, 5*time.Millisecond)
		at = p.Now()
	})
	s.Run(0)
	if !timedOut {
		t.Fatal("expected timeout")
	}
	if at != 5*time.Millisecond {
		t.Fatalf("timed out at %v, want 5ms", at)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not cleaned, len=%d", q.Len())
	}
}

func TestWaitQueueWakeBeatsTimeout(t *testing.T) {
	s := New(1)
	q := NewWaitQueue(s)
	var timedOut bool
	s.Spawn("waiter", func(p *Proc) {
		timedOut = q.Wait(p, 10*time.Millisecond)
	})
	s.Spawn("waker", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		q.WakeOne()
	})
	s.Run(0)
	if timedOut {
		t.Fatal("woken wait reported timeout")
	}
}

func TestResourceContention(t *testing.T) {
	s := New(1)
	r := NewResource(s, 2)
	var done []VTime
	for i := 0; i < 4; i++ {
		s.Spawn("worker", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(10 * time.Millisecond)
			r.Release()
			done = append(done, p.Now())
		})
	}
	s.Run(0)
	// 2 cores, 4 jobs of 10ms: two finish at 10ms, two at 20ms.
	if len(done) != 4 {
		t.Fatalf("done = %v", done)
	}
	if done[0] != 10*time.Millisecond || done[1] != 10*time.Millisecond ||
		done[2] != 20*time.Millisecond || done[3] != 20*time.Millisecond {
		t.Fatalf("completion times = %v", done)
	}
}

func TestCPUSpeedScaling(t *testing.T) {
	s := New(1)
	c := NewCPU(s, 1, 2.0) // double-speed core
	var end VTime
	s.Spawn("job", func(p *Proc) {
		c.Use(p, 10*time.Millisecond)
		end = p.Now()
	})
	s.Run(0)
	if end != 5*time.Millisecond {
		t.Fatalf("end = %v, want 5ms on 2x core", end)
	}
	if c.BusyTime() != 5*time.Millisecond {
		t.Fatalf("busy = %v", c.BusyTime())
	}
}

func TestShutdownUnwindsParked(t *testing.T) {
	s := New(1)
	q := NewWaitQueue(s)
	started := 0
	s.Spawn("stuck", func(p *Proc) {
		started++
		q.Wait(p, 0) // never woken
		t.Error("stuck process resumed normally")
	})
	s.Run(0)
	if started != 1 {
		t.Fatal("process never started")
	}
	s.Shutdown()
	if len(s.parked) != 0 {
		t.Fatalf("still parked: %d", len(s.parked))
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []VTime {
		s := New(42)
		var ts []VTime
		for i := 0; i < 5; i++ {
			s.Spawn("p", func(p *Proc) {
				d := time.Duration(s.Rand().Int63n(int64(10 * time.Millisecond)))
				p.Sleep(d)
				ts = append(ts, p.Now())
			})
		}
		s.Run(0)
		return ts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run %d: %v != %v", i, a[i], b[i])
		}
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	// Raw scheduler capacity: chained events.
	s := New(1)
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			s.After(time.Microsecond, fn)
		}
	}
	s.After(0, fn)
	b.ResetTimer()
	s.Run(0)
}

func BenchmarkProcContextSwitch(b *testing.B) {
	// Two processes ping-ponging through wait queues: each op is one
	// round trip (two park/wake pairs through goroutine handoff). "a"
	// parks first so no wakeup is ever lost.
	s := New(1)
	q1, q2 := NewWaitQueue(s), NewWaitQueue(s)
	rounds := b.N
	s.Spawn("a", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			q1.Wait(p, 0)
			q2.WakeOne()
		}
	})
	s.Spawn("b", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			q1.WakeOne()
			q2.Wait(p, 0)
		}
	})
	b.ResetTimer()
	s.Run(0)
	s.Shutdown()
}

func BenchmarkProcSleepWake(b *testing.B) {
	// The closure-free sleeper path: park, evWake through the wheel,
	// resume — the cost a parked-goroutine protocol pays per timer tick.
	s := New(1)
	rounds := b.N
	s.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			p.Sleep(10 * time.Microsecond)
		}
	})
	b.ResetTimer()
	s.Run(0)
	s.Shutdown()
}

func BenchmarkTimerResetFire(b *testing.B) {
	// Run-to-completion deadline churn: a timer re-arming itself from its
	// own callback. Measures wheel insert + lazy-cancel + fire with no
	// goroutine involved — the path the simtcp/hipsim service loops ride.
	s := New(1)
	n := 0
	var tm *Timer
	tm = s.NewTimer(func() {
		n++
		if n < b.N {
			// Re-arm twice: the superseded deadline exercises the stale
			// generation check when its wheel slot drains.
			tm.Reset(s.Now() + 20*time.Microsecond)
			tm.Reset(s.Now() + 10*time.Microsecond)
		}
	})
	tm.Reset(10 * time.Microsecond)
	b.ResetTimer()
	s.Run(0)
}
