package netsim

import "fmt"

// TraceKind classifies trace events.
type TraceKind int

// Trace event kinds.
const (
	TraceTx TraceKind = iota
	TraceRx
	TraceDrop
)

func (k TraceKind) String() string {
	switch k {
	case TraceTx:
		return "tx"
	case TraceRx:
		return "rx"
	case TraceDrop:
		return "drop"
	}
	return "?"
}

// Tracer receives packet-level events; used in tests and debugging.
type Tracer func(at VTime, kind TraceKind, node string, pkt *Packet, note string)

// SetTracer installs a tracer on the simulation (nil disables tracing).
func (s *Sim) SetTracer(t Tracer) { s.tracer = t }

func (n *Network) trace(kind TraceKind, nd *Node, pkt *Packet, note string) {
	if n.sim.tracer != nil {
		n.sim.tracer(n.sim.now, kind, nd.name, pkt, note)
	}
}

// PrintTracer returns a Tracer writing human-readable lines via fn
// (e.g. t.Logf or fmt.Printf-compatible).
func PrintTracer(logf func(format string, args ...interface{})) Tracer {
	return func(at VTime, kind TraceKind, node string, pkt *Packet, note string) {
		logf("%12v %-4s %-12s %v %v->%v size=%d %s",
			at, kind, node, pkt.Proto, pkt.Src, pkt.Dst, pkt.Size, note)
	}
}

var _ = fmt.Sprintf // keep fmt for PrintTracer documentation examples
