package esp

// Batch seal/open: the per-datagram unit the batched UDP driver
// (internal/hipudp) feeds to sendmmsg/recvmmsg. Each element seals or
// opens exactly as the Append forms do — batch output is byte-identical
// to a sequential loop — but the batch carries the whole burst through
// one call so the driver can turn N packets into one syscall.

// SealBatch seals payloads[i] appending to dsts[i] (which may be nil or
// carry a reusable backing array, exactly like SealAppend's dst) and
// stores the extended slice back into dsts[i]. It requires
// len(dsts) >= len(payloads) and returns the number of packets sealed.
// Sealing stops at the first failure (sequence exhaustion); the n
// packets already produced are valid to transmit, and dsts[n:] are
// untouched.
func (sa *OutboundSA) SealBatch(dsts [][]byte, payloads [][]byte) (int, error) {
	if len(dsts) < len(payloads) {
		return 0, ErrShort
	}
	for i, p := range payloads {
		d, err := sa.SealAppend(dsts[i], p)
		if err != nil {
			return i, err
		}
		dsts[i] = d
	}
	return len(payloads), nil
}

// OpenBatch opens pkts[i] appending the recovered payload to dsts[i]
// and storing the extended slice back. A packet that fails (truncated,
// bad tag, replay) leaves its dsts slot untouched and does not stop the
// batch — one corrupt datagram in a recvmmsg burst must not stall the
// rest. It requires len(dsts) >= len(pkts); the return value counts the
// packets that failed (the SA's Replays/AuthFails counters break the
// drops down by cause).
func (sa *InboundSA) OpenBatch(dsts [][]byte, pkts [][]byte) (drops int) {
	if len(dsts) < len(pkts) {
		return len(pkts)
	}
	for i, p := range pkts {
		d, err := sa.OpenAppend(dsts[i], p)
		if err != nil {
			drops++
			continue
		}
		dsts[i] = d
	}
	return drops
}
