package esp

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"

	"hipcloud/internal/keymat"
)

var suites = []keymat.Suite{
	keymat.SuiteAESCTRSHA256,
	keymat.SuiteAESCBCSHA256,
	keymat.SuiteNullSHA256,
	keymat.SuiteAESGCM128,
	keymat.SuiteAESGCM256,
	keymat.SuiteChaCha20Poly1305,
}

// aeadSuites is the modern single-pass subset of suites.
var aeadSuites = []keymat.Suite{
	keymat.SuiteAESGCM128,
	keymat.SuiteAESGCM256,
	keymat.SuiteChaCha20Poly1305,
}

// pairFor builds matched initiator/responder SA pairs for a suite.
func pairFor(t *testing.T, s keymat.Suite) (*Pair, *Pair) {
	t.Helper()
	hitI := netip.MustParseAddr("2001:10::1")
	hitR := netip.MustParseAddr("2001:10::2")
	ki := keymat.New([]byte("dh-secret"), hitI, hitR, 1, 2)
	kr := keymat.New([]byte("dh-secret"), hitI, hitR, 1, 2)
	ak, err := keymat.DeriveAssociation(ki, s, true)
	if err != nil {
		t.Fatal(err)
	}
	bk, err := keymat.DeriveAssociation(kr, s, false)
	if err != nil {
		t.Fatal(err)
	}
	// Initiator's inbound SPI 100, responder's inbound SPI 200.
	pi, err := NewPair(ak, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewPair(bk, 200, 100)
	if err != nil {
		t.Fatal(err)
	}
	return pi, pr
}

func TestSealOpenRoundTrip(t *testing.T) {
	for _, s := range suites {
		pi, pr := pairFor(t, s)
		for _, payload := range [][]byte{
			[]byte(""), []byte("x"), []byte("hello esp"),
			bytes.Repeat([]byte{0xAA}, 15), bytes.Repeat([]byte{0xBB}, 16),
			bytes.Repeat([]byte{0xCC}, 1400),
		} {
			pkt, err := pi.Out.Seal(payload)
			if err != nil {
				t.Fatalf("%v seal: %v", s, err)
			}
			got, err := pr.In.Open(pkt)
			if err != nil {
				t.Fatalf("%v open(len=%d): %v", s, len(payload), err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("%v: payload mismatch len=%d", s, len(payload))
			}
		}
		// And the reverse direction.
		pkt, _ := pr.Out.Seal([]byte("reverse"))
		got, err := pi.In.Open(pkt)
		if err != nil || string(got) != "reverse" {
			t.Fatalf("%v reverse: %q %v", s, got, err)
		}
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	pi, _ := pairFor(t, keymat.SuiteAESCTRSHA256)
	payload := bytes.Repeat([]byte("secret data "), 10)
	pkt, err := pi.Out.Seal(payload)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(pkt, payload[:16]) {
		t.Fatal("ciphertext leaks plaintext")
	}
}

func TestNullCipherLeavesPlaintext(t *testing.T) {
	pi, _ := pairFor(t, keymat.SuiteNullSHA256)
	payload := []byte("integrity only payload")
	pkt, _ := pi.Out.Seal(payload)
	if !bytes.Contains(pkt, payload) {
		t.Fatal("NULL suite should not encrypt")
	}
}

func TestTamperDetected(t *testing.T) {
	for _, s := range suites {
		pi, pr := pairFor(t, s)
		pkt, _ := pi.Out.Seal([]byte("authentic"))
		for _, idx := range []int{0, 4, HeaderLen + 1, len(pkt) - 1} {
			mut := append([]byte(nil), pkt...)
			mut[idx] ^= 0x40
			if _, err := pr.In.Open(mut); err == nil {
				t.Fatalf("%v: tampered byte %d accepted", s, idx)
			}
		}
	}
}

func TestReplayRejected(t *testing.T) {
	pi, pr := pairFor(t, keymat.SuiteAESCTRSHA256)
	pkt, _ := pi.Out.Seal([]byte("once"))
	if _, err := pr.In.Open(pkt); err != nil {
		t.Fatal(err)
	}
	if _, err := pr.In.Open(pkt); err != ErrReplay {
		t.Fatalf("replay err = %v, want ErrReplay", err)
	}
	if pr.In.Replays != 1 {
		t.Fatalf("replay counter = %d", pr.In.Replays)
	}
}

func TestReplayWindowToleratesReordering(t *testing.T) {
	pi, pr := pairFor(t, keymat.SuiteAESCTRSHA256)
	var pkts [][]byte
	for i := 0; i < 10; i++ {
		p, _ := pi.Out.Seal([]byte{byte(i)})
		pkts = append(pkts, p)
	}
	// Deliver out of order: 0,3,1,2,9,5,4 ...
	order := []int{0, 3, 1, 2, 9, 5, 4, 8, 6, 7}
	for _, i := range order {
		if _, err := pr.In.Open(pkts[i]); err != nil {
			t.Fatalf("reordered packet %d rejected: %v", i, err)
		}
	}
}

func TestReplayWindowDropsAncient(t *testing.T) {
	pi, pr := pairFor(t, keymat.SuiteAESCTRSHA256)
	old, _ := pi.Out.Seal([]byte("old"))
	// Advance well past the window.
	for i := 0; i < ReplayWindow+8; i++ {
		p, _ := pi.Out.Seal([]byte("fill"))
		if _, err := pr.In.Open(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pr.In.Open(old); err != ErrReplay {
		t.Fatalf("ancient packet err = %v, want ErrReplay", err)
	}
}

func TestWrongSPIRejected(t *testing.T) {
	pi, pr := pairFor(t, keymat.SuiteAESCTRSHA256)
	pkt, _ := pi.Out.Seal([]byte("hello"))
	pkt[3] ^= 0xff // corrupt SPI
	if _, err := pr.In.Open(pkt); err != ErrUnknownSPI {
		t.Fatalf("err = %v, want ErrUnknownSPI", err)
	}
}

func TestShortPacketRejected(t *testing.T) {
	_, pr := pairFor(t, keymat.SuiteAESCTRSHA256)
	if _, err := pr.In.Open(make([]byte, HeaderLen+ICVLen-1)); err != ErrShort {
		t.Fatalf("err = %v, want ErrShort", err)
	}
}

func TestMismatchedKeysFail(t *testing.T) {
	pi, _ := pairFor(t, keymat.SuiteAESCTRSHA256)
	// Build a receiver with different keymat.
	hitI := netip.MustParseAddr("2001:10::1")
	hitR := netip.MustParseAddr("2001:10::2")
	k := keymat.New([]byte("OTHER secret"), hitI, hitR, 1, 2)
	bk, _ := keymat.DeriveAssociation(k, keymat.SuiteAESCTRSHA256, false)
	pr, _ := NewPair(bk, 200, 100)
	pkt, _ := pi.Out.Seal([]byte("hi"))
	if _, err := pr.In.Open(pkt); err != ErrAuth {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
	if pr.In.AuthFails != 1 {
		t.Fatalf("auth fail counter = %d", pr.In.AuthFails)
	}
}

func TestOverheadPositive(t *testing.T) {
	for _, s := range suites {
		if Overhead(s) < HeaderLen+ICVLen {
			t.Fatalf("%v overhead too small", s)
		}
	}
}

// Property: seal/open round-trips arbitrary payloads on all suites.
func TestSealOpenProperty(t *testing.T) {
	for _, s := range suites {
		pi, pr := pairFor(t, s)
		f := func(payload []byte) bool {
			pkt, err := pi.Out.Seal(payload)
			if err != nil {
				return false
			}
			got, err := pr.In.Open(pkt)
			if err != nil {
				return false
			}
			return bytes.Equal(got, payload)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
	}
}

// Property: the receiver never accepts two packets with the same sequence.
func TestNoDoubleAcceptProperty(t *testing.T) {
	pi, pr := pairFor(t, keymat.SuiteAESCTRSHA256)
	seen := map[uint32]bool{}
	var pkts [][]byte
	for i := 0; i < 50; i++ {
		p, _ := pi.Out.Seal([]byte("payload"))
		pkts = append(pkts, p, p) // every packet duplicated
	}
	accepted := 0
	for _, p := range pkts {
		if _, err := pr.In.Open(p); err == nil {
			seq := uint32(p[4])<<24 | uint32(p[5])<<16 | uint32(p[6])<<8 | uint32(p[7])
			if seen[seq] {
				t.Fatalf("sequence %d accepted twice", seq)
			}
			seen[seq] = true
			accepted++
		}
	}
	if accepted != 50 {
		t.Fatalf("accepted %d, want 50", accepted)
	}
}

func BenchmarkSealOpenCTR1400(b *testing.B) {
	pi, pr := pairForBench(b, keymat.SuiteAESCTRSHA256)
	payload := bytes.Repeat([]byte{7}, 1400)
	b.SetBytes(1400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt, err := pi.Out.Seal(payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pr.In.Open(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func pairForBench(b *testing.B, s keymat.Suite) (*Pair, *Pair) {
	b.Helper()
	hitI := netip.MustParseAddr("2001:10::1")
	hitR := netip.MustParseAddr("2001:10::2")
	ki := keymat.New([]byte("dh"), hitI, hitR, 1, 2)
	kr := keymat.New([]byte("dh"), hitI, hitR, 1, 2)
	ak, _ := keymat.DeriveAssociation(ki, s, true)
	bk, _ := keymat.DeriveAssociation(kr, s, false)
	pi, _ := NewPair(ak, 100, 200)
	pr, _ := NewPair(bk, 200, 100)
	return pi, pr
}
