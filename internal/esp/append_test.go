package esp

import (
	"bytes"
	"encoding/binary"
	"testing"

	"hipcloud/internal/keymat"
)

// reMAC recomputes a packet's ICV with the sender's cached MAC state, used
// by tests that forge header fields on otherwise-valid packets.
func reMAC(sa *OutboundSA, pkt []byte) {
	sa.mac.Reset()
	sa.mac.Write(pkt[:len(pkt)-ICVLen])
	copy(pkt[len(pkt)-ICVLen:], sa.mac.SumTrunc(ICVLen))
}

func TestSealAppendOpenAppendRoundTrip(t *testing.T) {
	for _, s := range suites {
		pi, pr := pairFor(t, s)
		dst := append([]byte(nil), "prefix-"...)
		out := append([]byte(nil), "PRE"...)
		for _, payload := range [][]byte{
			[]byte(""), []byte("x"), bytes.Repeat([]byte{0xAA}, 15),
			bytes.Repeat([]byte{0xBB}, 16), bytes.Repeat([]byte{0xCC}, 1400),
		} {
			mark := len(dst)
			var err error
			dst, err = pi.Out.SealAppend(dst, payload)
			if err != nil {
				t.Fatalf("%v seal append: %v", s, err)
			}
			pkt := dst[mark:]
			if want := pi.Out.SealedLen(len(payload)); len(pkt) != want {
				t.Fatalf("%v: SealedLen=%d, got %d", s, want, len(pkt))
			}
			if string(dst[:7]) != "prefix-" {
				t.Fatalf("%v: SealAppend clobbered dst prefix", s)
			}
			omark := len(out)
			out, err = pr.In.OpenAppend(out, pkt)
			if err != nil {
				t.Fatalf("%v open append(len=%d): %v", s, len(payload), err)
			}
			if string(out[:3]) != "PRE" {
				t.Fatalf("%v: OpenAppend clobbered dst prefix", s)
			}
			if !bytes.Equal(out[omark:], payload) {
				t.Fatalf("%v: payload mismatch len=%d", s, len(payload))
			}
		}
	}
}

// The append APIs and the classic wrappers must produce byte-identical
// wire packets for identical SA state.
func TestSealAppendMatchesSeal(t *testing.T) {
	for _, s := range suites {
		a, _ := pairFor(t, s)
		b, _ := pairFor(t, s)
		payload := bytes.Repeat([]byte{0x5A}, 100)
		for i := 0; i < 3; i++ {
			p1, err := a.Out.Seal(payload)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := b.Out.SealAppend(make([]byte, 0, 256), payload)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(p1, p2) {
				t.Fatalf("%v: Seal and SealAppend diverge at packet %d", s, i)
			}
		}
	}
}

// SealAppend's CTR output must not alias SA scratch: the packet bytes stay
// stable across subsequent seals (regression for the old append(iv[:8], ...)
// construction that shared the IV's backing array).
func TestSealAppendNoScratchAliasing(t *testing.T) {
	pi, pr := pairFor(t, keymat.SuiteAESCTRSHA256)
	first, err := pi.Out.SealAppend(nil, []byte("packet one"))
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), first...)
	for i := 0; i < 8; i++ {
		if _, err := pi.Out.SealAppend(nil, []byte("later packet")); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(first, snapshot) {
		t.Fatal("sealed packet mutated by later SealAppend calls")
	}
	if got, err := pr.In.Open(first); err != nil || string(got) != "packet one" {
		t.Fatalf("first packet no longer opens: %q %v", got, err)
	}
}

func TestReplaySeqZeroRejected(t *testing.T) {
	pi, pr := pairFor(t, keymat.SuiteAESCTRSHA256)
	pkt, _ := pi.Out.Seal([]byte("seq one"))
	// Forge a seq-0 packet with a valid ICV: rewrite the sequence field
	// and re-MAC with the sender's (shared) auth key. The replay check
	// must reject it before any decryption.
	forged := append([]byte(nil), pkt...)
	binary.BigEndian.PutUint32(forged[4:], 0)
	reMAC(pi.Out, forged)
	if _, err := pr.In.Open(forged); err != ErrReplay {
		t.Fatalf("seq 0 err = %v, want ErrReplay", err)
	}
	if _, err := pr.In.Open(pkt); err != nil {
		t.Fatalf("genuine packet rejected after seq-0 probe: %v", err)
	}
}

func TestReplayWindowExactEdge(t *testing.T) {
	pi, pr := pairFor(t, keymat.SuiteAESCTRSHA256)
	var pkts [][]byte
	for i := 0; i < ReplayWindow+1; i++ { // seqs 1..65
		p, _ := pi.Out.Seal([]byte("edge"))
		pkts = append(pkts, p)
	}
	// Establish highest = ReplayWindow+1 = 65.
	if _, err := pr.In.Open(pkts[ReplayWindow]); err != nil {
		t.Fatal(err)
	}
	// diff == ReplayWindow-1 (seq 2) is the oldest acceptable packet.
	if _, err := pr.In.Open(pkts[1]); err != nil {
		t.Fatalf("diff=ReplayWindow-1 rejected: %v", err)
	}
	// diff == ReplayWindow (seq 1) falls off the window.
	if _, err := pr.In.Open(pkts[0]); err != ErrReplay {
		t.Fatalf("diff=ReplayWindow err = %v, want ErrReplay", err)
	}
}

func TestReplayWindowWrapOnBigJump(t *testing.T) {
	pi, pr := pairFor(t, keymat.SuiteAESCTRSHA256)
	var pkts [][]byte
	jump := ReplayWindow + 6
	for i := 0; i < jump; i++ { // seqs 1..70
		p, _ := pi.Out.Seal([]byte("jump"))
		pkts = append(pkts, p)
	}
	if _, err := pr.In.Open(pkts[0]); err != nil { // seq 1, highest=1
		t.Fatal(err)
	}
	// shift = 69 >= ReplayWindow wipes the bitmap entirely.
	if _, err := pr.In.Open(pkts[jump-1]); err != nil { // seq 70
		t.Fatal(err)
	}
	if pr.In.highest != uint32(jump) || pr.In.window != 1 {
		t.Fatalf("after wrap: highest=%d window=%#x, want %d and 1",
			pr.In.highest, pr.In.window, jump)
	}
	// The wiped bitmap must accept in-window packets again...
	if _, err := pr.In.Open(pkts[jump-2]); err != nil { // seq 69
		t.Fatalf("in-window packet after wrap rejected: %v", err)
	}
	// ...while the pre-jump packet is now ancient.
	if _, err := pr.In.Open(pkts[0]); err != ErrReplay {
		t.Fatalf("pre-jump replay err = %v, want ErrReplay", err)
	}
}

// A packet that fails authentication must not advance the replay window —
// otherwise an attacker could blind the receiver to genuine traffic by
// spraying forged high sequence numbers.
func TestForgedICVDoesNotAdvanceWindow(t *testing.T) {
	pi, pr := pairFor(t, keymat.SuiteAESCTRSHA256)
	first, _ := pi.Out.Seal([]byte("one"))
	if _, err := pr.In.Open(first); err != nil {
		t.Fatal(err)
	}
	second, _ := pi.Out.Seal([]byte("two"))
	forged := append([]byte(nil), second...)
	forged[len(forged)-1] ^= 0xFF
	if _, err := pr.In.Open(forged); err != ErrAuth {
		t.Fatalf("forged ICV err = %v, want ErrAuth", err)
	}
	if pr.In.highest != 1 || pr.In.window != 1 {
		t.Fatalf("forged packet advanced window: highest=%d window=%#x",
			pr.In.highest, pr.In.window)
	}
	// The genuine packet with the same sequence still opens.
	if got, err := pr.In.Open(second); err != nil || string(got) != "two" {
		t.Fatalf("genuine packet after forgery: %q %v", got, err)
	}
}

// Alloc-regression guards: the append APIs must be allocation-free on the
// CTR and NULL fast paths once the destination buffer is warm.
func TestSealAppendZeroAlloc(t *testing.T) {
	for _, s := range []keymat.Suite{
		keymat.SuiteAESCTRSHA256, keymat.SuiteNullSHA256,
		keymat.SuiteAESGCM128, keymat.SuiteAESGCM256, keymat.SuiteChaCha20Poly1305,
	} {
		pi, _ := pairFor(t, s)
		payload := bytes.Repeat([]byte{7}, 1400)
		dst := make([]byte, 0, pi.Out.SealedLen(len(payload)))
		allocs := testing.AllocsPerRun(200, func() {
			var err error
			dst, err = pi.Out.SealAppend(dst[:0], payload)
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: SealAppend allocates %v/op, want 0", s, allocs)
		}
	}
}

func TestOpenAppendZeroAlloc(t *testing.T) {
	const runs = 200
	for _, s := range []keymat.Suite{
		keymat.SuiteAESCTRSHA256, keymat.SuiteNullSHA256,
		keymat.SuiteAESGCM128, keymat.SuiteAESGCM256, keymat.SuiteChaCha20Poly1305,
	} {
		pi, pr := pairFor(t, s)
		payload := bytes.Repeat([]byte{7}, 1400)
		// AllocsPerRun invokes the function runs+1 times (one warmup) and
		// replay protection consumes each packet, so pre-seal one per call.
		pkts := make([][]byte, runs+1)
		for i := range pkts {
			p, err := pi.Out.Seal(payload)
			if err != nil {
				t.Fatal(err)
			}
			pkts[i] = p
		}
		dst := make([]byte, 0, len(payload))
		i := 0
		allocs := testing.AllocsPerRun(runs, func() {
			var err error
			dst, err = pr.In.OpenAppend(dst[:0], pkts[i])
			if err != nil {
				t.Fatal(err)
			}
			i++
		})
		if allocs != 0 {
			t.Errorf("%v: OpenAppend allocates %v/op, want 0", s, allocs)
		}
	}
}

// --- Benchmarks -----------------------------------------------------------
//
// The classic Seal/Open wrappers allocate one fresh buffer per call; the
// append variants reuse the caller's. Run with -benchmem to see the
// difference in B/op and allocs/op.

func benchSeal(b *testing.B, s keymat.Suite) {
	pi, _ := pairForBench(b, s)
	payload := bytes.Repeat([]byte{7}, 1400)
	b.SetBytes(1400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pi.Out.Seal(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSealAppend(b *testing.B, s keymat.Suite) {
	pi, _ := pairForBench(b, s)
	payload := bytes.Repeat([]byte{7}, 1400)
	dst := make([]byte, 0, pi.Out.SealedLen(len(payload)))
	b.SetBytes(1400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = pi.Out.SealAppend(dst[:0], payload)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func benchOpen(b *testing.B, s keymat.Suite) {
	pi, pr := pairForBench(b, s)
	payload := bytes.Repeat([]byte{7}, 1400)
	pkt, err := pi.Out.Seal(payload)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.In.highest, pr.In.window = 0, 0
		if _, err := pr.In.Open(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func benchOpenAppend(b *testing.B, s keymat.Suite) {
	pi, pr := pairForBench(b, s)
	payload := bytes.Repeat([]byte{7}, 1400)
	pkt, err := pi.Out.Seal(payload)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]byte, 0, len(payload))
	b.SetBytes(1400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rewind replay state so one pre-sealed packet serves every
		// iteration; the reset cost is two stores.
		pr.In.highest, pr.In.window = 0, 0
		dst, err = pr.In.OpenAppend(dst[:0], pkt)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSealCTR1400(b *testing.B)  { benchSeal(b, keymat.SuiteAESCTRSHA256) }
func BenchmarkSealCBC1400(b *testing.B)  { benchSeal(b, keymat.SuiteAESCBCSHA256) }
func BenchmarkSealNull1400(b *testing.B) { benchSeal(b, keymat.SuiteNullSHA256) }

func BenchmarkSealAppendCTR1400(b *testing.B)  { benchSealAppend(b, keymat.SuiteAESCTRSHA256) }
func BenchmarkSealAppendCBC1400(b *testing.B)  { benchSealAppend(b, keymat.SuiteAESCBCSHA256) }
func BenchmarkSealAppendNull1400(b *testing.B) { benchSealAppend(b, keymat.SuiteNullSHA256) }

func BenchmarkSealAppendGCM128_1400(b *testing.B) { benchSealAppend(b, keymat.SuiteAESGCM128) }
func BenchmarkSealAppendGCM256_1400(b *testing.B) { benchSealAppend(b, keymat.SuiteAESGCM256) }
func BenchmarkSealAppendChaCha1400(b *testing.B) {
	benchSealAppend(b, keymat.SuiteChaCha20Poly1305)
}

func BenchmarkOpenCTR1400(b *testing.B)  { benchOpen(b, keymat.SuiteAESCTRSHA256) }
func BenchmarkOpenNull1400(b *testing.B) { benchOpen(b, keymat.SuiteNullSHA256) }

func BenchmarkOpenAppendCTR1400(b *testing.B)  { benchOpenAppend(b, keymat.SuiteAESCTRSHA256) }
func BenchmarkOpenAppendNull1400(b *testing.B) { benchOpenAppend(b, keymat.SuiteNullSHA256) }

func BenchmarkOpenAppendGCM128_1400(b *testing.B) { benchOpenAppend(b, keymat.SuiteAESGCM128) }
func BenchmarkOpenAppendChaCha1400(b *testing.B) {
	benchOpenAppend(b, keymat.SuiteChaCha20Poly1305)
}
