// Package esp implements a userspace IPsec ESP data plane in BEET mode
// (Bound End-to-End Tunnel, RFC 5202/5840-style): the inner identities of
// a packet are fixed at SA setup (the two HITs), so only SPI, sequence
// number, payload, padding and ICV travel on the wire — the
// bandwidth-efficiency property the paper highlights over tunnel mode.
//
// Supported transforms come from hipcloud/internal/keymat: the 2012
// suites (AES-128-CTR and AES-128-CBC with HMAC-SHA-256-128 integrity,
// plus a NULL cipher for integrity-only operation) and the modern
// single-pass AEAD suites (AES-128/256-GCM, ChaCha20-Poly1305). AEAD
// packets carry no wire IV: the nonce is implicit — salt(4) || 0(4) ||
// seq(4), RFC 8750 style — with the salt drawn from KEYMAT per key
// generation, the 8-byte ESP header authenticated as AAD, and the
// 16-byte tag in the ICV slot. Combined with the sequence-exhaustion
// refusal in SealAppend, a (key, nonce) pair can never repeat.
//
// # Zero-allocation fast path
//
// SealAppend and OpenAppend are the steady-state APIs: they append the
// sealed packet (or recovered payload) to a caller-provided buffer and
// return the extended slice, exactly like cipher.AEAD. With a reused
// destination buffer they perform zero heap allocations per packet on the
// AES-CTR and NULL suites (and on AES-CBC when the platform cipher
// supports IV reuse): the HMAC state is keyed once at SA setup and
// reset-reused, IVs are derived into stack arrays, and ciphertext is
// produced in place in the destination. Seal and Open remain as thin
// allocating wrappers for callers that want a fresh buffer.
//
// Buffer ownership: SealAppend/OpenAppend never alias SA-internal state
// in their output — the returned bytes live entirely in dst's (possibly
// grown) backing array and remain valid after the next call. The inverse
// does not hold: an SA is single-owner scratch, so concurrent calls on
// one SA are not safe (they never were; the sequence number and replay
// window already serialize it).
package esp

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"

	"hipcloud/internal/keymat"
)

// Errors returned by the data plane.
var (
	ErrAuth         = errors.New("esp: integrity check failed")
	ErrReplay       = errors.New("esp: replayed or stale sequence number")
	ErrShort        = errors.New("esp: truncated packet")
	ErrPad          = errors.New("esp: invalid padding")
	ErrUnknownSPI   = errors.New("esp: unknown SPI")
	ErrSeqExhausted = errors.New("esp: outbound sequence space exhausted")
)

// ICVLen is the truncated HMAC-SHA-256-128 integrity tag length.
const ICVLen = 16

// HeaderLen is SPI + sequence number.
const HeaderLen = 8

// ReplayWindow is the anti-replay window width in packets.
const ReplayWindow = 64

// MaxOverhead is the worst-case size increase of Seal over the payload
// across all suites: header, CBC IV block, trailer plus block round-up,
// and the ICV. Callers use it to pre-size SealAppend destinations when
// the negotiated suite is not at hand.
const MaxOverhead = HeaderLen + 16 + 17 + ICVLen

// nextHeader is the ESP trailer next-header value (59 = IPv6 no-next-header,
// the BEET-mode convention used throughout).
const nextHeader = 59

// ivSetter is the optional block-mode interface that lets one CBC
// encrypter/decrypter be re-IV'd per packet instead of reallocated
// (implemented by the stdlib AES CBC modes).
type ivSetter interface {
	SetIV([]byte)
}

// ivScratch is per-SA scratch for deterministic IV derivation. The arrays
// are passed through the cipher.Block interface, so they must live in the
// (already heap-resident) SA rather than on the sealing call's stack to
// keep the per-packet path allocation-free.
type ivScratch struct {
	ctr, iv [16]byte
}

// derive builds a unique 16-byte IV from the SPI and sequence number
// keyed through the cipher itself (encrypting the counter block), which is
// standard practice for deterministic IVs. The result aliases s and is
// valid until the next derive.
func (s *ivScratch) derive(block cipher.Block, spi, seq uint32) *[16]byte {
	binary.BigEndian.PutUint32(s.ctr[0:], spi)
	binary.BigEndian.PutUint32(s.ctr[4:], seq)
	block.Encrypt(s.iv[:], s.ctr[:])
	return &s.iv
}

// OutboundSA encrypts and authenticates packets for one direction.
type OutboundSA struct {
	SPI    uint32
	suite  keymat.Suite
	encKey []byte
	block  cipher.Block
	seq    uint32
	// mac is the cached keyed HMAC state, reset-reused per packet
	// (legacy suites only; nil for AEAD).
	mac *keymat.MAC
	// ctr is per-SA CTR scratch so keystream blocks stay off the heap.
	ctr keymat.CTRScratch
	// cbc is the cached CBC encrypter when the cipher supports SetIV.
	cbc cipher.BlockMode
	ivs ivScratch
	// aead is the single-pass transform for the modern suites; nil for
	// the legacy HMAC suites. nonce is the per-SA implicit-IV scratch:
	// salt(4) || zero(4) || seq(4), the seq field rewritten per packet.
	// Keeping it in the (heap-resident) SA rather than on the call
	// stack lets the nonce pointer cross the AEAD interface without a
	// per-packet escape.
	aead    keymat.AEAD
	nonce   [keymat.NonceLen]byte
	Packets uint64
	Bytes   uint64
}

// InboundSA authenticates, replay-checks and decrypts one direction.
type InboundSA struct {
	SPI    uint32
	suite  keymat.Suite
	encKey []byte
	block  cipher.Block
	mac    *keymat.MAC
	ctr    keymat.CTRScratch
	cbc    cipher.BlockMode
	ivs    ivScratch
	aead   keymat.AEAD
	nonce  [keymat.NonceLen]byte
	// Anti-replay state: highest sequence seen and a bitmap of the
	// ReplayWindow sequences at and below it.
	highest   uint32
	window    uint64
	Packets   uint64
	Bytes     uint64
	Replays   uint64
	AuthFails uint64
}

// NewOutbound creates the sending half of an SA. For the legacy suites
// authKey is the 32-byte HMAC key; for AEAD suites it is the 4-byte
// implicit-IV salt drawn through the same KEYMAT slot.
func NewOutbound(spi uint32, suite keymat.Suite, encKey, authKey []byte) (*OutboundSA, error) {
	sa := &OutboundSA{SPI: spi, suite: suite, encKey: encKey}
	switch suite {
	case keymat.SuiteAESCBCSHA256, keymat.SuiteAESCTRSHA256:
		sa.mac = keymat.NewMAC(authKey)
		b, err := aes.NewCipher(encKey)
		if err != nil {
			return nil, err
		}
		sa.block = b
		if suite == keymat.SuiteAESCBCSHA256 {
			var zero [aes.BlockSize]byte
			if m := cipher.NewCBCEncrypter(b, zero[:]); isIVSetter(m) {
				sa.cbc = m
			}
		}
	case keymat.SuiteNullSHA256:
		sa.mac = keymat.NewMAC(authKey)
	case keymat.SuiteAESGCM128, keymat.SuiteAESGCM256, keymat.SuiteChaCha20Poly1305:
		if len(authKey) != keymat.SaltLen {
			return nil, keymat.ErrUnknownSuite
		}
		a, err := keymat.NewAEADCipher(suite, encKey)
		if err != nil {
			return nil, err
		}
		sa.aead = a
		copy(sa.nonce[:keymat.SaltLen], authKey)
	default:
		return nil, keymat.ErrUnknownSuite
	}
	return sa, nil
}

// NewInbound creates the receiving half of an SA; authKey follows the
// NewOutbound convention (HMAC key for legacy, 4-byte salt for AEAD).
func NewInbound(spi uint32, suite keymat.Suite, encKey, authKey []byte) (*InboundSA, error) {
	sa := &InboundSA{SPI: spi, suite: suite, encKey: encKey}
	switch suite {
	case keymat.SuiteAESCBCSHA256, keymat.SuiteAESCTRSHA256:
		sa.mac = keymat.NewMAC(authKey)
		b, err := aes.NewCipher(encKey)
		if err != nil {
			return nil, err
		}
		sa.block = b
		if suite == keymat.SuiteAESCBCSHA256 {
			var zero [aes.BlockSize]byte
			if m := cipher.NewCBCDecrypter(b, zero[:]); isIVSetter(m) {
				sa.cbc = m
			}
		}
	case keymat.SuiteNullSHA256:
		sa.mac = keymat.NewMAC(authKey)
	case keymat.SuiteAESGCM128, keymat.SuiteAESGCM256, keymat.SuiteChaCha20Poly1305:
		if len(authKey) != keymat.SaltLen {
			return nil, keymat.ErrUnknownSuite
		}
		a, err := keymat.NewAEADCipher(suite, encKey)
		if err != nil {
			return nil, err
		}
		sa.aead = a
		copy(sa.nonce[:keymat.SaltLen], authKey)
	default:
		return nil, keymat.ErrUnknownSuite
	}
	return sa, nil
}

func isIVSetter(m cipher.BlockMode) bool {
	_, ok := m.(ivSetter)
	return ok
}

// Seq returns the last sequence number sent.
func (sa *OutboundSA) Seq() uint32 { return sa.seq }

// SetSeq fast-forwards the outbound sequence counter. It exists so tests
// can place an SA near the 2^32−1 saturation point without sealing four
// billion packets; production code never rewinds or skips sequence
// numbers.
func (sa *OutboundSA) SetSeq(seq uint32) { sa.seq = seq }

// bodyLen reports the on-wire body length (IV + ciphertext + trailer, no
// header/ICV) a suite produces for a payload of length n.
func bodyLen(s keymat.Suite, n int) int {
	switch s {
	case keymat.SuiteNullSHA256:
		return n + 2
	case keymat.SuiteAESCTRSHA256:
		return 8 + n + 2
	case keymat.SuiteAESCBCSHA256:
		padLen := aes.BlockSize - (n+2)%aes.BlockSize
		if padLen == aes.BlockSize {
			padLen = 0
		}
		return aes.BlockSize + n + padLen + 2
	case keymat.SuiteAESGCM128, keymat.SuiteAESGCM256, keymat.SuiteChaCha20Poly1305:
		// No IV on the wire (implicit from seq), no padding (stream
		// AEAD): ciphertext of payload + 2-byte trailer. The tag lands
		// in the ICV slot (keymat.TagLen == ICVLen).
		return n + 2
	}
	return 0
}

// SealedLen reports the total packet length SealAppend will produce for a
// payload of length n, for callers pre-sizing destination buffers.
func (sa *OutboundSA) SealedLen(n int) int {
	return HeaderLen + bodyLen(sa.suite, n) + ICVLen
}

// ensure grows b by n bytes, reallocating only when capacity is short,
// and returns the grown slice plus the appended region.
func ensure(b []byte, n int) (grown, region []byte) {
	off := len(b)
	if cap(b)-off < n {
		nb := make([]byte, off+n, off+n+(off+n)/2)
		copy(nb, b)
		b = nb
	} else {
		b = b[:off+n]
	}
	return b, b[off : off+n]
}

// SealAppend encrypts and authenticates payload, appending the full ESP
// packet to dst and returning the extended slice. With a dst whose
// capacity already fits the packet, the CTR and NULL suites allocate
// nothing. payload and dst must not overlap.
func (sa *OutboundSA) SealAppend(dst, payload []byte) ([]byte, error) {
	// The saturation refusal is what makes implicit-IV AEAD safe even if
	// a rekey stalls: the final sequence number 2^32-1 is used at most
	// once and the counter never wraps, so a (key, nonce) pair can never
	// repeat within one SA (see hip.rekeyThreshold for the headroom that
	// normally rekeys long before this hard stop).
	if sa.seq == ^uint32(0) {
		return nil, ErrSeqExhausted
	}
	bl := bodyLen(sa.suite, len(payload))
	if bl == 0 && sa.suite != keymat.SuiteNullSHA256 {
		return nil, keymat.ErrUnknownSuite
	}
	sa.seq++
	dst, pkt := ensure(dst, HeaderLen+bl+ICVLen)
	binary.BigEndian.PutUint32(pkt[0:], sa.SPI)
	binary.BigEndian.PutUint32(pkt[4:], sa.seq)
	if sa.aead != nil {
		// Single-pass fast path: build the plaintext body (payload +
		// trailer) in place, then seal it in place — ciphertext
		// overwrites the body and the tag fills the ICV slot. AAD is
		// the 8-byte ESP header, so SPI and seq are bound without an
		// HMAC pass; the nonce is salt || 0 || seq (RFC 8750 style).
		pt := pkt[HeaderLen : HeaderLen+bl]
		copy(pt, payload)
		pt[bl-2] = 0
		pt[bl-1] = nextHeader
		binary.BigEndian.PutUint32(sa.nonce[8:], sa.seq)
		sa.aead.Seal(pt[:0], &sa.nonce, pt, pkt[:HeaderLen])
		sa.Packets++
		sa.Bytes += uint64(len(payload))
		return dst, nil
	}
	body := pkt[HeaderLen : HeaderLen+bl]
	switch sa.suite {
	case keymat.SuiteNullSHA256:
		// pad-len and next-header trailer, zero padding.
		copy(body, payload)
		body[len(body)-2] = 0
		body[len(body)-1] = nextHeader
	case keymat.SuiteAESCTRSHA256:
		iv := sa.ivs.derive(sa.block, sa.SPI, sa.seq)
		// The wire body is built explicitly — 8 IV bytes, then the
		// in-place-encrypted trailer — so it can never alias the IV
		// scratch (the old append(iv[:8], ct...) shared backing arrays).
		copy(body[:8], iv[:8])
		ct := body[8:]
		copy(ct, payload)
		ct[len(ct)-2] = 0
		ct[len(ct)-1] = nextHeader
		keymat.CTRXor(sa.block, &sa.ctr, iv, ct, ct)
	case keymat.SuiteAESCBCSHA256:
		iv := sa.ivs.derive(sa.block, sa.SPI, sa.seq)
		copy(body[:aes.BlockSize], iv[:])
		pt := body[aes.BlockSize:]
		copy(pt, payload)
		padLen := len(pt) - len(payload) - 2
		for i := 0; i < padLen; i++ {
			pt[len(payload)+i] = byte(i + 1) // RFC 4303 monotonic padding
		}
		pt[len(pt)-2] = byte(padLen)
		pt[len(pt)-1] = nextHeader
		mode := sa.cbc
		if mode != nil {
			mode.(ivSetter).SetIV(iv[:])
		} else {
			mode = cipher.NewCBCEncrypter(sa.block, iv[:])
		}
		mode.CryptBlocks(pt, pt)
	}
	sa.mac.Reset()
	sa.mac.Write(pkt[:HeaderLen+bl])
	copy(pkt[HeaderLen+bl:], sa.mac.SumTrunc(ICVLen))
	sa.Packets++
	sa.Bytes += uint64(len(payload))
	return dst, nil
}

// Seal encrypts and authenticates payload, producing a full ESP packet in
// a freshly allocated buffer. It is a thin wrapper over SealAppend.
func (sa *OutboundSA) Seal(payload []byte) ([]byte, error) {
	return sa.SealAppend(nil, payload)
}

// OpenAppend verifies, replay-checks and decrypts an ESP packet,
// appending the recovered payload to dst and returning the extended
// slice. With a dst whose capacity already fits the payload, the CTR and
// NULL suites allocate nothing. pkt and dst must not overlap; pkt is not
// modified.
func (sa *InboundSA) OpenAppend(dst, pkt []byte) ([]byte, error) {
	if len(pkt) < HeaderLen+ICVLen {
		return nil, ErrShort
	}
	spi := binary.BigEndian.Uint32(pkt[0:])
	if spi != sa.SPI {
		return nil, ErrUnknownSPI
	}
	seq := binary.BigEndian.Uint32(pkt[4:])
	if !sa.replayCheck(seq) {
		sa.Replays++
		return nil, ErrReplay
	}
	body := pkt[HeaderLen : len(pkt)-ICVLen]
	if sa.aead != nil {
		// Single-pass verify+decrypt: tag covers header (as AAD) and
		// ciphertext, checked before any plaintext is accepted. On
		// failure dst is returned untouched at its original length.
		if len(body) < 2 {
			return nil, ErrShort
		}
		binary.BigEndian.PutUint32(sa.nonce[8:], seq)
		var region []byte
		dst, region = ensure(dst, len(body))
		pt, err := sa.aead.Open(region[:0], &sa.nonce, pkt[HeaderLen:], pkt[:HeaderLen])
		if err != nil {
			sa.AuthFails++
			return nil, ErrAuth
		}
		padLen := int(pt[len(pt)-2])
		n := len(pt) - 2 - padLen
		if n < 0 {
			return nil, ErrPad
		}
		for i := 0; i < padLen; i++ {
			if pt[n+i] != byte(i+1) {
				return nil, ErrPad
			}
		}
		dst = dst[:len(dst)-len(pt)+n]
		sa.replayAdvance(seq)
		sa.Packets++
		sa.Bytes += uint64(n)
		return dst, nil
	}
	icv := pkt[len(pkt)-ICVLen:]
	sa.mac.Reset()
	sa.mac.Write(pkt[:len(pkt)-ICVLen])
	if !sa.mac.VerifyTrunc(icv, ICVLen) {
		sa.AuthFails++
		return nil, ErrAuth
	}
	var pt []byte
	switch sa.suite {
	case keymat.SuiteNullSHA256:
		// The authenticated body is parsed in place; the single copy into
		// dst happens below, once the padding is validated.
		pt = body
	case keymat.SuiteAESCTRSHA256:
		if len(body) < 8+2 {
			return nil, ErrShort
		}
		iv := sa.ivs.derive(sa.block, sa.SPI, seq)
		// Wire carries the first 8 bytes of the derived IV as a
		// consistency check.
		for i := 0; i < 8; i++ {
			if body[i] != iv[i] {
				sa.AuthFails++
				return nil, ErrAuth
			}
		}
		ct := body[8:]
		var region []byte
		dst, region = ensure(dst, len(ct))
		keymat.CTRXor(sa.block, &sa.ctr, iv, region, ct)
		pt = region
	case keymat.SuiteAESCBCSHA256:
		if len(body) < aes.BlockSize || (len(body)-aes.BlockSize)%aes.BlockSize != 0 || len(body) == aes.BlockSize {
			return nil, ErrShort
		}
		iv := body[:aes.BlockSize]
		ct := body[aes.BlockSize:]
		var region []byte
		dst, region = ensure(dst, len(ct))
		mode := sa.cbc
		if mode != nil {
			mode.(ivSetter).SetIV(iv)
		} else {
			mode = cipher.NewCBCDecrypter(sa.block, iv)
		}
		mode.CryptBlocks(region, ct)
		pt = region
	default:
		return nil, keymat.ErrUnknownSuite
	}
	if len(pt) < 2 {
		return nil, ErrPad
	}
	padLen := int(pt[len(pt)-2])
	n := len(pt) - 2 - padLen
	if n < 0 {
		return nil, ErrPad
	}
	// Verify RFC 4303 monotonic padding bytes.
	for i := 0; i < padLen; i++ {
		if pt[n+i] != byte(i+1) {
			return nil, ErrPad
		}
	}
	if sa.suite == keymat.SuiteNullSHA256 {
		dst, _ = ensure(dst, n)
		copy(dst[len(dst)-n:], pt[:n])
	} else {
		// Shrink the appended region to the payload (drop pad+trailer).
		dst = dst[:len(dst)-len(pt)+n]
	}
	sa.replayAdvance(seq)
	sa.Packets++
	sa.Bytes += uint64(n)
	return dst, nil
}

// Open verifies, replay-checks and decrypts an ESP packet, returning the
// payload in a freshly allocated buffer. It is a thin wrapper over
// OpenAppend.
func (sa *InboundSA) Open(pkt []byte) ([]byte, error) {
	return sa.OpenAppend(nil, pkt)
}

// replayCheck reports whether seq is acceptable (not seen, not too old).
func (sa *InboundSA) replayCheck(seq uint32) bool {
	if seq == 0 {
		return false
	}
	if seq > sa.highest {
		return true
	}
	diff := sa.highest - seq
	if diff >= ReplayWindow {
		return false
	}
	return sa.window&(1<<diff) == 0
}

// replayAdvance marks seq as seen after successful authentication.
func (sa *InboundSA) replayAdvance(seq uint32) {
	if seq > sa.highest {
		shift := seq - sa.highest
		if shift >= ReplayWindow {
			sa.window = 0
		} else {
			sa.window <<= shift
		}
		sa.window |= 1
		sa.highest = seq
		return
	}
	sa.window |= 1 << (sa.highest - seq)
}

// Pair bundles both directions of an association's data plane.
type Pair struct {
	Out *OutboundSA
	In  *InboundSA
}

// NewPair builds SAs from negotiated association keys. localSPI is the SPI
// peers use to reach us (inbound); remoteSPI is the peer's inbound SPI
// (our outbound).
func NewPair(keys keymat.AssociationKeys, localSPI, remoteSPI uint32) (*Pair, error) {
	out, err := NewOutbound(remoteSPI, keys.Suite, keys.ESPEncOut, keys.ESPAuthOut)
	if err != nil {
		return nil, err
	}
	in, err := NewInbound(localSPI, keys.Suite, keys.ESPEncIn, keys.ESPAuthIn)
	if err != nil {
		return nil, err
	}
	return &Pair{Out: out, In: in}, nil
}

// Zeroize wipes the outbound SA's key material: the encryption key (which
// aliases the AssociationKeys slice it was built from) and the keyed MAC.
// The expanded AES key schedule inside cipher.Block cannot be wiped
// portably; dropping the reference is the best available. The SA must not
// be used afterwards — it is retired by a rekey or teardown.
func (sa *OutboundSA) Zeroize() {
	if sa == nil {
		return
	}
	keymat.Zeroize(sa.encKey)
	sa.block = nil
	sa.cbc = nil
	if sa.mac != nil {
		sa.mac.Zeroize()
		sa.mac = nil
	}
	if sa.aead != nil {
		sa.aead.Zeroize()
		sa.aead = nil
	}
	sa.nonce = [keymat.NonceLen]byte{}
}

// Zeroize wipes the inbound SA's key material; see OutboundSA.Zeroize.
func (sa *InboundSA) Zeroize() {
	if sa == nil {
		return
	}
	keymat.Zeroize(sa.encKey)
	sa.block = nil
	sa.cbc = nil
	if sa.mac != nil {
		sa.mac.Zeroize()
		sa.mac = nil
	}
	if sa.aead != nil {
		sa.aead.Zeroize()
		sa.aead = nil
	}
	sa.nonce = [keymat.NonceLen]byte{}
}

// Zeroize retires both SAs of the pair. Nil-safe: rekey and teardown
// paths call it on associations that may never have installed SAs.
func (p *Pair) Zeroize() {
	if p == nil {
		return
	}
	p.Out.Zeroize()
	p.In.Zeroize()
}

// Overhead reports the per-packet ESP byte overhead for a suite (header,
// IV, trailer, ICV), used by cost models and wire-size accounting.
func Overhead(s keymat.Suite) int {
	switch s {
	case keymat.SuiteNullSHA256:
		return HeaderLen + 2 + ICVLen
	case keymat.SuiteAESCTRSHA256:
		return HeaderLen + 8 + 2 + ICVLen
	case keymat.SuiteAESCBCSHA256:
		return HeaderLen + 16 + 2 + 15 + ICVLen // worst-case padding
	case keymat.SuiteAESGCM128, keymat.SuiteAESGCM256, keymat.SuiteChaCha20Poly1305:
		return HeaderLen + 2 + ICVLen // trailer + tag, no wire IV
	}
	return HeaderLen + ICVLen
}
