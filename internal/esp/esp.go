// Package esp implements a userspace IPsec ESP data plane in BEET mode
// (Bound End-to-End Tunnel, RFC 5202/5840-style): the inner identities of
// a packet are fixed at SA setup (the two HITs), so only SPI, sequence
// number, payload, padding and ICV travel on the wire — the
// bandwidth-efficiency property the paper highlights over tunnel mode.
//
// Supported transforms come from hipcloud/internal/keymat: AES-128-CTR and
// AES-128-CBC with HMAC-SHA-256-128 integrity, plus a NULL cipher for
// integrity-only operation.
package esp

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"

	"hipcloud/internal/keymat"
)

// Errors returned by the data plane.
var (
	ErrAuth         = errors.New("esp: integrity check failed")
	ErrReplay       = errors.New("esp: replayed or stale sequence number")
	ErrShort        = errors.New("esp: truncated packet")
	ErrPad          = errors.New("esp: invalid padding")
	ErrUnknownSPI   = errors.New("esp: unknown SPI")
	ErrSeqExhausted = errors.New("esp: outbound sequence space exhausted")
)

// ICVLen is the truncated HMAC-SHA-256-128 integrity tag length.
const ICVLen = 16

// HeaderLen is SPI + sequence number.
const HeaderLen = 8

// ReplayWindow is the anti-replay window width in packets.
const ReplayWindow = 64

// OutboundSA encrypts and authenticates packets for one direction.
type OutboundSA struct {
	SPI    uint32
	suite  keymat.Suite
	encKey []byte
	block  cipher.Block
	mac    []byte
	seq    uint32
	// iv is a deterministic per-SA IV counter for CBC/CTR construction;
	// combined with the sequence number it never repeats within an SA.
	Packets uint64
	Bytes   uint64
}

// InboundSA authenticates, replay-checks and decrypts one direction.
type InboundSA struct {
	SPI    uint32
	suite  keymat.Suite
	encKey []byte
	block  cipher.Block
	mac    []byte
	// Anti-replay state: highest sequence seen and a bitmap of the
	// ReplayWindow sequences at and below it.
	highest   uint32
	window    uint64
	Packets   uint64
	Bytes     uint64
	Replays   uint64
	AuthFails uint64
}

// NewOutbound creates the sending half of an SA.
func NewOutbound(spi uint32, suite keymat.Suite, encKey, authKey []byte) (*OutboundSA, error) {
	sa := &OutboundSA{SPI: spi, suite: suite, encKey: encKey, mac: authKey}
	if err := sa.initCipher(); err != nil {
		return nil, err
	}
	return sa, nil
}

func (sa *OutboundSA) initCipher() error {
	switch sa.suite {
	case keymat.SuiteAESCBCSHA256, keymat.SuiteAESCTRSHA256:
		b, err := aes.NewCipher(sa.encKey)
		if err != nil {
			return err
		}
		sa.block = b
	case keymat.SuiteNullSHA256:
	default:
		return keymat.ErrUnknownSuite
	}
	return nil
}

// NewInbound creates the receiving half of an SA.
func NewInbound(spi uint32, suite keymat.Suite, encKey, authKey []byte) (*InboundSA, error) {
	sa := &InboundSA{SPI: spi, suite: suite, encKey: encKey, mac: authKey}
	switch suite {
	case keymat.SuiteAESCBCSHA256, keymat.SuiteAESCTRSHA256:
		b, err := aes.NewCipher(encKey)
		if err != nil {
			return nil, err
		}
		sa.block = b
	case keymat.SuiteNullSHA256:
	default:
		return nil, keymat.ErrUnknownSuite
	}
	return sa, nil
}

// Seq returns the last sequence number sent.
func (sa *OutboundSA) Seq() uint32 { return sa.seq }

// deriveIV builds a unique 16-byte IV from the SPI and sequence number
// keyed through the cipher itself (encrypting the counter block), which is
// standard practice for deterministic IVs.
func deriveIV(block cipher.Block, spi, seq uint32) []byte {
	var ctr [16]byte
	binary.BigEndian.PutUint32(ctr[0:], spi)
	binary.BigEndian.PutUint32(ctr[4:], seq)
	iv := make([]byte, 16)
	block.Encrypt(iv, ctr[:])
	return iv
}

// Seal encrypts and authenticates payload, producing a full ESP packet.
func (sa *OutboundSA) Seal(payload []byte) ([]byte, error) {
	if sa.seq == ^uint32(0) {
		return nil, ErrSeqExhausted
	}
	sa.seq++
	var body []byte
	switch sa.suite {
	case keymat.SuiteNullSHA256:
		// pad-len and next-header trailer, zero padding.
		body = append(append([]byte{}, payload...), 0, 59)
	case keymat.SuiteAESCTRSHA256:
		iv := deriveIV(sa.block, sa.SPI, sa.seq)
		trailer := append(append([]byte{}, payload...), 0, 59)
		ct := make([]byte, len(trailer))
		cipher.NewCTR(sa.block, iv).XORKeyStream(ct, trailer)
		body = append(iv[:8], ct...) // 8-byte IV on the wire for CTR
	case keymat.SuiteAESCBCSHA256:
		iv := deriveIV(sa.block, sa.SPI, sa.seq)
		padLen := aes.BlockSize - (len(payload)+2)%aes.BlockSize
		if padLen == aes.BlockSize {
			padLen = 0
		}
		pt := make([]byte, len(payload)+padLen+2)
		copy(pt, payload)
		for i := 0; i < padLen; i++ {
			pt[len(payload)+i] = byte(i + 1) // RFC 4303 monotonic padding
		}
		pt[len(pt)-2] = byte(padLen)
		pt[len(pt)-1] = 59
		ct := make([]byte, len(pt))
		cipher.NewCBCEncrypter(sa.block, iv).CryptBlocks(ct, pt)
		body = append(iv, ct...)
	default:
		return nil, keymat.ErrUnknownSuite
	}
	pkt := make([]byte, HeaderLen+len(body)+ICVLen)
	binary.BigEndian.PutUint32(pkt[0:], sa.SPI)
	binary.BigEndian.PutUint32(pkt[4:], sa.seq)
	copy(pkt[HeaderLen:], body)
	m := hmac.New(sha256.New, sa.mac)
	m.Write(pkt[:HeaderLen+len(body)])
	copy(pkt[HeaderLen+len(body):], m.Sum(nil)[:ICVLen])
	sa.Packets++
	sa.Bytes += uint64(len(payload))
	return pkt, nil
}

// Open verifies, replay-checks and decrypts an ESP packet, returning the
// payload.
func (sa *InboundSA) Open(pkt []byte) ([]byte, error) {
	if len(pkt) < HeaderLen+ICVLen {
		return nil, ErrShort
	}
	spi := binary.BigEndian.Uint32(pkt[0:])
	if spi != sa.SPI {
		return nil, ErrUnknownSPI
	}
	seq := binary.BigEndian.Uint32(pkt[4:])
	if !sa.replayCheck(seq) {
		sa.Replays++
		return nil, ErrReplay
	}
	body := pkt[HeaderLen : len(pkt)-ICVLen]
	icv := pkt[len(pkt)-ICVLen:]
	m := hmac.New(sha256.New, sa.mac)
	m.Write(pkt[:len(pkt)-ICVLen])
	if !hmac.Equal(icv, m.Sum(nil)[:ICVLen]) {
		sa.AuthFails++
		return nil, ErrAuth
	}
	var pt []byte
	switch sa.suite {
	case keymat.SuiteNullSHA256:
		pt = append([]byte(nil), body...)
	case keymat.SuiteAESCTRSHA256:
		if len(body) < 8 {
			return nil, ErrShort
		}
		iv := deriveIV(sa.block, sa.SPI, seq)
		// Wire carries the first 8 bytes of the derived IV as a
		// consistency check.
		for i := 0; i < 8; i++ {
			if body[i] != iv[i] {
				sa.AuthFails++
				return nil, ErrAuth
			}
		}
		ct := body[8:]
		pt = make([]byte, len(ct))
		cipher.NewCTR(sa.block, iv).XORKeyStream(pt, ct)
	case keymat.SuiteAESCBCSHA256:
		if len(body) < aes.BlockSize || (len(body)-aes.BlockSize)%aes.BlockSize != 0 || len(body) == aes.BlockSize {
			return nil, ErrShort
		}
		iv := body[:aes.BlockSize]
		ct := body[aes.BlockSize:]
		pt = make([]byte, len(ct))
		cipher.NewCBCDecrypter(sa.block, iv).CryptBlocks(pt, ct)
	default:
		return nil, keymat.ErrUnknownSuite
	}
	if len(pt) < 2 {
		return nil, ErrPad
	}
	padLen := int(pt[len(pt)-2])
	if len(pt)-2-padLen < 0 {
		return nil, ErrPad
	}
	// Verify RFC 4303 monotonic padding bytes.
	for i := 0; i < padLen; i++ {
		if pt[len(pt)-2-padLen+i] != byte(i+1) {
			return nil, ErrPad
		}
	}
	payload := pt[:len(pt)-2-padLen]
	sa.replayAdvance(seq)
	sa.Packets++
	sa.Bytes += uint64(len(payload))
	return append([]byte(nil), payload...), nil
}

// replayCheck reports whether seq is acceptable (not seen, not too old).
func (sa *InboundSA) replayCheck(seq uint32) bool {
	if seq == 0 {
		return false
	}
	if seq > sa.highest {
		return true
	}
	diff := sa.highest - seq
	if diff >= ReplayWindow {
		return false
	}
	return sa.window&(1<<diff) == 0
}

// replayAdvance marks seq as seen after successful authentication.
func (sa *InboundSA) replayAdvance(seq uint32) {
	if seq > sa.highest {
		shift := seq - sa.highest
		if shift >= ReplayWindow {
			sa.window = 0
		} else {
			sa.window <<= shift
		}
		sa.window |= 1
		sa.highest = seq
		return
	}
	sa.window |= 1 << (sa.highest - seq)
}

// Pair bundles both directions of an association's data plane.
type Pair struct {
	Out *OutboundSA
	In  *InboundSA
}

// NewPair builds SAs from negotiated association keys. localSPI is the SPI
// peers use to reach us (inbound); remoteSPI is the peer's inbound SPI
// (our outbound).
func NewPair(keys keymat.AssociationKeys, localSPI, remoteSPI uint32) (*Pair, error) {
	out, err := NewOutbound(remoteSPI, keys.Suite, keys.ESPEncOut, keys.ESPAuthOut)
	if err != nil {
		return nil, err
	}
	in, err := NewInbound(localSPI, keys.Suite, keys.ESPEncIn, keys.ESPAuthIn)
	if err != nil {
		return nil, err
	}
	return &Pair{Out: out, In: in}, nil
}

// Overhead reports the per-packet ESP byte overhead for a suite (header,
// IV, trailer, ICV), used by cost models and wire-size accounting.
func Overhead(s keymat.Suite) int {
	switch s {
	case keymat.SuiteNullSHA256:
		return HeaderLen + 2 + ICVLen
	case keymat.SuiteAESCTRSHA256:
		return HeaderLen + 8 + 2 + ICVLen
	case keymat.SuiteAESCBCSHA256:
		return HeaderLen + 16 + 2 + 15 + ICVLen // worst-case padding
	}
	return HeaderLen + ICVLen
}
