package esp

import (
	"bytes"
	"net/netip"
	"testing"

	"hipcloud/internal/keymat"
)

// fuzzKeys derives matched outbound/inbound association keys for a suite,
// deterministic so sealed corpus entries stay valid across runs.
func fuzzKeys(s keymat.Suite) (keymat.AssociationKeys, keymat.AssociationKeys) {
	hitI := netip.MustParseAddr("2001:10::1")
	hitR := netip.MustParseAddr("2001:10::2")
	ki := keymat.New([]byte("dh"), hitI, hitR, 1, 2)
	kr := keymat.New([]byte("dh"), hitI, hitR, 1, 2)
	ak, _ := keymat.DeriveAssociation(ki, s, true)
	bk, _ := keymat.DeriveAssociation(kr, s, false)
	return ak, bk
}

// FuzzOpen feeds arbitrary packets to the inbound SA: it must never panic
// and must never accept anything it did not seal. The corpus seeds valid
// packets for every suite plus truncations at each wire-format boundary
// (mid-header, mid-IV, mid-ciphertext, mid-ICV).
func FuzzOpen(f *testing.F) {
	ak, bk := fuzzKeys(keymat.SuiteAESCTRSHA256)
	out, _ := NewOutbound(200, ak.Suite, ak.ESPEncOut, ak.ESPAuthOut)
	good, _ := out.Seal([]byte("seed packet"))
	f.Add(good)
	f.Add([]byte{})
	// Truncations at every structural boundary of a valid CTR packet:
	// 0 | mid-SPI | after SPI | after seq | mid-IV | after IV |
	// mid-ct | before ICV | mid-ICV | full-1.
	for _, cut := range []int{
		0, 2, 4, HeaderLen, HeaderLen + 4, HeaderLen + 8,
		HeaderLen + 10, len(good) - ICVLen, len(good) - 8, len(good) - 1,
	} {
		f.Add(append([]byte(nil), good[:cut]...))
	}
	// Valid packets from the other suites (wrong SPI/keys here, but they
	// exercise suite-specific length arithmetic in the parser), the AEAD
	// suites included: their no-wire-IV bodies hit different boundaries.
	for _, s := range []keymat.Suite{
		keymat.SuiteAESCBCSHA256, keymat.SuiteNullSHA256,
		keymat.SuiteAESGCM128, keymat.SuiteAESGCM256, keymat.SuiteChaCha20Poly1305,
	} {
		oak, _ := fuzzKeys(s)
		o, _ := NewOutbound(200, oak.Suite, oak.ESPEncOut, oak.ESPAuthOut)
		p, _ := o.Seal([]byte("other suite"))
		f.Add(p)
		f.Add(append([]byte(nil), p[:len(p)-1]...))
		// Truncation inside the tag and a tag-only body.
		f.Add(append([]byte(nil), p[:len(p)-ICVLen/2]...))
		f.Add(append([]byte(nil), p[:HeaderLen+ICVLen]...))
	}
	// Header present, degenerate bodies.
	hdr := append([]byte(nil), good[:HeaderLen]...)
	f.Add(append(append([]byte(nil), hdr...), bytes.Repeat([]byte{0}, ICVLen)...))
	f.Add(append(append([]byte(nil), hdr...), bytes.Repeat([]byte{0}, ICVLen+1)...))
	// The AEAD parser path gets its own receiver: the corpus's GCM-128
	// seeds were sealed under the same deterministic keys, so the only
	// payload it may ever accept is that seed's.
	_, abk := fuzzKeys(keymat.SuiteAESGCM128)
	f.Fuzz(func(t *testing.T, data []byte) {
		in, _ := NewInbound(200, bk.Suite, bk.ESPEncIn, bk.ESPAuthIn)
		payload, err := in.Open(data)
		if err == nil && string(payload) != "seed packet" {
			t.Fatalf("inbound SA accepted forged packet: %q", payload)
		}
		ain, _ := NewInbound(200, abk.Suite, abk.ESPEncIn, abk.ESPAuthIn)
		apayload, err := ain.Open(data)
		if err == nil && string(apayload) != "other suite" {
			t.Fatalf("AEAD inbound SA accepted forged packet: %q", apayload)
		}
	})
}

// FuzzSealOpenRoundTrip drives the append-style APIs with arbitrary
// payloads and dst prefixes on every suite: SealAppend followed by
// OpenAppend must return the exact payload, never panic, and never
// disturb bytes already in the destination buffers.
func FuzzSealOpenRoundTrip(f *testing.F) {
	f.Add([]byte(""), uint8(0))
	f.Add([]byte("x"), uint8(1))
	f.Add(bytes.Repeat([]byte{0xAB}, 15), uint8(2))
	f.Add(bytes.Repeat([]byte{0xCD}, 16), uint8(0))
	f.Add(bytes.Repeat([]byte{0xEF}, 1400), uint8(7))
	f.Fuzz(func(t *testing.T, payload []byte, prefixLen uint8) {
		for _, s := range []keymat.Suite{
			keymat.SuiteAESCTRSHA256, keymat.SuiteAESCBCSHA256, keymat.SuiteNullSHA256,
			keymat.SuiteAESGCM128, keymat.SuiteAESGCM256, keymat.SuiteChaCha20Poly1305,
		} {
			ak, bk := fuzzKeys(s)
			out, err := NewOutbound(200, ak.Suite, ak.ESPEncOut, ak.ESPAuthOut)
			if err != nil {
				t.Fatal(err)
			}
			in, err := NewInbound(200, bk.Suite, bk.ESPEncIn, bk.ESPAuthIn)
			if err != nil {
				t.Fatal(err)
			}
			prefix := bytes.Repeat([]byte{0x55}, int(prefixLen))
			dst := append([]byte(nil), prefix...)
			dst, err = out.SealAppend(dst, payload)
			if err != nil {
				t.Fatalf("%v seal: %v", s, err)
			}
			if !bytes.Equal(dst[:len(prefix)], prefix) {
				t.Fatalf("%v: SealAppend disturbed dst prefix", s)
			}
			pkt := dst[len(prefix):]
			got := append([]byte(nil), prefix...)
			got, err = in.OpenAppend(got, pkt)
			if err != nil {
				t.Fatalf("%v open: %v", s, err)
			}
			if !bytes.Equal(got[:len(prefix)], prefix) {
				t.Fatalf("%v: OpenAppend disturbed dst prefix", s)
			}
			if !bytes.Equal(got[len(prefix):], payload) {
				t.Fatalf("%v: round-trip payload mismatch (len=%d)", s, len(payload))
			}
		}
	})
}
