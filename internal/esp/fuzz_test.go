package esp

import (
	"net/netip"
	"testing"

	"hipcloud/internal/keymat"
)

// FuzzOpen feeds arbitrary packets to the inbound SA: it must never panic
// and must never accept anything it did not seal.
func FuzzOpen(f *testing.F) {
	hitI := netip.MustParseAddr("2001:10::1")
	hitR := netip.MustParseAddr("2001:10::2")
	ki := keymat.New([]byte("dh"), hitI, hitR, 1, 2)
	kr := keymat.New([]byte("dh"), hitI, hitR, 1, 2)
	ak, _ := keymat.DeriveAssociation(ki, keymat.SuiteAESCTRSHA256, true)
	bk, _ := keymat.DeriveAssociation(kr, keymat.SuiteAESCTRSHA256, false)
	out, _ := NewOutbound(200, ak.Suite, ak.ESPEncOut, ak.ESPAuthOut)
	good, _ := out.Seal([]byte("seed packet"))
	f.Add(good)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		in, _ := NewInbound(200, bk.Suite, bk.ESPEncIn, bk.ESPAuthIn)
		payload, err := in.Open(data)
		if err == nil && string(payload) != "seed packet" {
			t.Fatalf("inbound SA accepted forged packet: %q", payload)
		}
	})
}
