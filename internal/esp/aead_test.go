package esp

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"testing"

	"hipcloud/internal/keymat"
)

// The AEAD wire format, pinned against an independent stdlib-GCM
// reconstruction: hdr(8) || ct(payload+2) || tag(16), nonce =
// salt || 0x00000000 || seq, AAD = hdr. No IV travels on the wire.
func TestAEADWireFormatReference(t *testing.T) {
	key := bytes.Repeat([]byte{0x42}, 16)
	salt := []byte{0xA1, 0xB2, 0xC3, 0xD4}
	sa, err := NewOutbound(777, keymat.SuiteAESGCM128, key, salt)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("reference payload")
	pkt, err := sa.Seal(payload)
	if err != nil {
		t.Fatal(err)
	}
	if want := HeaderLen + len(payload) + 2 + ICVLen; len(pkt) != want {
		t.Fatalf("packet length %d, want %d", len(pkt), want)
	}
	if got := binary.BigEndian.Uint32(pkt[0:]); got != 777 {
		t.Fatalf("SPI %d", got)
	}
	if got := binary.BigEndian.Uint32(pkt[4:]); got != 1 {
		t.Fatalf("seq %d", got)
	}

	// Independent decrypt.
	block, _ := aes.NewCipher(key)
	g, _ := cipher.NewGCM(block)
	nonce := make([]byte, 12)
	copy(nonce, salt)
	binary.BigEndian.PutUint32(nonce[8:], 1)
	pt, err := g.Open(nil, nonce, pkt[HeaderLen:], pkt[:HeaderLen])
	if err != nil {
		t.Fatalf("reference open: %v", err)
	}
	if !bytes.Equal(pt[:len(payload)], payload) {
		t.Fatal("reference plaintext mismatch")
	}
	if pt[len(pt)-2] != 0 || pt[len(pt)-1] != nextHeader {
		t.Fatalf("trailer %x", pt[len(pt)-2:])
	}
}

// Satellite bugfix check (ISSUE 10): the sequence-exhaustion refusal is
// the nonce-reuse backstop for implicit-IV AEAD. The final sequence
// number 2^32-1 seals exactly once; the next attempt hard-fails, so the
// counter — and therefore the nonce — can never wrap and repeat, even
// if a rekey never fires.
func TestAEADSeqExhaustionBoundary(t *testing.T) {
	for _, s := range aeadSuites {
		t.Run(s.String(), func(t *testing.T) {
			pi, pr := pairFor(t, s)
			pi.Out.SetSeq(^uint32(0) - 2)

			p1, err := pi.Out.SealAppend(nil, []byte("penultimate"))
			if err != nil {
				t.Fatalf("seq max-1: %v", err)
			}
			if got := binary.BigEndian.Uint32(p1[4:]); got != ^uint32(0)-1 {
				t.Fatalf("seq %d, want max-1", got)
			}
			p2, err := pi.Out.SealAppend(nil, []byte("final"))
			if err != nil {
				t.Fatalf("seq max: %v", err)
			}
			if got := binary.BigEndian.Uint32(p2[4:]); got != ^uint32(0) {
				t.Fatalf("seq %d, want max", got)
			}
			// The counter is saturated: every further seal fails, and the
			// sequence (= the nonce) does not move.
			for i := 0; i < 3; i++ {
				if _, err := pi.Out.SealAppend(nil, []byte("beyond")); err != ErrSeqExhausted {
					t.Fatalf("post-exhaustion err = %v, want ErrSeqExhausted", err)
				}
			}
			if pi.Out.Seq() != ^uint32(0) {
				t.Fatalf("seq moved after exhaustion: %d", pi.Out.Seq())
			}
			// Both boundary packets are genuine and decrypt.
			if got, err := pr.In.Open(p1); err != nil || string(got) != "penultimate" {
				t.Fatalf("open max-1: %q %v", got, err)
			}
			if got, err := pr.In.Open(p2); err != nil || string(got) != "final" {
				t.Fatalf("open max: %q %v", got, err)
			}
			// The rekey threshold (hip.Maintain) must sit strictly below
			// the hard stop so a healthy association never reaches it:
			// 2^32-1 - 2^16 < 2^32-1. Checked numerically here to keep the
			// invariant pinned next to the mechanism it protects.
			const headroom = 1 << 16
			if thr := ^uint32(0) - headroom; thr >= ^uint32(0) {
				t.Fatal("rekey clamp does not leave headroom")
			}
		})
	}
}

// Two packets must never be sealed under the same (key, nonce): the
// nonce is the sequence number, and sequence numbers are strictly
// increasing until exhaustion.
func TestAEADNonceUniqueness(t *testing.T) {
	pi, _ := pairFor(t, keymat.SuiteAESGCM128)
	seen := map[uint32]bool{}
	for i := 0; i < 1000; i++ {
		pkt, err := pi.Out.Seal([]byte("n"))
		if err != nil {
			t.Fatal(err)
		}
		seq := binary.BigEndian.Uint32(pkt[4:])
		if seen[seq] {
			t.Fatalf("sequence/nonce %d reused", seq)
		}
		seen[seq] = true
	}
}

// Batch output must be byte-identical to the sequential Append calls.
func TestSealBatchMatchesSequential(t *testing.T) {
	for _, s := range suites {
		a, _ := pairFor(t, s)
		b, _ := pairFor(t, s)
		payloads := [][]byte{
			[]byte(""), []byte("one"), bytes.Repeat([]byte{0xEE}, 600),
			bytes.Repeat([]byte{0x11}, 1400), []byte("five"),
		}
		dsts := make([][]byte, len(payloads))
		n, err := a.Out.SealBatch(dsts, payloads)
		if err != nil || n != len(payloads) {
			t.Fatalf("%v: SealBatch = %d, %v", s, n, err)
		}
		for i, p := range payloads {
			want, err := b.Out.SealAppend(nil, p)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dsts[i], want) {
				t.Fatalf("%v: batch packet %d differs from sequential", s, i)
			}
		}
	}
}

func TestOpenBatchMatchesSequential(t *testing.T) {
	for _, s := range suites {
		pi, pr := pairFor(t, s)
		_, prSeq := pairFor(t, s)
		payloads := [][]byte{
			[]byte("alpha"), []byte(""), bytes.Repeat([]byte{0x77}, 900), []byte("delta"),
		}
		pkts := make([][]byte, len(payloads))
		if n, err := pi.Out.SealBatch(pkts, payloads); err != nil || n != len(payloads) {
			t.Fatalf("%v: seal: %d, %v", s, n, err)
		}
		outs := make([][]byte, len(pkts))
		if drops := pr.In.OpenBatch(outs, pkts); drops != 0 {
			t.Fatalf("%v: drops = %d", s, drops)
		}
		for i, p := range pkts {
			want, err := prSeq.In.OpenAppend(nil, p)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(outs[i], want) || !bytes.Equal(outs[i], payloads[i]) {
				t.Fatalf("%v: batch payload %d mismatch", s, i)
			}
		}
	}
}

// A corrupt datagram inside a burst is dropped and counted without
// disturbing its neighbors — recvmmsg semantics.
func TestOpenBatchIsolatesCorruptPacket(t *testing.T) {
	pi, pr := pairFor(t, keymat.SuiteChaCha20Poly1305)
	payloads := [][]byte{[]byte("good-1"), []byte("bad"), []byte("good-2")}
	pkts := make([][]byte, len(payloads))
	if _, err := pi.Out.SealBatch(pkts, payloads); err != nil {
		t.Fatal(err)
	}
	pkts[1][len(pkts[1])-1] ^= 0x80
	outs := make([][]byte, len(pkts))
	drops := pr.In.OpenBatch(outs, pkts)
	if drops != 1 {
		t.Fatalf("drops = %d, want 1", drops)
	}
	if string(outs[0]) != "good-1" || string(outs[2]) != "good-2" {
		t.Fatalf("neighbors damaged: %q %q", outs[0], outs[2])
	}
	if outs[1] != nil {
		t.Fatalf("corrupt slot filled: %q", outs[1])
	}
	if pr.In.AuthFails != 1 {
		t.Fatalf("AuthFails = %d", pr.In.AuthFails)
	}
}

// SealBatch stops cleanly at sequence exhaustion: packets sealed before
// the boundary are valid, the count says how many.
func TestSealBatchStopsAtExhaustion(t *testing.T) {
	pi, pr := pairFor(t, keymat.SuiteAESGCM128)
	pi.Out.SetSeq(^uint32(0) - 2) // room for exactly two more packets
	payloads := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")}
	dsts := make([][]byte, len(payloads))
	n, err := pi.Out.SealBatch(dsts, payloads)
	if err != ErrSeqExhausted {
		t.Fatalf("err = %v, want ErrSeqExhausted", err)
	}
	if n != 2 {
		t.Fatalf("sealed %d, want 2", n)
	}
	for i := 0; i < n; i++ {
		if got, err := pr.In.Open(dsts[i]); err != nil || string(got) != string(payloads[i]) {
			t.Fatalf("pre-boundary packet %d: %q %v", i, got, err)
		}
	}
	if dsts[2] != nil || dsts[3] != nil {
		t.Fatal("slots beyond the failure were touched")
	}
}

// AEAD overhead is the smallest of all suites (no wire IV, no padding)
// and SealedLen agrees with actual output across payload sizes.
func TestAEADOverheadAndSealedLen(t *testing.T) {
	for _, s := range aeadSuites {
		if got, want := Overhead(s), HeaderLen+2+ICVLen; got != want {
			t.Fatalf("%v: Overhead = %d, want %d", s, got, want)
		}
		pi, _ := pairFor(t, s)
		for _, n := range []int{0, 1, 15, 16, 17, 1400} {
			pkt, err := pi.Out.Seal(make([]byte, n))
			if err != nil {
				t.Fatal(err)
			}
			if len(pkt) != pi.Out.SealedLen(n) {
				t.Fatalf("%v: SealedLen(%d) = %d, packet %d", s, n, pi.Out.SealedLen(n), len(pkt))
			}
			if len(pkt) != n+Overhead(s) {
				t.Fatalf("%v: overhead drift at n=%d", s, n)
			}
		}
	}
}

// Zeroize leaves no key or salt material behind on AEAD SAs.
func TestAEADZeroize(t *testing.T) {
	pi, _ := pairFor(t, keymat.SuiteAESGCM256)
	if _, err := pi.Out.Seal([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	encKey := pi.Out.encKey
	pi.Zeroize()
	for _, b := range encKey {
		if b != 0 {
			t.Fatal("encryption key not wiped")
		}
	}
	if pi.Out.aead != nil || pi.In.aead != nil {
		t.Fatal("aead reference retained")
	}
	if pi.Out.nonce != ([keymat.NonceLen]byte{}) {
		t.Fatal("nonce salt not wiped")
	}
}

func BenchmarkSealBatchGCM128_32x1400(b *testing.B) {
	pi, _ := pairForBench(b, keymat.SuiteAESGCM128)
	const batch = 32
	payloads := make([][]byte, batch)
	dsts := make([][]byte, batch)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{7}, 1400)
		dsts[i] = make([]byte, 0, pi.Out.SealedLen(1400))
	}
	b.SetBytes(batch * 1400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range dsts {
			dsts[j] = dsts[j][:0]
		}
		if _, err := pi.Out.SealBatch(dsts, payloads); err != nil {
			b.Fatal(err)
		}
	}
}
