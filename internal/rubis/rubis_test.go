package rubis

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"hipcloud/internal/cloud"
	"hipcloud/internal/hip"
	"hipcloud/internal/hipsim"
	"hipcloud/internal/identity"
	"hipcloud/internal/netsim"
	"hipcloud/internal/secio"
	"hipcloud/internal/simtcp"
	"hipcloud/internal/workload"
)

func TestPopulateDeterministic(t *testing.T) {
	a := Populate(7, 100, 500)
	b := Populate(7, 100, 500)
	if a.NumItems() != 500 || a.NumUsers() != 100 {
		t.Fatalf("sizes: %d items %d users", a.NumItems(), a.NumUsers())
	}
	ra, _, _ := a.Execute("item 42")
	rb, _, _ := b.Execute("item 42")
	if string(ra) != string(rb) {
		t.Fatal("same seed produced different datasets")
	}
}

func TestQueries(t *testing.T) {
	db := Populate(7, 50, 200)
	for _, q := range []string{"home", "browse 3 0", "item 10", "bids 10", "user 5", "about 5", "search 3 0"} {
		out, cost, err := db.Execute(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if len(out) == 0 && !strings.HasPrefix(q, "bids") {
			t.Fatalf("%q: empty result", q)
		}
		if cost <= 0 {
			t.Fatalf("%q: nonpositive cost", q)
		}
	}
}

func TestSearchCostsMoreThanBrowse(t *testing.T) {
	db := Populate(7, 50, 2000)
	_, cb, _ := db.Execute("browse 3 0")
	_, cs, _ := db.Execute("search 3 0")
	if cs <= cb {
		t.Fatalf("search cost %v should exceed browse cost %v (full scan)", cs, cb)
	}
}

func TestBadQueries(t *testing.T) {
	db := Populate(7, 10, 20)
	for _, q := range []string{"", "drop tables", "item", "item banana", "browse 1", "bid 1 2", "item 99999"} {
		if _, _, err := db.Execute(q); err == nil {
			t.Fatalf("%q accepted", q)
		}
	}
}

func TestPlaceBidUpdatesPrice(t *testing.T) {
	db := Populate(7, 10, 20)
	before := db.items[3].Price
	out, _, err := db.Execute("bid 3 1 99999999")
	if err != nil || !strings.HasPrefix(string(out), "accepted") {
		t.Fatalf("bid: %q %v", out, err)
	}
	if db.items[3].Price != 99999999 || db.items[3].Price == before {
		t.Fatal("price not updated")
	}
	// Low bid rejected without error.
	out, _, _ = db.Execute("bid 3 1 5")
	if !strings.HasPrefix(string(out), "rejected") {
		t.Fatalf("low bid: %q", out)
	}
}

func TestQueryCacheHitsAndInvalidation(t *testing.T) {
	db := Populate(7, 10, 50)
	db.CacheEnabled = true
	_, c1, _ := db.Execute("item 5")
	_, c2, _ := db.Execute("item 5")
	if db.CacheHits != 1 {
		t.Fatalf("cache hits = %d", db.CacheHits)
	}
	if c2 >= c1 {
		t.Fatalf("cached query cost %v not below first %v", c2, c1)
	}
	db.Execute("bid 5 1 99999999")
	_, _, _ = db.Execute("item 5")
	if db.CacheMisses != 2 {
		t.Fatalf("cache not invalidated by write: misses=%d", db.CacheMisses)
	}
	// And the re-read sees the new price.
	out, _, _ := db.Execute("item 5")
	if !strings.Contains(string(out), "99999999") {
		t.Fatal("stale cache after write")
	}
}

func TestRouteToQueries(t *testing.T) {
	cases := map[string]int{
		"/home": 1, "/": 1, "/browse/3/0": 1, "/item/9": 2,
		"/user/1": 1, "/about/1": 1, "/search/2/1": 1,
		"/bid/3/1?amount=500": 2,
	}
	for path, want := range cases {
		qs, status := routeToQueries(path)
		if status != 200 || len(qs) != want {
			t.Fatalf("%s -> %v (%d)", path, qs, status)
		}
	}
	if _, status := routeToQueries("/nonsense"); status != 404 {
		t.Fatal("unknown path not 404")
	}
}

func TestMixPathsAreRoutable(t *testing.T) {
	m := NewMix(1, 200, 50)
	m.WriteFraction = 0.1
	for i := 0; i < 500; i++ {
		path := m.Next()
		if _, status := routeToQueries(path); status != 200 {
			t.Fatalf("mix produced unroutable path %q", path)
		}
	}
}

// threeTier builds client -> web -> db on a simulated EC2 zone under a
// scenario and returns the sim, the client's transport, and the servers.
func threeTier(t *testing.T, kind secio.Kind) (*netsim.Sim, *secio.Transport, netip.Addr, *WebServer) {
	t.Helper()
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	c := cloud.New(n, cloud.EC2)
	tenant := &cloud.Tenant{Name: "t", VLAN: 1}
	webVM := c.Zones[0].Launch("web1", cloud.Micro, tenant)
	dbVM := c.Zones[0].Launch("db1", cloud.Large, tenant)
	client := c.AttachExternal("client", 8, 8)
	db := Populate(7, 200, 1000)

	var webT, dbT, cliT *secio.Transport
	var dbAddr, webAddr netip.Addr
	switch kind {
	case secio.HIP:
		reg := hipsim.NewRegistry()
		costs := cloud.HIPCosts(true)
		mkHIP := func(node *netsim.Node, id *identity.HostIdentity) *secio.Transport {
			h, err := hip.NewHost(hip.Config{Identity: id, Locator: node.Addr(), Costs: costs})
			if err != nil {
				t.Fatal(err)
			}
			f := hipsim.New(node, h, reg)
			return &secio.Transport{Kind: secio.HIP, Stack: simtcp.NewStack(node, f)}
		}
		webID := identity.MustGenerate(identity.AlgECDSA)
		dbID := identity.MustGenerate(identity.AlgECDSA)
		cliID := identity.MustGenerate(identity.AlgECDSA)
		webT = mkHIP(webVM.Node, webID)
		dbT = mkHIP(dbVM.Node, dbID)
		cliT = mkHIP(client, cliID)
		dbAddr = reg.LSI(dbID.HIT()) // the paper ran over LSIs
		webAddr = webID.HIT()
	case secio.SSL:
		id := identity.MustGenerate(identity.AlgECDSA)
		costs := cloud.TLSCosts(false)
		webT = &secio.Transport{Kind: secio.SSL, Stack: simtcp.NewStack(webVM.Node, simtcp.NewPlainFabric(webVM.Node)), Identity: id, Costs: costs}
		dbT = &secio.Transport{Kind: secio.SSL, Stack: simtcp.NewStack(dbVM.Node, simtcp.NewPlainFabric(dbVM.Node)), Identity: id, Costs: costs}
		cliT = &secio.Transport{Kind: secio.SSL, Stack: simtcp.NewStack(client, simtcp.NewPlainFabric(client)), Costs: costs}
		dbAddr = dbVM.Addr()
		webAddr = webVM.Addr()
	default:
		webT = &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(webVM.Node, simtcp.NewPlainFabric(webVM.Node))}
		dbT = &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(dbVM.Node, simtcp.NewPlainFabric(dbVM.Node))}
		cliT = &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(client, simtcp.NewPlainFabric(client))}
		dbAddr = dbVM.Addr()
		webAddr = webVM.Addr()
	}
	ws := &WebServer{
		Name:      "web1",
		Config:    DefaultWebConfig,
		Transport: webT,
		DB:        NewDBClient(webT, dbAddr, DefaultWebConfig.DBPool),
	}
	s.Spawn("db", (&DBServer{DB: db, Transport: dbT}).Run)
	s.Spawn("web", ws.Run)
	return s, cliT, webAddr, ws
}

func TestThreeTierEndToEnd(t *testing.T) {
	for _, kind := range []secio.Kind{secio.Basic, secio.SSL, secio.HIP} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			s, cliT, webAddr, ws := threeTier(t, kind)
			mix := NewMix(3, 1000, 200)
			w := &workload.ClosedLoop{
				Transport: cliT,
				Target:    webAddr,
				Port:      WebPort,
				Clients:   4,
				Duration:  5 * time.Second,
				NextPath:  mix.Next,
			}
			res := w.Run(s)
			s.Run(20 * time.Second)
			s.Shutdown()
			if res.Completed < 20 {
				t.Fatalf("%v: only %d requests completed (%d errors)", kind, res.Completed, res.Errors)
			}
			if res.Errors > res.Completed/10 {
				t.Fatalf("%v: too many errors: %d vs %d ok", kind, res.Errors, res.Completed)
			}
			if ws.Served == 0 {
				t.Fatalf("%v: web server served nothing", kind)
			}
			if res.Latency.Mean() <= 0 {
				t.Fatalf("%v: no latency samples", kind)
			}
		})
	}
}

func TestSecurityCostsOrdering(t *testing.T) {
	// Same workload; the secured scenarios must complete fewer requests
	// per unit time than basic on identical virtual hardware.
	run := func(kind secio.Kind) float64 {
		s, cliT, webAddr, _ := threeTier(t, kind)
		mix := NewMix(3, 1000, 200)
		w := &workload.ClosedLoop{
			Transport: cliT, Target: webAddr, Port: WebPort,
			Clients: 12, Duration: 10 * time.Second, NextPath: mix.Next,
		}
		res := w.Run(s)
		s.Run(30 * time.Second)
		s.Shutdown()
		return res.Throughput()
	}
	basic := run(secio.Basic)
	ssl := run(secio.SSL)
	hip := run(secio.HIP)
	t.Logf("throughput basic=%.1f ssl=%.1f hip=%.1f req/s", basic, ssl, hip)
	if basic <= ssl || basic <= hip {
		t.Fatalf("basic (%.1f) should beat ssl (%.1f) and hip (%.1f)", basic, ssl, hip)
	}
	// HIP and SSL should be within a factor of two of each other
	// ("comparable" per the paper).
	if hip > 2*ssl || ssl > 2*hip {
		t.Fatalf("hip (%.1f) and ssl (%.1f) not comparable", hip, ssl)
	}
}

func TestSellAndRegister(t *testing.T) {
	db := Populate(7, 10, 50)
	before := db.NumItems()
	out, _, err := db.Execute("sell 3 5 2500")
	if err != nil || !strings.HasPrefix(string(out), "listed") {
		t.Fatalf("sell: %q %v", out, err)
	}
	if db.NumItems() != before+1 {
		t.Fatal("item not created")
	}
	// The new listing is browsable and biddable.
	id := before
	view, _, err := db.Execute("item " + itoaTest(id))
	if err != nil || !strings.Contains(string(view), "2500") {
		t.Fatalf("view new item: %q %v", view, err)
	}
	if _, _, err := db.Execute("bid " + itoaTest(id) + " 1 9999"); err != nil {
		t.Fatalf("bid on new item: %v", err)
	}
	// Register a user and sell as them.
	out, _, err = db.Execute("register newbie")
	if err != nil || !strings.HasPrefix(string(out), "registered") {
		t.Fatalf("register: %q %v", out, err)
	}
	if _, _, err := db.Execute("sell " + itoaTest(db.NumUsers()-1) + " 0 100"); err != nil {
		t.Fatalf("sell as new user: %v", err)
	}
	// Invalid sells rejected.
	for _, q := range []string{"sell 9999 0 100", "sell 0 999 100", "sell 0 0 0"} {
		if _, _, err := db.Execute(q); err == nil {
			t.Fatalf("%q accepted", q)
		}
	}
}

func TestWritesInvalidateCache(t *testing.T) {
	db := Populate(7, 10, 50)
	db.CacheEnabled = true
	db.Execute("home")
	db.Execute("home")
	if db.CacheHits != 1 {
		t.Fatalf("hits = %d", db.CacheHits)
	}
	db.Execute("sell 1 2 500")
	db.Execute("home")
	if db.CacheHits != 1 {
		t.Fatal("sell did not invalidate cache")
	}
	// And the new item shows up in its category listing.
	out, _, _ := db.Execute("home")
	if !strings.Contains(string(out), "category 2") {
		t.Fatalf("home: %q", out)
	}
}

func TestSellRegisterRoutes(t *testing.T) {
	qs, status := routeToQueries("/sell/3/5?price=777")
	if status != 200 || len(qs) != 1 || qs[0] != "sell 3 5 777" {
		t.Fatalf("sell route: %v %d", qs, status)
	}
	qs, status = routeToQueries("/register/alice")
	if status != 200 || qs[0] != "register alice" {
		t.Fatalf("register route: %v %d", qs, status)
	}
}

func itoaTest(v int) string {
	return fmt.Sprintf("%d", v)
}
