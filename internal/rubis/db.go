// Package rubis implements the multi-tier auction web service the paper
// benchmarks: an in-memory relational database modeled on the RUBiS
// schema (users, items, bids, comments), a MySQL-style query cache, a web
// tier issuing database queries per HTTP request, and the RUBiS browse
// request mix. CPU costs are expressed in reference-core time and charged
// to the serving VM by the server loops.
package rubis

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Schema sizes for the populated dataset.
const NumCategories = 20

// Errors returned by the query engine.
var (
	ErrBadQuery = errors.New("rubis: malformed query")
	ErrNotFound = errors.New("rubis: no such row")
)

// User is one registered bidder/seller.
type User struct {
	ID     int
	Nick   string
	Rating int
}

// Item is one auction listing.
type Item struct {
	ID          int
	Category    int
	Seller      int
	Name        string
	Description string
	Price       int // current highest bid, cents
	NumBids     int
}

// Bid is one bid on an item.
type Bid struct {
	ID     int
	Item   int
	User   int
	Amount int
}

// Comment is user feedback.
type Comment struct {
	ID       int
	From, To int
	Text     string
}

// CostModel prices query execution on the reference core.
type CostModel struct {
	// PerQuery is the fixed parse/plan/dispatch cost.
	PerQuery time.Duration
	// PerRow is charged per row touched by the executor.
	PerRow time.Duration
	// CacheLookup is the cost of a query-cache probe (hit or miss).
	CacheLookup time.Duration
}

// DefaultCosts approximates MySQL 5.1 on the reference core.
var DefaultCosts = CostModel{
	PerQuery:    6 * time.Millisecond,
	PerRow:      120 * time.Microsecond,
	CacheLookup: 40 * time.Microsecond,
}

// Database is the in-memory store.
type Database struct {
	users    []User
	items    []Item
	byCat    [][]int // item ids per category
	bids     map[int][]Bid
	comments map[int][]Comment // by recipient
	nextBid  int

	Costs        CostModel
	CacheEnabled bool
	cache        map[string][]byte

	// Stats.
	Queries, Writes, CacheHits, CacheMisses uint64
}

// Populate builds a deterministic dataset: nUsers users and nItems items
// spread over NumCategories categories, each item carrying a handful of
// bids and each user some comments (mirroring the RUBiS generator).
func Populate(seed int64, nUsers, nItems int) *Database {
	rng := rand.New(rand.NewSource(seed))
	db := &Database{
		bids:     make(map[int][]Bid),
		comments: make(map[int][]Comment),
		byCat:    make([][]int, NumCategories),
		Costs:    DefaultCosts,
		cache:    make(map[string][]byte),
	}
	for i := 0; i < nUsers; i++ {
		db.users = append(db.users, User{
			ID:     i,
			Nick:   fmt.Sprintf("user%d", i),
			Rating: rng.Intn(1000),
		})
	}
	for i := 0; i < nItems; i++ {
		cat := rng.Intn(NumCategories)
		it := Item{
			ID:          i,
			Category:    cat,
			Seller:      rng.Intn(nUsers),
			Name:        fmt.Sprintf("item %d in category %d", i, cat),
			Description: strings.Repeat(fmt.Sprintf("lot %d detail; ", i), 20),
			Price:       100 + rng.Intn(100000),
		}
		nb := rng.Intn(8)
		for b := 0; b < nb; b++ {
			db.nextBid++
			amount := it.Price + (b+1)*rng.Intn(500)
			db.bids[i] = append(db.bids[i], Bid{
				ID: db.nextBid, Item: i, User: rng.Intn(nUsers), Amount: amount,
			})
			it.Price = amount
			it.NumBids++
		}
		db.items = append(db.items, it)
		db.byCat[cat] = append(db.byCat[cat], i)
	}
	for i := 0; i < nUsers/2; i++ {
		to := rng.Intn(nUsers)
		db.comments[to] = append(db.comments[to], Comment{
			ID: i, From: rng.Intn(nUsers), To: to,
			Text: "great transaction, highly recommended",
		})
	}
	return db
}

// NumItems reports the item count.
func (db *Database) NumItems() int { return len(db.items) }

// NumUsers reports the user count.
func (db *Database) NumUsers() int { return len(db.users) }

// Execute runs one query and returns the result payload plus the CPU cost
// the caller must charge. Query grammar (whitespace-separated):
//
//	home
//	browse <cat> <page>
//	item <id>
//	bids <id>
//	user <id>
//	search <cat> <page>
//	about <userid>
//	bid <item> <user> <amount>
//	sell <seller> <cat> <price>
//	register <nick>
func (db *Database) Execute(q string) (result []byte, cost time.Duration, err error) {
	db.Queries++
	fields := strings.Fields(q)
	if len(fields) == 0 {
		return nil, db.Costs.PerQuery, ErrBadQuery
	}
	write := fields[0] == "bid" || fields[0] == "sell" || fields[0] == "register"
	if db.CacheEnabled && !write {
		cost += db.Costs.CacheLookup
		if cached, ok := db.cache[q]; ok {
			db.CacheHits++
			return cached, cost, nil
		}
		db.CacheMisses++
	}
	var rows int
	cost += db.Costs.PerQuery
	switch fields[0] {
	case "home":
		result, rows = db.qHome()
	case "browse", "search":
		if len(fields) != 3 {
			return nil, cost, ErrBadQuery
		}
		cat, e1 := strconv.Atoi(fields[1])
		page, e2 := strconv.Atoi(fields[2])
		if e1 != nil || e2 != nil {
			return nil, cost, ErrBadQuery
		}
		deep := fields[0] == "search" // search scans the whole category
		result, rows, err = db.qBrowse(cat, page, deep)
	case "item":
		result, rows, err = db.qOneArg(fields, db.qItem)
	case "bids":
		result, rows, err = db.qOneArg(fields, db.qBids)
	case "user":
		result, rows, err = db.qOneArg(fields, db.qUser)
	case "about":
		result, rows, err = db.qOneArg(fields, db.qAbout)
	case "bid":
		if len(fields) != 4 {
			return nil, cost, ErrBadQuery
		}
		item, e1 := strconv.Atoi(fields[1])
		user, e2 := strconv.Atoi(fields[2])
		amount, e3 := strconv.Atoi(fields[3])
		if e1 != nil || e2 != nil || e3 != nil {
			return nil, cost, ErrBadQuery
		}
		result, rows, err = db.qPlaceBid(item, user, amount)
	case "sell":
		if len(fields) != 4 {
			return nil, cost, ErrBadQuery
		}
		seller, e1 := strconv.Atoi(fields[1])
		cat, e2 := strconv.Atoi(fields[2])
		price, e3 := strconv.Atoi(fields[3])
		if e1 != nil || e2 != nil || e3 != nil {
			return nil, cost, ErrBadQuery
		}
		result, rows, err = db.qSell(seller, cat, price)
	case "register":
		if len(fields) != 2 {
			return nil, cost, ErrBadQuery
		}
		result, rows = db.qRegister(fields[1])
	default:
		return nil, cost, ErrBadQuery
	}
	if write {
		db.Writes++
		// A write invalidates the query cache (MySQL invalidates all
		// cached queries touching the written tables; writes here touch
		// items/bids/users, which nearly everything reads).
		if db.CacheEnabled {
			db.cache = make(map[string][]byte)
		}
	}
	cost += time.Duration(rows) * db.Costs.PerRow
	if err != nil {
		return nil, cost, err
	}
	if db.CacheEnabled && !write {
		db.cache[q] = result
	}
	return result, cost, nil
}

func (db *Database) qOneArg(fields []string, fn func(int) ([]byte, int, error)) ([]byte, int, error) {
	if len(fields) != 2 {
		return nil, 0, ErrBadQuery
	}
	id, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, 0, ErrBadQuery
	}
	return fn(id)
}

func (db *Database) qHome() ([]byte, int) {
	var b strings.Builder
	for c := 0; c < NumCategories; c++ {
		fmt.Fprintf(&b, "category %d: %d items\n", c, len(db.byCat[c]))
	}
	return []byte(b.String()), NumCategories
}

const pageSize = 20

func (db *Database) qBrowse(cat, page int, deep bool) ([]byte, int, error) {
	if cat < 0 || cat >= NumCategories || page < 0 {
		return nil, 0, ErrNotFound
	}
	ids := db.byCat[cat]
	start := page * pageSize
	if start >= len(ids) {
		start = 0
	}
	end := start + pageSize
	if end > len(ids) {
		end = len(ids)
	}
	var b strings.Builder
	for _, id := range ids[start:end] {
		it := db.items[id]
		fmt.Fprintf(&b, "%d|%s|%d|%d|%s\n", it.ID, it.Name, it.Price, it.NumBids, it.Description)
	}
	rows := end - start
	if deep {
		rows = len(ids) // full scan for search (no index on keywords)
	}
	return []byte(b.String()), rows, nil
}

func (db *Database) qItem(id int) ([]byte, int, error) {
	if id < 0 || id >= len(db.items) {
		return nil, 1, ErrNotFound
	}
	it := db.items[id]
	seller := db.users[it.Seller]
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%s|%d|%d\n%s\nseller: %s (rating %d)\n",
		it.ID, it.Name, it.Price, it.NumBids, it.Description, seller.Nick, seller.Rating)
	return []byte(b.String()), 2 + it.NumBids, nil
}

func (db *Database) qBids(id int) ([]byte, int, error) {
	if id < 0 || id >= len(db.items) {
		return nil, 1, ErrNotFound
	}
	bids := db.bids[id]
	var b strings.Builder
	for _, bd := range bids {
		fmt.Fprintf(&b, "%d|%s|%d\n", bd.ID, db.users[bd.User].Nick, bd.Amount)
	}
	return []byte(b.String()), 1 + len(bids), nil
}

func (db *Database) qUser(id int) ([]byte, int, error) {
	if id < 0 || id >= len(db.users) {
		return nil, 1, ErrNotFound
	}
	u := db.users[id]
	cs := db.comments[id]
	var b strings.Builder
	fmt.Fprintf(&b, "%s|rating %d|%d comments\n", u.Nick, u.Rating, len(cs))
	for _, c := range cs {
		fmt.Fprintf(&b, "from %d: %s\n", c.From, c.Text)
	}
	return []byte(b.String()), 1 + len(cs), nil
}

func (db *Database) qAbout(id int) ([]byte, int, error) {
	if id < 0 || id >= len(db.users) {
		return nil, 1, ErrNotFound
	}
	// "About me": the user's items, bids and comments — the heavy join.
	var b strings.Builder
	rows := 1
	for _, it := range db.items {
		if it.Seller == id {
			fmt.Fprintf(&b, "selling %d|%s|%d\n", it.ID, it.Name, it.Price)
		}
		rows++
	}
	for _, cs := range db.comments[id] {
		fmt.Fprintf(&b, "comment from %d\n", cs.From)
		rows++
	}
	return []byte(b.String()), rows, nil
}

func (db *Database) qPlaceBid(item, user, amount int) ([]byte, int, error) {
	if item < 0 || item >= len(db.items) || user < 0 || user >= len(db.users) {
		return nil, 1, ErrNotFound
	}
	it := &db.items[item]
	if amount <= it.Price {
		return []byte("rejected: bid too low\n"), 2, nil
	}
	db.nextBid++
	db.bids[item] = append(db.bids[item], Bid{
		ID: db.nextBid, Item: item, User: user, Amount: amount,
	})
	it.Price = amount
	it.NumBids++
	return []byte(fmt.Sprintf("accepted bid %d\n", db.nextBid)), 3, nil
}

// qSell lists a new item for seller in cat at the starting price.
func (db *Database) qSell(seller, cat, price int) ([]byte, int, error) {
	if seller < 0 || seller >= len(db.users) || cat < 0 || cat >= NumCategories || price <= 0 {
		return nil, 1, ErrNotFound
	}
	id := len(db.items)
	it := Item{
		ID:          id,
		Category:    cat,
		Seller:      seller,
		Name:        fmt.Sprintf("item %d in category %d", id, cat),
		Description: strings.Repeat(fmt.Sprintf("lot %d detail; ", id), 20),
		Price:       price,
	}
	db.items = append(db.items, it)
	db.byCat[cat] = append(db.byCat[cat], id)
	return []byte(fmt.Sprintf("listed item %d\n", id)), 3, nil
}

// qRegister creates a user account.
func (db *Database) qRegister(nick string) ([]byte, int) {
	id := len(db.users)
	db.users = append(db.users, User{ID: id, Nick: nick})
	return []byte(fmt.Sprintf("registered user %d\n", id)), 2
}

// TopCategories returns category ids sorted by item count (for workload
// generators that skew toward popular categories).
func (db *Database) TopCategories() []int {
	out := make([]int, NumCategories)
	for i := range out {
		out[i] = i
	}
	sort.Slice(out, func(a, b int) bool { return len(db.byCat[out[a]]) > len(db.byCat[out[b]]) })
	return out
}
