package rubis

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"strings"
	"time"

	"hipcloud/internal/metrics"
	"hipcloud/internal/microhttp"
	"hipcloud/internal/netsim"
	"hipcloud/internal/secio"
)

// Well-known service ports.
const (
	DBPort  uint16 = 3306
	WebPort uint16 = 80
)

// ErrDBProto is returned on database protocol violations.
var ErrDBProto = errors.New("rubis: database protocol error")

// --- database wire protocol: 4-byte length frames, response prefixed
// with a status byte ---

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > 4<<20 {
		return nil, ErrDBProto
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// DBServer serves the query protocol over a secio transport.
type DBServer struct {
	DB        *Database
	Transport *secio.Transport
	// Served counts completed queries.
	Served uint64
}

// Run accepts connections until the simulation ends. Call from Spawn.
func (s *DBServer) Run(p *netsim.Proc) {
	l := s.Transport.MustListen(DBPort)
	for {
		raw, err := l.AcceptRaw(p, 0)
		if err != nil {
			return
		}
		conn := raw
		p.Spawn("db-handler", func(hp *netsim.Proc) {
			c, err := s.Transport.ServerConn(hp, conn)
			if err != nil {
				return
			}
			defer c.Close()
			node := s.Transport.Stack.Node()
			for {
				q, err := readFrame(c)
				if err != nil {
					return
				}
				result, cost, qerr := s.DB.Execute(string(q))
				node.CPU().Use(hp, cost)
				resp := make([]byte, 1, 1+len(result))
				if qerr != nil {
					resp[0] = 1
					resp = append(resp, []byte(qerr.Error())...)
				} else {
					resp = append(resp, result...)
				}
				if err := writeFrame(c, resp); err != nil {
					return
				}
				s.Served++
			}
		})
	}
}

// DBClient is a pooled client to a DBServer.
type DBClient struct {
	transport *secio.Transport
	addr      netip.Addr
	pool      []*dbConn
	free      []*dbConn
	waitQ     *netsim.WaitQueue
	size      int
}

type dbConn struct {
	c  secio.Conn
	br *bufio.Reader
}

// NewDBClient creates a client pool of the given size toward addr (an IP,
// HIT or LSI depending on the transport).
func NewDBClient(t *secio.Transport, addr netip.Addr, size int) *DBClient {
	return &DBClient{
		transport: t,
		addr:      addr,
		waitQ:     netsim.NewWaitQueue(t.Stack.Node().Net().Sim()),
		size:      size,
	}
}

// acquire borrows a pooled connection, dialing lazily.
func (c *DBClient) acquire(p *netsim.Proc) (*dbConn, error) {
	for {
		if len(c.free) > 0 {
			dc := c.free[len(c.free)-1]
			c.free = c.free[:len(c.free)-1]
			dc.c.Rebind(p)
			return dc, nil
		}
		if len(c.pool) < c.size {
			conn, err := c.transport.Dial(p, c.addr, DBPort)
			if err != nil {
				return nil, err
			}
			dc := &dbConn{c: conn, br: bufio.NewReader(conn)}
			c.pool = append(c.pool, dc)
			return dc, nil
		}
		c.waitQ.Wait(p, 0)
	}
}

func (c *DBClient) release(dc *dbConn) {
	c.free = append(c.free, dc)
	c.waitQ.WakeOne()
}

// Query executes one query through the pool.
func (c *DBClient) Query(p *netsim.Proc, q string) ([]byte, error) {
	dc, err := c.acquire(p)
	if err != nil {
		return nil, err
	}
	defer c.release(dc)
	if err := writeFrame(dc.c, []byte(q)); err != nil {
		return nil, err
	}
	resp, err := readFrame(dc.br)
	if err != nil {
		return nil, err
	}
	if len(resp) == 0 {
		return nil, ErrDBProto
	}
	if resp[0] != 0 {
		return nil, fmt.Errorf("rubis: query %q: %s", q, resp[1:])
	}
	return resp[1:], nil
}

// WebConfig tunes the web tier.
type WebConfig struct {
	// RequestCPU is the PHP-equivalent per-request processing cost on
	// the reference core (template rendering, parameter handling).
	RequestCPU time.Duration
	// RenderNsPerByte is charged per response-body byte produced.
	RenderNsPerByte float64
	// HTMLOverhead pads every response with this much markup.
	HTMLOverhead int
	// DBPool is the database connection pool size per web server.
	DBPool int
}

// DefaultWebConfig approximates the paper's PHP RUBiS on Apache.
var DefaultWebConfig = WebConfig{
	RequestCPU:      3500 * time.Microsecond,
	RenderNsPerByte: 60,
	HTMLOverhead:    20 << 10,
	DBPool:          6,
}

// WebServer is one web-tier VM.
type WebServer struct {
	Name      string
	Config    WebConfig
	Transport *secio.Transport // listener side (from proxy)
	DB        *DBClient
	// Served counts completed HTTP requests; Errors counts failures.
	Served, Errors uint64
	// Latency records request service times (accept-to-response).
	Latency metrics.Histogram
}

// Run accepts and serves HTTP connections. Call from Spawn.
func (w *WebServer) Run(p *netsim.Proc) {
	cfg := w.Config
	if cfg.DBPool <= 0 {
		cfg.DBPool = DefaultWebConfig.DBPool
	}
	l := w.Transport.MustListen(WebPort)
	for {
		raw, err := l.AcceptRaw(p, 0)
		if err != nil {
			return
		}
		conn := raw
		p.Spawn(w.Name+"/handler", func(hp *netsim.Proc) {
			c, err := w.Transport.ServerConn(hp, conn)
			if err != nil {
				return
			}
			defer c.Close()
			br := bufio.NewReader(c)
			for {
				req, err := microhttp.ReadRequest(br)
				if err != nil {
					return
				}
				start := hp.Now()
				resp := w.handle(hp, req)
				if resp.Status != 200 {
					w.Errors++
				}
				if err := microhttp.WriteResponse(c, resp); err != nil {
					return
				}
				w.Served++
				w.Latency.Add(hp.Now() - start)
				if req.WantsClose() {
					return
				}
			}
		})
	}
}

// handle maps an HTTP request to database queries and renders the page.
func (w *WebServer) handle(p *netsim.Proc, req *microhttp.Request) *microhttp.Response {
	node := w.Transport.Stack.Node()
	node.CPU().Use(p, w.Config.RequestCPU)
	queries, status := routeToQueries(req.Path)
	if status != 200 {
		return &microhttp.Response{Status: status, Body: []byte("no such page")}
	}
	var body []byte
	for _, q := range queries {
		result, err := w.DB.Query(p, q)
		if err != nil {
			return &microhttp.Response{Status: 502, Body: []byte(err.Error())}
		}
		body = append(body, result...)
	}
	// HTML wrapping.
	page := make([]byte, 0, len(body)+w.Config.HTMLOverhead)
	page = append(page, []byte("<html><body><!-- RUBiS "+w.Name+" -->")...)
	page = append(page, body...)
	page = append(page, make([]byte, w.Config.HTMLOverhead)...)
	page = append(page, []byte("</body></html>")...)
	node.CPU().Use(p, time.Duration(w.Config.RenderNsPerByte*float64(len(page))))
	return &microhttp.Response{
		Status:  200,
		Headers: map[string]string{"Content-Type": "text/html", "X-Served-By": w.Name},
		Body:    page,
	}
}

// routeToQueries maps RUBiS URL paths to database query batches.
func routeToQueries(path string) ([]string, int) {
	path = strings.TrimPrefix(path, "/")
	q := ""
	if i := strings.IndexByte(path, '?'); i >= 0 {
		q = path[i+1:]
		path = path[:i]
	}
	parts := strings.Split(path, "/")
	arg := func(i int) string {
		if i < len(parts) {
			return parts[i]
		}
		return "0"
	}
	switch parts[0] {
	case "", "home":
		return []string{"home"}, 200
	case "browse":
		return []string{"browse " + arg(1) + " " + arg(2)}, 200
	case "search":
		return []string{"search " + arg(1) + " " + arg(2)}, 200
	case "item":
		// Item page shows the item and its bid history: two queries.
		return []string{"item " + arg(1), "bids " + arg(1)}, 200
	case "user":
		return []string{"user " + arg(1)}, 200
	case "about":
		return []string{"about " + arg(1)}, 200
	case "bid":
		// /bid/<item>/<user>?amount=N — view then write.
		amount := strings.TrimPrefix(q, "amount=")
		if amount == "" {
			amount = "1"
		}
		return []string{
			"item " + arg(1),
			"bid " + arg(1) + " " + arg(2) + " " + amount,
		}, 200
	case "sell":
		// /sell/<seller>/<cat>?price=N — list a new item.
		price := strings.TrimPrefix(q, "price=")
		if price == "" {
			price = "100"
		}
		return []string{"sell " + arg(1) + " " + arg(2) + " " + price}, 200
	case "register":
		return []string{"register " + arg(1)}, 200
	}
	return nil, 404
}

// Mix generates the RUBiS browse workload: a random stream of page URLs
// weighted like the read-mostly RUBiS browsing mix the paper drove with
// jmeter ("random HTTP GET requests that resulted in queries to the
// database server").
type Mix struct {
	rng    *rand.Rand
	nItems int
	nUsers int
	// WriteFraction adds bid requests (zero for the paper's GET-only run).
	WriteFraction float64
}

// NewMix creates a generator over a dataset's id spaces.
func NewMix(seed int64, nItems, nUsers int) *Mix {
	return &Mix{rng: rand.New(rand.NewSource(seed)), nItems: nItems, nUsers: nUsers}
}

// Next returns the next request path.
func (m *Mix) Next() string {
	if m.WriteFraction > 0 && m.rng.Float64() < m.WriteFraction {
		return fmt.Sprintf("/bid/%d/%d?amount=%d",
			m.rng.Intn(m.nItems), m.rng.Intn(m.nUsers), 1_000_000+m.rng.Intn(100000))
	}
	r := m.rng.Float64()
	switch {
	case r < 0.10:
		return "/home"
	case r < 0.40:
		return fmt.Sprintf("/browse/%d/%d", m.rng.Intn(NumCategories), m.rng.Intn(3))
	case r < 0.75:
		return fmt.Sprintf("/item/%d", m.rng.Intn(m.nItems))
	case r < 0.90:
		return fmt.Sprintf("/user/%d", m.rng.Intn(m.nUsers))
	default:
		return fmt.Sprintf("/search/%d/%d", m.rng.Intn(NumCategories), m.rng.Intn(2))
	}
}
