package teredo

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"hipcloud/internal/hip"
	"hipcloud/internal/hipsim"
	"hipcloud/internal/identity"
	"hipcloud/internal/netsim"
	"hipcloud/internal/simtcp"
)

func TestAddressRoundTrip(t *testing.T) {
	srv := netip.MustParseAddr("198.51.100.1")
	mapped := netip.AddrPortFrom(netip.MustParseAddr("203.0.113.7"), 41235)
	a := MakeAddress(srv, mapped, true)
	if !IsTeredo(a) {
		t.Fatalf("address %v not in Teredo prefix", a)
	}
	gs, gm, cone, err := ParseAddress(a)
	if err != nil || gs != srv || gm != mapped || !cone {
		t.Fatalf("parse: %v %v %v %v", gs, gm, cone, err)
	}
	if _, _, _, err := ParseAddress(netip.MustParseAddr("2001:db8::1")); err != ErrNotTeredo {
		t.Fatalf("non-teredo parse err = %v", err)
	}
}

func TestAddressProperty(t *testing.T) {
	f := func(s4, m4 [4]byte, port uint16, cone bool) bool {
		srv := netip.AddrFrom4(s4)
		mapped := netip.AddrPortFrom(netip.AddrFrom4(m4), port)
		gs, gm, gc, err := ParseAddress(MakeAddress(srv, mapped, cone))
		return err == nil && gs == srv && gm == mapped && gc == cone
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// natWorld: two clients each behind its own NAT, one public Teredo server.
type natWorld struct {
	sim      *netsim.Sim
	server   *Server
	ca, cb   *Client
	na, nb   *netsim.Node
	internet *netsim.Node
}

func buildNATWorld(t *testing.T, natType netsim.NATType) *natWorld {
	t.Helper()
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	inet := n.AddRouter("internet")
	srvNode := n.AddNode("teredo-srv", 4, 4)
	hostA := n.AddNode("hostA", 2, 1)
	hostB := n.AddNode("hostB", 2, 1)
	natA := n.AddNode("natA", 2, 10)
	natB := n.AddNode("natB", 2, 10)

	mustAddr := netip.MustParseAddr
	n.Connect(hostA, mustAddr("192.168.1.2"), natA, mustAddr("192.168.1.1"), netsim.Link{Latency: time.Millisecond})
	n.Connect(hostB, mustAddr("192.168.2.2"), natB, mustAddr("192.168.2.1"), netsim.Link{Latency: time.Millisecond})
	n.Connect(natA, mustAddr("203.0.113.1"), inet, mustAddr("203.0.113.254"), netsim.Link{Latency: 8 * time.Millisecond})
	n.Connect(natB, mustAddr("203.0.114.1"), inet, mustAddr("203.0.114.254"), netsim.Link{Latency: 8 * time.Millisecond})
	n.Connect(srvNode, mustAddr("198.51.100.1"), inet, mustAddr("198.51.100.254"), netsim.Link{Latency: 5 * time.Millisecond})
	hostA.AddDefaultRoute(mustAddr("192.168.1.1"))
	hostB.AddDefaultRoute(mustAddr("192.168.2.1"))
	natA.AddDefaultRoute(mustAddr("203.0.113.254"))
	natB.AddDefaultRoute(mustAddr("203.0.114.254"))
	srvNode.AddDefaultRoute(mustAddr("198.51.100.254"))
	natA.EnableNAT(natType, mustAddr("192.168.1.1"))
	natB.EnableNAT(natType, mustAddr("192.168.2.1"))

	srv := NewServer(srvNode)
	return &natWorld{
		sim: s, server: srv,
		ca: NewClient(hostA, srv.Addr()),
		cb: NewClient(hostB, srv.Addr()),
		na: hostA, nb: hostB, internet: inet,
	}
}

func TestQualificationThroughNAT(t *testing.T) {
	w := buildNATWorld(t, netsim.NATPortRestricted)
	var errA, errB error
	w.sim.Spawn("qa", func(p *netsim.Proc) { errA = w.ca.Qualify(p, 5*time.Second) })
	w.sim.Spawn("qb", func(p *netsim.Proc) { errB = w.cb.Qualify(p, 5*time.Second) })
	w.sim.Run(10 * time.Second)
	w.sim.Shutdown()
	if errA != nil || errB != nil {
		t.Fatalf("qualify: %v %v", errA, errB)
	}
	if !IsTeredo(w.ca.Addr()) || !IsTeredo(w.cb.Addr()) {
		t.Fatalf("addresses: %v %v", w.ca.Addr(), w.cb.Addr())
	}
	// The embedded mapped address must be the NAT's public address.
	_, mapped, _, _ := ParseAddress(w.ca.Addr())
	if mapped.Addr() != netip.MustParseAddr("203.0.113.1") {
		t.Fatalf("mapped addr %v, want NAT external", mapped)
	}
}

func TestTunneledDataThroughServer(t *testing.T) {
	w := buildNATWorld(t, netsim.NATPortRestricted)
	var got []byte
	w.sim.Spawn("run", func(p *netsim.Proc) {
		if err := w.ca.Qualify(p, 5*time.Second); err != nil {
			t.Errorf("qualify a: %v", err)
			return
		}
		if err := w.cb.Qualify(p, 5*time.Second); err != nil {
			t.Errorf("qualify b: %v", err)
			return
		}
		w.cb.Tap(netsim.ProtoUDP, func(src netip.Addr, payload []byte) {
			got = append([]byte(nil), payload...)
		})
		w.ca.Send(netsim.ProtoUDP, w.cb.Addr(), []byte("via teredo"))
	})
	w.sim.Run(30 * time.Second)
	w.sim.Shutdown()
	if string(got) != "via teredo" {
		t.Fatalf("got %q", got)
	}
	if w.server.Relayed == 0 {
		t.Fatal("server relayed nothing (expected triangular routing)")
	}
}

func TestPingOverTeredoWorseThanDirect(t *testing.T) {
	w := buildNATWorld(t, netsim.NATPortRestricted)
	w.cb.EchoService()
	var teredoRTT time.Duration
	var err error
	w.sim.Spawn("run", func(p *netsim.Proc) {
		if err = w.ca.Qualify(p, 5*time.Second); err != nil {
			return
		}
		if err = w.cb.Qualify(p, 5*time.Second); err != nil {
			return
		}
		teredoRTT, err = w.ca.Ping(p, w.cb.Addr(), 64, 10*time.Second)
	})
	w.sim.Run(time.Minute)
	w.sim.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	// Direct path A->B is ~2*(1+8+8+1)=36ms RTT; via server adds two legs
	// to the server (~2*(5+8)=26ms extra), so expect >50ms.
	if teredoRTT < 50*time.Millisecond {
		t.Fatalf("teredo rtt = %v, expected relay penalty", teredoRTT)
	}
}

func TestDirectPathAfterBubbles(t *testing.T) {
	w := buildNATWorld(t, netsim.NATFullCone)
	w.ca.DirectPath = true
	w.cb.DirectPath = true
	w.cb.EchoService()
	var first, second time.Duration
	w.sim.Spawn("run", func(p *netsim.Proc) {
		if err := w.ca.Qualify(p, 5*time.Second); err != nil {
			return
		}
		if err := w.cb.Qualify(p, 5*time.Second); err != nil {
			return
		}
		first, _ = w.ca.Ping(p, w.cb.Addr(), 64, 10*time.Second)
		p.Sleep(time.Second) // bubbles settle
		second, _ = w.ca.Ping(p, w.cb.Addr(), 64, 10*time.Second)
	})
	w.sim.Run(time.Minute)
	w.sim.Shutdown()
	if first == 0 || second == 0 {
		t.Fatalf("pings failed: %v %v", first, second)
	}
	if second >= first {
		t.Fatalf("direct path (%v) not faster than relayed (%v)", second, first)
	}
}

func TestPlainStreamOverTeredoFabric(t *testing.T) {
	w := buildNATWorld(t, netsim.NATPortRestricted)
	var sa, sb *simtcp.Stack
	var got []byte
	w.sim.Spawn("setup", func(p *netsim.Proc) {
		if err := w.ca.Qualify(p, 5*time.Second); err != nil {
			t.Errorf("qualify: %v", err)
			return
		}
		if err := w.cb.Qualify(p, 5*time.Second); err != nil {
			t.Errorf("qualify: %v", err)
			return
		}
		sa = simtcp.NewStack(w.na, NewFabric(w.ca))
		sb = simtcp.NewStack(w.nb, NewFabric(w.cb))
		l := sb.MustListen(80)
		p.Spawn("server", func(sp *netsim.Proc) {
			c, err := l.Accept(sp, 0)
			if err != nil {
				return
			}
			buf := make([]byte, 128)
			n, _ := c.Read(sp, buf)
			c.Write(sp, buf[:n])
			c.Close()
		})
		p.Spawn("client", func(cp *netsim.Proc) {
			c, err := sa.Dial(cp, w.cb.Addr(), 80, 30*time.Second)
			if err != nil {
				t.Errorf("dial over teredo: %v", err)
				return
			}
			c.Write(cp, []byte("tcp in teredo"))
			buf := make([]byte, 128)
			n, err := c.Read(cp, buf)
			if err == nil {
				got = buf[:n]
			}
			c.Close()
		})
	})
	w.sim.Run(2 * time.Minute)
	w.sim.Shutdown()
	if string(got) != "tcp in teredo" {
		t.Fatalf("got %q", got)
	}
}

func TestHIPOverTeredo(t *testing.T) {
	w := buildNATWorld(t, netsim.NATPortRestricted)
	idA := identity.MustGenerate(identity.AlgECDSA)
	idB := identity.MustGenerate(identity.AlgECDSA)
	reg := hipsim.NewRegistry()
	var got []byte
	w.sim.Spawn("setup", func(p *netsim.Proc) {
		if err := w.ca.Qualify(p, 5*time.Second); err != nil {
			t.Errorf("qualify: %v", err)
			return
		}
		if err := w.cb.Qualify(p, 5*time.Second); err != nil {
			t.Errorf("qualify: %v", err)
			return
		}
		ha, _ := hip.NewHost(hip.Config{Identity: idA, Locator: w.ca.Addr()})
		hb, _ := hip.NewHost(hip.Config{Identity: idB, Locator: w.cb.Addr()})
		fa := hipsim.NewWithUnderlay(w.na, ha, reg, w.ca)
		fb := hipsim.NewWithUnderlay(w.nb, hb, reg, w.cb)
		sa := simtcp.NewStack(w.na, fa)
		sb := simtcp.NewStack(w.nb, fb)
		l := sb.MustListen(22)
		p.Spawn("server", func(sp *netsim.Proc) {
			c, err := l.Accept(sp, 0)
			if err != nil {
				return
			}
			buf := make([]byte, 128)
			n, _ := c.Read(sp, buf)
			c.Write(sp, buf[:n])
			c.Close()
		})
		p.Spawn("client", func(cp *netsim.Proc) {
			c, err := sa.Dial(cp, idB.HIT(), 22, 30*time.Second)
			if err != nil {
				t.Errorf("HIP-over-Teredo dial: %v", err)
				return
			}
			msg := []byte("ssh over hip over teredo")
			c.Write(cp, msg)
			buf := make([]byte, 128)
			n, err := c.Read(cp, buf)
			if err == nil && bytes.Equal(buf[:n], msg) {
				got = buf[:n]
			}
			c.Close()
		})
	})
	w.sim.Run(2 * time.Minute)
	w.sim.Shutdown()
	if len(got) == 0 {
		t.Fatal("HIP over Teredo round trip failed")
	}
}
