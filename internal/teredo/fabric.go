package teredo

import (
	"net/netip"
	"time"

	"hipcloud/internal/netsim"
)

// innerTCP is the inner protocol number carrying plain stream segments
// through the tunnel (the paper's "Teredo" iperf configuration: TCP over
// Teredo, no HIP).
const innerTCP netsim.Proto = 6

// Fabric adapts a Teredo client to simtcp.Fabric: plain stream segments
// tunneled in IPv6-over-UDP-over-IPv4. Peers are addressed by their
// Teredo IPv6 addresses.
type Fabric struct {
	client *Client
	// PerPacketCost models encapsulation/decapsulation CPU.
	PerPacketCost time.Duration
	deliver       func(peer netip.Addr, data []byte, cost time.Duration)
}

// NewFabric wraps a qualified (or qualifying) client.
func NewFabric(c *Client) *Fabric {
	f := &Fabric{client: c, PerPacketCost: 6 * time.Microsecond}
	c.Tap(innerTCP, func(src netip.Addr, payload []byte) {
		if f.deliver != nil {
			f.deliver(src, payload, f.PerPacketCost)
		}
	})
	return f
}

// Canonical is the identity: peers are Teredo addresses already.
func (f *Fabric) Canonical(peer netip.Addr) (netip.Addr, error) {
	if !IsTeredo(peer) {
		return netip.Addr{}, ErrNotTeredo
	}
	return peer, nil
}

// Establish requires local qualification (run Qualify first).
func (f *Fabric) Establish(p *netsim.Proc, peer netip.Addr) error {
	if !f.client.Qualified() {
		return ErrNotQualified
	}
	return nil
}

// Send tunnels one segment.
func (f *Fabric) Send(peer netip.Addr, data []byte) (time.Duration, error) {
	f.client.Send(innerTCP, peer, data)
	return f.PerPacketCost, nil
}

// Attach installs the delivery callback (simtcp.Fabric).
func (f *Fabric) Attach(deliver func(peer netip.Addr, data []byte, cost time.Duration)) {
	f.deliver = deliver
}
