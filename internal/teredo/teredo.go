// Package teredo implements RFC 4380 Teredo tunneling inside the
// simulator: IPv6 connectivity over UDP/IPv4 through NATs. The paper uses
// Teredo (instead of HIP's then-unimplemented native NAT traversal) to let
// "power users" behind NATs reach cloud VMs, and measures its latency
// penalty in Figure 3.
//
// The package provides the qualification procedure (router
// solicitation/advertisement with origin indication), Teredo address
// construction with the RFC's obfuscated mapped address/port, bubble
// packets for direct paths between clients behind cone NATs, a combined
// server/relay, and an underlay adapter so the HIP fabric can run
// HIT-over-Teredo.
package teredo

import (
	"encoding/binary"
	"errors"
	"net/netip"
	"time"

	"hipcloud/internal/netsim"
)

// ServerPort is the well-known Teredo UDP port.
const ServerPort uint16 = 3544

// Prefix is the Teredo IPv6 prefix 2001:0000::/32.
var Prefix = netip.MustParsePrefix("2001:0000::/32")

// Errors returned by the package.
var (
	ErrNotQualified = errors.New("teredo: client not qualified")
	ErrNotTeredo    = errors.New("teredo: address is not a Teredo address")
	ErrTimeout      = errors.New("teredo: qualification timed out")
)

// MakeAddress builds the Teredo IPv6 address for a client of server,
// observed at the external (mapped) addr/port. Flags: cone bit only.
func MakeAddress(server netip.Addr, mapped netip.AddrPort, cone bool) netip.Addr {
	var a [16]byte
	a[0], a[1] = 0x20, 0x01 // 2001:0000::/32
	srv := server.As4()
	copy(a[4:8], srv[:])
	if cone {
		a[8] = 0x80
	}
	binary.BigEndian.PutUint16(a[10:12], ^mapped.Port())
	m4 := mapped.Addr().As4()
	for i := 0; i < 4; i++ {
		a[12+i] = ^m4[i]
	}
	return netip.AddrFrom16(a)
}

// ParseAddress extracts the embedded server and mapped endpoint.
func ParseAddress(a netip.Addr) (server netip.Addr, mapped netip.AddrPort, cone bool, err error) {
	if !a.Is6() || !Prefix.Contains(a) {
		return netip.Addr{}, netip.AddrPort{}, false, ErrNotTeredo
	}
	b := a.As16()
	server = netip.AddrFrom4([4]byte{b[4], b[5], b[6], b[7]})
	cone = b[8]&0x80 != 0
	port := ^binary.BigEndian.Uint16(b[10:12])
	var m4 [4]byte
	for i := 0; i < 4; i++ {
		m4[i] = ^b[12+i]
	}
	mapped = netip.AddrPortFrom(netip.AddrFrom4(m4), port)
	return server, mapped, cone, nil
}

// IsTeredo reports whether a is in the Teredo prefix.
func IsTeredo(a netip.Addr) bool { return a.Is6() && Prefix.Contains(a) }

// --- wire format over UDP ---
//
// Teredo messages: [type][body]
//   typeRS:   router solicitation (empty body)
//   typeRA:   router advertisement: origin = addr(4) port(2)
//   typeData: tunneled packet: proto(1) src v6(16) dst v6(16) payload
//   typeBubble: proto 59 data packet with empty payload (direct-path punch)

const (
	typeRS   byte = 1
	typeRA   byte = 2
	typeData byte = 3
)

// dataHeader is the tunneled-packet header length.
const dataHeader = 1 + 1 + 16 + 16

// TunnelOverhead is the modeled extra wire bytes per tunneled packet
// (IPv6 header + UDP encapsulation beyond the simulator's base headers).
const TunnelOverhead = 48

func encodeData(proto netsim.Proto, src, dst netip.Addr, payload []byte) []byte {
	out := make([]byte, dataHeader+len(payload))
	out[0] = typeData
	out[1] = byte(proto)
	s, d := src.As16(), dst.As16()
	copy(out[2:18], s[:])
	copy(out[18:34], d[:])
	copy(out[dataHeader:], payload)
	return out
}

func decodeData(b []byte) (proto netsim.Proto, src, dst netip.Addr, payload []byte, ok bool) {
	if len(b) < dataHeader || b[0] != typeData {
		return 0, netip.Addr{}, netip.Addr{}, nil, false
	}
	var s, d [16]byte
	copy(s[:], b[2:18])
	copy(d[:], b[18:34])
	return netsim.Proto(b[1]), netip.AddrFrom16(s), netip.AddrFrom16(d), b[dataHeader:], true
}

// Server is a combined Teredo server/relay: it qualifies clients and
// relays tunneled packets between them (the paper notes Teredo's
// triangular routing as the source of its worst-case latency).
type Server struct {
	node *netsim.Node
	sock *netsim.UDPSocket
	// clients maps Teredo IPv6 addresses to their external endpoints.
	clients map[netip.Addr]netip.AddrPort
	// Relayed counts packets forwarded between clients.
	Relayed uint64
}

// NewServer starts a Teredo server on node (public address required).
func NewServer(node *netsim.Node) *Server {
	s := &Server{node: node, clients: make(map[netip.Addr]netip.AddrPort)}
	s.sock = node.MustBindUDP(ServerPort)
	s.sock.Handler = s.onPacket
	return s
}

// Addr returns the server's public IPv4 address.
func (s *Server) Addr() netip.Addr { return s.node.Addr() }

func (s *Server) onPacket(dg netsim.Datagram) {
	if len(dg.Payload) == 0 {
		return
	}
	switch dg.Payload[0] {
	case typeRS:
		// Origin indication: tell the client its mapped endpoint.
		ra := make([]byte, 7)
		ra[0] = typeRA
		m4 := dg.Src.Addr().As4()
		copy(ra[1:5], m4[:])
		binary.BigEndian.PutUint16(ra[5:7], dg.Src.Port())
		s.sock.SendTo(dg.Src, ra)
		// Learn the client's Teredo address eagerly (cone assumed until
		// the client proves otherwise; relaying only needs the mapping).
		addr := MakeAddress(s.Addr(), dg.Src, true)
		s.clients[addr] = dg.Src
	case typeData:
		_, src, dst, _, ok := decodeData(dg.Payload)
		if !ok {
			return
		}
		// Refresh the sender mapping and relay toward the destination.
		s.clients[src] = dg.Src
		ext, ok := s.clients[dst]
		if !ok {
			// Unknown client: derive from the Teredo address itself.
			_, mapped, _, err := ParseAddress(dst)
			if err != nil {
				return
			}
			ext = mapped
		}
		s.Relayed++
		s.sock.SendTo(ext, dg.Payload)
	}
}

// Client is a Teredo client on a (typically NATed) node.
type Client struct {
	node   *netsim.Node
	sock   *netsim.UDPSocket
	server netip.AddrPort
	addr   netip.Addr // our Teredo IPv6 address
	cone   bool

	qualified bool
	qualQ     *netsim.WaitQueue

	// taps receive decapsulated packets by protocol.
	taps map[netsim.Proto]func(src netip.Addr, payload []byte)
	// peers maps Teredo addresses to verified direct endpoints (after
	// bubble exchange through cone NATs).
	peers map[netip.Addr]netip.AddrPort
	// DirectPath enables bubble-based direct connectivity (both ends
	// behind cone NATs); off, everything relays through the server.
	DirectPath bool
	// Sent/Rcvd count tunneled data packets.
	Sent, Rcvd uint64
}

// NewClient creates a Teredo client using the given server.
func NewClient(node *netsim.Node, server netip.Addr) *Client {
	c := &Client{
		node:   node,
		server: netip.AddrPortFrom(server, ServerPort),
		qualQ:  netsim.NewWaitQueue(node.Net().Sim()),
		taps:   make(map[netsim.Proto]func(netip.Addr, []byte)),
		peers:  make(map[netip.Addr]netip.AddrPort),
	}
	c.sock = node.MustBindUDP(0)
	c.sock.ExtraSize = TunnelOverhead
	c.sock.Handler = c.onPacket
	return c
}

// Qualify runs the qualification procedure, blocking p until the client
// has a Teredo address or the timeout passes.
func (c *Client) Qualify(p *netsim.Proc, timeout time.Duration) error {
	deadline := p.Now() + timeout
	for !c.qualified {
		c.sock.SendTo(c.server, []byte{typeRS})
		remain := deadline - p.Now()
		if remain <= 0 {
			return ErrTimeout
		}
		wait := 500 * time.Millisecond
		if wait > remain {
			wait = remain
		}
		c.qualQ.Wait(p, wait)
	}
	return nil
}

// Addr returns the client's Teredo IPv6 address (after qualification).
func (c *Client) Addr() netip.Addr { return c.addr }

// Qualified reports whether qualification completed.
func (c *Client) Qualified() bool { return c.qualified }

func (c *Client) onPacket(dg netsim.Datagram) {
	if len(dg.Payload) == 0 {
		return
	}
	switch dg.Payload[0] {
	case typeRA:
		if len(dg.Payload) < 7 {
			return
		}
		mapped := netip.AddrPortFrom(
			netip.AddrFrom4([4]byte{dg.Payload[1], dg.Payload[2], dg.Payload[3], dg.Payload[4]}),
			binary.BigEndian.Uint16(dg.Payload[5:7]))
		// Cone determination (simplified): if our mapped address equals a
		// previous observation we are at least cone-ish; the simulation
		// sets cone by NAT type implicitly. Advertise cone.
		c.cone = true
		c.addr = MakeAddress(c.server.Addr(), mapped, c.cone)
		c.qualified = true
		c.qualQ.WakeAll()
	case typeData:
		proto, src, dst, payload, ok := decodeData(dg.Payload)
		if !ok || dst != c.addr {
			return
		}
		// Learn the direct path when the packet came straight from the
		// peer's mapped endpoint (not via the server).
		if c.DirectPath && dg.Src != c.server {
			c.peers[src] = dg.Src
		}
		if proto == 59 { // bubble: reply once to open our NAT mapping
			if c.DirectPath && dg.Src == c.server {
				if _, mapped, _, err := ParseAddress(src); err == nil {
					c.sock.SendTo(mapped, encodeData(60, c.addr, src, nil))
				}
			}
			return
		}
		if proto == 60 { // bubble reply: direct path now known
			return
		}
		c.Rcvd++
		if tap := c.taps[proto]; tap != nil {
			tap(src, payload)
		}
	}
}

// Send tunnels payload to the Teredo peer dst.
func (c *Client) Send(proto netsim.Proto, dst netip.Addr, payload []byte) {
	if !c.qualified {
		return
	}
	pkt := encodeData(proto, c.addr, dst, payload)
	if ext, ok := c.peers[dst]; ok && c.DirectPath {
		c.Sent++
		c.sock.SendTo(ext, pkt)
		return
	}
	if c.DirectPath {
		// Kick off the bubble exchange for next time: a bubble through
		// the server asks the peer to punch back.
		c.sock.SendTo(c.server, encodeData(59, c.addr, dst, nil))
	}
	c.Sent++
	c.sock.SendTo(c.server, pkt)
}

// Tap registers a protocol handler (scheduler context).
func (c *Client) Tap(proto netsim.Proto, fn func(src netip.Addr, payload []byte)) {
	c.taps[proto] = fn
}

// LocalAddr implements the hipsim.Underlay interface.
func (c *Client) LocalAddr() netip.Addr { return c.addr }

// --- in-tunnel echo, for the paper's RTT-over-Teredo measurements ---

type echoWait struct {
	wq   *netsim.WaitQueue
	done bool
	rtt  time.Duration
	sent netsim.VTime
}

// EchoService installs an echo responder on the client (inner protocol
// ICMP): any echo request is answered in place.
func (c *Client) EchoService() {
	c.Tap(netsim.ProtoICMP, func(src netip.Addr, payload []byte) {
		if len(payload) >= 9 && payload[0] == 8 {
			reply := append([]byte(nil), payload...)
			reply[0] = 0
			c.Send(netsim.ProtoICMP, src, reply)
		}
	})
}

// Ping measures one in-tunnel RTT to the Teredo peer dst. The target must
// run EchoService. Only one Ping may be outstanding per client.
func (c *Client) Ping(p *netsim.Proc, dst netip.Addr, size int, timeout time.Duration) (time.Duration, error) {
	if !c.qualified {
		return 0, ErrNotQualified
	}
	if size < 9 {
		size = 9
	}
	w := &echoWait{wq: netsim.NewWaitQueue(c.node.Net().Sim()), sent: p.Now()}
	payload := make([]byte, size)
	payload[0] = 8
	seq := uint64(p.Now())
	binary.BigEndian.PutUint64(payload[1:9], seq)
	prev := c.taps[netsim.ProtoICMP]
	c.Tap(netsim.ProtoICMP, func(src netip.Addr, pl []byte) {
		if len(pl) >= 9 && pl[0] == 0 && binary.BigEndian.Uint64(pl[1:9]) == seq && !w.done {
			w.done = true
			w.rtt = c.node.Net().Sim().Now() - w.sent
			w.wq.WakeAll()
			return
		}
		if prev != nil {
			prev(src, pl)
		}
	})
	defer c.Tap(netsim.ProtoICMP, prev)
	c.Send(netsim.ProtoICMP, dst, payload)
	if !w.done {
		if w.wq.Wait(p, timeout) {
			return 0, ErrTimeout
		}
	}
	return w.rtt, nil
}
