// Package rvs implements a HIP rendezvous server (RFC 5204): mobile or
// freshly migrated hosts register their current locator; initiators send
// I1 packets to the stable rendezvous address, which relays them with a
// FROM parameter so the responder can answer the initiator directly. The
// rest of the base exchange bypasses the rendezvous point.
//
// Registrations carry a lifetime (RFC 8003's REG_INFO abstracted to
// Server.TTL): live hosts refresh by re-registering, and a crashed host's
// stale entry lapses after TTL so the server stops relaying I1s into a
// black hole. MaxRelayRate bounds the relay work a re-contact herd can
// extract; excess I1s are shed and initiators retry on their (jittered)
// backoff schedule.
package rvs

import (
	"math"
	"net/netip"
	"time"

	"hipcloud/internal/hipwire"
	"hipcloud/internal/netsim"
)

// registration is one HIT binding: current locator plus expiry.
type registration struct {
	locator netip.Addr
	expires time.Duration // zero = never expires
}

// Server is a rendezvous middlebox on a public simulated node.
type Server struct {
	node *netsim.Node
	// registrations: HIT -> current binding.
	regs map[netip.Addr]registration

	// TTL bounds a registration's lifetime; re-registering refreshes it.
	// Zero means registrations never expire (the pre-RFC 8003 behavior,
	// kept for existing fixed-topology tests).
	TTL time.Duration
	// MaxRelayRate bounds relayed I1s per second, estimated with an
	// exponentially decayed counter (1s time constant, matching the HIP
	// responder's I1 load signal). Zero = unlimited.
	MaxRelayRate float64
	relayLoad    float64
	lastRelay    time.Duration

	// Relayed counts forwarded I1s; Dropped counts unservable ones
	// (which includes the Expired and Shed subsets).
	Relayed, Dropped uint64
	// Expired counts I1s refused because the target's registration TTL
	// had lapsed (the host stopped refreshing — crashed or partitioned).
	Expired uint64
	// Shed counts I1s refused by the relay rate limiter.
	Shed uint64
}

// New starts a rendezvous server on node.
func New(node *netsim.Node) *Server {
	s := &Server{node: node, regs: make(map[netip.Addr]registration)}
	node.TapRaw(netsim.ProtoHIP, s.onPacket)
	return s
}

// Addr returns the rendezvous address initiators should target.
func (s *Server) Addr() netip.Addr { return s.node.Addr() }

func (s *Server) now() time.Duration { return s.node.Net().Sim().Now() }

// Register binds a HIT to its current locator and starts (or refreshes)
// its TTL. Re-registration follows mobility and doubles as keepalive.
func (s *Server) Register(hit, locator netip.Addr) {
	var exp time.Duration
	if s.TTL > 0 {
		exp = s.now() + s.TTL
	}
	s.regs[hit] = registration{locator: locator, expires: exp}
}

// Unregister removes a HIT.
func (s *Server) Unregister(hit netip.Addr) { delete(s.regs, hit) }

// UnregisterLocator removes every HIT currently bound to locator and
// reports how many were dropped — the hook a cloud controller (or
// faults.Injector.OnNodeDown) fires when it knows a host died, rather
// than waiting out the TTL.
func (s *Server) UnregisterLocator(locator netip.Addr) int {
	n := 0
	for hit, reg := range s.regs {
		if reg.locator == locator {
			delete(s.regs, hit)
			n++
		}
	}
	return n
}

// Registrations reports the number of live (unexpired) registrations.
func (s *Server) Registrations() int {
	now := s.now()
	n := 0
	for _, reg := range s.regs {
		if reg.expires == 0 || now < reg.expires {
			n++
		}
	}
	return n
}

// noteRelay updates the decayed relay counter and reports whether the
// rate limiter admits one more relay now.
func (s *Server) noteRelay(now time.Duration) bool {
	if s.lastRelay != 0 {
		if dt := now - s.lastRelay; dt > 0 {
			s.relayLoad *= math.Exp(-float64(dt) / float64(time.Second))
		}
	}
	s.lastRelay = now
	if s.MaxRelayRate > 0 && s.relayLoad >= s.MaxRelayRate {
		return false
	}
	s.relayLoad++
	return true
}

func (s *Server) onPacket(pkt *netsim.Packet) {
	msg, err := hipwire.Parse(pkt.Payload)
	if err != nil || msg.Type != hipwire.I1 {
		s.Dropped++
		return
	}
	reg, ok := s.regs[msg.ReceiverHIT]
	if !ok {
		s.Dropped++
		return
	}
	now := s.now()
	if reg.expires != 0 && now >= reg.expires {
		// Lazy expiry: the host stopped refreshing. Drop the binding so
		// lookups stop relaying into a black hole and the initiator's
		// backoff (not our relays) paces its retries.
		delete(s.regs, msg.ReceiverHIT)
		s.Expired++
		s.Dropped++
		return
	}
	if !s.noteRelay(now) {
		s.Shed++
		s.Dropped++
		return
	}
	// Relay with FROM carrying the initiator's source address; the
	// responder replies to it directly, adding VIA_RVS.
	relayed := &hipwire.Packet{
		Type:        msg.Type,
		Controls:    msg.Controls,
		SenderHIT:   msg.SenderHIT,
		ReceiverHIT: msg.ReceiverHIT,
		Params:      msg.Params,
	}
	relayed.Add(hipwire.ParamFrom, hipwire.MarshalAddr(pkt.Src.Addr()))
	s.Relayed++
	s.node.SendRaw(netsim.ProtoHIP,
		netip.AddrPortFrom(s.node.Addr(), 0),
		netip.AddrPortFrom(reg.locator, 0),
		relayed.Marshal(), 0)
}
