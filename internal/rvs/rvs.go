// Package rvs implements a HIP rendezvous server (RFC 5204): mobile or
// freshly migrated hosts register their current locator; initiators send
// I1 packets to the stable rendezvous address, which relays them with a
// FROM parameter so the responder can answer the initiator directly. The
// rest of the base exchange bypasses the rendezvous point.
package rvs

import (
	"net/netip"

	"hipcloud/internal/hipwire"
	"hipcloud/internal/netsim"
)

// Server is a rendezvous middlebox on a public simulated node.
type Server struct {
	node *netsim.Node
	// registrations: HIT -> current locator.
	regs map[netip.Addr]netip.Addr
	// Relayed counts forwarded I1s; Dropped counts unservable ones.
	Relayed, Dropped uint64
}

// New starts a rendezvous server on node.
func New(node *netsim.Node) *Server {
	s := &Server{node: node, regs: make(map[netip.Addr]netip.Addr)}
	node.TapRaw(netsim.ProtoHIP, s.onPacket)
	return s
}

// Addr returns the rendezvous address initiators should target.
func (s *Server) Addr() netip.Addr { return s.node.Addr() }

// Register binds a HIT to its current locator (RFC 8003 registration is
// abstracted to this call; re-registration follows mobility).
func (s *Server) Register(hit, locator netip.Addr) { s.regs[hit] = locator }

// Unregister removes a HIT.
func (s *Server) Unregister(hit netip.Addr) { delete(s.regs, hit) }

// Registrations reports the number of registered HITs.
func (s *Server) Registrations() int { return len(s.regs) }

func (s *Server) onPacket(pkt *netsim.Packet) {
	msg, err := hipwire.Parse(pkt.Payload)
	if err != nil || msg.Type != hipwire.I1 {
		s.Dropped++
		return
	}
	locator, ok := s.regs[msg.ReceiverHIT]
	if !ok {
		s.Dropped++
		return
	}
	// Relay with FROM carrying the initiator's source address; the
	// responder replies to it directly, adding VIA_RVS.
	relayed := &hipwire.Packet{
		Type:        msg.Type,
		Controls:    msg.Controls,
		SenderHIT:   msg.SenderHIT,
		ReceiverHIT: msg.ReceiverHIT,
		Params:      msg.Params,
	}
	relayed.Add(hipwire.ParamFrom, hipwire.MarshalAddr(pkt.Src.Addr()))
	s.Relayed++
	s.node.SendRaw(netsim.ProtoHIP,
		netip.AddrPortFrom(s.node.Addr(), 0),
		netip.AddrPortFrom(locator, 0),
		relayed.Marshal(), 0)
}
