package rvs

import (
	"net/netip"
	"testing"
	"time"

	"hipcloud/internal/hip"
	"hipcloud/internal/hipsim"
	"hipcloud/internal/identity"
	"hipcloud/internal/netsim"
	"hipcloud/internal/simtcp"
)

var (
	idA = identity.MustGenerate(identity.AlgECDSA)
	idB = identity.MustGenerate(identity.AlgECDSA)
)

// world: initiator A, responder B, rendezvous R, all on one router.
func world(t *testing.T) (*netsim.Sim, *Server, *hipsim.Fabric, *hipsim.Fabric, *simtcp.Stack, *simtcp.Stack, *hipsim.Registry) {
	t.Helper()
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	r := n.AddRouter("core")
	a := n.AddNode("a", 2, 1)
	b := n.AddNode("b", 2, 1)
	rv := n.AddNode("rvs", 4, 4)
	must := netip.MustParseAddr
	n.Connect(a, must("10.0.1.1"), r, must("10.0.1.254"), netsim.Link{Latency: time.Millisecond})
	n.Connect(b, must("10.0.2.1"), r, must("10.0.2.254"), netsim.Link{Latency: time.Millisecond})
	n.Connect(rv, must("10.0.3.1"), r, must("10.0.3.254"), netsim.Link{Latency: time.Millisecond})
	a.AddDefaultRoute(must("10.0.1.254"))
	b.AddDefaultRoute(must("10.0.2.254"))
	rv.AddDefaultRoute(must("10.0.3.254"))

	srv := New(rv)
	reg := hipsim.NewRegistry()
	ha, _ := hip.NewHost(hip.Config{Identity: idA, Locator: a.Addr()})
	hb, _ := hip.NewHost(hip.Config{Identity: idB, Locator: b.Addr()})
	fa := hipsim.New(a, ha, reg)
	fb := hipsim.New(b, hb, reg)
	return s, srv, fa, fb, simtcp.NewStack(a, fa), simtcp.NewStack(b, fb), reg
}

func TestI1RelayCompletesBEX(t *testing.T) {
	s, srv, fa, fb, sa, sb, reg := world(t)
	// The initiator does NOT know B's real locator: the registry maps
	// B's HIT to the rendezvous address (what a HIP RR with an RVS field
	// resolves to).
	srv.Register(idB.HIT(), netip.MustParseAddr("10.0.2.1"))
	reg.Update(idB.HIT(), srv.Addr())

	l := sb.MustListen(80)
	s.Spawn("server", func(p *netsim.Proc) {
		c, err := l.Accept(p, 0)
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		n, _ := c.Read(p, buf)
		c.Write(p, buf[:n])
		c.Close()
	})
	var got []byte
	s.Spawn("client", func(p *netsim.Proc) {
		c, err := sa.Dial(p, idB.HIT(), 80, 10*time.Second)
		if err != nil {
			t.Errorf("dial via rvs: %v", err)
			return
		}
		c.Write(p, []byte("through rendezvous"))
		buf := make([]byte, 64)
		n, err := c.Read(p, buf)
		if err == nil {
			got = buf[:n]
		}
		c.Close()
	})
	s.Run(time.Minute)
	s.Shutdown()
	if string(got) != "through rendezvous" {
		t.Fatalf("got %q", got)
	}
	if srv.Relayed == 0 {
		t.Fatal("rendezvous relayed nothing")
	}
	// Data flows directly between A and B afterwards: the established
	// association's peer locator on A must be B's address, not the RVS.
	if assoc, ok := fa.Host().Association(idB.HIT()); !ok || assoc.PeerLocator != netip.MustParseAddr("10.0.2.1") {
		t.Fatalf("peer locator = %+v, want direct path", assoc)
	}
	_ = fb
}

func TestUnregisteredHITDropped(t *testing.T) {
	s, srv, _, _, sa, _, reg := world(t)
	reg.Update(idB.HIT(), srv.Addr()) // points at RVS, but B never registered
	var err error
	s.Spawn("client", func(p *netsim.Proc) {
		_, err = sa.Dial(p, idB.HIT(), 80, 3*time.Second)
	})
	s.Run(time.Minute)
	s.Shutdown()
	if err == nil {
		t.Fatal("dial succeeded despite unregistered HIT")
	}
	if srv.Dropped == 0 {
		t.Fatal("rvs did not account the drop")
	}
}

func TestReRegistrationFollowsMobility(t *testing.T) {
	s, srv, _, _, _, _, _ := world(t)
	srv.Register(idB.HIT(), netip.MustParseAddr("10.0.2.1"))
	if srv.Registrations() != 1 {
		t.Fatal("registration missing")
	}
	srv.Register(idB.HIT(), netip.MustParseAddr("10.0.9.1"))
	if srv.Registrations() != 1 {
		t.Fatal("re-registration duplicated")
	}
	srv.Unregister(idB.HIT())
	if srv.Registrations() != 0 {
		t.Fatal("unregister failed")
	}
	_ = s
}
