package rvs

import (
	"net/netip"
	"testing"
	"time"

	"hipcloud/internal/faults"
	"hipcloud/internal/hip"
	"hipcloud/internal/hipsim"
	"hipcloud/internal/hipwire"
	"hipcloud/internal/identity"
	"hipcloud/internal/netsim"
	"hipcloud/internal/simtcp"
)

var (
	idA = identity.MustGenerate(identity.AlgECDSA)
	idB = identity.MustGenerate(identity.AlgECDSA)
)

// world: initiator A, responder B, rendezvous R, all on one router.
func world(t *testing.T) (*netsim.Sim, *Server, *hipsim.Fabric, *hipsim.Fabric, *simtcp.Stack, *simtcp.Stack, *hipsim.Registry) {
	t.Helper()
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	r := n.AddRouter("core")
	a := n.AddNode("a", 2, 1)
	b := n.AddNode("b", 2, 1)
	rv := n.AddNode("rvs", 4, 4)
	must := netip.MustParseAddr
	n.Connect(a, must("10.0.1.1"), r, must("10.0.1.254"), netsim.Link{Latency: time.Millisecond})
	n.Connect(b, must("10.0.2.1"), r, must("10.0.2.254"), netsim.Link{Latency: time.Millisecond})
	n.Connect(rv, must("10.0.3.1"), r, must("10.0.3.254"), netsim.Link{Latency: time.Millisecond})
	a.AddDefaultRoute(must("10.0.1.254"))
	b.AddDefaultRoute(must("10.0.2.254"))
	rv.AddDefaultRoute(must("10.0.3.254"))

	srv := New(rv)
	reg := hipsim.NewRegistry()
	ha, _ := hip.NewHost(hip.Config{Identity: idA, Locator: a.Addr()})
	hb, _ := hip.NewHost(hip.Config{Identity: idB, Locator: b.Addr()})
	fa := hipsim.New(a, ha, reg)
	fb := hipsim.New(b, hb, reg)
	return s, srv, fa, fb, simtcp.NewStack(a, fa), simtcp.NewStack(b, fb), reg
}

func TestI1RelayCompletesBEX(t *testing.T) {
	s, srv, fa, fb, sa, sb, reg := world(t)
	// The initiator does NOT know B's real locator: the registry maps
	// B's HIT to the rendezvous address (what a HIP RR with an RVS field
	// resolves to).
	srv.Register(idB.HIT(), netip.MustParseAddr("10.0.2.1"))
	reg.Update(idB.HIT(), srv.Addr())

	l := sb.MustListen(80)
	s.Spawn("server", func(p *netsim.Proc) {
		c, err := l.Accept(p, 0)
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		n, _ := c.Read(p, buf)
		c.Write(p, buf[:n])
		c.Close()
	})
	var got []byte
	s.Spawn("client", func(p *netsim.Proc) {
		c, err := sa.Dial(p, idB.HIT(), 80, 10*time.Second)
		if err != nil {
			t.Errorf("dial via rvs: %v", err)
			return
		}
		c.Write(p, []byte("through rendezvous"))
		buf := make([]byte, 64)
		n, err := c.Read(p, buf)
		if err == nil {
			got = buf[:n]
		}
		c.Close()
	})
	s.Run(time.Minute)
	s.Shutdown()
	if string(got) != "through rendezvous" {
		t.Fatalf("got %q", got)
	}
	if srv.Relayed == 0 {
		t.Fatal("rendezvous relayed nothing")
	}
	// Data flows directly between A and B afterwards: the established
	// association's peer locator on A must be B's address, not the RVS.
	if assoc, ok := fa.Host().Association(idB.HIT()); !ok || assoc.PeerLocator != netip.MustParseAddr("10.0.2.1") {
		t.Fatalf("peer locator = %+v, want direct path", assoc)
	}
	_ = fb
}

func TestUnregisteredHITDropped(t *testing.T) {
	s, srv, _, _, sa, _, reg := world(t)
	reg.Update(idB.HIT(), srv.Addr()) // points at RVS, but B never registered
	var err error
	s.Spawn("client", func(p *netsim.Proc) {
		_, err = sa.Dial(p, idB.HIT(), 80, 3*time.Second)
	})
	s.Run(time.Minute)
	s.Shutdown()
	if err == nil {
		t.Fatal("dial succeeded despite unregistered HIT")
	}
	if srv.Dropped == 0 {
		t.Fatal("rvs did not account the drop")
	}
}

// stormWorld is world() keeping the raw node handles, for fault tests.
func stormWorld(t *testing.T) (*netsim.Sim, *Server, *hipsim.Fabric, *netsim.Node, *netsim.Node) {
	t.Helper()
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	r := n.AddRouter("core")
	a := n.AddNode("a", 2, 1)
	b := n.AddNode("b", 2, 1)
	rv := n.AddNode("rvs", 4, 4)
	must := netip.MustParseAddr
	n.Connect(a, must("10.0.1.1"), r, must("10.0.1.254"), netsim.Link{Latency: time.Millisecond})
	n.Connect(b, must("10.0.2.1"), r, must("10.0.2.254"), netsim.Link{Latency: time.Millisecond})
	n.Connect(rv, must("10.0.3.1"), r, must("10.0.3.254"), netsim.Link{Latency: time.Millisecond})
	a.AddDefaultRoute(must("10.0.1.254"))
	b.AddDefaultRoute(must("10.0.2.254"))
	rv.AddDefaultRoute(must("10.0.3.254"))
	srv := New(rv)
	ha, _ := hip.NewHost(hip.Config{Identity: idA, Locator: a.Addr()})
	fa := hipsim.New(a, ha, hipsim.NewRegistry())
	return s, srv, fa, a, b
}

// TestStaleRegistrationStopsRelayAfterTTL: a crashed responder stops
// refreshing its registration; once the TTL lapses the rendezvous stops
// relaying I1s into the black hole (lazy expiry), so a re-contact herd's
// retries die at the RVS instead of consuming the dead host's path.
func TestStaleRegistrationStopsRelayAfterTTL(t *testing.T) {
	s, srv, fa, _, b := stormWorld(t)
	srv.TTL = 2 * time.Second
	srv.Register(idB.HIT(), b.Addr()) // registered at t=0, expires t=2s
	inj := faults.New(s)
	inj.DownNode(b, 500*time.Millisecond, 0) // crash; never refreshes again

	var relayedAtExpiry uint64
	s.At(2100*time.Millisecond, func() { relayedAtExpiry = srv.Relayed })
	s.Spawn("client", func(p *netsim.Proc) {
		p.Sleep(time.Second)
		// The I1 (and its retransmits) target the RVS; the responder is
		// dead, so the BEX can only fail — what matters is where the
		// retries are refused.
		fa.EstablishAt(p, idB.HIT(), srv.Addr())
	})
	s.Run(15 * time.Second)
	s.Shutdown()

	if relayedAtExpiry == 0 {
		t.Fatal("no I1 relayed before the TTL lapsed")
	}
	if srv.Relayed != relayedAtExpiry {
		t.Fatalf("relays continued after TTL: %d then %d", relayedAtExpiry, srv.Relayed)
	}
	if srv.Expired == 0 {
		t.Fatal("no I1 accounted as expired after TTL")
	}
	if srv.Registrations() != 0 {
		t.Fatalf("stale registration still live: %d", srv.Registrations())
	}
}

// TestOnNodeDownUnregistersImmediately: the faults hook lets a controller
// that knows a host died clear its binding without waiting out the TTL.
func TestOnNodeDownUnregistersImmediately(t *testing.T) {
	s, srv, _, _, b := stormWorld(t)
	srv.TTL = time.Hour
	srv.Register(idB.HIT(), b.Addr())
	inj := faults.New(s)
	inj.OnNodeDown(func(n *netsim.Node) { srv.UnregisterLocator(n.Addr()) })
	inj.DownNode(b, 500*time.Millisecond, 0)
	s.Run(time.Second)
	s.Shutdown()
	if srv.Registrations() != 0 {
		t.Fatalf("crashed host still registered: %d", srv.Registrations())
	}
}

// TestRelayRateLimiterSheds: an I1 blast past MaxRelayRate is shed, not
// amplified into relays.
func TestRelayRateLimiterSheds(t *testing.T) {
	s, srv, _, a, b := stormWorld(t)
	srv.MaxRelayRate = 5
	srv.Register(idB.HIT(), b.Addr())
	i1 := (&hipwire.Packet{
		Type:        hipwire.I1,
		SenderHIT:   idA.HIT(),
		ReceiverHIT: idB.HIT(),
	}).Marshal()
	s.Spawn("blast", func(p *netsim.Proc) {
		for i := 0; i < 20; i++ {
			a.SendRaw(netsim.ProtoHIP,
				netip.AddrPortFrom(a.Addr(), 0),
				netip.AddrPortFrom(srv.Addr(), 0),
				append([]byte(nil), i1...), 0)
			p.Sleep(time.Millisecond)
		}
	})
	s.Run(time.Second)
	s.Shutdown()
	if srv.Shed == 0 {
		t.Fatal("rate limiter shed nothing under a 20-I1 blast")
	}
	if srv.Relayed > 6 {
		t.Fatalf("relayed %d I1s, want ≤ rate bound", srv.Relayed)
	}
	if srv.Relayed+srv.Shed != 20 {
		t.Fatalf("relayed %d + shed %d != 20", srv.Relayed, srv.Shed)
	}
}

func TestReRegistrationFollowsMobility(t *testing.T) {
	s, srv, _, _, _, _, _ := world(t)
	srv.Register(idB.HIT(), netip.MustParseAddr("10.0.2.1"))
	if srv.Registrations() != 1 {
		t.Fatal("registration missing")
	}
	srv.Register(idB.HIT(), netip.MustParseAddr("10.0.9.1"))
	if srv.Registrations() != 1 {
		t.Fatal("re-registration duplicated")
	}
	srv.Unregister(idB.HIT())
	if srv.Registrations() != 0 {
		t.Fatal("unregister failed")
	}
	_ = s
}
