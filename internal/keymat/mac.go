package keymat

import (
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"hash"
)

// MAC is a reusable keyed HMAC-SHA-256 state shared by the ESP data plane
// and the tlslite record layer. The keyed inner/outer pads are computed
// once at construction; every Sum afterwards reset-reuses the state, so
// the steady-state per-packet MAC cost is two compression runs and zero
// heap allocations (versus hmac.New + Sum(nil) per packet).
//
// A MAC is stateful scratch: it is not safe for concurrent use, and the
// slice returned by Sum aliases internal storage that the next Reset/Sum
// overwrites. Callers must copy the tag out (or compare in place) before
// reusing the MAC.
type MAC struct {
	h   hash.Hash
	sum [sha256.Size]byte
}

// NewMAC builds a reusable HMAC-SHA-256 over key. The first Reset/Sum
// cycle caches the keyed pad states; all later cycles are allocation-free.
func NewMAC(key []byte) *MAC {
	m := &MAC{h: hmac.New(sha256.New, key)}
	// Warm the state cache: the stdlib HMAC marshals its keyed inner and
	// outer digests on the first Sum+Reset so later cycles only restore
	// them. Doing it here keeps the first real packet off the slow path.
	m.h.Sum(m.sum[:0])
	m.h.Reset()
	return m
}

// Reset rewinds the MAC to its keyed initial state.
func (m *MAC) Reset() { m.h.Reset() }

// Write absorbs p into the MAC.
func (m *MAC) Write(p []byte) { m.h.Write(p) }

// Sum finalizes the MAC and returns the 32-byte digest. The result
// aliases internal scratch valid until the next Reset/Sum on this MAC.
func (m *MAC) Sum() []byte { return m.h.Sum(m.sum[:0]) }

// SumTrunc finalizes the MAC and returns its first n bytes (n <= 32),
// aliasing internal scratch like Sum.
func (m *MAC) SumTrunc(n int) []byte { return m.Sum()[:n] }

// VerifyTrunc finalizes the MAC and compares its n-byte truncation
// against tag in constant time.
func (m *MAC) VerifyTrunc(tag []byte, n int) bool {
	return hmac.Equal(tag, m.Sum()[:n])
}

// Zeroize drops the keyed state and wipes the digest scratch. The
// stdlib HMAC holds keyed pad copies internally that cannot be wiped
// portably; releasing the reference is the best that can be done for
// them. The MAC is unusable afterwards.
func (m *MAC) Zeroize() {
	m.h = nil
	m.sum = [sha256.Size]byte{}
}

// CTRScratch holds the counter and keystream blocks CTRXor works in.
// Embedding it in a long-lived owner (an SA, a connection) keeps the
// blocks off the per-packet heap: they must not live on CTRXor's own
// stack because they are passed through the cipher.Block interface,
// which forces them to escape.
type CTRScratch struct {
	ctr, ks [16]byte
}

// CTRXor applies AES-CTR keystream derived from block and iv to src,
// writing into dst (dst and src must either overlap entirely or not at
// all, and len(dst) >= len(src)). Unlike cipher.NewCTR it allocates no
// stream state, so per-packet encryption stays on the zero-allocation
// fast path; the counter is the big-endian increment of iv, matching
// cipher.NewCTR's layout so wire formats are unchanged.
func CTRXor(block cipher.Block, scratch *CTRScratch, iv *[16]byte, dst, src []byte) {
	scratch.ctr = *iv
	for len(src) > 0 {
		block.Encrypt(scratch.ks[:], scratch.ctr[:])
		n := len(src)
		if n > 16 {
			n = 16
		}
		for i := 0; i < n; i++ {
			dst[i] = src[i] ^ scratch.ks[i]
		}
		for i := 15; i >= 0; i-- {
			scratch.ctr[i]++
			if scratch.ctr[i] != 0 {
				break
			}
		}
		dst, src = dst[n:], src[n:]
	}
}
