package keymat

import "testing"

// Downgrade / offer-ordering matrix over the enlarged registry
// (ISSUE 10 satellite): Negotiate walks the responder's preference list
// and takes the first suite the initiator offered, so the OFFER's order
// must never matter and a legacy-only offer must never displace mutual
// AEAD support.
func TestNegotiateDowngradeMatrix(t *testing.T) {
	all := []Suite{
		SuiteAESGCM128, SuiteAESGCM256, SuiteChaCha20Poly1305,
		SuiteAESCTRSHA256, SuiteAESCBCSHA256, SuiteNullSHA256,
	}
	legacy := []Suite{SuiteAESCTRSHA256, SuiteAESCBCSHA256, SuiteNullSHA256}
	aead := []Suite{SuiteAESGCM128, SuiteAESGCM256, SuiteChaCha20Poly1305}

	cases := []struct {
		name  string
		offer []Suite
		prefs []Suite
		want  Suite
	}{
		// Mutual AEAD support: an attacker (or a sloppy peer) listing
		// legacy suites first in the offer must not win a downgrade —
		// responder preference decides.
		{"legacy-first offer, AEAD prefs", []Suite{SuiteNullSHA256, SuiteAESCBCSHA256, SuiteAESGCM128}, PreferredAEAD, SuiteAESGCM128},
		{"full offer reversed", []Suite{SuiteNullSHA256, SuiteAESCBCSHA256, SuiteAESCTRSHA256, SuiteChaCha20Poly1305, SuiteAESGCM256, SuiteAESGCM128}, PreferredAEAD, SuiteAESGCM128},
		{"chacha-only AEAD offered", []Suite{SuiteNullSHA256, SuiteChaCha20Poly1305}, PreferredAEAD, SuiteChaCha20Poly1305},
		{"gcm256-only AEAD offered", []Suite{SuiteAESCTRSHA256, SuiteAESGCM256}, PreferredAEAD, SuiteAESGCM256},
		// Genuine legacy-only peer: fall back, picking the responder's
		// best legacy suite.
		{"legacy-only offer vs AEAD prefs", legacy, PreferredAEAD, SuiteAESCTRSHA256},
		{"null-only offer vs AEAD prefs", []Suite{SuiteNullSHA256}, PreferredAEAD, SuiteNullSHA256},
		// 2012-era responder never picks a suite it does not know.
		{"AEAD-heavy offer vs legacy prefs", []Suite{SuiteAESGCM128, SuiteChaCha20Poly1305, SuiteAESCBCSHA256}, Preferred, SuiteAESCBCSHA256},
		// Unknown ids in the offer are skipped, not fatal.
		{"unknown ids interleaved", []Suite{Suite(77), SuiteAESGCM128, Suite(9999)}, PreferredAEAD, SuiteAESGCM128},
	}
	for _, tc := range cases {
		got, err := Negotiate(tc.offer, tc.prefs)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: negotiated %v, want %v", tc.name, got, tc.want)
		}
	}

	// Property sweep: for every single-suite offer drawn from the full
	// registry and every preference list that contains it, the outcome
	// is exactly that suite — offer ordering can never matter when the
	// intersection is a singleton.
	for _, s := range all {
		got, err := Negotiate([]Suite{s}, all)
		if err != nil || got != s {
			t.Errorf("singleton offer %v: got %v, %v", s, got, err)
		}
	}

	// No intersection → ErrUnknownSuite, never a silent pick.
	if _, err := Negotiate(aead, legacy); err != ErrUnknownSuite {
		t.Errorf("disjoint offer/prefs: err = %v, want ErrUnknownSuite", err)
	}
	if _, err := Negotiate(nil, PreferredAEAD); err != ErrUnknownSuite {
		t.Errorf("empty offer: err = %v, want ErrUnknownSuite", err)
	}
}

// The AEAD registry entries: key/salt lengths and classification.
func TestAEADSuiteRegistry(t *testing.T) {
	cases := []struct {
		s       Suite
		enc     int
		auth    int
		isAEAD  bool
		strName string
	}{
		{SuiteAESGCM128, 16, SaltLen, true, "AES-128-GCM"},
		{SuiteAESGCM256, 32, SaltLen, true, "AES-256-GCM"},
		{SuiteChaCha20Poly1305, 32, SaltLen, true, "CHACHA20-POLY1305"},
		{SuiteAESCTRSHA256, 16, 32, false, "AES-CTR-SHA256"},
		{SuiteAESCBCSHA256, 16, 32, false, "AES-CBC-SHA256"},
		{SuiteNullSHA256, 0, 32, false, "NULL-SHA256"},
	}
	for _, tc := range cases {
		e, err := tc.s.EncKeyLen()
		if err != nil || e != tc.enc {
			t.Errorf("%v EncKeyLen = %d, %v; want %d", tc.s, e, err, tc.enc)
		}
		a, err := tc.s.AuthKeyLen()
		if err != nil || a != tc.auth {
			t.Errorf("%v AuthKeyLen = %d, %v; want %d", tc.s, a, err, tc.auth)
		}
		if tc.s.IsAEAD() != tc.isAEAD {
			t.Errorf("%v IsAEAD = %v", tc.s, tc.s.IsAEAD())
		}
		if tc.s.String() != tc.strName {
			t.Errorf("%v String = %q", tc.s, tc.s.String())
		}
	}
	if Suite(12345).IsAEAD() {
		t.Error("unknown suite classified as AEAD")
	}
}

// DeriveAssociation / DeriveESPRekey work unchanged for AEAD suites: the
// 4-byte salt flows through the auth-key slot and rotates on rekey.
func TestDeriveAssociationAEAD(t *testing.T) {
	for _, s := range []Suite{SuiteAESGCM128, SuiteAESGCM256, SuiteChaCha20Poly1305} {
		ki := New([]byte("dh-secret"), hitI, hitR, 1, 2)
		kr := New([]byte("dh-secret"), hitI, hitR, 1, 2)
		ak, err := DeriveAssociation(ki, s, true)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		bk, err := DeriveAssociation(kr, s, false)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		encLen, _ := s.EncKeyLen()
		if len(ak.ESPEncOut) != encLen || len(ak.ESPAuthOut) != SaltLen {
			t.Fatalf("%v: key lengths %d/%d", s, len(ak.ESPEncOut), len(ak.ESPAuthOut))
		}
		if string(ak.ESPEncOut) != string(bk.ESPEncIn) || string(ak.ESPAuthOut) != string(bk.ESPAuthIn) {
			t.Fatalf("%v: directional keys do not mirror", s)
		}

		rk1, err := DeriveESPRekey(ki, s, true)
		if err != nil {
			t.Fatal(err)
		}
		rk2, err := DeriveESPRekey(kr, s, false)
		if err != nil {
			t.Fatal(err)
		}
		if string(rk1.ESPEncOut) != string(rk2.ESPEncIn) || string(rk1.ESPAuthOut) != string(rk2.ESPAuthIn) {
			t.Fatalf("%v: rekey keys do not mirror", s)
		}
		// The rekey must rotate both the key and the salt, or nonce
		// streams would collide across key generations.
		if string(rk1.ESPEncOut) == string(ak.ESPEncOut) {
			t.Fatalf("%v: rekey reused the encryption key", s)
		}
		if string(rk1.ESPAuthOut) == string(ak.ESPAuthOut) {
			t.Fatalf("%v: rekey reused the implicit-IV salt", s)
		}
	}
}
