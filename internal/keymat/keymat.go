// Package keymat implements HIP keying-material derivation (RFC 5201
// §6.5) and the cipher-suite registry shared by the HIP control plane,
// the ESP data plane and the TLS-like baseline.
//
// KEYMAT = K1 | K2 | ... with
//
//	K1 = H(Kij | sort(HIT-I|HIT-R) | I | J | 0x01)
//	Kn = H(Kij | Kn-1 | n)
//
// where Kij is the Diffie-Hellman shared secret and I, J come from the
// puzzle. Keys are drawn in order: HIP-lsg, HIP-gls integrity keys, then
// ESP encryption/integrity keys for each direction.
package keymat

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Suite identifies a symmetric protection suite (ESP transform / HIP
// cipher). Values follow the RFC 5202 ESP transform registry spirit.
type Suite uint16

// Supported suites. The 2012 transforms (CBC/CTR + HMAC) keep their
// original ids; the AEAD suites extend the registry without renumbering
// anything already on the wire.
const (
	SuiteReserved     Suite = 0
	SuiteAESCBCSHA256 Suite = 2 // AES-128-CBC + HMAC-SHA-256
	SuiteNullSHA256   Suite = 3 // NULL cipher + HMAC-SHA-256 (integrity only)
	SuiteAESCTRSHA256 Suite = 4 // AES-128-CTR + HMAC-SHA-256

	// Modern single-pass AEAD suites: encryption and integrity in one
	// keyed primitive, implicit nonces derived from the replay counter
	// (no HMAC key, no separate MAC pass).
	SuiteAESGCM128        Suite = 8  // AES-128-GCM
	SuiteAESGCM256        Suite = 9  // AES-256-GCM
	SuiteChaCha20Poly1305 Suite = 10 // ChaCha20-Poly1305 (RFC 8439)
)

func (s Suite) String() string {
	switch s {
	case SuiteAESCBCSHA256:
		return "AES-CBC-SHA256"
	case SuiteNullSHA256:
		return "NULL-SHA256"
	case SuiteAESCTRSHA256:
		return "AES-CTR-SHA256"
	case SuiteAESGCM128:
		return "AES-128-GCM"
	case SuiteAESGCM256:
		return "AES-256-GCM"
	case SuiteChaCha20Poly1305:
		return "CHACHA20-POLY1305"
	}
	return fmt.Sprintf("suite(%d)", uint16(s))
}

// ErrUnknownSuite is returned for unregistered suite ids.
var ErrUnknownSuite = errors.New("keymat: unknown cipher suite")

// ErrKeyLen is returned for a key of the wrong length. It is static by
// design: key-derived values (even lengths) stay out of error strings.
var ErrKeyLen = errors.New("keymat: wrong key length")

// IsAEAD reports whether the suite is a single-pass AEAD transform
// (implicit nonce from the sequence counter, tag instead of HMAC ICV).
func (s Suite) IsAEAD() bool {
	switch s {
	case SuiteAESGCM128, SuiteAESGCM256, SuiteChaCha20Poly1305:
		return true
	}
	return false
}

// EncKeyLen returns the encryption key length for the suite.
func (s Suite) EncKeyLen() (int, error) {
	switch s {
	case SuiteAESCBCSHA256, SuiteAESCTRSHA256, SuiteAESGCM128:
		return 16, nil
	case SuiteAESGCM256, SuiteChaCha20Poly1305:
		return 32, nil
	case SuiteNullSHA256:
		return 0, nil
	}
	return 0, ErrUnknownSuite
}

// AuthKeyLen returns the integrity key length for the suite. AEAD suites
// carry no HMAC key; their 4 "auth" bytes are the implicit-IV salt
// (RFC 4106/8750 style) drawn through the same KEYMAT slot, which keeps
// DeriveAssociation and DeriveESPRekey layout-compatible across the whole
// registry — a rekey rotates the salt together with the key, so nonce
// streams never collide across key generations.
func (s Suite) AuthKeyLen() (int, error) {
	switch s {
	case SuiteAESCBCSHA256, SuiteAESCTRSHA256, SuiteNullSHA256:
		return 32, nil
	case SuiteAESGCM128, SuiteAESGCM256, SuiteChaCha20Poly1305:
		return SaltLen, nil
	}
	return 0, ErrUnknownSuite
}

// SaltLen is the implicit-IV salt length for AEAD suites: the nonce is
// salt(4) || zero(4) || seq(4), unique per (key, sequence number).
const SaltLen = 4

// NonceLen is the AEAD nonce length (AES-GCM and ChaCha20-Poly1305 both
// take 96-bit nonces).
const NonceLen = 12

// TagLen is the AEAD authentication tag length.
const TagLen = 16

// Preferred is the default preference-ordered proposal list. It is
// deliberately the 2012 paper's transform set: the simulation experiments
// negotiate through it, and their golden tables pin its order. Modern
// deployments (the real-UDP drivers, the AEAD benchmarks) offer
// PreferredAEAD instead.
var Preferred = []Suite{SuiteAESCTRSHA256, SuiteAESCBCSHA256, SuiteNullSHA256}

// PreferredAEAD is the modern preference list: single-pass AEAD suites
// first, the legacy transforms retained for interop with 2012-only peers.
var PreferredAEAD = []Suite{
	SuiteAESGCM128, SuiteChaCha20Poly1305, SuiteAESGCM256,
	SuiteAESCTRSHA256, SuiteAESCBCSHA256, SuiteNullSHA256,
}

// Negotiate picks the first of the responder's preferences present in the
// initiator's offer (responder chooses, per RFC 5201).
func Negotiate(offer, prefs []Suite) (Suite, error) {
	for _, want := range prefs {
		for _, got := range offer {
			if got == want {
				return want, nil
			}
		}
	}
	return SuiteReserved, ErrUnknownSuite
}

// Keymat is a deterministic key stream derived from the base exchange.
type Keymat struct {
	kij   []byte
	hits  [32]byte // sorted concatenation of the two HITs
	ij    [16]byte
	prev  []byte // previous block Kn-1
	block uint8
	buf   bytes.Buffer
	drawn int
}

// New creates the key stream for the association. dhSecret is Kij; i and j
// come from the puzzle exchange.
func New(dhSecret []byte, hitI, hitR netip.Addr, i, j uint64) *Keymat {
	a, b := hitI.As16(), hitR.As16()
	// The key stream owns its copy of Kij (callers wipe theirs right
	// after New); exact-size, and the HIT concatenation is an inline
	// array — no growing appends.
	k := &Keymat{kij: make([]byte, len(dhSecret))}
	copy(k.kij, dhSecret)
	if bytes.Compare(a[:], b[:]) < 0 {
		copy(k.hits[:16], a[:])
		copy(k.hits[16:], b[:])
	} else {
		copy(k.hits[:16], b[:])
		copy(k.hits[16:], a[:])
	}
	binary.BigEndian.PutUint64(k.ij[0:], i)
	binary.BigEndian.PutUint64(k.ij[8:], j)
	return k
}

func (k *Keymat) extend() {
	h := sha256.New()
	h.Write(k.kij)
	if k.block == 0 {
		h.Write(k.hits[:])
		h.Write(k.ij[:])
		h.Write([]byte{1})
		k.block = 1
	} else {
		k.block++
		h.Write(k.prev)
		h.Write([]byte{k.block})
	}
	k.prev = h.Sum(nil)
	k.buf.Write(k.prev)
}

// Draw returns the next n bytes of keying material.
func (k *Keymat) Draw(n int) []byte {
	for k.buf.Len() < n {
		k.extend()
	}
	out := make([]byte, n)
	if _, err := k.buf.Read(out); err != nil {
		panic("keymat: internal buffer underflow: " + err.Error())
	}
	k.drawn += n
	return out
}

// Drawn reports total bytes drawn (the KEYMAT index).
func (k *Keymat) Drawn() int { return k.drawn }

// Zeroize overwrites b with zeros. Retired key material — an ECDH shared
// secret the KDF has consumed, keys displaced by a rekey, evicted
// session secrets — must be wiped before the last reference is dropped,
// or the plaintext lingers on the heap for as long as the allocator
// pleases (hiplint's secflow check enforces this on rekey/close paths).
func Zeroize(b []byte) {
	clear(b)
}

// Zeroize wipes the key stream's secret state: Kij, the chained block,
// and any drawn-but-unread stream bytes. The Keymat must not be used
// afterwards; an association drops its stream only at teardown.
func (k *Keymat) Zeroize() {
	clear(k.kij)
	clear(k.prev)
	k.ij = [16]byte{}
	clear(k.buf.Bytes())
	k.buf.Reset()
}

// ZeroizeESP wipes the four directional ESP keys, leaving the HIP
// control-plane keys intact: a rekey replaces only the data-plane keys
// and carries the control keys into the successor key set.
func (a *AssociationKeys) ZeroizeESP() {
	clear(a.ESPEncOut)
	clear(a.ESPAuthOut)
	clear(a.ESPEncIn)
	clear(a.ESPAuthIn)
}

// Zeroize wipes the full key set, control-plane keys included; for
// association teardown, where nothing is carried forward.
func (a *AssociationKeys) Zeroize() {
	a.ZeroizeESP()
	clear(a.HIPEncOut)
	clear(a.HIPEncIn)
	clear(a.HIPMacOut)
	clear(a.HIPMacIn)
}

// AssociationKeys is the full key set for one HIP association.
type AssociationKeys struct {
	Suite Suite
	// HIP control-plane encryption keys (ENCRYPTED parameter), one per
	// direction; drawn first, as in RFC 5201's KEYMAT order.
	HIPEncOut, HIPEncIn []byte
	// HIP control-plane integrity keys, one per direction.
	HIPMacOut, HIPMacIn []byte
	// ESP keys, one pair per direction.
	ESPEncOut, ESPAuthOut []byte
	ESPEncIn, ESPAuthIn   []byte
}

// DeriveAssociation draws the standard key layout. The initiator draws
// out-keys first; the responder mirrors by passing initiator=false so both
// sides agree on directionality (RFC 5201 draws HIP-I→R first).
func DeriveAssociation(k *Keymat, s Suite, initiator bool) (AssociationKeys, error) {
	encLen, err := s.EncKeyLen()
	if err != nil {
		return AssociationKeys{}, err
	}
	authLen, err := s.AuthKeyLen()
	if err != nil {
		return AssociationKeys{}, err
	}
	// Draw order (RFC 5201 §6.5): HIP I→R enc, HIP I→R mac, HIP R→I enc,
	// HIP R→I mac, then ESP I→R enc/auth, ESP R→I enc/auth.
	hipEncIR := k.Draw(16)
	macIR := k.Draw(32)
	hipEncRI := k.Draw(16)
	macRI := k.Draw(32)
	encIR := k.Draw(encLen)
	authIR := k.Draw(authLen)
	encRI := k.Draw(encLen)
	authRI := k.Draw(authLen)
	out := AssociationKeys{Suite: s}
	if initiator {
		out.HIPEncOut, out.HIPEncIn = hipEncIR, hipEncRI
		out.HIPMacOut, out.HIPMacIn = macIR, macRI
		out.ESPEncOut, out.ESPAuthOut = encIR, authIR
		out.ESPEncIn, out.ESPAuthIn = encRI, authRI
	} else {
		out.HIPEncOut, out.HIPEncIn = hipEncRI, hipEncIR
		out.HIPMacOut, out.HIPMacIn = macRI, macIR
		out.ESPEncOut, out.ESPAuthOut = encRI, authRI
		out.ESPEncIn, out.ESPAuthIn = encIR, authIR
	}
	return out, nil
}

// DeriveESPRekey draws a fresh set of ESP keys (leaving the HIP integrity
// keys untouched) for an RFC 5202 rekey. Both peers must call it at the
// same KEYMAT index; the initiator flag refers to the original base
// exchange roles so the directional assignment matches.
func DeriveESPRekey(k *Keymat, s Suite, initiator bool) (AssociationKeys, error) {
	encLen, err := s.EncKeyLen()
	if err != nil {
		return AssociationKeys{}, err
	}
	authLen, err := s.AuthKeyLen()
	if err != nil {
		return AssociationKeys{}, err
	}
	encIR := k.Draw(encLen)
	authIR := k.Draw(authLen)
	encRI := k.Draw(encLen)
	authRI := k.Draw(authLen)
	out := AssociationKeys{Suite: s}
	if initiator {
		out.ESPEncOut, out.ESPAuthOut = encIR, authIR
		out.ESPEncIn, out.ESPAuthIn = encRI, authRI
	} else {
		out.ESPEncOut, out.ESPAuthOut = encRI, authRI
		out.ESPEncIn, out.ESPAuthIn = encIR, authIR
	}
	return out, nil
}
