package keymat

// In-repo ChaCha20-Poly1305 (RFC 8439). The module is stdlib-only by
// policy, so the construction is implemented here rather than pulled
// from x/crypto: the ChaCha20 block function feeds both the keystream
// and the one-time Poly1305 key (block counter 0), and the tag covers
// aad || pad16 || ciphertext || pad16 || le64(len(aad)) || le64(len(ct)).
// Poly1305 runs on 64-bit limbs via math/bits; the tag comparison is
// constant time.

import (
	"crypto/subtle"
	"encoding/binary"
	"math/bits"
)

// ChaChaPoly is a ChaCha20-Poly1305 AEAD instance. The struct owns all
// scratch it needs, so Seal/Open allocate nothing beyond what the caller
// hands in.
type ChaChaPoly struct {
	key   [8]uint32 // key words, little-endian
	block [64]byte  // one-block keystream / one-time-key scratch
}

// NewChaChaPoly builds the AEAD from a 32-byte key.
func NewChaChaPoly(key []byte) (*ChaChaPoly, error) {
	if len(key) != 32 {
		return nil, ErrKeyLen
	}
	c := &ChaChaPoly{}
	for i := range c.key {
		c.key[i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	return c, nil
}

// Zeroize wipes the key schedule and the keystream scratch.
func (c *ChaChaPoly) Zeroize() {
	c.key = [8]uint32{}
	c.block = [64]byte{}
}

// Seal appends ciphertext||tag to dst. In-place operation (dst =
// region[:0] aliasing plaintext) is supported.
func (c *ChaChaPoly) Seal(dst []byte, nonce *[NonceLen]byte, plaintext, aad []byte) []byte {
	ret, out := sliceForAppend(dst, len(plaintext)+TagLen)
	ct := out[:len(plaintext)]
	c.xorKeyStream(ct, plaintext, nonce)
	var tag [TagLen]byte
	c.tag(&tag, nonce, ct, aad)
	copy(out[len(plaintext):], tag[:])
	return ret
}

// Open verifies the trailing tag in constant time and, on success,
// appends the plaintext to dst. The ciphertext is not decrypted on tag
// mismatch. In-place operation is supported.
func (c *ChaChaPoly) Open(dst []byte, nonce *[NonceLen]byte, ciphertext, aad []byte) ([]byte, error) {
	if len(ciphertext) < TagLen {
		return nil, ErrAuthFailed
	}
	ct := ciphertext[:len(ciphertext)-TagLen]
	var want [TagLen]byte
	c.tag(&want, nonce, ct, aad)
	if subtle.ConstantTimeCompare(want[:], ciphertext[len(ct):]) != 1 {
		return nil, ErrAuthFailed
	}
	ret, out := sliceForAppend(dst, len(ct))
	c.xorKeyStream(out, ct, nonce)
	return ret, nil
}

// tag computes the Poly1305 tag over the RFC 8439 AEAD layout. The
// one-time key is the first 32 bytes of keystream block 0.
func (c *ChaChaPoly) tag(out *[TagLen]byte, nonce *[NonceLen]byte, ct, aad []byte) {
	c.chachaBlock(0, nonce, &c.block)
	var p poly1305
	p.init(&c.block)
	p.segment(aad)
	p.segment(ct)
	p.addBlock(uint64(len(aad)), uint64(len(ct)))
	p.finish(out)
	// The one-time key sits in the shared scratch; clear it so it does
	// not outlive the packet (Seal overwrote it with keystream already
	// when the payload is non-empty, but not for empty payloads).
	c.block = [64]byte{}
}

// xorKeyStream XORs src into dst under the keystream starting at block
// counter 1 (counter 0 is reserved for the one-time Poly1305 key).
// Exact aliasing of dst and src is allowed.
func (c *ChaChaPoly) xorKeyStream(dst, src []byte, nonce *[NonceLen]byte) {
	counter := uint32(1)
	for len(src) > 0 {
		c.chachaBlock(counter, nonce, &c.block)
		counter++
		n := len(src)
		if n > len(c.block) {
			n = len(c.block)
		}
		subtle.XORBytes(dst[:n], src[:n], c.block[:n])
		dst = dst[n:]
		src = src[n:]
	}
}

// chachaBlock writes one 64-byte keystream block for the given counter.
func (c *ChaChaPoly) chachaBlock(counter uint32, nonce *[NonceLen]byte, out *[64]byte) {
	const c0, c1, c2, c3 = 0x61707865, 0x3320646e, 0x79622d32, 0x6b206574 // "expand 32-byte k"
	n0 := binary.LittleEndian.Uint32(nonce[0:4])
	n1 := binary.LittleEndian.Uint32(nonce[4:8])
	n2 := binary.LittleEndian.Uint32(nonce[8:12])

	x0, x1, x2, x3 := uint32(c0), uint32(c1), uint32(c2), uint32(c3)
	x4, x5, x6, x7 := c.key[0], c.key[1], c.key[2], c.key[3]
	x8, x9, x10, x11 := c.key[4], c.key[5], c.key[6], c.key[7]
	x12, x13, x14, x15 := counter, n0, n1, n2

	for i := 0; i < 10; i++ {
		// Column round.
		x0, x4, x8, x12 = chachaQR(x0, x4, x8, x12)
		x1, x5, x9, x13 = chachaQR(x1, x5, x9, x13)
		x2, x6, x10, x14 = chachaQR(x2, x6, x10, x14)
		x3, x7, x11, x15 = chachaQR(x3, x7, x11, x15)
		// Diagonal round.
		x0, x5, x10, x15 = chachaQR(x0, x5, x10, x15)
		x1, x6, x11, x12 = chachaQR(x1, x6, x11, x12)
		x2, x7, x8, x13 = chachaQR(x2, x7, x8, x13)
		x3, x4, x9, x14 = chachaQR(x3, x4, x9, x14)
	}

	binary.LittleEndian.PutUint32(out[0:], x0+c0)
	binary.LittleEndian.PutUint32(out[4:], x1+c1)
	binary.LittleEndian.PutUint32(out[8:], x2+c2)
	binary.LittleEndian.PutUint32(out[12:], x3+c3)
	binary.LittleEndian.PutUint32(out[16:], x4+c.key[0])
	binary.LittleEndian.PutUint32(out[20:], x5+c.key[1])
	binary.LittleEndian.PutUint32(out[24:], x6+c.key[2])
	binary.LittleEndian.PutUint32(out[28:], x7+c.key[3])
	binary.LittleEndian.PutUint32(out[32:], x8+c.key[4])
	binary.LittleEndian.PutUint32(out[36:], x9+c.key[5])
	binary.LittleEndian.PutUint32(out[40:], x10+c.key[6])
	binary.LittleEndian.PutUint32(out[44:], x11+c.key[7])
	binary.LittleEndian.PutUint32(out[48:], x12+counter)
	binary.LittleEndian.PutUint32(out[52:], x13+n0)
	binary.LittleEndian.PutUint32(out[56:], x14+n1)
	binary.LittleEndian.PutUint32(out[60:], x15+n2)
}

// chachaQR is the ChaCha quarter round; small enough for the compiler
// to inline into the unrolled double round above.
func chachaQR(a, b, cc, d uint32) (uint32, uint32, uint32, uint32) {
	a += b
	d ^= a
	d = bits.RotateLeft32(d, 16)
	cc += d
	b ^= cc
	b = bits.RotateLeft32(b, 12)
	a += b
	d ^= a
	d = bits.RotateLeft32(d, 8)
	cc += d
	b ^= cc
	b = bits.RotateLeft32(b, 7)
	return a, b, cc, d
}

// poly1305 is the one-time authenticator, 64-bit-limb arithmetic over
// 2^130 - 5. State lives on the caller's stack; nothing escapes.
type poly1305 struct {
	r [2]uint64 // clamped r
	s [2]uint64
	h [3]uint64 // accumulator, h2 holds the bits above 2^128
}

// init loads and clamps r||s from the first 32 bytes of the one-time
// key block and resets the accumulator.
func (p *poly1305) init(key *[64]byte) {
	p.r[0] = binary.LittleEndian.Uint64(key[0:8]) & 0x0FFFFFFC0FFFFFFF
	p.r[1] = binary.LittleEndian.Uint64(key[8:16]) & 0x0FFFFFFC0FFFFFFC
	p.s[0] = binary.LittleEndian.Uint64(key[16:24])
	p.s[1] = binary.LittleEndian.Uint64(key[24:32])
	p.h = [3]uint64{}
}

// segment absorbs data, zero-padding the final partial block to 16
// bytes as the RFC 8439 AEAD layout requires (pad16): every absorbed
// block is therefore a full block with the 2^128 bit set.
func (p *poly1305) segment(data []byte) {
	for len(data) >= 16 {
		p.addBlock(
			binary.LittleEndian.Uint64(data[0:8]),
			binary.LittleEndian.Uint64(data[8:16]),
		)
		data = data[16:]
	}
	if len(data) > 0 {
		var buf [16]byte
		copy(buf[:], data)
		p.addBlock(
			binary.LittleEndian.Uint64(buf[0:8]),
			binary.LittleEndian.Uint64(buf[8:16]),
		)
	}
}

// addBlock folds one 16-byte block (as two little-endian limbs, with
// the implicit 2^128 bit) into the accumulator: h = (h + m) * r mod p.
func (p *poly1305) addBlock(lo, hi uint64) {
	h0, h1, h2 := p.h[0], p.h[1], p.h[2]
	r0, r1 := p.r[0], p.r[1]

	var c uint64
	h0, c = bits.Add64(h0, lo, 0)
	h1, c = bits.Add64(h1, hi, c)
	h2 += c + 1 // the 2^128 block bit

	// Schoolbook multiply of the ~130-bit h by the clamped ~124-bit r.
	// h2 stays below 8 after reduction, so its partial products fit in
	// a single limb each.
	m0hi, m0lo := bits.Mul64(h0, r0)
	m1ahi, m1alo := bits.Mul64(h1, r0)
	m1bhi, m1blo := bits.Mul64(h0, r1)
	m2ahi, m2alo := bits.Mul64(h1, r1)
	m2b := h2 * r0
	m3 := h2 * r1

	m1lo, c := bits.Add64(m1alo, m1blo, 0)
	m1hi, _ := bits.Add64(m1ahi, m1bhi, c)
	m2lo, c := bits.Add64(m2alo, m2b, 0)
	m2hi := m2ahi + c

	t0 := m0lo
	t1, c := bits.Add64(m1lo, m0hi, 0)
	t2, c := bits.Add64(m2lo, m1hi, c)
	t3, _ := bits.Add64(m3, m2hi, c)

	// Reduce mod 2^130 - 5: the value above bit 130 re-enters times 5
	// (cc is that value left-aligned at bit 2, so 5*v = cc + cc>>2).
	h0, h1, h2 = t0, t1, t2&3
	ccLo, ccHi := t2&^uint64(3), t3
	h0, c = bits.Add64(h0, ccLo, 0)
	h1, c = bits.Add64(h1, ccHi, c)
	h2 += c
	ccLo = ccLo>>2 | ccHi<<62
	ccHi >>= 2
	h0, c = bits.Add64(h0, ccLo, 0)
	h1, c = bits.Add64(h1, ccHi, c)
	h2 += c

	p.h[0], p.h[1], p.h[2] = h0, h1, h2
}

// finish reduces the accumulator fully, adds s, and writes the tag.
func (p *poly1305) finish(out *[TagLen]byte) {
	h0, h1, h2 := p.h[0], p.h[1], p.h[2]

	// Constant-time conditional subtraction of p = 2^130 - 5.
	t0, b := bits.Sub64(h0, 0xFFFFFFFFFFFFFFFB, 0)
	t1, b := bits.Sub64(h1, 0xFFFFFFFFFFFFFFFF, b)
	_, b = bits.Sub64(h2, 3, b)
	// b == 1 means h < p: keep h; otherwise take h - p.
	keep := b - 1 // 0x00..0 when h < p, 0xFF..F when h >= p
	h0 = (t0 & keep) | (h0 &^ keep)
	h1 = (t1 & keep) | (h1 &^ keep)

	var c uint64
	h0, c = bits.Add64(h0, p.s[0], 0)
	h1, _ = bits.Add64(h1, p.s[1], c)
	binary.LittleEndian.PutUint64(out[0:8], h0)
	binary.LittleEndian.PutUint64(out[8:16], h1)
}
