package keymat

import (
	"bytes"
	"encoding/hex"
	"testing"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex: %v", err)
	}
	return b
}

// RFC 8439 §2.8.2: the full AEAD construction test vector.
func TestChaChaPolyRFC8439Vector(t *testing.T) {
	key := unhex(t, "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
	var nonce [NonceLen]byte
	copy(nonce[:], unhex(t, "070000004041424344454647"))
	aad := unhex(t, "50515253c0c1c2c3c4c5c6c7")
	plaintext := []byte("Ladies and Gentlemen of the class of '99: If I could offer you " +
		"only one tip for the future, sunscreen would be it.")
	wantCT := unhex(t, "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5"+
		"a736ee62d63dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd"+
		"3b3692ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc3f"+
		"f4def08e4b7a9de576d26586cec64b6116")
	wantTag := unhex(t, "1ae10b594f09e26a7e902ecbd0600691")

	c, err := NewChaChaPoly(key)
	if err != nil {
		t.Fatal(err)
	}
	sealed := c.Seal(nil, &nonce, plaintext, aad)
	if !bytes.Equal(sealed[:len(plaintext)], wantCT) {
		t.Fatalf("ciphertext mismatch:\n got %x\nwant %x", sealed[:len(plaintext)], wantCT)
	}
	if !bytes.Equal(sealed[len(plaintext):], wantTag) {
		t.Fatalf("tag mismatch: got %x want %x", sealed[len(plaintext):], wantTag)
	}

	opened, err := c.Open(nil, &nonce, sealed, aad)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if !bytes.Equal(opened, plaintext) {
		t.Fatal("round-trip mismatch")
	}
}

// RFC 8439 §2.6.2: the Poly1305 one-time key derived from ChaCha20
// block 0 (exercises the block function and init clamping together).
func TestChaChaPolyOneTimeKeyVector(t *testing.T) {
	key := unhex(t, "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
	var nonce [NonceLen]byte
	copy(nonce[:], unhex(t, "000000000001020304050607"))
	want := unhex(t, "8ad5a08b905f81cc815040274ab29471a833b637e3fd0da508dbb8e2fdd1a646")

	c, err := NewChaChaPoly(key)
	if err != nil {
		t.Fatal(err)
	}
	var block [64]byte
	c.chachaBlock(0, &nonce, &block)
	if !bytes.Equal(block[:32], want) {
		t.Fatalf("one-time key mismatch:\n got %x\nwant %x", block[:32], want)
	}
}

func TestChaChaPolyRejectsTamper(t *testing.T) {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i)
	}
	c, err := NewChaChaPoly(key)
	if err != nil {
		t.Fatal(err)
	}
	var nonce [NonceLen]byte
	pt := []byte("attack at dawn")
	aad := []byte("hdr")
	sealed := c.Seal(nil, &nonce, pt, aad)

	for i := range sealed {
		mut := bytes.Clone(sealed)
		mut[i] ^= 0x40
		if _, err := c.Open(nil, &nonce, mut, aad); err == nil {
			t.Fatalf("accepted ciphertext with byte %d flipped", i)
		}
	}
	if _, err := c.Open(nil, &nonce, sealed, []byte("hdr!")); err == nil {
		t.Fatal("accepted wrong aad")
	}
	if _, err := c.Open(nil, &nonce, sealed[:TagLen-1], aad); err == nil {
		t.Fatal("accepted short ciphertext")
	}
}

func TestChaChaPolyEmptyPlaintext(t *testing.T) {
	key := make([]byte, 32)
	c, err := NewChaChaPoly(key)
	if err != nil {
		t.Fatal(err)
	}
	var nonce [NonceLen]byte
	sealed := c.Seal(nil, &nonce, nil, []byte("aad only"))
	if len(sealed) != TagLen {
		t.Fatalf("sealed length %d, want %d", len(sealed), TagLen)
	}
	out, err := c.Open(nil, &nonce, sealed, []byte("aad only"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("opened %d bytes, want 0", len(out))
	}
}

// AEAD in-place operation: dst = region[:0] aliasing the input, the
// pattern the ESP fast path relies on.
func TestAEADInPlace(t *testing.T) {
	for _, s := range []Suite{SuiteAESGCM128, SuiteAESGCM256, SuiteChaCha20Poly1305} {
		t.Run(s.String(), func(t *testing.T) {
			kl, _ := s.EncKeyLen()
			key := make([]byte, kl)
			for i := range key {
				key[i] = byte(i + 1)
			}
			a, err := NewAEADCipher(s, key)
			if err != nil {
				t.Fatal(err)
			}
			var nonce [NonceLen]byte
			nonce[11] = 7
			pt := []byte("in-place payload 0123456789abcdef")
			aad := []byte{0xde, 0xad}

			region := make([]byte, len(pt), len(pt)+TagLen)
			copy(region, pt)
			sealed := a.Seal(region[:0], &nonce, region, aad)
			if &sealed[0] != &region[0] {
				t.Fatal("seal did not operate in place")
			}
			ref := a.Seal(nil, &nonce, pt, aad)
			if !bytes.Equal(sealed, ref) {
				t.Fatal("in-place seal differs from append seal")
			}

			opened, err := a.Open(sealed[:0], &nonce, sealed, aad)
			if err != nil {
				t.Fatal(err)
			}
			if &opened[0] != &region[0] {
				t.Fatal("open did not operate in place")
			}
			if !bytes.Equal(opened, pt) {
				t.Fatal("in-place open mismatch")
			}
		})
	}
}

func TestAEADSealOpenZeroAlloc(t *testing.T) {
	for _, s := range []Suite{SuiteAESGCM128, SuiteAESGCM256, SuiteChaCha20Poly1305} {
		t.Run(s.String(), func(t *testing.T) {
			kl, _ := s.EncKeyLen()
			key := make([]byte, kl)
			a, err := NewAEADCipher(s, key)
			if err != nil {
				t.Fatal(err)
			}
			nonce := new([NonceLen]byte)
			pt := make([]byte, 1400)
			buf := make([]byte, 0, len(pt)+TagLen)
			aad := make([]byte, 8)

			sealAllocs := testing.AllocsPerRun(100, func() {
				nonce[11]++
				buf = a.Seal(buf[:0], nonce, pt, aad)
			})
			if sealAllocs != 0 {
				t.Fatalf("Seal allocates %.1f per op, want 0", sealAllocs)
			}

			nonce[11]++
			sealed := a.Seal(nil, nonce, pt, aad)
			out := make([]byte, 0, len(pt))
			openAllocs := testing.AllocsPerRun(100, func() {
				var err error
				out, err = a.Open(out[:0], nonce, sealed, aad)
				if err != nil {
					t.Fatal(err)
				}
			})
			if openAllocs != 0 {
				t.Fatalf("Open allocates %.1f per op, want 0", openAllocs)
			}
		})
	}
}

func TestNewAEADCipherErrors(t *testing.T) {
	if _, err := NewAEADCipher(SuiteAESCTRSHA256, make([]byte, 16)); err == nil {
		t.Fatal("non-AEAD suite accepted")
	}
	if _, err := NewAEADCipher(SuiteAESGCM128, make([]byte, 17)); err == nil {
		t.Fatal("wrong GCM key length accepted")
	}
	if _, err := NewChaChaPoly(make([]byte, 16)); err == nil {
		t.Fatal("wrong chacha key length accepted")
	}
}

func BenchmarkSealChaCha20Poly1305_1400(b *testing.B) {
	benchAEADSeal(b, SuiteChaCha20Poly1305)
}

func BenchmarkSealAESGCM128_1400(b *testing.B) {
	benchAEADSeal(b, SuiteAESGCM128)
}

func benchAEADSeal(b *testing.B, s Suite) {
	kl, _ := s.EncKeyLen()
	a, err := NewAEADCipher(s, make([]byte, kl))
	if err != nil {
		b.Fatal(err)
	}
	nonce := new([NonceLen]byte)
	pt := make([]byte, 1400)
	buf := make([]byte, 0, len(pt)+TagLen)
	aad := make([]byte, 8)
	b.SetBytes(int64(len(pt)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nonce[11] = byte(i)
		buf = a.Seal(buf[:0], nonce, pt, aad)
	}
}
