package keymat

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"testing"
)

func TestMACMatchesStdlib(t *testing.T) {
	key := []byte("0123456789abcdef0123456789abcdef")
	m := NewMAC(key)
	for _, msg := range [][]byte{nil, []byte("a"), bytes.Repeat([]byte{0x5c}, 200)} {
		m.Reset()
		m.Write(msg)
		got := m.Sum()
		ref := hmac.New(sha256.New, key)
		ref.Write(msg)
		want := ref.Sum(nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("MAC mismatch for %d-byte message", len(msg))
		}
		m.Reset()
		m.Write(msg)
		if !m.VerifyTrunc(want[:16], 16) {
			t.Fatal("VerifyTrunc rejected a valid tag")
		}
		m.Reset()
		m.Write(msg)
		bad := append([]byte(nil), want[:16]...)
		bad[0] ^= 1
		if m.VerifyTrunc(bad, 16) {
			t.Fatal("VerifyTrunc accepted a corrupted tag")
		}
	}
}

func TestMACZeroAllocSteadyState(t *testing.T) {
	m := NewMAC([]byte("0123456789abcdef0123456789abcdef"))
	msg := bytes.Repeat([]byte{7}, 1400)
	// One full cycle to settle any lazy state caching.
	m.Reset()
	m.Write(msg)
	m.Sum()
	allocs := testing.AllocsPerRun(100, func() {
		m.Reset()
		m.Write(msg)
		m.Sum()
	})
	if allocs != 0 {
		t.Fatalf("MAC cycle allocates %v times per run, want 0", allocs)
	}
}

func TestCTRXorMatchesStdlib(t *testing.T) {
	key := []byte("0123456789abcdef")
	block, err := aes.NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	iv := [16]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xfe}
	for _, n := range []int{0, 1, 15, 16, 17, 64, 1400, 1441} {
		src := bytes.Repeat([]byte{0xA5}, n)
		want := make([]byte, n)
		cipher.NewCTR(block, iv[:]).XORKeyStream(want, src)
		var scratch CTRScratch
		got := make([]byte, n)
		ivCopy := iv
		CTRXor(block, &scratch, &ivCopy, got, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("CTRXor mismatch at len %d (counter carry case)", n)
		}
		// In-place operation must give the same result.
		inPlace := append([]byte(nil), src...)
		ivCopy = iv
		CTRXor(block, &scratch, &ivCopy, inPlace, inPlace)
		if !bytes.Equal(inPlace, want) {
			t.Fatalf("in-place CTRXor mismatch at len %d", n)
		}
	}
}

func TestCTRXorZeroAlloc(t *testing.T) {
	block, _ := aes.NewCipher([]byte("0123456789abcdef"))
	buf := make([]byte, 1400)
	scratch := new(CTRScratch)
	allocs := testing.AllocsPerRun(100, func() {
		var iv [16]byte
		iv[15] = 1
		CTRXor(block, scratch, &iv, buf, buf)
	})
	if allocs != 0 {
		t.Fatalf("CTRXor allocates %v times per run, want 0", allocs)
	}
}
