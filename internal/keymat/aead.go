package keymat

import (
	"crypto/aes"
	"crypto/cipher"
	"errors"
)

// ErrAuthFailed is returned when an AEAD tag does not verify.
var ErrAuthFailed = errors.New("keymat: aead authentication failed")

// AEAD is the single-pass seal/open primitive behind the modern suites.
// It mirrors cipher.AEAD but takes the nonce as a fixed-size array
// pointer so callers can keep one nonce scratch in their SA state and
// never force a per-packet heap escape, and it adds Zeroize for the
// secret-hygiene contract (DESIGN.md §5a).
//
// Both Seal and Open append to dst and support fully in-place operation:
// pass region[:0] as dst where region aliases the plaintext/ciphertext.
type AEAD interface {
	// Seal appends ciphertext||tag to dst and returns the extended slice.
	Seal(dst []byte, nonce *[NonceLen]byte, plaintext, aad []byte) []byte
	// Open verifies the trailing tag of ciphertext in constant time and,
	// only on success, appends the plaintext to dst. The tag is checked
	// before any plaintext is produced.
	Open(dst []byte, nonce *[NonceLen]byte, ciphertext, aad []byte) ([]byte, error)
	// Zeroize wipes any key material the implementation retains.
	Zeroize()
}

// NewAEADCipher builds the AEAD for an AEAD suite from its encryption
// key (EncKeyLen bytes). The 4-byte salt drawn through the AuthKeyLen
// slot is the caller's to mix into nonces; it is not part of the cipher
// state.
func NewAEADCipher(s Suite, key []byte) (AEAD, error) {
	switch s {
	case SuiteAESGCM128, SuiteAESGCM256:
		want, _ := s.EncKeyLen()
		if len(key) != want {
			// Static error: a key-derived length (or the negotiated suite of
			// a secret-bearing session) must never reach a format verb.
			return nil, ErrKeyLen
		}
		block, err := aes.NewCipher(key)
		if err != nil {
			return nil, err
		}
		g, err := cipher.NewGCM(block)
		if err != nil {
			return nil, err
		}
		return &gcmAEAD{g: g}, nil
	case SuiteChaCha20Poly1305:
		return NewChaChaPoly(key)
	}
	return nil, ErrUnknownSuite
}

// gcmAEAD adapts the stdlib GCM implementation (hardware AES-NI/PMULL
// where available) to the AEAD interface.
type gcmAEAD struct {
	g cipher.AEAD
}

func (a *gcmAEAD) Seal(dst []byte, nonce *[NonceLen]byte, plaintext, aad []byte) []byte {
	return a.g.Seal(dst, nonce[:], plaintext, aad)
}

func (a *gcmAEAD) Open(dst []byte, nonce *[NonceLen]byte, ciphertext, aad []byte) ([]byte, error) {
	out, err := a.g.Open(dst, nonce[:], ciphertext, aad)
	if err != nil {
		// Collapse the stdlib sentinel so callers see one failure mode
		// across all suites.
		return nil, ErrAuthFailed
	}
	return out, nil
}

// Zeroize drops the cipher reference. The stdlib AES block keeps its
// expanded key schedule in unexported state we cannot wipe; the raw key
// bytes themselves live in AssociationKeys and are wiped by ZeroizeESP /
// Zeroize on the retire paths.
func (a *gcmAEAD) Zeroize() {
	a.g = nil
}

// sliceForAppend extends in by n bytes, reusing capacity when it can,
// and returns the full slice plus the appended region.
func sliceForAppend(in []byte, n int) (head, tail []byte) {
	if total := len(in) + n; cap(in) >= total {
		head = in[:total]
	} else {
		head = make([]byte, total)
		copy(head, in)
	}
	tail = head[len(in):]
	return
}
