package keymat

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	hitI = netip.MustParseAddr("2001:10::1")
	hitR = netip.MustParseAddr("2001:10::2")
)

func TestDeterministic(t *testing.T) {
	secret := []byte("shared-dh-secret")
	a := New(secret, hitI, hitR, 1, 2)
	b := New(secret, hitI, hitR, 1, 2)
	if !bytes.Equal(a.Draw(100), b.Draw(100)) {
		t.Fatal("same inputs produced different keymat")
	}
}

func TestHITOrderIndependent(t *testing.T) {
	secret := []byte("shared-dh-secret")
	a := New(secret, hitI, hitR, 1, 2)
	b := New(secret, hitR, hitI, 1, 2) // swapped: both peers must agree
	if !bytes.Equal(a.Draw(64), b.Draw(64)) {
		t.Fatal("keymat depends on HIT argument order")
	}
}

func TestDifferentInputsDiverge(t *testing.T) {
	base := New([]byte("secret"), hitI, hitR, 1, 2).Draw(32)
	cases := map[string]*Keymat{
		"secret":  New([]byte("Secret"), hitI, hitR, 1, 2),
		"puzzleI": New([]byte("secret"), hitI, hitR, 9, 2),
		"puzzleJ": New([]byte("secret"), hitI, hitR, 1, 9),
		"hits":    New([]byte("secret"), hitI, netip.MustParseAddr("2001:10::3"), 1, 2),
	}
	for name, k := range cases {
		if bytes.Equal(base, k.Draw(32)) {
			t.Errorf("%s: keymat did not change", name)
		}
	}
}

func TestDrawAcrossBlockBoundaries(t *testing.T) {
	k := New([]byte("s"), hitI, hitR, 0, 0)
	var joined []byte
	for i := 0; i < 20; i++ {
		joined = append(joined, k.Draw(7)...) // 140 bytes, crosses 32B blocks
	}
	k2 := New([]byte("s"), hitI, hitR, 0, 0)
	if !bytes.Equal(joined, k2.Draw(140)) {
		t.Fatal("chunked draws differ from one big draw")
	}
	if k.Drawn() != 140 {
		t.Fatalf("drawn = %d", k.Drawn())
	}
}

func TestDeriveAssociationMirrors(t *testing.T) {
	secret := []byte("dh")
	ki := New(secret, hitI, hitR, 5, 6)
	kr := New(secret, hitI, hitR, 5, 6)
	ak, err := DeriveAssociation(ki, SuiteAESCTRSHA256, true)
	if err != nil {
		t.Fatal(err)
	}
	bk, err := DeriveAssociation(kr, SuiteAESCTRSHA256, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ak.HIPMacOut, bk.HIPMacIn) || !bytes.Equal(ak.HIPMacIn, bk.HIPMacOut) {
		t.Fatal("HIP mac keys do not mirror")
	}
	if !bytes.Equal(ak.ESPEncOut, bk.ESPEncIn) || !bytes.Equal(ak.ESPAuthOut, bk.ESPAuthIn) {
		t.Fatal("ESP out/in keys do not mirror")
	}
	if !bytes.Equal(ak.ESPEncIn, bk.ESPEncOut) || !bytes.Equal(ak.ESPAuthIn, bk.ESPAuthOut) {
		t.Fatal("ESP in/out keys do not mirror")
	}
	if bytes.Equal(ak.ESPEncOut, ak.ESPEncIn) {
		t.Fatal("directional keys identical")
	}
}

func TestDeriveAssociationNullSuite(t *testing.T) {
	k := New([]byte("dh"), hitI, hitR, 0, 0)
	ak, err := DeriveAssociation(k, SuiteNullSHA256, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ak.ESPEncOut) != 0 || len(ak.ESPAuthOut) != 32 {
		t.Fatalf("null suite key lengths: enc=%d auth=%d", len(ak.ESPEncOut), len(ak.ESPAuthOut))
	}
}

func TestDeriveAssociationUnknownSuite(t *testing.T) {
	k := New([]byte("dh"), hitI, hitR, 0, 0)
	if _, err := DeriveAssociation(k, Suite(999), true); err != ErrUnknownSuite {
		t.Fatalf("err = %v", err)
	}
}

func TestNegotiate(t *testing.T) {
	got, err := Negotiate([]Suite{SuiteNullSHA256, SuiteAESCBCSHA256}, Preferred)
	if err != nil || got != SuiteAESCBCSHA256 {
		t.Fatalf("negotiated %v, %v", got, err)
	}
	if _, err := Negotiate([]Suite{Suite(77)}, Preferred); err != ErrUnknownSuite {
		t.Fatalf("err = %v, want ErrUnknownSuite", err)
	}
	// Responder preference order wins.
	got, _ = Negotiate([]Suite{SuiteAESCBCSHA256, SuiteAESCTRSHA256}, []Suite{SuiteAESCTRSHA256, SuiteAESCBCSHA256})
	if got != SuiteAESCTRSHA256 {
		t.Fatalf("responder preference not honored: %v", got)
	}
}

func TestSuiteKeyLens(t *testing.T) {
	for _, s := range Preferred {
		e, err := s.EncKeyLen()
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		a, err := s.AuthKeyLen()
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if a == 0 {
			t.Fatalf("%v: zero auth key", s)
		}
		if s != SuiteNullSHA256 && e == 0 {
			t.Fatalf("%v: zero enc key", s)
		}
	}
	if _, err := Suite(12345).EncKeyLen(); err == nil {
		t.Fatal("unknown suite enc len accepted")
	}
}

// Property: keymat is a pure function of (secret, hits, i, j) and draws of
// equal total length are identical regardless of chunking.
func TestKeymatChunkingProperty(t *testing.T) {
	f := func(secret []byte, i, j uint64, chunks []uint8) bool {
		if len(chunks) == 0 {
			return true
		}
		total := 0
		k1 := New(secret, hitI, hitR, i, j)
		var got []byte
		for _, c := range chunks {
			n := int(c%64) + 1
			total += n
			got = append(got, k1.Draw(n)...)
		}
		k2 := New(secret, hitI, hitR, i, j)
		return bytes.Equal(got, k2.Draw(total))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDeriveAssociation(b *testing.B) {
	secret := []byte("dh-shared-secret-bytes-0123456789ab")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := New(secret, hitI, hitR, 1, 2)
		if _, err := DeriveAssociation(k, SuiteAESCTRSHA256, true); err != nil {
			b.Fatal(err)
		}
	}
}
