package workload

import (
	"bufio"
	"net/netip"
	"testing"
	"time"

	"hipcloud/internal/microhttp"
	"hipcloud/internal/netsim"
	"hipcloud/internal/secio"
	"hipcloud/internal/simtcp"
)

var (
	addrA = netip.MustParseAddr("10.0.0.1")
	addrB = netip.MustParseAddr("10.0.0.2")
)

// httpWorld: a plain HTTP server on node B answering every request after
// a fixed service delay, and a client transport on node A.
func httpWorld(t *testing.T, service time.Duration) (*netsim.Sim, *secio.Transport) {
	t.Helper()
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	a := n.AddNode("a", 8, 8)
	b := n.AddNode("b", 8, 8)
	n.Connect(a, addrA, b, addrB, netsim.Link{Latency: time.Millisecond})
	srvT := &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(b, simtcp.NewPlainFabric(b))}
	cliT := &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(a, simtcp.NewPlainFabric(a))}
	l := srvT.MustListen(80)
	s.Spawn("server", func(p *netsim.Proc) {
		for {
			raw, err := l.AcceptRaw(p, 0)
			if err != nil {
				return
			}
			conn := raw
			p.Spawn("handler", func(hp *netsim.Proc) {
				c, err := srvT.ServerConn(hp, conn)
				if err != nil {
					return
				}
				defer c.Close()
				br := bufio.NewReader(c)
				for {
					req, err := microhttp.ReadRequest(br)
					if err != nil {
						return
					}
					hp.Sleep(service)
					if err := microhttp.WriteResponse(c, &microhttp.Response{
						Status: 200, Body: []byte("ok"),
					}); err != nil {
						return
					}
					if req.WantsClose() {
						return
					}
				}
			})
		}
	})
	return s, cliT
}

func TestClosedLoopThroughputAndLatency(t *testing.T) {
	s, cliT := httpWorld(t, 10*time.Millisecond)
	w := &ClosedLoop{
		Transport: cliT, Target: addrB, Port: 80,
		Clients: 4, Duration: 5 * time.Second,
		NextPath: func() string { return "/x" },
	}
	res := w.Run(s)
	s.Run(20 * time.Second)
	s.Shutdown()
	// RT ≈ 10ms service + 2ms RTT ⇒ ≈83 req/s/client ⇒ ~330 total.
	if res.Completed < 1000 || res.Completed > 2000 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	mean := res.Latency.Mean()
	if mean < 11*time.Millisecond || mean > 16*time.Millisecond {
		t.Fatalf("mean latency = %v, want ≈12ms", mean)
	}
	if tput := res.Throughput(); tput < 250 || tput > 400 {
		t.Fatalf("throughput = %.1f", tput)
	}
}

func TestClosedLoopTimeoutCountsErrors(t *testing.T) {
	// Service time far beyond the client timeout: every request fails.
	s, cliT := httpWorld(t, 3*time.Second)
	w := &ClosedLoop{
		Transport: cliT, Target: addrB, Port: 80,
		Clients: 2, Duration: 4 * time.Second, Timeout: 500 * time.Millisecond,
		NextPath: func() string { return "/slow" },
	}
	res := w.Run(s)
	s.Run(20 * time.Second)
	s.Shutdown()
	if res.Errors == 0 {
		t.Fatal("expected timeout errors")
	}
	if res.Completed > res.Errors {
		t.Fatalf("completed=%d > errors=%d under heavy timeouts", res.Completed, res.Errors)
	}
}

func TestOpenLoopHoldsRate(t *testing.T) {
	s, cliT := httpWorld(t, 2*time.Millisecond)
	w := &OpenLoop{
		Transport: cliT, Target: addrB, Port: 80,
		Rate: 100, Duration: 5 * time.Second,
		NextPath: func() string { return "/r" },
	}
	res := w.Run(s)
	s.Run(30 * time.Second)
	s.Shutdown()
	// 100 req/s for 5s = 500 requests (modulo edge effects).
	if res.Completed < 480 || res.Completed > 500 {
		t.Fatalf("completed = %d, want ≈500", res.Completed)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
}

func TestOpenLoopWarmupDiscardsEarlySamples(t *testing.T) {
	s, cliT := httpWorld(t, 2*time.Millisecond)
	w := &OpenLoop{
		Transport: cliT, Target: addrB, Port: 80,
		Rate: 50, Duration: 4 * time.Second, Warmup: 2 * time.Second,
		NextPath: func() string { return "/w" },
	}
	res := w.Run(s)
	s.Run(30 * time.Second)
	s.Shutdown()
	// Only the second half counts: ≈100 of 200.
	if res.Completed < 90 || res.Completed > 110 {
		t.Fatalf("completed = %d, want ≈100 after warmup", res.Completed)
	}
}

func TestBulkTransfer(t *testing.T) {
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	a := n.AddNode("a", 4, 4)
	b := n.AddNode("b", 4, 4)
	n.Connect(a, addrA, b, addrB, netsim.Link{Latency: 500 * time.Microsecond, Bandwidth: 12.5e6})
	cliT := &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(a, simtcp.NewPlainFabric(a))}
	srvT := &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(b, simtcp.NewPlainFabric(b))}
	bulk := &Bulk{Client: cliT, Server: srvT, Target: addrB, Port: 5001, Total: 4 << 20}
	res := bulk.Run(s)
	s.Run(2 * time.Minute)
	s.Shutdown()
	if res.Err != nil {
		t.Fatalf("bulk: %v", res.Err)
	}
	if res.Bytes != 4<<20 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
	// 12.5 MB/s link ≈ 100 Mbit/s wire; goodput slightly below.
	if m := res.Mbps(); m < 70 || m > 100 {
		t.Fatalf("goodput = %.1f Mbit/s, want ≈90", m)
	}
}

func TestPingSeries(t *testing.T) {
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	a := n.AddNode("a", 2, 2)
	b := n.AddNode("b", 2, 2)
	n.Connect(a, addrA, b, addrB, netsim.Link{Latency: 3 * time.Millisecond})
	h := PingSeries(s, 10, 20*time.Millisecond, func(p *netsim.Proc) (time.Duration, error) {
		return a.Ping(p, addrB, 64, time.Second)
	})
	s.Run(10 * time.Second)
	s.Shutdown()
	if h.Count() != 10 {
		t.Fatalf("pings = %d", h.Count())
	}
	if h.Mean() != 6*time.Millisecond {
		t.Fatalf("mean rtt = %v", h.Mean())
	}
}
