// Package workload reproduces the paper's measurement tools inside the
// simulator: jmeter-style closed-loop concurrent HTTP clients, an
// httperf-style open-loop fixed-rate generator, an iperf-style bulk TCP
// transfer, and ping series — each reporting the statistics the paper's
// figures are built from.
package workload

import (
	"bufio"
	"net/netip"
	"time"

	"hipcloud/internal/metrics"
	"hipcloud/internal/microhttp"
	"hipcloud/internal/netsim"
	"hipcloud/internal/secio"
)

// Result aggregates one run's measurements.
type Result struct {
	Duration  time.Duration
	Completed int
	Errors    int
	Latency   metrics.Histogram
	Bytes     uint64
}

// Throughput is successful requests per second — the paper's Figure 2
// metric.
func (r *Result) Throughput() float64 { return metrics.Rate(r.Completed, r.Duration) }

// ClosedLoop drives N concurrent clients, each issuing requests
// back-to-back over a persistent connection (jmeter thread groups).
type ClosedLoop struct {
	Transport *secio.Transport
	Target    netip.Addr
	Port      uint16
	Clients   int
	Duration  time.Duration
	// NextPath generates request paths (shared; the simulator is
	// single-threaded so no locking is needed).
	NextPath func() string
	// Timeout aborts a request and reconnects (jmeter response timeout).
	Timeout time.Duration
	// Warmup discards samples before this offset.
	Warmup time.Duration
}

// Run executes the workload; it spawns client processes and returns after
// sim.Run reaches quiescence or the horizon. Call before sim.Run; read
// the result after.
func (w *ClosedLoop) Run(sim *netsim.Sim) *Result {
	res := &Result{Duration: w.Duration - w.Warmup}
	timeout := w.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	for i := 0; i < w.Clients; i++ {
		sim.Spawn("client", func(p *netsim.Proc) {
			end := p.Now() + w.Duration
			var conn secio.Conn
			var br *bufio.Reader
			defer func() {
				if conn != nil {
					conn.Close()
				}
			}()
			for p.Now() < end {
				if conn == nil {
					c, err := w.Transport.Dial(p, w.Target, w.Port)
					if err != nil {
						res.Errors++
						p.Sleep(100 * time.Millisecond)
						continue
					}
					conn = c
					br = bufio.NewReader(c)
				}
				start := p.Now()
				req := &microhttp.Request{Method: "GET", Path: w.NextPath(), Headers: map[string]string{"Host": "rubis"}}
				resp, err := roundTripTimeout(p, conn, br, req, timeout)
				took := p.Now() - start
				if err != nil || resp.Status != 200 {
					res.Errors++
					conn.Close()
					conn = nil
					continue
				}
				if p.Now()-0 >= w.Warmup {
					res.Completed++
					res.Latency.Add(took)
					res.Bytes += uint64(len(resp.Body))
				}
			}
		})
	}
	return res
}

// roundTripTimeout performs one HTTP exchange, giving up after timeout.
// Simulated reads have no deadline support at this layer, so the timeout
// is enforced with a watchdog that aborts the connection. Abort (not
// Close) is required: a graceful close never unblocks a reader stalled
// on a dead server, so the client would hang instead of timing out.
func roundTripTimeout(p *netsim.Proc, conn secio.Conn, br *bufio.Reader, req *microhttp.Request, timeout time.Duration) (*microhttp.Response, error) {
	sim := p.Sim()
	done := false
	fired := false
	sim.After(timeout, func() {
		if !done {
			fired = true
			conn.Abort()
		}
	})
	resp, err := microhttp.RoundTrip(conn, br, req)
	done = true
	if fired && err == nil {
		// The watchdog closed us mid-flight; treat as failure.
		return nil, microhttp.ErrMalformed
	}
	return resp, err
}

// OpenLoop issues requests at a fixed rate, a new connection per request
// (httperf --rate). Response times at a given offered load are the
// paper's §V-B metric.
type OpenLoop struct {
	Transport *secio.Transport
	Target    netip.Addr
	Port      uint16
	Rate      float64 // requests per second
	Duration  time.Duration
	NextPath  func() string
	Timeout   time.Duration
	Warmup    time.Duration
}

// Run schedules the request processes. Call before sim.Run.
func (w *OpenLoop) Run(sim *netsim.Sim) *Result {
	res := &Result{Duration: w.Duration - w.Warmup}
	timeout := w.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	interval := time.Duration(float64(time.Second) / w.Rate)
	n := int(w.Duration.Seconds() * w.Rate)
	for i := 0; i < n; i++ {
		at := time.Duration(i) * interval
		sim.At(at, func() {
			sim.Spawn("req", func(p *netsim.Proc) {
				start := p.Now()
				conn, err := w.Transport.Dial(p, w.Target, w.Port)
				if err != nil {
					res.Errors++
					return
				}
				defer conn.Close()
				br := bufio.NewReader(conn)
				req := &microhttp.Request{
					Method:  "GET",
					Path:    w.NextPath(),
					Headers: map[string]string{"Host": "rubis", "Connection": "close"},
				}
				resp, err := roundTripTimeout(p, conn, br, req, timeout)
				if err != nil || resp.Status != 200 {
					res.Errors++
					return
				}
				if start >= w.Warmup {
					res.Completed++
					res.Latency.Add(p.Now() - start)
					res.Bytes += uint64(len(resp.Body))
				}
			})
		})
	}
	return res
}

// BulkResult reports an iperf-style transfer.
type BulkResult struct {
	Bytes    uint64
	Duration time.Duration
	Err      error
}

// Mbps is the measured goodput.
func (b *BulkResult) Mbps() float64 { return metrics.Mbps(b.Bytes, b.Duration) }

// Bulk transfers totalBytes from a client to a sink (iperf -c / -s).
type Bulk struct {
	Client *secio.Transport
	Server *secio.Transport
	Target netip.Addr
	Port   uint16
	Total  int
}

// Run spawns sink and source processes. Call before sim.Run; read the
// result after.
func (b *Bulk) Run(sim *netsim.Sim) *BulkResult {
	res := &BulkResult{}
	l := b.Server.MustListen(b.Port)
	sim.Spawn("iperf-sink", func(p *netsim.Proc) {
		c, err := l.Accept(p, 0)
		if err != nil {
			res.Err = err
			return
		}
		defer c.Close()
		start := p.Now()
		buf := make([]byte, 64*1024)
		for res.Bytes < uint64(b.Total) {
			n, err := c.Read(buf)
			if n > 0 {
				res.Bytes += uint64(n)
			}
			if err != nil {
				break
			}
		}
		res.Duration = p.Now() - start
	})
	sim.Spawn("iperf-src", func(p *netsim.Proc) {
		c, err := b.Client.Dial(p, b.Target, b.Port)
		if err != nil {
			res.Err = err
			return
		}
		defer c.Close()
		chunk := make([]byte, 32*1024)
		sent := 0
		for sent < b.Total {
			n := b.Total - sent
			if n > len(chunk) {
				n = len(chunk)
			}
			m, err := c.Write(chunk[:n])
			sent += m
			if err != nil {
				res.Err = err
				return
			}
		}
	})
	return res
}

// PingSeries runs n echo round trips using the given single-probe
// function and returns the histogram (the paper's "average response
// times for ICMP for 20 requests").
func PingSeries(sim *netsim.Sim, n int, gap time.Duration, probe func(p *netsim.Proc) (time.Duration, error)) *metrics.Histogram {
	h := &metrics.Histogram{}
	sim.Spawn("pinger", func(p *netsim.Proc) {
		for i := 0; i < n; i++ {
			rtt, err := probe(p)
			if err == nil {
				h.Add(rtt)
			}
			p.Sleep(gap)
		}
	})
	return h
}
