// Package hipfw implements HIP-aware packet filtering at the two
// attachment points the paper describes (§IV-A): end-host access control
// with hosts.allow/hosts.deny semantics over HITs, and a middlebox
// firewall (hypervisor or switch) that follows base exchanges to learn
// which ESP SPIs belong to authorized associations and drops everything
// else — the approach of the Lindqvist et al. firewall the paper cites.
package hipfw

import (
	"encoding/binary"
	"net/netip"

	"hipcloud/internal/hipwire"
	"hipcloud/internal/netsim"
)

// ACL is an ordered allow/deny policy over HIT prefixes, mirroring
// hosts.allow / hosts.deny.
type ACL struct {
	allow, deny  []netip.Prefix
	DefaultAllow bool
}

// Allow appends an allow rule (single HITs become /128 prefixes).
func (a *ACL) Allow(p netip.Prefix) *ACL {
	a.allow = append(a.allow, p)
	return a
}

// Deny appends a deny rule.
func (a *ACL) Deny(p netip.Prefix) *ACL {
	a.deny = append(a.deny, p)
	return a
}

// AllowHIT allows one exact HIT.
func (a *ACL) AllowHIT(hit netip.Addr) *ACL {
	return a.Allow(netip.PrefixFrom(hit, hit.BitLen()))
}

// DenyHIT denies one exact HIT.
func (a *ACL) DenyHIT(hit netip.Addr) *ACL {
	return a.Deny(netip.PrefixFrom(hit, hit.BitLen()))
}

// Permit evaluates the policy: deny rules win over allow rules, which win
// over the default (hosts.deny semantics: specific entries first).
func (a *ACL) Permit(hit netip.Addr) bool {
	for _, p := range a.deny {
		if p.Contains(hit) {
			return false
		}
	}
	for _, p := range a.allow {
		if p.Contains(hit) {
			return true
		}
	}
	return a.DefaultAllow
}

// PolicyFunc adapts the ACL to hip.Config.Policy.
func (a *ACL) PolicyFunc() func(netip.Addr) bool {
	return func(hit netip.Addr) bool { return a.Permit(hit) }
}

// Midbox is a HIP-aware middlebox firewall installed on a forwarding node
// (hypervisor/switch). It inspects transiting HIP control packets,
// enforces the ACL on the HIT pair, learns SPIs from ESP_INFO parameters,
// and only forwards ESP packets whose SPI was announced by an authorized
// base exchange or update.
type Midbox struct {
	node *netsim.Node
	acl  *ACL
	// spis holds SPIs learned from authorized exchanges.
	spis map[uint32]bool
	// AllowNonHIP forwards non-HIP/ESP traffic untouched when true; the
	// paper's tenant firewalls drop it (HIP-only policies).
	AllowNonHIP bool
	// Stats.
	ControlSeen, ControlDropped uint64
	ESPForwarded, ESPDropped    uint64
	OtherDropped                uint64
}

// NewMidbox installs the firewall on node's forwarding path.
func NewMidbox(node *netsim.Node, acl *ACL) *Midbox {
	m := &Midbox{node: node, acl: acl, spis: make(map[uint32]bool)}
	node.Filter = m.filter
	return m
}

// LearnedSPIs reports how many SPIs the firewall has authorized.
func (m *Midbox) LearnedSPIs() int { return len(m.spis) }

func (m *Midbox) filter(pkt *netsim.Packet) bool {
	switch pkt.Proto {
	case netsim.ProtoHIP:
		m.ControlSeen++
		msg, err := hipwire.Parse(pkt.Payload)
		if err != nil {
			m.ControlDropped++
			return false
		}
		// I1 receiver HITs are always concrete in this stack; check both
		// ends of the association against policy.
		if !m.acl.Permit(msg.SenderHIT) || !m.acl.Permit(msg.ReceiverHIT) {
			m.ControlDropped++
			return false
		}
		// Track SPIs from ESP_INFO (I2, R2, UPDATE).
		for _, prm := range msg.GetAll(hipwire.ParamESPInfo) {
			if ei, err := hipwire.ParseESPInfo(prm.Data); err == nil && ei.NewSPI != 0 {
				m.spis[ei.NewSPI] = true
			}
		}
		return true
	case netsim.ProtoESP:
		if len(pkt.Payload) < 4 {
			m.ESPDropped++
			return false
		}
		spi := binary.BigEndian.Uint32(pkt.Payload)
		if !m.spis[spi] {
			m.ESPDropped++
			return false
		}
		m.ESPForwarded++
		return true
	default:
		if m.AllowNonHIP {
			return true
		}
		m.OtherDropped++
		return false
	}
}
