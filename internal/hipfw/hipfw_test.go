package hipfw

import (
	"net/netip"
	"testing"
	"time"

	"hipcloud/internal/hip"
	"hipcloud/internal/hipsim"
	"hipcloud/internal/identity"
	"hipcloud/internal/netsim"
	"hipcloud/internal/simtcp"
)

var (
	idA = identity.MustGenerate(identity.AlgECDSA)
	idB = identity.MustGenerate(identity.AlgECDSA)
	idC = identity.MustGenerate(identity.AlgECDSA)
)

func TestACLSemantics(t *testing.T) {
	acl := &ACL{DefaultAllow: false}
	acl.AllowHIT(idA.HIT())
	acl.Allow(identity.HITPrefix) // all HITs
	acl.DenyHIT(idC.HIT())
	if !acl.Permit(idA.HIT()) || !acl.Permit(idB.HIT()) {
		t.Fatal("allowed HITs rejected")
	}
	if acl.Permit(idC.HIT()) {
		t.Fatal("deny rule ignored (deny must win)")
	}
	if acl.Permit(netip.MustParseAddr("2001:db8::1")) {
		t.Fatal("default deny ignored")
	}
	fn := acl.PolicyFunc()
	if !fn(idA.HIT()) || fn(idC.HIT()) {
		t.Fatal("PolicyFunc diverges from Permit")
	}
}

func TestACLDefaultAllow(t *testing.T) {
	acl := &ACL{DefaultAllow: true}
	acl.DenyHIT(idC.HIT())
	if !acl.Permit(idA.HIT()) {
		t.Fatal("default allow ignored")
	}
	if acl.Permit(idC.HIT()) {
		t.Fatal("deny ignored under default allow")
	}
}

// fwWorld: A and B on either side of a filtering router.
func fwWorld(t *testing.T, acl *ACL) (*netsim.Sim, *Midbox, *simtcp.Stack, *simtcp.Stack, *hipsim.Registry) {
	t.Helper()
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	r := n.AddRouter("hypervisor")
	a := n.AddNode("a", 2, 1)
	b := n.AddNode("b", 2, 1)
	must := netip.MustParseAddr
	n.Connect(a, must("10.0.1.1"), r, must("10.0.1.254"), netsim.Link{Latency: time.Millisecond})
	n.Connect(b, must("10.0.2.1"), r, must("10.0.2.254"), netsim.Link{Latency: time.Millisecond})
	a.AddDefaultRoute(must("10.0.1.254"))
	b.AddDefaultRoute(must("10.0.2.254"))
	mb := NewMidbox(r, acl)

	reg := hipsim.NewRegistry()
	ha, _ := hip.NewHost(hip.Config{Identity: idA, Locator: a.Addr()})
	hb, _ := hip.NewHost(hip.Config{Identity: idB, Locator: b.Addr()})
	fa := hipsim.New(a, ha, reg)
	fb := hipsim.New(b, hb, reg)
	_ = fa
	_ = fb
	return s, mb, simtcp.NewStack(a, fa), simtcp.NewStack(b, fb), reg
}

func runEcho(t *testing.T, s *netsim.Sim, sa, sb *simtcp.Stack, target netip.Addr) (string, error) {
	t.Helper()
	l := sb.MustListen(80)
	s.Spawn("server", func(p *netsim.Proc) {
		c, err := l.Accept(p, 0)
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		n, _ := c.Read(p, buf)
		c.Write(p, buf[:n])
		c.Close()
	})
	var got string
	var dialErr error
	s.Spawn("client", func(p *netsim.Proc) {
		c, err := sa.Dial(p, target, 80, 3*time.Second)
		if err != nil {
			dialErr = err
			return
		}
		c.Write(p, []byte("fw test"))
		buf := make([]byte, 64)
		n, err := c.Read(p, buf)
		if err == nil {
			got = string(buf[:n])
		}
		c.Close()
	})
	s.Run(time.Minute)
	s.Shutdown()
	return got, dialErr
}

func TestMidboxAllowsAuthorizedAssociation(t *testing.T) {
	acl := &ACL{}
	acl.AllowHIT(idA.HIT()).AllowHIT(idB.HIT())
	s, mb, sa, sb, _ := fwWorld(t, acl)
	got, err := runEcho(t, s, sa, sb, idB.HIT())
	if err != nil || got != "fw test" {
		t.Fatalf("authorized flow blocked: %q %v", got, err)
	}
	if mb.LearnedSPIs() < 2 {
		t.Fatalf("firewall learned %d SPIs, want both directions", mb.LearnedSPIs())
	}
	if mb.ESPForwarded == 0 {
		t.Fatal("no ESP forwarded")
	}
}

func TestMidboxBlocksDeniedHIT(t *testing.T) {
	acl := &ACL{}
	acl.AllowHIT(idB.HIT()) // A is not allowed
	s, mb, sa, sb, _ := fwWorld(t, acl)
	_, err := runEcho(t, s, sa, sb, idB.HIT())
	if err == nil {
		t.Fatal("denied association succeeded through firewall")
	}
	if mb.ControlDropped == 0 {
		t.Fatal("no control packets dropped")
	}
	if mb.ESPForwarded != 0 {
		t.Fatal("ESP leaked through")
	}
}

func TestMidboxDropsUnknownSPI(t *testing.T) {
	acl := &ACL{DefaultAllow: true}
	s, mb, sa, sb, _ := fwWorld(t, acl)
	// Inject a forged ESP packet before any BEX: must be dropped.
	aNode := sa.Node()
	forged := make([]byte, 40)
	forged[3] = 0x42 // SPI 0x42
	s.Spawn("attacker", func(p *netsim.Proc) {
		aNode.SendRaw(netsim.ProtoESP,
			netip.AddrPortFrom(aNode.Addr(), 0),
			netip.AddrPortFrom(netip.MustParseAddr("10.0.2.1"), 0),
			forged, 0)
	})
	s.Run(time.Second)
	if mb.ESPDropped == 0 {
		t.Fatal("forged ESP not dropped")
	}
	// A real exchange still works afterwards.
	got, err := runEcho(t, s, sa, sb, idB.HIT())
	if err != nil || got != "fw test" {
		t.Fatalf("legit flow after attack: %q %v", got, err)
	}
}

func TestMidboxDropsNonHIPByDefault(t *testing.T) {
	acl := &ACL{DefaultAllow: true}
	s, mb, sa, _, _ := fwWorld(t, acl)
	var pingErr error
	s.Spawn("ping", func(p *netsim.Proc) {
		_, pingErr = sa.Node().Ping(p, netip.MustParseAddr("10.0.2.1"), 64, 500*time.Millisecond)
	})
	s.Run(5 * time.Second)
	s.Shutdown()
	if pingErr == nil {
		t.Fatal("ICMP crossed a HIP-only firewall")
	}
	if mb.OtherDropped == 0 {
		t.Fatal("drop not accounted")
	}
}
