// Package hipsim binds a HIP host (hipcloud/internal/hip) to a simulated
// node (hipcloud/internal/netsim): it is the "shim layer" of the paper.
//
// Applications address peers by HIT or LSI; the fabric resolves the
// identifier to a locator, runs the base exchange on first contact, seals
// every transport segment in BEET-mode ESP and charges all cryptographic
// work to the VM's simulated CPU. It implements simtcp.Fabric, so the
// same stream/HTTP/RUBiS code runs over plain, HIP and TLS transports.
package hipsim

import (
	"errors"
	"net/netip"
	"time"

	"hipcloud/internal/esp"
	"hipcloud/internal/hip"
	"hipcloud/internal/identity"
	"hipcloud/internal/netsim"
)

// Errors returned by the fabric.
var (
	ErrUnknownPeer = errors.New("hipsim: cannot resolve peer identifier")
	ErrBEXFailed   = errors.New("hipsim: base exchange failed")
	ErrBEXTimeout  = errors.New("hipsim: base exchange timed out")
)

// Registry maps HITs to current locators and LSIs to HITs — the role DNS
// HIP RRs (or static hosts files) play in a HIPL deployment.
type Registry struct {
	byHIT map[netip.Addr]netip.Addr // HIT -> locator
	lsis  *identity.LSIAllocator
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byHIT: make(map[netip.Addr]netip.Addr),
		lsis:  identity.NewLSIAllocator(),
	}
}

// Register binds a HIT to its locator and returns the HIT's LSI.
func (r *Registry) Register(hit, locator netip.Addr) netip.Addr {
	r.byHIT[hit] = locator
	lsi, err := r.lsis.Assign(hit)
	if err != nil {
		panic("hipsim: registering non-HIT: " + err.Error())
	}
	return lsi
}

// Update changes the locator of a HIT (VM migration).
func (r *Registry) Update(hit, locator netip.Addr) { r.byHIT[hit] = locator }

// Resolve turns a HIT or LSI into (HIT, locator, wasLSI).
func (r *Registry) Resolve(peer netip.Addr) (hit, locator netip.Addr, byLSI bool, err error) {
	if identity.IsLSI(peer) {
		h, ok := r.lsis.Lookup(peer)
		if !ok {
			return netip.Addr{}, netip.Addr{}, false, ErrUnknownPeer
		}
		peer, byLSI = h, true
	}
	if !identity.IsHIT(peer) {
		return netip.Addr{}, netip.Addr{}, false, ErrUnknownPeer
	}
	loc, ok := r.byHIT[peer]
	if !ok {
		return netip.Addr{}, netip.Addr{}, false, ErrUnknownPeer
	}
	return peer, loc, byLSI, nil
}

// LSI returns the LSI assigned to hit, allocating one if needed.
func (r *Registry) LSI(hit netip.Addr) netip.Addr {
	lsi, err := r.lsis.Assign(hit)
	if err != nil {
		panic(err)
	}
	return lsi
}

// Inner payload types carried inside ESP. The type byte rides as a
// TRAILER (last plaintext byte) rather than a prefix: the stream body
// handed upward is then a prefix sub-slice of the pooled decrypt buffer,
// keeping its full capacity so the stack can recycle it into the right
// netsim pool class. The framing is internal to this package (hipudp has
// its own), so both ends always agree.
const (
	innerStream byte = 1
	innerEchoRq byte = 2
	innerEchoRp byte = 3
)

// Underlay carries HIP control and ESP packets for a fabric. The default
// underlay sends directly on the node's interfaces; the Teredo underlay
// (hipcloud/internal/teredo) tunnels them in IPv6-over-UDP-over-IPv4, the
// paper's HIT(Teredo)/LSI(Teredo) configurations.
type Underlay interface {
	// LocalAddr is the locator the HIP host should announce.
	LocalAddr() netip.Addr
	// Send transmits a raw protocol payload to dst.
	Send(proto netsim.Proto, dst netip.Addr, payload []byte)
	// Tap registers the inbound handler for a protocol (scheduler ctx).
	Tap(proto netsim.Proto, fn func(src netip.Addr, payload []byte))
}

// nodeUnderlay sends directly over the simulated node.
type nodeUnderlay struct{ node *netsim.Node }

func (u nodeUnderlay) LocalAddr() netip.Addr { return u.node.Addr() }

func (u nodeUnderlay) Send(proto netsim.Proto, dst netip.Addr, payload []byte) {
	u.node.SendRaw(proto, netip.AddrPortFrom(u.node.Addr(), 0), netip.AddrPortFrom(dst, 0), payload, 0)
}

func (u nodeUnderlay) Tap(proto netsim.Proto, fn func(src netip.Addr, payload []byte)) {
	u.node.TapRaw(proto, func(pkt *netsim.Packet) { fn(pkt.Src.Addr(), pkt.Payload) })
}

// Fabric is the per-node HIP shim. It implements simtcp.Fabric.
type Fabric struct {
	node *netsim.Node
	host *hip.Host
	reg  *Registry
	ul   Underlay

	deliver func(peer netip.Addr, data []byte, cost time.Duration)

	ctlQ   *hip.AdmissionQueue
	debt   time.Duration
	estabQ map[netip.Addr]*netsim.WaitQueue
	estabE map[netip.Addr]error

	// Run-to-completion daemon state: the old kernel process is replaced
	// by a coalesced service pass (kick) plus one re-armable timer that
	// tracks the host's next deadline, with a 1s housekeeping bound for
	// rekey checks. charging serializes passes behind in-flight async CPU
	// charges, as the process did by blocking on CPU().Use.
	kicked       bool
	charging     bool
	serviceFn    func() // bound f.service
	chargeDoneFn func() // bound f.chargeDone
	timer        *netsim.Timer

	echoSeq uint64
	echoes  map[uint64]*echoWait
	closed  bool
	// lsiPeers marks peers the local application addresses by LSI; every
	// packet on such flows pays the translation penalty in both
	// directions, as the paper measures.
	lsiPeers map[netip.Addr]bool
	// BEXTimeout bounds Establish (default 10s).
	BEXTimeout time.Duration
}

// DefaultCtlQueueMax bounds the per-fabric pending control-packet queue.
// While the daemon is busy (an async CPU charge in flight) arriving
// BEX/UPDATE packets accumulate here; past the bound the oldest are shed
// (hip.AdmissionQueue) rather than letting a re-contact herd grow the
// backlog — and the queue's depth feeds the responder's puzzle
// difficulty so shedding and hardening engage together.
const DefaultCtlQueueMax = 512

type echoWait struct {
	wq   *netsim.WaitQueue
	done bool
	rtt  time.Duration
	sent netsim.VTime
}

// New attaches a HIP host to a node with the direct underlay. The host's
// locator must equal the node's address; the HIT is registered in reg.
func New(node *netsim.Node, host *hip.Host, reg *Registry) *Fabric {
	return NewWithUnderlay(node, host, reg, nodeUnderlay{node})
}

// NewWithUnderlay attaches a HIP host to a node sending through the given
// underlay (e.g. a Teredo tunnel). The underlay's local address is
// registered as the HIT's locator.
func NewWithUnderlay(node *netsim.Node, host *hip.Host, reg *Registry, ul Underlay) *Fabric {
	f := &Fabric{
		node:       node,
		host:       host,
		reg:        reg,
		ul:         ul,
		ctlQ:       hip.NewAdmissionQueue(DefaultCtlQueueMax),
		estabQ:     make(map[netip.Addr]*netsim.WaitQueue),
		estabE:     make(map[netip.Addr]error),
		echoes:     make(map[uint64]*echoWait),
		lsiPeers:   make(map[netip.Addr]bool),
		BEXTimeout: 10 * time.Second,
	}
	f.serviceFn = f.service
	f.chargeDoneFn = f.chargeDone
	sim := node.Net().Sim()
	f.timer = sim.NewTimer(f.service)
	// Backoff jitter draws from the simulation's shared RNG: determinism
	// comes from deterministic event order, while sharing one source
	// de-correlates synchronized peers (each per-host RNG defaults to the
	// same seed, so per-host draws would stay in lockstep).
	host.SetJitter(sim.Rand().Float64)
	reg.Register(host.HIT(), ul.LocalAddr())
	ul.Tap(netsim.ProtoHIP, f.onControl)
	ul.Tap(netsim.ProtoESP, f.onData)
	// Arm the housekeeping timer so rekey checks happen even when idle.
	f.timer.Reset(sim.Now() + time.Second)
	return f
}

// sim returns the owning simulation.
func (f *Fabric) simOf() *netsim.Sim { return f.node.Net().Sim() }

// kick schedules a service pass at the current virtual time, coalescing
// any number of wake requests into one.
func (f *Fabric) kick() {
	if f.kicked || f.closed {
		return
	}
	f.kicked = true
	sim := f.simOf()
	sim.At(sim.Now(), f.serviceFn)
}

// Host returns the underlying HIP host.
func (f *Fabric) Host() *hip.Host { return f.host }

// onControl queues a HIP control packet for the next service pass,
// shedding the oldest pending packet when admission control is full.
func (f *Fabric) onControl(src netip.Addr, payload []byte) {
	if f.closed {
		return
	}
	f.ctlQ.Push(hip.Pending{Data: payload, Src: src})
	f.kick()
}

// CtlShed reports how many inbound control packets admission control has
// dropped (the responder's shed counter for storm experiments).
func (f *Fabric) CtlShed() uint64 { return f.ctlQ.Shed }

// onData decrypts an inbound ESP packet and routes the inner payload
// (scheduler context; decode cost is handed to the consumer as debt).
// The wire packet and, unless it is delivered upward, the decrypt buffer
// are recycled into the netsim buffer pool here.
func (f *Fabric) onData(src netip.Addr, raw []byte) {
	if f.closed {
		return
	}
	buf := netsim.GetBuf(len(raw))[:0]
	payload, peerHIT, err := f.host.OpenDataAppend(buf, raw, false)
	// The wire packet is dead once decrypted (or rejected): this fabric
	// is the packet's terminal consumer, so recycle the buffer the
	// sender drew from the pool.
	netsim.PutBuf(raw)
	cost := f.host.TakeCost()
	if err == nil && f.lsiPeers[peerHIT] {
		cost += f.host.LSIPenalty()
	}
	if err != nil {
		netsim.PutBuf(buf)
		f.debt += cost
		f.kick()
		return
	}
	if len(payload) == 0 {
		netsim.PutBuf(buf)
		return
	}
	inner, body := payload[len(payload)-1], payload[:len(payload)-1]
	switch inner {
	case innerStream:
		if f.deliver != nil {
			// Ownership of the decrypt buffer moves to the stack, which
			// recycles it after the stream core consumes the segment.
			f.deliver(peerHIT, body, cost)
		} else {
			netsim.PutBuf(buf)
		}
	case innerEchoRq:
		// Echo handling models processing latency directly: open + seal
		// (and LSI translation) delay the reply on the wire, as they do
		// for a real ping through the shim.
		reply := append(append([]byte(nil), body...), innerEchoRp)
		netsim.PutBuf(buf)
		out, dst, serr := f.host.SealData(peerHIT, reply, f.lsiPeers[peerHIT])
		total := cost + f.host.TakeCost()
		if serr == nil {
			f.node.Net().Sim().After(total, func() { f.sendESP(dst, out) })
		}
	case innerEchoRp:
		if len(body) >= 8 {
			id := beUint64(body[:8])
			if w := f.echoes[id]; w != nil && !w.done {
				sim := f.node.Net().Sim()
				sim.After(cost, func() {
					if w.done {
						return
					}
					w.done = true
					w.rtt = sim.Now() - w.sent
					w.wq.WakeAll()
				})
			}
		}
		netsim.PutBuf(buf)
	default:
		netsim.PutBuf(buf)
	}
}

func (f *Fabric) sendESP(dstLocator netip.Addr, espPkt []byte) {
	f.ul.Send(netsim.ProtoESP, dstLocator, espPkt)
}

// service is one run-to-completion pass of the HIP daemon: charge CPU for
// control-plane work, process queued control packets, fire due host
// timers, flush outgoing packets and dispatch events, then re-arm the
// deadline timer. Scheduler context; never blocks.
func (f *Fabric) service() {
	f.kicked = false
	if f.closed || f.charging {
		return
	}
	if f.debt > 0 {
		f.charging = true
		d := f.debt
		f.debt = 0
		f.node.CPU().UseAsync(d, f.chargeDoneFn)
		return
	}
	now := f.simOf().Now()
	// Pop-until-empty: processing a packet can emit replies that loop
	// back to this node and enqueue mid-drain. The remaining depth is
	// reported to the host before each packet so puzzle difficulty for
	// an I1 reflects the backlog queued behind it.
	for {
		item, ok := f.ctlQ.Pop()
		if !ok {
			break
		}
		f.host.SetBacklog(f.ctlQ.Len())
		f.host.OnPacket(item.Data, item.Src, now)
		f.debt += f.host.TakeCost()
	}
	if next := f.host.NextDeadline(); next != 0 && next <= now {
		f.host.OnTimer(now)
		f.debt += f.host.TakeCost()
	}
	f.host.Maintain(now)
	f.flushOut()
	if f.debt > 0 || f.ctlQ.Len() > 0 {
		f.kick()
	}
	f.rearmTimer()
}

// chargeDone runs when an async CPU charge completes.
func (f *Fabric) chargeDone() {
	f.charging = false
	f.kick()
}

// rearmTimer points the fabric's timer at the host's next deadline,
// bounded by a 1s housekeeping interval so rekey checks run while idle.
func (f *Fabric) rearmTimer() {
	if f.closed {
		f.timer.Stop()
		return
	}
	next := f.host.NextDeadline()
	if hk := f.simOf().Now() + time.Second; next == 0 || next > hk {
		next = hk
	}
	f.timer.Reset(next)
}

// flushOut sends outgoing control packets and dispatches host events.
func (f *Fabric) flushOut() {
	for _, op := range f.host.Outgoing() {
		f.ul.Send(netsim.ProtoHIP, op.Dst, op.Data)
	}
	for _, ev := range f.host.Events() {
		switch ev.Kind {
		case hip.EventEstablished:
			f.estabE[ev.PeerHIT] = nil
			if q := f.estabQ[ev.PeerHIT]; q != nil {
				q.WakeAll()
			}
		case hip.EventFailed:
			f.estabE[ev.PeerHIT] = ErrBEXFailed
			if q := f.estabQ[ev.PeerHIT]; q != nil {
				q.WakeAll()
			}
		}
	}
}

// Canonical resolves a HIT or LSI to the canonical HIT, remembering LSI
// mode for the peer (simtcp.Fabric).
func (f *Fabric) Canonical(peer netip.Addr) (netip.Addr, error) {
	hit, _, byLSI, err := f.reg.Resolve(peer)
	if err != nil {
		return netip.Addr{}, err
	}
	if byLSI {
		f.lsiPeers[hit] = true
	}
	return hit, nil
}

// Establish resolves peer and runs the base exchange if needed, blocking p.
func (f *Fabric) Establish(p *netsim.Proc, peer netip.Addr) error {
	hit, locator, _, err := f.reg.Resolve(peer)
	if err != nil {
		return err
	}
	return f.EstablishAt(p, hit, locator)
}

// EstablishAt runs the base exchange with peerHIT sending the I1 to an
// explicit locator — typically the peer's rendezvous server, which relays
// the I1 while R1 onward travel direct (RFC 5204). It bypasses registry
// resolution, so re-contact after a migration exercises the real
// rendezvous/DNS path instead of the registry's instant oracle.
func (f *Fabric) EstablishAt(p *netsim.Proc, peerHIT, locator netip.Addr) error {
	if a, ok := f.host.Association(peerHIT); ok && a.State() == hip.Established {
		return nil
	}
	delete(f.estabE, peerHIT)
	if err := f.host.ConnectVia(peerHIT, locator, p.Now()); err != nil {
		return err
	}
	if c := f.host.TakeCost(); c > 0 {
		f.node.CPU().Use(p, c)
	}
	f.flushNow()
	q := f.estabQ[peerHIT]
	if q == nil {
		q = netsim.NewWaitQueue(f.node.Net().Sim())
		f.estabQ[peerHIT] = q
	}
	deadline := p.Now() + f.BEXTimeout
	for {
		if a, ok := f.host.Association(peerHIT); ok && a.State() == hip.Established {
			return nil
		}
		if err, done := f.estabE[peerHIT]; done && err != nil {
			return err
		}
		remain := deadline - p.Now()
		if remain <= 0 {
			return ErrBEXTimeout
		}
		if q.Wait(p, remain) {
			return ErrBEXTimeout
		}
	}
}

// flushNow flushes pending outgoing control packets immediately (e.g. the
// I1 emitted by Connect from a user process) and kicks a service pass so
// the daemon's deadline timer is re-armed for retransmissions.
func (f *Fabric) flushNow() {
	f.flushOut()
	f.kick()
}

// Send seals one stream segment for the peer. Called by the simtcp pump.
// It takes ownership of data (simtcp.Fabric): the wire unit is recycled
// once sealed, and the ESP packet travels in a pooled buffer that the
// receiving fabric recycles after decryption.
func (f *Fabric) Send(peer netip.Addr, data []byte) (time.Duration, error) {
	hit, _, byLSI, err := f.reg.Resolve(peer)
	if err != nil {
		netsim.PutBuf(data)
		return 0, err
	}
	// Trailer framing: the type byte lands in the wire buffer's spare
	// pool-class capacity, so this append does not allocate.
	payload := append(data, innerStream)
	out, dst, err := f.host.SealDataAppend(
		netsim.GetBuf(len(payload) + esp.MaxOverhead)[:0],
		hit, payload, byLSI || f.lsiPeers[hit])
	cost := f.host.TakeCost()
	netsim.PutBuf(data)
	if err != nil {
		return cost, err
	}
	f.sendESP(dst, out)
	return cost, nil
}

// Attach installs the delivery callback (simtcp.Fabric).
func (f *Fabric) Attach(deliver func(peer netip.Addr, data []byte, cost time.Duration)) {
	f.deliver = deliver
}

// Ping sends an in-tunnel echo of the given payload size to peer (HIT or
// LSI) and returns the RTT, establishing the association first if needed.
// This is the HIP analogue of the paper's ICMP RTT measurements.
func (f *Fabric) Ping(p *netsim.Proc, peer netip.Addr, size int, timeout time.Duration) (time.Duration, error) {
	if err := f.Establish(p, peer); err != nil {
		return 0, err
	}
	hit, _, byLSI, err := f.reg.Resolve(peer)
	if err != nil {
		return 0, err
	}
	f.echoSeq++
	id := f.echoSeq
	if size < 9 {
		size = 9
	}
	// Echo layout under trailer framing: id in the first 8 bytes, zero
	// padding, type byte last.
	body := make([]byte, size)
	putUint64(body[0:8], id)
	body[size-1] = innerEchoRq
	w := &echoWait{wq: netsim.NewWaitQueue(f.node.Net().Sim()), sent: p.Now()}
	f.echoes[id] = w
	defer delete(f.echoes, id)
	out, dst, err := f.host.SealData(hit, body, byLSI)
	if err != nil {
		return 0, err
	}
	if c := f.host.TakeCost(); c > 0 {
		f.node.CPU().Use(p, c)
	}
	f.sendESP(dst, out)
	if !w.done {
		if w.wq.Wait(p, timeout) {
			return 0, netsim.ErrTimeout
		}
	}
	return w.rtt, nil
}

// DataOverheadBytes reports the per-segment ESP overhead for established
// associations with peer, for wire-size accounting.
func (f *Fabric) DataOverheadBytes(peer netip.Addr) int {
	hit, _, _, err := f.reg.Resolve(peer)
	if err != nil {
		return 0
	}
	if a, ok := f.host.Association(hit); ok {
		return a.DataOverhead() + 1 // inner type byte
	}
	return esp.HeaderLen + esp.ICVLen + 1
}

// MoveTo rehomes the fabric's host to a new locator (VM migration /
// IPv4-IPv6 handover): the HIP UPDATE announcements are sent immediately
// and the registry entry follows so new peers resolve the new address.
func (f *Fabric) MoveTo(newLocator netip.Addr) {
	f.host.MoveTo(newLocator, f.node.Net().Sim().Now())
	f.reg.Update(f.host.HIT(), newLocator)
	f.flushNow()
}

// Close stops the fabric: inbound packets are ignored, no further service
// passes are scheduled, and the daemon timer is disarmed.
func (f *Fabric) Close() {
	f.closed = true
	f.timer.Stop()
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

func beUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}
