package hipsim

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"hipcloud/internal/hip"
	"hipcloud/internal/identity"
	"hipcloud/internal/netsim"
	"hipcloud/internal/simtcp"
)

var (
	idA = identity.MustGenerate(identity.AlgECDSA)
	idB = identity.MustGenerate(identity.AlgECDSA)
)

var (
	addrA  = netip.MustParseAddr("10.0.0.1")
	addrB  = netip.MustParseAddr("10.0.0.2")
	addrB2 = netip.MustParseAddr("10.0.0.22")
)

type world struct {
	sim *netsim.Sim
	net *netsim.Network
	reg *Registry
	fa  *Fabric
	fb  *Fabric
	sa  *simtcp.Stack
	sb  *simtcp.Stack
	na  *netsim.Node
	nb  *netsim.Node
}

func buildWorld(t *testing.T, costs hip.CostModel, link netsim.Link) *world {
	t.Helper()
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	a := n.AddNode("a", 2, 1)
	b := n.AddNode("b", 2, 1)
	n.Connect(a, addrA, b, addrB, link)
	reg := NewRegistry()
	ha, err := hip.NewHost(hip.Config{Identity: idA, Locator: addrA, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := hip.NewHost(hip.Config{Identity: idB, Locator: addrB, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	fa := New(a, ha, reg)
	fb := New(b, hb, reg)
	return &world{
		sim: s, net: n, reg: reg, fa: fa, fb: fb,
		sa: simtcp.NewStack(a, fa), sb: simtcp.NewStack(b, fb),
		na: a, nb: b,
	}
}

func TestHIPStreamEcho(t *testing.T) {
	w := buildWorld(t, hip.CostModel{}, netsim.Link{Latency: time.Millisecond})
	l := w.sb.MustListen(80)
	w.sim.Spawn("server", func(p *netsim.Proc) {
		c, err := l.Accept(p, 0)
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		n, err := c.Read(p, buf)
		if err != nil {
			return
		}
		c.Write(p, buf[:n])
		c.Close()
	})
	var got []byte
	var dialErr error
	w.sim.Spawn("client", func(p *netsim.Proc) {
		c, err := w.sa.Dial(p, idB.HIT(), 80, 10*time.Second)
		if err != nil {
			dialErr = err
			return
		}
		c.Write(p, []byte("over hip"))
		buf := make([]byte, 64)
		n, err := c.Read(p, buf)
		if err == nil {
			got = buf[:n]
		}
		c.Close()
	})
	w.sim.Run(time.Minute)
	w.sim.Shutdown()
	if dialErr != nil {
		t.Fatalf("dial: %v", dialErr)
	}
	if string(got) != "over hip" {
		t.Fatalf("got %q", got)
	}
	// The association exists on both sides.
	if _, ok := w.fa.Host().Association(idB.HIT()); !ok {
		t.Fatal("no association on initiator")
	}
}

func TestHIPDialByLSI(t *testing.T) {
	w := buildWorld(t, hip.CostModel{}, netsim.Link{Latency: time.Millisecond})
	lsi := w.reg.LSI(idB.HIT())
	if !identity.IsLSI(lsi) {
		t.Fatalf("lsi = %v", lsi)
	}
	l := w.sb.MustListen(80)
	w.sim.Spawn("server", func(p *netsim.Proc) {
		c, err := l.Accept(p, 0)
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		n, _ := c.Read(p, buf)
		c.Write(p, buf[:n])
		c.Close()
	})
	var got []byte
	w.sim.Spawn("client", func(p *netsim.Proc) {
		c, err := w.sa.Dial(p, lsi, 80, 10*time.Second)
		if err != nil {
			return
		}
		c.Write(p, []byte("via lsi"))
		buf := make([]byte, 64)
		n, err := c.Read(p, buf)
		if err == nil {
			got = buf[:n]
		}
		c.Close()
	})
	w.sim.Run(time.Minute)
	w.sim.Shutdown()
	if string(got) != "via lsi" {
		t.Fatalf("got %q", got)
	}
}

func TestLSICostsMoreThanHIT(t *testing.T) {
	costs := hip.CostModel{
		SymmetricNsPerByte: 20,
		ShimPerPacket:      2 * time.Microsecond,
		LSITranslation:     30 * time.Microsecond,
	}
	run := func(peer func(w *world) netip.Addr) time.Duration {
		w := buildWorld(t, costs, netsim.Link{Latency: time.Millisecond, Bandwidth: 100e6})
		l := w.sb.MustListen(80)
		w.sim.Spawn("server", func(p *netsim.Proc) {
			c, err := l.Accept(p, 0)
			if err != nil {
				return
			}
			buf := make([]byte, 32*1024)
			for {
				if _, err := c.Read(p, buf); err != nil {
					return
				}
			}
		})
		w.sim.Spawn("client", func(p *netsim.Proc) {
			c, err := w.sa.Dial(p, peer(w), 80, 10*time.Second)
			if err != nil {
				return
			}
			c.Write(p, make([]byte, 256*1024))
			c.Close()
		})
		w.sim.Run(time.Minute)
		busy := w.na.CPU().BusyTime()
		w.sim.Shutdown()
		return busy
	}
	hitBusy := run(func(w *world) netip.Addr { return idB.HIT() })
	lsiBusy := run(func(w *world) netip.Addr { return w.reg.LSI(idB.HIT()) })
	if lsiBusy <= hitBusy {
		t.Fatalf("LSI CPU %v not above HIT CPU %v", lsiBusy, hitBusy)
	}
}

func TestHIPPingRTT(t *testing.T) {
	w := buildWorld(t, hip.CostModel{}, netsim.Link{Latency: 2 * time.Millisecond})
	var rtt time.Duration
	var err error
	w.sim.Spawn("pinger", func(p *netsim.Proc) {
		rtt, err = w.fa.Ping(p, idB.HIT(), 64, 5*time.Second)
	})
	w.sim.Run(30 * time.Second)
	w.sim.Shutdown()
	if err != nil {
		t.Fatalf("ping: %v", err)
	}
	if rtt < 4*time.Millisecond || rtt > 6*time.Millisecond {
		t.Fatalf("rtt = %v, want ≈4ms", rtt)
	}
}

func TestEstablishUnknownPeer(t *testing.T) {
	w := buildWorld(t, hip.CostModel{}, netsim.Link{})
	var err error
	w.sim.Spawn("client", func(p *netsim.Proc) {
		err = w.fa.Establish(p, netip.MustParseAddr("2001:10::dead"))
	})
	w.sim.Run(time.Second)
	w.sim.Shutdown()
	if err != ErrUnknownPeer {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestBEXChargesCPU(t *testing.T) {
	costs := hip.CostModel{
		Sign: 2 * time.Millisecond, Verify: time.Millisecond,
		DHCompute: 3 * time.Millisecond, DHKeygen: 2 * time.Millisecond,
		HashOp: time.Microsecond,
	}
	w := buildWorld(t, costs, netsim.Link{Latency: time.Millisecond})
	w.sim.Spawn("client", func(p *netsim.Proc) {
		if err := w.fa.Establish(p, idB.HIT()); err != nil {
			t.Errorf("establish: %v", err)
		}
	})
	w.sim.Run(time.Minute)
	w.sim.Shutdown()
	if w.na.CPU().BusyTime() < costs.DHCompute {
		t.Fatalf("initiator CPU busy %v, expected BEX costs charged", w.na.CPU().BusyTime())
	}
	if w.nb.CPU().BusyTime() < costs.DHCompute {
		t.Fatalf("responder CPU busy %v, expected BEX costs charged", w.nb.CPU().BusyTime())
	}
}

func TestMigrationKeepsConnection(t *testing.T) {
	// B is multihomed; after BEX it moves to its second address and the
	// stream keeps flowing.
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	a := n.AddNode("a", 2, 1)
	b := n.AddNode("b", 2, 1)
	r := n.AddRouter("r")
	n.Connect(a, addrA, r, netip.MustParseAddr("10.0.0.254"), netsim.Link{Latency: time.Millisecond})
	n.Connect(r, netip.MustParseAddr("10.0.1.254"), b, addrB, netsim.Link{Latency: time.Millisecond})
	n.Connect(r, netip.MustParseAddr("10.0.2.254"), b, addrB2, netsim.Link{Latency: time.Millisecond})
	a.AddDefaultRoute(netip.MustParseAddr("10.0.0.254"))
	b.AddDefaultRoute(netip.MustParseAddr("10.0.1.254"))
	r.AddRoute(netip.MustParsePrefix("10.0.0.0/24"), addrA)
	// r reaches b's addresses directly (host routes installed by Connect).

	reg := NewRegistry()
	ha, _ := hip.NewHost(hip.Config{Identity: idA, Locator: addrA})
	hb, _ := hip.NewHost(hip.Config{Identity: idB, Locator: addrB})
	fa := New(a, ha, reg)
	fb := New(b, hb, reg)
	sa := simtcp.NewStack(a, fa)
	sb := simtcp.NewStack(b, fb)

	l := sb.MustListen(80)
	var rounds int
	s.Spawn("server", func(p *netsim.Proc) {
		c, err := l.Accept(p, 0)
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		for {
			n, err := c.Read(p, buf)
			if err != nil {
				return
			}
			if _, err := c.Write(p, buf[:n]); err != nil {
				return
			}
		}
	})
	var migrated bool
	s.Spawn("client", func(p *netsim.Proc) {
		c, err := sa.Dial(p, idB.HIT(), 80, 10*time.Second)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		buf := make([]byte, 64)
		for i := 0; i < 10; i++ {
			msg := []byte{byte('0' + i)}
			if _, err := c.Write(p, msg); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			n, err := c.Read(p, buf)
			if err != nil || !bytes.Equal(buf[:n], msg) {
				t.Errorf("round %d failed: %q %v", i, buf[:n], err)
				return
			}
			rounds++
			if i == 4 {
				// Migrate B mid-stream.
				fb.MoveTo(addrB2)
				p.Sleep(100 * time.Millisecond) // let UPDATE handshake settle
				migrated = true
			}
		}
		c.Close()
	})
	s.Run(time.Minute)
	s.Shutdown()
	if !migrated || rounds != 10 {
		t.Fatalf("rounds = %d (migrated=%v), want 10 across migration", rounds, migrated)
	}
	// The initiator must now address the new locator.
	if assoc, ok := ha.Association(idB.HIT()); !ok || assoc.PeerLocator != addrB2 {
		t.Fatalf("peer locator not updated: %+v", assoc)
	}
}

func TestDialSurfacesGiveUpUnderTotalLoss(t *testing.T) {
	// 100% loss: every I1 retransmission vanishes. After the host's 4
	// retries it abandons the association and fires EventFailed; a Dial
	// blocked in Establish must surface that as ErrBEXFailed promptly
	// rather than hanging until its own BEXTimeout. RetransmitBase 20ms
	// puts the give-up at 16×20ms = 320ms, far from the 10s timeout.
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	a := n.AddNode("a", 2, 1)
	b := n.AddNode("b", 2, 1)
	n.Connect(a, addrA, b, addrB, netsim.Link{Latency: time.Millisecond, LossProb: 1})
	reg := NewRegistry()
	ha, _ := hip.NewHost(hip.Config{Identity: idA, Locator: addrA, RetransmitBase: 20 * time.Millisecond})
	hb, _ := hip.NewHost(hip.Config{Identity: idB, Locator: addrB})
	fa := New(a, ha, reg)
	New(b, hb, reg)
	sa := simtcp.NewStack(a, fa)

	var dialErr error
	var failedAt netsim.VTime
	s.Spawn("client", func(p *netsim.Proc) {
		_, dialErr = sa.Dial(p, idB.HIT(), 80, 10*time.Second)
		failedAt = p.Now()
	})
	s.Run(time.Minute)
	s.Shutdown()
	if dialErr != ErrBEXFailed {
		t.Fatalf("dial err = %v, want ErrBEXFailed", dialErr)
	}
	if failedAt >= fa.BEXTimeout {
		t.Fatalf("dial failed only at %v, not before BEXTimeout %v (hung to its own timeout)", failedAt, fa.BEXTimeout)
	}
	if failedAt > 2*time.Second {
		t.Fatalf("dial failed at %v, want ≲620ms (the host's give-up point)", failedAt)
	}
	if _, alive := ha.Association(idB.HIT()); alive {
		t.Fatal("abandoned association still present")
	}
}

func TestDialGiveUpBeatsBEXTimeoutWithDefaults(t *testing.T) {
	// Same scenario with the DEFAULT retransmission schedule: the host's
	// give-up (16×500ms = 8s) must land strictly before the fabric's 10s
	// BEXTimeout, so the caller learns the real failure mode. Before the
	// schedule fix the give-up sat at 15.5s and every total-loss Dial
	// surfaced a generic timeout instead.
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	a := n.AddNode("a", 2, 1)
	b := n.AddNode("b", 2, 1)
	n.Connect(a, addrA, b, addrB, netsim.Link{Latency: time.Millisecond, LossProb: 1})
	reg := NewRegistry()
	ha, _ := hip.NewHost(hip.Config{Identity: idA, Locator: addrA})
	hb, _ := hip.NewHost(hip.Config{Identity: idB, Locator: addrB})
	fa := New(a, ha, reg)
	New(b, hb, reg)
	sa := simtcp.NewStack(a, fa)

	var dialErr error
	var failedAt netsim.VTime
	s.Spawn("client", func(p *netsim.Proc) {
		_, dialErr = sa.Dial(p, idB.HIT(), 80, 30*time.Second)
		failedAt = p.Now()
	})
	s.Run(time.Minute)
	s.Shutdown()
	if dialErr != ErrBEXFailed {
		t.Fatalf("dial err = %v at %v, want ErrBEXFailed", dialErr, failedAt)
	}
	if failedAt >= fa.BEXTimeout {
		t.Fatalf("give-up at %v is not before BEXTimeout %v", failedAt, fa.BEXTimeout)
	}
}

func TestRegistryResolve(t *testing.T) {
	reg := NewRegistry()
	lsi := reg.Register(idA.HIT(), addrA)
	hit, loc, byLSI, err := reg.Resolve(idA.HIT())
	if err != nil || hit != idA.HIT() || loc != addrA || byLSI {
		t.Fatalf("resolve HIT: %v %v %v %v", hit, loc, byLSI, err)
	}
	hit, loc, byLSI, err = reg.Resolve(lsi)
	if err != nil || hit != idA.HIT() || loc != addrA || !byLSI {
		t.Fatalf("resolve LSI: %v %v %v %v", hit, loc, byLSI, err)
	}
	if _, _, _, err := reg.Resolve(netip.MustParseAddr("192.0.2.1")); err != ErrUnknownPeer {
		t.Fatalf("non-identifier resolve err = %v", err)
	}
	if _, _, _, err := reg.Resolve(netip.MustParseAddr("1.9.9.9")); err != ErrUnknownPeer {
		t.Fatalf("unknown LSI resolve err = %v", err)
	}
}

func TestIPv4ToIPv6Handover(t *testing.T) {
	// The paper (§IV-C): "HIP ... supports IPv4-IPv6 handovers" — the
	// association survives the peer rehoming from an IPv4 locator to an
	// IPv6 one, because transport state binds to HITs, not addresses.
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	a := n.AddNode("a", 2, 1)
	b := n.AddNode("b", 2, 1)
	r := n.AddRouter("r")
	v4a := netip.MustParseAddr("10.0.1.1")
	v4b := netip.MustParseAddr("10.0.2.1")
	v6b := netip.MustParseAddr("2001:db8::b")
	n.Connect(a, v4a, r, netip.MustParseAddr("10.0.1.254"), netsim.Link{Latency: time.Millisecond})
	n.Connect(r, netip.MustParseAddr("10.0.2.254"), b, v4b, netsim.Link{Latency: time.Millisecond})
	n.Connect(r, netip.MustParseAddr("2001:db8::254"), b, v6b, netsim.Link{Latency: time.Millisecond})
	a.AddDefaultRoute(netip.MustParseAddr("10.0.1.254"))
	b.AddDefaultRoute(netip.MustParseAddr("10.0.2.254"))
	r.AddRoute(netip.MustParsePrefix("10.0.1.0/24"), v4a)

	reg := NewRegistry()
	ha, _ := hip.NewHost(hip.Config{Identity: idA, Locator: v4a})
	hb, _ := hip.NewHost(hip.Config{Identity: idB, Locator: v4b})
	fa := New(a, ha, reg)
	fb := New(b, hb, reg)
	sa := simtcp.NewStack(a, fa)
	sb := simtcp.NewStack(b, fb)

	l := sb.MustListen(80)
	s.Spawn("server", func(p *netsim.Proc) {
		c, err := l.Accept(p, 0)
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		for {
			n, err := c.Read(p, buf)
			if err != nil {
				return
			}
			if _, err := c.Write(p, buf[:n]); err != nil {
				return
			}
		}
	})
	var ok int
	s.Spawn("client", func(p *netsim.Proc) {
		c, err := sa.Dial(p, idB.HIT(), 80, 10*time.Second)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		buf := make([]byte, 64)
		echo := func(msg string) bool {
			if _, err := c.Write(p, []byte(msg)); err != nil {
				return false
			}
			n, err := c.Read(p, buf)
			return err == nil && string(buf[:n]) == msg
		}
		if echo("over v4") {
			ok++
		}
		// B hands over to its IPv6 locator mid-connection.
		fb.MoveTo(v6b)
		p.Sleep(200 * time.Millisecond)
		if echo("over v6") {
			ok++
		}
		c.Close()
	})
	s.Run(time.Minute)
	s.Shutdown()
	if ok != 2 {
		t.Fatalf("echo rounds = %d, want 2 (one per address family)", ok)
	}
	if assoc, found := ha.Association(idB.HIT()); !found || !assoc.PeerLocator.Is6() {
		t.Fatalf("peer locator did not move to IPv6: %+v", assoc)
	}
}

func TestAutomaticRekeyDuringLiveTraffic(t *testing.T) {
	// A low rekey threshold makes the kernel rotate SAs mid-stream; the
	// application-level echo loop must never notice.
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	a := n.AddNode("a", 2, 1)
	b := n.AddNode("b", 2, 1)
	n.Connect(a, addrA, b, addrB, netsim.Link{Latency: time.Millisecond})
	reg := NewRegistry()
	ha, _ := hip.NewHost(hip.Config{Identity: idA, Locator: addrA, RekeyThreshold: 40})
	hb, _ := hip.NewHost(hip.Config{Identity: idB, Locator: addrB})
	fa := New(a, ha, reg)
	fb := New(b, hb, reg)
	sa := simtcp.NewStack(a, fa)
	sb := simtcp.NewStack(b, fb)

	l := sb.MustListen(80)
	s.Spawn("server", func(p *netsim.Proc) {
		c, err := l.Accept(p, 0)
		if err != nil {
			return
		}
		buf := make([]byte, 256)
		for {
			n, err := c.Read(p, buf)
			if err != nil {
				return
			}
			if _, err := c.Write(p, buf[:n]); err != nil {
				return
			}
		}
	})
	rounds := 0
	s.Spawn("client", func(p *netsim.Proc) {
		c, err := sa.Dial(p, idB.HIT(), 80, 10*time.Second)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		buf := make([]byte, 256)
		for i := 0; i < 120; i++ {
			msg := []byte{byte(i), byte(i >> 8)}
			if _, err := c.Write(p, msg); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			nr, err := c.Read(p, buf)
			if err != nil || nr != 2 || buf[0] != byte(i) {
				t.Errorf("round %d: %v %v", i, buf[:nr], err)
				return
			}
			rounds++
			p.Sleep(20 * time.Millisecond)
		}
		c.Close()
	})
	s.Run(time.Minute)
	s.Shutdown()
	if rounds != 120 {
		t.Fatalf("rounds = %d, want 120", rounds)
	}
	assoc, ok := ha.Association(idB.HIT())
	if !ok || assoc.Rekeys == 0 {
		t.Fatalf("no automatic rekey happened: %+v", assoc)
	}
}

func TestCloseThenReconnect(t *testing.T) {
	w := buildWorld(t, hip.CostModel{}, netsim.Link{Latency: time.Millisecond})
	l := w.sb.MustListen(80)
	w.sim.Spawn("server", func(p *netsim.Proc) {
		for {
			c, err := l.Accept(p, 0)
			if err != nil {
				return
			}
			conn := c
			p.Spawn("h", func(hp *netsim.Proc) {
				buf := make([]byte, 64)
				n, err := conn.Read(hp, buf)
				if err == nil {
					conn.Write(hp, buf[:n])
				}
				conn.Close()
			})
		}
	})
	ok := 0
	w.sim.Spawn("client", func(p *netsim.Proc) {
		for i := 0; i < 3; i++ {
			c, err := w.sa.Dial(p, idB.HIT(), 80, 10*time.Second)
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			c.Write(p, []byte("ping"))
			buf := make([]byte, 64)
			if n, err := c.Read(p, buf); err == nil && string(buf[:n]) == "ping" {
				ok++
			}
			c.Close()
			// Tear the HIP association down entirely between rounds: the
			// next Dial must run a fresh base exchange.
			w.fa.Host().Close(idB.HIT(), p.Now())
			w.fa.flushNow()
			p.Sleep(100 * time.Millisecond)
			if _, alive := w.fa.Host().Association(idB.HIT()); alive {
				t.Error("association survived CLOSE")
				return
			}
		}
	})
	w.sim.Run(time.Minute)
	w.sim.Shutdown()
	if ok != 3 {
		t.Fatalf("rounds = %d, want 3 across re-associations", ok)
	}
	if got := w.fa.Host().BEXInitiated; got != 3 {
		t.Fatalf("expected 3 base exchanges, got %d", got)
	}
}
