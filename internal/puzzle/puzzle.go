// Package puzzle implements the HIP computational puzzle of RFC 5201
// §4.1.2: the responder challenges the initiator with (I, K); the
// initiator must find J such that the low K bits of
// SHA-256(I | HIT-I | HIT-R | J) are zero. Verification costs one hash;
// solving costs ~2^K hashes, letting a loaded responder shed work onto
// clients (the paper's DoS-protection argument, §IV-B).
package puzzle

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"net/netip"
)

// MaxK bounds accepted difficulty so a malicious responder cannot wedge an
// initiator (2^20 hashes ≈ tens of milliseconds).
const MaxK = 28

// ErrTooHard is returned when a puzzle's difficulty exceeds MaxK.
var ErrTooHard = errors.New("puzzle: difficulty above acceptable bound")

// ErrUnsolvable is returned when no solution is found within the attempt
// budget (practically impossible for sane K).
var ErrUnsolvable = errors.New("puzzle: no solution found")

// digest computes SHA-256(I | HIT-I | HIT-R | J).
func digest(i uint64, hitI, hitR netip.Addr, j uint64) [32]byte {
	var buf [48]byte
	binary.BigEndian.PutUint64(buf[0:], i)
	a := hitI.As16()
	copy(buf[8:24], a[:])
	b := hitR.As16()
	copy(buf[24:40], b[:])
	binary.BigEndian.PutUint64(buf[40:], j)
	return sha256.Sum256(buf[:])
}

// lowBitsZero reports whether the low k bits of sum are all zero
// (Ltrunc in RFC 5201 terms).
func lowBitsZero(sum [32]byte, k uint8) bool {
	bits := int(k)
	for i := len(sum) - 1; i >= 0 && bits > 0; i-- {
		take := bits
		if take > 8 {
			take = 8
		}
		mask := byte(1<<take - 1)
		if sum[i]&mask != 0 {
			return false
		}
		bits -= take
	}
	return true
}

// Solve finds J for the puzzle (i, k) between the two HITs, starting the
// search at seed (callers pass a random seed so concurrent solvers
// diverge). It returns the number of hash attempts alongside J.
func Solve(i uint64, k uint8, hitI, hitR netip.Addr, seed uint64) (j uint64, attempts uint64, err error) {
	if k > MaxK {
		return 0, 0, ErrTooHard
	}
	j = seed
	limit := uint64(1) << (uint(k) + 8) // generous margin over the 2^K mean
	if k == 0 {
		return j, 1, nil
	}
	for attempts = 1; attempts <= limit; attempts++ {
		if lowBitsZero(digest(i, hitI, hitR, j), k) {
			return j, attempts, nil
		}
		j++
	}
	return 0, attempts, ErrUnsolvable
}

// Verify checks a claimed solution J in one hash.
func Verify(i uint64, k uint8, hitI, hitR netip.Addr, j uint64) bool {
	if k == 0 {
		return true
	}
	return lowBitsZero(digest(i, hitI, hitR, j), k)
}

// Difficulty is a load-adaptive controller for K: the responder raises
// difficulty as its pending-handshake load grows, per the DoS design the
// paper inherits from HIP.
type Difficulty struct {
	// BaseK is the difficulty at or below LowWater load.
	BaseK uint8
	// MaxK caps the difficulty at HighWater load and above.
	MaxK uint8
	// LowWater / HighWater are pending-handshake counts between which K
	// interpolates linearly.
	LowWater, HighWater int
}

// DefaultDifficulty mirrors common HIPL defaults: trivial puzzles when
// idle, up to 2^16 work under attack.
var DefaultDifficulty = Difficulty{BaseK: 1, MaxK: 16, LowWater: 8, HighWater: 256}

// K returns the difficulty for the given pending-handshake load.
func (d Difficulty) K(load int) uint8 {
	if d.HighWater <= d.LowWater {
		return d.BaseK
	}
	switch {
	case load <= d.LowWater:
		return d.BaseK
	case load >= d.HighWater:
		return d.MaxK
	}
	span := int(d.MaxK) - int(d.BaseK)
	frac := float64(load-d.LowWater) / float64(d.HighWater-d.LowWater)
	return d.BaseK + uint8(frac*float64(span)+0.5)
}
