package puzzle

import (
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	hitI = netip.MustParseAddr("2001:10::1")
	hitR = netip.MustParseAddr("2001:10::2")
)

func TestSolveVerify(t *testing.T) {
	for _, k := range []uint8{0, 1, 4, 8, 12} {
		j, attempts, err := Solve(0x1234, k, hitI, hitR, 1)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !Verify(0x1234, k, hitI, hitR, j) {
			t.Fatalf("k=%d: solution %d does not verify", k, j)
		}
		if k >= 8 && attempts < 2 {
			t.Logf("k=%d solved on first try (lucky seed)", k)
		}
	}
}

func TestVerifyRejectsWrongInputs(t *testing.T) {
	const k = 10
	j, _, err := Solve(42, k, hitI, hitR, 7)
	if err != nil {
		t.Fatal(err)
	}
	if Verify(43, k, hitI, hitR, j) {
		t.Error("verified under wrong I")
	}
	if Verify(42, k, hitR, hitI, j) {
		t.Error("verified under swapped HITs")
	}
	if Verify(42, k, hitI, hitR, j+1) && Verify(42, k, hitI, hitR, j+2) {
		t.Error("neighbouring Js both verify; puzzle looks degenerate")
	}
}

func TestSolveRejectsTooHard(t *testing.T) {
	if _, _, err := Solve(1, MaxK+1, hitI, hitR, 0); err != ErrTooHard {
		t.Fatalf("err = %v, want ErrTooHard", err)
	}
}

func TestZeroKAlwaysVerifies(t *testing.T) {
	if !Verify(9, 0, hitI, hitR, 12345) {
		t.Fatal("K=0 must accept any J")
	}
}

func TestAttemptsGrowWithK(t *testing.T) {
	// Average attempts over seeds should grow roughly 2^K.
	mean := func(k uint8) float64 {
		var total uint64
		const n = 24
		for seed := uint64(0); seed < n; seed++ {
			_, att, err := Solve(uint64(seed*977+3), k, hitI, hitR, seed*1_000_003)
			if err != nil {
				t.Fatal(err)
			}
			total += att
		}
		return float64(total) / n
	}
	m4, m10 := mean(4), mean(10)
	if m10 < m4*8 {
		t.Fatalf("mean attempts k=4: %.1f, k=10: %.1f; expected ≥8x growth", m4, m10)
	}
}

func TestDifficultyController(t *testing.T) {
	d := Difficulty{BaseK: 2, MaxK: 16, LowWater: 10, HighWater: 110}
	if got := d.K(0); got != 2 {
		t.Fatalf("idle K = %d", got)
	}
	if got := d.K(10); got != 2 {
		t.Fatalf("low-water K = %d", got)
	}
	if got := d.K(1000); got != 16 {
		t.Fatalf("overload K = %d", got)
	}
	mid := d.K(60)
	if mid <= 2 || mid >= 16 {
		t.Fatalf("mid-load K = %d, want interpolated", mid)
	}
	// Monotone non-decreasing in load.
	prev := uint8(0)
	for load := 0; load <= 200; load += 5 {
		k := d.K(load)
		if k < prev {
			t.Fatalf("K decreased from %d to %d at load %d", prev, k, load)
		}
		prev = k
	}
}

func TestDifficultyDegenerateConfig(t *testing.T) {
	d := Difficulty{BaseK: 3, MaxK: 10, LowWater: 50, HighWater: 50}
	if got := d.K(1000); got != 3 {
		t.Fatalf("degenerate config K = %d, want BaseK", got)
	}
}

// Property: every solved puzzle verifies, for arbitrary I and seeds.
func TestSolveVerifyProperty(t *testing.T) {
	f := func(i, seed uint64, kRaw uint8) bool {
		k := kRaw % 12
		j, _, err := Solve(i, k, hitI, hitR, seed)
		if err != nil {
			return false
		}
		return Verify(i, k, hitI, hitR, j)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolveK8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := Solve(uint64(i), 8, hitI, hitR, uint64(i)*7919); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	j, _, _ := Solve(1, 10, hitI, hitR, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Verify(1, 10, hitI, hitR, j) {
			b.Fatal("verify failed")
		}
	}
}
