package tlslite

import (
	"bytes"
	"testing"

	"hipcloud/internal/keymat"
)

// connPair wires two Conns with matched directional keys directly (no
// handshake), for record-layer unit tests and benchmarks. The stream is
// a shared in-memory buffer: a.Write feeds b.Read.
func connPair(tb testing.TB) (a, b *Conn) {
	tb.Helper()
	return connPairSuite(tb, legacySuite)
}

// connPairSuite is connPair for an explicit record suite, deriving
// deterministic directional keys of the suite's registry lengths.
func connPairSuite(tb testing.TB, s keymat.Suite) (a, b *Conn) {
	tb.Helper()
	lb := &bytes.Buffer{}
	encLen, err := s.EncKeyLen()
	if err != nil {
		tb.Fatal(err)
	}
	authLen, err := s.AuthKeyLen()
	if err != nil {
		tb.Fatal(err)
	}
	cliEnc := bytes.Repeat([]byte{0x31}, encLen)
	srvEnc := bytes.Repeat([]byte{0x64, 0x65}, (encLen+1)/2)[:encLen]
	cliAuth := bytes.Repeat([]byte{0x11}, authLen)
	srvAuth := bytes.Repeat([]byte{0x22}, authLen)
	a, err = newConn(lb, Config{}, s, cliEnc, cliAuth, srvEnc, srvAuth, true, nil)
	if err != nil {
		tb.Fatal(err)
	}
	b, err = newConn(lb, Config{}, s, cliEnc, cliAuth, srvEnc, srvAuth, false, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return a, b
}

func TestRecordSealAppendMatchesSealRecord(t *testing.T) {
	a1, _ := connPair(t)
	a2, _ := connPair(t)
	plain := bytes.Repeat([]byte{0x5A}, 333)
	for i := 0; i < 3; i++ {
		r1 := a1.sealRecord(plain)
		r2 := a2.sealRecordAppend(make([]byte, 0, 512), plain)
		if !bytes.Equal(r1, r2) {
			t.Fatalf("sealRecord and sealRecordAppend diverge at record %d", i)
		}
	}
}

func TestRecordRoundTripThroughConnBuffers(t *testing.T) {
	a, b := connPair(t)
	for _, n := range []int{0, 1, 100, maxRecord, maxRecord + 5000} {
		msg := bytes.Repeat([]byte{byte(n)}, n)
		if _, err := a.Write(msg); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 0, n)
		buf := make([]byte, 4096)
		for len(got) < n {
			rn, err := b.Read(buf)
			if err != nil {
				t.Fatalf("read after %d/%d bytes: %v", len(got), n, err)
			}
			got = append(got, buf[:rn]...)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round trip mismatch at len %d", n)
		}
	}
}

func TestOpenRecordDoesNotModifyInput(t *testing.T) {
	a, b := connPair(t)
	rec := a.sealRecord([]byte("immutable input"))
	snapshot := append([]byte(nil), rec...)
	if _, err := b.openRecord(rec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec, snapshot) {
		t.Fatal("openRecord mutated its input record")
	}
}

func TestSealRecordAppendZeroAlloc(t *testing.T) {
	a, _ := connPair(t)
	plain := bytes.Repeat([]byte{7}, 1400)
	dst := make([]byte, 0, len(plain)+macLen)
	allocs := testing.AllocsPerRun(200, func() {
		dst = a.sealRecordAppend(dst[:0], plain)
	})
	if allocs != 0 {
		t.Errorf("sealRecordAppend allocates %v/op, want 0", allocs)
	}
}

func TestOpenRecordInPlaceZeroAlloc(t *testing.T) {
	a, b := connPair(t)
	rec := a.sealRecord(bytes.Repeat([]byte{7}, 1400))
	scratch := make([]byte, len(rec))
	allocs := testing.AllocsPerRun(200, func() {
		// Decryption is in place, so restore the ciphertext and rewind
		// the sequence each run; both are allocation-free.
		copy(scratch, rec)
		b.inSeq = 0
		if _, err := b.openRecordInPlace(scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("openRecordInPlace allocates %v/op, want 0", allocs)
	}
}

func BenchmarkRecordSeal1400(b *testing.B) {
	a, _ := connPair(b)
	plain := bytes.Repeat([]byte{7}, 1400)
	b.SetBytes(1400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.sealRecord(plain)
	}
}

func BenchmarkRecordSealAppend1400(b *testing.B) {
	a, _ := connPair(b)
	plain := bytes.Repeat([]byte{7}, 1400)
	dst := make([]byte, 0, len(plain)+macLen)
	b.SetBytes(1400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = a.sealRecordAppend(dst[:0], plain)
	}
}

func BenchmarkRecordOpen1400(b *testing.B) {
	a, c := connPair(b)
	rec := a.sealRecord(bytes.Repeat([]byte{7}, 1400))
	b.SetBytes(1400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.inSeq = 0
		if _, err := c.openRecord(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecordOpenInPlace1400(b *testing.B) {
	a, c := connPair(b)
	rec := a.sealRecord(bytes.Repeat([]byte{7}, 1400))
	scratch := make([]byte, len(rec))
	b.SetBytes(1400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, rec)
		c.inSeq = 0
		if _, err := c.openRecordInPlace(scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecordWriteRead1400 measures the full Write→wire→Read path
// through the reusable conn buffers.
func BenchmarkRecordWriteRead1400(b *testing.B) {
	a, c := connPair(b)
	msg := bytes.Repeat([]byte{7}, 1400)
	out := make([]byte, 2048)
	b.SetBytes(1400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Write(msg); err != nil {
			b.Fatal(err)
		}
		for got := 0; got < len(msg); {
			n, err := c.Read(out)
			if err != nil {
				b.Fatal(err)
			}
			got += n
		}
	}
}
