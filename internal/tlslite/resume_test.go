package tlslite

import (
	"sync"
	"testing"
	"time"
)

// resumingHandshake runs one handshake with the given shared caches.
func resumingHandshake(t *testing.T, cache *SessionCache, sessions *ServerSessions, costs Costs, cliCost, srvCost *time.Duration) (*Conn, *Conn) {
	t.Helper()
	cliCfg := Config{
		ServerName: "web1", Cache: cache, Costs: costs,
		Charge: func(d time.Duration) { *cliCost += d },
	}
	srvCfg := Config{
		Identity: srvID, Sessions: sessions, Costs: costs,
		Charge: func(d time.Duration) { *srvCost += d },
	}
	ce, se := pipePair()
	var cli, srv *Conn
	var cerr, serr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); cli, cerr = Client(ce, cliCfg) }()
	go func() { defer wg.Done(); srv, serr = Server(se, srvCfg) }()
	wg.Wait()
	if cerr != nil || serr != nil {
		t.Fatalf("handshake: client=%v server=%v", cerr, serr)
	}
	return cli, srv
}

func TestResumptionSkipsAsymmetricCrypto(t *testing.T) {
	costs := Costs{
		Sign: 10 * time.Millisecond, Verify: 5 * time.Millisecond,
		DHKeygen: 5 * time.Millisecond, DHCompute: 5 * time.Millisecond,
	}
	cache := NewSessionCache()
	sessions := NewServerSessions()

	var c1, s1 time.Duration
	cli, srv := resumingHandshake(t, cache, sessions, costs, &c1, &s1)
	if c1 < costs.Verify || s1 < costs.Sign {
		t.Fatalf("full handshake costs too low: cli=%v srv=%v", c1, s1)
	}
	if sessions.Len() != 1 {
		t.Fatalf("server stored %d sessions", sessions.Len())
	}
	// Second connection resumes: no Sign/Verify/DH at all.
	var c2, s2 time.Duration
	cli2, srv2 := resumingHandshake(t, cache, sessions, costs, &c2, &s2)
	if c2 != 0 || s2 != 0 {
		t.Fatalf("resumed handshake paid asymmetric crypto: cli=%v srv=%v", c2, s2)
	}
	// Resumed channel carries data.
	go srv2.Read(make([]byte, 64))
	if _, err := cli2.Write([]byte("resumed")); err != nil {
		t.Fatal(err)
	}
	// Independent: the first channel still works too.
	go srv.Read(make([]byte, 64))
	if _, err := cli.Write([]byte("original")); err != nil {
		t.Fatal(err)
	}
}

func TestResumptionFreshKeysPerSession(t *testing.T) {
	cache := NewSessionCache()
	sessions := NewServerSessions()
	var d time.Duration
	cli1, _ := resumingHandshake(t, cache, sessions, Costs{}, &d, &d)
	cli2, _ := resumingHandshake(t, cache, sessions, Costs{}, &d, &d)
	// Same master secret, fresh randoms: record keys must differ — a
	// record from session 2 cannot authenticate under session 1's keys.
	rec2 := cli2.sealRecord([]byte("cross-session replay"))
	if _, err := cli1.openRecord(rec2); err == nil {
		t.Fatal("record sealed in resumed session decrypts under old keys")
	}
}

func TestUnknownTicketFallsBackToFullHandshake(t *testing.T) {
	cache := NewSessionCache()
	// Poison the cache with a ticket the server never issued.
	cache.put("web1", []byte("bogus-ticket-000"), make([]byte, 32), legacySuite)
	sessions := NewServerSessions()
	var c, s time.Duration
	costs := Costs{Sign: time.Millisecond, Verify: time.Millisecond}
	cli, srv := resumingHandshake(t, cache, sessions, costs, &c, &s)
	if c == 0 || s == 0 {
		t.Fatal("fallback did not run the full handshake")
	}
	// The bogus entry was replaced by a fresh valid one.
	sess, ok := cache.get("web1")
	if !ok || string(sess.ticket) == "bogus-ticket-000" {
		t.Fatal("cache not refreshed after fallback")
	}
	go srv.Read(make([]byte, 16))
	if _, err := cli.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestNoCacheNoTicketStored(t *testing.T) {
	sessions := NewServerSessions()
	ce, se := pipePair()
	var wg sync.WaitGroup
	wg.Add(2)
	var cerr, serr error
	go func() { defer wg.Done(); _, cerr = Client(ce, Config{}) }()
	go func() { defer wg.Done(); _, serr = Server(se, Config{Identity: srvID, Sessions: sessions}) }()
	wg.Wait()
	if cerr != nil || serr != nil {
		t.Fatalf("handshake: %v %v", cerr, serr)
	}
	// Ticket was issued and stored server-side; a cacheless client just
	// ignores it. (Server-side storage is bounded by Cap.)
	if sessions.Len() != 1 {
		t.Fatalf("sessions = %d", sessions.Len())
	}
}

func TestServerSessionsCapBound(t *testing.T) {
	s := NewServerSessions()
	s.Cap = 8
	for i := 0; i < 50; i++ {
		s.put([]byte{byte(i)}, []byte("secret"), legacySuite)
	}
	if s.Len() > 8 {
		t.Fatalf("store grew to %d, cap 8", s.Len())
	}
}

func BenchmarkFullHandshake(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ce, se := pipePair()
		var wg sync.WaitGroup
		wg.Add(2)
		var cerr, serr error
		go func() { defer wg.Done(); _, cerr = Client(ce, Config{}) }()
		go func() { defer wg.Done(); _, serr = Server(se, Config{Identity: srvID}) }()
		wg.Wait()
		if cerr != nil || serr != nil {
			b.Fatalf("%v %v", cerr, serr)
		}
	}
}

func BenchmarkResumedHandshake(b *testing.B) {
	cache := NewSessionCache()
	sessions := NewServerSessions()
	// Prime with one full handshake.
	prime := func() {
		ce, se := pipePair()
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); Client(ce, Config{ServerName: "s", Cache: cache}) }()
		go func() { defer wg.Done(); Server(se, Config{Identity: srvID, Sessions: sessions}) }()
		wg.Wait()
	}
	prime()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ce, se := pipePair()
		var wg sync.WaitGroup
		wg.Add(2)
		var cerr, serr error
		go func() { defer wg.Done(); _, cerr = Client(ce, Config{ServerName: "s", Cache: cache}) }()
		go func() { defer wg.Done(); _, serr = Server(se, Config{Identity: srvID, Sessions: sessions}) }()
		wg.Wait()
		if cerr != nil || serr != nil {
			b.Fatalf("%v %v", cerr, serr)
		}
	}
}
