package tlslite

import (
	"bytes"
	"crypto/ecdh"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"hipcloud/internal/keymat"
)

// aeadSuites are the modern record protections under test.
var aeadSuites = []keymat.Suite{
	keymat.SuiteAESGCM128, keymat.SuiteAESGCM256, keymat.SuiteChaCha20Poly1305,
}

// modernSuites is a full preference list: AEAD first, legacy fallback.
var modernSuites = []keymat.Suite{
	keymat.SuiteAESGCM128, keymat.SuiteChaCha20Poly1305, keymat.SuiteAESGCM256,
	legacySuite,
}

// tryHandshake runs client and server concurrently and returns both
// results without failing the test, for negative cases.
func tryHandshake(cliCfg, srvCfg Config) (cli, srv *Conn, cerr, serr error) {
	ce, se := pipePair()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		cli, cerr = Client(ce, cliCfg)
		if cerr != nil {
			ce.w.Close()
		}
	}()
	go func() {
		defer wg.Done()
		srv, serr = Server(se, srvCfg)
		if serr != nil {
			se.w.Close()
		}
	}()
	wg.Wait()
	return cli, srv, cerr, serr
}

func TestHandshakeNegotiatesAEAD(t *testing.T) {
	for _, s := range aeadSuites {
		t.Run(s.String(), func(t *testing.T) {
			cli, srv := handshake(t,
				Config{Suites: []keymat.Suite{s}},
				Config{Identity: srvID, Suites: modernSuites})
			if cli.Suite() != s || srv.Suite() != s {
				t.Fatalf("negotiated %v / %v, want %v", cli.Suite(), srv.Suite(), s)
			}
			go func() {
				buf := make([]byte, 64)
				n, err := srv.Read(buf)
				if err != nil {
					return
				}
				srv.Write(buf[:n])
			}()
			cli.Write([]byte("aead echo"))
			buf := make([]byte, 64)
			n, err := cli.Read(buf)
			if err != nil || string(buf[:n]) != "aead echo" {
				t.Fatalf("echo: %q %v", buf[:n], err)
			}
		})
	}
}

// The server's preference order decides: a legacy-first client offer
// cannot steer mutually-AEAD-capable peers onto the legacy suite.
func TestServerPreferenceResistsDowngradeOrdering(t *testing.T) {
	legacyFirst := []keymat.Suite{legacySuite, keymat.SuiteChaCha20Poly1305, keymat.SuiteAESGCM128}
	cli, srv := handshake(t,
		Config{Suites: legacyFirst},
		Config{Identity: srvID, Suites: modernSuites})
	if cli.Suite() != keymat.SuiteAESGCM128 || srv.Suite() != keymat.SuiteAESGCM128 {
		t.Fatalf("negotiated %v / %v, want the server's AEAD head", cli.Suite(), srv.Suite())
	}
}

// Suite-aware peers interoperate with nil-Suites (legacy-format) peers
// in both role combinations, landing on the legacy record layer.
func TestMixedEraInterop(t *testing.T) {
	cli, srv := handshake(t, Config{Suites: modernSuites}, Config{Identity: srvID})
	if cli.Suite() != legacySuite || srv.Suite() != legacySuite {
		t.Fatalf("modern client / legacy server: %v / %v", cli.Suite(), srv.Suite())
	}
	cli2, srv2 := handshake(t, Config{}, Config{Identity: srvID, Suites: modernSuites})
	if cli2.Suite() != legacySuite || srv2.Suite() != legacySuite {
		t.Fatalf("legacy client / modern server: %v / %v", cli2.Suite(), srv2.Suite())
	}
	go srv2.Write([]byte("mixed era")) // data still flows
	buf := make([]byte, 32)
	n, err := cli2.Read(buf)
	if err != nil || string(buf[:n]) != "mixed era" {
		t.Fatalf("%q %v", buf[:n], err)
	}
}

// AEAD-only policies refuse rather than downgrade, in both directions.
func TestAEADOnlyPolicyRefusesLegacyPeer(t *testing.T) {
	aeadOnly := []keymat.Suite{keymat.SuiteAESGCM128, keymat.SuiteChaCha20Poly1305}
	// AEAD-only client, legacy server: the server answers with a legacy
	// ServerHello and the client must abort.
	cli, _, cerr, _ := tryHandshake(Config{Suites: aeadOnly}, Config{Identity: srvID})
	if cli != nil || !errors.Is(cerr, ErrNoSuite) {
		t.Fatalf("AEAD-only client accepted legacy server: conn=%v err=%v", cli, cerr)
	}
	// Legacy client, AEAD-only server: the server finds no common suite.
	_, srv, _, serr := tryHandshake(Config{}, Config{Identity: srvID, Suites: aeadOnly})
	if srv != nil || !errors.Is(serr, ErrNoSuite) {
		t.Fatalf("AEAD-only server accepted legacy client: conn=%v err=%v", srv, serr)
	}
}

// Config.Suites entries without a record-layer mapping are rejected up
// front on both sides.
func TestSuitesValidated(t *testing.T) {
	bad := []keymat.Suite{keymat.SuiteAESCBCSHA256}
	if _, err := Client(&pipeEnd{}, Config{Suites: bad}); !errors.Is(err, ErrNoSuite) {
		t.Fatalf("client accepted CBC in Suites: %v", err)
	}
	if _, err := Server(&pipeEnd{}, Config{Identity: srvID, Suites: bad}); !errors.Is(err, ErrNoSuite) {
		t.Fatalf("server accepted CBC in Suites: %v", err)
	}
}

// A nil-Suites client emits exactly the pre-negotiation ClientHello
// bytes, and a nil-Suites server answers with a ServerHello carrying no
// trailing suite field — the legacy wire is byte-identical.
func TestLegacyWireShapeUnchanged(t *testing.T) {
	clientRand := bytes.Repeat([]byte{0x7C}, 32)
	legacy := msg(msgClientHello, append(append([]byte{}, clientRand...), appendField(nil, nil)...))
	if got := clientHello(&Config{}, clientRand, nil); !bytes.Equal(got, legacy) {
		t.Fatalf("nil-Suites ClientHello diverged from legacy bytes:\n got %x\nwant %x", got, legacy)
	}
	// And against a live nil-Suites server: capture the ServerHello and
	// check nothing follows the signature field.
	ce, se := pipePair()
	go Server(se, Config{Identity: srvID})
	if err := writeRecord(ce, recHandshake, legacy); err != nil {
		t.Fatal(err)
	}
	shRec, err := readRecord(ce, recHandshake)
	if err != nil {
		t.Fatal(err)
	}
	_, body, err := splitMsg(shRec)
	if err != nil {
		t.Fatal(err)
	}
	rest := body[34:]
	for i := 0; i < 3; i++ { // cert, dhPub, sig
		if _, rest, err = takeField(rest); err != nil {
			t.Fatal(err)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("legacy ServerHello carries %d trailing bytes", len(rest))
	}
	ce.w.Close()
}

// A server choice outside the client's offer is rejected before any
// signature verification — negotiation cannot be steered onto a suite
// the client never proposed.
func TestChoiceOutsideOfferRejected(t *testing.T) {
	ce, se := pipePair()
	go func() {
		chRec, err := readRecord(se, recHandshake)
		if err != nil {
			return
		}
		_, chBody, _ := splitMsg(chRec)
		serverRand := bytes.Repeat([]byte{9}, 32)
		priv, _ := ecdh.P256().GenerateKey(bytes.NewReader(bytes.Repeat([]byte{0x5D}, 64)))
		dhPub := priv.PublicKey().Bytes()
		signed := append(append(append([]byte{}, chBody[:32]...), serverRand...), dhPub...)
		sig, _ := srvID.Sign(signed)
		pub := srvID.Public()
		body := append([]byte{}, serverRand...)
		var algB [2]byte
		binary.BigEndian.PutUint16(algB[:], uint16(pub.Alg))
		body = append(body, algB[:]...)
		body = appendField(body, pub.DER)
		body = appendField(body, dhPub)
		body = appendField(body, sig)
		// Choose ChaCha although the client only offered GCM-128.
		body = appendField(body, suitesWire([]keymat.Suite{keymat.SuiteChaCha20Poly1305}))
		writeRecord(se, recHandshake, msg(msgServerHello, body))
	}()
	_, err := Client(ce, Config{Suites: []keymat.Suite{keymat.SuiteAESGCM128}})
	if !errors.Is(err, ErrNoSuite) {
		t.Fatalf("client accepted un-offered suite choice: %v", err)
	}
	ce.w.Close()
}

// stripStream removes the trailing suite-list field from the first
// ClientHello it forwards — a downgrading middlebox. The handshake must
// abort (transcript mismatch), not fall back to legacy.
type stripStream struct {
	Stream
	done bool
}

func (ss *stripStream) Write(b []byte) (int, error) {
	if !ss.done && len(b) > 7 && b[0] == recHandshake && b[3] == msgClientHello {
		ss.done = true
		body := b[7:] // 3-byte record hdr + 4-byte msg hdr
		// rand(32) field(ticket) field(suites): drop the suites field.
		if len(body) > 34 {
			if _, rest, err := takeField(body[32:]); err == nil && len(rest) > 0 {
				keep := len(b) - len(rest)
				nb := append([]byte(nil), b[:keep]...)
				bl := len(nb) - 7
				nb[1], nb[2] = byte((bl+4)>>8), byte(bl+4)
				nb[4], nb[5], nb[6] = byte(bl>>16), byte(bl>>8), byte(bl)
				n, err := ss.Stream.Write(nb)
				if n == len(nb) {
					n = len(b)
				}
				return n, err
			}
		}
	}
	return ss.Stream.Write(b)
}

func TestStrippedOfferAbortsHandshake(t *testing.T) {
	ce, se := pipePair()
	sce := &stripStream{Stream: ce}
	var cerr, serr error
	var cli, srv *Conn
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		cli, cerr = Client(sce, Config{Suites: modernSuites})
		if cerr != nil {
			ce.w.Close()
		}
	}()
	go func() {
		defer wg.Done()
		srv, serr = Server(se, Config{Identity: srvID, Suites: modernSuites})
		if serr != nil {
			se.w.Close()
		}
	}()
	wg.Wait()
	if cli != nil && srv != nil {
		t.Fatalf("handshake survived offer stripping: cli=%v srv=%v", cli.Suite(), srv.Suite())
	}
	if cerr == nil && serr == nil {
		t.Fatal("neither side reported the stripped offer")
	}
}

// Resumption carries the negotiated AEAD suite: the abbreviated
// handshake pays no asymmetric crypto and lands on the original suite.
func TestResumptionCarriesAEADSuite(t *testing.T) {
	costs := Costs{Sign: time.Millisecond, Verify: time.Millisecond,
		DHKeygen: time.Millisecond, DHCompute: time.Millisecond}
	cache := NewSessionCache()
	sessions := NewServerSessions()
	mk := func() (cliCost, srvCost time.Duration, cli, srv *Conn) {
		cliCfg := Config{ServerName: "web1", Cache: cache, Costs: costs,
			Suites: modernSuites, Charge: func(d time.Duration) { cliCost += d }}
		srvCfg := Config{Identity: srvID, Sessions: sessions, Costs: costs,
			Suites: modernSuites, Charge: func(d time.Duration) { srvCost += d }}
		var err1, err2 error
		cli, srv, err1, err2 = tryHandshake(cliCfg, srvCfg)
		if err1 != nil || err2 != nil {
			t.Fatalf("handshake: %v %v", err1, err2)
		}
		return
	}
	c1, s1, cli1, _ := mk()
	if c1 == 0 || s1 == 0 || cli1.Suite() != keymat.SuiteAESGCM128 {
		t.Fatalf("full handshake: cost %v/%v suite %v", c1, s1, cli1.Suite())
	}
	c2, s2, cli2, srv2 := mk()
	if c2 != 0 || s2 != 0 {
		t.Fatalf("resumed handshake paid asymmetric crypto: %v %v", c2, s2)
	}
	if cli2.Suite() != keymat.SuiteAESGCM128 || srv2.Suite() != keymat.SuiteAESGCM128 {
		t.Fatalf("resumed suite %v / %v", cli2.Suite(), srv2.Suite())
	}
	go srv2.Write([]byte("resumed aead"))
	buf := make([]byte, 32)
	n, err := cli2.Read(buf)
	if err != nil || string(buf[:n]) != "resumed aead" {
		t.Fatalf("%q %v", buf[:n], err)
	}
}

// A cached session whose suite the client's current policy forbids is
// not resumed: the connection renegotiates with a full handshake.
func TestResumptionSkippedWhenSuiteForbidden(t *testing.T) {
	costs := Costs{Sign: time.Millisecond, Verify: time.Millisecond}
	cache := NewSessionCache()
	sessions := NewServerSessions()
	run := func(cliSuites []keymat.Suite) (cliCost time.Duration, cli *Conn) {
		cliCfg := Config{ServerName: "web1", Cache: cache, Costs: costs,
			Suites: cliSuites, Charge: func(d time.Duration) { cliCost += d }}
		srvCfg := Config{Identity: srvID, Sessions: sessions, Costs: costs, Suites: modernSuites}
		var err1, err2 error
		cli, _, err1, err2 = tryHandshake(cliCfg, srvCfg)
		if err1 != nil || err2 != nil {
			t.Fatalf("handshake: %v %v", err1, err2)
		}
		return
	}
	if cost, cli := run(modernSuites); cost == 0 || cli.Suite() != keymat.SuiteAESGCM128 {
		t.Fatalf("prime handshake: cost %v suite %v", cost, cli.Suite())
	}
	// Policy change: ChaCha only. The cached GCM session must not resume.
	cost, cli := run([]keymat.Suite{keymat.SuiteChaCha20Poly1305})
	if cost == 0 {
		t.Fatal("client resumed onto a forbidden suite without a full handshake")
	}
	if cli.Suite() != keymat.SuiteChaCha20Poly1305 {
		t.Fatalf("renegotiated suite %v", cli.Suite())
	}
}

// --- record layer on AEAD suites ---

func TestAEADRecordRoundTrip(t *testing.T) {
	for _, s := range aeadSuites {
		t.Run(s.String(), func(t *testing.T) {
			a, b := connPairSuite(t, s)
			for _, n := range []int{0, 1, 100, maxRecord} {
				in := bytes.Repeat([]byte{byte(n)}, n)
				if _, err := a.Write(in); err != nil {
					t.Fatal(err)
				}
				got := make([]byte, 0, n)
				buf := make([]byte, 4096)
				for len(got) < n {
					rn, err := b.Read(buf)
					if err != nil {
						t.Fatalf("read: %v", err)
					}
					got = append(got, buf[:rn]...)
				}
				if !bytes.Equal(got, in) {
					t.Fatalf("round trip mismatch at len %d", n)
				}
			}
		})
	}
}

func TestAEADRecordTamperRejected(t *testing.T) {
	for _, s := range aeadSuites {
		a, b := connPairSuite(t, s)
		rec := a.sealRecord([]byte("tamper target"))
		rec[3] ^= 0x40
		if _, err := b.openRecordInPlace(rec); err != ErrBadMAC {
			t.Fatalf("%v: tampered record gave %v, want ErrBadMAC", s, err)
		}
	}
}

// Replayed or reordered records fail: the sequence number lives in the
// nonce and AAD, not on the wire.
func TestAEADRecordReplayRejected(t *testing.T) {
	a, b := connPairSuite(t, keymat.SuiteAESGCM128)
	r1 := a.sealRecord([]byte("one"))
	if _, err := b.openRecord(r1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.openRecord(r1); err != ErrBadMAC {
		t.Fatalf("replayed record gave %v, want ErrBadMAC", err)
	}
}

func TestAEADSealRecordAppendZeroAlloc(t *testing.T) {
	for _, s := range aeadSuites {
		a, _ := connPairSuite(t, s)
		plain := bytes.Repeat([]byte{7}, 1400)
		dst := make([]byte, 0, len(plain)+macLen)
		allocs := testing.AllocsPerRun(200, func() {
			dst = a.sealRecordAppend(dst[:0], plain)
		})
		if allocs != 0 {
			t.Errorf("%v: sealRecordAppend allocates %v/op, want 0", s, allocs)
		}
	}
}

func TestAEADOpenRecordInPlaceZeroAlloc(t *testing.T) {
	for _, s := range aeadSuites {
		a, b := connPairSuite(t, s)
		rec := a.sealRecord(bytes.Repeat([]byte{7}, 1400))
		scratch := make([]byte, len(rec))
		allocs := testing.AllocsPerRun(200, func() {
			copy(scratch, rec)
			b.inSeq = 0
			if _, err := b.openRecordInPlace(scratch); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: openRecordInPlace allocates %v/op, want 0", s, allocs)
		}
	}
}

// The record overhead is identical across every suite, keeping the
// paper's HIP-vs-SSL comparisons structural rather than format-driven.
func TestRecordOverheadSuiteIndependent(t *testing.T) {
	for _, s := range append([]keymat.Suite{legacySuite}, aeadSuites...) {
		a, _ := connPairSuite(t, s)
		rec := a.sealRecord(bytes.Repeat([]byte{1}, 100))
		if len(rec) != 100+macLen {
			t.Fatalf("%v: record body %d bytes, want %d", s, len(rec), 100+macLen)
		}
	}
}

func benchRecordSeal(b *testing.B, s keymat.Suite) {
	a, _ := connPairSuite(b, s)
	plain := bytes.Repeat([]byte{7}, 1400)
	dst := make([]byte, 0, len(plain)+macLen)
	b.SetBytes(1400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = a.sealRecordAppend(dst[:0], plain)
	}
}

func BenchmarkRecordSealGCM128_1400(b *testing.B) { benchRecordSeal(b, keymat.SuiteAESGCM128) }
func BenchmarkRecordSealGCM256_1400(b *testing.B) { benchRecordSeal(b, keymat.SuiteAESGCM256) }
func BenchmarkRecordSealChaCha1400(b *testing.B) {
	benchRecordSeal(b, keymat.SuiteChaCha20Poly1305)
}

func BenchmarkRecordOpenGCM128_1400(b *testing.B) {
	a, c := connPairSuite(b, keymat.SuiteAESGCM128)
	rec := a.sealRecord(bytes.Repeat([]byte{7}, 1400))
	scratch := make([]byte, len(rec))
	b.SetBytes(1400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, rec)
		c.inSeq = 0
		if _, err := c.openRecordInPlace(scratch); err != nil {
			b.Fatal(err)
		}
	}
}
