// Package tlslite is a compact SSL/TLS-style secure channel: an
// ECDHE-signed handshake followed by an encrypted, MAC-protected record
// layer. It is the paper's "SSL" baseline (OpenVPN/OpenSSL in the
// original testbed), deliberately built on the same primitives as the HIP
// stack — ECDH P-256, RSA/ECDSA signatures, AES-128-CTR and
// HMAC-SHA-256 — so throughput comparisons between HIP and SSL reflect
// protocol structure rather than cipher implementations, exactly the
// paper's argument that the two "essentially utilize the same
// cryptographic algorithms".
//
// The package is transport-agnostic: it runs over anything implementing
// Stream — a real net.Conn or a simulated connection bound to a process.
// Virtual CPU costs are reported through Config.Charge so simulation
// drivers can bill the VM.
package tlslite

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"hipcloud/internal/identity"
	"hipcloud/internal/keymat"
)

// Stream is the byte transport the channel runs over.
type Stream interface {
	Read(b []byte) (int, error)
	Write(b []byte) (int, error)
}

// Errors returned by the package.
var (
	ErrHandshake   = errors.New("tlslite: handshake failed")
	ErrBadRecord   = errors.New("tlslite: malformed record")
	ErrBadMAC      = errors.New("tlslite: record authentication failed")
	ErrClosed      = errors.New("tlslite: connection closed")
	ErrCertRefused = errors.New("tlslite: peer certificate refused")
)

// Record types.
const (
	recHandshake byte = 22
	recAppData   byte = 23
	recAlert     byte = 21
)

// maxRecord is the maximum plaintext per record.
const maxRecord = 16 * 1024

// Costs maps the channel's crypto operations to virtual CPU time; the
// zero value makes all operations free (real deployments).
type Costs struct {
	Sign               time.Duration
	Verify             time.Duration
	DHKeygen           time.Duration
	DHCompute          time.Duration
	SymmetricNsPerByte float64
}

// Config configures one side of the channel.
type Config struct {
	// Identity signs the handshake (required for servers; optional for
	// clients, which are anonymous as in typical HTTPS).
	Identity *identity.HostIdentity
	// VerifyPeer, when non-nil, decides whether to trust the peer's
	// public identity (certificate pinning / CA stand-in).
	VerifyPeer func(*identity.PublicID) error
	// Costs is the virtual cost model.
	Costs Costs
	// Charge receives virtual CPU costs as they are incurred (nil
	// discards them).
	Charge func(time.Duration)
	// Rand is the randomness source (nil = crypto/rand).
	Rand io.Reader
	// ServerName keys the client-side session cache.
	ServerName string
	// Cache enables client-side session resumption when non-nil.
	Cache *SessionCache
	// Sessions enables server-side resumption when non-nil.
	Sessions *ServerSessions
}

func (c *Config) rand() io.Reader {
	if c.Rand != nil {
		return c.Rand
	}
	return rand.Reader
}

// ecdheKey generates the ephemeral key. With the default (crypto/rand)
// source it uses the stdlib generator; with an explicit deterministic
// Rand it rejection-samples the scalar itself, because since Go 1.20
// ecdh.GenerateKey deliberately consumes a runtime-random number of
// bytes from non-default readers (randutil.MaybeReadByte), which would
// advance a simulation's seeded RNG by a nondeterministic offset and
// change every later draw.
func (c *Config) ecdheKey() (*ecdh.PrivateKey, error) {
	if c.Rand == nil {
		return ecdh.P256().GenerateKey(rand.Reader)
	}
	var b [32]byte
	for {
		if _, err := io.ReadFull(c.Rand, b[:]); err != nil {
			return nil, err
		}
		k, err := ecdh.P256().NewPrivateKey(b[:])
		if err == nil {
			return k, nil
		}
		// Out-of-range scalar (probability ~2^-32): redraw.
	}
}

func (c *Config) charge(d time.Duration) {
	if c.Charge != nil && d > 0 {
		c.Charge(d)
	}
}

// Conn is an established secure channel.
//
// Like net.Conn, one Read and one Write may run concurrently, but the
// record layer keeps per-direction scratch, so multiple simultaneous
// Reads (or Writes) are not safe.
type Conn struct {
	stream Stream
	rd     io.Reader // stream adapted to io.Reader, cached once
	cfg    Config

	outSeq, inSeq uint64
	outEnc, inEnc cipher.Block
	// Cached keyed HMAC states, reset-reused per record (the keyed pads
	// are computed once here instead of hmac.New per record).
	outMAC, inMAC *keymat.MAC
	// Per-direction CTR keystream and IV scratch. The arrays cross the
	// cipher.Block interface, so they live on the (heap-resident) Conn to
	// keep the per-record path allocation-free.
	outCTR, inCTR   keymat.CTRScratch
	outIV, inIV     [16]byte
	outSeqB, inSeqB [8]byte

	wbuf []byte // reusable wire buffer for outgoing records
	rrec []byte // reusable buffer holding the current incoming record
	rhdr [3]byte
	rbuf []byte // unread decrypted bytes; aliases rrec

	peer   *identity.PublicID
	closed bool
}

// Peer returns the peer's verified identity (nil for anonymous clients).
func (c *Conn) Peer() *identity.PublicID { return c.peer }

// --- handshake messages ---

// handshake message framing: type(1) len(3) body.
const (
	msgClientHello  byte = 1
	msgServerHello  byte = 2
	msgServerResume byte = 3
	msgClientKey    byte = 16
	msgFinished     byte = 20
)

func writeRecord(s Stream, typ byte, payload []byte) error {
	hdr := []byte{typ, byte(len(payload) >> 8), byte(len(payload))}
	if _, err := s.Write(append(hdr, payload...)); err != nil {
		return err
	}
	return nil
}

func readRecord(s Stream, want byte) ([]byte, error) {
	hdr := make([]byte, 3)
	if _, err := io.ReadFull(readerOf(s), hdr); err != nil {
		return nil, err
	}
	n := int(hdr[1])<<8 | int(hdr[2])
	if n > maxRecord+64 {
		return nil, ErrBadRecord
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(readerOf(s), body); err != nil {
		return nil, err
	}
	if hdr[0] == recAlert {
		return nil, ErrClosed
	}
	if hdr[0] != want {
		return nil, ErrBadRecord
	}
	return body, nil
}

// readerOf adapts Stream to io.Reader (it already is one structurally).
func readerOf(s Stream) io.Reader { return readerFunc(s.Read) }

type readerFunc func([]byte) (int, error)

func (f readerFunc) Read(b []byte) (int, error) { return f(b) }

func msg(typ byte, body []byte) []byte {
	out := make([]byte, 4+len(body))
	out[0] = typ
	out[1], out[2], out[3] = byte(len(body)>>16), byte(len(body)>>8), byte(len(body))
	copy(out[4:], body)
	return out
}

func splitMsg(b []byte) (byte, []byte, error) {
	if len(b) < 4 {
		return 0, nil, ErrBadRecord
	}
	n := int(b[1])<<16 | int(b[2])<<8 | int(b[3])
	if len(b) < 4+n {
		return 0, nil, ErrBadRecord
	}
	return b[0], b[4 : 4+n], nil
}

// keySchedule derives directional keys from the ECDHE secret and both
// randoms (a PRF in the spirit of TLS 1.2's).
func keySchedule(secret, clientRand, serverRand []byte) (cliEnc, cliMac, srvEnc, srvMac []byte) {
	prf := func(label byte) []byte {
		h := hmac.New(sha256.New, secret)
		h.Write([]byte{label})
		h.Write(clientRand)
		h.Write(serverRand)
		return h.Sum(nil)
	}
	cliKeys := prf(1) // 32 bytes: 16 enc + first half of mac
	cliMacB := prf(2)
	srvKeys := prf(3)
	srvMacB := prf(4)
	return cliKeys[:16], cliMacB, srvKeys[:16], srvMacB
}

// transcriptMAC computes the Finished verifier.
func transcriptMAC(secret []byte, transcript ...[]byte) []byte {
	h := hmac.New(sha256.New, secret)
	for _, t := range transcript {
		h.Write(t)
	}
	return h.Sum(nil)
}

// Client performs the client side of the handshake over s. With a
// session cache configured it first attempts an abbreviated resumption
// handshake, falling back to the full exchange when the server declines.
func Client(s Stream, cfg Config) (*Conn, error) {
	clientRand := make([]byte, 32)
	if _, err := io.ReadFull(cfg.rand(), clientRand); err != nil {
		return nil, err
	}
	if cfg.Cache != nil && cfg.ServerName != "" {
		if sess, ok := cfg.Cache.get(cfg.ServerName); ok {
			conn, resumed, err := resumeClient(s, cfg, sess, clientRand)
			if resumed {
				return conn, err
			}
			if fb, isFb := err.(errFallback); isFb {
				// Server declined the ticket but already answered with a
				// full ServerHello: continue the full handshake.
				cfg.Cache.Forget(cfg.ServerName)
				hello := msg(msgClientHello, append(append([]byte{}, clientRand...), appendField(nil, sess.ticket)...))
				return clientFull(s, cfg, clientRand, hello, fb.rec, fb.body)
			}
			return nil, err
		}
	}
	hello := msg(msgClientHello, append(append([]byte{}, clientRand...), appendField(nil, nil)...))
	if err := writeRecord(s, recHandshake, hello); err != nil {
		return nil, err
	}
	shRec, err := readRecord(s, recHandshake)
	if err != nil {
		return nil, fmt.Errorf("%w: reading server hello: %v", ErrHandshake, err)
	}
	typ, body, err := splitMsg(shRec)
	if err != nil || typ != msgServerHello {
		return nil, ErrHandshake
	}
	return clientFull(s, cfg, clientRand, hello, shRec, body)
}

// clientFull completes the full (non-resumed) handshake given the
// already-received ServerHello.
func clientFull(s Stream, cfg Config, clientRand, hello, shRec, body []byte) (*Conn, error) {
	// ServerHello: rand(32) alg(2) certLen(2) cert dhLen(2) dh sigLen(2) sig.
	if len(body) < 38 {
		return nil, ErrHandshake
	}
	serverRand := body[:32]
	alg := identity.Algorithm(binary.BigEndian.Uint16(body[32:]))
	rest := body[34:]
	cert, rest, err := takeField(rest)
	if err != nil {
		return nil, ErrHandshake
	}
	dhPub, rest, err := takeField(rest)
	if err != nil {
		return nil, ErrHandshake
	}
	sig, _, err := takeField(rest)
	if err != nil {
		return nil, ErrHandshake
	}
	peer, err := identity.ParsePublicID(alg, cert)
	if err != nil {
		return nil, ErrHandshake
	}
	if cfg.VerifyPeer != nil {
		if err := cfg.VerifyPeer(peer); err != nil {
			return nil, ErrCertRefused
		}
	}
	cfg.charge(cfg.Costs.Verify)
	signed := append(append(append([]byte{}, clientRand...), serverRand...), dhPub...)
	if err := peer.Verify(signed, sig); err != nil {
		return nil, ErrHandshake
	}
	// Client ECDHE.
	priv, err := cfg.ecdheKey()
	if err != nil {
		return nil, err
	}
	cfg.charge(cfg.Costs.DHKeygen)
	srvKey, err := ecdh.P256().NewPublicKey(dhPub)
	if err != nil {
		return nil, ErrHandshake
	}
	secret, err := priv.ECDH(srvKey)
	if err != nil {
		return nil, ErrHandshake
	}
	cfg.charge(cfg.Costs.DHCompute)
	cke := msg(msgClientKey, priv.PublicKey().Bytes())
	if err := writeRecord(s, recHandshake, cke); err != nil {
		return nil, err
	}
	// Finished exchange.
	verify := transcriptMAC(secret, hello, shRec, cke)
	if err := writeRecord(s, recHandshake, msg(msgFinished, verify)); err != nil {
		return nil, err
	}
	finRec, err := readRecord(s, recHandshake)
	if err != nil {
		return nil, fmt.Errorf("%w: reading finished: %v", ErrHandshake, err)
	}
	ft, fb, err := splitMsg(finRec)
	if err != nil || ft != msgFinished || len(fb) < 32 ||
		!hmac.Equal(fb[:32], transcriptMAC(secret, hello, shRec, cke, []byte("server"))) {
		return nil, ErrHandshake
	}
	// A session ticket may follow the verifier.
	if cfg.Cache != nil && cfg.ServerName != "" && len(fb) > 32 {
		if ticket, _, err := takeField(fb[32:]); err == nil && len(ticket) > 0 {
			cfg.Cache.put(cfg.ServerName, ticket, secret)
		}
	}
	cliEnc, cliMac, srvEnc, srvMac := keySchedule(secret, clientRand, serverRand)
	return newConn(s, cfg, cliEnc, cliMac, srvEnc, srvMac, true, peer)
}

// Server performs the server side of the handshake over s.
func Server(s Stream, cfg Config) (*Conn, error) {
	if cfg.Identity == nil {
		return nil, errors.New("tlslite: server requires an identity")
	}
	chRec, err := readRecord(s, recHandshake)
	if err != nil {
		return nil, fmt.Errorf("%w: reading client hello: %v", ErrHandshake, err)
	}
	typ, chBody, err := splitMsg(chRec)
	if err != nil || typ != msgClientHello || len(chBody) < 32 {
		return nil, ErrHandshake
	}
	clientRand := chBody[:32]
	var ticket []byte
	if len(chBody) > 32 {
		if tk, _, err := takeField(chBody[32:]); err == nil {
			ticket = tk
		}
	}
	serverRand := make([]byte, 32)
	if _, err := io.ReadFull(cfg.rand(), serverRand); err != nil {
		return nil, err
	}
	// Abbreviated handshake when the ticket resolves.
	if len(ticket) > 0 && cfg.Sessions != nil {
		if secret, ok := cfg.Sessions.get(ticket); ok {
			return serverResume(s, cfg, chRec, clientRand, serverRand, secret)
		}
	}
	priv, err := cfg.ecdheKey()
	if err != nil {
		return nil, err
	}
	cfg.charge(cfg.Costs.DHKeygen)
	dhPub := priv.PublicKey().Bytes()
	signed := append(append(append([]byte{}, clientRand...), serverRand...), dhPub...)
	sig, err := cfg.Identity.Sign(signed)
	if err != nil {
		return nil, err
	}
	cfg.charge(cfg.Costs.Sign)
	pub := cfg.Identity.Public()
	body := append([]byte{}, serverRand...)
	var algB [2]byte
	binary.BigEndian.PutUint16(algB[:], uint16(pub.Alg))
	body = append(body, algB[:]...)
	body = appendField(body, pub.DER)
	body = appendField(body, dhPub)
	body = appendField(body, sig)
	shRec := msg(msgServerHello, body)
	if err := writeRecord(s, recHandshake, shRec); err != nil {
		return nil, err
	}
	ckeRec, err := readRecord(s, recHandshake)
	if err != nil {
		return nil, fmt.Errorf("%w: reading client key: %v", ErrHandshake, err)
	}
	ct, cliPubB, err := splitMsg(ckeRec)
	if err != nil || ct != msgClientKey {
		return nil, ErrHandshake
	}
	cliPub, err := ecdh.P256().NewPublicKey(cliPubB)
	if err != nil {
		return nil, ErrHandshake
	}
	secret, err := priv.ECDH(cliPub)
	if err != nil {
		return nil, ErrHandshake
	}
	cfg.charge(cfg.Costs.DHCompute)
	finRec, err := readRecord(s, recHandshake)
	if err != nil {
		return nil, fmt.Errorf("%w: reading finished: %v", ErrHandshake, err)
	}
	ft, fb, err := splitMsg(finRec)
	if err != nil || ft != msgFinished || !hmac.Equal(fb, transcriptMAC(secret, chRec, shRec, ckeRec)) {
		return nil, ErrHandshake
	}
	srvFin := transcriptMAC(secret, chRec, shRec, ckeRec, []byte("server"))
	srvFin = appendField(srvFin, issueTicket(cfg, secret))
	if err := writeRecord(s, recHandshake, msg(msgFinished, srvFin)); err != nil {
		return nil, err
	}
	cliEnc, cliMac, srvEnc, srvMac := keySchedule(secret, clientRand, serverRand)
	return newConn(s, cfg, cliEnc, cliMac, srvEnc, srvMac, false, nil)
}

// serverResume completes the abbreviated handshake.
func serverResume(s Stream, cfg Config, chRec, clientRand, serverRand, secret []byte) (*Conn, error) {
	srRec := msg(msgServerResume, serverRand)
	if err := writeRecord(s, recHandshake, srRec); err != nil {
		return nil, err
	}
	finRec, err := readRecord(s, recHandshake)
	if err != nil {
		return nil, fmt.Errorf("%w: reading resumed finished: %v", ErrHandshake, err)
	}
	ft, fb, err := splitMsg(finRec)
	if err != nil || ft != msgFinished || !hmac.Equal(fb, transcriptMAC(secret, chRec, srRec)) {
		return nil, ErrHandshake
	}
	if err := writeRecord(s, recHandshake, msg(msgFinished, transcriptMAC(secret, chRec, srRec, []byte("server")))); err != nil {
		return nil, err
	}
	cliEnc, cliMac, srvEnc, srvMac := keySchedule(secret, clientRand, serverRand)
	return newConn(s, cfg, cliEnc, cliMac, srvEnc, srvMac, false, nil)
}

func takeField(b []byte) (field, rest []byte, err error) {
	if len(b) < 2 {
		return nil, nil, ErrBadRecord
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+n {
		return nil, nil, ErrBadRecord
	}
	return b[2 : 2+n], b[2+n:], nil
}

func appendField(b, field []byte) []byte {
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(field)))
	return append(append(b, l[:]...), field...)
}

func newConn(s Stream, cfg Config, cliEnc, cliMac, srvEnc, srvMac []byte, isClient bool, peer *identity.PublicID) (*Conn, error) {
	ce, err := aes.NewCipher(cliEnc)
	if err != nil {
		return nil, err
	}
	se, err := aes.NewCipher(srvEnc)
	if err != nil {
		return nil, err
	}
	c := &Conn{stream: s, rd: readerOf(s), cfg: cfg, peer: peer}
	if isClient {
		c.outEnc, c.outMAC = ce, keymat.NewMAC(cliMac)
		c.inEnc, c.inMAC = se, keymat.NewMAC(srvMac)
	} else {
		c.outEnc, c.outMAC = se, keymat.NewMAC(srvMac)
		c.inEnc, c.inMAC = ce, keymat.NewMAC(cliMac)
	}
	return c, nil
}

const macLen = 16

// ensure grows b by n bytes, reallocating only when capacity is short,
// and returns the grown slice.
func ensure(b []byte, n int) []byte {
	off := len(b)
	if cap(b)-off < n {
		nb := make([]byte, off+n, off+n+(off+n)/2)
		copy(nb, b)
		return nb
	}
	return b[:off+n]
}

// deriveRecordIV writes the per-record IV (encrypted big-endian sequence
// number, matching the original wire format) into the conn-owned array.
func deriveRecordIV(enc cipher.Block, iv *[16]byte, seq uint64) {
	binary.BigEndian.PutUint64(iv[:8], seq)
	for i := 8; i < 16; i++ {
		iv[i] = 0
	}
	enc.Encrypt(iv[:], iv[:])
}

// sealRecordAppend encrypts and MACs one application record, appending
// ciphertext||tag to dst and returning the extended slice. With a dst
// whose capacity already fits the record, it allocates nothing.
func (c *Conn) sealRecordAppend(dst, plain []byte) []byte {
	c.outSeq++
	deriveRecordIV(c.outEnc, &c.outIV, c.outSeq)
	off := len(dst)
	dst = ensure(dst, len(plain)+macLen)
	ct := dst[off : off+len(plain)]
	keymat.CTRXor(c.outEnc, &c.outCTR, &c.outIV, ct, plain)
	binary.BigEndian.PutUint64(c.outSeqB[:], c.outSeq)
	c.outMAC.Reset()
	c.outMAC.Write(c.outSeqB[:])
	c.outMAC.Write(ct)
	copy(dst[off+len(plain):], c.outMAC.SumTrunc(macLen))
	c.cfg.charge(c.cfg.Costs.symmetric(len(plain)))
	return dst
}

// sealRecord encrypts and MACs one application record into a fresh
// buffer. It is a thin wrapper over sealRecordAppend.
func (c *Conn) sealRecord(plain []byte) []byte {
	return c.sealRecordAppend(nil, plain)
}

func (cst Costs) symmetric(n int) time.Duration {
	return time.Duration(cst.SymmetricNsPerByte * float64(n))
}

// openRecordInPlace verifies one record body and decrypts it in place,
// returning the plaintext as a prefix of body. It allocates nothing.
func (c *Conn) openRecordInPlace(body []byte) ([]byte, error) {
	if len(body) < macLen {
		return nil, ErrBadRecord
	}
	ct, tag := body[:len(body)-macLen], body[len(body)-macLen:]
	c.inSeq++
	binary.BigEndian.PutUint64(c.inSeqB[:], c.inSeq)
	c.inMAC.Reset()
	c.inMAC.Write(c.inSeqB[:])
	c.inMAC.Write(ct)
	if !c.inMAC.VerifyTrunc(tag, macLen) {
		return nil, ErrBadMAC
	}
	deriveRecordIV(c.inEnc, &c.inIV, c.inSeq)
	keymat.CTRXor(c.inEnc, &c.inCTR, &c.inIV, ct, ct)
	c.cfg.charge(c.cfg.Costs.symmetric(len(ct)))
	return ct, nil
}

// openRecord verifies and decrypts one record body without modifying it,
// returning the plaintext in a fresh buffer.
func (c *Conn) openRecord(body []byte) ([]byte, error) {
	return c.openRecordInPlace(append([]byte(nil), body...))
}

// Write encrypts and sends b, fragmenting into records. The wire record
// (header, ciphertext, tag) is assembled in a reusable conn-owned buffer,
// so steady-state writes allocate nothing.
func (c *Conn) Write(b []byte) (int, error) {
	if c.closed {
		return 0, ErrClosed
	}
	total := 0
	for len(b) > 0 {
		n := len(b)
		if n > maxRecord {
			n = maxRecord
		}
		c.wbuf = append(c.wbuf[:0], recAppData, 0, 0)
		c.wbuf = c.sealRecordAppend(c.wbuf, b[:n])
		rl := len(c.wbuf) - 3
		c.wbuf[1], c.wbuf[2] = byte(rl>>8), byte(rl)
		if _, err := c.stream.Write(c.wbuf); err != nil {
			return total, err
		}
		total += n
		b = b[n:]
	}
	return total, nil
}

// readRecordInto reads one record of the wanted type into the conn-owned
// record buffer and returns its body (valid until the next call).
func (c *Conn) readRecordInto(want byte) ([]byte, error) {
	if _, err := io.ReadFull(c.rd, c.rhdr[:]); err != nil {
		return nil, err
	}
	n := int(c.rhdr[1])<<8 | int(c.rhdr[2])
	if n > maxRecord+64 {
		return nil, ErrBadRecord
	}
	if cap(c.rrec) < n {
		c.rrec = make([]byte, n, n+n/4)
	}
	body := c.rrec[:n]
	if _, err := io.ReadFull(c.rd, body); err != nil {
		return nil, err
	}
	if c.rhdr[0] == recAlert {
		return nil, ErrClosed
	}
	if c.rhdr[0] != want {
		return nil, ErrBadRecord
	}
	return body, nil
}

// Read decrypts application data into b. Records are read into and
// decrypted within a reusable conn-owned buffer (safe because the next
// record is only fetched once the previous plaintext is fully drained),
// so steady-state reads allocate nothing.
func (c *Conn) Read(b []byte) (int, error) {
	for len(c.rbuf) == 0 {
		if c.closed {
			return 0, ErrClosed
		}
		body, err := c.readRecordInto(recAppData)
		if err != nil {
			return 0, err
		}
		pt, err := c.openRecordInPlace(body)
		if err != nil {
			return 0, err
		}
		c.rbuf = pt
	}
	n := copy(b, c.rbuf)
	c.rbuf = c.rbuf[n:]
	return n, nil
}

// Close sends a close alert.
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return writeRecord(c.stream, recAlert, []byte{0})
}

// Overhead reports the per-record wire overhead in bytes.
func Overhead() int { return 3 + macLen }
