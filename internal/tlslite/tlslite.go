// Package tlslite is a compact SSL/TLS-style secure channel: an
// ECDHE-signed handshake followed by an encrypted, MAC-protected record
// layer. It is the paper's "SSL" baseline (OpenVPN/OpenSSL in the
// original testbed), deliberately built on the same primitives as the HIP
// stack — ECDH P-256, RSA/ECDSA signatures, AES-128-CTR and
// HMAC-SHA-256 — so throughput comparisons between HIP and SSL reflect
// protocol structure rather than cipher implementations, exactly the
// paper's argument that the two "essentially utilize the same
// cryptographic algorithms".
//
// The package is transport-agnostic: it runs over anything implementing
// Stream — a real net.Conn or a simulated connection bound to a process.
// Virtual CPU costs are reported through Config.Charge so simulation
// drivers can bill the VM.
package tlslite

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"hipcloud/internal/identity"
	"hipcloud/internal/keymat"
)

// Stream is the byte transport the channel runs over.
type Stream interface {
	Read(b []byte) (int, error)
	Write(b []byte) (int, error)
}

// Errors returned by the package.
var (
	ErrHandshake   = errors.New("tlslite: handshake failed")
	ErrBadRecord   = errors.New("tlslite: malformed record")
	ErrBadMAC      = errors.New("tlslite: record authentication failed")
	ErrClosed      = errors.New("tlslite: connection closed")
	ErrCertRefused = errors.New("tlslite: peer certificate refused")
	ErrNoSuite     = errors.New("tlslite: no common cipher suite")
)

// legacySuite names the original record protection (AES-128-CTR +
// HMAC-SHA-256) inside suite lists; peers that predate negotiation are
// treated as offering exactly this.
const legacySuite = keymat.SuiteAESCTRSHA256

// PreferredSuites is the modern record-suite preference list: the
// single-pass AEAD suites first, the legacy channel last for interop
// with 2012-era peers. It is keymat.PreferredAEAD restricted to suites
// with a record-layer mapping (Config.checkSuites rejects the ESP-only
// CBC/NULL transforms).
var PreferredSuites = []keymat.Suite{
	keymat.SuiteAESGCM128, keymat.SuiteChaCha20Poly1305, keymat.SuiteAESGCM256,
	legacySuite,
}

// Record types.
const (
	recHandshake byte = 22
	recAppData   byte = 23
	recAlert     byte = 21
)

// maxRecord is the maximum plaintext per record.
const maxRecord = 16 * 1024

// Costs maps the channel's crypto operations to virtual CPU time; the
// zero value makes all operations free (real deployments).
type Costs struct {
	Sign               time.Duration
	Verify             time.Duration
	DHKeygen           time.Duration
	DHCompute          time.Duration
	SymmetricNsPerByte float64
}

// Config configures one side of the channel.
type Config struct {
	// Identity signs the handshake (required for servers; optional for
	// clients, which are anonymous as in typical HTTPS).
	Identity *identity.HostIdentity
	// VerifyPeer, when non-nil, decides whether to trust the peer's
	// public identity (certificate pinning / CA stand-in).
	VerifyPeer func(*identity.PublicID) error
	// Costs is the virtual cost model.
	Costs Costs
	// Charge receives virtual CPU costs as they are incurred (nil
	// discards them).
	Charge func(time.Duration)
	// Rand is the randomness source (nil = crypto/rand).
	Rand io.Reader
	// ServerName keys the client-side session cache.
	ServerName string
	// Cache enables client-side session resumption when non-nil.
	Cache *SessionCache
	// Sessions enables server-side resumption when non-nil.
	Sessions *ServerSessions
	// Suites lists acceptable record protections in preference order:
	// the AEAD suites (keymat.SuiteAESGCM128, SuiteAESGCM256,
	// SuiteChaCha20Poly1305) and keymat.SuiteAESCTRSHA256, which names
	// the legacy AES-128-CTR + HMAC-SHA-256 record layer. Nil keeps the
	// original wire format byte-for-byte: no suite fields appear in
	// either hello and records use the legacy protection, so existing
	// deployments and the simulation goldens are unaffected. A non-nil
	// list turns on negotiation — the ClientHello carries the client's
	// list, the ServerHello echoes the server's choice, and both are
	// covered by the Finished transcript MACs, so stripping or rewriting
	// the offer aborts the handshake rather than downgrading it.
	Suites []keymat.Suite
}

func (c *Config) rand() io.Reader {
	if c.Rand != nil {
		return c.Rand
	}
	return rand.Reader
}

// ecdheKey generates the ephemeral key. With the default (crypto/rand)
// source it uses the stdlib generator; with an explicit deterministic
// Rand it rejection-samples the scalar itself, because since Go 1.20
// ecdh.GenerateKey deliberately consumes a runtime-random number of
// bytes from non-default readers (randutil.MaybeReadByte), which would
// advance a simulation's seeded RNG by a nondeterministic offset and
// change every later draw.
func (c *Config) ecdheKey() (*ecdh.PrivateKey, error) {
	if c.Rand == nil {
		return ecdh.P256().GenerateKey(rand.Reader)
	}
	var b [32]byte
	for {
		if _, err := io.ReadFull(c.Rand, b[:]); err != nil {
			return nil, err
		}
		k, err := ecdh.P256().NewPrivateKey(b[:])
		if err == nil {
			return k, nil
		}
		// Out-of-range scalar (probability ~2^-32): redraw.
	}
}

func (c *Config) charge(d time.Duration) {
	if c.Charge != nil && d > 0 {
		c.Charge(d)
	}
}

// checkSuites validates Config.Suites up front: only suites with a
// record-layer mapping are allowed (the AEAD suites and legacySuite).
func (c *Config) checkSuites() error {
	for _, s := range c.Suites {
		if s != legacySuite && !s.IsAEAD() {
			return fmt.Errorf("%w: suite %v has no record-layer mapping", ErrNoSuite, s)
		}
	}
	return nil
}

// allows reports whether the config accepts suite s for the record
// layer (nil Suites = legacy only).
func (c *Config) allows(s keymat.Suite) bool {
	if c.Suites == nil {
		return s == legacySuite
	}
	for _, have := range c.Suites {
		if have == s {
			return true
		}
	}
	return false
}

// suitesWire encodes a suite list as big-endian uint16 pairs.
func suitesWire(suites []keymat.Suite) []byte {
	out := make([]byte, 0, 2*len(suites))
	for _, s := range suites {
		out = append(out, byte(s>>8), byte(s))
	}
	return out
}

// parseSuitesWire decodes a suite-list field (trailing odd byte is a
// parse error; unknown ids are kept — Negotiate skips them).
func parseSuitesWire(b []byte) ([]keymat.Suite, error) {
	if len(b) == 0 || len(b)%2 != 0 {
		return nil, ErrBadRecord
	}
	out := make([]keymat.Suite, 0, len(b)/2)
	for i := 0; i < len(b); i += 2 {
		out = append(out, keymat.Suite(binary.BigEndian.Uint16(b[i:])))
	}
	return out, nil
}

// clientHello builds the ClientHello message: rand(32) field(ticket)
// and, only for suite-aware clients, a trailing field with the offered
// suite list. Legacy servers parse the first two and ignore trailing
// bytes, so the offer is backward compatible; a nil-Suites client emits
// the original bytes exactly.
func clientHello(cfg *Config, clientRand, ticket []byte) []byte {
	body := appendField(append([]byte{}, clientRand...), ticket)
	if cfg.Suites != nil {
		body = appendField(body, suitesWire(cfg.Suites))
	}
	return msg(msgClientHello, body)
}

// Conn is an established secure channel.
//
// Like net.Conn, one Read and one Write may run concurrently, but the
// record layer keeps per-direction scratch, so multiple simultaneous
// Reads (or Writes) are not safe.
type Conn struct {
	stream Stream
	rd     io.Reader // stream adapted to io.Reader, cached once
	cfg    Config

	outSeq, inSeq uint64
	suite         keymat.Suite
	outEnc, inEnc cipher.Block
	// Cached keyed HMAC states, reset-reused per record (the keyed pads
	// are computed once here instead of hmac.New per record).
	outMAC, inMAC *keymat.MAC
	// AEAD record protection (nil on legacy connections). The nonce
	// arrays hold the per-direction 4-byte salt in their head and the
	// record sequence number in their tail; like the CTR scratch below
	// they live on the heap-resident Conn so crossing the AEAD interface
	// never forces a per-record escape.
	outAEAD, inAEAD   keymat.AEAD
	outNonce, inNonce [keymat.NonceLen]byte
	// Per-direction CTR keystream and IV scratch. The arrays cross the
	// cipher.Block interface, so they live on the (heap-resident) Conn to
	// keep the per-record path allocation-free.
	outCTR, inCTR   keymat.CTRScratch
	outIV, inIV     [16]byte
	outSeqB, inSeqB [8]byte

	wbuf []byte // reusable wire buffer for outgoing records
	rrec []byte // reusable buffer holding the current incoming record
	rhdr [3]byte
	rbuf []byte // unread decrypted bytes; aliases rrec

	peer   *identity.PublicID
	closed bool
}

// Peer returns the peer's verified identity (nil for anonymous clients).
func (c *Conn) Peer() *identity.PublicID { return c.peer }

// Suite returns the negotiated record-protection suite.
func (c *Conn) Suite() keymat.Suite { return c.suite }

// --- handshake messages ---

// handshake message framing: type(1) len(3) body.
const (
	msgClientHello  byte = 1
	msgServerHello  byte = 2
	msgServerResume byte = 3
	msgClientKey    byte = 16
	msgFinished     byte = 20
)

func writeRecord(s Stream, typ byte, payload []byte) error {
	hdr := []byte{typ, byte(len(payload) >> 8), byte(len(payload))}
	if _, err := s.Write(append(hdr, payload...)); err != nil {
		return err
	}
	return nil
}

func readRecord(s Stream, want byte) ([]byte, error) {
	hdr := make([]byte, 3)
	if _, err := io.ReadFull(readerOf(s), hdr); err != nil {
		return nil, err
	}
	n := int(hdr[1])<<8 | int(hdr[2])
	if n > maxRecord+64 {
		return nil, ErrBadRecord
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(readerOf(s), body); err != nil {
		return nil, err
	}
	if hdr[0] == recAlert {
		return nil, ErrClosed
	}
	if hdr[0] != want {
		return nil, ErrBadRecord
	}
	return body, nil
}

// readerOf adapts Stream to io.Reader (it already is one structurally).
func readerOf(s Stream) io.Reader { return readerFunc(s.Read) }

type readerFunc func([]byte) (int, error)

func (f readerFunc) Read(b []byte) (int, error) { return f(b) }

func msg(typ byte, body []byte) []byte {
	out := make([]byte, 4+len(body))
	out[0] = typ
	out[1], out[2], out[3] = byte(len(body)>>16), byte(len(body)>>8), byte(len(body))
	copy(out[4:], body)
	return out
}

func splitMsg(b []byte) (byte, []byte, error) {
	if len(b) < 4 {
		return 0, nil, ErrBadRecord
	}
	n := int(b[1])<<16 | int(b[2])<<8 | int(b[3])
	if len(b) < 4+n {
		return 0, nil, ErrBadRecord
	}
	return b[0], b[4 : 4+n], nil
}

// keySchedule derives directional keys from the ECDHE secret and both
// randoms (a PRF in the spirit of TLS 1.2's). The four PRF draws and
// their truncation depend only on the suite's registry entry, so the
// legacy suite yields exactly the pre-negotiation bytes (16-byte enc
// key, 32-byte MAC key per direction) while the AEAD suites draw their
// key through the enc slot and the 4-byte implicit-IV salt through the
// auth slot — the same convention as the ESP KEYMAT layout.
func keySchedule(secret, clientRand, serverRand []byte, suite keymat.Suite) (cliEnc, cliAuth, srvEnc, srvAuth []byte, err error) {
	encLen, err := suite.EncKeyLen()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	authLen, err := suite.AuthKeyLen()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	prf := func(label byte) []byte {
		h := hmac.New(sha256.New, secret)
		h.Write([]byte{label})
		h.Write(clientRand)
		h.Write(serverRand)
		return h.Sum(nil)
	}
	return prf(1)[:encLen], prf(2)[:authLen], prf(3)[:encLen], prf(4)[:authLen], nil
}

// transcriptMAC computes the Finished verifier.
func transcriptMAC(secret []byte, transcript ...[]byte) []byte {
	h := hmac.New(sha256.New, secret)
	for _, t := range transcript {
		h.Write(t)
	}
	return h.Sum(nil)
}

// Client performs the client side of the handshake over s. With a
// session cache configured it first attempts an abbreviated resumption
// handshake, falling back to the full exchange when the server declines.
func Client(s Stream, cfg Config) (*Conn, error) {
	if err := cfg.checkSuites(); err != nil {
		return nil, err
	}
	clientRand := make([]byte, 32)
	if _, err := io.ReadFull(cfg.rand(), clientRand); err != nil {
		return nil, err
	}
	if cfg.Cache != nil && cfg.ServerName != "" {
		// A cached session whose suite the current config no longer accepts
		// is skipped (not resumed onto a now-forbidden record layer); the
		// full handshake below renegotiates and overwrites the cache entry.
		if sess, ok := cfg.Cache.get(cfg.ServerName); ok && cfg.allows(sess.suite) {
			conn, resumed, err := resumeClient(s, cfg, sess, clientRand)
			if resumed {
				return conn, err
			}
			if fb, isFb := err.(errFallback); isFb {
				// Server declined the ticket but already answered with a
				// full ServerHello: continue the full handshake.
				cfg.Cache.Forget(cfg.ServerName)
				hello := clientHello(&cfg, clientRand, sess.ticket)
				return clientFull(s, cfg, clientRand, hello, fb.rec, fb.body)
			}
			return nil, err
		}
	}
	hello := clientHello(&cfg, clientRand, nil)
	if err := writeRecord(s, recHandshake, hello); err != nil {
		return nil, err
	}
	shRec, err := readRecord(s, recHandshake)
	if err != nil {
		return nil, fmt.Errorf("%w: reading server hello: %v", ErrHandshake, err)
	}
	typ, body, err := splitMsg(shRec)
	if err != nil || typ != msgServerHello {
		return nil, ErrHandshake
	}
	return clientFull(s, cfg, clientRand, hello, shRec, body)
}

// clientFull completes the full (non-resumed) handshake given the
// already-received ServerHello.
func clientFull(s Stream, cfg Config, clientRand, hello, shRec, body []byte) (*Conn, error) {
	// ServerHello: rand(32) alg(2) certLen(2) cert dhLen(2) dh sigLen(2) sig.
	if len(body) < 38 {
		return nil, ErrHandshake
	}
	serverRand := body[:32]
	alg := identity.Algorithm(binary.BigEndian.Uint16(body[32:]))
	rest := body[34:]
	cert, rest, err := takeField(rest)
	if err != nil {
		return nil, ErrHandshake
	}
	dhPub, rest, err := takeField(rest)
	if err != nil {
		return nil, ErrHandshake
	}
	sig, rest, err := takeField(rest)
	if err != nil {
		return nil, ErrHandshake
	}
	// Optional trailing field: the server's suite choice. Absent means a
	// legacy server (or one configured without Suites); present, it must
	// name a suite we actually offered — a choice outside our list (or any
	// choice when we never offered) is a negotiation violation, and the
	// transcript MACs below additionally pin the exact hello bytes, so a
	// stripped offer surfaces as a Finished mismatch, not a downgrade.
	suite := legacySuite
	if len(rest) > 0 {
		chosenB, _, err := takeField(rest)
		if err != nil || len(chosenB) != 2 || cfg.Suites == nil {
			return nil, ErrHandshake
		}
		suite = keymat.Suite(binary.BigEndian.Uint16(chosenB))
	}
	if !cfg.allows(suite) {
		return nil, ErrNoSuite
	}
	peer, err := identity.ParsePublicID(alg, cert)
	if err != nil {
		return nil, ErrHandshake
	}
	if cfg.VerifyPeer != nil {
		if err := cfg.VerifyPeer(peer); err != nil {
			return nil, ErrCertRefused
		}
	}
	cfg.charge(cfg.Costs.Verify)
	signed := append(append(append([]byte{}, clientRand...), serverRand...), dhPub...)
	if err := peer.Verify(signed, sig); err != nil {
		return nil, ErrHandshake
	}
	// Client ECDHE.
	priv, err := cfg.ecdheKey()
	if err != nil {
		return nil, err
	}
	cfg.charge(cfg.Costs.DHKeygen)
	srvKey, err := ecdh.P256().NewPublicKey(dhPub)
	if err != nil {
		return nil, ErrHandshake
	}
	secret, err := priv.ECDH(srvKey)
	if err != nil {
		return nil, ErrHandshake
	}
	cfg.charge(cfg.Costs.DHCompute)
	cke := msg(msgClientKey, priv.PublicKey().Bytes())
	if err := writeRecord(s, recHandshake, cke); err != nil {
		return nil, err
	}
	// Finished exchange.
	verify := transcriptMAC(secret, hello, shRec, cke)
	if err := writeRecord(s, recHandshake, msg(msgFinished, verify)); err != nil {
		return nil, err
	}
	finRec, err := readRecord(s, recHandshake)
	if err != nil {
		return nil, fmt.Errorf("%w: reading finished: %v", ErrHandshake, err)
	}
	ft, fb, err := splitMsg(finRec)
	if err != nil || ft != msgFinished || len(fb) < 32 ||
		!hmac.Equal(fb[:32], transcriptMAC(secret, hello, shRec, cke, []byte("server"))) {
		return nil, ErrHandshake
	}
	// A session ticket may follow the verifier.
	if cfg.Cache != nil && cfg.ServerName != "" && len(fb) > 32 {
		if ticket, _, err := takeField(fb[32:]); err == nil && len(ticket) > 0 {
			cfg.Cache.put(cfg.ServerName, ticket, secret, suite)
		}
	}
	cliEnc, cliAuth, srvEnc, srvAuth, err := keySchedule(secret, clientRand, serverRand, suite)
	if err != nil {
		return nil, err
	}
	return newConn(s, cfg, suite, cliEnc, cliAuth, srvEnc, srvAuth, true, peer)
}

// Server performs the server side of the handshake over s.
func Server(s Stream, cfg Config) (*Conn, error) {
	if cfg.Identity == nil {
		return nil, errors.New("tlslite: server requires an identity")
	}
	if err := cfg.checkSuites(); err != nil {
		return nil, err
	}
	chRec, err := readRecord(s, recHandshake)
	if err != nil {
		return nil, fmt.Errorf("%w: reading client hello: %v", ErrHandshake, err)
	}
	typ, chBody, err := splitMsg(chRec)
	if err != nil || typ != msgClientHello || len(chBody) < 32 {
		return nil, ErrHandshake
	}
	clientRand := chBody[:32]
	var ticket []byte
	var offer []keymat.Suite // nil: the client predates suite negotiation
	if len(chBody) > 32 {
		if tk, rest, err := takeField(chBody[32:]); err == nil {
			ticket = tk
			if len(rest) > 0 {
				if ofB, _, err := takeField(rest); err == nil {
					if of, perr := parseSuitesWire(ofB); perr == nil {
						offer = of
					}
				}
			}
		}
	}
	// Negotiate the record suite. A nil-Suites server ignores any offer
	// (its wire stays byte-identical to the pre-negotiation format); a
	// suite-aware server treats an offerless client as offering exactly
	// the legacy suite, and its own preference order decides — a
	// legacy-first offer from a downgrading middlebox cannot outrank the
	// server's AEAD preference, and an AEAD-only server refuses legacy
	// peers outright instead of accepting a suite outside its policy.
	suite := legacySuite
	if cfg.Suites != nil {
		clientOffer := offer
		if clientOffer == nil {
			clientOffer = []keymat.Suite{legacySuite}
		}
		chosen, err := keymat.Negotiate(clientOffer, cfg.Suites)
		if err != nil {
			return nil, ErrNoSuite
		}
		suite = chosen
	}
	serverRand := make([]byte, 32)
	if _, err := io.ReadFull(cfg.rand(), serverRand); err != nil {
		return nil, err
	}
	// Abbreviated handshake when the ticket resolves to a session whose
	// record suite the current config still permits; otherwise fall
	// through to a full handshake that renegotiates.
	if len(ticket) > 0 && cfg.Sessions != nil {
		if sess, ok := cfg.Sessions.get(ticket); ok && cfg.allows(sess.suite) {
			return serverResume(s, cfg, chRec, clientRand, serverRand, sess)
		}
	}
	priv, err := cfg.ecdheKey()
	if err != nil {
		return nil, err
	}
	cfg.charge(cfg.Costs.DHKeygen)
	dhPub := priv.PublicKey().Bytes()
	signed := append(append(append([]byte{}, clientRand...), serverRand...), dhPub...)
	sig, err := cfg.Identity.Sign(signed)
	if err != nil {
		return nil, err
	}
	cfg.charge(cfg.Costs.Sign)
	pub := cfg.Identity.Public()
	body := append([]byte{}, serverRand...)
	var algB [2]byte
	binary.BigEndian.PutUint16(algB[:], uint16(pub.Alg))
	body = append(body, algB[:]...)
	body = appendField(body, pub.DER)
	body = appendField(body, dhPub)
	body = appendField(body, sig)
	// Echo the suite choice only toward clients that offered: legacy
	// clients get the original ServerHello bytes, and the trailing field
	// is covered by every transcript MAC either way.
	if cfg.Suites != nil && offer != nil {
		body = appendField(body, suitesWire([]keymat.Suite{suite}))
	}
	shRec := msg(msgServerHello, body)
	if err := writeRecord(s, recHandshake, shRec); err != nil {
		return nil, err
	}
	ckeRec, err := readRecord(s, recHandshake)
	if err != nil {
		return nil, fmt.Errorf("%w: reading client key: %v", ErrHandshake, err)
	}
	ct, cliPubB, err := splitMsg(ckeRec)
	if err != nil || ct != msgClientKey {
		return nil, ErrHandshake
	}
	cliPub, err := ecdh.P256().NewPublicKey(cliPubB)
	if err != nil {
		return nil, ErrHandshake
	}
	secret, err := priv.ECDH(cliPub)
	if err != nil {
		return nil, ErrHandshake
	}
	cfg.charge(cfg.Costs.DHCompute)
	finRec, err := readRecord(s, recHandshake)
	if err != nil {
		return nil, fmt.Errorf("%w: reading finished: %v", ErrHandshake, err)
	}
	ft, fb, err := splitMsg(finRec)
	if err != nil || ft != msgFinished || !hmac.Equal(fb, transcriptMAC(secret, chRec, shRec, ckeRec)) {
		return nil, ErrHandshake
	}
	srvFin := transcriptMAC(secret, chRec, shRec, ckeRec, []byte("server"))
	srvFin = appendField(srvFin, issueTicket(cfg, secret, suite))
	if err := writeRecord(s, recHandshake, msg(msgFinished, srvFin)); err != nil {
		return nil, err
	}
	cliEnc, cliAuth, srvEnc, srvAuth, err := keySchedule(secret, clientRand, serverRand, suite)
	if err != nil {
		return nil, err
	}
	return newConn(s, cfg, suite, cliEnc, cliAuth, srvEnc, srvAuth, false, nil)
}

// serverResume completes the abbreviated handshake. The record suite is
// the one stored with the session — both ends negotiated it during the
// original full handshake and carry it in their caches, so no suite
// bytes appear on the resumption wire.
func serverResume(s Stream, cfg Config, chRec, clientRand, serverRand []byte, sess serverSession) (*Conn, error) {
	srRec := msg(msgServerResume, serverRand)
	if err := writeRecord(s, recHandshake, srRec); err != nil {
		return nil, err
	}
	finRec, err := readRecord(s, recHandshake)
	if err != nil {
		return nil, fmt.Errorf("%w: reading resumed finished: %v", ErrHandshake, err)
	}
	ft, fb, err := splitMsg(finRec)
	if err != nil || ft != msgFinished || !hmac.Equal(fb, transcriptMAC(sess.secret, chRec, srRec)) {
		return nil, ErrHandshake
	}
	if err := writeRecord(s, recHandshake, msg(msgFinished, transcriptMAC(sess.secret, chRec, srRec, []byte("server")))); err != nil {
		return nil, err
	}
	cliEnc, cliAuth, srvEnc, srvAuth, err := keySchedule(sess.secret, clientRand, serverRand, sess.suite)
	if err != nil {
		return nil, err
	}
	return newConn(s, cfg, sess.suite, cliEnc, cliAuth, srvEnc, srvAuth, false, nil)
}

func takeField(b []byte) (field, rest []byte, err error) {
	if len(b) < 2 {
		return nil, nil, ErrBadRecord
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+n {
		return nil, nil, ErrBadRecord
	}
	return b[2 : 2+n], b[2+n:], nil
}

func appendField(b, field []byte) []byte {
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(field)))
	return append(append(b, l[:]...), field...)
}

func newConn(s Stream, cfg Config, suite keymat.Suite, cliEnc, cliAuth, srvEnc, srvAuth []byte, isClient bool, peer *identity.PublicID) (*Conn, error) {
	c := &Conn{stream: s, rd: readerOf(s), cfg: cfg, suite: suite, peer: peer}
	if suite.IsAEAD() {
		ca, err := keymat.NewAEADCipher(suite, cliEnc)
		if err != nil {
			return nil, err
		}
		sa, err := keymat.NewAEADCipher(suite, srvEnc)
		if err != nil {
			return nil, err
		}
		if isClient {
			c.outAEAD, c.inAEAD = ca, sa
			copy(c.outNonce[:keymat.SaltLen], cliAuth)
			copy(c.inNonce[:keymat.SaltLen], srvAuth)
		} else {
			c.outAEAD, c.inAEAD = sa, ca
			copy(c.outNonce[:keymat.SaltLen], srvAuth)
			copy(c.inNonce[:keymat.SaltLen], cliAuth)
		}
		return c, nil
	}
	ce, err := aes.NewCipher(cliEnc)
	if err != nil {
		return nil, err
	}
	se, err := aes.NewCipher(srvEnc)
	if err != nil {
		return nil, err
	}
	if isClient {
		c.outEnc, c.outMAC = ce, keymat.NewMAC(cliAuth)
		c.inEnc, c.inMAC = se, keymat.NewMAC(srvAuth)
	} else {
		c.outEnc, c.outMAC = se, keymat.NewMAC(srvAuth)
		c.inEnc, c.inMAC = ce, keymat.NewMAC(cliAuth)
	}
	return c, nil
}

// macLen is the record tag length. The legacy truncated HMAC and the
// AEAD tags coincide at 16 bytes, so Overhead is suite-independent (the
// compile-time check pins the coincidence both ways).
const macLen = 16
const _ = uint(macLen-keymat.TagLen) + uint(keymat.TagLen-macLen)

// ensure grows b by n bytes, reallocating only when capacity is short,
// and returns the grown slice.
func ensure(b []byte, n int) []byte {
	off := len(b)
	if cap(b)-off < n {
		nb := make([]byte, off+n, off+n+(off+n)/2)
		copy(nb, b)
		return nb
	}
	return b[:off+n]
}

// deriveRecordIV writes the per-record IV (encrypted big-endian sequence
// number, matching the original wire format) into the conn-owned array.
func deriveRecordIV(enc cipher.Block, iv *[16]byte, seq uint64) {
	binary.BigEndian.PutUint64(iv[:8], seq)
	for i := 8; i < 16; i++ {
		iv[i] = 0
	}
	enc.Encrypt(iv[:], iv[:])
}

// sealRecordAppend encrypts and MACs one application record, appending
// ciphertext||tag to dst and returning the extended slice. With a dst
// whose capacity already fits the record, it allocates nothing.
func (c *Conn) sealRecordAppend(dst, plain []byte) []byte {
	c.outSeq++
	if c.outAEAD != nil {
		// Single-pass AEAD: nonce = salt || big-endian sequence, AAD = the
		// sequence bytes (redundant with the nonce but symmetric with the
		// legacy MAC input). Sealing is in place into the ensured region.
		binary.BigEndian.PutUint64(c.outSeqB[:], c.outSeq)
		binary.BigEndian.PutUint64(c.outNonce[keymat.SaltLen:], c.outSeq)
		off := len(dst)
		dst = ensure(dst, len(plain)+macLen)
		c.outAEAD.Seal(dst[off:off], &c.outNonce, plain, c.outSeqB[:])
		c.cfg.charge(c.cfg.Costs.symmetric(len(plain)))
		return dst
	}
	deriveRecordIV(c.outEnc, &c.outIV, c.outSeq)
	off := len(dst)
	dst = ensure(dst, len(plain)+macLen)
	ct := dst[off : off+len(plain)]
	keymat.CTRXor(c.outEnc, &c.outCTR, &c.outIV, ct, plain)
	binary.BigEndian.PutUint64(c.outSeqB[:], c.outSeq)
	c.outMAC.Reset()
	c.outMAC.Write(c.outSeqB[:])
	c.outMAC.Write(ct)
	copy(dst[off+len(plain):], c.outMAC.SumTrunc(macLen))
	c.cfg.charge(c.cfg.Costs.symmetric(len(plain)))
	return dst
}

// sealRecord encrypts and MACs one application record into a fresh
// buffer. It is a thin wrapper over sealRecordAppend.
func (c *Conn) sealRecord(plain []byte) []byte {
	return c.sealRecordAppend(nil, plain)
}

func (cst Costs) symmetric(n int) time.Duration {
	return time.Duration(cst.SymmetricNsPerByte * float64(n))
}

// openRecordInPlace verifies one record body and decrypts it in place,
// returning the plaintext as a prefix of body. It allocates nothing.
func (c *Conn) openRecordInPlace(body []byte) ([]byte, error) {
	if len(body) < macLen {
		return nil, ErrBadRecord
	}
	c.inSeq++
	binary.BigEndian.PutUint64(c.inSeqB[:], c.inSeq)
	if c.inAEAD != nil {
		// Tag verification precedes any decryption inside Open; the
		// plaintext lands in place at the head of body.
		binary.BigEndian.PutUint64(c.inNonce[keymat.SaltLen:], c.inSeq)
		pt, err := c.inAEAD.Open(body[:0], &c.inNonce, body, c.inSeqB[:])
		if err != nil {
			return nil, ErrBadMAC
		}
		c.cfg.charge(c.cfg.Costs.symmetric(len(pt)))
		return pt, nil
	}
	ct, tag := body[:len(body)-macLen], body[len(body)-macLen:]
	c.inMAC.Reset()
	c.inMAC.Write(c.inSeqB[:])
	c.inMAC.Write(ct)
	if !c.inMAC.VerifyTrunc(tag, macLen) {
		return nil, ErrBadMAC
	}
	deriveRecordIV(c.inEnc, &c.inIV, c.inSeq)
	keymat.CTRXor(c.inEnc, &c.inCTR, &c.inIV, ct, ct)
	c.cfg.charge(c.cfg.Costs.symmetric(len(ct)))
	return ct, nil
}

// openRecord verifies and decrypts one record body without modifying it,
// returning the plaintext in a fresh buffer.
func (c *Conn) openRecord(body []byte) ([]byte, error) {
	return c.openRecordInPlace(append([]byte(nil), body...))
}

// Write encrypts and sends b, fragmenting into records. The wire record
// (header, ciphertext, tag) is assembled in a reusable conn-owned buffer,
// so steady-state writes allocate nothing.
func (c *Conn) Write(b []byte) (int, error) {
	if c.closed {
		return 0, ErrClosed
	}
	total := 0
	for len(b) > 0 {
		n := len(b)
		if n > maxRecord {
			n = maxRecord
		}
		c.wbuf = append(c.wbuf[:0], recAppData, 0, 0)
		c.wbuf = c.sealRecordAppend(c.wbuf, b[:n])
		rl := len(c.wbuf) - 3
		c.wbuf[1], c.wbuf[2] = byte(rl>>8), byte(rl)
		if _, err := c.stream.Write(c.wbuf); err != nil {
			return total, err
		}
		total += n
		b = b[n:]
	}
	return total, nil
}

// readRecordInto reads one record of the wanted type into the conn-owned
// record buffer and returns its body (valid until the next call).
func (c *Conn) readRecordInto(want byte) ([]byte, error) {
	if _, err := io.ReadFull(c.rd, c.rhdr[:]); err != nil {
		return nil, err
	}
	n := int(c.rhdr[1])<<8 | int(c.rhdr[2])
	if n > maxRecord+64 {
		return nil, ErrBadRecord
	}
	if cap(c.rrec) < n {
		c.rrec = make([]byte, n, n+n/4)
	}
	body := c.rrec[:n]
	if _, err := io.ReadFull(c.rd, body); err != nil {
		return nil, err
	}
	if c.rhdr[0] == recAlert {
		return nil, ErrClosed
	}
	if c.rhdr[0] != want {
		return nil, ErrBadRecord
	}
	return body, nil
}

// Read decrypts application data into b. Records are read into and
// decrypted within a reusable conn-owned buffer (safe because the next
// record is only fetched once the previous plaintext is fully drained),
// so steady-state reads allocate nothing.
func (c *Conn) Read(b []byte) (int, error) {
	for len(c.rbuf) == 0 {
		if c.closed {
			return 0, ErrClosed
		}
		body, err := c.readRecordInto(recAppData)
		if err != nil {
			return 0, err
		}
		pt, err := c.openRecordInPlace(body)
		if err != nil {
			return 0, err
		}
		c.rbuf = pt
	}
	n := copy(b, c.rbuf)
	c.rbuf = c.rbuf[n:]
	return n, nil
}

// Close sends a close alert.
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return writeRecord(c.stream, recAlert, []byte{0})
}

// Overhead reports the per-record wire overhead in bytes.
func Overhead() int { return 3 + macLen }
