package tlslite

import (
	"crypto/hmac"
	"io"
	"sync"

	"hipcloud/internal/keymat"
)

// Session resumption: the server hands the client an opaque ticket after
// a full handshake; presenting it later skips the signature and
// Diffie-Hellman exchange entirely — fresh randoms are mixed with the
// cached master secret instead (the amortization that makes per-request
// SSL connections affordable, and the reason the paper's HIP-vs-SSL
// comparison is dominated by data-plane costs).

// serverSession is one resumable session: the master secret plus the
// record suite negotiated during the original full handshake (the
// abbreviated exchange carries no suite bytes, so both ends must
// remember it).
type serverSession struct {
	secret []byte
	suite  keymat.Suite
}

// ServerSessions is the server-side resumption store, shared across
// connections of one server.
type ServerSessions struct {
	mu sync.Mutex
	m  map[string]serverSession // ticket -> session
	// Cap bounds stored sessions (FIFO-ish eviction; default 4096).
	Cap int
}

// NewServerSessions creates an empty store.
func NewServerSessions() *ServerSessions {
	return &ServerSessions{m: make(map[string]serverSession), Cap: 4096}
}

func (s *ServerSessions) put(ticket, secret []byte, suite keymat.Suite) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.m) >= s.Cap {
		for k := range s.m { // arbitrary eviction keeps the store bounded
			keymat.Zeroize(s.m[k].secret) // the evicted master secret must not linger
			delete(s.m, k)
			break
		}
	}
	s.m[string(ticket)] = serverSession{
		secret: append([]byte(nil), secret...),
		suite:  suite,
	}
}

// get returns a copy of the session for ticket: the store wipes its
// secret slices on eviction, so handing out aliases would zero material
// a caller is still deriving keys from.
func (s *ServerSessions) get(ticket []byte) (serverSession, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.m[string(ticket)]
	if !ok {
		return serverSession{}, false
	}
	return serverSession{
		secret: append([]byte(nil), sess.secret...),
		suite:  sess.suite,
	}, true
}

// Len reports stored sessions.
func (s *ServerSessions) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// SessionCache is the client-side resumption store, keyed by server name.
type SessionCache struct {
	mu sync.Mutex
	m  map[string]clientSession
}

type clientSession struct {
	ticket []byte
	secret []byte
	suite  keymat.Suite
}

// NewSessionCache creates an empty client cache.
func NewSessionCache() *SessionCache {
	return &SessionCache{m: make(map[string]clientSession)}
}

func (c *SessionCache) put(server string, ticket, secret []byte, suite keymat.Suite) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.m[server]; ok {
		keymat.Zeroize(old.ticket)
		keymat.Zeroize(old.secret)
	}
	c.m[server] = clientSession{
		ticket: append([]byte(nil), ticket...),
		secret: append([]byte(nil), secret...),
		suite:  suite,
	}
}

// get returns a copy of the cached session: Forget and put wipe the
// stored slices in place, so an aliased return would zero the ticket out
// from under a caller mid-handshake (the fallback path reconstructs the
// transcript hello from it after Forget).
func (c *SessionCache) get(server string) (clientSession, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.m[server]
	if !ok {
		return clientSession{}, false
	}
	return clientSession{
		ticket: append([]byte(nil), s.ticket...),
		secret: append([]byte(nil), s.secret...),
		suite:  s.suite,
	}, true
}

// Forget drops the cached session for server (after a failed resumption),
// wiping the stored ticket and master secret before the entry is dropped.
func (c *SessionCache) Forget(server string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.m[server]; ok {
		keymat.Zeroize(s.ticket)
		keymat.Zeroize(s.secret)
	}
	delete(c.m, server)
}

// resumeClient runs the abbreviated handshake. Returns (nil, false, nil)
// when the server declined and the caller must fall back to a full
// handshake on a fresh connection.
func resumeClient(s Stream, cfg Config, sess clientSession, clientRand []byte) (*Conn, bool, error) {
	hello := clientHello(&cfg, clientRand, sess.ticket)
	if err := writeRecord(s, recHandshake, hello); err != nil {
		return nil, false, err
	}
	rec, err := readRecord(s, recHandshake)
	if err != nil {
		return nil, false, err
	}
	typ, body, err := splitMsg(rec)
	if err != nil {
		return nil, false, ErrHandshake
	}
	if typ != msgServerResume {
		// Full ServerHello: the server did not accept the ticket. The
		// caller falls back (this connection continues the full path).
		return nil, false, errFallback{rec: rec, body: body}
	}
	if len(body) != 32 {
		return nil, false, ErrHandshake
	}
	serverRand := body
	// Finished both ways proves both hold the secret.
	verify := transcriptMAC(sess.secret, hello, rec)
	if err := writeRecord(s, recHandshake, msg(msgFinished, verify)); err != nil {
		return nil, false, err
	}
	finRec, err := readRecord(s, recHandshake)
	if err != nil {
		return nil, false, err
	}
	ft, fb, err := splitMsg(finRec)
	if err != nil || ft != msgFinished || !hmac.Equal(fb, transcriptMAC(sess.secret, hello, rec, []byte("server"))) {
		return nil, false, ErrHandshake
	}
	// The resumed connection runs under the suite negotiated during the
	// original full handshake, carried in the cache entry.
	cliEnc, cliAuth, srvEnc, srvAuth, err := keySchedule(sess.secret, clientRand, serverRand, sess.suite)
	if err != nil {
		return nil, false, err
	}
	conn, err := newConn(s, cfg, sess.suite, cliEnc, cliAuth, srvEnc, srvAuth, true, nil)
	return conn, true, err
}

// errFallback carries the already-read full ServerHello so the client can
// continue the full handshake without another round trip.
type errFallback struct {
	rec  []byte
	body []byte
}

func (errFallback) Error() string { return "tlslite: resumption declined" }

// issueTicket mints a ticket for the session and stores it with its
// negotiated record suite.
func issueTicket(cfg Config, secret []byte, suite keymat.Suite) []byte {
	if cfg.Sessions == nil {
		return nil
	}
	ticket := make([]byte, 16)
	if _, err := io.ReadFull(cfg.rand(), ticket); err != nil {
		return nil
	}
	cfg.Sessions.put(ticket, secret, suite)
	return ticket
}
