package tlslite

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"hipcloud/internal/identity"
)

var (
	srvID = identity.MustGenerate(identity.AlgECDSA)
	rsaID = identity.MustGenerate(identity.AlgRSA)
)

// pipePair builds an in-memory bidirectional stream pair.
type pipeEnd struct {
	r  *io.PipeReader
	w  *io.PipeWriter
	mu sync.Mutex
}

func (p *pipeEnd) Read(b []byte) (int, error)  { return p.r.Read(b) }
func (p *pipeEnd) Write(b []byte) (int, error) { p.mu.Lock(); defer p.mu.Unlock(); return p.w.Write(b) }

func pipePair() (*pipeEnd, *pipeEnd) {
	ar, bw := io.Pipe()
	br, aw := io.Pipe()
	return &pipeEnd{r: ar, w: aw}, &pipeEnd{r: br, w: bw}
}

// handshake runs client and server concurrently (real goroutines, since
// io.Pipe is synchronous) and returns both conns.
func handshake(t *testing.T, cliCfg, srvCfg Config) (*Conn, *Conn) {
	t.Helper()
	ce, se := pipePair()
	var cli, srv *Conn
	var cerr, serr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); cli, cerr = Client(ce, cliCfg) }()
	go func() { defer wg.Done(); srv, serr = Server(se, srvCfg) }()
	wg.Wait()
	if cerr != nil || serr != nil {
		t.Fatalf("handshake: client=%v server=%v", cerr, serr)
	}
	return cli, srv
}

func TestHandshakeAndEcho(t *testing.T) {
	cli, srv := handshake(t, Config{}, Config{Identity: srvID})
	go func() {
		buf := make([]byte, 64)
		n, err := srv.Read(buf)
		if err != nil {
			return
		}
		srv.Write(buf[:n])
	}()
	cli.Write([]byte("hello ssl"))
	buf := make([]byte, 64)
	n, err := cli.Read(buf)
	if err != nil || string(buf[:n]) != "hello ssl" {
		t.Fatalf("echo: %q %v", buf[:n], err)
	}
	if cli.Peer() == nil || cli.Peer().HIT() != srvID.HIT() {
		t.Fatal("client did not capture server identity")
	}
}

func TestRSAServerIdentity(t *testing.T) {
	cli, srv := handshake(t, Config{}, Config{Identity: rsaID})
	go srv.Write([]byte("rsa works"))
	buf := make([]byte, 32)
	n, err := cli.Read(buf)
	if err != nil || string(buf[:n]) != "rsa works" {
		t.Fatalf("%q %v", buf[:n], err)
	}
}

func TestVerifyPeerPinRejects(t *testing.T) {
	ce, se := pipePair()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); Server(se, Config{Identity: srvID}) }()
	_, err := Client(ce, Config{VerifyPeer: func(p *identity.PublicID) error {
		if p.HIT() != rsaID.HIT() { // pin a different key
			return errors.New("wrong key")
		}
		return nil
	}})
	if err != ErrCertRefused {
		t.Fatalf("err = %v, want ErrCertRefused", err)
	}
	ce.w.Close()
	wg.Wait()
}

func TestVerifyPeerPinAccepts(t *testing.T) {
	cli, _ := handshake(t, Config{VerifyPeer: func(p *identity.PublicID) error {
		if p.HIT() != srvID.HIT() {
			return errors.New("wrong key")
		}
		return nil
	}}, Config{Identity: srvID})
	if cli.Peer().HIT() != srvID.HIT() {
		t.Fatal("pinned identity mismatch")
	}
}

func TestLargeTransferFragmentsRecords(t *testing.T) {
	cli, srv := handshake(t, Config{}, Config{Identity: srvID})
	data := make([]byte, 100*1024)
	for i := range data {
		data[i] = byte(i)
	}
	go cli.Write(data)
	var got []byte
	buf := make([]byte, 32*1024)
	for len(got) < len(data) {
		n, err := srv.Read(buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		got = append(got, buf[:n]...)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("large transfer mismatch")
	}
}

// tamperStream flips a byte of the nth record body it forwards.
type tamperStream struct {
	Stream
	armed bool
}

func (ts *tamperStream) Write(b []byte) (int, error) {
	if ts.armed && len(b) > 10 && b[0] == recAppData {
		b = append([]byte(nil), b...)
		b[7] ^= 0x20
	}
	return ts.Stream.Write(b)
}

func TestTamperedRecordRejected(t *testing.T) {
	ce, se := pipePair()
	tse := &tamperStream{Stream: se}
	var cli, srv *Conn
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); cli, _ = Client(ce, Config{}) }()
	go func() { defer wg.Done(); srv, _ = Server(tse, Config{Identity: srvID}) }()
	wg.Wait()
	if cli == nil || srv == nil {
		t.Fatal("handshake failed")
	}
	tse.armed = true
	go srv.Write([]byte("will be tampered"))
	_, err := cli.Read(make([]byte, 64))
	if err != ErrBadMAC {
		t.Fatalf("err = %v, want ErrBadMAC", err)
	}
}

func TestServerRequiresIdentity(t *testing.T) {
	_, se := pipePair()
	if _, err := Server(se, Config{}); err == nil {
		t.Fatal("server without identity accepted")
	}
}

func TestCloseAlertStopsReads(t *testing.T) {
	cli, srv := handshake(t, Config{}, Config{Identity: srvID})
	go cli.Close()
	if _, err := srv.Read(make([]byte, 8)); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestChargeHookReceivesCosts(t *testing.T) {
	var cliCost, srvCost time.Duration
	costs := Costs{
		Sign: time.Millisecond, Verify: 500 * time.Microsecond,
		DHKeygen: time.Millisecond, DHCompute: 2 * time.Millisecond,
		SymmetricNsPerByte: 10,
	}
	cli, srv := handshake(t,
		Config{Costs: costs, Charge: func(d time.Duration) { cliCost += d }},
		Config{Identity: srvID, Costs: costs, Charge: func(d time.Duration) { srvCost += d }},
	)
	if cliCost < costs.Verify+costs.DHKeygen+costs.DHCompute {
		t.Fatalf("client handshake cost %v too low", cliCost)
	}
	if srvCost < costs.Sign+costs.DHKeygen+costs.DHCompute {
		t.Fatalf("server handshake cost %v too low", srvCost)
	}
	base := cliCost
	go srv.Read(make([]byte, 64*1024))
	cli.Write(make([]byte, 10000))
	if cliCost-base < costs.symmetric(10000) {
		t.Fatalf("data cost not charged: %v", cliCost-base)
	}
}

func TestGarbageHandshakeRejected(t *testing.T) {
	ce, se := pipePair()
	go func() {
		// Consume the ClientHello, then answer with garbage.
		io.ReadFull(readerOf(se), make([]byte, 3+4+32+2))
		se.Write([]byte{recHandshake, 0, 4, 9, 9, 9, 9})
	}()
	if _, err := Client(ce, Config{}); err == nil {
		t.Fatal("garbage server hello accepted")
	}
}
