// Package simtcp provides blocking, TCP-like stream connections inside the
// netsim simulator, built on the sans-io core of hipcloud/internal/stream.
//
// A Stack is attached to one simulated node and multiplexes any number of
// connections over a Fabric — the thing that actually carries marshaled
// segments. Two fabrics exist:
//
//   - the plain fabric in this package (segments over a well-known
//     simulated UDP port), used for the paper's "basic" and SSL scenarios;
//   - the HIP/ESP fabric in hipcloud/internal/hipsim, which runs the base
//     exchange on first contact and seals every segment in ESP.
//
// All crypto/packet CPU costs reported by the fabric are charged to the
// node's simulated CPU by the stack's service loop, so security protocols
// consume VM compute exactly where the paper says they do.
//
// The stack is run-to-completion: inbound segments, outbound flushes and
// retransmission timers are handled by scheduler-context callbacks (a
// coalesced "kick" event plus one re-armable netsim.Timer), not by a
// parked pump goroutine. Only the user-facing Conn API (Read, Write,
// Dial, Accept) blocks a process.
package simtcp

import (
	"encoding/binary"
	"errors"
	"net/netip"
	"sort"
	"time"

	"hipcloud/internal/netsim"
	"hipcloud/internal/stream"
)

// Errors returned by stack operations.
var (
	ErrTimeout   = errors.New("simtcp: operation timed out")
	ErrRefused   = errors.New("simtcp: connection refused")
	ErrClosed    = errors.New("simtcp: closed")
	ErrReset     = errors.New("simtcp: connection reset")
	ErrPortInUse = errors.New("simtcp: port already bound")
)

// Fabric carries marshaled segments between stacks. Implementations
// translate peer addresses (IPs, HITs or LSIs) into actual delivery.
type Fabric interface {
	// Canonical maps a user-supplied peer identifier (IP, HIT or LSI) to
	// the canonical address connections are keyed on (LSIs map to HITs;
	// the fabric remembers that the peer is in LSI mode for costing).
	Canonical(peer netip.Addr) (netip.Addr, error)
	// Establish prepares connectivity with peer (e.g. runs a HIP base
	// exchange), blocking the calling process. The plain fabric is a
	// no-op. It returns the CPU cost already charged (informational).
	Establish(p *netsim.Proc, peer netip.Addr) error
	// Send transmits one wire unit to the peer and returns the CPU cost
	// the stack should charge for it. Called from the pump process.
	// Send takes ownership of data: the fabric (or the network it hands
	// the buffer to) may recycle it into netsim's buffer pool, so the
	// caller must not touch data afterwards.
	Send(peer netip.Addr, data []byte) (cost time.Duration, err error)
	// Attach gives the fabric its delivery callback: inbound wire units
	// are passed to deliver together with their decode CPU cost.
	// deliver must be called in scheduler context and transfers ownership
	// of data to the stack, which recycles it via netsim.PutBuf once the
	// stream core has consumed the segment.
	Attach(deliver func(peer netip.Addr, data []byte, cost time.Duration))
}

// segment mux header: local (sender) port, remote (receiver) port.
const muxHeader = 4

type connKey struct {
	peer       netip.Addr
	localPort  uint16
	remotePort uint16
}

// less orders keys (peer, localPort, remotePort) — a stable sort key for
// deterministic timer firing.
func (k connKey) less(o connKey) bool {
	if c := k.peer.Compare(o.peer); c != 0 {
		return c < 0
	}
	if k.localPort != o.localPort {
		return k.localPort < o.localPort
	}
	return k.remotePort < o.remotePort
}

// Stack is the per-node stream transport.
type Stack struct {
	sim    *netsim.Sim
	node   *netsim.Node
	fabric Fabric

	conns     map[connKey]*Conn
	listeners map[uint16]*Listener
	nextPort  uint16

	pending []inSeg // delivered, not yet serviced
	// dirty conns are flushed in marking order: the map is the membership
	// test, the queue the iteration order. Ranging over the map alone
	// would emit packets in Go's randomized map order and break the
	// simulator's run-to-run determinism (caught by hiplint's simdet).
	dirty  map[*Conn]bool
	dirtyQ []*Conn
	debt   time.Duration          // CPU cost not yet charged
	// armed holds the per-conn timer deadlines as a flat list plus an
	// index map: every service pass scans it for the minimum, and a
	// slice walk beats ranging a map there (deterministic order, no
	// iterator, cache-friendly). armedIdx gives O(1) re-arm/disarm.
	armed    []armedConn
	armedIdx map[*Conn]int

	// Run-to-completion service state. kicked coalesces wake requests
	// into one scheduled service pass; charging serializes passes behind
	// an in-flight async CPU charge, so modeled compute still delays
	// segment processing exactly as the old pump process did.
	kicked       bool
	charging     bool
	serviceFn    func() // bound s.service, scheduled by kick
	chargeDoneFn func() // bound s.chargeDone, runs when a CPU charge ends
	timer        *netsim.Timer
	due          []*Conn // scratch for timerFire, reused across fires

	closed bool
}

// inSeg holds one delivered wire unit. data is the FULL buffer including
// the mux header — keeping the original slice (not a sub-slice) preserves
// its capacity so PutBuf returns it to the right pool class after the
// segment is consumed.
type inSeg struct {
	key  connKey
	data []byte
}

// NewStack creates a stream stack on node over the given fabric. All
// stack-side work runs as scheduler callbacks; no process is spawned.
func NewStack(node *netsim.Node, fabric Fabric) *Stack {
	s := &Stack{
		sim:       node.Net().Sim(),
		node:      node,
		fabric:    fabric,
		conns:     make(map[connKey]*Conn),
		listeners: make(map[uint16]*Listener),
		nextPort:  40000,
		dirty:     make(map[*Conn]bool),
		armedIdx:  make(map[*Conn]int),
	}
	s.serviceFn = s.service
	s.chargeDoneFn = s.chargeDone
	s.timer = s.sim.NewTimer(s.timerFire)
	fabric.Attach(s.deliver)
	return s
}

// Node returns the owning node.
func (s *Stack) Node() *netsim.Node { return s.node }

// deliver receives one wire unit from the fabric (scheduler context).
func (s *Stack) deliver(peer netip.Addr, data []byte, cost time.Duration) {
	if s.closed || len(data) < muxHeader {
		return
	}
	// Sender's local port is our remote port and vice versa.
	remotePort := binary.BigEndian.Uint16(data[0:])
	localPort := binary.BigEndian.Uint16(data[2:])
	key := connKey{peer: peer, localPort: localPort, remotePort: remotePort}
	s.debt += cost + s.node.PerPacketCPU()
	s.pending = append(s.pending, inSeg{key: key, data: data})
	s.kick()
}

// kick schedules a service pass at the current virtual time, coalescing
// any number of wake requests into one. Runs in any context.
func (s *Stack) kick() {
	if s.kicked || s.closed {
		return
	}
	s.kicked = true
	s.sim.At(s.sim.Now(), s.serviceFn)
}

// markDirty queues c for flushing exactly once, preserving marking order.
func (s *Stack) markDirty(c *Conn) {
	if !s.dirty[c] {
		s.dirty[c] = true
		s.dirtyQ = append(s.dirtyQ, c)
	}
}

// service is one run-to-completion pass of the stack's kernel work: charge
// accumulated CPU debt, feed inbound segments to connections, packetize
// outbound data, and re-arm the deadline timer. It runs in scheduler
// context and never blocks; modeled CPU time is charged asynchronously,
// and processing resumes when the charge completes — the same ordering
// the old pump process enforced by blocking on CPU().Use.
func (s *Stack) service() {
	s.kicked = false
	if s.closed || s.charging {
		return
	}
	if s.debt > 0 {
		s.charging = true
		d := s.debt
		s.debt = 0
		s.node.CPU().UseAsync(d, s.chargeDoneFn)
		return
	}
	// Inbound segments. Indexed loop: a loopback flush below (or a
	// self-addressed send) may append while we iterate.
	for i := 0; i < len(s.pending); i++ {
		in := s.pending[i]
		s.handleSegment(in)
		// The stream core copies everything it keeps out of the
		// segment, so the wire buffer can be recycled now.
		netsim.PutBuf(in.data)
	}
	s.pending = s.pending[:0]
	// Outbound for dirty conns, in marking order (determinism: a map
	// range here would emit packets in randomized order).
	for len(s.dirtyQ) > 0 {
		c := s.dirtyQ[0]
		s.dirtyQ = s.dirtyQ[1:]
		delete(s.dirty, c)
		s.flush(c)
	}
	// Flushing charges send costs to debt; new inbound may have arrived
	// via loopback. Either way, run another pass.
	if s.debt > 0 || len(s.pending) > 0 || len(s.dirtyQ) > 0 {
		s.kick()
	}
	s.rearmTimer()
}

// chargeDone runs when an async CPU charge completes.
func (s *Stack) chargeDone() {
	s.charging = false
	s.kick()
}

// armedConn is one entry in the armed-timer list.
type armedConn struct {
	c  *Conn
	at netsim.VTime
}

// arm points c's timer at deadline, updating in place when already armed.
func (s *Stack) arm(c *Conn, at netsim.VTime) {
	if i, ok := s.armedIdx[c]; ok {
		s.armed[i].at = at
		return
	}
	s.armedIdx[c] = len(s.armed)
	s.armed = append(s.armed, armedConn{c: c, at: at})
}

// disarm drops c's timer entry by swap-removal, fixing the moved entry's
// index.
func (s *Stack) disarm(c *Conn) {
	i, ok := s.armedIdx[c]
	if !ok {
		return
	}
	last := len(s.armed) - 1
	if i != last {
		s.armed[i] = s.armed[last]
		s.armedIdx[s.armed[i].c] = i
	}
	s.armed = s.armed[:last]
	delete(s.armedIdx, c)
}

// rearmTimer points the stack's timer at the earliest armed conn deadline
// (or disarms it), dropping entries for conns that finished closing.
func (s *Stack) rearmTimer() {
	var next netsim.VTime
	for i := 0; i < len(s.armed); {
		e := s.armed[i]
		if e.c.closedByUser && e.c.inner.State() == stream.StateClosed {
			s.disarm(e.c) // swap-removal: re-examine index i
			continue
		}
		if next == 0 || e.at < next {
			next = e.at
		}
		i++
	}
	if next == 0 {
		s.timer.Stop()
		return
	}
	s.timer.Reset(next)
}

// timerFire runs when the earliest conn deadline passes. Due conns are
// collected and sorted by connection key before firing, so the
// retransmissions they queue flush in a stable order regardless of the
// armed list's arm-history order.
func (s *Stack) timerFire() {
	if s.closed {
		return
	}
	now := s.sim.Now()
	due := s.due[:0]
	for _, e := range s.armed {
		if e.at <= now {
			due = append(due, e.c)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i].key.less(due[j].key) })
	for _, c := range due {
		s.disarm(c)
		c.inner.OnTimer(now)
		s.markDirty(c)
	}
	s.due = due[:0]
	s.kick()
	s.rearmTimer()
}

// handleSegment routes an inbound segment to a conn or listener.
func (s *Stack) handleSegment(in inSeg) {
	seg, err := stream.ParseSegment(in.data[muxHeader:])
	if err != nil {
		return
	}
	c, ok := s.conns[in.key]
	if !ok {
		// New connection? Only for SYN to a listener.
		if seg.Flags&stream.FlagSYN == 0 || seg.Flags&stream.FlagACK != 0 {
			return
		}
		l, ok := s.listeners[in.key.localPort]
		if !ok || len(l.backlog) >= l.maxBacklog {
			return // silently drop; dialer times out (or RST later)
		}
		c = s.newConn(in.key)
		l.backlog = append(l.backlog, c)
		l.wq.WakeOne()
	}
	c.inner.OnSegment(seg, s.sim.Now())
	s.markDirty(c)
	c.signal()
}

// flush drains a conn's outgoing segments through the fabric (scheduler
// context). Send costs accumulate as debt, charged by the next service
// pass — the packets are already on the wire, but further stack work
// waits for the CPU, as it did behind the pump's blocking charge.
func (s *Stack) flush(c *Conn) {
	segs, deadline := c.inner.Poll(s.sim.Now())
	var cost time.Duration
	for _, seg := range segs {
		wire := netsim.GetBuf(muxHeader + stream.HeaderSize + len(seg.Payload))
		binary.BigEndian.PutUint16(wire[0:], c.key.localPort)
		binary.BigEndian.PutUint16(wire[2:], c.key.remotePort)
		seg.MarshalInto(wire[muxHeader:])
		// The payload was drawn from the pool by the stream core
		// (Config.Pool below); it is dead once marshaled onto the wire.
		netsim.PutBuf(seg.Payload)
		sc, err := s.fabric.Send(c.key.peer, wire)
		if err != nil {
			c.inner.Abort()
			break
		}
		cost += sc + s.node.PerPacketCPU()
	}
	s.debt += cost
	if deadline > 0 {
		s.arm(c, deadline)
	} else {
		s.disarm(c)
	}
	c.signal()
	// Garbage-collect fully closed conns.
	st := c.inner.State()
	if st == stream.StateClosed || st == stream.StateReset {
		if c.closedByUser {
			delete(s.conns, c.key)
		}
	}
}

func (s *Stack) newConn(key connKey) *Conn {
	c := &Conn{
		stack: s,
		key:   key,
		inner: stream.New(stream.Config{Pool: netsim.BufPool{}}, uint32(s.sim.Rand().Int63())),
		rq:    netsim.NewWaitQueue(s.sim),
		wq:    netsim.NewWaitQueue(s.sim),
	}
	s.conns[key] = c
	return c
}

func (s *Stack) allocPort() uint16 {
	for {
		s.nextPort++
		if s.nextPort < 40000 {
			s.nextPort = 40000
		}
		free := true
		for k := range s.conns {
			if k.localPort == s.nextPort {
				free = false
				break
			}
		}
		if _, used := s.listeners[s.nextPort]; !used {
			if free {
				return s.nextPort
			}
		}
	}
}

// Dial opens a stream to peer:port, blocking p until established or the
// timeout elapses (timeout <= 0 waits forever). peer may be an IP, a HIT
// or an LSI, depending on the fabric.
func (s *Stack) Dial(p *netsim.Proc, peer netip.Addr, port uint16, timeout time.Duration) (*Conn, error) {
	canon, err := s.fabric.Canonical(peer)
	if err != nil {
		return nil, err
	}
	if err := s.fabric.Establish(p, canon); err != nil {
		return nil, err
	}
	key := connKey{peer: canon, localPort: s.allocPort(), remotePort: port}
	c := s.newConn(key)
	c.inner.Open(p.Now())
	s.markDirty(c)
	s.kick()
	deadline := netsim.VTime(0)
	if timeout > 0 {
		deadline = p.Now() + timeout
	}
	for !c.inner.Established() {
		st := c.inner.State()
		if st == stream.StateReset {
			delete(s.conns, key)
			return nil, ErrRefused
		}
		remain := netsim.VTime(0)
		if deadline > 0 {
			remain = deadline - p.Now()
			if remain <= 0 {
				delete(s.conns, key)
				return nil, ErrTimeout
			}
		}
		if c.rq.Wait(p, remain) {
			delete(s.conns, key)
			return nil, ErrTimeout
		}
	}
	return c, nil
}

// Listener accepts inbound connections on a port.
type Listener struct {
	stack      *Stack
	port       uint16
	backlog    []*Conn
	maxBacklog int
	wq         *netsim.WaitQueue
	closed     bool
}

// Listen binds a listener on port.
func (s *Stack) Listen(port uint16) (*Listener, error) {
	if _, used := s.listeners[port]; used {
		return nil, ErrPortInUse
	}
	l := &Listener{stack: s, port: port, maxBacklog: 128, wq: netsim.NewWaitQueue(s.sim)}
	s.listeners[port] = l
	return l, nil
}

// MustListen is Listen that panics on error.
func (s *Stack) MustListen(port uint16) *Listener {
	l, err := s.Listen(port)
	if err != nil {
		panic(err)
	}
	return l
}

// Accept blocks p until a connection arrives (it may still be mid
// handshake; Reads will block until data flows).
func (l *Listener) Accept(p *netsim.Proc, timeout time.Duration) (*Conn, error) {
	deadline := netsim.VTime(0)
	if timeout > 0 {
		deadline = p.Now() + timeout
	}
	for len(l.backlog) == 0 {
		if l.closed {
			return nil, ErrClosed
		}
		remain := netsim.VTime(0)
		if deadline > 0 {
			remain = deadline - p.Now()
			if remain <= 0 {
				return nil, ErrTimeout
			}
		}
		if l.wq.Wait(p, remain) {
			return nil, ErrTimeout
		}
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, nil
}

// Close stops the listener.
func (l *Listener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	delete(l.stack.listeners, l.port)
	l.wq.WakeAll()
}

// Conn is a blocking stream connection.
type Conn struct {
	stack        *Stack
	key          connKey
	inner        *stream.Conn
	rq, wq       *netsim.WaitQueue
	closedByUser bool
}

// RemoteAddr returns the peer address the connection was keyed on.
func (c *Conn) RemoteAddr() netip.Addr { return c.key.peer }

// LocalPort returns the local port.
func (c *Conn) LocalPort() uint16 { return c.key.localPort }

// signal wakes blocked readers/writers according to conn state.
func (c *Conn) signal() {
	if c.inner.Readable() {
		c.rq.WakeAll()
	}
	if c.inner.Writable() || c.inner.State() == stream.StateReset {
		c.wq.WakeAll()
	}
	if c.inner.Established() || c.inner.State() == stream.StateReset {
		c.rq.WakeAll() // dialers waiting for establishment
	}
}

// Read blocks p until data is available, EOF, or error.
func (c *Conn) Read(p *netsim.Proc, b []byte) (int, error) {
	for {
		n, err := c.inner.Read(b)
		if n > 0 {
			if c.inner.MaybeWindowUpdate() {
				c.stack.markDirty(c)
				c.stack.kick()
			}
			return n, nil
		}
		switch err {
		case stream.ErrEOF:
			return 0, ErrClosed
		case stream.ErrReset:
			return 0, ErrReset
		}
		c.rq.Wait(p, 0)
	}
}

// Write blocks p until all of b is accepted into the send buffer.
func (c *Conn) Write(p *netsim.Proc, b []byte) (int, error) {
	total := 0
	for len(b) > 0 {
		n, err := c.inner.Write(b)
		if err != nil {
			switch err {
			case stream.ErrReset:
				return total, ErrReset
			default:
				return total, ErrClosed
			}
		}
		total += n
		b = b[n:]
		if n > 0 {
			c.stack.markDirty(c)
			c.stack.kick()
		}
		if len(b) > 0 {
			c.wq.Wait(p, 0)
		}
	}
	return total, nil
}

// Close starts an orderly shutdown (buffered data still delivered).
func (c *Conn) Close() {
	if c.closedByUser {
		return
	}
	c.closedByUser = true
	c.inner.Close()
	c.stack.markDirty(c)
	c.stack.kick()
}

// Abort resets the connection immediately.
func (c *Conn) Abort() {
	c.inner.Abort()
	c.closedByUser = true
	c.stack.markDirty(c)
	c.stack.kick()
}

// Stats exposes the underlying stream counters.
func (c *Conn) Stats() (sent, rcvd, retransmits uint64) {
	return c.inner.BytesSent, c.inner.BytesRcvd, c.inner.Retransmits + c.inner.FastRetransmits
}

// Bind returns an io.ReadWriteCloser view of the connection for the given
// process, so byte-oriented protocol code (HTTP, TLS) can run over
// simulated connections unchanged.
func (c *Conn) Bind(p *netsim.Proc) *BoundConn { return &BoundConn{c: c, p: p} }

// BoundConn is a Conn bound to one process.
type BoundConn struct {
	c *Conn
	p *netsim.Proc
}

// Read implements io.Reader.
func (b *BoundConn) Read(buf []byte) (int, error) { return b.c.Read(b.p, buf) }

// Write implements io.Writer.
func (b *BoundConn) Write(buf []byte) (int, error) { return b.c.Write(b.p, buf) }

// Close implements io.Closer.
func (b *BoundConn) Close() error {
	b.c.Close()
	return nil
}

// Abort resets the connection immediately, waking blocked readers and
// writers with ErrReset.
func (b *BoundConn) Abort() { b.c.Abort() }

// Conn returns the underlying connection.
func (b *BoundConn) Conn() *Conn { return b.c }

// Proc returns the currently bound process.
func (b *BoundConn) Proc() *netsim.Proc { return b.p }

// Rebind transfers the view to another process (connection pooling: a
// different handler process reuses a persistent connection). The caller
// must guarantee the previous process no longer uses the view.
func (b *BoundConn) Rebind(p *netsim.Proc) { b.p = p }

// --- Plain fabric ---

// PlainPort is the well-known simulated UDP port carrying plain segments
// (the "TCP module" of a node).
const PlainPort = 6

// PlainFabric carries segments over simulated UDP with no protection: the
// paper's "basic" scenario.
type PlainFabric struct {
	node    *netsim.Node
	sock    *netsim.UDPSocket
	deliver func(peer netip.Addr, data []byte, cost time.Duration)
	// PerPacketCost models bare packet-processing CPU (no crypto).
	PerPacketCost time.Duration
}

// NewPlainFabric binds the plain fabric on node.
func NewPlainFabric(node *netsim.Node) *PlainFabric {
	f := &PlainFabric{node: node}
	f.sock = node.MustBindUDP(PlainPort)
	f.sock.Handler = func(dg netsim.Datagram) {
		if f.deliver != nil {
			f.deliver(dg.Src.Addr(), dg.Payload, f.PerPacketCost)
		}
	}
	return f
}

// Rehome follows the node to a new primary address (VM migration): new
// segments source from the current locator. Connections keyed to the old
// address are dead anyway — their path left with the old attachment.
func (f *PlainFabric) Rehome() { f.sock.Rehome() }

// Canonical is the identity for plain transport.
func (f *PlainFabric) Canonical(peer netip.Addr) (netip.Addr, error) { return peer, nil }

// Establish is a no-op for plain transport.
func (f *PlainFabric) Establish(p *netsim.Proc, peer netip.Addr) error { return nil }

// Send transmits a segment to the peer's plain port.
func (f *PlainFabric) Send(peer netip.Addr, data []byte) (time.Duration, error) {
	f.sock.SendTo(netip.AddrPortFrom(peer, PlainPort), data)
	return f.PerPacketCost, nil
}

// Attach installs the delivery callback.
func (f *PlainFabric) Attach(deliver func(peer netip.Addr, data []byte, cost time.Duration)) {
	f.deliver = deliver
}
