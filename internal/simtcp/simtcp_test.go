package simtcp

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"hipcloud/internal/netsim"
)

var (
	addrA = netip.MustParseAddr("10.0.0.1")
	addrB = netip.MustParseAddr("10.0.0.2")
)

// env builds two nodes with plain stacks over one link.
func env(t *testing.T, l netsim.Link) (*netsim.Sim, *Stack, *Stack) {
	t.Helper()
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	a := n.AddNode("a", 2, 1)
	b := n.AddNode("b", 2, 1)
	n.Connect(a, addrA, b, addrB, l)
	sa := NewStack(a, NewPlainFabric(a))
	sb := NewStack(b, NewPlainFabric(b))
	return s, sa, sb
}

func TestDialListenEcho(t *testing.T) {
	s, sa, sb := env(t, netsim.Link{Latency: time.Millisecond})
	l := sb.MustListen(80)
	s.Spawn("server", func(p *netsim.Proc) {
		c, err := l.Accept(p, 0)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		buf := make([]byte, 64)
		n, err := c.Read(p, buf)
		if err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		c.Write(p, append([]byte("echo:"), buf[:n]...))
		c.Close()
	})
	var got []byte
	s.Spawn("client", func(p *netsim.Proc) {
		c, err := sa.Dial(p, addrB, 80, 5*time.Second)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.Write(p, []byte("hello"))
		buf := make([]byte, 64)
		n, err := c.Read(p, buf)
		if err != nil {
			t.Errorf("client read: %v", err)
			return
		}
		got = append(got, buf[:n]...)
		c.Close()
	})
	s.Run(10 * time.Second)
	s.Shutdown()
	if string(got) != "echo:hello" {
		t.Fatalf("got %q", got)
	}
}

func TestBulkTransferThroughputBoundedByBandwidth(t *testing.T) {
	// 10 MB over a 10 MB/s link should take ≈1s of virtual time.
	s, sa, sb := env(t, netsim.Link{Latency: 200 * time.Microsecond, Bandwidth: 10e6})
	const total = 10 << 20
	l := sb.MustListen(5001)
	var rcvd int
	var done netsim.VTime
	s.Spawn("sink", func(p *netsim.Proc) {
		c, err := l.Accept(p, 0)
		if err != nil {
			return
		}
		buf := make([]byte, 64*1024)
		for rcvd < total {
			n, err := c.Read(p, buf)
			if err != nil {
				break
			}
			rcvd += n
		}
		done = p.Now()
	})
	s.Spawn("source", func(p *netsim.Proc) {
		c, err := sa.Dial(p, addrB, 5001, 5*time.Second)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		chunk := make([]byte, 32*1024)
		sent := 0
		for sent < total {
			n, err := c.Write(p, chunk)
			if err != nil {
				t.Errorf("write: %v", err)
				return
			}
			sent += n
		}
		c.Close()
	})
	s.Run(2 * time.Minute)
	s.Shutdown()
	if rcvd != total {
		t.Fatalf("received %d of %d", rcvd, total)
	}
	secs := done.Seconds()
	if secs < 0.9 || secs > 2.5 {
		t.Fatalf("10MB over 10MB/s took %.2fs of virtual time", secs)
	}
}

func TestTransferIntegrityUnderLoss(t *testing.T) {
	s, sa, sb := env(t, netsim.Link{Latency: time.Millisecond, LossProb: 0.03})
	const total = 200 << 10
	data := make([]byte, total)
	for i := range data {
		data[i] = byte(i * 31)
	}
	l := sb.MustListen(9000)
	var got []byte
	s.Spawn("sink", func(p *netsim.Proc) {
		c, err := l.Accept(p, 0)
		if err != nil {
			return
		}
		buf := make([]byte, 32*1024)
		for len(got) < total {
			n, err := c.Read(p, buf)
			if err != nil {
				break
			}
			got = append(got, buf[:n]...)
		}
	})
	s.Spawn("source", func(p *netsim.Proc) {
		c, err := sa.Dial(p, addrB, 9000, 30*time.Second)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.Write(p, data)
		c.Close()
	})
	s.Run(5 * time.Minute)
	s.Shutdown()
	if !bytes.Equal(got, data) {
		t.Fatalf("lossy transfer mismatch: %d of %d bytes", len(got), total)
	}
}

func TestDialNoListenerTimesOut(t *testing.T) {
	s, sa, _ := env(t, netsim.Link{Latency: time.Millisecond})
	var err error
	s.Spawn("client", func(p *netsim.Proc) {
		_, err = sa.Dial(p, addrB, 4242, 2*time.Second)
	})
	s.Run(time.Minute)
	s.Shutdown()
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestManyConcurrentConnections(t *testing.T) {
	s, sa, sb := env(t, netsim.Link{Latency: 500 * time.Microsecond, Bandwidth: 100e6})
	l := sb.MustListen(80)
	const N = 40
	served := 0
	s.Spawn("server", func(p *netsim.Proc) {
		for {
			c, err := l.Accept(p, 0)
			if err != nil {
				return
			}
			conn := c
			p.Spawn("handler", func(hp *netsim.Proc) {
				buf := make([]byte, 128)
				n, err := conn.Read(hp, buf)
				if err != nil {
					return
				}
				conn.Write(hp, buf[:n])
				conn.Close()
				served++
			})
		}
	})
	ok := 0
	for i := 0; i < N; i++ {
		s.Spawn("client", func(p *netsim.Proc) {
			c, err := sa.Dial(p, addrB, 80, 10*time.Second)
			if err != nil {
				return
			}
			msg := []byte("ping")
			c.Write(p, msg)
			buf := make([]byte, 128)
			n, err := c.Read(p, buf)
			if err == nil && bytes.Equal(buf[:n], msg) {
				ok++
			}
			c.Close()
		})
	}
	s.Run(time.Minute)
	s.Shutdown()
	if ok != N {
		t.Fatalf("%d/%d round trips ok (served=%d)", ok, N, served)
	}
}

func TestCloseDeliversEOFAcrossStack(t *testing.T) {
	s, sa, sb := env(t, netsim.Link{Latency: time.Millisecond})
	l := sb.MustListen(80)
	var sawEOF bool
	s.Spawn("server", func(p *netsim.Proc) {
		c, err := l.Accept(p, 0)
		if err != nil {
			return
		}
		buf := make([]byte, 16)
		c.Read(p, buf) // "bye"
		if _, err := c.Read(p, buf); err == ErrClosed {
			sawEOF = true
		}
		c.Close()
	})
	s.Spawn("client", func(p *netsim.Proc) {
		c, err := sa.Dial(p, addrB, 80, 5*time.Second)
		if err != nil {
			return
		}
		c.Write(p, []byte("bye"))
		c.Close()
	})
	s.Run(30 * time.Second)
	s.Shutdown()
	if !sawEOF {
		t.Fatal("server did not observe EOF after client close")
	}
}

func TestPerPacketCPUChargesNode(t *testing.T) {
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	a := n.AddNode("a", 1, 1)
	b := n.AddNode("b", 1, 1)
	n.Connect(a, addrA, b, addrB, netsim.Link{Latency: time.Millisecond})
	b.SetPerPacketCPU(100 * time.Microsecond)
	sa := NewStack(a, NewPlainFabric(a))
	sb := NewStack(b, NewPlainFabric(b))
	l := sb.MustListen(80)
	s.Spawn("server", func(p *netsim.Proc) {
		c, err := l.Accept(p, 0)
		if err != nil {
			return
		}
		buf := make([]byte, 1024)
		for {
			if _, err := c.Read(p, buf); err != nil {
				return
			}
		}
	})
	s.Spawn("client", func(p *netsim.Proc) {
		c, err := sa.Dial(p, addrB, 80, 5*time.Second)
		if err != nil {
			return
		}
		c.Write(p, make([]byte, 50*1400))
		c.Close()
	})
	s.Run(time.Minute)
	s.Shutdown()
	if b.CPU().BusyTime() == 0 {
		t.Fatal("receiver CPU never charged for packet processing")
	}
}
