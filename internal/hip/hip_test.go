package hip

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"hipcloud/internal/esp"
	"hipcloud/internal/hipwire"
	"hipcloud/internal/identity"
	"hipcloud/internal/puzzle"
)

// Shared identities (keygen, esp. RSA, is slow).
var (
	idA   = identity.MustGenerate(identity.AlgECDSA)
	idB   = identity.MustGenerate(identity.AlgECDSA)
	idC   = identity.MustGenerate(identity.AlgECDSA)
	idRSA = identity.MustGenerate(identity.AlgRSA)
)

var (
	locA  = netip.MustParseAddr("10.0.0.1")
	locB  = netip.MustParseAddr("10.0.0.2")
	locC  = netip.MustParseAddr("10.0.0.3")
	locB2 = netip.MustParseAddr("10.0.9.2") // B after migration
)

// wire is a tiny test harness delivering control packets between hosts by
// locator, with optional loss and a virtual clock for timers.
type wire struct {
	t     *testing.T
	hosts map[netip.Addr]*Host
	now   time.Duration
	loss  func(from, to netip.Addr, data []byte) bool
	rng   *rand.Rand
}

func newWire(t *testing.T) *wire {
	return &wire{t: t, hosts: make(map[netip.Addr]*Host), rng: rand.New(rand.NewSource(11))}
}

func (w *wire) add(h *Host, locs ...netip.Addr) {
	for _, l := range locs {
		w.hosts[l] = h
	}
}

// pump delivers queued packets until quiescent.
func (w *wire) pump() {
	for {
		progress := false
		for loc, h := range w.hosts {
			for _, op := range h.Outgoing() {
				progress = true
				if w.loss != nil && w.loss(loc, op.Dst, op.Data) {
					continue
				}
				dst, ok := w.hosts[op.Dst]
				if !ok {
					continue
				}
				dst.OnPacket(op.Data, hostLocator(w, h), w.now)
			}
		}
		if !progress {
			return
		}
	}
}

// hostLocator finds the (first) locator a host is registered under; for
// multi-homed test hosts the current Host.Locator() is preferred.
func hostLocator(w *wire, h *Host) netip.Addr {
	if hh, ok := w.hosts[h.Locator()]; ok && hh == h {
		return h.Locator()
	}
	for loc, hh := range w.hosts {
		if hh == h {
			return loc
		}
	}
	return netip.Addr{}
}

// advance moves the virtual clock and fires timers.
func (w *wire) advance(d time.Duration) {
	w.now += d
	for _, h := range w.hosts {
		h.OnTimer(w.now)
	}
	w.pump()
}

func newHost(t *testing.T, id *identity.HostIdentity, loc netip.Addr) *Host {
	t.Helper()
	h, err := NewHost(Config{Identity: id, Locator: loc})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func establish(t *testing.T, w *wire, a, b *Host) {
	t.Helper()
	if err := a.Connect(b.HIT(), b.Locator(), w.now); err != nil {
		t.Fatal(err)
	}
	w.pump()
	assocA, ok := a.Association(b.HIT())
	if !ok || assocA.State() != Established {
		t.Fatalf("initiator state: %v", stateOf(a, b))
	}
	assocB, ok := b.Association(a.HIT())
	if !ok || assocB.State() != Established {
		t.Fatalf("responder state: %v", stateOf(b, a))
	}
}

func stateOf(h *Host, peer *Host) State {
	if a, ok := h.Association(peer.HIT()); ok {
		return a.State()
	}
	return Unassociated
}

func TestBaseExchange(t *testing.T) {
	w := newWire(t)
	a := newHost(t, idA, locA)
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)

	// Both sides emitted an Established event.
	evA, evB := a.Events(), b.Events()
	if len(evA) != 1 || evA[0].Kind != EventEstablished || evA[0].PeerHIT != b.HIT() {
		t.Fatalf("initiator events: %+v", evA)
	}
	if len(evB) != 1 || evB[0].Kind != EventEstablished {
		t.Fatalf("responder events: %+v", evB)
	}
	// SPIs must cross-match.
	aa, _ := a.Association(b.HIT())
	bb, _ := b.Association(a.HIT())
	al, ar := aa.SPIs()
	bl, br := bb.SPIs()
	if al != br || ar != bl {
		t.Fatalf("SPI mismatch: a=(%d,%d) b=(%d,%d)", al, ar, bl, br)
	}
	if aa.Suite() != bb.Suite() {
		t.Fatalf("suite mismatch: %v vs %v", aa.Suite(), bb.Suite())
	}
	if !aa.Initiator() || bb.Initiator() {
		t.Fatal("initiator flags wrong")
	}
}

func TestDataPathAfterBEX(t *testing.T) {
	w := newWire(t)
	a := newHost(t, idA, locA)
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)

	msg := []byte("GET /items/42 HTTP/1.1")
	pkt, dst, err := a.SealData(b.HIT(), msg, false)
	if err != nil {
		t.Fatal(err)
	}
	if dst != locB {
		t.Fatalf("data dst = %v", dst)
	}
	got, peer, err := b.OpenData(pkt, false)
	if err != nil {
		t.Fatal(err)
	}
	if peer != a.HIT() || !bytes.Equal(got, msg) {
		t.Fatalf("payload = %q from %v", got, peer)
	}
	// Reverse direction.
	pkt2, _, err := b.SealData(a.HIT(), []byte("200 OK"), false)
	if err != nil {
		t.Fatal(err)
	}
	got2, _, err := a.OpenData(pkt2, false)
	if err != nil || string(got2) != "200 OK" {
		t.Fatalf("reverse: %q %v", got2, err)
	}
}

func TestSealWithoutAssociation(t *testing.T) {
	a := newHost(t, idA, locA)
	if _, _, err := a.SealData(idB.HIT(), []byte("x"), false); err != ErrNoAssociation {
		t.Fatalf("err = %v, want ErrNoAssociation", err)
	}
}

func TestOpenUnknownSPI(t *testing.T) {
	a := newHost(t, idA, locA)
	pkt := make([]byte, esp.HeaderLen+esp.ICVLen)
	pkt[3] = 99
	if _, _, err := a.OpenData(pkt, false); err != esp.ErrUnknownSPI {
		t.Fatalf("err = %v, want ErrUnknownSPI", err)
	}
}

func TestBEXRetransmissionRecoversLoss(t *testing.T) {
	w := newWire(t)
	a := newHost(t, idA, locA)
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	// Drop the first two packets of the exchange entirely.
	dropped := 0
	w.loss = func(from, to netip.Addr, data []byte) bool {
		if dropped < 2 {
			dropped++
			return true
		}
		return false
	}
	if err := a.Connect(b.HIT(), locB, w.now); err != nil {
		t.Fatal(err)
	}
	w.pump()
	if stateOf(a, b) == Established {
		t.Fatal("established despite loss without timer")
	}
	// Fire retransmission timers a few times.
	for i := 0; i < 6 && stateOf(a, b) != Established; i++ {
		w.advance(2 * time.Second)
	}
	if stateOf(a, b) != Established || stateOf(b, a) != Established {
		t.Fatalf("not established after retransmits: a=%v b=%v", stateOf(a, b), stateOf(b, a))
	}
}

// TestReEstablishAfterSilentPeerLoss: an initiator that lost its state
// without a CLOSE reaching the responder (crash, or teardown on a dead
// path after the peer migrated) must be able to run a fresh base
// exchange. The responder still holds an Established association for that
// HIT; it must recognize the fresh puzzle solution as a new exchange and
// replace the stale state instead of replaying the old R2 forever.
func TestReEstablishAfterSilentPeerLoss(t *testing.T) {
	w := newWire(t)
	a := newHost(t, idA, locA)
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)
	bb, _ := b.Association(a.HIT())
	oldLocal, oldRemote := bb.SPIs()

	// The initiator's state vanishes silently: a fresh host, same identity.
	// A restarted daemon has fresh entropy (a default-seeded restart would
	// replay the original exchange byte for byte, which IS a duplicate).
	a2h, err := NewHost(Config{
		Identity: idA, Locator: locA,
		Rand: bytes.NewReader([]byte("restart-entropy-1")),
	})
	if err != nil {
		t.Fatal(err)
	}
	a2 := a2h
	w.add(a2, locA)
	if err := a2.Connect(b.HIT(), locB, w.now); err != nil {
		t.Fatal(err)
	}
	w.pump()
	if stateOf(a2, b) != Established {
		t.Fatalf("re-contact wedged: initiator state %v", stateOf(a2, b))
	}
	nb, ok := b.Association(a.HIT())
	if !ok || nb.State() != Established {
		t.Fatalf("responder state after re-contact: %v", stateOf(b, a2))
	}
	newLocal, newRemote := nb.SPIs()
	if newLocal == oldLocal && newRemote == oldRemote {
		t.Fatal("responder kept the stale association's SPIs — old R2 replayed")
	}
	// The replaced association's SPIs must cross-match the new initiator's.
	na, _ := a2.Association(b.HIT())
	al, ar := na.SPIs()
	if al != newRemote || ar != newLocal {
		t.Fatalf("SPI mismatch after re-establish: a=(%d,%d) b=(%d,%d)", al, ar, newLocal, newRemote)
	}
}

func TestBEXFailsAfterMaxRetries(t *testing.T) {
	w := newWire(t)
	a := newHost(t, idA, locA)
	w.add(a, locA) // peer does not exist: all I1s vanish
	if err := a.Connect(idB.HIT(), locB, w.now); err != nil {
		t.Fatal(err)
	}
	w.pump()
	for i := 0; i < 10; i++ {
		w.advance(20 * time.Second)
	}
	if _, ok := a.Association(idB.HIT()); ok {
		t.Fatal("association still present after max retries")
	}
	evs := a.Events()
	var failed bool
	for _, e := range evs {
		if e.Kind == EventFailed {
			failed = true
		}
	}
	if !failed {
		t.Fatalf("no failure event: %+v", evs)
	}
}

func TestResponderStatelessOnI1Flood(t *testing.T) {
	w := newWire(t)
	b := newHost(t, idB, locB)
	w.add(b, locB)
	// Spray 500 I1s with random sender HITs; responder must create zero
	// associations (stateless R1s only).
	for i := 0; i < 500; i++ {
		var hit [16]byte
		hit[0], hit[1], hit[2], hit[3] = 0x20, 0x01, 0x00, 0x10
		hit[15] = byte(i)
		hit[14] = byte(i >> 8)
		i1 := &hipwire.Packet{Type: hipwire.I1, SenderHIT: netip.AddrFrom16(hit), ReceiverHIT: b.HIT()}
		b.OnPacket(i1.Marshal(), locA, w.now)
	}
	if n := len(b.Associations()); n != 0 {
		t.Fatalf("responder holds %d associations after I1 flood", n)
	}
	if len(b.Outgoing()) != 500 {
		t.Fatal("responder did not answer the I1s")
	}
}

func TestPolicyRejectsPeer(t *testing.T) {
	w := newWire(t)
	a := newHost(t, idA, locA)
	bCfg := Config{Identity: idB, Locator: locB, Policy: func(peer netip.Addr) bool {
		return peer != idA.HIT() // deny A
	}}
	b, err := NewHost(bCfg)
	if err != nil {
		t.Fatal(err)
	}
	w.add(a, locA)
	w.add(b, locB)
	a.Connect(b.HIT(), locB, w.now)
	w.pump()
	if stateOf(a, b) == Established || stateOf(b, a) == Established {
		t.Fatal("association established despite deny policy")
	}
	var failed bool
	for _, e := range a.Events() {
		if e.Kind == EventFailed {
			failed = true
		}
	}
	if !failed {
		t.Fatal("initiator did not observe policy failure")
	}
}

func TestWrongPuzzleSolutionRejected(t *testing.T) {
	w := newWire(t)
	a := newHost(t, idA, locA)
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	a.Connect(b.HIT(), locB, w.now)
	// Intercept: deliver I1, take R1, forge an I2 with a bogus solution.
	for _, op := range a.Outgoing() {
		b.OnPacket(op.Data, locA, w.now)
	}
	r1ops := b.Outgoing()
	if len(r1ops) != 1 {
		t.Fatal("no R1")
	}
	a.OnPacket(r1ops[0].Data, locB, w.now)
	i2ops := a.Outgoing()
	if len(i2ops) != 1 {
		t.Fatal("no I2")
	}
	pkt, err := hipwire.Parse(i2ops[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pkt.Params {
		if pkt.Params[i].Type == hipwire.ParamSolution {
			sol, _ := hipwire.ParseSolution(pkt.Params[i].Data)
			sol.J ^= 0xffff // break the solution
			pkt.Params[i].Data = sol.Marshal()
		}
	}
	b.OnPacket(pkt.Marshal(), locA, w.now)
	if len(b.Associations()) != 0 {
		t.Fatal("responder accepted bogus puzzle solution")
	}
}

func TestForgedHostIDRejected(t *testing.T) {
	// A mallory host C replays A's handshake role but with its own key
	// while claiming A's HIT: HIT(HI) check must reject.
	w := newWire(t)
	b := newHost(t, idB, locB)
	c := newHost(t, idC, locC)
	w.add(b, locB)
	w.add(c, locC)
	c.Connect(b.HIT(), locB, w.now)
	for _, op := range c.Outgoing() {
		// Rewrite I1 sender HIT to A's.
		pkt, _ := hipwire.Parse(op.Data)
		pkt.SenderHIT = idA.HIT()
		b.OnPacket(pkt.Marshal(), locC, w.now)
	}
	r1 := b.Outgoing()
	if len(r1) != 1 {
		t.Fatal("no R1 for forged I1")
	}
	// C can't usefully answer: its HOST_ID won't hash to A's HIT. Simulate
	// the best it can do: complete handshake honestly as C-but-claiming-A.
	// The R1 is addressed to A's HIT so C's state machine drops it, which
	// is itself the defense; verify no association appears on B.
	c.OnPacket(r1[0].Data, locB, w.now)
	w.pump()
	for _, assoc := range b.Associations() {
		if assoc.PeerHIT == idA.HIT() && assoc.State() == Established {
			t.Fatal("forged identity established")
		}
	}
}

func TestTamperedI2HMACRejected(t *testing.T) {
	w := newWire(t)
	a := newHost(t, idA, locA)
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	a.Connect(b.HIT(), locB, w.now)
	for _, op := range a.Outgoing() {
		b.OnPacket(op.Data, locA, w.now)
	}
	r1 := b.Outgoing()
	a.OnPacket(r1[0].Data, locB, w.now)
	i2 := a.Outgoing()
	pkt, _ := hipwire.Parse(i2[0].Data)
	// Tamper with the ESP_INFO (covered by HMAC) but keep everything else.
	for i := range pkt.Params {
		if pkt.Params[i].Type == hipwire.ParamESPInfo {
			ei, _ := hipwire.ParseESPInfo(pkt.Params[i].Data)
			ei.NewSPI ^= 1
			pkt.Params[i].Data = ei.Marshal()
		}
	}
	b.OnPacket(pkt.Marshal(), locA, w.now)
	if len(b.Associations()) != 0 {
		t.Fatal("tampered I2 accepted")
	}
}

func TestMobilityUpdate(t *testing.T) {
	w := newWire(t)
	a := newHost(t, idA, locA)
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB, locB2) // B reachable at both addresses
	establish(t, w, a, b)
	a.Events()
	b.Events()

	// B migrates to locB2 and announces.
	b.MoveTo(locB2, w.now)
	w.pump()

	// A must have verified the new address and switched.
	aa, _ := a.Association(b.HIT())
	if aa.PeerLocator != locB2 {
		t.Fatalf("peer locator = %v, want %v", aa.PeerLocator, locB2)
	}
	var moved bool
	for _, e := range a.Events() {
		if e.Kind == EventLocatorChanged && e.Locator == locB2 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("no locator-changed event")
	}
	// Data now flows to the new locator and still decrypts.
	pkt, dst, err := a.SealData(b.HIT(), []byte("after move"), false)
	if err != nil {
		t.Fatal(err)
	}
	if dst != locB2 {
		t.Fatalf("data dst = %v, want %v", dst, locB2)
	}
	got, _, err := b.OpenData(pkt, false)
	if err != nil || string(got) != "after move" {
		t.Fatalf("post-move data: %q %v", got, err)
	}
}

func TestUpdateFromUnknownPeerIgnored(t *testing.T) {
	w := newWire(t)
	b := newHost(t, idB, locB)
	w.add(b, locB)
	u := &hipwire.Packet{Type: hipwire.UPDATE, SenderHIT: idA.HIT(), ReceiverHIT: b.HIT()}
	u.Add(hipwire.ParamSeq, hipwire.MarshalSeq(1))
	b.OnPacket(u.Marshal(), locA, w.now)
	if len(b.Outgoing()) != 0 {
		t.Fatal("responded to UPDATE from unknown peer")
	}
}

func TestCloseHandshake(t *testing.T) {
	w := newWire(t)
	a := newHost(t, idA, locA)
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)
	a.Events()
	b.Events()

	if err := a.Close(b.HIT(), w.now); err != nil {
		t.Fatal(err)
	}
	w.pump()
	if _, ok := a.Association(b.HIT()); ok {
		t.Fatal("initiator association survives close")
	}
	if _, ok := b.Association(a.HIT()); ok {
		t.Fatal("responder association survives close")
	}
	for _, h := range []*Host{a, b} {
		var closed bool
		for _, e := range h.Events() {
			if e.Kind == EventClosed {
				closed = true
			}
		}
		if !closed {
			t.Fatal("missing closed event")
		}
	}
	// Data after close fails.
	if _, _, err := a.SealData(b.HIT(), []byte("x"), false); err != ErrNoAssociation {
		t.Fatalf("post-close seal err = %v", err)
	}
}

func TestCloseWithoutAssociation(t *testing.T) {
	a := newHost(t, idA, locA)
	if err := a.Close(idB.HIT(), 0); err != ErrNoAssociation {
		t.Fatalf("err = %v", err)
	}
}

func TestRSAIdentityInterop(t *testing.T) {
	w := newWire(t)
	a := newHost(t, idRSA, locA)
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)
}

func TestDuplicateI2GetsR2Again(t *testing.T) {
	w := newWire(t)
	a := newHost(t, idA, locA)
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	// Run handshake manually to capture the I2.
	a.Connect(b.HIT(), locB, w.now)
	for _, op := range a.Outgoing() {
		b.OnPacket(op.Data, locA, w.now)
	}
	r1 := b.Outgoing()
	a.OnPacket(r1[0].Data, locB, w.now)
	i2 := a.Outgoing()
	b.OnPacket(i2[0].Data, locA, w.now)
	r2first := b.Outgoing()
	if len(r2first) != 1 {
		t.Fatal("no R2")
	}
	// Replay the I2 (e.g. the R2 was lost and the initiator retransmitted).
	b.OnPacket(i2[0].Data, locA, w.now)
	r2again := b.Outgoing()
	if len(r2again) != 1 {
		t.Fatal("duplicate I2 not answered")
	}
	if !bytes.Equal(r2first[0].Data, r2again[0].Data) {
		t.Fatal("R2 retransmission differs")
	}
	if len(b.Associations()) != 1 {
		t.Fatal("duplicate I2 created extra association")
	}
}

func TestCostAccountingNonzero(t *testing.T) {
	cm := CostModel{
		Sign: time.Millisecond, Verify: 500 * time.Microsecond,
		DHCompute: 2 * time.Millisecond, DHKeygen: time.Millisecond,
		HashOp: time.Microsecond, SymmetricNsPerByte: 10,
	}
	w := newWire(t)
	a, err := NewHost(Config{Identity: idA, Locator: locA, Costs: cm})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHost(Config{Identity: idB, Locator: locB, Costs: cm})
	if err != nil {
		t.Fatal(err)
	}
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)
	ca, cb := a.TakeCost(), b.TakeCost()
	// Initiator pays at least: verify R1 + puzzle + keygen + dh + sign I2.
	minInit := cm.Verify + cm.DHKeygen + cm.DHCompute + cm.Sign
	if ca < minInit {
		t.Fatalf("initiator cost %v < %v", ca, minInit)
	}
	// Responder pays at least: dh + verify I2 + sign R2 (+ template sign).
	if cb < cm.DHCompute+cm.Verify+cm.Sign {
		t.Fatalf("responder cost %v too low", cb)
	}
	// Draining resets.
	if a.TakeCost() != 0 {
		t.Fatal("TakeCost did not drain")
	}
	// Data-plane cost scales with bytes.
	a.SealData(b.HIT(), make([]byte, 10000), false)
	c1 := a.TakeCost()
	a.SealData(b.HIT(), make([]byte, 20000), false)
	c2 := a.TakeCost()
	if c2 <= c1 {
		t.Fatalf("symmetric cost not byte-proportional: %v vs %v", c1, c2)
	}
	// LSI mode costs strictly more.
	a.SealData(b.HIT(), make([]byte, 10000), false)
	plain := a.TakeCost()
	cmLSI := cm
	cmLSI.LSITranslation = 50 * time.Microsecond
	a.cfg.Costs = cmLSI
	a.SealData(b.HIT(), make([]byte, 10000), true)
	lsi := a.TakeCost()
	if lsi <= plain {
		t.Fatalf("LSI cost %v not above HIT cost %v", lsi, plain)
	}
}

func TestPuzzleDifficultyRaisesUnderLoad(t *testing.T) {
	b := newHost(t, idB, locB)
	b.cfg.Puzzle = puzzle.Difficulty{BaseK: 1, MaxK: 12, LowWater: 2, HighWater: 50}
	getK := func(now time.Duration) uint8 {
		i1 := &hipwire.Packet{Type: hipwire.I1, SenderHIT: idA.HIT(), ReceiverHIT: b.HIT()}
		b.OnPacket(i1.Marshal(), locA, now)
		out := b.Outgoing()
		if len(out) != 1 {
			t.Fatal("no R1")
		}
		pkt, _ := hipwire.Parse(out[0].Data)
		pz, _ := pkt.Get(hipwire.ParamPuzzle)
		p, _ := hipwire.ParsePuzzle(pz.Data)
		return p.K
	}
	idleK := getK(0)
	// An I1 flood within one second drives the decayed load up...
	var loadedK uint8
	for i := 0; i < 100; i++ {
		loadedK = getK(time.Duration(i) * time.Millisecond)
	}
	if loadedK <= idleK {
		t.Fatalf("difficulty did not rise under flood: idle=%d loaded=%d", idleK, loadedK)
	}
	// ...and decays once the flood stops.
	cooledK := getK(30 * time.Second)
	if cooledK >= loadedK {
		t.Fatalf("difficulty did not decay: loaded=%d cooled=%d", loadedK, cooledK)
	}
}

func TestGarbageControlPacketsDropped(t *testing.T) {
	b := newHost(t, idB, locB)
	before := b.PacketsDropped
	b.OnPacket([]byte("not hip at all"), locA, 0)
	b.OnPacket(make([]byte, 40), locA, 0) // zeroed header, bad checksum
	if b.PacketsDropped != before+2 {
		t.Fatalf("dropped = %d, want %d", b.PacketsDropped, before+2)
	}
	if len(b.Outgoing()) != 0 {
		t.Fatal("responded to garbage")
	}
}

func TestEncryptedHostIDBEX(t *testing.T) {
	w := newWire(t)
	a, err := NewHost(Config{Identity: idA, Locator: locA, EncryptHostID: true})
	if err != nil {
		t.Fatal(err)
	}
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)

	// Intercept the I2 on the wire: it must carry no plaintext HOST_ID
	// (identity privacy) yet the handshake must still complete.
	var sawPlainHostID, sawEncrypted bool
	w.loss = func(from, to netip.Addr, data []byte) bool {
		if pkt, err := hipwire.Parse(data); err == nil && pkt.Type == hipwire.I2 {
			if _, ok := pkt.Get(hipwire.ParamHostID); ok {
				sawPlainHostID = true
			}
			if _, ok := pkt.Get(hipwire.ParamEncrypted); ok {
				sawEncrypted = true
			}
			// The initiator's DER-encoded public key must not appear
			// anywhere in the packet bytes.
			if bytes.Contains(data, idA.Public().DER) {
				sawPlainHostID = true
			}
		}
		return false
	}
	establish(t, w, a, b)
	if sawPlainHostID {
		t.Fatal("I2 leaked the initiator's host identity in the clear")
	}
	if !sawEncrypted {
		t.Fatal("I2 carried no ENCRYPTED parameter")
	}
	// The responder still learned and verified the identity.
	bb, _ := b.Association(a.HIT())
	if bb.peerID == nil || bb.peerID.HIT() != a.HIT() {
		t.Fatal("responder did not recover the encrypted identity")
	}
	// Data path unaffected.
	pkt, _, err := a.SealData(b.HIT(), []byte("private hello"), false)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := b.OpenData(pkt, false); err != nil || string(got) != "private hello" {
		t.Fatalf("data: %q %v", got, err)
	}
}

func TestEncryptedHostIDTamperRejected(t *testing.T) {
	w := newWire(t)
	a, _ := NewHost(Config{Identity: idA, Locator: locA, EncryptHostID: true})
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	// Flip a ciphertext byte in the ENCRYPTED parameter of the I2.
	w.loss = func(from, to netip.Addr, data []byte) bool {
		pkt, err := hipwire.Parse(data)
		if err != nil || pkt.Type != hipwire.I2 {
			return false
		}
		for i := range pkt.Params {
			if pkt.Params[i].Type == hipwire.ParamEncrypted {
				mut := append([]byte(nil), pkt.Params[i].Data...)
				mut[len(mut)-1] ^= 0x40
				pkt.Params[i].Data = mut
			}
		}
		b.OnPacket(pkt.Marshal(), locA, w.now)
		return true // swallow the original
	}
	a.Connect(b.HIT(), locB, w.now)
	w.pump()
	if _, ok := b.Association(a.HIT()); ok {
		t.Fatal("tampered encrypted identity accepted")
	}
}
