package hip

import "net/netip"

// Pending is one inbound control packet queued for processing.
type Pending struct {
	Data []byte
	Src  netip.Addr
}

// AdmissionQueue is the responder-side admission control for inbound HIP
// control traffic: a bounded FIFO of unprocessed BEX/UPDATE packets with
// deterministic drop-oldest shedding. Drivers (hipsim.Fabric, real-UDP
// daemons) enqueue every arriving control packet here and drain it from
// their service loop; when a re-contact herd outruns the host's CPU the
// queue sheds the *oldest* packets — the ones most likely to have been
// retransmitted already — so the responder degrades to bounded latency
// on fresh work instead of collapsing under an ever-growing backlog.
//
// The queue's depth doubles as the load signal for the adaptive puzzle
// difficulty controller (Host.SetBacklog): shedding and harder puzzles
// engage together, exactly the DoS-path degradation the paper describes.
type AdmissionQueue struct {
	max  int
	q    []Pending // ring buffer: [head, head+n)
	head int
	n    int

	// Shed counts packets dropped by admission control (drop-oldest).
	Shed uint64
}

// NewAdmissionQueue creates a queue bounded at max pending packets
// (max <= 0 means unbounded).
func NewAdmissionQueue(max int) *AdmissionQueue {
	return &AdmissionQueue{max: max}
}

// Len reports the number of queued packets.
func (a *AdmissionQueue) Len() int { return a.n }

// Max reports the configured bound (0 = unbounded).
func (a *AdmissionQueue) Max() int { return a.max }

// Push enqueues p, shedding the oldest queued packet first when the
// queue is at its bound. It reports whether a packet was shed.
func (a *AdmissionQueue) Push(p Pending) (shed bool) {
	if a.max > 0 && a.n >= a.max {
		// Drop-oldest: the head of the queue has waited longest and is
		// the most likely to be a stale retransmit; the fresh packet
		// carries the newest view of the peer's state.
		a.head = (a.head + 1) % len(a.q)
		a.n--
		a.Shed++
		shed = true
	}
	if a.n == len(a.q) {
		grown := make([]Pending, a.growTo())
		for i := 0; i < a.n; i++ {
			grown[i] = a.q[(a.head+i)%len(a.q)]
		}
		a.q = grown
		a.head = 0
	}
	a.q[(a.head+a.n)%len(a.q)] = p
	a.n++
	return shed
}

// growTo sizes the ring when it fills: doubling, clamped to the bound.
func (a *AdmissionQueue) growTo() int {
	want := 2 * len(a.q)
	if want < 8 {
		want = 8
	}
	if a.max > 0 && want > a.max {
		want = a.max
	}
	return want
}

// Pop dequeues the oldest packet.
func (a *AdmissionQueue) Pop() (Pending, bool) {
	if a.n == 0 {
		return Pending{}, false
	}
	p := a.q[a.head]
	a.q[a.head] = Pending{} // drop the reference for GC
	a.head = (a.head + 1) % len(a.q)
	a.n--
	return p, true
}
