package hip

import (
	"net/netip"
	"time"

	"hipcloud/internal/esp"
	"hipcloud/internal/identity"
	"hipcloud/internal/keymat"
)

// Association is the per-peer HIP security association.
type Association struct {
	PeerHIT     netip.Addr
	PeerLocator netip.Addr
	state       State
	initiator   bool

	localSPI, remoteSPI uint32
	suite               keymat.Suite
	keys                keymat.AssociationKeys
	espPair             *esp.Pair
	peerID              *identity.PublicID
	// km is the association's KEYMAT stream; rekeys draw fresh ESP keys
	// from it at an agreed index (RFC 5202 §3.3.2).
	km *keymat.Keymat
	// rekeying guards against concurrent rekey attempts; pendingRekey
	// holds the proposed new inbound SPI until the peer confirms.
	rekeying     bool
	pendingRekey uint32
	Rekeys       uint64

	// Handshake scratch (initiator side).
	puzzleI, puzzleJ uint64
	dhPrivBytes      []byte // initiator ephemeral DH private key
	establishedAt    time.Duration

	// UPDATE machinery.
	updateSeq     uint32 // our last sent update id
	peerUpdateSeq uint32 // last peer update id we acked
	pendingEcho   []byte // echo nonce we are waiting to have returned
	pendingAddr   netip.Addr
	// candidateAddr is a peer locator pending return-routability proof.
	candidateAddr netip.Addr
	echoSent      []byte // nonce we challenged the peer's new address with

	// Retransmission state (one outstanding control packet per assoc).
	retransPkt   []byte
	retransDst   netip.Addr
	retransAt    time.Duration
	retransTries int
	// retransDeadline is the absolute give-up time (16×RetransmitBase
	// past arming): jitter may stretch individual intervals but never the
	// total, keeping failure strictly inside the drivers' dial timeout.
	retransDeadline time.Duration

	// Stats.
	DataSent, DataRcvd uint64
}

// retire wipes the association's key material — the ESP SAs, the full
// key set, the KEYMAT stream, and the initiator's ephemeral DH private
// key — before the association is dropped or replaced. Without the wipe
// the retired keys linger on the heap for as long as the allocator
// pleases; any path that removes an Association from the host's maps
// must call retire first.
func (a *Association) retire() {
	a.espPair.Zeroize()
	a.keys.Zeroize()
	if a.km != nil {
		a.km.Zeroize()
	}
	keymat.Zeroize(a.dhPrivBytes)
}

// State returns the association state.
func (a *Association) State() State { return a.state }

// Initiator reports which side of the BEX this host was.
func (a *Association) Initiator() bool { return a.initiator }

// Suite returns the negotiated ESP transform.
func (a *Association) Suite() keymat.Suite { return a.suite }

// SPIs returns (local inbound, remote inbound) SPIs.
func (a *Association) SPIs() (local, remote uint32) { return a.localSPI, a.remoteSPI }

func (a *Association) setState(h *Host, s State) {
	a.state = s
}

// armRetrans stores pkt for retransmission until cancelRetrans.
func (a *Association) armRetrans(h *Host, dst netip.Addr, pkt []byte, now time.Duration) {
	a.retransPkt = pkt
	a.retransDst = dst
	a.retransTries = 0
	// Jitter the very first retry too: in a synchronized herd it is the
	// largest collision of all (every peer armed in the same instant).
	first := h.cfg.RetransmitBase
	if h.jitter != nil {
		first = first/2 + time.Duration(float64(first)*h.jitter())
	}
	a.retransAt = now + first
	a.retransDeadline = now + 16*h.cfg.RetransmitBase
}

func (a *Association) cancelRetrans() {
	a.retransPkt = nil
	a.retransAt = 0
	a.retransTries = 0
	a.retransDeadline = 0
}

// SealData encrypts an application payload for the peer, returning the ESP
// packet and the locator to send it to. The caller picks the transport.
// byLSI notes that the application addressed the peer via an LSI, charging
// the extra translation cost the paper measures.
func (h *Host) SealData(peerHIT netip.Addr, payload []byte, byLSI bool) (pkt []byte, dst netip.Addr, err error) {
	return h.SealDataAppend(nil, peerHIT, payload, byLSI)
}

// SealDataAppend is SealData writing the ESP packet into dst's spare
// capacity (esp.SealAppend semantics): with a caller-recycled dst it
// performs no allocation on the data path.
func (h *Host) SealDataAppend(dst []byte, peerHIT netip.Addr, payload []byte, byLSI bool) (pkt []byte, dstLoc netip.Addr, err error) {
	a, ok := h.assocs[peerHIT]
	if !ok {
		return nil, netip.Addr{}, ErrNoAssociation
	}
	if a.state != Established && a.state != Closing {
		return nil, netip.Addr{}, ErrNotEstablished
	}
	pkt, err = a.espPair.Out.SealAppend(dst, payload)
	if err != nil {
		return nil, netip.Addr{}, err
	}
	h.cost += h.cfg.Costs.Symmetric(len(payload)) + h.cfg.Costs.ShimPerPacket
	if byLSI {
		h.cost += h.cfg.Costs.LSITranslation
	}
	a.DataSent += uint64(len(payload))
	return pkt, a.PeerLocator, nil
}

// OpenData authenticates and decrypts an inbound ESP packet, demuxing by
// SPI. It returns the payload and the peer HIT it arrived from.
func (h *Host) OpenData(pkt []byte, byLSI bool) (payload []byte, peerHIT netip.Addr, err error) {
	return h.OpenDataAppend(nil, pkt, byLSI)
}

// OpenDataAppend is OpenData appending the decrypted payload to dst
// (esp.OpenAppend semantics); it returns dst with the payload appended.
func (h *Host) OpenDataAppend(dst, pkt []byte, byLSI bool) (payload []byte, peerHIT netip.Addr, err error) {
	if len(pkt) < esp.HeaderLen {
		return nil, netip.Addr{}, esp.ErrShort
	}
	spi := uint32(pkt[0])<<24 | uint32(pkt[1])<<16 | uint32(pkt[2])<<8 | uint32(pkt[3])
	a, ok := h.bySPI[spi]
	if !ok {
		h.PacketsDropped++
		return nil, netip.Addr{}, esp.ErrUnknownSPI
	}
	payload, err = a.espPair.In.OpenAppend(dst, pkt)
	if err != nil {
		h.PacketsDropped++
		return nil, netip.Addr{}, err
	}
	n := len(payload) - len(dst)
	h.cost += h.cfg.Costs.Symmetric(n) + h.cfg.Costs.ShimPerPacket
	if byLSI {
		h.cost += h.cfg.Costs.LSITranslation
	}
	a.DataRcvd += uint64(n)
	return payload, a.PeerHIT, nil
}

// DataOverhead reports the ESP wire overhead for the association's suite.
func (a *Association) DataOverhead() int { return esp.Overhead(a.suite) }

// ESP exposes the association's current SA pair, for tests and drivers
// that inspect or fast-forward sequence state (e.g. the near-saturation
// rekey edge tests). Nil until the base exchange installs SAs.
func (a *Association) ESP() *esp.Pair { return a.espPair }
