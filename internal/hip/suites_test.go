package hip

import (
	"testing"

	"hipcloud/internal/keymat"
)

func TestBEXNegotiatesAEAD(t *testing.T) {
	for _, s := range []keymat.Suite{
		keymat.SuiteAESGCM128, keymat.SuiteAESGCM256, keymat.SuiteChaCha20Poly1305,
	} {
		t.Run(s.String(), func(t *testing.T) {
			w := newWire(t)
			a, err := NewHost(Config{Identity: idA, Locator: locA, Suites: []keymat.Suite{s}})
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewHost(Config{Identity: idB, Locator: locB, Suites: keymat.PreferredAEAD})
			if err != nil {
				t.Fatal(err)
			}
			w.add(a, locA)
			w.add(b, locB)
			establish(t, w, a, b)

			aa, _ := a.Association(b.HIT())
			bb, _ := b.Association(a.HIT())
			if aa.Suite() != s || bb.Suite() != s {
				t.Fatalf("negotiated %v / %v, want %v", aa.Suite(), bb.Suite(), s)
			}
			// Data plane both ways on the AEAD SA.
			pkt, _, err := a.SealData(b.HIT(), []byte("aead payload"), false)
			if err != nil {
				t.Fatal(err)
			}
			if got, _, err := b.OpenData(pkt, false); err != nil || string(got) != "aead payload" {
				t.Fatalf("data: %q %v", got, err)
			}
			pkt2, _, err := b.SealData(a.HIT(), []byte("reply"), false)
			if err != nil {
				t.Fatal(err)
			}
			if got, _, err := a.OpenData(pkt2, false); err != nil || string(got) != "reply" {
				t.Fatalf("reverse: %q %v", got, err)
			}
		})
	}
}

// Mutual AEAD support negotiates AEAD even though the responder's offer
// also lists every legacy suite — the downgrade matrix's end-to-end
// counterpart.
func TestBEXPrefersAEADOverLegacy(t *testing.T) {
	w := newWire(t)
	a, err := NewHost(Config{Identity: idA, Locator: locA, Suites: keymat.PreferredAEAD})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHost(Config{Identity: idB, Locator: locB, Suites: keymat.PreferredAEAD})
	if err != nil {
		t.Fatal(err)
	}
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)
	aa, _ := a.Association(b.HIT())
	if aa.Suite() != keymat.SuiteAESGCM128 {
		t.Fatalf("negotiated %v, want the AEAD head of the preference list", aa.Suite())
	}
}

// A 2012-era peer (nil Suites = legacy default) still interops with a
// modern host in both roles; the association falls back to a legacy
// suite instead of failing.
func TestBEXMixedEraInterop(t *testing.T) {
	// Modern initiator, legacy responder.
	w := newWire(t)
	a, err := NewHost(Config{Identity: idA, Locator: locA, Suites: keymat.PreferredAEAD})
	if err != nil {
		t.Fatal(err)
	}
	b := newHost(t, idB, locB) // nil Suites: offers keymat.Preferred
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)
	aa, _ := a.Association(b.HIT())
	if aa.Suite() != keymat.SuiteAESCTRSHA256 {
		t.Fatalf("modern->legacy negotiated %v, want AES-CTR fallback", aa.Suite())
	}

	// Legacy initiator, modern responder (the responder offers AEAD
	// first but the initiator only accepts what it knows).
	w2 := newWire(t)
	c := newHost(t, idA, locA)
	d, err := NewHost(Config{Identity: idB, Locator: locB, Suites: keymat.PreferredAEAD})
	if err != nil {
		t.Fatal(err)
	}
	w2.add(c, locA)
	w2.add(d, locB)
	establish(t, w2, c, d)
	cc, _ := c.Association(d.HIT())
	if cc.Suite() != keymat.SuiteAESCTRSHA256 {
		t.Fatalf("legacy->modern negotiated %v, want AES-CTR fallback", cc.Suite())
	}
}

// An AEAD-only responder never silently downgrades: a legacy-only
// initiator finds no common suite and the association must fail to
// establish rather than land on a suite outside the responder's policy.
func TestBEXAEADOnlyPolicyRefusesLegacyPeer(t *testing.T) {
	w := newWire(t)
	a := newHost(t, idA, locA) // legacy-only initiator
	b, err := NewHost(Config{Identity: idB, Locator: locB,
		Suites: []keymat.Suite{keymat.SuiteAESGCM128, keymat.SuiteChaCha20Poly1305}})
	if err != nil {
		t.Fatal(err)
	}
	w.add(a, locA)
	w.add(b, locB)
	if err := a.Connect(b.HIT(), b.Locator(), w.now); err != nil {
		t.Fatal(err)
	}
	w.pump()
	if st := stateOf(a, b); st == Established {
		t.Fatal("legacy initiator established against AEAD-only responder")
	}
	if st := stateOf(b, a); st == Established {
		t.Fatal("AEAD-only responder established with legacy initiator")
	}
}

// NewHost validates the suite list up front.
func TestConfigSuitesValidated(t *testing.T) {
	_, err := NewHost(Config{Identity: idA, Locator: locA, Suites: []keymat.Suite{keymat.Suite(999)}})
	if err == nil {
		t.Fatal("unknown suite accepted in Config.Suites")
	}
}

// Rekey on an AEAD association: SPIs swap, the suite is retained, a
// fresh salt+key generation takes over, and data keeps flowing. This is
// the "rekey-safe" half of the suite plumbing.
func TestRekeyAEADSuite(t *testing.T) {
	for _, s := range []keymat.Suite{keymat.SuiteAESGCM128, keymat.SuiteChaCha20Poly1305} {
		t.Run(s.String(), func(t *testing.T) {
			w := newWire(t)
			a, err := NewHost(Config{Identity: idA, Locator: locA, Suites: []keymat.Suite{s}})
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewHost(Config{Identity: idB, Locator: locB, Suites: keymat.PreferredAEAD})
			if err != nil {
				t.Fatal(err)
			}
			w.add(a, locA)
			w.add(b, locB)
			establish(t, w, a, b)
			aa, _ := a.Association(b.HIT())
			oldLocal, oldRemote := aa.SPIs()

			stale, _, err := a.SealData(b.HIT(), []byte("pre-rekey"), false)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.ForceRekey(b.HIT(), w.now); err != nil {
				t.Fatal(err)
			}
			w.pump()
			if aa.Rekeys != 1 {
				t.Fatalf("rekeys = %d", aa.Rekeys)
			}
			newLocal, newRemote := aa.SPIs()
			if newLocal == oldLocal || newRemote == oldRemote {
				t.Fatal("rekey did not swap SPIs")
			}
			if aa.Suite() != s {
				t.Fatalf("suite changed across rekey: %v", aa.Suite())
			}
			// Old-generation traffic is dead, new generation flows.
			if _, _, err := b.OpenData(stale, false); err == nil {
				t.Fatal("pre-rekey packet accepted after rekey")
			}
			pkt, _, err := a.SealData(b.HIT(), []byte("post-rekey"), false)
			if err != nil {
				t.Fatal(err)
			}
			if got, _, err := b.OpenData(pkt, false); err != nil || string(got) != "post-rekey" {
				t.Fatalf("post-rekey data: %q %v", got, err)
			}
		})
	}
}

// The clamp audit for AEAD (ISSUE 10 satellite): with an absurd
// configured threshold, Maintain still rekeys an AEAD association
// rekeyHeadroom packets before the counter — and therefore the nonce —
// could saturate.
func TestRekeyThresholdClampAEAD(t *testing.T) {
	w := newWire(t)
	a, err := NewHost(Config{Identity: idA, Locator: locA,
		RekeyThreshold: ^uint32(0), Suites: []keymat.Suite{keymat.SuiteAESGCM128}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHost(Config{Identity: idB, Locator: locB, Suites: keymat.PreferredAEAD})
	if err != nil {
		t.Fatal(err)
	}
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)
	aa, _ := a.Association(b.HIT())

	if got, want := a.rekeyThreshold(), ^uint32(0)-rekeyHeadroom; got != want {
		t.Fatalf("clamped threshold = %d, want %d", got, want)
	}
	aa.ESP().Out.SetSeq(a.rekeyThreshold())
	a.Maintain(w.now)
	w.pump()
	if aa.Rekeys != 1 {
		t.Fatalf("rekeys = %d, want 1 (fired before nonce saturation)", aa.Rekeys)
	}
	// The new generation seals from sequence 1 under a fresh key+salt.
	pkt, _, err := a.SealData(b.HIT(), []byte("fresh nonce stream"), false)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := b.OpenData(pkt, false); err != nil || string(got) != "fresh nonce stream" {
		t.Fatalf("post-clamp-rekey data: %q %v", got, err)
	}
}
