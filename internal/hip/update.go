package hip

import (
	"crypto/hmac"
	"net/netip"
	"time"

	"hipcloud/internal/hipwire"
)

// MoveTo rehomes the host to a new locator (VM migration / mobility) and
// notifies every established peer with a HIP UPDATE carrying a LOCATOR
// parameter. Peers verify the new address with an echo challenge before
// redirecting data to it (RFC 5206 return-routability).
func (h *Host) MoveTo(newLocator netip.Addr, now time.Duration) {
	h.locator = newLocator
	for _, a := range h.sortedAssocs() {
		if a.state != Established {
			continue
		}
		a.updateSeq++
		u := &hipwire.Packet{Type: hipwire.UPDATE, SenderHIT: h.HIT(), ReceiverHIT: a.PeerHIT}
		u.Add(hipwire.ParamLocator, hipwire.MarshalLocators([]hipwire.Locator{
			{Preferred: true, Lifetime: 120, Addr: newLocator},
		}))
		u.Add(hipwire.ParamSeq, hipwire.MarshalSeq(a.updateSeq))
		h.finishPacket(u, a.keys.HIPMacOut)
		out := u.Marshal()
		h.emit(a.PeerLocator, out)
		a.armRetrans(h, a.PeerLocator, out, now)
	}
}

func (h *Host) handleUpdate(pkt *hipwire.Packet, src netip.Addr, now time.Duration) {
	a, ok := h.assocs[pkt.SenderHIT]
	if !ok || (a.state != Established && a.state != Closing) {
		return
	}
	if !verifyPacketHMAC(pkt, a.keys.HIPMacIn) {
		return
	}
	h.cost += h.cfg.Costs.Verify
	if err := verifyPacketSig(pkt, a.peerID); err != nil {
		return
	}

	// Rekey exchanges carry ESP_INFO and are handled separately.
	if h.handleRekeyConfirm(a, pkt, src, now) {
		return
	}
	if h.handleRekeyRequest(a, pkt, src, now) {
		return
	}

	seqP, hasSeq := pkt.Get(hipwire.ParamSeq)
	ackP, hasAck := pkt.Get(hipwire.ParamAck)
	echoReqP, hasEchoReq := pkt.Get(hipwire.ParamEchoRequestSigned)
	echoRespP, hasEchoResp := pkt.Get(hipwire.ParamEchoResponseSigned)
	locP, hasLoc := pkt.Get(hipwire.ParamLocator)

	// A bare ACK closes an exchange (e.g. the tail of a rekey): cancel
	// the matching retransmission.
	if hasAck && !hasSeq && !hasEchoReq && !hasEchoResp && !hasLoc {
		if acks, err := hipwire.ParseAck(ackP.Data); err == nil {
			for _, id := range acks {
				if id == a.updateSeq {
					a.cancelRetrans()
				}
			}
		}
		return
	}

	// Case 1: peer announces a new locator (SEQ + LOCATOR, no ACK):
	// challenge the claimed address with an echo nonce.
	if hasSeq && hasLoc && !hasAck {
		peerSeq, err := hipwire.ParseSeq(seqP.Data)
		if err != nil {
			return
		}
		locs, err := hipwire.ParseLocators(locP.Data)
		if err != nil || len(locs) == 0 {
			return
		}
		newAddr := locs[0].Addr
		for _, l := range locs {
			if l.Preferred {
				newAddr = l.Addr
			}
		}
		a.peerUpdateSeq = peerSeq
		a.candidateAddr = newAddr
		nonce := make([]byte, 16)
		h.rng.Read(nonce)
		a.echoSent = nonce
		a.updateSeq++
		u := &hipwire.Packet{Type: hipwire.UPDATE, SenderHIT: h.HIT(), ReceiverHIT: a.PeerHIT}
		u.Add(hipwire.ParamSeq, hipwire.MarshalSeq(a.updateSeq))
		u.Add(hipwire.ParamAck, hipwire.MarshalAck([]uint32{peerSeq}))
		u.Add(hipwire.ParamEchoRequestSigned, nonce)
		h.finishPacket(u, a.keys.HIPMacOut)
		out := u.Marshal()
		// Challenge goes to the *claimed* new address: reaching the peer
		// there proves return routability.
		h.emit(newAddr, out)
		a.armRetrans(h, newAddr, out, now)
		return
	}

	// Case 2: our announcement was acked and we are challenged: echo the
	// nonce back from the new address.
	if hasAck && hasEchoReq {
		acks, err := hipwire.ParseAck(ackP.Data)
		if err != nil {
			return
		}
		for _, id := range acks {
			if id == a.updateSeq {
				a.cancelRetrans()
			}
		}
		var peerSeq uint32
		if hasSeq {
			peerSeq, _ = hipwire.ParseSeq(seqP.Data)
		}
		u := &hipwire.Packet{Type: hipwire.UPDATE, SenderHIT: h.HIT(), ReceiverHIT: a.PeerHIT}
		if peerSeq != 0 {
			u.Add(hipwire.ParamAck, hipwire.MarshalAck([]uint32{peerSeq}))
		}
		u.Add(hipwire.ParamEchoResponseSigned, echoReqP.Data)
		h.finishPacket(u, a.keys.HIPMacOut)
		h.emit(src, u.Marshal())
		return
	}

	// Case 3: echo response: the peer's new address is verified.
	if hasEchoResp {
		if hasAck {
			acks, err := hipwire.ParseAck(ackP.Data)
			if err != nil {
				return
			}
			for _, id := range acks {
				if id == a.updateSeq {
					a.cancelRetrans()
				}
			}
		}
		// hmac.Equal, not bytes.Equal: the echo response is peer-supplied,
		// and a variable-time compare would let an off-path attacker grind
		// the nonce one byte per probe and hijack the locator update.
		if a.echoSent != nil && hmac.Equal(echoRespP.Data, a.echoSent) && a.candidateAddr.IsValid() {
			a.PeerLocator = a.candidateAddr
			a.echoSent = nil
			a.candidateAddr = netip.Addr{}
			h.event(EventLocatorChanged, a.PeerHIT, a.PeerLocator)
		}
		return
	}
}

// Close starts an orderly association teardown.
func (h *Host) Close(peerHIT netip.Addr, now time.Duration) error {
	a, ok := h.assocs[peerHIT]
	if !ok {
		return ErrNoAssociation
	}
	if a.state != Established {
		return ErrNotEstablished
	}
	a.state = Closing
	c := &hipwire.Packet{Type: hipwire.CLOSE, SenderHIT: h.HIT(), ReceiverHIT: peerHIT}
	nonce := make([]byte, 16)
	h.rng.Read(nonce)
	c.Add(hipwire.ParamEchoRequestSigned, nonce)
	h.finishPacket(c, a.keys.HIPMacOut)
	out := c.Marshal()
	h.emit(a.PeerLocator, out)
	a.armRetrans(h, a.PeerLocator, out, now)
	return nil
}

func (h *Host) handleClose(pkt *hipwire.Packet, src netip.Addr, now time.Duration) {
	a, ok := h.assocs[pkt.SenderHIT]
	if !ok {
		return
	}
	if !verifyPacketHMAC(pkt, a.keys.HIPMacIn) {
		return
	}
	h.cost += h.cfg.Costs.Verify
	if err := verifyPacketSig(pkt, a.peerID); err != nil {
		return
	}
	ack := &hipwire.Packet{Type: hipwire.CLOSEACK, SenderHIT: h.HIT(), ReceiverHIT: a.PeerHIT}
	if echo, ok := pkt.Get(hipwire.ParamEchoRequestSigned); ok {
		ack.Add(hipwire.ParamEchoResponseSigned, echo.Data)
	}
	h.finishPacket(ack, a.keys.HIPMacOut)
	h.emit(src, ack.Marshal())
	h.teardown(a)
}

func (h *Host) handleCloseAck(pkt *hipwire.Packet, src netip.Addr, now time.Duration) {
	a, ok := h.assocs[pkt.SenderHIT]
	if !ok || a.state != Closing {
		return
	}
	if !verifyPacketHMAC(pkt, a.keys.HIPMacIn) {
		return
	}
	h.cost += h.cfg.Costs.Verify
	if err := verifyPacketSig(pkt, a.peerID); err != nil {
		return
	}
	a.cancelRetrans()
	h.teardown(a)
}

func (h *Host) teardown(a *Association) {
	a.state = Closed
	a.retire()
	h.delAssoc(a.PeerHIT)
	if a.localSPI != 0 {
		delete(h.bySPI, a.localSPI)
	}
	h.event(EventClosed, a.PeerHIT, a.PeerLocator)
}
