package hip

import (
	"crypto/aes"
	"crypto/cipher"

	"hipcloud/internal/hipwire"
)

// The ENCRYPTED parameter (RFC 5201 §5.2.17) hides the initiator's
// HOST_ID inside the I2, an identity-privacy option: a passive observer
// of the handshake then learns only the initiator's HIT, not its public
// key. Enabled with Config.EncryptHostID.

// sealEncryptedParam encrypts an inner parameter body (here: the HOST_ID)
// with AES-128-CBC under the HIP encryption key. The IV is derived from
// the host RNG.
func (h *Host) sealEncryptedParam(key []byte, innerType uint16, inner []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	iv := make([]byte, aes.BlockSize)
	h.rng.Read(iv)
	// Plaintext: inner parameter type(2) + len(2) + body, zero padded.
	pt := make([]byte, 4+len(inner))
	pt[0], pt[1] = byte(innerType>>8), byte(innerType)
	pt[2], pt[3] = byte(len(inner)>>8), byte(len(inner))
	copy(pt[4:], inner)
	if pad := aes.BlockSize - len(pt)%aes.BlockSize; pad != aes.BlockSize {
		pt = append(pt, make([]byte, pad)...)
	}
	ct := make([]byte, len(pt))
	cipher.NewCBCEncrypter(block, iv).CryptBlocks(ct, pt)
	h.cost += h.cfg.Costs.Symmetric(len(pt))
	return hipwire.Encrypted{IV: iv, Ciphertext: ct}.Marshal(), nil
}

// openEncryptedParam reverses sealEncryptedParam, returning the inner
// parameter type and body.
func (h *Host) openEncryptedParam(key, body []byte) (innerType uint16, inner []byte, err error) {
	enc, err := hipwire.ParseEncrypted(body)
	if err != nil {
		return 0, nil, err
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return 0, nil, err
	}
	if len(enc.IV) != aes.BlockSize || len(enc.Ciphertext) == 0 || len(enc.Ciphertext)%aes.BlockSize != 0 {
		return 0, nil, hipwire.ErrEncrypted
	}
	pt := make([]byte, len(enc.Ciphertext))
	cipher.NewCBCDecrypter(block, enc.IV).CryptBlocks(pt, enc.Ciphertext)
	h.cost += h.cfg.Costs.Symmetric(len(pt))
	if len(pt) < 4 {
		return 0, nil, hipwire.ErrEncrypted
	}
	innerType = uint16(pt[0])<<8 | uint16(pt[1])
	n := int(pt[2])<<8 | int(pt[3])
	if 4+n > len(pt) {
		return 0, nil, hipwire.ErrEncrypted
	}
	return innerType, pt[4 : 4+n], nil
}
