package hip

import (
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/sha256"
	"net/netip"
	"time"

	"hipcloud/internal/esp"
	"hipcloud/internal/hipwire"
	"hipcloud/internal/identity"
	"hipcloud/internal/keymat"
	"hipcloud/internal/puzzle"
)

// Connect starts a base exchange toward peerHIT at the given locator.
// It is a no-op if an association already exists and is making progress.
func (h *Host) Connect(peerHIT, peerLocator netip.Addr, now time.Duration) error {
	if a, ok := h.assocs[peerHIT]; ok {
		switch a.state {
		case Established, I1Sent, I2Sent:
			return nil
		}
		a.retire()
		h.delAssoc(peerHIT)
		if a.localSPI != 0 {
			delete(h.bySPI, a.localSPI)
		}
	}
	a := &Association{
		PeerHIT:     peerHIT,
		PeerLocator: peerLocator,
		state:       I1Sent,
		initiator:   true,
	}
	h.addAssoc(a)
	h.BEXInitiated++
	i1 := &hipwire.Packet{Type: hipwire.I1, SenderHIT: h.HIT(), ReceiverHIT: peerHIT}
	pkt := i1.Marshal()
	h.emit(peerLocator, pkt)
	a.armRetrans(h, peerLocator, pkt, now)
	return nil
}

// ConnectVia starts a base exchange through a rendezvous server: the I1 is
// sent to the RVS address, which relays it to the peer's current locator.
func (h *Host) ConnectVia(peerHIT, rvsAddr netip.Addr, now time.Duration) error {
	return h.Connect(peerHIT, rvsAddr, now)
}

// OnPacket processes one inbound HIP control packet.
func (h *Host) OnPacket(data []byte, src netip.Addr, now time.Duration) {
	pkt, err := hipwire.Parse(data)
	if err != nil {
		h.PacketsDropped++
		return
	}
	// All control packets except I1 must be addressed to our HIT.
	if pkt.Type != hipwire.I1 && pkt.ReceiverHIT != h.HIT() {
		h.PacketsDropped++
		return
	}
	switch pkt.Type {
	case hipwire.I1:
		h.handleI1(pkt, src, now)
	case hipwire.R1:
		h.handleR1(pkt, src, now)
	case hipwire.I2:
		h.handleI2(pkt, src, now)
	case hipwire.R2:
		h.handleR2(pkt, src, now)
	case hipwire.UPDATE:
		h.handleUpdate(pkt, src, now)
	case hipwire.CLOSE:
		h.handleClose(pkt, src, now)
	case hipwire.CLOSEACK:
		h.handleCloseAck(pkt, src, now)
	case hipwire.NOTIFY:
		// Informational; surface BLOCKED_BY_POLICY as a failure.
		if p, ok := pkt.Get(hipwire.ParamNotification); ok {
			if n, err := hipwire.ParseNotification(p.Data); err == nil && n.Type == hipwire.NotifyBlockedByPolicy {
				if a, ok := h.assocs[pkt.SenderHIT]; ok && a.state != Established {
					a.cancelRetrans()
					a.retire()
					h.delAssoc(pkt.SenderHIT)
					h.event(EventFailed, pkt.SenderHIT, src)
				}
			}
		}
	default:
		h.PacketsDropped++
	}
}

// --- Responder side ---

// r1TemplateFor builds (or reuses) the pre-signed R1 for difficulty k.
func (h *Host) r1TemplateFor(k uint8) *r1Template {
	if t, ok := h.r1Tmpl[k]; ok {
		return t
	}
	pz := hipwire.Puzzle{K: k, Lifetime: 37} // I, Opaque zero in template
	shell := &packetShell{params: []shellParam{
		{hipwire.ParamPuzzle, pz.Marshal()},
		{hipwire.ParamDiffieHellman, hipwire.DiffieHellman{
			Group:  hipwire.DHGroupP256,
			Public: h.dhPriv.PublicKey().Bytes(),
		}.Marshal()},
		{hipwire.ParamHIPCipher, suitesToWire(h.suites).Marshal()},
		{hipwire.ParamHostID, hipwire.HostID{
			Algorithm: uint16(h.id.Algorithm()),
			HI:        h.id.Public().DER,
			DI:        h.domainID,
		}.Marshal()},
	}}
	// Sign the template with receiver HIT, puzzle I and opaque zeroed.
	sigInput := r1SigInput(h.HIT(), shell)
	sig, err := h.id.Sign(sigInput)
	if err != nil {
		panic("hip: signing R1 template: " + err.Error())
	}
	h.cost += h.cfg.Costs.Sign
	t := &r1Template{packet: shell, sig: sig}
	h.r1Tmpl[k] = t
	return t
}

// r1SigInput builds the RFC 5201 §5.3.2 signature input: the R1 with the
// initiator (receiver) HIT zeroed and puzzle I/opaque zeroed.
func r1SigInput(senderHIT netip.Addr, shell *packetShell) []byte {
	p := &hipwire.Packet{
		Type:        hipwire.R1,
		SenderHIT:   senderHIT,
		ReceiverHIT: netip.IPv6Unspecified(),
	}
	for _, sp := range shell.params {
		data := sp.data
		if sp.typ == hipwire.ParamPuzzle {
			pz, _ := hipwire.ParsePuzzle(sp.data)
			pz.I, pz.Opaque = 0, 0
			data = pz.Marshal()
		}
		p.Add(sp.typ, data)
	}
	return p.MarshalForAuth(hipwire.ParamSignature2)
}

func (h *Host) handleI1(pkt *hipwire.Packet, src netip.Addr, now time.Duration) {
	// Opportunistic mode is not supported: the receiver HIT must be ours.
	if pkt.ReceiverHIT != h.HIT() {
		h.PacketsDropped++
		return
	}
	if h.cfg.Policy != nil && !h.cfg.Policy(pkt.SenderHIT) {
		h.notify(pkt.SenderHIT, src, hipwire.NotifyBlockedByPolicy)
		return
	}
	// Relayed I1 (via rendezvous): the true initiator address is in FROM.
	replyTo := src
	var viaRVS netip.Addr
	if from, ok := pkt.Get(hipwire.ParamFrom); ok {
		if addr, err := hipwire.ParseAddr(from.Data); err == nil {
			replyTo = addr
			viaRVS = src
		}
	}
	h.BEXResponded++
	// Load for the difficulty controller is arrival rate plus the
	// driver-reported admission backlog: a service loop that has fallen
	// behind hardens puzzles even between arrival bursts.
	k := h.cfg.Puzzle.K(h.noteI1(now) + h.backlog)
	tmpl := h.r1TemplateFor(k)
	r1 := &hipwire.Packet{
		Type:        hipwire.R1,
		SenderHIT:   h.HIT(),
		ReceiverHIT: pkt.SenderHIT,
	}
	i := h.statelessPuzzleI(pkt.SenderHIT, h.HIT())
	for _, sp := range tmpl.packet.params {
		data := sp.data
		if sp.typ == hipwire.ParamPuzzle {
			pz, _ := hipwire.ParsePuzzle(sp.data)
			pz.I = i
			data = pz.Marshal()
		}
		r1.Add(sp.typ, data)
	}
	if viaRVS.IsValid() {
		r1.Add(hipwire.ParamViaRVS, hipwire.MarshalAddr(viaRVS))
	}
	r1.Add(hipwire.ParamSignature2, hipwire.Signature{
		Algorithm: uint16(h.id.Algorithm()), Sig: tmpl.sig,
	}.Marshal())
	// Template reuse: only an HMAC-sized cost per R1, no signature.
	h.cost += h.cfg.Costs.HashOp
	h.emit(replyTo, r1.Marshal())
}

func (h *Host) handleI2(pkt *hipwire.Packet, src netip.Addr, now time.Duration) {
	solP, ok := pkt.Get(hipwire.ParamSolution)
	if !ok {
		h.PacketsDropped++
		return
	}
	sol, err := hipwire.ParseSolution(solP.Data)
	if err != nil {
		h.PacketsDropped++
		return
	}
	// Duplicate I2 for an established association — same puzzle solution
	// we already accepted — means our R2 was lost: resend it. A fresh
	// solution from a HIT we believe established is NOT a duplicate: the
	// peer lost its state (crash, silent close on a dead path) and is
	// re-contacting. Falling through lets the new exchange replace the
	// stale association once its solution and signature verify; answering
	// it with the old R2 would wedge that peer forever.
	if a, ok := h.assocs[pkt.SenderHIT]; ok && a.state == Established && !a.initiator {
		if sol.I == a.puzzleI && sol.J == a.puzzleJ {
			if a.retransPkt != nil {
				h.emit(src, a.retransPkt)
			}
			return
		}
	}
	// Stateless puzzle verification: recompute I, then check J.
	wantI := h.statelessPuzzleI(pkt.SenderHIT, h.HIT())
	h.cost += h.cfg.Costs.HashOp
	if sol.I != wantI || !puzzle.Verify(sol.I, sol.K, pkt.SenderHIT, h.HIT(), sol.J) {
		h.notify(pkt.SenderHIT, src, hipwire.NotifyInvalidPuzzleSol)
		return
	}
	dhP, ok := pkt.Get(hipwire.ParamDiffieHellman)
	if !ok {
		h.PacketsDropped++
		return
	}
	dh, err := hipwire.ParseDiffieHellman(dhP.Data)
	if err != nil || dh.Group != hipwire.DHGroupP256 {
		h.notify(pkt.SenderHIT, src, hipwire.NotifyNoDHProposalChosen)
		return
	}
	peerPub, err := ecdh.P256().NewPublicKey(dh.Public)
	if err != nil {
		h.PacketsDropped++
		return
	}
	secret, err := h.dhPriv.ECDH(peerPub)
	if err != nil {
		h.PacketsDropped++
		return
	}
	h.cost += h.cfg.Costs.DHCompute
	// Cipher: the initiator's choice must be one we offered.
	cipherP, ok := pkt.Get(hipwire.ParamHIPCipher)
	if !ok {
		h.PacketsDropped++
		return
	}
	chosenList, err := hipwire.ParseCipherList(cipherP.Data)
	if err != nil || len(chosenList) != 1 {
		h.PacketsDropped++
		return
	}
	// Validate the choice against this host's OWN offer (h.suites, the
	// list the R1 carried) — not the package-wide default. Checking a
	// global list instead would let an initiator steer a host configured
	// for a narrower (or AEAD-only) policy onto a suite it never
	// offered: a silent downgrade.
	suite := keymat.Suite(chosenList[0])
	if _, err := keymat.Negotiate([]keymat.Suite{suite}, h.suites); err != nil {
		h.notify(pkt.SenderHIT, src, hipwire.NotifyNoDHProposalChosen)
		return
	}
	km := keymat.New(secret, pkt.SenderHIT, h.HIT(), sol.I, sol.J)
	// The key stream holds its own copy of Kij; wipe ours now rather
	// than leaving the raw shared secret on the heap.
	keymat.Zeroize(secret)
	keys, err := keymat.DeriveAssociation(km, suite, false)
	if err != nil {
		h.PacketsDropped++
		return
	}
	// The initiator's HOST_ID arrives either in the clear or inside an
	// ENCRYPTED parameter (identity privacy, RFC 5201 §5.2.17).
	var hostIDBody []byte
	if hostIDP, ok := pkt.Get(hipwire.ParamHostID); ok {
		hostIDBody = hostIDP.Data
	} else if encP, ok := pkt.Get(hipwire.ParamEncrypted); ok {
		innerType, inner, err := h.openEncryptedParam(keys.HIPEncIn, encP.Data)
		if err != nil || innerType != hipwire.ParamHostID {
			h.notify(pkt.SenderHIT, src, hipwire.NotifyAuthenticationFailed)
			return
		}
		hostIDBody = inner
	} else {
		h.PacketsDropped++
		return
	}
	hid, err := hipwire.ParseHostID(hostIDBody)
	if err != nil {
		h.PacketsDropped++
		return
	}
	peerID, err := identity.ParsePublicID(identity.Algorithm(hid.Algorithm), hid.HI)
	if err != nil || peerID.HIT() != pkt.SenderHIT {
		h.notify(pkt.SenderHIT, src, hipwire.NotifyAuthenticationFailed)
		return
	}
	if h.cfg.Policy != nil && !h.cfg.Policy(pkt.SenderHIT) {
		h.notify(pkt.SenderHIT, src, hipwire.NotifyBlockedByPolicy)
		return
	}
	// Verify HMAC then signature (RFC order: cheap check first).
	if !verifyPacketHMAC(pkt, keys.HIPMacIn) {
		h.notify(pkt.SenderHIT, src, hipwire.NotifyAuthenticationFailed)
		return
	}
	if err := verifyPacketSig(pkt, peerID); err != nil {
		h.cost += h.cfg.Costs.Verify
		h.notify(pkt.SenderHIT, src, hipwire.NotifyAuthenticationFailed)
		return
	}
	h.cost += h.cfg.Costs.Verify
	espP, ok := pkt.Get(hipwire.ParamESPInfo)
	if !ok {
		h.PacketsDropped++
		return
	}
	ei, err := hipwire.ParseESPInfo(espP.Data)
	if err != nil || ei.NewSPI == 0 {
		h.PacketsDropped++
		return
	}
	// Association established on the responder side. puzzleI/J fingerprint
	// the accepted solution so a retransmitted I2 (R2 loss) is told apart
	// from a fresh exchange by a peer that lost its state.
	a := &Association{
		PeerHIT:       pkt.SenderHIT,
		PeerLocator:   src,
		state:         Established,
		initiator:     false,
		localSPI:      h.newSPI(),
		remoteSPI:     ei.NewSPI,
		suite:         suite,
		keys:          keys,
		peerID:        peerID,
		km:            km,
		puzzleI:       sol.I,
		puzzleJ:       sol.J,
		establishedAt: now,
	}
	pair, err := esp.NewPair(keys, a.localSPI, a.remoteSPI)
	if err != nil {
		h.PacketsDropped++
		return
	}
	a.espPair = pair
	if old, ok := h.assocs[a.PeerHIT]; ok {
		old.cancelRetrans()
		old.retire()
		if old.localSPI != 0 {
			delete(h.bySPI, old.localSPI)
		}
	}
	h.addAssoc(a)
	h.bySPI[a.localSPI] = a
	h.BEXCompleted++

	r2 := &hipwire.Packet{Type: hipwire.R2, SenderHIT: h.HIT(), ReceiverHIT: pkt.SenderHIT}
	r2.Add(hipwire.ParamESPInfo, hipwire.ESPInfo{NewSPI: a.localSPI}.Marshal())
	h.finishPacket(r2, keys.HIPMacOut)
	out := r2.Marshal()
	// Keep R2 for duplicate-I2 retransmission (no timer: initiator drives).
	a.retransPkt = out
	a.retransDst = src
	h.emit(src, out)
	h.event(EventEstablished, a.PeerHIT, src)
}

// --- Initiator side ---

func (h *Host) handleR1(pkt *hipwire.Packet, src netip.Addr, now time.Duration) {
	a, ok := h.assocs[pkt.SenderHIT]
	if !ok || a.state != I1Sent {
		return
	}
	hostIDP, ok := pkt.Get(hipwire.ParamHostID)
	if !ok {
		return
	}
	hid, err := hipwire.ParseHostID(hostIDP.Data)
	if err != nil {
		return
	}
	peerID, err := identity.ParsePublicID(identity.Algorithm(hid.Algorithm), hid.HI)
	if err != nil || peerID.HIT() != pkt.SenderHIT {
		return // HI does not hash to the claimed HIT: fake R1
	}
	// Verify the R1 signature (with receiver HIT and puzzle I/opaque
	// zeroed, matching the responder's precomputation).
	sigP, ok := pkt.Get(hipwire.ParamSignature2)
	if !ok {
		return
	}
	sig, err := hipwire.ParseSignature(sigP.Data)
	if err != nil {
		return
	}
	shell := &packetShell{}
	for _, pr := range pkt.Params {
		if pr.Type < hipwire.ParamSignature2 && pr.Type != hipwire.ParamViaRVS {
			shell.params = append(shell.params, shellParam{pr.Type, pr.Data})
		}
	}
	h.cost += h.cfg.Costs.Verify
	if err := peerID.Verify(r1SigInput(pkt.SenderHIT, shell), sig.Sig); err != nil {
		return
	}
	pzP, ok := pkt.Get(hipwire.ParamPuzzle)
	if !ok {
		return
	}
	pz, err := hipwire.ParsePuzzle(pzP.Data)
	if err != nil {
		return
	}
	// Solve the puzzle.
	j, attempts, err := puzzle.Solve(pz.I, pz.K, h.HIT(), pkt.SenderHIT, h.rng.Uint64())
	if err != nil {
		return
	}
	h.cost += time.Duration(attempts) * h.cfg.Costs.HashOp
	// Ephemeral DH.
	dhP, ok := pkt.Get(hipwire.ParamDiffieHellman)
	if !ok {
		return
	}
	dh, err := hipwire.ParseDiffieHellman(dhP.Data)
	if err != nil || dh.Group != hipwire.DHGroupP256 {
		return
	}
	peerPub, err := ecdh.P256().NewPublicKey(dh.Public)
	if err != nil {
		return
	}
	priv, err := detECDHKey(h.rng)
	if err != nil {
		return
	}
	h.cost += h.cfg.Costs.DHKeygen
	secret, err := priv.ECDH(peerPub)
	if err != nil {
		return
	}
	h.cost += h.cfg.Costs.DHCompute
	// Cipher negotiation: intersect the responder's R1 offer with this
	// host's own preference list (h.suites). Preference order on OUR
	// side decides among mutually supported suites, so a peer listing
	// legacy transforms first cannot win a downgrade when both sides
	// support AEAD.
	cipherP, ok := pkt.Get(hipwire.ParamHIPCipher)
	if !ok {
		return
	}
	offerWire, err := hipwire.ParseCipherList(cipherP.Data)
	if err != nil {
		return
	}
	suite, err := keymat.Negotiate(wireToSuites(offerWire), h.suites)
	if err != nil {
		return
	}
	km := keymat.New(secret, h.HIT(), pkt.SenderHIT, pz.I, j)
	// As on the responder side: the key stream copied Kij, so the raw
	// shared secret must not outlive this frame.
	keymat.Zeroize(secret)
	keys, err := keymat.DeriveAssociation(km, suite, true)
	if err != nil {
		return
	}
	a.puzzleI, a.puzzleJ = pz.I, j
	a.suite = suite
	a.keys = keys
	a.peerID = peerID
	a.km = km
	a.localSPI = h.newSPI()
	a.PeerLocator = src
	// If the R1 came via a rendezvous relay the peer told us so; data and
	// I2 go directly to the address the R1 arrived from.
	i2 := &hipwire.Packet{Type: hipwire.I2, SenderHIT: h.HIT(), ReceiverHIT: pkt.SenderHIT}
	i2.Add(hipwire.ParamESPInfo, hipwire.ESPInfo{NewSPI: a.localSPI}.Marshal())
	i2.Add(hipwire.ParamSolution, hipwire.Solution{
		K: pz.K, Lifetime: pz.Lifetime, Opaque: pz.Opaque, I: pz.I, J: j,
	}.Marshal())
	i2.Add(hipwire.ParamDiffieHellman, hipwire.DiffieHellman{
		Group: hipwire.DHGroupP256, Public: priv.PublicKey().Bytes(),
	}.Marshal())
	i2.Add(hipwire.ParamHIPCipher, hipwire.CipherList{uint16(suite)}.Marshal())
	hostIDBody := hipwire.HostID{
		Algorithm: uint16(h.id.Algorithm()),
		HI:        h.id.Public().DER,
		DI:        h.domainID,
	}.Marshal()
	if h.cfg.EncryptHostID {
		sealed, err := h.sealEncryptedParam(keys.HIPEncOut, hipwire.ParamHostID, hostIDBody)
		if err != nil {
			return
		}
		i2.Add(hipwire.ParamEncrypted, sealed)
	} else {
		i2.Add(hipwire.ParamHostID, hostIDBody)
	}
	h.finishPacket(i2, keys.HIPMacOut)
	out := i2.Marshal()
	a.state = I2Sent
	h.emit(src, out)
	a.armRetrans(h, src, out, now)
}

func (h *Host) handleR2(pkt *hipwire.Packet, src netip.Addr, now time.Duration) {
	a, ok := h.assocs[pkt.SenderHIT]
	if !ok || a.state != I2Sent {
		return
	}
	if !verifyPacketHMAC(pkt, a.keys.HIPMacIn) {
		return
	}
	h.cost += h.cfg.Costs.Verify
	if err := verifyPacketSig(pkt, a.peerID); err != nil {
		return
	}
	espP, ok := pkt.Get(hipwire.ParamESPInfo)
	if !ok {
		return
	}
	ei, err := hipwire.ParseESPInfo(espP.Data)
	if err != nil || ei.NewSPI == 0 {
		return
	}
	a.remoteSPI = ei.NewSPI
	pair, err := esp.NewPair(a.keys, a.localSPI, a.remoteSPI)
	if err != nil {
		return
	}
	a.espPair = pair
	a.state = Established
	a.establishedAt = now
	a.cancelRetrans()
	h.bySPI[a.localSPI] = a
	h.BEXCompleted++
	h.event(EventEstablished, a.PeerHIT, src)
}

// --- shared helpers ---

// finishPacket appends HMAC and SIGNATURE parameters (in that order) and
// charges the signing cost.
func (h *Host) finishPacket(pkt *hipwire.Packet, macKey []byte) {
	mac := hmac.New(sha256.New, macKey)
	mac.Write(pkt.MarshalForAuth(hipwire.ParamHMAC))
	pkt.Add(hipwire.ParamHMAC, mac.Sum(nil))
	sig, err := h.id.Sign(pkt.MarshalForAuth(hipwire.ParamSignature))
	if err != nil {
		panic("hip: signing control packet: " + err.Error())
	}
	h.cost += h.cfg.Costs.Sign
	pkt.Add(hipwire.ParamSignature, hipwire.Signature{
		Algorithm: uint16(h.id.Algorithm()), Sig: sig,
	}.Marshal())
}

func verifyPacketHMAC(pkt *hipwire.Packet, macKey []byte) bool {
	p, ok := pkt.Get(hipwire.ParamHMAC)
	if !ok {
		return false
	}
	mac := hmac.New(sha256.New, macKey)
	mac.Write(pkt.MarshalForAuth(hipwire.ParamHMAC))
	return hmac.Equal(p.Data, mac.Sum(nil))
}

func verifyPacketSig(pkt *hipwire.Packet, peer *identity.PublicID) error {
	p, ok := pkt.Get(hipwire.ParamSignature)
	if !ok {
		return ErrAuthFailed
	}
	sig, err := hipwire.ParseSignature(p.Data)
	if err != nil {
		return err
	}
	if err := peer.Verify(pkt.MarshalForAuth(hipwire.ParamSignature), sig.Sig); err != nil {
		return ErrAuthFailed
	}
	return nil
}

// notify sends a NOTIFY packet to the peer.
func (h *Host) notify(peerHIT, dst netip.Addr, code uint16) {
	n := &hipwire.Packet{Type: hipwire.NOTIFY, SenderHIT: h.HIT(), ReceiverHIT: peerHIT}
	n.Add(hipwire.ParamNotification, hipwire.Notification{Type: code}.Marshal())
	h.emit(dst, n.Marshal())
}

func suitesToWire(ss []keymat.Suite) hipwire.CipherList {
	out := make(hipwire.CipherList, len(ss))
	for i, s := range ss {
		out[i] = uint16(s)
	}
	return out
}

func wireToSuites(cl hipwire.CipherList) []keymat.Suite {
	out := make([]keymat.Suite, len(cl))
	for i, v := range cl {
		out[i] = keymat.Suite(v)
	}
	return out
}
