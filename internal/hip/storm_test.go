package hip

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"hipcloud/internal/identity"
)

// herd builds n hosts that all Connect to the same unreachable peer at
// t=0 (every I1 vanishes), then steps virtual time in fine increments
// recording the time of each host's retransmissions and its failure time.
func herd(t *testing.T, n int, jitter func() float64) (times [][]time.Duration, failAt []time.Duration) {
	t.Helper()
	hosts := make([]*Host, n)
	for i := range hosts {
		id := identity.MustGenerateDeterministic(identity.AlgECDSA, fmt.Sprintf("herd/%d", i))
		h, err := NewHost(Config{
			Identity: id,
			Locator:  netip.AddrFrom4([4]byte{10, 1, 0, byte(i + 1)}),
		})
		if err != nil {
			t.Fatal(err)
		}
		if jitter != nil {
			h.SetJitter(jitter)
		}
		if err := h.Connect(idB.HIT(), locB, 0); err != nil {
			t.Fatal(err)
		}
		h.Outgoing() // discard the initial I1
		hosts[i] = h
	}
	times = make([][]time.Duration, n)
	failAt = make([]time.Duration, n)
	const step = 10 * time.Millisecond
	for now := step; now <= 20*time.Second; now += step {
		done := true
		for i, h := range hosts {
			if failAt[i] != 0 {
				continue
			}
			done = false
			before := h.Retransmits
			h.OnTimer(now)
			h.Outgoing()
			if h.Retransmits > before {
				times[i] = append(times[i], now)
			}
			for _, ev := range h.Events() {
				if ev.Kind == EventFailed {
					failAt[i] = now
				}
			}
		}
		if done {
			break
		}
	}
	return times, failAt
}

// TestRetransmitLockstepWithoutJitter documents the herd amplifier this
// PR removes: synchronized peers with no jitter share byte-identical
// retransmission schedules, so a burst that causes loss re-collides on
// every retry.
func TestRetransmitLockstepWithoutJitter(t *testing.T) {
	times, _ := herd(t, 4, nil)
	for i := 1; i < len(times); i++ {
		if len(times[i]) != len(times[0]) {
			t.Fatalf("host %d made %d retransmits, host 0 made %d", i, len(times[i]), len(times[0]))
		}
		for j := range times[i] {
			if times[i][j] != times[0][j] {
				t.Fatalf("no-jitter hosts diverged: host %d retry %d at %v, host 0 at %v",
					i, j, times[i][j], times[0][j])
			}
		}
	}
}

// TestJitterDecorrelatesRetransmits: N peers synchronized at t=0 sharing
// one deterministic jitter source spread their retries apart instead of
// re-colliding, and every one of them still fails within the 16×base
// give-up budget (the PR 3 invariant the jitter clamp protects).
func TestJitterDecorrelatesRetransmits(t *testing.T) {
	const n = 8
	rng := rand.New(rand.NewSource(7))
	times, failAt := herd(t, n, rng.Float64)

	// Each retry round must spread across distinct times: with ±50%
	// jitter over a ≥250ms window and 10ms observation steps, eight
	// peers landing on one tick would mean the jitter isn't wired.
	for round := 0; round < 4; round++ {
		distinct := map[time.Duration]bool{}
		for i := 0; i < n; i++ {
			if round >= len(times[i]) {
				t.Fatalf("host %d made only %d retransmits", i, len(times[i]))
			}
			distinct[times[i][round]] = true
		}
		if len(distinct) < n/2 {
			t.Fatalf("round %d: only %d distinct retry times across %d peers: %v",
				round, len(distinct), n, times)
		}
	}

	// Give-up stays inside the cumulative budget regardless of draws.
	base := 500 * time.Millisecond
	limit := 16*base + 10*time.Millisecond // +1 observation step
	for i, at := range failAt {
		if at == 0 {
			t.Fatalf("host %d never failed", i)
		}
		if at > limit {
			t.Fatalf("host %d gave up at %v, past the 16×base budget %v", i, at, limit)
		}
	}
}

// TestJitterWorstCaseRespectsDeadline pins the clamp: a jitter source
// that always draws the maximum would stretch cumulative backoff to
// ~23.5×base without the absolute deadline recorded at arm time.
func TestJitterWorstCaseRespectsDeadline(t *testing.T) {
	times, failAt := herd(t, 1, func() float64 { return 0.999999 })
	base := 500 * time.Millisecond
	limit := 16*base + 10*time.Millisecond
	if failAt[0] == 0 || failAt[0] > limit {
		t.Fatalf("worst-case jitter gave up at %v (retries %v), want ≤ %v", failAt[0], times[0], limit)
	}
}

func TestAdmissionQueueFIFOAndGrowth(t *testing.T) {
	q := NewAdmissionQueue(0) // unbounded
	for i := 0; i < 100; i++ {
		if shed := q.Push(Pending{Data: []byte{byte(i)}}); shed {
			t.Fatalf("unbounded queue shed at %d", i)
		}
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		p, ok := q.Pop()
		if !ok || p.Data[0] != byte(i) {
			t.Fatalf("pop %d: ok=%v data=%v", i, ok, p.Data)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestAdmissionQueueDropOldest(t *testing.T) {
	q := NewAdmissionQueue(4)
	for i := 0; i < 10; i++ {
		q.Push(Pending{Data: []byte{byte(i)}})
	}
	if q.Shed != 6 {
		t.Fatalf("Shed = %d, want 6", q.Shed)
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	// Survivors are the newest four, in arrival order.
	for want := 6; want < 10; want++ {
		p, ok := q.Pop()
		if !ok || p.Data[0] != byte(want) {
			t.Fatalf("pop: ok=%v data=%v want=%d", ok, p.Data, want)
		}
	}
	// Interleaved push/pop keeps FIFO across the wrapped ring.
	for i := 0; i < 3; i++ {
		q.Push(Pending{Data: []byte{byte(100 + i)}})
	}
	if p, _ := q.Pop(); p.Data[0] != 100 {
		t.Fatalf("wrapped pop = %v", p.Data)
	}
	q.Push(Pending{Data: []byte{103}})
	for want := 101; want <= 103; want++ {
		p, ok := q.Pop()
		if !ok || p.Data[0] != byte(want) {
			t.Fatalf("wrapped pop: ok=%v data=%v want=%d", ok, p.Data, want)
		}
	}
}
