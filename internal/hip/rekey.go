package hip

import (
	"net/netip"
	"time"

	"hipcloud/internal/esp"
	"hipcloud/internal/hipwire"
	"hipcloud/internal/keymat"
)

// DefaultRekeyThreshold is the outbound sequence count after which the
// ESP SAs are rekeyed (well before the 32-bit sequence space nears
// exhaustion; kept modest so long-lived associations rotate keys).
const DefaultRekeyThreshold = 1 << 24

// rekeyHeadroom is the minimum gap enforced between the rekey threshold
// and outbound sequence saturation (2^32−1, where SealAppend starts
// failing with esp.ErrSeqExhausted): the rekey exchange itself takes a
// round trip plus retransmissions, during which data keeps flowing on the
// old SA. A threshold configured at or past the limit would otherwise
// only fire once sends are already failing.
//
// For the implicit-IV AEAD suites this clamp is also the nonce-reuse
// defense in depth, audited for ISSUE 10: the nonce is the sequence
// number, so a counter wrap would repeat a (key, nonce) pair —
// catastrophic for GCM. Two mechanisms make that unreachable. First,
// the clamp fires a rekey at the latest 2^16 packets before saturation,
// and installRekeyedSAs swaps in SAs keyed from a fresh KEYMAT draw
// (new key AND new salt, so the new SA's nonce stream is disjoint even
// though its counter restarts at 1). Second, even if the rekey
// exchange never completes — peer dead, UPDATEs lost past retry — the
// old SA saturates and esp.SealAppend refuses to seal rather than
// wrapping: the final sequence value is used at most once. The
// exhaustion-boundary tests in internal/esp pin the second mechanism;
// TestRekeyThresholdClampAEAD pins the first.
const rekeyHeadroom = 1 << 16

// rekeyThreshold returns the configured or default rekey point, clamped
// to leave rekeyHeadroom sequence numbers before saturation.
func (h *Host) rekeyThreshold() uint32 {
	t := h.cfg.RekeyThreshold
	if t == 0 {
		t = DefaultRekeyThreshold
	}
	if max := ^uint32(0) - rekeyHeadroom; t > max {
		t = max
	}
	return t
}

// Maintain performs periodic association upkeep: it starts an ESP rekey
// on any association whose outbound sequence numbers crossed the
// threshold. Drivers call it from their timer loops. Either end may
// notice its own outbound SA aging out (asymmetric traffic means the
// responder's counter can run far ahead of the initiator's); simultaneous
// rekeys are resolved in handleRekeyRequest, where the base-exchange
// initiator's rekey wins and the responder abandons its own.
func (h *Host) Maintain(now time.Duration) {
	for _, a := range h.sortedAssocs() {
		if a.state != Established || a.rekeying || a.espPair == nil || a.km == nil {
			continue
		}
		if a.espPair.Out.Seq() >= h.rekeyThreshold() {
			h.startRekey(a, now)
		}
	}
}

// ForceRekey immediately starts an ESP rekey with the peer. Either end
// may call it; a collision with the peer's own rekey resolves in
// handleRekeyRequest (base-exchange initiator wins).
func (h *Host) ForceRekey(peerHIT netip.Addr, now time.Duration) error {
	a, ok := h.assocs[peerHIT]
	if !ok {
		return ErrNoAssociation
	}
	if a.state != Established {
		return ErrNotEstablished
	}
	if a.rekeying || a.km == nil {
		return nil
	}
	h.startRekey(a, now)
	return nil
}

// startRekey sends UPDATE{ESP_INFO(old,new,keymat index), SEQ}.
func (h *Host) startRekey(a *Association, now time.Duration) {
	a.rekeying = true
	a.pendingRekey = h.newSPI()
	a.updateSeq++
	u := &hipwire.Packet{Type: hipwire.UPDATE, SenderHIT: h.HIT(), ReceiverHIT: a.PeerHIT}
	u.Add(hipwire.ParamESPInfo, hipwire.ESPInfo{
		KeymatIndex: uint16(a.km.Drawn()),
		OldSPI:      a.localSPI,
		NewSPI:      a.pendingRekey,
	}.Marshal())
	u.Add(hipwire.ParamSeq, hipwire.MarshalSeq(a.updateSeq))
	h.finishPacket(u, a.keys.HIPMacOut)
	out := u.Marshal()
	h.emit(a.PeerLocator, out)
	a.armRetrans(h, a.PeerLocator, out, now)
}

// handleRekeyRequest processes the peer's UPDATE{ESP_INFO, SEQ}: derive
// fresh keys, switch SAs and confirm with UPDATE{ESP_INFO, SEQ, ACK}.
// Returns true when the packet was a rekey request.
func (h *Host) handleRekeyRequest(a *Association, pkt *hipwire.Packet, src netip.Addr, now time.Duration) bool {
	espP, hasESP := pkt.Get(hipwire.ParamESPInfo)
	seqP, hasSeq := pkt.Get(hipwire.ParamSeq)
	_, hasAck := pkt.Get(hipwire.ParamAck)
	if !hasESP || !hasSeq || hasAck {
		return false
	}
	ei, err := hipwire.ParseESPInfo(espP.Data)
	if err != nil || ei.NewSPI == 0 {
		return false
	}
	// Duplicate request (our confirmation was lost): resend it.
	if ei.NewSPI == a.remoteSPI && a.retransPkt != nil {
		h.emit(src, a.retransPkt)
		return true
	}
	if ei.OldSPI != a.remoteSPI {
		return false
	}
	// Simultaneous rekey: both ends crossed the threshold and sent
	// UPDATE{ESP_INFO,SEQ} before seeing the other's. Serving both would
	// double-draw the KEYMAT stream and desynchronize keys, so exactly one
	// side must yield; the base-exchange initiator's rekey wins (a stable,
	// mutually known tie-break). As initiator we drop the peer's request —
	// it abandons its own on receiving ours; as responder we abandon ours
	// here and serve the peer's.
	if a.rekeying {
		if a.initiator {
			return true
		}
		a.rekeying = false
		a.pendingRekey = 0
		a.cancelRetrans()
	}
	peerSeq, err := hipwire.ParseSeq(seqP.Data)
	if err != nil {
		return true
	}
	if a.km == nil || uint16(a.km.Drawn()) != ei.KeymatIndex {
		// KEYMAT desync would produce garbage keys; refuse.
		h.notify(a.PeerHIT, src, hipwire.NotifyInvalidSyntax)
		return true
	}
	keys, err := keymat.DeriveESPRekey(a.km, a.suite, a.initiator)
	if err != nil {
		return true
	}
	newLocal := h.newSPI()
	if err := h.installRekeyedSAs(a, keys, newLocal, ei.NewSPI); err != nil {
		return true
	}
	a.peerUpdateSeq = peerSeq
	a.updateSeq++
	u := &hipwire.Packet{Type: hipwire.UPDATE, SenderHIT: h.HIT(), ReceiverHIT: a.PeerHIT}
	u.Add(hipwire.ParamESPInfo, hipwire.ESPInfo{
		KeymatIndex: uint16(a.km.Drawn()),
		OldSPI:      ei.OldSPI, // echo the peer's old SPI for matching
		NewSPI:      newLocal,
	}.Marshal())
	u.Add(hipwire.ParamSeq, hipwire.MarshalSeq(a.updateSeq))
	u.Add(hipwire.ParamAck, hipwire.MarshalAck([]uint32{peerSeq}))
	h.finishPacket(u, a.keys.HIPMacOut)
	out := u.Marshal()
	h.emit(src, out)
	a.armRetrans(h, src, out, now)
	return true
}

// handleRekeyConfirm processes UPDATE{ESP_INFO, SEQ, ACK} at the rekey
// initiator: derive the same keys, switch SAs and send the closing ACK.
func (h *Host) handleRekeyConfirm(a *Association, pkt *hipwire.Packet, src netip.Addr, now time.Duration) bool {
	espP, hasESP := pkt.Get(hipwire.ParamESPInfo)
	seqP, hasSeq := pkt.Get(hipwire.ParamSeq)
	ackP, hasAck := pkt.Get(hipwire.ParamAck)
	if !hasESP || !hasSeq || !hasAck || !a.rekeying {
		return false
	}
	acks, err := hipwire.ParseAck(ackP.Data)
	if err != nil {
		return true
	}
	acked := false
	for _, id := range acks {
		if id == a.updateSeq {
			acked = true
		}
	}
	if !acked {
		return false
	}
	ei, err := hipwire.ParseESPInfo(espP.Data)
	if err != nil || ei.NewSPI == 0 {
		return true
	}
	keys, err := keymat.DeriveESPRekey(a.km, a.suite, a.initiator)
	if err != nil {
		return true
	}
	if err := h.installRekeyedSAs(a, keys, a.pendingRekey, ei.NewSPI); err != nil {
		return true
	}
	a.rekeying = false
	a.pendingRekey = 0
	a.cancelRetrans()
	// Close the exchange so the peer stops retransmitting.
	if peerSeq, err := hipwire.ParseSeq(seqP.Data); err == nil {
		u := &hipwire.Packet{Type: hipwire.UPDATE, SenderHIT: h.HIT(), ReceiverHIT: a.PeerHIT}
		u.Add(hipwire.ParamAck, hipwire.MarshalAck([]uint32{peerSeq}))
		h.finishPacket(u, a.keys.HIPMacOut)
		h.emit(src, u.Marshal())
	}
	return true
}

// installRekeyedSAs swaps in fresh SAs under new SPIs, preserving the
// control-plane keys.
func (h *Host) installRekeyedSAs(a *Association, espKeys keymat.AssociationKeys, newLocal, newRemote uint32) error {
	espKeys.HIPMacOut, espKeys.HIPMacIn = a.keys.HIPMacOut, a.keys.HIPMacIn
	pair, err := esp.NewPair(espKeys, newLocal, newRemote)
	if err != nil {
		return err
	}
	delete(h.bySPI, a.localSPI)
	// The displaced SAs and directional ESP keys are dead once the swap
	// lands: wipe them before dropping the last references. The HIP
	// control keys were carried into espKeys above and stay live, so
	// only the ESP slots are cleared.
	a.espPair.Zeroize()
	a.keys.ZeroizeESP()
	a.localSPI, a.remoteSPI = newLocal, newRemote
	a.keys = espKeys
	a.espPair = pair
	h.bySPI[newLocal] = a
	a.Rekeys++
	h.cost += h.cfg.Costs.HashOp * 8 // KEYMAT expansion
	return nil
}
