package hip

import (
	"net/netip"
	"testing"
	"time"

	"hipcloud/internal/esp"
)

func TestForceRekeySwapsSPIsAndKeys(t *testing.T) {
	w := newWire(t)
	a := newHost(t, idA, locA)
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)
	aa, _ := a.Association(b.HIT())
	bb, _ := b.Association(a.HIT())
	oldLocalA, oldRemoteA := aa.SPIs()

	// Traffic works before.
	pkt, _, err := a.SealData(b.HIT(), []byte("pre-rekey"), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.OpenData(pkt, false); err != nil {
		t.Fatal(err)
	}

	if err := a.ForceRekey(b.HIT(), w.now); err != nil {
		t.Fatal(err)
	}
	w.pump()

	newLocalA, newRemoteA := aa.SPIs()
	newLocalB, newRemoteB := bb.SPIs()
	if newLocalA == oldLocalA || newRemoteA == oldRemoteA {
		t.Fatalf("SPIs unchanged after rekey: local %d->%d remote %d->%d",
			oldLocalA, newLocalA, oldRemoteA, newRemoteA)
	}
	if newLocalA != newRemoteB || newRemoteA != newLocalB {
		t.Fatalf("SPI cross-match broken: a=(%d,%d) b=(%d,%d)",
			newLocalA, newRemoteA, newLocalB, newRemoteB)
	}
	if aa.Rekeys != 1 || bb.Rekeys != 1 {
		t.Fatalf("rekey counters: a=%d b=%d", aa.Rekeys, bb.Rekeys)
	}
	if aa.rekeying {
		t.Fatal("rekeying flag stuck")
	}

	// Traffic still flows under the new keys, both directions.
	pkt, _, err = a.SealData(b.HIT(), []byte("post-rekey a->b"), false)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := b.OpenData(pkt, false)
	if err != nil || string(got) != "post-rekey a->b" {
		t.Fatalf("a->b after rekey: %q %v", got, err)
	}
	pkt, _, err = b.SealData(a.HIT(), []byte("post-rekey b->a"), false)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err = a.OpenData(pkt, false)
	if err != nil || string(got) != "post-rekey b->a" {
		t.Fatalf("b->a after rekey: %q %v", got, err)
	}
}

func TestOldSPIRejectedAfterRekey(t *testing.T) {
	w := newWire(t)
	a := newHost(t, idA, locA)
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)

	// Capture a packet sealed under the old SA.
	stale, _, err := a.SealData(b.HIT(), []byte("stale"), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ForceRekey(b.HIT(), w.now); err != nil {
		t.Fatal(err)
	}
	w.pump()
	if _, _, err := b.OpenData(stale, false); err == nil {
		t.Fatal("packet under retired SPI accepted after rekey")
	}
}

func TestMaintainTriggersRekeyAtThreshold(t *testing.T) {
	w := newWire(t)
	a, err := NewHost(Config{Identity: idA, Locator: locA, RekeyThreshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)
	aa, _ := a.Association(b.HIT())

	for i := 0; i < 6; i++ {
		pkt, _, err := a.SealData(b.HIT(), []byte("x"), false)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := b.OpenData(pkt, false); err != nil {
			t.Fatal(err)
		}
	}
	a.Maintain(w.now)
	w.pump()
	if aa.Rekeys != 1 {
		t.Fatalf("rekeys = %d after crossing threshold", aa.Rekeys)
	}
	// Maintain again below threshold: no second rekey.
	a.Maintain(w.now)
	w.pump()
	if aa.Rekeys != 1 {
		t.Fatalf("spurious extra rekey: %d", aa.Rekeys)
	}
	// Data still flows.
	pkt, _, err := a.SealData(b.HIT(), []byte("after"), false)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := b.OpenData(pkt, false); err != nil || string(got) != "after" {
		t.Fatalf("post-maintain data: %q %v", got, err)
	}
}

func TestRepeatedRekeysStayInSync(t *testing.T) {
	w := newWire(t)
	a := newHost(t, idA, locA)
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)
	aa, _ := a.Association(b.HIT())
	for round := 1; round <= 5; round++ {
		if err := a.ForceRekey(b.HIT(), w.now); err != nil {
			t.Fatal(err)
		}
		w.pump()
		if aa.Rekeys != uint64(round) {
			t.Fatalf("round %d: rekeys = %d", round, aa.Rekeys)
		}
		msg := []byte{byte(round)}
		pkt, _, err := a.SealData(b.HIT(), msg, false)
		if err != nil {
			t.Fatalf("round %d seal: %v", round, err)
		}
		if got, _, err := b.OpenData(pkt, false); err != nil || got[0] != byte(round) {
			t.Fatalf("round %d data: %v %v", round, got, err)
		}
	}
}

func TestRekeyThresholdClampedNearSaturation(t *testing.T) {
	// A threshold configured at the very top of the sequence space must
	// still rekey strictly before SealData starts failing with
	// ErrSeqExhausted: the effective threshold is clamped to leave
	// rekeyHeadroom numbers of slack.
	w := newWire(t)
	a, err := NewHost(Config{Identity: idA, Locator: locA, RekeyThreshold: ^uint32(0)})
	if err != nil {
		t.Fatal(err)
	}
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)
	aa, _ := a.Association(b.HIT())

	if got, want := a.rekeyThreshold(), ^uint32(0)-rekeyHeadroom; got != want {
		t.Fatalf("clamped threshold = %d, want %d", got, want)
	}
	// Fast-forward the outbound SA to the clamp point and run upkeep.
	aa.ESP().Out.SetSeq(a.rekeyThreshold())
	a.Maintain(w.now)
	w.pump()
	if aa.Rekeys != 1 {
		t.Fatalf("rekeys = %d, want 1 (triggered before saturation)", aa.Rekeys)
	}
	// The fresh SA starts from sequence zero; sends keep working.
	pkt, _, err := a.SealData(b.HIT(), []byte("alive"), false)
	if err != nil {
		t.Fatalf("seal after near-limit rekey: %v", err)
	}
	if got, _, err := b.OpenData(pkt, false); err != nil || string(got) != "alive" {
		t.Fatalf("data after near-limit rekey: %q %v", got, err)
	}
}

func TestSeqSaturationErrorPropagates(t *testing.T) {
	// If an SA does hit 2^32−1 (upkeep never ran), the saturation error
	// must propagate out of SealData rather than silently dropping data.
	w := newWire(t)
	a := newHost(t, idA, locA)
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)
	aa, _ := a.Association(b.HIT())
	aa.ESP().Out.SetSeq(^uint32(0) - 1)
	if _, _, err := a.SealData(b.HIT(), []byte("last"), false); err != nil {
		t.Fatalf("seal one below saturation: %v", err)
	}
	if _, _, err := a.SealData(b.HIT(), []byte("over"), false); err != esp.ErrSeqExhausted {
		t.Fatalf("seal at saturation: err = %v, want esp.ErrSeqExhausted", err)
	}
	// Recovery: a rekey resets the outbound sequence space.
	if err := a.ForceRekey(b.HIT(), w.now); err != nil {
		t.Fatal(err)
	}
	w.pump()
	if _, _, err := a.SealData(b.HIT(), []byte("recovered"), false); err != nil {
		t.Fatalf("seal after recovery rekey: %v", err)
	}
}

func TestResponderInitiatedRekey(t *testing.T) {
	// Asymmetric traffic: the responder's outbound counter can cross the
	// threshold while the initiator's sits near zero, so the responder
	// must be able to start the rekey itself (the old initiator-only rule
	// left its SA to saturate).
	w := newWire(t)
	a := newHost(t, idA, locA)
	b, err := NewHost(Config{Identity: idB, Locator: locB, RekeyThreshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)
	aa, _ := a.Association(b.HIT())
	bb, _ := b.Association(a.HIT())

	for i := 0; i < 6; i++ {
		pkt, _, err := b.SealData(a.HIT(), []byte("push"), false)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := a.OpenData(pkt, false); err != nil {
			t.Fatal(err)
		}
	}
	b.Maintain(w.now)
	w.pump()
	if bb.Rekeys != 1 || aa.Rekeys != 1 {
		t.Fatalf("rekeys b=%d a=%d, want 1 each (responder-initiated)", bb.Rekeys, aa.Rekeys)
	}
	// Both directions flow under the new SAs.
	pkt, _, err := b.SealData(a.HIT(), []byte("b->a"), false)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := a.OpenData(pkt, false); err != nil || string(got) != "b->a" {
		t.Fatalf("b->a after rekey: %q %v", got, err)
	}
	pkt, _, err = a.SealData(b.HIT(), []byte("a->b"), false)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := b.OpenData(pkt, false); err != nil || string(got) != "a->b" {
		t.Fatalf("a->b after rekey: %q %v", got, err)
	}
}

func TestSimultaneousRekeyTieBreak(t *testing.T) {
	// Both ends start a rekey before either request is delivered. Exactly
	// one exchange must win (the base-exchange initiator's) — serving both
	// would double-draw the KEYMAT stream and desync the keys.
	w := newWire(t)
	a := newHost(t, idA, locA)
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)
	aa, _ := a.Association(b.HIT())
	bb, _ := b.Association(a.HIT())

	if err := a.ForceRekey(b.HIT(), w.now); err != nil {
		t.Fatal(err)
	}
	if err := b.ForceRekey(a.HIT(), w.now); err != nil {
		t.Fatal(err)
	}
	w.pump()
	w.advance(10 * time.Second) // drain any retransmissions
	if aa.rekeying || bb.rekeying {
		t.Fatalf("rekey stuck: a=%v b=%v", aa.rekeying, bb.rekeying)
	}
	if aa.Rekeys != 1 || bb.Rekeys != 1 {
		t.Fatalf("rekeys a=%d b=%d, want exactly 1 each", aa.Rekeys, bb.Rekeys)
	}
	la, ra := aa.SPIs()
	lb, rb := bb.SPIs()
	if la != rb || ra != lb {
		t.Fatalf("SPI cross-match broken after collision: a=(%d,%d) b=(%d,%d)", la, ra, lb, rb)
	}
	pkt, _, err := a.SealData(b.HIT(), []byte("a->b"), false)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := b.OpenData(pkt, false); err != nil || string(got) != "a->b" {
		t.Fatalf("a->b after collision: %q %v", got, err)
	}
	pkt, _, err = b.SealData(a.HIT(), []byte("b->a"), false)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := a.OpenData(pkt, false); err != nil || string(got) != "b->a" {
		t.Fatalf("b->a after collision: %q %v", got, err)
	}
}

func TestRekeyRequestRetransmissionHandled(t *testing.T) {
	// Drop the responder's confirmation once: the initiator retransmits
	// the request; the responder must resend the same confirmation
	// rather than deriving keys twice (which would desync KEYMAT).
	w := newWire(t)
	a := newHost(t, idA, locA)
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)
	aa, _ := a.Association(b.HIT())
	bb, _ := b.Association(a.HIT())

	drop := true
	w.loss = func(from, to netip.Addr, data []byte) bool {
		// Drop exactly one packet: the first confirmation from B.
		if drop && from == locB {
			drop = false
			return true
		}
		return false
	}
	if err := a.ForceRekey(b.HIT(), w.now); err != nil {
		t.Fatal(err)
	}
	w.pump()
	// Initiator still rekeying (confirmation lost); fire its timer.
	if !aa.rekeying {
		t.Fatal("expected pending rekey after dropped confirmation")
	}
	w.advance(2 * time.Second)
	if aa.rekeying {
		t.Fatal("rekey did not complete after retransmission")
	}
	if aa.Rekeys != 1 || bb.Rekeys != 1 {
		t.Fatalf("rekeys a=%d b=%d, want 1 each", aa.Rekeys, bb.Rekeys)
	}
	pkt, _, err := a.SealData(b.HIT(), []byte("ok"), false)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := b.OpenData(pkt, false); err != nil || string(got) != "ok" {
		t.Fatalf("data after lossy rekey: %q %v", got, err)
	}
}
