package hip

import (
	"net/netip"
	"testing"
	"time"
)

func TestForceRekeySwapsSPIsAndKeys(t *testing.T) {
	w := newWire(t)
	a := newHost(t, idA, locA)
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)
	aa, _ := a.Association(b.HIT())
	bb, _ := b.Association(a.HIT())
	oldLocalA, oldRemoteA := aa.SPIs()

	// Traffic works before.
	pkt, _, err := a.SealData(b.HIT(), []byte("pre-rekey"), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.OpenData(pkt, false); err != nil {
		t.Fatal(err)
	}

	if err := a.ForceRekey(b.HIT(), w.now); err != nil {
		t.Fatal(err)
	}
	w.pump()

	newLocalA, newRemoteA := aa.SPIs()
	newLocalB, newRemoteB := bb.SPIs()
	if newLocalA == oldLocalA || newRemoteA == oldRemoteA {
		t.Fatalf("SPIs unchanged after rekey: local %d->%d remote %d->%d",
			oldLocalA, newLocalA, oldRemoteA, newRemoteA)
	}
	if newLocalA != newRemoteB || newRemoteA != newLocalB {
		t.Fatalf("SPI cross-match broken: a=(%d,%d) b=(%d,%d)",
			newLocalA, newRemoteA, newLocalB, newRemoteB)
	}
	if aa.Rekeys != 1 || bb.Rekeys != 1 {
		t.Fatalf("rekey counters: a=%d b=%d", aa.Rekeys, bb.Rekeys)
	}
	if aa.rekeying {
		t.Fatal("rekeying flag stuck")
	}

	// Traffic still flows under the new keys, both directions.
	pkt, _, err = a.SealData(b.HIT(), []byte("post-rekey a->b"), false)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := b.OpenData(pkt, false)
	if err != nil || string(got) != "post-rekey a->b" {
		t.Fatalf("a->b after rekey: %q %v", got, err)
	}
	pkt, _, err = b.SealData(a.HIT(), []byte("post-rekey b->a"), false)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err = a.OpenData(pkt, false)
	if err != nil || string(got) != "post-rekey b->a" {
		t.Fatalf("b->a after rekey: %q %v", got, err)
	}
}

func TestOldSPIRejectedAfterRekey(t *testing.T) {
	w := newWire(t)
	a := newHost(t, idA, locA)
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)

	// Capture a packet sealed under the old SA.
	stale, _, err := a.SealData(b.HIT(), []byte("stale"), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ForceRekey(b.HIT(), w.now); err != nil {
		t.Fatal(err)
	}
	w.pump()
	if _, _, err := b.OpenData(stale, false); err == nil {
		t.Fatal("packet under retired SPI accepted after rekey")
	}
}

func TestMaintainTriggersRekeyAtThreshold(t *testing.T) {
	w := newWire(t)
	a, err := NewHost(Config{Identity: idA, Locator: locA, RekeyThreshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)
	aa, _ := a.Association(b.HIT())

	for i := 0; i < 6; i++ {
		pkt, _, err := a.SealData(b.HIT(), []byte("x"), false)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := b.OpenData(pkt, false); err != nil {
			t.Fatal(err)
		}
	}
	a.Maintain(w.now)
	w.pump()
	if aa.Rekeys != 1 {
		t.Fatalf("rekeys = %d after crossing threshold", aa.Rekeys)
	}
	// Maintain again below threshold: no second rekey.
	a.Maintain(w.now)
	w.pump()
	if aa.Rekeys != 1 {
		t.Fatalf("spurious extra rekey: %d", aa.Rekeys)
	}
	// Data still flows.
	pkt, _, err := a.SealData(b.HIT(), []byte("after"), false)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := b.OpenData(pkt, false); err != nil || string(got) != "after" {
		t.Fatalf("post-maintain data: %q %v", got, err)
	}
}

func TestRepeatedRekeysStayInSync(t *testing.T) {
	w := newWire(t)
	a := newHost(t, idA, locA)
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)
	aa, _ := a.Association(b.HIT())
	for round := 1; round <= 5; round++ {
		if err := a.ForceRekey(b.HIT(), w.now); err != nil {
			t.Fatal(err)
		}
		w.pump()
		if aa.Rekeys != uint64(round) {
			t.Fatalf("round %d: rekeys = %d", round, aa.Rekeys)
		}
		msg := []byte{byte(round)}
		pkt, _, err := a.SealData(b.HIT(), msg, false)
		if err != nil {
			t.Fatalf("round %d seal: %v", round, err)
		}
		if got, _, err := b.OpenData(pkt, false); err != nil || got[0] != byte(round) {
			t.Fatalf("round %d data: %v %v", round, got, err)
		}
	}
}

func TestRekeyRequestRetransmissionHandled(t *testing.T) {
	// Drop the responder's confirmation once: the initiator retransmits
	// the request; the responder must resend the same confirmation
	// rather than deriving keys twice (which would desync KEYMAT).
	w := newWire(t)
	a := newHost(t, idA, locA)
	b := newHost(t, idB, locB)
	w.add(a, locA)
	w.add(b, locB)
	establish(t, w, a, b)
	aa, _ := a.Association(b.HIT())
	bb, _ := b.Association(a.HIT())

	drop := true
	w.loss = func(from, to netip.Addr, data []byte) bool {
		// Drop exactly one packet: the first confirmation from B.
		if drop && from == locB {
			drop = false
			return true
		}
		return false
	}
	if err := a.ForceRekey(b.HIT(), w.now); err != nil {
		t.Fatal(err)
	}
	w.pump()
	// Initiator still rekeying (confirmation lost); fire its timer.
	if !aa.rekeying {
		t.Fatal("expected pending rekey after dropped confirmation")
	}
	w.advance(2 * time.Second)
	if aa.rekeying {
		t.Fatal("rekey did not complete after retransmission")
	}
	if aa.Rekeys != 1 || bb.Rekeys != 1 {
		t.Fatalf("rekeys a=%d b=%d, want 1 each", aa.Rekeys, bb.Rekeys)
	}
	pkt, _, err := a.SealData(b.HIT(), []byte("ok"), false)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := b.OpenData(pkt, false); err != nil || string(got) != "ok" {
		t.Fatalf("data after lossy rekey: %q %v", got, err)
	}
}
