// Package hip implements the Host Identity Protocol control plane
// (RFC 5201 base exchange, RFC 5202 ESP signaling, RFC 5206 mobility
// updates, CLOSE teardown) as a sans-io state machine.
//
// A Host consumes inbound control packets, timer expirations and local
// API calls (Connect, Close, MoveTo); it produces outbound packets
// (drained with Outgoing), events (drained with Events) and an accumulated
// virtual CPU cost (drained with TakeCost) that simulation drivers charge
// to the owning VM's processor. Real-transport drivers simply discard the
// cost — the crypto work was actually performed.
package hip

import (
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/netip"
	"time"

	"hipcloud/internal/identity"
	"hipcloud/internal/keymat"
	"hipcloud/internal/puzzle"
)

// Errors returned by the control plane.
var (
	ErrNoAssociation  = errors.New("hip: no association with peer")
	ErrNotEstablished = errors.New("hip: association not established")
	ErrHITMismatch    = errors.New("hip: host identity does not hash to sender HIT")
	ErrAuthFailed     = errors.New("hip: packet authentication failed")
	ErrPolicy         = errors.New("hip: peer rejected by policy")
)

// State is the HIP association state (RFC 5201 §4.4).
type State int

// Association states.
const (
	Unassociated State = iota
	I1Sent
	I2Sent
	R2Sent
	Established
	Closing
	Closed
	Failed
)

func (s State) String() string {
	switch s {
	case Unassociated:
		return "UNASSOCIATED"
	case I1Sent:
		return "I1-SENT"
	case I2Sent:
		return "I2-SENT"
	case R2Sent:
		return "R2-SENT"
	case Established:
		return "ESTABLISHED"
	case Closing:
		return "CLOSING"
	case Closed:
		return "CLOSED"
	case Failed:
		return "FAILED"
	}
	return "state(?)"
}

// CostModel maps cryptographic operations to virtual CPU time on a
// reference core. Values are calibrated in internal/cloud for 2012-era
// EC2 hardware; zero values mean "free" (used by real-transport drivers,
// where the host CPU genuinely pays).
type CostModel struct {
	Sign      time.Duration // asymmetric signature generation
	Verify    time.Duration // asymmetric signature verification
	DHCompute time.Duration // Diffie-Hellman shared-secret computation
	DHKeygen  time.Duration // Diffie-Hellman keypair generation
	HashOp    time.Duration // one hash evaluation (puzzle attempts)
	// Per-byte symmetric costs (encryption + MAC), in ns/byte.
	SymmetricNsPerByte float64
	// Per-packet fixed cost of the shim layer (HIT<->locator mapping).
	ShimPerPacket time.Duration
	// Extra per-packet cost when the application addressed the peer by
	// LSI rather than HIT (the IPv4<->IPv6 translation the paper blames
	// for the LSI penalty in Figure 3).
	LSITranslation time.Duration
}

// Symmetric returns the virtual cost of symmetric crypto over n bytes.
func (m CostModel) Symmetric(n int) time.Duration {
	return time.Duration(m.SymmetricNsPerByte * float64(n))
}

// EventKind classifies events surfaced to drivers.
type EventKind int

// Event kinds.
const (
	EventEstablished EventKind = iota
	EventClosed
	EventFailed
	EventLocatorChanged // peer moved; data should flow to the new address
)

func (k EventKind) String() string {
	switch k {
	case EventEstablished:
		return "established"
	case EventClosed:
		return "closed"
	case EventFailed:
		return "failed"
	case EventLocatorChanged:
		return "locator-changed"
	}
	return "event(?)"
}

// Event is one state-change notification.
type Event struct {
	Kind    EventKind
	PeerHIT netip.Addr
	Locator netip.Addr
}

// OutPacket is one control packet to transmit.
type OutPacket struct {
	Dst  netip.Addr
	Data []byte
}

// Config configures a Host.
type Config struct {
	Identity *identity.HostIdentity
	// DomainID is the optional FQDN placed in HOST_ID parameters.
	DomainID string
	// Locator is the host's current IP address.
	Locator netip.Addr
	// Costs is the virtual CPU cost model (zero = free).
	Costs CostModel
	// Puzzle controls responder difficulty; zero value uses
	// puzzle.DefaultDifficulty.
	Puzzle puzzle.Difficulty
	// Rand is the randomness source for puzzle seeds, SPIs and nonces.
	// Nil uses a fixed-seed math/rand source (fine for simulation;
	// real drivers pass crypto/rand.Reader).
	Rand io.Reader
	// Policy, when non-nil, decides whether to accept an association
	// from the given peer HIT (the hosts.allow/hosts.deny hook the
	// paper describes; see internal/hipfw).
	Policy func(peerHIT netip.Addr) bool
	// RetransmitBase is the initial control-packet retransmission
	// timeout (default 500ms, doubling up to 4 retries).
	RetransmitBase time.Duration
	// RetransmitCap bounds a single backoff interval (default 8×Base —
	// the natural maximum of the 4-retry doubling schedule; a lower cap
	// trades give-up latency for faster probing under long outages).
	RetransmitCap time.Duration
	// Jitter, when non-nil, returns uniform [0,1) used to spread
	// retransmission backoff by ±50%. Synchronized peers (a mass
	// migration, a re-contact herd) otherwise retry in lockstep and
	// re-amplify the very burst that made them retry. Drivers wire this
	// to the simulation's seeded RNG (deterministic, shared across
	// hosts so their draws de-correlate) or to crypto/rand for real
	// transports. Nil disables jitter.
	Jitter func() float64
	// RekeyThreshold rekeys the ESP SAs after this many outbound
	// packets (0 = DefaultRekeyThreshold). See Maintain.
	RekeyThreshold uint32
	// EncryptHostID hides the initiator's HOST_ID inside an ENCRYPTED
	// parameter in I2 (identity privacy, RFC 5201 §5.2.17): a passive
	// observer of the handshake learns only the HIT.
	EncryptHostID bool
	// Suites is the preference-ordered HIP_CIPHER proposal list: what a
	// responder offers in R1 and what either side is willing to accept
	// (the chosen suite in I2 is validated against it, so a peer can
	// never push this host onto a suite it did not offer). Nil keeps the
	// 2012 default (keymat.Preferred — CTR/CBC/NULL, the set the
	// simulation goldens pin); modern drivers pass keymat.PreferredAEAD.
	Suites []keymat.Suite
}

// Host is a HIP endpoint: identity, associations and the handshake
// machinery.
type Host struct {
	cfg      Config
	id       *identity.HostIdentity
	locator  netip.Addr
	domainID []byte // cfg.DomainID converted once; HOST_ID params alias it

	dhPriv *ecdh.PrivateKey // long-lived responder DH key (R1 pool key)
	r1Tmpl map[uint8]*r1Template
	// suites is the resolved Config.Suites (never nil after NewHost).
	suites []keymat.Suite

	assocs map[netip.Addr]*Association // by peer HIT
	// assocList mirrors assocs in peer-HIT order, maintained by
	// addAssoc/delAssoc: the per-tick walks (OnTimer, NextDeadline) and
	// every deterministic snapshot iterate it instead of ranging the map.
	assocList []*Association
	bySPI     map[uint32]*Association // by local inbound SPI

	out    []OutPacket
	events []Event
	cost   time.Duration

	rng      *rand.Rand
	r1Secret []byte // stateless puzzle-I derivation secret
	// i1Load is an exponentially decayed I1 arrival counter (1 s time
	// constant): the responder's load signal for puzzle difficulty.
	i1Load float64
	lastI1 time.Duration

	// jitter spreads retransmission backoff (see Config.Jitter; drivers
	// may also wire it late via SetJitter).
	jitter func() float64
	// backlog is the driver-reported admission-queue depth, added to the
	// decayed I1 rate as input to the puzzle difficulty controller: when
	// the service loop falls behind, puzzles harden even if the
	// instantaneous arrival rate looks tame.
	backlog int

	// Stats visible to experiments.
	BEXInitiated, BEXResponded, BEXCompleted uint64
	PacketsDropped                           uint64
	// Retransmits counts control-packet retransmissions — the herd
	// amplification signal the storm experiment reports.
	Retransmits uint64
}

// r1Template is a pre-signed R1 for a given difficulty K (puzzle I and
// opaque are zeroed in the signature input, per RFC 5201 §5.3.2, so the
// template can be reused with fresh I values at zero signing cost).
type r1Template struct {
	packet *packetShell
	sig    []byte
}

// packetShell keeps the R1 parameter set so per-request copies are cheap.
type packetShell struct {
	params []shellParam
}

type shellParam struct {
	typ  uint16
	data []byte
}

// NewHost creates a HIP host.
func NewHost(cfg Config) (*Host, error) {
	if cfg.Identity == nil {
		return nil, errors.New("hip: Config.Identity is required")
	}
	if cfg.Puzzle == (puzzle.Difficulty{}) {
		cfg.Puzzle = puzzle.DefaultDifficulty
	}
	if cfg.RetransmitBase <= 0 {
		cfg.RetransmitBase = 500 * time.Millisecond
	}
	suites := cfg.Suites
	if len(suites) == 0 {
		suites = keymat.Preferred
	}
	for _, s := range suites {
		if _, err := s.EncKeyLen(); err != nil {
			return nil, fmt.Errorf("hip: Config.Suites: %w", err)
		}
	}
	h := &Host{
		cfg:      cfg,
		id:       cfg.Identity,
		locator:  cfg.Locator,
		domainID: []byte(cfg.DomainID),
		assocs:   make(map[netip.Addr]*Association),
		bySPI:    make(map[uint32]*Association),
		r1Tmpl:   make(map[uint8]*r1Template),
		suites:   suites,
	}
	seed := int64(1)
	if cfg.Rand != nil {
		var b [8]byte
		if _, err := io.ReadFull(cfg.Rand, b[:]); err != nil {
			return nil, fmt.Errorf("hip: seeding rng: %w", err)
		}
		seed = int64(binary.BigEndian.Uint64(b[:]))
	}
	h.rng = rand.New(rand.NewSource(seed))
	h.jitter = cfg.Jitter
	h.r1Secret = make([]byte, 32)
	h.rng.Read(h.r1Secret)
	// Long-lived DH keypair (the "R1 pool" key). Charged as one keygen.
	priv, err := detECDHKey(h.rng)
	if err != nil {
		return nil, fmt.Errorf("hip: DH keygen: %w", err)
	}
	h.dhPriv = priv
	h.cost += h.cfg.Costs.DHKeygen
	return h, nil
}

// detECDHKey derives an ECDH P-256 key from the host RNG by drawing the
// scalar explicitly. It must NOT go through ecdh.GenerateKey with an
// io.Reader adapter: since Go 1.20 the stdlib deliberately consumes a
// runtime-random number of bytes from non-default readers
// (randutil.MaybeReadByte), which would advance h.rng by a
// nondeterministic offset and change every later draw — puzzle seeds,
// SPIs, nonces — breaking bit-exact simulation replay.
func detECDHKey(rng *rand.Rand) (*ecdh.PrivateKey, error) {
	var b [32]byte
	for {
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		k, err := ecdh.P256().NewPrivateKey(b[:])
		if err == nil {
			return k, nil
		}
		// Out-of-range scalar (probability ~2^-32): redraw.
	}
}

// HIT returns the host's HIT.
func (h *Host) HIT() netip.Addr { return h.id.HIT() }

// Identity returns the host identity.
func (h *Host) Identity() *identity.HostIdentity { return h.id }

// Locator returns the host's current locator.
func (h *Host) Locator() netip.Addr { return h.locator }

// LSIPenalty returns the configured per-packet LSI translation cost, so
// drivers can charge it for inbound packets on LSI-mode flows.
func (h *Host) LSIPenalty() time.Duration { return h.cfg.Costs.LSITranslation }

// Outgoing drains queued control packets.
func (h *Host) Outgoing() []OutPacket {
	out := h.out
	h.out = nil
	return out
}

// Events drains queued events.
func (h *Host) Events() []Event {
	ev := h.events
	h.events = nil
	return ev
}

// TakeCost drains the accumulated virtual CPU cost.
func (h *Host) TakeCost() time.Duration {
	c := h.cost
	h.cost = 0
	return c
}

// Association returns the association with peerHIT, if any.
func (h *Host) Association(peerHIT netip.Addr) (*Association, bool) {
	a, ok := h.assocs[peerHIT]
	return a, ok
}

// Associations returns all current associations, ordered by peer HIT.
func (h *Host) Associations() []*Association { return h.sortedAssocs() }

// sortedAssocs snapshots the associations in peer-HIT order. Every path
// that walks associations AND emits packets or events must iterate this
// snapshot, never the map: map-range order would make packet emission
// order depend on Go's map seed, breaking run-to-run determinism of the
// simulation (the simdet contract). assocList is already sorted, so the
// snapshot is a single exact-size copy — no map range, no sort, no
// comparator closure on the timer path. The copy (rather than returning
// assocList itself) matters: OnTimer tears down failed associations
// mid-walk, which mutates assocList under the iteration.
func (h *Host) sortedAssocs() []*Association {
	out := make([]*Association, len(h.assocList))
	copy(out, h.assocList)
	return out
}

// addAssoc installs a in both views: the lookup map and the sorted list.
// An existing association for the same peer is replaced in place.
func (h *Host) addAssoc(a *Association) {
	if _, ok := h.assocs[a.PeerHIT]; ok {
		h.assocs[a.PeerHIT] = a
		for i, old := range h.assocList {
			if old.PeerHIT == a.PeerHIT {
				h.assocList[i] = a
				break
			}
		}
		return
	}
	h.assocs[a.PeerHIT] = a
	i := len(h.assocList)
	for i > 0 && h.assocList[i-1].PeerHIT.Compare(a.PeerHIT) > 0 {
		i--
	}
	h.assocList = append(h.assocList, nil)
	copy(h.assocList[i+1:], h.assocList[i:])
	h.assocList[i] = a
}

// delAssoc removes the association for peerHIT from both views.
func (h *Host) delAssoc(peerHIT netip.Addr) {
	delete(h.assocs, peerHIT)
	for i, a := range h.assocList {
		if a.PeerHIT == peerHIT {
			h.assocList = append(h.assocList[:i], h.assocList[i+1:]...)
			return
		}
	}
}

func (h *Host) emit(dst netip.Addr, data []byte) {
	h.out = append(h.out, OutPacket{Dst: dst, Data: data})
}

func (h *Host) event(k EventKind, peer netip.Addr, loc netip.Addr) {
	h.events = append(h.events, Event{Kind: k, PeerHIT: peer, Locator: loc})
}

// newSPI allocates a fresh local SPI.
func (h *Host) newSPI() uint32 {
	for {
		spi := h.rng.Uint32()
		if spi == 0 {
			continue
		}
		if _, used := h.bySPI[spi]; !used {
			return spi
		}
	}
}

// noteI1 updates the decayed I1 arrival counter and returns the load the
// difficulty controller should see.
func (h *Host) noteI1(now time.Duration) int {
	if h.lastI1 != 0 {
		dt := now - h.lastI1
		if dt > 0 {
			h.i1Load *= math.Exp(-float64(dt) / float64(time.Second))
		}
	}
	h.lastI1 = now
	h.i1Load++
	return int(h.i1Load)
}

// I1Load exposes the responder's current decayed I1 arrival estimate.
func (h *Host) I1Load() float64 { return h.i1Load }

// SetJitter installs a backoff-jitter source if none was configured.
// Drivers call it after construction (hipsim wires the shared simulation
// RNG here); an explicitly configured Config.Jitter wins. Note that the
// per-host rng would be the WRONG source: simulation hosts all default to
// seed 1, so per-host draws are identical across peers and the herd stays
// in lockstep. De-correlation requires a source shared across hosts.
func (h *Host) SetJitter(fn func() float64) {
	if h.jitter == nil {
		h.jitter = fn
	}
}

// SetBacklog reports the driver's admission-queue depth (see Host.backlog).
func (h *Host) SetBacklog(n int) { h.backlog = n }

// retransmitCap returns the bound on a single backoff interval.
func (h *Host) retransmitCap() time.Duration {
	if h.cfg.RetransmitCap > 0 {
		return h.cfg.RetransmitCap
	}
	return 8 * h.cfg.RetransmitBase
}

// statelessPuzzleI derives the puzzle I for an initiator without storing
// state: HMAC(secret, HIT-I | HIT-R) truncated to 64 bits.
func (h *Host) statelessPuzzleI(hitI, hitR netip.Addr) uint64 {
	m := hmac.New(sha256.New, h.r1Secret)
	a, b := hitI.As16(), hitR.As16()
	m.Write(a[:])
	m.Write(b[:])
	return binary.BigEndian.Uint64(m.Sum(nil))
}

// NextDeadline returns the earliest retransmission deadline across all
// associations (zero when none is armed).
func (h *Host) NextDeadline() time.Duration {
	var min time.Duration
	for _, a := range h.assocList {
		if a.retransAt != 0 && (min == 0 || a.retransAt < min) {
			min = a.retransAt
		}
	}
	return min
}

// OnTimer retransmits any control packets whose deadline has passed.
func (h *Host) OnTimer(now time.Duration) {
	for _, a := range h.sortedAssocs() {
		if a.retransAt == 0 || now < a.retransAt {
			continue
		}
		if a.retransTries >= 4 || (a.retransDeadline != 0 && now >= a.retransDeadline) {
			a.retransAt = 0
			a.setState(h, Failed)
			h.event(EventFailed, a.PeerHIT, a.PeerLocator)
			h.delAssoc(a.PeerHIT)
			if a.localSPI != 0 {
				delete(h.bySPI, a.localSPI)
			}
			continue
		}
		a.retransTries++
		// First retry waits the base interval again, doubling from there:
		// deadlines at base×{1,2,4,8,16} cumulative, so the give-up above
		// lands at 16×base (8s at the 500ms default) — strictly inside the
		// drivers' 10s establish timeout, so a Dial blocked on a doomed
		// base exchange gets EventFailed rather than hanging to its own
		// deadline. (The previous shift doubled the first retry too and
		// gave up only at 31×base = 15.5s, past the timeout.)
		backoff := h.cfg.RetransmitBase << uint(a.retransTries-1)
		if c := h.retransmitCap(); backoff > c {
			backoff = c
		}
		if h.jitter != nil {
			// ±50%: uniform over [backoff/2, 3·backoff/2). Without this,
			// peers that saw the same loss event share identical schedules
			// and their retries re-collide forever.
			backoff = backoff/2 + time.Duration(float64(backoff)*h.jitter())
		}
		at := now + backoff
		// Jitter stretches individual intervals but must not stretch the
		// give-up past the cumulative 16×base budget above: clamp to the
		// absolute deadline recorded at arm time so the BEXTimeout
		// invariant survives any jitter draw.
		if a.retransDeadline != 0 && at > a.retransDeadline {
			at = a.retransDeadline
		}
		a.retransAt = at
		h.Retransmits++
		h.emit(a.retransDst, a.retransPkt)
	}
}
