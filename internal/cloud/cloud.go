// Package cloud models an IaaS deployment on top of the netsim simulator:
// regions and availability zones, physical hosts, instance types with
// 2012-era EC2 capacities, tenants, VLAN segmentation (the related-work
// baseline), VM placement and live migration.
//
// Two profiles reproduce the paper's testbeds: the Amazon EC2 eu-west-1a
// public cloud and an OpenNebula 3.0 private cloud.
package cloud

import (
	"fmt"
	"net/netip"
	"time"

	"hipcloud/internal/netsim"
)

// InstanceType captures compute capacity of a VM flavour.
type InstanceType struct {
	Name  string
	Cores int
	// Speed is the per-core speed in EC2 compute units (1 ECU ≈ a
	// 2007-era 1.0–1.2 GHz Opteron core, the cost model's reference).
	Speed float64
	MemMB int
}

// The instance types the paper's experiment used (EC2, 2012 pricing page),
// plus the OpenNebula host flavour for the private-cloud cross-check.
var (
	// Micro: 613 MB, "up to 2 ECU" in bursts; sustained throughput is far
	// lower, which is what matters for saturation experiments.
	Micro = InstanceType{Name: "t1.micro", Cores: 1, Speed: 1.0, MemMB: 613}
	// Large: 7.5 GB, 4 ECU on 2 cores.
	Large = InstanceType{Name: "m1.large", Cores: 2, Speed: 2.0, MemMB: 7680}
	// ONVirtual mirrors the private-cloud KVM flavour: slightly faster
	// cores than micro (commodity 2012 Xeon), otherwise equivalent.
	ONVirtual = InstanceType{Name: "on.virtual", Cores: 1, Speed: 1.2, MemMB: 1024}
	// ONLarge is the private-cloud database flavour.
	ONLarge = InstanceType{Name: "on.large", Cores: 2, Speed: 2.4, MemMB: 8192}
)

// Profile selects testbed characteristics.
type Profile struct {
	Name string
	// Intra-zone link characteristics between a VM and the zone switch.
	LinkLatency   time.Duration
	LinkBandwidth float64 // bytes/sec
	LinkJitter    time.Duration
	// WANLatency is the latency between the load balancer (outside the
	// cloud, as in the paper) and the zone switch.
	WANLatency time.Duration
	// Web/DB instance flavours.
	WebType, DBType InstanceType
}

// EC2 reproduces the paper's public-cloud deployment: micro web servers,
// one large DB, EU region zone eu-west-1a. Link characteristics derive
// from the paper's own measurements: iperf between two instances reached
// ≈140 Mbit/s and ICMP RTT ≈0.5 ms (Figure 3).
var EC2 = Profile{
	Name:          "amazon-ec2/eu-west-1a",
	LinkLatency:   125 * time.Microsecond, // ≈0.5ms RTT via switch
	LinkBandwidth: 17.5e6,                 // ≈140 Mbit/s
	LinkJitter:    30 * time.Microsecond,
	// Clients/jmeter ran outside the cloud: a realistic WAN leg puts the
	// basic response-time baseline in the paper's ~116 ms regime
	// (connect + request + one window-growth round trip + service).
	WANLatency: 15 * time.Millisecond,
	WebType:    Micro,
	DBType:     Large,
}

// OpenNebula is the private-cloud cross-check profile: a quieter LAN with
// lower latency and a faster physical network.
var OpenNebula = Profile{
	Name:          "opennebula-3.0/private",
	LinkLatency:   80 * time.Microsecond,
	LinkBandwidth: 60e6, // ≈480 Mbit/s on the private GbE
	LinkJitter:    10 * time.Microsecond,
	WANLatency:    5 * time.Millisecond,
	WebType:       ONVirtual,
	DBType:        ONLarge,
}

// Tenant identifies a cloud subscriber; VLAN ids segment tenants in the
// related-work baseline.
type Tenant struct {
	Name string
	VLAN uint16
}

// VM is one virtual machine: a simulated node plus cloud metadata.
type VM struct {
	Name     string
	Node     *netsim.Node
	Type     InstanceType
	Tenant   *Tenant
	Zone     *Zone
	PhysHost int // physical host index within the zone (co-residency)
	addrs    []netip.Addr
	// link is the access link of the current primary interface (replaced
	// on Migrate); fault injection flaps or severs it.
	link *netsim.Link
}

// Addr returns the VM's primary address.
func (v *VM) Addr() netip.Addr { return v.addrs[0] }

// AccessLink returns the link behind the VM's primary interface.
func (v *VM) AccessLink() *netsim.Link { return v.link }

// Crash powers the VM off: its node stops sending and receiving, but
// simulated processes keep running (they just can't reach the network),
// matching a hypervisor pause / host failure from the network's view.
func (v *VM) Crash() { v.Node.Down = true }

// Restart powers a crashed VM back on in place, with its addresses and
// routes intact (a host reboot that recovers the same instance).
func (v *VM) Restart() { v.Node.Down = false }

// RestartIn recovers a crashed VM into zone `to`, reusing the migration
// machinery: power back on, then attach a fresh interface in the target
// zone. The new primary address is returned; transports bound to the old
// locator need HIP UPDATE (or a reconnect) to follow, exactly as for a
// live migration.
func (v *VM) RestartIn(to *Zone) netip.Addr {
	v.Node.Down = false
	return v.Zone.cloud.Migrate(v, to)
}

// DefaultHostCapacity is how many VMs a physical host accepts unless the
// zone overrides it (two, matching the co-residency setup of §III-B).
const DefaultHostCapacity = 2

// Zone is one availability zone: a switch with VMs attached.
type Zone struct {
	Name   string
	Router *netsim.Node
	cloud  *Cloud
	nextIP uint32
	subnet netip.Prefix
	vms    []*VM
	// HostCapacity is the number of VMs a physical host in this zone
	// accepts (0 = DefaultHostCapacity). Placement is first-fit: each
	// host fills to capacity before the next opens, so consecutive
	// launches co-reside and an evacuation packs into surviving hosts.
	HostCapacity int
	// hostLoad tracks resident VMs per physical host index; failedHosts
	// marks hosts removed from placement (Evacuate).
	hostLoad    []int
	failedHosts map[int]bool
	// uplinks maps peer zones to the next-hop address reaching them.
	uplinks map[*Zone]netip.Addr
	// links retains the inter-zone link objects for fault injection.
	links map[*Zone]*netsim.Link
}

// VMs returns the VMs currently resident in the zone, in arrival order
// (launches append; migrations move membership to the target zone).
func (z *Zone) VMs() []*VM { return z.vms }

func (z *Zone) capacity() int {
	if z.HostCapacity > 0 {
		return z.HostCapacity
	}
	return DefaultHostCapacity
}

// placeVM assigns a physical host first-fit, skipping failed hosts and
// opening a fresh host when every existing one is full.
func (z *Zone) placeVM() int {
	for i, n := range z.hostLoad {
		if z.failedHosts[i] || n >= z.capacity() {
			continue
		}
		z.hostLoad[i]++
		return i
	}
	z.hostLoad = append(z.hostLoad, 1)
	return len(z.hostLoad) - 1
}

// releaseVM returns a VM's slot on its physical host.
func (z *Zone) releaseVM(host int) {
	if host >= 0 && host < len(z.hostLoad) && z.hostLoad[host] > 0 {
		z.hostLoad[host]--
	}
}

// Load reports the zone's resident VM count (live, post-migration).
func (z *Zone) Load() int {
	total := 0
	for _, n := range z.hostLoad {
		total += n
	}
	return total
}

// HostVMs returns the VMs resident on one physical host, in arrival order.
func (z *Zone) HostVMs(host int) []*VM {
	var out []*VM
	for _, vm := range z.vms {
		if vm.PhysHost == host {
			out = append(out, vm)
		}
	}
	return out
}

// Cloud is a deployment of one or more zones.
type Cloud struct {
	Profile Profile
	Sim     *netsim.Sim
	Net     *netsim.Network
	Zones   []*Zone
	vms     map[string]*VM
	// vlanFilter, when enabled, drops traffic between VMs of different
	// VLANs at the zone router (the 802.1Q baseline of §VI-A).
	vlanFilter bool
	vlanOf     map[netip.Addr]uint16
	external   int // count of external hosts for addressing
}

// New creates a cloud with one zone ("a") on the given network.
func New(n *netsim.Network, profile Profile) *Cloud {
	c := &Cloud{
		Profile: profile,
		Sim:     n.Sim(),
		Net:     n,
		vms:     make(map[string]*VM),
		vlanOf:  make(map[netip.Addr]uint16),
	}
	c.AddZone("a")
	return c
}

// AddZone creates a new availability zone.
func (c *Cloud) AddZone(name string) *Zone {
	idx := len(c.Zones)
	z := &Zone{
		Name:        fmt.Sprintf("%s/zone-%s", c.Profile.Name, name),
		Router:      c.Net.AddRouter(fmt.Sprintf("zsw-%s-%d", name, idx)),
		cloud:       c,
		subnet:      netip.MustParsePrefix(fmt.Sprintf("10.%d.0.0/16", 10+idx)),
		failedHosts: make(map[int]bool),
		uplinks:     make(map[*Zone]netip.Addr),
		links:       make(map[*Zone]*netsim.Link),
	}
	// Inter-zone links: connect each new zone to every existing one.
	for _, prev := range c.Zones {
		a := c.interAddr()
		b := c.interAddr()
		l := c.Net.Connect(prev.Router, a, z.Router, b, netsim.Link{
			Latency:   750 * time.Microsecond,
			Bandwidth: c.Profile.LinkBandwidth,
		})
		prev.Router.AddRoute(z.subnet, b)
		z.Router.AddRoute(prev.subnet, a)
		prev.uplinks[z] = b
		z.uplinks[prev] = a
		prev.links[z] = l
		z.links[prev] = l
	}
	c.Zones = append(c.Zones, z)
	return z
}

// interAddr allocates addresses for inter-zone and external links.
func (c *Cloud) interAddr() netip.Addr {
	c.external++
	return netip.AddrFrom4([4]byte{172, 16, byte(c.external >> 8), byte(c.external)})
}

func (z *Zone) allocIP() netip.Addr {
	z.nextIP++
	b := z.subnet.Addr().As4()
	return netip.AddrFrom4([4]byte{b[0], b[1], byte(z.nextIP >> 8), byte(1 + z.nextIP&0xff)})
}

// Launch starts a VM of the given type in the zone. Placement is
// first-fit at Zone.HostCapacity VMs per physical host, so consecutive
// launches of different tenants co-reside — the multi-tenancy threat the
// paper opens with.
func (z *Zone) Launch(name string, t InstanceType, tenant *Tenant) *VM {
	node := z.cloud.Net.AddNode(name, t.Cores, t.Speed)
	addr := z.allocIP()
	gw := z.allocIP()
	l := z.cloud.Net.Connect(node, addr, z.Router, gw, netsim.Link{
		Latency:   z.cloud.Profile.LinkLatency,
		Bandwidth: z.cloud.Profile.LinkBandwidth,
		Jitter:    z.cloud.Profile.LinkJitter,
	})
	node.AddDefaultRoute(gw)
	vm := &VM{
		Name:     name,
		Node:     node,
		Type:     t,
		Tenant:   tenant,
		Zone:     z,
		PhysHost: z.placeVM(),
		addrs:    []netip.Addr{addr},
		link:     l,
	}
	z.vms = append(z.vms, vm)
	z.cloud.vms[name] = vm
	if tenant != nil {
		z.cloud.vlanOf[addr] = tenant.VLAN
	}
	return vm
}

// VM returns a VM by name.
func (c *Cloud) VM(name string) *VM { return c.vms[name] }

// InterZoneLink returns the link between two zones' routers, or nil if
// they are the same zone or not directly connected — the handle a fault
// schedule uses for zone-level partitions.
func (c *Cloud) InterZoneLink(a, b *Zone) *netsim.Link { return a.links[b] }

// CoResident reports whether two VMs share a physical host — the paper's
// §III-B scenario of competing tenants on one machine.
func CoResident(a, b *VM) bool {
	return a.Zone == b.Zone && a.PhysHost == b.PhysHost
}

// AttachExternal connects an external host (client, load balancer, power
// user) to the first zone's router over the WAN link.
func (c *Cloud) AttachExternal(name string, cores int, speed float64) *netsim.Node {
	return c.AttachExternalLink(name, cores, speed, c.Profile.WANLatency, c.Profile.LinkBandwidth*4)
}

// AttachExternalLink is AttachExternal with explicit link characteristics
// (e.g. a Teredo relay on a thinner pipe).
func (c *Cloud) AttachExternalLink(name string, cores int, speed float64, latency time.Duration, bandwidth float64) *netsim.Node {
	node := c.Net.AddNode(name, cores, speed)
	a := c.interAddr()
	b := c.interAddr()
	z := c.Zones[0]
	c.Net.Connect(node, a, z.Router, b, netsim.Link{
		Latency:   latency,
		Bandwidth: bandwidth,
	})
	node.AddDefaultRoute(b)
	// External hosts live in 172.16/16; other zones reach them via zone 0.
	ext := netip.MustParsePrefix("172.16.0.0/16")
	for _, zz := range c.Zones[1:] {
		if hop, ok := zz.uplinks[z]; ok {
			zz.Router.AddRoute(ext, hop)
		}
	}
	return node
}

// EnableVLANFilter turns on 802.1Q-style segmentation at every zone
// router: traffic between VMs of different tenants is dropped (Eucalyptus'
// default policy, per the paper's related work). Traffic involving
// external or same-tenant addresses passes.
func (c *Cloud) EnableVLANFilter() {
	c.vlanFilter = true
	filter := func(pkt *netsim.Packet) bool {
		sv, sok := c.vlanOf[pkt.Src.Addr()]
		dv, dok := c.vlanOf[pkt.Dst.Addr()]
		if sok && dok && sv != dv {
			return false
		}
		return true
	}
	for _, z := range c.Zones {
		z.Router.Filter = filter
	}
}

// Migrate moves a VM to another zone: the node gets a new interface in
// the target zone and the old attachment is abandoned (the address
// changes, which is exactly why the paper needs HIP UPDATE to keep
// connections alive). It returns the VM's new address.
func (c *Cloud) Migrate(vm *VM, to *Zone) netip.Addr {
	addr := to.allocIP()
	gw := to.allocIP()
	l := c.Net.Connect(vm.Node, addr, to.Router, gw, netsim.Link{
		Latency:   c.Profile.LinkLatency,
		Bandwidth: c.Profile.LinkBandwidth,
		Jitter:    c.Profile.LinkJitter,
	})
	vm.Node.AddDefaultRoute(gw)
	// The fresh attachment becomes primary: control traffic and replies
	// must source from the live locator, not the abandoned one.
	vm.Node.PromoteAddr(addr)
	vm.Zone.releaseVM(vm.PhysHost)
	if vm.Zone != to {
		vm.Zone.removeVM(vm)
		to.vms = append(to.vms, vm)
	}
	vm.Zone = to
	vm.PhysHost = to.placeVM()
	vm.addrs = append([]netip.Addr{addr}, vm.addrs...)
	vm.link = l
	if vm.Tenant != nil {
		c.vlanOf[addr] = vm.Tenant.VLAN
	}
	return addr
}

// removeVM drops a VM from the zone's residency list, preserving order.
func (z *Zone) removeVM(vm *VM) {
	for i, v := range z.vms {
		if v == vm {
			z.vms = append(z.vms[:i], z.vms[i+1:]...)
			return
		}
	}
}

// Evacuate fails physical host `host` in zone z: its access links go
// down and every resident VM rehomes at once via Migrate — the
// synchronized locator change that fires a HIP UPDATE storm from every
// association those VMs hold. VMs move in arrival order, each to the
// least-loaded zone (first-fit within it, skipping failed hosts), so the
// herd packs into surviving capacity. It returns the moved VMs in the
// order they moved; callers propagate the new locators (hipsim MoveTo,
// RVS refresh, DNS update) exactly as for a planned migration.
func (c *Cloud) Evacuate(z *Zone, host int) []*VM {
	z.failedHosts[host] = true
	var moved []*VM
	for _, vm := range z.HostVMs(host) {
		if vm.link != nil {
			// The dying host's uplink goes dark: in-flight packets to the
			// old locator are lost, not delivered by a ghost.
			vm.link.Down = true
		}
		c.Migrate(vm, c.leastLoadedZone())
		moved = append(moved, vm)
	}
	return moved
}

// leastLoadedZone picks the zone with the fewest resident VMs (first in
// index order on ties — deterministic).
func (c *Cloud) leastLoadedZone() *Zone {
	best := c.Zones[0]
	for _, z := range c.Zones[1:] {
		if z.Load() < best.Load() {
			best = z
		}
	}
	return best
}
