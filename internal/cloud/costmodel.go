package cloud

import (
	"time"

	"hipcloud/internal/hip"
	"hipcloud/internal/tlslite"
)

// Cryptographic cost model, calibrated for one EC2 compute unit (≈ a
// 1.0–1.2 GHz 2007 Opteron core, no AES-NI), the reference core of
// netsim.CPU. Sources: openssl speed numbers published for that hardware
// class, scaled to the sustained (not burst) throughput of 2012 micro
// instances.
//
// These constants feed both the HIP stack (hip.CostModel) and the SSL
// baseline (tlslite.Costs), so the "essentially the same cryptographic
// algorithms" property the paper relies on holds by construction.
const (
	// RSA-2048: ~11ms sign / ~0.33ms verify on the reference core.
	RSASign   = 11 * time.Millisecond
	RSAVerify = 330 * time.Microsecond
	// ECDSA P-256 (no optimized field arithmetic in 2012 OpenSSL):
	// ~2.4ms sign / ~2.9ms verify.
	ECDSASign   = 2400 * time.Microsecond
	ECDSAVerify = 2900 * time.Microsecond
	// ECDH P-256 shared-secret computation and keygen.
	DHCompute = 2600 * time.Microsecond
	DHKeygen  = 2400 * time.Microsecond
	// One SHA-256 compression (puzzle attempt on a short buffer).
	HashOp = 1200 * time.Nanosecond
	// AES-128 + HMAC-SHA-256 over the data path: ~4.5 MB/s combined on a
	// throttled 2012 micro's sustained share of the reference core ->
	// 220 ns/byte (t1.micro sustains a fraction of its burst ECUs).
	// Applied to payload bytes once per direction-endpoint.
	SymmetricNsPerByte = 220.0
	// Shim processing per packet: HIT<->locator table work, SPI demux,
	// userspace/kernel crossings of the 3.5-layer implementation.
	ShimPerPacket = 15 * time.Microsecond
	// Extra IPv4<->HIT translation per packet when the application uses
	// LSIs (the paper's explanation for the LSI penalty in Figure 3).
	LSITranslation = 55 * time.Microsecond
	// Plain (insecure) per-packet kernel cost.
	PlainPerPacket = 2 * time.Microsecond
)

// HIPCosts returns the cost model for HIP hosts. useRSA selects RSA-2048
// host identities (the 2012 HIPL default the paper ran); otherwise the
// ECDSA costs of its "latest version of HIP supports elliptic-curve
// cryptography" remark apply.
func HIPCosts(useRSA bool) hip.CostModel {
	m := hip.CostModel{
		DHCompute:          DHCompute,
		DHKeygen:           DHKeygen,
		HashOp:             HashOp,
		SymmetricNsPerByte: SymmetricNsPerByte,
		ShimPerPacket:      ShimPerPacket,
		LSITranslation:     LSITranslation,
	}
	if useRSA {
		m.Sign, m.Verify = RSASign, RSAVerify
	} else {
		m.Sign, m.Verify = ECDSASign, ECDSAVerify
	}
	return m
}

// TLSCosts returns the matching cost model for the SSL baseline.
func TLSCosts(useRSA bool) tlslite.Costs {
	c := tlslite.Costs{
		DHKeygen:           DHKeygen,
		DHCompute:          DHCompute,
		SymmetricNsPerByte: SymmetricNsPerByte,
	}
	if useRSA {
		c.Sign, c.Verify = RSASign, RSAVerify
	} else {
		c.Sign, c.Verify = ECDSASign, ECDSAVerify
	}
	return c
}
