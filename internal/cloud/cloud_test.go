package cloud

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"hipcloud/internal/netsim"
)

func TestLaunchAndConnectivity(t *testing.T) {
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	c := New(n, EC2)
	acme := &Tenant{Name: "acme", VLAN: 10}
	w1 := c.Zones[0].Launch("web1", Micro, acme)
	db := c.Zones[0].Launch("db1", Large, acme)
	if w1.Type.Cores != 1 || db.Type.Cores != 2 {
		t.Fatal("instance types not applied")
	}
	var rtt time.Duration
	var err error
	s.Spawn("ping", func(p *netsim.Proc) {
		rtt, err = w1.Node.Ping(p, db.Addr(), 64, time.Second)
	})
	s.Run(time.Second)
	s.Shutdown()
	if err != nil {
		t.Fatalf("ping: %v", err)
	}
	// RTT ≈ 4 × link latency (two links each way) ≈ 0.5ms + jitter.
	if rtt < 400*time.Microsecond || rtt > 900*time.Microsecond {
		t.Fatalf("intra-zone rtt = %v", rtt)
	}
}

func TestCoResidency(t *testing.T) {
	s := netsim.New(1)
	c := New(netsim.NewNetwork(s), EC2)
	acme := &Tenant{Name: "acme", VLAN: 10}
	evil := &Tenant{Name: "evil", VLAN: 20}
	a := c.Zones[0].Launch("a", Micro, acme)
	b := c.Zones[0].Launch("b", Micro, evil)
	cc := c.Zones[0].Launch("c", Micro, acme)
	if !CoResident(a, b) {
		t.Fatal("first two launches should co-reside (two VMs per host)")
	}
	if CoResident(a, cc) {
		t.Fatal("third VM should land on a new physical host")
	}
}

func TestInterZoneRouting(t *testing.T) {
	s := netsim.New(1)
	c := New(netsim.NewNetwork(s), EC2)
	z2 := c.AddZone("b")
	v1 := c.Zones[0].Launch("v1", Micro, nil)
	v2 := z2.Launch("v2", Micro, nil)
	var ok bool
	s.Spawn("ping", func(p *netsim.Proc) {
		if _, err := v1.Node.Ping(p, v2.Addr(), 64, time.Second); err == nil {
			ok = true
		}
	})
	s.Run(2 * time.Second)
	s.Shutdown()
	if !ok {
		t.Fatal("inter-zone ping failed")
	}
}

func TestExternalAttachment(t *testing.T) {
	s := netsim.New(1)
	c := New(netsim.NewNetwork(s), EC2)
	z2 := c.AddZone("b")
	lb := c.AttachExternal("lb", 4, 4)
	v := c.Zones[0].Launch("v", Micro, nil)
	v2 := z2.Launch("v2", Micro, nil)
	results := map[string]bool{}
	s.Spawn("ping", func(p *netsim.Proc) {
		_, err := lb.Ping(p, v.Addr(), 64, time.Second)
		results["lb->zone0"] = err == nil
		_, err = v2.Node.Ping(p, lb.Addr(), 64, time.Second)
		results["zone1->lb"] = err == nil
	})
	s.Run(3 * time.Second)
	s.Shutdown()
	for k, ok := range results {
		if !ok {
			t.Fatalf("%s unreachable", k)
		}
	}
}

func TestVLANFilterBlocksCrossTenant(t *testing.T) {
	s := netsim.New(1)
	c := New(netsim.NewNetwork(s), EC2)
	acme := &Tenant{Name: "acme", VLAN: 10}
	evil := &Tenant{Name: "evil", VLAN: 20}
	a1 := c.Zones[0].Launch("a1", Micro, acme)
	a2 := c.Zones[0].Launch("a2", Micro, acme)
	e1 := c.Zones[0].Launch("e1", Micro, evil)
	c.EnableVLANFilter()
	var sameOK, crossOK bool
	s.Spawn("ping", func(p *netsim.Proc) {
		_, err := a1.Node.Ping(p, a2.Addr(), 64, 500*time.Millisecond)
		sameOK = err == nil
		_, err = a1.Node.Ping(p, e1.Addr(), 64, 500*time.Millisecond)
		crossOK = err == nil
	})
	s.Run(3 * time.Second)
	s.Shutdown()
	if !sameOK {
		t.Fatal("same-tenant traffic blocked by VLAN filter")
	}
	if crossOK {
		t.Fatal("cross-tenant traffic passed VLAN filter")
	}
}

func TestMigrationChangesAddressAndRoutes(t *testing.T) {
	s := netsim.New(1)
	c := New(netsim.NewNetwork(s), EC2)
	z2 := c.AddZone("b")
	v := c.Zones[0].Launch("v", Micro, nil)
	peer := c.Zones[0].Launch("peer", Micro, nil)
	oldAddr := v.Addr()
	newAddr := c.Migrate(v, z2)
	if newAddr == oldAddr {
		t.Fatal("migration did not change address")
	}
	if !z2.subnet.Contains(newAddr) {
		t.Fatalf("new address %v outside target zone subnet %v", newAddr, z2.subnet)
	}
	if v.Addr() != newAddr {
		t.Fatal("primary address not updated")
	}
	var ok bool
	s.Spawn("ping", func(p *netsim.Proc) {
		if _, err := peer.Node.Ping(p, newAddr, 64, time.Second); err == nil {
			ok = true
		}
	})
	s.Run(2 * time.Second)
	s.Shutdown()
	if !ok {
		t.Fatal("migrated VM unreachable at new address")
	}
}

func TestEvacuatePacksIntoSurvivingHosts(t *testing.T) {
	s := netsim.New(1)
	c := New(netsim.NewNetwork(s), EC2)
	zb := c.AddZone("b")
	za := c.Zones[0]
	za.HostCapacity = 4
	var onHost0 []*VM
	for i := 0; i < 6; i++ {
		vm := za.Launch(fmt.Sprintf("vm%d", i), Micro, nil)
		if vm.PhysHost == 0 {
			onHost0 = append(onHost0, vm)
		}
	}
	if len(onHost0) != 4 {
		t.Fatalf("first-fit packed %d VMs on host 0, want 4", len(onHost0))
	}
	oldAddrs := map[*VM]netip.Addr{}
	oldLinks := map[*VM]*netsim.Link{}
	for _, vm := range onHost0 {
		oldAddrs[vm] = vm.Addr()
		oldLinks[vm] = vm.AccessLink()
	}
	moved := c.Evacuate(za, 0)
	if len(moved) != 4 {
		t.Fatalf("evacuated %d VMs, want 4", len(moved))
	}
	for _, vm := range moved {
		if vm.Addr() == oldAddrs[vm] {
			t.Fatalf("%s kept its locator across evacuation", vm.Name)
		}
		if !oldLinks[vm].Down {
			t.Fatalf("%s's old access link still up", vm.Name)
		}
		if vm.Zone == za && vm.PhysHost == 0 {
			t.Fatalf("%s still placed on the failed host", vm.Name)
		}
	}
	// The herd spread: the empty zone b absorbed the bulk of it.
	if zb.Load() == 0 {
		t.Fatal("least-loaded zone b received no evacuated VMs")
	}
	if za.Load()+zb.Load() != 6 {
		t.Fatalf("loads za=%d zb=%d, want total 6", za.Load(), zb.Load())
	}
	// A later launch must not land on the failed host either.
	late := za.Launch("late", Micro, nil)
	if late.PhysHost == 0 {
		t.Fatal("launch placed a VM on a failed host")
	}
	// Zone membership moved with the VMs.
	for _, vm := range moved {
		if vm.Zone == za {
			continue
		}
		found := false
		for _, v := range vm.Zone.VMs() {
			if v == vm {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s resident in %s but missing from its VM list", vm.Name, vm.Zone.Name)
		}
	}
	s.Shutdown()
}

func TestCostModelsAgreeAcrossProtocols(t *testing.T) {
	h := HIPCosts(true)
	s := TLSCosts(true)
	if h.Sign != s.Sign || h.Verify != s.Verify || h.DHCompute != s.DHCompute {
		t.Fatal("HIP and SSL cost models diverge on shared primitives")
	}
	if h.SymmetricNsPerByte != s.SymmetricNsPerByte {
		t.Fatal("symmetric costs diverge")
	}
	he := HIPCosts(false)
	if he.Sign >= h.Sign {
		t.Fatal("ECDSA signing should be cheaper than RSA-2048")
	}
	if h.LSITranslation <= 0 || h.ShimPerPacket <= 0 {
		t.Fatal("shim costs must be positive")
	}
}

func TestProfilesDiffer(t *testing.T) {
	if EC2.LinkBandwidth >= OpenNebula.LinkBandwidth {
		t.Fatal("private cloud should have the faster LAN")
	}
	if EC2.WebType != Micro || EC2.DBType != Large {
		t.Fatal("EC2 profile instance types wrong")
	}
	var _ netip.Addr // keep netip import for helpers
}
