// Package proxy implements the paper's end-to-middle termination point: a
// reverse HTTP proxy / load balancer (HAProxy in the original testbed)
// that accepts plain HTTP from consumers and forwards requests to backend
// web servers over the secured transport (basic, HIP or SSL). Round-robin
// is the paper's configuration; least-connections is provided for the
// ablation benchmarks.
package proxy

import (
	"bufio"
	"errors"
	"net/netip"
	"time"

	"hipcloud/internal/metrics"
	"hipcloud/internal/microhttp"
	"hipcloud/internal/netsim"
	"hipcloud/internal/secio"
)

// FrontPort is the port consumers connect to.
const FrontPort uint16 = 8080

// Policy selects the balancing algorithm.
type Policy int

// Balancing policies.
const (
	RoundRobin Policy = iota
	LeastConn
)

func (p Policy) String() string {
	if p == LeastConn {
		return "leastconn"
	}
	return "roundrobin"
}

// ErrNoBackend is returned when no healthy backend exists.
var ErrNoBackend = errors.New("proxy: no healthy backend")

// Backend is one upstream web server.
type Backend struct {
	Name string
	// Addr is the backend identifier on the backend transport: an IP for
	// basic/SSL, a HIT or LSI for HIP.
	Addr netip.Addr
	Port uint16

	healthy bool
	active  int // in-flight requests (least-conn)
	Served  uint64
	pool    []*backendConn
	free    []*backendConn
	waitQ   *netsim.WaitQueue
}

// Healthy reports the backend's health-check status.
func (b *Backend) Healthy() bool { return b.healthy }

type backendConn struct {
	c  secio.Conn
	br *bufio.Reader
}

// Proxy is the load balancer.
type Proxy struct {
	Name string
	// Front accepts consumer connections (plain in the paper).
	Front *secio.Transport
	// Back dials backends (basic/HIP/SSL — the measured variable).
	Back     *secio.Transport
	Policy   Policy
	Backends []*Backend
	// PoolSize bounds persistent connections per backend (default 32).
	PoolSize int
	// PerRequestCPU models HAProxy's per-request processing.
	PerRequestCPU time.Duration
	// HealthInterval enables periodic backend health checks when > 0.
	HealthInterval time.Duration

	rrNext int
	// Stats.
	Served, Errors uint64
	Latency        metrics.Histogram
}

// AddBackend registers an upstream.
func (x *Proxy) AddBackend(name string, addr netip.Addr, port uint16) *Backend {
	b := &Backend{
		Name: name, Addr: addr, Port: port, healthy: true,
		waitQ: netsim.NewWaitQueue(x.Front.Stack.Node().Net().Sim()),
	}
	x.Backends = append(x.Backends, b)
	return b
}

func (x *Proxy) poolSize() int {
	if x.PoolSize > 0 {
		return x.PoolSize
	}
	return 32
}

// pick chooses a healthy backend per policy.
func (x *Proxy) pick() (*Backend, error) {
	healthy := make([]*Backend, 0, len(x.Backends))
	for _, b := range x.Backends {
		if b.healthy {
			healthy = append(healthy, b)
		}
	}
	if len(healthy) == 0 {
		if len(x.Backends) == 0 {
			return nil, ErrNoBackend
		}
		// Every backend is marked down. Failing fast forever would leave
		// the proxy dead even after backends recover when no health loop
		// is running, so route to one anyway: a success flips it healthy
		// again (passive recovery), a failure costs one more 502.
		healthy = x.Backends
	}
	switch x.Policy {
	case LeastConn:
		best := healthy[0]
		for _, b := range healthy[1:] {
			if b.active < best.active {
				best = b
			}
		}
		return best, nil
	default:
		b := healthy[x.rrNext%len(healthy)]
		x.rrNext++
		return b, nil
	}
}

// acquire borrows a pooled connection to backend b.
func (x *Proxy) acquire(p *netsim.Proc, b *Backend) (*backendConn, error) {
	for {
		if len(b.free) > 0 {
			bc := b.free[len(b.free)-1]
			b.free = b.free[:len(b.free)-1]
			bc.c.Rebind(p)
			return bc, nil
		}
		if len(b.pool) < x.poolSize() {
			c, err := x.Back.Dial(p, b.Addr, b.Port)
			if err != nil {
				return nil, err
			}
			bc := &backendConn{c: c, br: bufio.NewReader(c)}
			b.pool = append(b.pool, bc)
			return bc, nil
		}
		b.waitQ.Wait(p, 0)
	}
}

func (x *Proxy) release(b *Backend, bc *backendConn, broken bool) {
	if broken {
		bc.c.Close()
		for i, pc := range b.pool {
			if pc == bc {
				b.pool = append(b.pool[:i], b.pool[i+1:]...)
				break
			}
		}
	} else {
		b.free = append(b.free, bc)
	}
	b.waitQ.WakeOne()
}

// Run accepts consumer connections and proxies them. Call from Spawn.
func (x *Proxy) Run(p *netsim.Proc) {
	l := x.Front.MustListen(FrontPort)
	if x.HealthInterval > 0 {
		p.Spawn(x.Name+"/health", x.healthLoop)
	}
	for {
		raw, err := l.AcceptRaw(p, 0)
		if err != nil {
			return
		}
		conn := raw
		p.Spawn(x.Name+"/conn", func(hp *netsim.Proc) {
			c, err := x.Front.ServerConn(hp, conn)
			if err != nil {
				return
			}
			defer c.Close()
			br := bufio.NewReader(c)
			node := x.Front.Stack.Node()
			for {
				req, err := microhttp.ReadRequest(br)
				if err != nil {
					return
				}
				start := hp.Now()
				node.CPU().Use(hp, x.PerRequestCPU)
				resp := x.forward(hp, req)
				if resp.Status >= 500 {
					x.Errors++
				}
				if err := microhttp.WriteResponse(c, resp); err != nil {
					return
				}
				x.Served++
				x.Latency.Add(hp.Now() - start)
				if req.WantsClose() {
					return
				}
			}
		})
	}
}

// forward relays one request to a backend. A connection-level failure
// marks the backend unhealthy immediately (instead of waiting for the
// next periodic probe) and fails the request over to another backend:
// always when the request never reached the old one, and for idempotent
// GETs even when it might have (RFC 7231 §4.2.2 — a replayed GET is
// safe; anything else surfaces the 502 to the client).
func (x *Proxy) forward(p *netsim.Proc, req *microhttp.Request) *microhttp.Response {
	var lastErr error
	for try := 0; try <= len(x.Backends); try++ {
		b, err := x.pick()
		if err != nil {
			return &microhttp.Response{Status: 503, Body: []byte(err.Error())}
		}
		resp, sent, err := x.forwardTo(p, b, req)
		if err == nil {
			return resp
		}
		lastErr = err
		b.healthy = false
		if sent && req.Method != "GET" {
			break
		}
	}
	return &microhttp.Response{Status: 502, Body: []byte(lastErr.Error())}
}

// forwardTo relays req to one backend. sent reports whether the request
// may have reached the backend when err != nil (it governs replay safety).
func (x *Proxy) forwardTo(p *netsim.Proc, b *Backend, req *microhttp.Request) (resp *microhttp.Response, sent bool, err error) {
	b.active++
	defer func() { b.active-- }()
	bc, err := x.acquire(p, b)
	if err != nil {
		return nil, false, err
	}
	fwd := *req
	fwd.Headers = map[string]string{"X-Forwarded-By": x.Name}
	for k, v := range req.Headers {
		fwd.Headers[k] = v
	}
	resp, err = microhttp.RoundTrip(bc.c, bc.br, &fwd)
	if err != nil {
		x.release(b, bc, true)
		return nil, true, err
	}
	x.release(b, bc, resp.WantsClose())
	b.Served++
	b.healthy = true
	return resp, true, nil
}

// healthLoop probes each backend with a cheap request.
func (x *Proxy) healthLoop(p *netsim.Proc) {
	for {
		p.Sleep(x.HealthInterval)
		for _, b := range x.Backends {
			bc, err := x.acquire(p, b)
			if err != nil {
				b.healthy = false
				continue
			}
			resp, err := microhttp.RoundTrip(bc.c, bc.br, &microhttp.Request{Method: "GET", Path: "/home"})
			ok := err == nil && resp.Status == 200
			x.release(b, bc, err != nil)
			b.healthy = ok
		}
	}
}
