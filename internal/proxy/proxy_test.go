package proxy

import (
	"bufio"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"hipcloud/internal/cloud"
	"hipcloud/internal/hip"
	"hipcloud/internal/hipsim"
	"hipcloud/internal/identity"
	"hipcloud/internal/microhttp"
	"hipcloud/internal/netsim"
	"hipcloud/internal/rubis"
	"hipcloud/internal/secio"
	"hipcloud/internal/simtcp"
	"hipcloud/internal/workload"
)

// deployment is the paper's Figure 1 architecture: clients -> LB (outside
// the cloud) -> 3 web VMs -> 1 DB VM.
type deployment struct {
	sim  *netsim.Sim
	cliT *secio.Transport
	lb   *Proxy
	lbIP netip.Addr
	webs []*rubis.WebServer
	db   *rubis.Database
}

func deploy(t *testing.T, kind secio.Kind, policy Policy) *deployment {
	t.Helper()
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	c := cloud.New(n, cloud.EC2)
	tenant := &cloud.Tenant{Name: "t", VLAN: 1}
	dbVM := c.Zones[0].Launch("db1", cloud.Large, tenant)
	webVMs := []*cloud.VM{
		c.Zones[0].Launch("web1", cloud.Micro, tenant),
		c.Zones[0].Launch("web2", cloud.Micro, tenant),
		c.Zones[0].Launch("web3", cloud.Micro, tenant),
	}
	lbNode := c.AttachExternal("lb", 8, 4)
	clientNode := c.AttachExternal("clients", 8, 8)
	db := rubis.Populate(7, 200, 1000)

	plain := func(node *netsim.Node) *secio.Transport {
		return &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(node, simtcp.NewPlainFabric(node))}
	}
	var reg *hipsim.Registry
	mk := func(node *netsim.Node) (*secio.Transport, netip.Addr) {
		switch kind {
		case secio.HIP:
			id := identity.MustGenerate(identity.AlgECDSA)
			h, err := hip.NewHost(hip.Config{Identity: id, Locator: node.Addr(), Costs: cloud.HIPCosts(true)})
			if err != nil {
				t.Fatal(err)
			}
			f := hipsim.New(node, h, reg)
			return &secio.Transport{Kind: secio.HIP, Stack: simtcp.NewStack(node, f)}, reg.LSI(id.HIT())
		case secio.SSL:
			id := identity.MustGenerate(identity.AlgECDSA)
			return &secio.Transport{
				Kind: secio.SSL, Identity: id, Costs: cloud.TLSCosts(false),
				Stack: simtcp.NewStack(node, simtcp.NewPlainFabric(node)),
			}, node.Addr()
		default:
			return plain(node), node.Addr()
		}
	}
	if kind == secio.HIP {
		reg = hipsim.NewRegistry()
	}
	dbT, dbAddr := mk(dbVM.Node)
	s.Spawn("db", (&rubis.DBServer{DB: db, Transport: dbT}).Run)
	var webs []*rubis.WebServer
	var webAddrs []netip.Addr
	for i, vm := range webVMs {
		wt, waddr := mk(vm.Node)
		ws := &rubis.WebServer{
			Name:      vm.Name,
			Config:    rubis.DefaultWebConfig,
			Transport: wt,
			DB:        rubis.NewDBClient(wt, dbAddr, rubis.DefaultWebConfig.DBPool),
		}
		webs = append(webs, ws)
		webAddrs = append(webAddrs, waddr)
		s.Spawn(vm.Name, ws.Run)
		_ = i
	}
	lbFront := plain(lbNode)
	var lbBack *secio.Transport
	switch kind {
	case secio.Basic:
		lbBack = lbFront
	case secio.SSL:
		// SSL client side shares the plain stream stack.
		lbBack = &secio.Transport{Kind: secio.SSL, Stack: lbFront.Stack, Costs: cloud.TLSCosts(false)}
	case secio.HIP:
		lbBack, _ = mk(lbNode)
	}
	lb := &Proxy{
		Name:          "haproxy",
		Front:         lbFront,
		Back:          lbBack,
		Policy:        policy,
		PerRequestCPU: 50 * time.Microsecond,
	}
	for i, a := range webAddrs {
		lb.AddBackend(webs[i].Name, a, rubis.WebPort)
	}
	s.Spawn("lb", lb.Run)
	return &deployment{
		sim:  s,
		cliT: plain(clientNode),
		lb:   lb,
		lbIP: lbNode.Addr(),
		webs: webs,
		db:   db,
	}
}

func TestProxyRoundRobinSpreadsLoad(t *testing.T) {
	d := deploy(t, secio.Basic, RoundRobin)
	mix := rubis.NewMix(3, 1000, 200)
	w := &workload.ClosedLoop{
		Transport: d.cliT, Target: d.lbIP, Port: FrontPort,
		Clients: 6, Duration: 5 * time.Second, NextPath: mix.Next,
	}
	res := w.Run(d.sim)
	d.sim.Run(20 * time.Second)
	d.sim.Shutdown()
	if res.Completed < 50 {
		t.Fatalf("completed = %d (errors=%d)", res.Completed, res.Errors)
	}
	total := uint64(0)
	for _, b := range d.lb.Backends {
		if b.Served == 0 {
			t.Fatalf("backend %s served nothing", b.Name)
		}
		total += b.Served
	}
	// Round robin: no backend should carry more than half the load.
	for _, b := range d.lb.Backends {
		if b.Served > total/2+1 {
			t.Fatalf("backend %s served %d of %d — not balanced", b.Name, b.Served, total)
		}
	}
}

func TestProxyOverHIPBackends(t *testing.T) {
	d := deploy(t, secio.HIP, RoundRobin)
	mix := rubis.NewMix(3, 1000, 200)
	w := &workload.ClosedLoop{
		Transport: d.cliT, Target: d.lbIP, Port: FrontPort,
		Clients: 4, Duration: 4 * time.Second, NextPath: mix.Next,
	}
	res := w.Run(d.sim)
	d.sim.Run(30 * time.Second)
	d.sim.Shutdown()
	if res.Completed < 20 {
		t.Fatalf("completed = %d (errors=%d)", res.Completed, res.Errors)
	}
	// The consumer side carried no HIP: the proxy terminated it, exactly
	// the paper's end-to-middle deployment.
	if res.Errors > res.Completed/10 {
		t.Fatalf("errors = %d", res.Errors)
	}
}

func TestProxyOverSSLBackends(t *testing.T) {
	d := deploy(t, secio.SSL, RoundRobin)
	mix := rubis.NewMix(3, 1000, 200)
	w := &workload.ClosedLoop{
		Transport: d.cliT, Target: d.lbIP, Port: FrontPort,
		Clients: 4, Duration: 4 * time.Second, NextPath: mix.Next,
	}
	res := w.Run(d.sim)
	d.sim.Run(30 * time.Second)
	d.sim.Shutdown()
	if res.Completed < 20 {
		t.Fatalf("completed = %d (errors=%d)", res.Completed, res.Errors)
	}
}

func TestLeastConnPolicy(t *testing.T) {
	d := deploy(t, secio.Basic, LeastConn)
	mix := rubis.NewMix(3, 1000, 200)
	w := &workload.ClosedLoop{
		Transport: d.cliT, Target: d.lbIP, Port: FrontPort,
		Clients: 6, Duration: 3 * time.Second, NextPath: mix.Next,
	}
	res := w.Run(d.sim)
	d.sim.Run(15 * time.Second)
	d.sim.Shutdown()
	if res.Completed < 30 {
		t.Fatalf("completed = %d", res.Completed)
	}
}

func TestNoBackends503(t *testing.T) {
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	a := n.AddNode("a", 2, 1)
	b := n.AddNode("b", 2, 1)
	n.Connect(a, netip.MustParseAddr("10.0.0.1"), b, netip.MustParseAddr("10.0.0.2"), netsim.Link{Latency: time.Millisecond})
	plainA := &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(a, simtcp.NewPlainFabric(a))}
	plainB := &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(b, simtcp.NewPlainFabric(b))}
	lb := &Proxy{Name: "lb", Front: plainB, Back: plainB}
	s.Spawn("lb", lb.Run)
	var status int
	s.Spawn("client", func(p *netsim.Proc) {
		c, err := plainA.Dial(p, netip.MustParseAddr("10.0.0.2"), FrontPort)
		if err != nil {
			return
		}
		br := bufio.NewReader(c)
		resp, err := microhttp.RoundTrip(c, br, &microhttp.Request{Method: "GET", Path: "/"})
		if err == nil {
			status = resp.Status
		}
	})
	s.Run(10 * time.Second)
	s.Shutdown()
	if status != 503 {
		t.Fatalf("status = %d, want 503", status)
	}
}

// TestBackendCrashFailsOverIdempotentGET crashes a backend while the
// proxy holds a warm pooled connection to it. The next GET routed there
// dies mid-request (connection reset after retransmission give-up); the
// proxy must mark the backend unhealthy immediately and replay the GET
// on the surviving backend so the client never sees a 5xx.
func TestBackendCrashFailsOverIdempotentGET(t *testing.T) {
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	lbn := n.AddNode("lb", 4, 4)
	web1n := n.AddNode("web1", 2, 1)
	web2n := n.AddNode("web2", 2, 1)
	clin := n.AddNode("client", 2, 1)
	r := n.AddRouter("r")
	n.Connect(lbn, netip.MustParseAddr("10.0.0.1"), r, netip.MustParseAddr("10.0.0.254"), netsim.Link{Latency: time.Millisecond})
	n.Connect(web1n, netip.MustParseAddr("10.0.1.1"), r, netip.MustParseAddr("10.0.1.254"), netsim.Link{Latency: time.Millisecond})
	n.Connect(web2n, netip.MustParseAddr("10.0.2.1"), r, netip.MustParseAddr("10.0.2.254"), netsim.Link{Latency: time.Millisecond})
	n.Connect(clin, netip.MustParseAddr("10.0.3.1"), r, netip.MustParseAddr("10.0.3.254"), netsim.Link{Latency: time.Millisecond})
	lbn.AddDefaultRoute(netip.MustParseAddr("10.0.0.254"))
	web1n.AddDefaultRoute(netip.MustParseAddr("10.0.1.254"))
	web2n.AddDefaultRoute(netip.MustParseAddr("10.0.2.254"))
	clin.AddDefaultRoute(netip.MustParseAddr("10.0.3.254"))

	mkPlain := func(nd *netsim.Node) *secio.Transport {
		return &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(nd, simtcp.NewPlainFabric(nd))}
	}
	db := rubis.Populate(7, 50, 100)
	startWeb := func(name string, nd *netsim.Node, selfAddr netip.Addr) {
		wt := mkPlain(nd)
		s.Spawn(name+"/db", (&rubis.DBServer{DB: db, Transport: wt}).Run)
		ws := &rubis.WebServer{
			Name: name, Config: rubis.DefaultWebConfig, Transport: wt,
			DB: rubis.NewDBClient(wt, selfAddr, 2),
		}
		s.Spawn(name, ws.Run)
	}
	startWeb("web1", web1n, netip.MustParseAddr("10.0.1.1"))
	startWeb("web2", web2n, netip.MustParseAddr("10.0.2.1"))

	front := mkPlain(lbn)
	back := &secio.Transport{Kind: secio.Basic, Stack: front.Stack, DialTimeout: 300 * time.Millisecond}
	lb := &Proxy{Name: "lb", Front: front, Back: back}
	web1B := lb.AddBackend("web1", netip.MustParseAddr("10.0.1.1"), rubis.WebPort)
	web2B := lb.AddBackend("web2", netip.MustParseAddr("10.0.2.1"), rubis.WebPort)
	s.Spawn("lb", lb.Run)

	const total = 12
	var statuses []int
	cliT := mkPlain(clin)
	s.Spawn("client", func(p *netsim.Proc) {
		c, err := cliT.Dial(p, netip.MustParseAddr("10.0.0.1"), FrontPort)
		if err != nil {
			t.Errorf("client dial: %v", err)
			return
		}
		defer c.Close()
		br := bufio.NewReader(c)
		for i := 0; i < total; i++ {
			if i == 4 {
				// Both backends have served and hold warm pooled
				// connections; kill web1 under the proxy's feet.
				web1n.Down = true
			}
			resp, err := microhttp.RoundTrip(c, br, &microhttp.Request{Method: "GET", Path: "/home"})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			statuses = append(statuses, resp.Status)
		}
	})
	s.Run(10 * time.Minute)
	s.Shutdown()

	if len(statuses) != total {
		t.Fatalf("client completed %d of %d requests: %v", len(statuses), total, statuses)
	}
	for i, st := range statuses {
		if st != 200 {
			t.Fatalf("request %d got status %d (want 200 via failover): %v", i, st, statuses)
		}
	}
	if web1B.Healthy() {
		t.Fatal("crashed backend still marked healthy")
	}
	if !web2B.Healthy() {
		t.Fatal("surviving backend marked unhealthy")
	}
	if web2B.Served < total/2 {
		t.Fatalf("surviving backend served only %d of %d", web2B.Served, total)
	}
	if lb.Errors != 0 {
		t.Fatalf("proxy surfaced %d errors to clients", lb.Errors)
	}
}

// TestAllBackendsEvacuatedThenReturn is the storm-shaped outage: every
// backend vanishes at once (a host evacuation) and later returns. The
// proxy must (a) never double-send a non-idempotent request — not even
// across the crash boundary where it holds warm pooled connections — and
// (b) recover within one health interval of the backends returning.
func TestAllBackendsEvacuatedThenReturn(t *testing.T) {
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	lbn := n.AddNode("lb", 4, 4)
	web1n := n.AddNode("web1", 2, 1)
	web2n := n.AddNode("web2", 2, 1)
	clin := n.AddNode("client", 2, 1)
	r := n.AddRouter("r")
	n.Connect(lbn, netip.MustParseAddr("10.0.0.1"), r, netip.MustParseAddr("10.0.0.254"), netsim.Link{Latency: time.Millisecond})
	n.Connect(web1n, netip.MustParseAddr("10.0.1.1"), r, netip.MustParseAddr("10.0.1.254"), netsim.Link{Latency: time.Millisecond})
	n.Connect(web2n, netip.MustParseAddr("10.0.2.1"), r, netip.MustParseAddr("10.0.2.254"), netsim.Link{Latency: time.Millisecond})
	n.Connect(clin, netip.MustParseAddr("10.0.3.1"), r, netip.MustParseAddr("10.0.3.254"), netsim.Link{Latency: time.Millisecond})
	lbn.AddDefaultRoute(netip.MustParseAddr("10.0.0.254"))
	web1n.AddDefaultRoute(netip.MustParseAddr("10.0.1.254"))
	web2n.AddDefaultRoute(netip.MustParseAddr("10.0.2.254"))
	clin.AddDefaultRoute(netip.MustParseAddr("10.0.3.254"))

	mkPlain := func(nd *netsim.Node) *secio.Transport {
		return &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(nd, simtcp.NewPlainFabric(nd))}
	}
	// Counting backends: every served request records its path, so a
	// double-sent POST shows up as a count of 2.
	served := map[string]int{}
	startWeb := func(name string, nd *netsim.Node) {
		wt := mkPlain(nd)
		s.Spawn(name, func(p *netsim.Proc) {
			l := wt.MustListen(rubis.WebPort)
			for {
				raw, err := l.AcceptRaw(p, 0)
				if err != nil {
					return
				}
				conn := raw
				p.Spawn(name+"/c", func(hp *netsim.Proc) {
					c, err := wt.ServerConn(hp, conn)
					if err != nil {
						return
					}
					defer c.Close()
					br := bufio.NewReader(c)
					for {
						req, err := microhttp.ReadRequest(br)
						if err != nil {
							return
						}
						served[req.Path]++
						if err := microhttp.WriteResponse(c, &microhttp.Response{Status: 200, Body: []byte("ok")}); err != nil {
							return
						}
					}
				})
			}
		})
	}
	startWeb("web1", web1n)
	startWeb("web2", web2n)

	const healthInterval = time.Second
	front := mkPlain(lbn)
	back := &secio.Transport{Kind: secio.Basic, Stack: front.Stack, DialTimeout: 300 * time.Millisecond}
	lb := &Proxy{Name: "lb", Front: front, Back: back, HealthInterval: healthInterval}
	web1B := lb.AddBackend("web1", netip.MustParseAddr("10.0.1.1"), rubis.WebPort)
	web2B := lb.AddBackend("web2", netip.MustParseAddr("10.0.2.1"), rubis.WebPort)
	s.Spawn("lb", lb.Run)

	var preOutage []int
	var outagePost int
	var recoverDelay time.Duration = -1
	var downObserved bool
	cliT := mkPlain(clin)
	s.Spawn("client", func(p *netsim.Proc) {
		c, err := cliT.Dial(p, netip.MustParseAddr("10.0.0.1"), FrontPort)
		if err != nil {
			t.Errorf("client dial: %v", err)
			return
		}
		defer c.Close()
		br := bufio.NewReader(c)
		// Phase 1: warm both backends with alternating GET/POST.
		for i := 0; i < 4; i++ {
			m, path := "GET", fmt.Sprintf("/g%d", i)
			if i%2 == 1 {
				m, path = "POST", fmt.Sprintf("/p%d", i)
			}
			resp, err := microhttp.RoundTrip(c, br, &microhttp.Request{Method: m, Path: path})
			if err != nil {
				t.Errorf("warm request %d: %v", i, err)
				return
			}
			preOutage = append(preOutage, resp.Status)
		}
		// The storm: both backends evacuated at once, warm pooled
		// connections and all.
		web1n.Down = true
		web2n.Down = true
		// A POST into the total outage: it may die on either backend but
		// must not be replayed onto the other.
		if resp, err := microhttp.RoundTrip(c, br, &microhttp.Request{Method: "POST", Path: "/p-outage"}); err == nil {
			outagePost = resp.Status
		}
		// Let the health loop observe the outage.
		p.Sleep(2 * healthInterval)
		downObserved = !web1B.Healthy() && !web2B.Healthy()
		// The backends return.
		web1n.Down = false
		web2n.Down = false
		restored := p.Now()
		for i := 0; ; i++ {
			resp, err := microhttp.RoundTrip(c, br, &microhttp.Request{Method: "GET", Path: fmt.Sprintf("/r%d", i)})
			if err == nil && resp.Status == 200 {
				recoverDelay = p.Now() - restored
				return
			}
			if p.Now()-restored > 10*healthInterval {
				return
			}
			p.Sleep(100 * time.Millisecond)
		}
	})
	s.Run(10 * time.Minute)
	s.Shutdown()

	for i, st := range preOutage {
		if st != 200 {
			t.Fatalf("pre-outage request %d got %d", i, st)
		}
	}
	if outagePost == 200 {
		t.Fatal("POST during total outage reported success")
	}
	if !downObserved {
		t.Fatal("health loop never marked the evacuated backends down")
	}
	if recoverDelay < 0 {
		t.Fatal("proxy never recovered after backends returned")
	}
	if recoverDelay > healthInterval {
		t.Fatalf("recovery took %v, want within one health interval (%v)", recoverDelay, healthInterval)
	}
	// The no-double-send invariant: every POST path reached a backend at
	// most once, including the one fired into the outage.
	for path, count := range served {
		if len(path) > 1 && path[1] == 'p' && count > 1 {
			t.Fatalf("non-idempotent %s served %d times", path, count)
		}
	}
	if web1B.Served+web2B.Served == 0 {
		t.Fatal("no backend served anything")
	}
}

func TestHealthCheckMarksDeadBackend(t *testing.T) {
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	lbn := n.AddNode("lb", 4, 4)
	web := n.AddNode("web", 2, 1)
	dead := n.AddNode("dead", 2, 1)
	r := n.AddRouter("r")
	n.Connect(lbn, netip.MustParseAddr("10.0.0.1"), r, netip.MustParseAddr("10.0.0.254"), netsim.Link{Latency: time.Millisecond})
	n.Connect(web, netip.MustParseAddr("10.0.1.1"), r, netip.MustParseAddr("10.0.1.254"), netsim.Link{Latency: time.Millisecond})
	n.Connect(dead, netip.MustParseAddr("10.0.2.1"), r, netip.MustParseAddr("10.0.2.254"), netsim.Link{Latency: time.Millisecond})
	lbn.AddDefaultRoute(netip.MustParseAddr("10.0.0.254"))
	web.AddDefaultRoute(netip.MustParseAddr("10.0.1.254"))
	dead.AddDefaultRoute(netip.MustParseAddr("10.0.2.254"))

	mkPlain := func(nd *netsim.Node) *secio.Transport {
		return &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(nd, simtcp.NewPlainFabric(nd))}
	}
	db := rubis.Populate(7, 50, 100)
	webT := mkPlain(web)
	// The live web server answers /home locally via a DB on the same VM.
	dbT := webT
	s.Spawn("db", (&rubis.DBServer{DB: db, Transport: dbT}).Run)
	ws := &rubis.WebServer{
		Name: "web", Config: rubis.DefaultWebConfig, Transport: webT,
		DB: rubis.NewDBClient(webT, netip.MustParseAddr("10.0.1.1"), 2),
	}
	s.Spawn("web", ws.Run)

	front := mkPlain(lbn)
	back := &secio.Transport{Kind: secio.Basic, Stack: front.Stack, DialTimeout: 300 * time.Millisecond}
	lb := &Proxy{
		Name:           "lb",
		Front:          front,
		Back:           back,
		HealthInterval: 500 * time.Millisecond,
	}
	lb.AddBackend("web", netip.MustParseAddr("10.0.1.1"), rubis.WebPort)
	deadB := lb.AddBackend("dead", netip.MustParseAddr("10.0.2.1"), rubis.WebPort)
	s.Spawn("lb", lb.Run)
	s.Run(5 * time.Second)
	s.Shutdown()
	if deadB.Healthy() {
		t.Fatal("dead backend still marked healthy")
	}
	if !lb.Backends[0].Healthy() {
		t.Fatal("live backend marked unhealthy")
	}
}
