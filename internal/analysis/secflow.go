package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// SecFlow is the semantic secret-hygiene analyzer: it tracks key
// material from its sources — keymat stream draws and derivations, ECDH
// shared secrets, puzzle solutions, private-key fields, and []byte
// parameters whose name says they carry keys — through assignments,
// conversions, encoders and module-function summaries, and reports:
//
//   - flows into fmt/log calls or error strings (directly or through a
//     callee whose summary logs the parameter): a formatted secret ends
//     up in journals, crash dumps and bug reports;
//   - variable-time comparisons (bytes.Equal, reflect.DeepEqual, ==/!=
//     on strings or byte arrays) of secret-derived values — the timing
//     side channel CTCompare guesses at by name, proven by dataflow;
//   - ECDH shared secrets that are never zeroized: a local holding the
//     raw shared secret must be cleared (keymat.Zeroize, clear, a zero
//     loop, or a callee that zeroizes it) unless ownership moves on (it
//     is returned, stored, or handed to a callee that retains it);
//   - rekey/teardown paths that drop live keys: in a crypto package, a
//     function whose name says it retires state (rekey, close, forget,
//     evict, ...) must not overwrite a secret-bearing field, and no
//     function may delete a map entry whose value directly holds key
//     bytes, without wiping the old bytes first — the backing arrays
//     otherwise stay readable on the heap indefinitely.
//
// Secret-bearing struct fields are discovered program-wide: any store
// of tainted data into T.f marks the class "T.f" for every package, so
// a field filled by one function is protected in all the others. The
// engine is a may-analysis: copies count for taint (hex encoding a key
// is still the key) but not for retention, and unknown stdlib callees
// neither launder nor retain secrets.
var SecFlow = &Analyzer{
	Name: "secflow",
	Doc:  "key material flowing into logs, variable-time compares, or dropped without zeroization",
	Run:  runSecFlow,
}

// retireRe matches function names that retire or replace secret-bearing
// state; overwriting key material there ends its life and obliges a wipe.
var retireRe = regexp.MustCompile(`(?i)rekey|close|shutdown|retire|forget|evict|teardown|destroy|remove|replace`)

// secretParamName reports whether a []byte-ish parameter's name marks it
// as key material ("key", "encKey", "secret", "kij", "ticket", "priv").
// Public-key names are excluded.
func secretParamName(name string) bool {
	l := strings.ToLower(name)
	if strings.Contains(l, "pub") {
		return false
	}
	return strings.Contains(l, "key") || strings.Contains(l, "secret") ||
		l == "kij" || l == "ticket" || strings.HasPrefix(l, "priv")
}

// isByteArrayType reports whether t's underlying type is [N]byte.
func isByteArrayType(t types.Type) bool {
	a, ok := t.Underlying().(*types.Array)
	if !ok {
		return false
	}
	b, ok := a.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func byteish(t types.Type) bool { return isByteSliceType(t) || isByteArrayType(t) }

// containsByteData reports whether t directly owns byte storage: []byte,
// [N]byte, or a struct/array embedding either. Pointers stop the walk —
// deleting a pointer does not end the pointee's life.
func containsByteData(t types.Type) bool { return containsByteData1(t, 0) }

func containsByteData1(t types.Type, depth int) bool {
	if depth > 6 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		b, ok := u.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	case *types.Array:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok {
			return b.Kind() == types.Byte
		}
		return containsByteData1(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsByteData1(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Map:
		return containsByteData1(u.Elem(), depth+1)
	}
	return false
}

// exprTypeOf resolves an expression's static type, falling back to the
// declared object for fresh := identifiers (which have no Types entry).
func exprTypeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// fieldClassOf names the field a selector reads/writes, qualified by the
// owning named type: a.keys on *hip.Association → "Association.keys".
// Package-qualified selectors and unnamed types return "".
func fieldClassOf(info *types.Info, sel *ast.SelectorExpr) string {
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return n.Obj().Name() + "." + sel.Sel.Name
}

// secretFieldClasses computes (once per program) the set of "Type.field"
// classes observed to hold secret data anywhere in the program, iterated
// to a fixpoint so a class established in one package taints reads of
// that field everywhere.
func (p *Program) secretFieldClasses() map[string]bool {
	if p.secretClasses != nil {
		return p.secretClasses
	}
	classes := map[string]bool{}
	for round := 0; round < 8; round++ {
		grew := false
		for _, pkg := range p.Pkgs {
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					w := newSecWalker(p, pkg, fd, classes)
					w.collect()
					for c := range w.newClasses {
						if !classes[c] {
							classes[c] = true
							grew = true
						}
					}
				}
			}
		}
		if !grew {
			break
		}
	}
	p.secretClasses = classes
	return classes
}

// secWalker analyzes one function: a collect phase grows chain-taint,
// alias and zeroize-event sets to a fixpoint, then a report phase walks
// the body once flagging sinks.
type secWalker struct {
	prog    *Program
	pkg     *Package
	info    *types.Info
	fd      *ast.FuncDecl
	classes map[string]bool

	taint      map[string]bool   // access chains carrying secrets
	aliasOf    map[string]string // local name → chain it was read from
	zeroed     map[string]bool   // chains with a zeroize event
	newClasses map[string]bool

	pass *Pass // nil during class computation
}

func newSecWalker(prog *Program, pkg *Package, fd *ast.FuncDecl, classes map[string]bool) *secWalker {
	w := &secWalker{
		prog: prog, pkg: pkg, info: pkg.Info, fd: fd, classes: classes,
		taint:      map[string]bool{},
		aliasOf:    map[string]string{},
		zeroed:     map[string]bool{},
		newClasses: map[string]bool{},
	}
	// Seed: []byte-ish parameters named like key material are secret in
	// crypto packages (semantic taint has no cross-function argument
	// propagation; the naming convention closes that gap).
	if cryptoPkgs[pkg.Name] {
		if fd.Type.Params != nil {
			for _, fld := range fd.Type.Params.List {
				for _, name := range fld.Names {
					obj := pkg.Info.Defs[name]
					if obj != nil && byteish(obj.Type()) && secretParamName(name.Name) {
						w.taint[name.Name] = true
					}
				}
			}
		}
	}
	return w
}

// resolveAlias rewrites a chain's leading segment through the alias map:
// with s := c.m[k], the chain "s.ticket" resolves to "c.m.ticket".
func (w *secWalker) resolveAlias(c string) string {
	for i := 0; i < 4; i++ {
		head, rest, ok := strings.Cut(c, ".")
		tgt, has := w.aliasOf[head]
		if !has {
			return c
		}
		if !ok {
			c = tgt
		} else {
			c = tgt + "." + rest
		}
	}
	return c
}

// chainSecret reports whether the chain e reads from is tainted, testing
// every prefix (a tainted "a.keys" taints "a.keys.HIPMacOut" but not
// "a").
func (w *secWalker) chainSecret(e ast.Expr) bool {
	c, base := rootChain(w.info, e)
	if base == nil {
		return false
	}
	for _, q := range []string{c, w.resolveAlias(c)} {
		for {
			if w.taint[q] {
				return true
			}
			i := strings.LastIndexByte(q, '.')
			if i < 0 {
				break
			}
			q = q[:i]
		}
	}
	return false
}

// secret reports whether e's value may carry key material.
func (w *secWalker) secret(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return w.secretCall(x)
	case *ast.BinaryExpr:
		return w.secret(x.X) || w.secret(x.Y)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if w.secret(el) {
				return true
			}
		}
		return false
	case *ast.UnaryExpr:
		return w.secret(x.X)
	case *ast.StarExpr:
		return w.secret(x.X)
	case *ast.SliceExpr:
		return w.secret(x.X)
	case *ast.IndexExpr:
		return w.secret(x.X)
	case *ast.TypeAssertExpr:
		return w.secret(x.X)
	case *ast.SelectorExpr:
		if c := fieldClassOf(w.info, x); c != "" && w.classes[c] {
			return true
		}
		if secretFieldNames[x.Sel.Name] && cryptoPkgs[w.pkg.Name] {
			return true
		}
		return w.chainSecret(x)
	case *ast.Ident:
		return w.chainSecret(x)
	}
	return false
}

func (w *secWalker) secretCall(call *ast.CallExpr) bool {
	if tv, ok := w.info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		return w.secret(call.Args[0]) // conversion
	}
	if isBuiltinCall(w.info, call, "len") || isBuiltinCall(w.info, call, "cap") {
		return false
	}
	if isBuiltinCall(w.info, call, "append") {
		for _, a := range call.Args {
			if w.secret(a) {
				return true
			}
		}
		return false
	}
	if _, ok := isSecretSource(w.info, call); ok {
		return true
	}
	fn := calleeFunc(w.info, call)
	if fn != nil && isTaintPropagator(fn) {
		for _, a := range call.Args {
			if w.secret(a) {
				return true
			}
		}
		return false
	}
	for _, cand := range w.prog.resolveCall(w.info, call) {
		sum := w.prog.SummaryOf(cand)
		if sum == nil {
			continue
		}
		if sum.ReturnsSecret {
			return true
		}
		if sum.TaintsReturn {
			for _, a := range callArgsWithRecv(call, cand) {
				if a != nil && w.secret(a) {
					return true
				}
			}
		}
	}
	return false
}

// markZero records a zeroize event on e's chain (raw and alias-resolved).
func (w *secWalker) markZero(e ast.Expr) {
	c, base := rootChain(w.info, e)
	if base == nil {
		return
	}
	w.zeroed[c] = true
	w.zeroed[w.resolveAlias(c)] = true
}

// zeroCovers reports whether chain c (or any chain it contains / is
// contained by) saw a zeroize event.
func (w *secWalker) zeroCovers(c string) bool {
	for _, q := range []string{c, w.resolveAlias(c)} {
		for z := range w.zeroed {
			if z == q || strings.HasPrefix(z, q+".") || strings.HasPrefix(q, z+".") {
				return true
			}
		}
	}
	return false
}

// collect grows taint/alias/zeroed to a fixpoint over the body.
func (w *secWalker) collect() {
	for round := 0; round < 8; round++ {
		before := len(w.taint) + len(w.aliasOf) + len(w.zeroed) + len(w.newClasses)
		ast.Inspect(w.fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				w.collectAssign(x)
			case *ast.RangeStmt:
				if target, ok := w.zeroLoopTarget(x); ok {
					w.markZero(target)
				}
			case *ast.CallExpr:
				w.collectCall(x)
			case *ast.CompositeLit:
				w.collectComposite(x)
			}
			return true
		})
		if len(w.taint)+len(w.aliasOf)+len(w.zeroed)+len(w.newClasses) == before {
			break
		}
	}
}

func (w *secWalker) collectAssign(as *ast.AssignStmt) {
	rhsFor := func(i int) ast.Expr {
		if len(as.Rhs) == len(as.Lhs) {
			return as.Rhs[i]
		}
		if len(as.Rhs) == 1 {
			return as.Rhs[0]
		}
		return nil
	}
	for i, lhs := range as.Lhs {
		rhs := rhsFor(i)
		if rhs == nil {
			continue
		}
		// Alias: a plain local bound to a readable chain.
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
			if rc, rbase := rootChain(w.info, rhs); rbase != nil && rc != id.Name {
				w.aliasOf[id.Name] = w.resolveAlias(rc)
			}
		}
		if !w.secret(rhs) {
			continue
		}
		// Only types that can physically carry key bytes take taint: in a
		// tuple assignment from one secret-returning call, the []byte
		// result is tainted and the error is not.
		if !taintCarrier(exprTypeOf(w.info, lhs)) {
			continue
		}
		lc, lbase := rootChain(w.info, lhs)
		if lbase == nil {
			continue
		}
		w.taint[lc] = true
		w.taint[w.resolveAlias(lc)] = true
		if sel := innerSelector(lhs); sel != nil {
			if c := fieldClassOf(w.info, sel); c != "" {
				w.newClasses[c] = true
			}
		}
	}
}

// collectComposite records classes for struct literals whose fields are
// filled with secrets (AssociationKeys{HIPEncOut: draw(...), ...}).
func (w *secWalker) collectComposite(cl *ast.CompositeLit) {
	tv, ok := w.info.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, el := range cl.Elts {
		var fieldName string
		val := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				fieldName = id.Name
			}
			val = kv.Value
		} else if i < st.NumFields() {
			fieldName = st.Field(i).Name()
		}
		if fieldName != "" && w.secret(val) {
			w.newClasses[named.Obj().Name()+"."+fieldName] = true
		}
	}
}

func (w *secWalker) collectCall(call *ast.CallExpr) {
	if isBuiltinCall(w.info, call, "clear") && len(call.Args) == 1 {
		w.markZero(call.Args[0])
		return
	}
	for _, cand := range w.prog.resolveCall(w.info, call) {
		sum := w.prog.SummaryOf(cand)
		if sum == nil {
			continue
		}
		for pi, arg := range callArgsWithRecv(call, cand) {
			if arg != nil && sum.paramFacts(pi)&ParamZeroized != 0 {
				w.markZero(arg)
			}
		}
	}
}

// zeroLoopTarget matches `for i := range b { b[i] = 0 }` and returns b.
func (w *secWalker) zeroLoopTarget(r *ast.RangeStmt) (ast.Expr, bool) {
	if r.Key == nil || r.Body == nil || len(r.Body.List) != 1 {
		return nil, false
	}
	as, ok := r.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
		return nil, false
	}
	ix, ok := as.Lhs[0].(*ast.IndexExpr)
	if !ok || !isZeroConst(w.info, as.Rhs[0]) {
		return nil, false
	}
	if !sameRoot(w.info, ix.X, r.X) {
		return nil, false
	}
	keyID, ok := r.Key.(*ast.Ident)
	if !ok {
		return nil, false
	}
	ixID, ok := ast.Unparen(ix.Index).(*ast.Ident)
	if !ok || ixID.Name != keyID.Name {
		return nil, false
	}
	return r.X, true
}

// innerSelector unwraps index/slice/star/paren layers of an lvalue down
// to the selector being written through, or nil.
func innerSelector(e ast.Expr) *ast.SelectorExpr {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		return x
	case *ast.IndexExpr:
		return innerSelector(x.X)
	case *ast.SliceExpr:
		return innerSelector(x.X)
	case *ast.StarExpr:
		return innerSelector(x.X)
	case *ast.ParenExpr:
		return innerSelector(x.X)
	}
	return nil
}

// exprDesc renders an expression for a diagnostic: its access chain when
// it has one, else a generic label.
func (w *secWalker) exprDesc(e ast.Expr) string {
	if c, base := rootChain(w.info, e); base != nil {
		return c
	}
	return "value"
}

func runSecFlow(pass *Pass) {
	classes := pass.Prog.secretFieldClasses()
	for _, f := range pass.Files() {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := newSecWalker(pass.Prog, pass.Pkg, fd, classes)
			w.pass = pass
			w.collect()
			w.report()
		}
	}
}

// heapRooted reports whether base names storage that outlives the
// function: a pointer (overwriting through it mutates the pointee and
// strands the old value on the heap) or a package-level variable.
// Overwriting fields of a value-typed local or parameter mutates a stack
// copy — the fresh struct a Derive*/rekey helper is assembling — and
// retires nothing live; the caller's original stays subject to the rule
// in its own scope.
func heapRooted(base types.Object) bool {
	v, ok := base.(*types.Var)
	if !ok {
		return false
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return true
	}
	_, isPtr := v.Type().Underlying().(*types.Pointer)
	return isPtr
}

func (w *secWalker) report() {
	retiring := cryptoPkgs[w.pkg.Name] && retireRe.MatchString(w.fd.Name.Name)

	// Track ECDH shared-secret locals for the must-zeroize rule.
	type ecdhLocal struct {
		name string
		pos  token.Pos
		ok   bool
	}
	var ecdhLocals []*ecdhLocal
	localByName := func(root string) *ecdhLocal {
		for _, l := range ecdhLocals {
			if l.name == root {
				return l
			}
		}
		return nil
	}
	chainRootOf := func(e ast.Expr) string {
		c, base := rootChain(w.info, e)
		if base == nil {
			return ""
		}
		head, _, _ := strings.Cut(c, ".")
		return head
	}

	ast.Inspect(w.fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			// New ECDH locals.
			if cryptoPkgs[w.pkg.Name] && len(x.Rhs) == 1 && len(x.Lhs) >= 1 {
				if call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr); ok && isECDHSecret(w.info, call) {
					if id, ok := ast.Unparen(x.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
						ecdhLocals = append(ecdhLocals, &ecdhLocal{name: id.Name, pos: call.Pos()})
					}
				}
			}
			// Storing an ECDH local elsewhere transfers ownership.
			for i, rhs := range x.Rhs {
				if l := localByName(chainRootOf(rhs)); l != nil {
					if i < len(x.Lhs) {
						if _, isIdent := ast.Unparen(x.Lhs[i]).(*ast.Ident); !isIdent {
							l.ok = true
						}
					}
				}
			}
			// Retire rule: overwriting a secret-bearing field without a
			// preceding wipe on a rekey/teardown path.
			if retiring && x.Tok == token.ASSIGN {
				for _, lhs := range x.Lhs {
					sel := innerSelector(lhs)
					if sel == nil {
						continue
					}
					class := fieldClassOf(w.info, sel)
					if class == "" || !w.classes[class] {
						continue
					}
					tv, ok := w.info.Types[lhs.(ast.Expr)]
					if !ok || !containsByteData(tv.Type) {
						continue
					}
					lc, base := rootChain(w.info, lhs)
					if lc != "" && heapRooted(base) && !w.zeroCovers(lc) {
						w.pass.Reportf(lhs.Pos(), "%s (class %s) holds live key material and is overwritten on a retire/rekey path without zeroizing the old value; wipe it (keymat.Zeroize / clear) before replacing", lc, class)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if l := localByName(chainRootOf(r)); l != nil {
					l.ok = true
				}
			}
		case *ast.CallExpr:
			w.reportCall(x)
			// Handing an ECDH local to a callee that retains or zeroizes
			// it discharges the must-zeroize obligation.
			for _, cand := range w.prog.resolveCall(w.info, x) {
				sum := w.prog.SummaryOf(cand)
				if sum == nil {
					continue
				}
				for pi, arg := range callArgsWithRecv(x, cand) {
					if arg == nil {
						continue
					}
					if l := localByName(chainRootOf(arg)); l != nil {
						if sum.paramFacts(pi)&(ParamRetained|ParamZeroized) != 0 {
							l.ok = true
						}
					}
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.EQL || x.Op == token.NEQ {
				if (comparableSecretType(w.info, x.X) || comparableSecretType(w.info, x.Y)) &&
					(w.secret(x.X) || w.secret(x.Y)) {
					w.pass.Reportf(x.Pos(), "%s on key material (%s) is variable-time; use hmac.Equal or subtle.ConstantTimeCompare", x.Op, w.exprDesc(pickSecret(w, x.X, x.Y)))
				}
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if l := localByName(chainRootOf(el)); l != nil {
					l.ok = true
				}
			}
		}
		return true
	})

	for _, l := range ecdhLocals {
		if !l.ok && !w.zeroCovers(l.name) {
			w.pass.Reportf(l.pos, "ECDH shared secret %s is never zeroized in %s; clear it (keymat.Zeroize) once the KDF has consumed it — a lingering heap copy discloses every key derived from it", l.name, w.fd.Name.Name)
		}
	}
}

// pickSecret returns whichever operand is secret, preferring a.
func pickSecret(w *secWalker, a, b ast.Expr) ast.Expr {
	if w.secret(a) {
		return a
	}
	return b
}

func (w *secWalker) reportCall(call *ast.CallExpr) {
	info := w.info
	fn := calleeFunc(info, call)

	// delete(m, k) dropping key bytes without a wipe.
	if cryptoPkgs[w.pkg.Name] && isBuiltinCall(info, call, "delete") && len(call.Args) == 2 {
		if tv, ok := info.Types[call.Args[0]]; ok && tv.Type != nil {
			if m, ok := tv.Type.Underlying().(*types.Map); ok {
				if _, isPtr := m.Elem().Underlying().(*types.Pointer); !isPtr && containsByteData(m.Elem()) && w.secret(call.Args[0]) {
					if c, base := rootChain(info, call.Args[0]); base != nil && !w.zeroCovers(c) {
						w.pass.Reportf(call.Pos(), "delete on %s drops an entry holding key material without zeroizing it; read the entry and wipe its byte fields (keymat.Zeroize) before deleting", c)
					}
				}
			}
		}
		return
	}

	if fn != nil && isLogSink(fn) {
		for _, a := range call.Args {
			if w.secret(a) {
				w.pass.Reportf(a.Pos(), "key material (%s) flows into %s.%s; secrets must never be formatted into logs or error strings", w.exprDesc(a), fn.Pkg().Name(), fn.Name())
			}
		}
		return
	}
	if fn != nil && ((fn.Name() == "Equal" && pkgPathOf(fn) == "bytes") || (fn.Name() == "DeepEqual" && pkgPathOf(fn) == "reflect")) {
		for _, a := range call.Args {
			if w.secret(a) {
				w.pass.Reportf(call.Pos(), "variable-time comparison of key material (%s); use hmac.Equal or subtle.ConstantTimeCompare", w.exprDesc(a))
				return
			}
		}
		return
	}

	// Interprocedural sinks through module callees.
	for _, cand := range w.prog.resolveCall(info, call) {
		sum := w.prog.SummaryOf(cand)
		if sum == nil {
			continue
		}
		name := cand.Name()
		if r := recvTypeName(cand); r != "" {
			name = r + "." + name
		}
		for pi, arg := range callArgsWithRecv(call, cand) {
			if arg == nil || !w.secret(arg) {
				continue
			}
			facts := sum.paramFacts(pi)
			if facts&ParamLogged != 0 {
				w.pass.Reportf(arg.Pos(), "key material (%s) passed to %s, which formats it into a log or error string", w.exprDesc(arg), name)
			}
			if facts&ParamVarCompared != 0 {
				w.pass.Reportf(arg.Pos(), "key material (%s) passed to %s, which compares it in variable time; use hmac.Equal or subtle.ConstantTimeCompare", w.exprDesc(arg), name)
			}
		}
	}
}
