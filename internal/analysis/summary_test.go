package analysis

import (
	"strings"
	"testing"
)

// summaryProg loads the summary fixture and builds its Program once per
// test; the helpers fail the test rather than return nil so each
// assertion reads as one line.
func summaryProg(t *testing.T) *Program {
	t.Helper()
	return NewProgram([]*Package{loadFixture(t, "summary")})
}

func mustSummary(t *testing.T, prog *Program, name string) *Summary {
	t.Helper()
	fn := prog.FuncByName(name)
	if fn == nil {
		t.Fatalf("FuncByName(%q) found nothing", name)
	}
	sum := prog.SummaryOf(fn)
	if sum == nil {
		t.Fatalf("no summary computed for %s", name)
	}
	return sum
}

func paramFact(t *testing.T, prog *Program, name string, idx int) ParamFacts {
	t.Helper()
	sum := mustSummary(t, prog, name)
	if idx >= len(sum.Params) {
		t.Fatalf("%s has %d param slots, want index %d", name, len(sum.Params), idx)
	}
	return sum.Params[idx]
}

// TestSummaryMutualRecursion drives the SCC fixpoint: pongLog only
// reaches the fmt sink through pingLog and vice versa for the buffer
// release pair, so the facts exist only at the fixpoint.
func TestSummaryMutualRecursion(t *testing.T) {
	prog := summaryProg(t)

	for _, name := range []string{"pingLog", "pongLog"} {
		if paramFact(t, prog, name, 0)&ParamLogged == 0 {
			t.Errorf("%s: param b should be marked logged through the recursion", name)
		}
		if paramFact(t, prog, name, 1)&ParamLogged != 0 {
			t.Errorf("%s: the loop counter n must not be marked logged", name)
		}
	}
	for _, name := range []string{"releaseEven", "releaseOdd"} {
		if paramFact(t, prog, name, 0)&ParamPutPool == 0 {
			t.Errorf("%s: param b should be marked pool-released through the recursion", name)
		}
	}
	if !mustSummary(t, prog, "recDraw").ReturnsSecret {
		t.Error("recDraw should return secret material via its recursive base case")
	}
}

// TestSummaryInterfaceTaint checks taint propagation through dynamic
// dispatch: wrapVisitor.visit returns its argument only by calling
// through the visitor interface.
func TestSummaryInterfaceTaint(t *testing.T) {
	prog := summaryProg(t)

	if !mustSummary(t, prog, "leafVisitor.visit").TaintsReturn {
		t.Error("leafVisitor.visit returns its parameter and must taint its return")
	}
	if !mustSummary(t, prog, "wrapVisitor.visit").TaintsReturn {
		t.Error("wrapVisitor.visit should inherit TaintsReturn through the interface call")
	}
}

// TestSummaryZeroizeChain checks that a clear() two frames down
// discharges the caller's parameter.
func TestSummaryZeroizeChain(t *testing.T) {
	prog := summaryProg(t)

	if paramFact(t, prog, "wipe", 0)&ParamZeroized == 0 {
		t.Error("wipe: clear(b) should mark the parameter zeroized")
	}
	if paramFact(t, prog, "wipeOuter", 0)&ParamZeroized == 0 {
		t.Error("wipeOuter: the callee's zeroization should propagate up")
	}
}

// TestSummaryWallClockReach checks both directions of the reach rules:
// a static chain carries the wall-clock fact with its call chain, while
// a dynamic dispatch with a clock-free implementor must not (reach facts
// use must-semantics across interface calls).
func TestSummaryWallClockReach(t *testing.T) {
	prog := summaryProg(t)

	sum := mustSummary(t, prog, "stampTwice")
	if sum.WallClock == nil {
		t.Fatal("stampTwice reaches time.Now through now() and should carry WallClock")
	}
	if chain := sum.WallClock.chain(); !strings.Contains(chain, "time.Now") {
		t.Errorf("stampTwice WallClock chain %q should name time.Now", chain)
	}

	if mustSummary(t, prog, "wallTicker.tick").WallClock == nil {
		t.Error("wallTicker.tick calls time.Now directly and should carry WallClock")
	}
	if mustSummary(t, prog, "simTicker.tick").WallClock != nil {
		t.Error("simTicker.tick never touches the clock and must stay clock-free")
	}
	if got := mustSummary(t, prog, "viaTicker").WallClock; got != nil {
		t.Errorf("viaTicker dispatches to a clock-free implementor and must stay clock-free (must-semantics), got chain %q", got.chain())
	}
}
