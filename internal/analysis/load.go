package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// buildMatch reports whether a .go file participates in the build for
// the host GOOS/GOARCH. go/build honors //go:build lines and the
// _linux/_amd64 filename conventions, so platform-split packages (e.g.
// the hipudp sendmmsg shim with per-arch syscall tables) type-check as
// the compiler would build them instead of as a redeclaration soup.
func buildMatch(dir, name string) bool {
	ok, err := build.Default.MatchFile(dir, name)
	return err == nil && ok
}

// Package is one loaded, parsed and type-checked package.
type Package struct {
	Dir        string
	ImportPath string
	Name       string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks packages of the enclosing module using
// only the stdlib toolchain: module-internal imports are resolved by
// recursively loading their directories; everything else (the stdlib)
// comes from the gc importer's compiled export data. All packages share
// one token.FileSet and one importer instance so types.Object identity
// holds across package boundaries.
type Loader struct {
	ModRoot string // absolute directory containing go.mod
	ModPath string // module path declared in go.mod

	fset *token.FileSet
	gc   types.Importer
	pkgs map[string]*Package // by absolute dir; nil while in flight (cycle guard)
}

// NewLoader locates the module containing dir (or the working directory
// when dir is empty) and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		dir = wd
	}
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: root,
		ModPath: path,
		fset:    fset,
		gc:      importer.ForCompiler(fset, "gc", nil),
		pkgs:    make(map[string]*Package),
	}, nil
}

func findModule(dir string) (root, path string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("go.mod in %s has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Load expands the given patterns and loads each matched package.
// Patterns may be directories ("./internal/esp"), module import paths
// ("hipcloud/internal/esp"), or recursive forms of either ("./...",
// "hipcloud/internal/..."). Recursive walks skip testdata, vendor and
// hidden directories, like the go tool.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		expanded, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			add(d)
		}
	}
	var out []*Package
	for _, d := range dirs {
		pkg, err := l.loadDir(d)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func (l *Loader) expand(pat string) ([]string, error) {
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "." || pat == "" {
			pat = "."
		}
	}
	dir := pat
	if rest, ok := strings.CutPrefix(pat, l.ModPath); ok && (rest == "" || rest[0] == '/') {
		dir = filepath.Join(l.ModRoot, rest)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if !recursive {
		return []string{abs}, nil
	}
	var dirs []string
	err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(p)
		if p != abs && (base == "testdata" || base == "vendor" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			buildMatch(dir, name) {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks the package in dir (memoized).
func (l *Loader) loadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[abs]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("import cycle through %s", abs)
		}
		return pkg, nil
	}
	l.pkgs[abs] = nil // in flight

	ents, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !buildMatch(abs, name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", abs)
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	importPath := l.importPathFor(abs)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, typeErrs[0])
	}
	pkg := &Package{
		Dir:        abs,
		ImportPath: importPath,
		Name:       tpkg.Name(),
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[abs] = pkg
	return pkg, nil
}

func (l *Loader) importPathFor(abs string) string {
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// loaderImporter resolves imports during type-checking: module-internal
// paths load recursively from source, everything else defers to the gc
// importer (stdlib export data).
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if rest, ok := strings.CutPrefix(path, l.ModPath); ok && (rest == "" || rest[0] == '/') {
		pkg, err := l.loadDir(filepath.Join(l.ModRoot, rest))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.gc.Import(path)
}
