package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The budget layer is the second half of the hotpath contract: where
// hotpath.go flags allocation *idioms* the AST can prove, this file
// ingests the compiler's own verdicts — escape analysis (-m=2) and
// bounds-check elimination debugging (-d=ssa/check_bce/debug=1) — and
// pins the per-function counts inside the hot set to a tracked snapshot,
// LINT_BUDGET.json. `hiplint -budget` recomputes the counts and fails on
// ANY drift: a regression (new escape / new unchecked bounds access in a
// hot function) must be fixed, and an improvement must be committed with
// `hiplint -budget -write`, so the snapshot is always the exact current
// cost and the trajectory is visible in review diffs. The go build cache
// replays compiler diagnostics on cached builds, so repeat runs are
// cheap.

// GcflagsBudget is the compiler flag set the budget runs under: full
// escape-analysis commentary plus a line for every bounds check the SSA
// backend could not eliminate.
const GcflagsBudget = "-m=2 -d=ssa/check_bce/debug=1"

// BudgetFile is the tracked snapshot's filename, at the module root.
const BudgetFile = "LINT_BUDGET.json"

// BudgetEntry is the per-function diagnostic count pair.
type BudgetEntry struct {
	// Escapes counts values the compiler moved to the heap inside the
	// function ("escapes to heap" / "moved to heap" heads, flow
	// commentary excluded).
	Escapes int `json:"escapes"`
	// Bounds counts array/slice accesses whose bounds check the SSA
	// backend kept ("Found IsInBounds" / "Found IsSliceInBounds").
	Bounds int `json:"bounds"`
}

// Budget is the serialized form of LINT_BUDGET.json: per-hot-function
// diagnostic counts, keyed "relative/pkg/path.Recv.Func".
type Budget struct {
	Note      string                 `json:"_note"`
	Functions map[string]BudgetEntry `json:"functions"`
}

const budgetNote = "Per-function compiler-diagnostic counts over the hotpath hot set " +
	"(escape analysis + retained bounds checks). Regenerate with `make lint-budget` " +
	"(hiplint -budget -write); `make check` fails when the tree drifts from this snapshot."

// hotSpan is one hot function's source extent, for mapping compiler
// diagnostics (file:line) back to the function they landed in.
type hotSpan struct {
	startLine int
	endLine   int
	key       string
}

// budgetKey names one hot function the way LINT_BUDGET.json does: the
// package path relative to the module, then receiver type and function
// name.
func budgetKey(modPath string, fi *funcInfo) string {
	pkgPath := fi.pkg.ImportPath
	if rest, ok := strings.CutPrefix(pkgPath, modPath+"/"); ok {
		pkgPath = rest
	}
	return pkgPath + "." + hotFnName(fi.fn)
}

// hotSpans indexes the hot set by source file: file path (relative to
// modRoot, slash-separated) to the line spans of the hot functions it
// contains.
func hotSpans(prog *Program, modRoot, modPath string) map[string][]hotSpan {
	spans := make(map[string][]hotSpan)
	hot := prog.HotSet()
	for _, fn := range prog.order {
		if hot[fn] == nil {
			continue
		}
		fi := prog.fns[fn]
		start := fi.pkg.Fset.Position(fi.decl.Pos())
		end := fi.pkg.Fset.Position(fi.decl.End())
		file := start.Filename
		if rel, err := filepath.Rel(modRoot, file); err == nil {
			file = filepath.ToSlash(rel)
		}
		spans[file] = append(spans[file], hotSpan{
			startLine: start.Line,
			endLine:   end.Line,
			key:       budgetKey(modPath, fi),
		})
	}
	for _, ss := range spans {
		sort.Slice(ss, func(i, j int) bool { return ss[i].startLine < ss[j].startLine })
	}
	return spans
}

// ComputeBudget builds the module with the budget gcflags and folds the
// resulting diagnostics onto the hot set. goCmd is the go tool ("go"
// normally; tests may substitute a stub). The build runs in modRoot so
// diagnostic paths come back module-relative.
func ComputeBudget(prog *Program, goCmd, modRoot, modPath string, patterns []string) (*Budget, error) {
	args := append([]string{"build", "-gcflags=" + GcflagsBudget}, patterns...)
	cmd := exec.Command(goCmd, args...)
	cmd.Dir = modRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=%q: %v\n%s", GcflagsBudget, err, out)
	}
	return foldDiagnostics(prog, modRoot, modPath, string(out)), nil
}

// foldDiagnostics parses compiler output and counts the escape and
// bounds-check heads that land inside hot functions.
func foldDiagnostics(prog *Program, modRoot, modPath, out string) *Budget {
	spans := hotSpans(prog, modRoot, modPath)
	b := &Budget{Note: budgetNote, Functions: make(map[string]BudgetEntry)}
	for _, line := range strings.Split(out, "\n") {
		file, ln, msg, ok := parseDiagLine(line)
		if !ok {
			continue
		}
		// -m=2 reports each escape twice: a head ending in ':' (followed
		// by flow commentary) and the plain -m style line. Count only the
		// plain line. "moved to heap: x" is emitted once.
		isEscape := (strings.Contains(msg, "escapes to heap") && !strings.HasSuffix(msg, ":")) ||
			strings.Contains(msg, "moved to heap")
		isBounds := strings.Contains(msg, "Found IsInBounds") || strings.Contains(msg, "Found IsSliceInBounds")
		if !isEscape && !isBounds {
			continue
		}
		key, hit := lookupSpan(spans, file, ln)
		if !hit {
			continue
		}
		e := b.Functions[key]
		if isEscape {
			e.Escapes++
		} else {
			e.Bounds++
		}
		b.Functions[key] = e
	}
	return b
}

// parseDiagLine splits "path/file.go:line:col: message", rejecting the
// indented flow-commentary continuation lines -m=2 emits under each
// escape head (their message starts with whitespace).
func parseDiagLine(line string) (file string, ln int, msg string, ok bool) {
	i := strings.Index(line, ".go:")
	if i < 0 || strings.HasPrefix(line, "#") {
		return "", 0, "", false
	}
	file = line[:i+3]
	rest := line[i+4:]
	j := strings.IndexByte(rest, ':')
	if j < 0 {
		return "", 0, "", false
	}
	ln, err := strconv.Atoi(rest[:j])
	if err != nil {
		return "", 0, "", false
	}
	rest = rest[j+1:]
	// column (optional in principle — tolerate its absence)
	if k := strings.IndexByte(rest, ':'); k >= 0 {
		if _, err := strconv.Atoi(rest[:k]); err == nil {
			rest = rest[k+1:]
		}
	}
	msg = strings.TrimPrefix(rest, " ")
	if msg == "" || msg[0] == ' ' || msg[0] == '\t' {
		return "", 0, "", false // flow commentary, not a diagnostic head
	}
	return filepath.ToSlash(file), ln, msg, true
}

// lookupSpan finds the hot function whose extent contains file:line.
func lookupSpan(spans map[string][]hotSpan, file string, line int) (string, bool) {
	for _, s := range spans[file] {
		if s.startLine <= line && line <= s.endLine {
			return s.key, true
		}
	}
	return "", false
}

// DiffBudget compares the freshly computed budget against the tracked
// snapshot and describes every drift, regressions first. An empty result
// means the tree matches the snapshot.
func DiffBudget(tracked, current *Budget) []string {
	var regressions, improvements []string
	keys := make(map[string]bool)
	for k := range tracked.Functions {
		keys[k] = true
	}
	for k := range current.Functions {
		keys[k] = true
	}
	ordered := make([]string, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)
	for _, k := range ordered {
		old, cur := tracked.Functions[k], current.Functions[k]
		if old == cur {
			continue
		}
		line := fmt.Sprintf("%s: escapes %d -> %d, bounds %d -> %d", k, old.Escapes, cur.Escapes, old.Bounds, cur.Bounds)
		if cur.Escapes > old.Escapes || cur.Bounds > old.Bounds {
			regressions = append(regressions, "regression: "+line)
		} else {
			improvements = append(improvements, "improvement (commit the refreshed snapshot): "+line)
		}
	}
	return append(regressions, improvements...)
}

// LoadBudget reads the tracked snapshot; a missing file returns an empty
// budget (so the first -write run bootstraps it).
func LoadBudget(path string) (*Budget, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Budget{Note: budgetNote, Functions: map[string]BudgetEntry{}}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Budget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Functions == nil {
		b.Functions = map[string]BudgetEntry{}
	}
	return &b, nil
}

// WriteBudget writes the snapshot with stable formatting (sorted keys,
// trailing newline) so regeneration is diff-friendly.
func WriteBudget(path string, b *Budget) error {
	b.Note = budgetNote
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BudgetTotals sums a budget for the -counts trajectory report.
func BudgetTotals(b *Budget) (escapes, bounds int) {
	for _, e := range b.Functions {
		escapes += e.Escapes
		bounds += e.Bounds
	}
	return escapes, bounds
}
