package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockedSend flags the simulator's deadlock shape: holding a sync.Mutex /
// RWMutex across a packet emission or callback invocation. A
// Fabric.Send-shaped call re-enters the scheduler, which can deliver a
// packet back into the sender synchronously; if the delivery path needs
// the same lock, the simulation wedges. Callback invocations
// (func-valued fields) and channel sends have the same structure: code
// the lock holder does not control runs while the lock is held.
//
// The check is intra-procedural and flow-approximate: a mutex counts as
// held from x.Lock()/x.RLock() to the matching x.Unlock()/x.RUnlock() in
// statement order; defer x.Unlock() holds it to the end of the function.
// Helper methods that are only ever *called* with a lock held (the
// fooLocked convention) are not chased.
var LockedSend = &Analyzer{
	Name: "lockedsend",
	Doc:  "Fabric.Send-shaped calls, callbacks or channel sends while holding a sync.Mutex",
	Run:  runLockedSend,
}

// sendNames are the emission methods that must not run under a lock.
var sendNames = map[string]bool{"Send": true, "SendTo": true, "SendRaw": true}

func runLockedSend(pass *Pass) {
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					analyzeLockedBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				analyzeLockedBody(pass, fn.Body)
			}
			return true
		})
	}
}

type lockWalker struct {
	pass *Pass
	info *types.Info
	held map[string]bool // mutex access chains currently held
}

func analyzeLockedBody(pass *Pass, body *ast.BlockStmt) {
	w := &lockWalker{pass: pass, info: pass.Pkg.Info, held: map[string]bool{}}
	w.walk(body)
}

// mutexOp recognizes <chain>.Lock/RLock/Unlock/RUnlock() on a
// sync.Mutex/RWMutex-typed receiver and returns the chain and whether the
// op acquires.
func (w *lockWalker) mutexOp(call *ast.CallExpr) (chain string, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false, false
	}
	fn, isFn := w.info.Uses[sel.Sel].(*types.Func)
	if !isFn || pkgPathOf(fn) != "sync" {
		return "", false, false
	}
	recv := recvTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", false, false
	}
	chain, base := rootChain(w.info, sel.X)
	if base == nil {
		return "", false, false
	}
	return chain, acquire, true
}

// walk processes statements in order, updating the held set and flagging
// emissions under a lock. Branch bodies are walked with the current held
// set (a lock held at the branch point is held inside it).
func (w *lockWalker) walk(n ast.Node) {
	switch x := n.(type) {
	case *ast.BlockStmt:
		for _, s := range x.List {
			w.walk(s)
		}
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if chain, acquire, ok := w.mutexOp(call); ok {
				if acquire {
					w.held[chain] = true
				} else {
					delete(w.held, chain)
				}
				return
			}
		}
		w.scan(x)
	case *ast.DeferStmt:
		if _, acquire, ok := w.mutexOp(x.Call); ok && !acquire {
			// defer mu.Unlock(): held for the rest of the function; the
			// preceding Lock already put it in the set, keep it there.
			return
		}
		w.scan(x)
	case *ast.IfStmt:
		if x.Init != nil {
			w.walk(x.Init)
		}
		w.scan(x.Cond)
		// Clone so an Unlock on one branch doesn't leak to the other.
		w.walkBranch(x.Body)
		if x.Else != nil {
			w.walkBranch(x.Else)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			w.walk(x.Init)
		}
		if x.Cond != nil {
			w.scan(x.Cond)
		}
		w.walkBranch(x.Body)
	case *ast.RangeStmt:
		w.scan(x.X)
		w.walkBranch(x.Body)
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.walk(x.Init)
		}
		if x.Tag != nil {
			w.scan(x.Tag)
		}
		w.walkBranch(x.Body)
	case *ast.TypeSwitchStmt:
		w.walkBranch(x.Body)
	case *ast.SelectStmt:
		w.walkBranch(x.Body)
	case *ast.CaseClause:
		for _, s := range x.Body {
			w.walk(s)
		}
	case *ast.CommClause:
		if x.Comm != nil {
			w.walk(x.Comm)
		}
		for _, s := range x.Body {
			w.walk(s)
		}
	case *ast.LabeledStmt:
		w.walk(x.Stmt)
	case ast.Stmt:
		w.scan(x)
	case ast.Expr:
		w.scan(x)
	}
}

// walkBranch walks a nested region with a copy of the held set, so lock
// state changes inside a branch stay local to it.
func (w *lockWalker) walkBranch(n ast.Node) {
	saved := w.held
	w.held = map[string]bool{}
	for k := range saved {
		w.held[k] = true
	}
	w.walk(n)
	w.held = saved
}

// scan looks for emissions inside one statement/expression while any
// mutex is held. Nested function literals are skipped: they run later,
// typically after the lock is dropped, and are analyzed separately.
func (w *lockWalker) scan(n ast.Node) {
	if len(w.held) == 0 {
		return
	}
	heldNames := make([]string, 0, len(w.held))
	for k := range w.held {
		heldNames = append(heldNames, k)
	}
	lockDesc := strings.Join(heldNames, ", ")
	inspectSkipFuncLit(n, func(m ast.Node) {
		switch x := m.(type) {
		case *ast.SendStmt:
			w.pass.Reportf(x.Pos(), "channel send while holding %s; the receiver may need the same lock (deadlock shape)", lockDesc)
		case *ast.CallExpr:
			if fn := calleeFunc(w.info, x); fn != nil {
				if sendNames[fn.Name()] && strings.HasPrefix(pkgPathOf(fn), "hipcloud/") {
					w.pass.Reportf(x.Pos(), "%s.%s while holding %s; delivery can re-enter the lock holder synchronously (deadlock shape)", recvTypeName(fn), fn.Name(), lockDesc)
				}
				return
			}
			if isDynamicCall(w.info, x) {
				w.pass.Reportf(x.Pos(), "callback invocation while holding %s; the callee may need the same lock (deadlock shape)", lockDesc)
			}
		}
	})
}
