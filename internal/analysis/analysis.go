// Package analysis is a small from-scratch static-analysis framework on
// the stdlib go/ast + go/parser + go/types toolchain (no x/tools,
// preserving the repo's stdlib-only rule).
//
// It exists to turn the prose contracts of DESIGN.md §5a — buffer
// ownership, append-API aliasing, simulator determinism, constant-time
// comparison, lock discipline — into machine-checked invariants that run
// on every `make check` via the cmd/hiplint driver.
//
// The model mirrors x/tools/go/analysis in miniature: an Analyzer is a
// named check with a Run function; a Pass hands the Run function one
// type-checked package and collects Diagnostics. Findings can be
// suppressed at the source line with
//
//	//lint:allow <check> <reason>
//
// on the flagged line or the line directly above it. A suppression with
// no reason string is itself a diagnostic: every waiver must say why.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name is the check's identifier, used in diagnostics and in
	// //lint:allow comments.
	Name string
	// Doc is a one-line description shown by `hiplint -list`.
	Doc string
	// Run inspects the package in pass and reports findings through
	// pass.Report / pass.Reportf.
	Run func(pass *Pass)
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Prog holds the whole-run interprocedural facts (call graph and
	// function summaries over every loaded package). Always non-nil:
	// single-package runs get a single-package program.
	Prog *Program

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Files returns the package's parsed files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// Run applies the analyzers to one package in isolation: a single-package
// Program is built so interprocedural facts cover the package's own
// functions (the fixture harness relies on this; helpers a fixture wants
// summarized live in the fixture package itself).
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunProgram(NewProgram([]*Package{pkg}), analyzers)
}

// RunProgram applies the analyzers to every package of prog and returns
// the surviving diagnostics: suppressed findings are removed, malformed,
// unknown-check and unused suppressions are added, and the result is
// sorted by position. This is the single entry point shared by the
// hiplint driver and the fixture test harness.
func RunProgram(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Prog: prog}
			a.Run(pass)
			pkgDiags = append(pkgDiags, pass.diags...)
		}
		diags = append(diags, applySuppressions(pkg, pkgDiags, analyzers)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		BufOwn,
		AppendAlias,
		SimDet,
		SchedBlock,
		CTCompare,
		LockedSend,
		SecFlow,
		LockOrder,
		HotPath,
	}
}

// ByName resolves a comma-separated selection against All; unknown names
// are returned as an error value so the driver can fail loudly.
func ByName(names []string) ([]*Analyzer, error) {
	all := All()
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown check %q", n)
		}
	}
	return out, nil
}
