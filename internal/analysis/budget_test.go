package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseDiagLine(t *testing.T) {
	cases := []struct {
		in   string
		file string
		line int
		msg  string
		ok   bool
	}{
		{"internal/netsim/net.go:42:7: v escapes to heap", "internal/netsim/net.go", 42, "v escapes to heap", true},
		{"internal/netsim/net.go:42:7: v escapes to heap:", "internal/netsim/net.go", 42, "v escapes to heap:", true},
		{"internal/netsim/net.go:42: moved to heap: w", "internal/netsim/net.go", 42, "moved to heap: w", true},
		{"internal/netsim/net.go:9:3: Found IsSliceInBounds", "internal/netsim/net.go", 9, "Found IsSliceInBounds", true},
		// Flow commentary under an escape head is indented past the
		// single separator space: not a diagnostic head.
		{"internal/netsim/net.go:42:7:   flow: {heap} = &v:", "", 0, "", false},
		// Package banners and non-diagnostic chatter.
		{"# hipcloud/internal/netsim", "", 0, "", false},
		{"", "", 0, "", false},
		{"internal/netsim/net.go:notaline: v escapes to heap", "", 0, "", false},
	}
	for _, c := range cases {
		file, line, msg, ok := parseDiagLine(c.in)
		if ok != c.ok || file != c.file || line != c.line || msg != c.msg {
			t.Errorf("parseDiagLine(%q) = (%q, %d, %q, %v), want (%q, %d, %q, %v)",
				c.in, file, line, msg, ok, c.file, c.line, c.msg, c.ok)
		}
	}
}

// TestFoldDiagnostics feeds synthetic -m=2 output through the fold and
// checks the dedup rule: -m=2 prints each "escapes to heap" twice (a
// head ending in ':' plus the plain -m line) and "moved to heap" once,
// so one escaped value counts exactly once. Diagnostics outside hot
// function extents are dropped.
func TestFoldDiagnostics(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(filepath.Join("testdata", "src", "hotset"))
	if err != nil {
		t.Fatalf("loading hotset fixture: %v", err)
	}
	prog := NewProgram(pkgs)

	var file, wantKey string
	var runLine int
	for fn, fi := range prog.fns {
		if hotFnName(fn) != "Sim.Run" {
			continue
		}
		pos := fi.pkg.Fset.Position(fi.decl.Pos())
		rel, err := filepath.Rel(l.ModRoot, pos.Filename)
		if err != nil {
			t.Fatalf("Rel(%s, %s): %v", l.ModRoot, pos.Filename, err)
		}
		file = filepath.ToSlash(rel)
		runLine = pos.Line + 1
		wantKey = budgetKey(l.ModPath, fi)
	}
	if file == "" {
		t.Fatal("hotset fixture has no Sim.Run")
	}

	out := fmt.Sprintf(`# hipcloud/internal/analysis/testdata/src/hotset
%[1]s:%[2]d:6: v escapes to heap:
%[1]s:%[2]d:6:   flow: {heap} = &v:
%[1]s:%[2]d:6: v escapes to heap
%[1]s:%[2]d:10: moved to heap: w
%[1]s:%[2]d:3: Found IsInBounds
%[1]s:%[2]d:5: Found IsSliceInBounds
%[1]s:1:1: x escapes to heap
`, file, runLine)

	b := foldDiagnostics(prog, l.ModRoot, l.ModPath, out)
	want := map[string]BudgetEntry{wantKey: {Escapes: 2, Bounds: 2}}
	if !reflect.DeepEqual(b.Functions, want) {
		t.Errorf("foldDiagnostics = %v, want %v", b.Functions, want)
	}
}

func TestDiffBudget(t *testing.T) {
	tracked := &Budget{Functions: map[string]BudgetEntry{
		"a.F": {Escapes: 2, Bounds: 1},
		"b.G": {Escapes: 0, Bounds: 3},
		"c.H": {Escapes: 1, Bounds: 1},
	}}
	if drift := DiffBudget(tracked, tracked); len(drift) != 0 {
		t.Errorf("identical budgets drifted: %v", drift)
	}

	current := &Budget{Functions: map[string]BudgetEntry{
		"a.F": {Escapes: 3, Bounds: 1}, // regression: more escapes
		"b.G": {Escapes: 0, Bounds: 2}, // improvement: fewer bounds checks
		"c.H": {Escapes: 1, Bounds: 1}, // unchanged
		"d.I": {Escapes: 1, Bounds: 0}, // new hot cost: regression
	}}
	drift := DiffBudget(tracked, current)
	if len(drift) != 3 {
		t.Fatalf("got %d drift lines, want 3: %v", len(drift), drift)
	}
	// Regressions come first (sorted), improvements after.
	if !strings.HasPrefix(drift[0], "regression: a.F:") {
		t.Errorf("drift[0] = %q, want the a.F regression first", drift[0])
	}
	if !strings.HasPrefix(drift[1], "regression: d.I:") {
		t.Errorf("drift[1] = %q, want the d.I regression second", drift[1])
	}
	if !strings.HasPrefix(drift[2], "improvement") || !strings.Contains(drift[2], "b.G:") {
		t.Errorf("drift[2] = %q, want the b.G improvement last", drift[2])
	}

	// A vanished hot function with non-zero counts is an improvement.
	gone := &Budget{Functions: map[string]BudgetEntry{
		"a.F": {Escapes: 2, Bounds: 1},
		"c.H": {Escapes: 1, Bounds: 1},
	}}
	drift = DiffBudget(tracked, gone)
	if len(drift) != 1 || !strings.HasPrefix(drift[0], "improvement") || !strings.Contains(drift[0], "b.G:") {
		t.Errorf("dropping b.G: drift = %v, want one b.G improvement", drift)
	}
}

func TestBudgetLoadWriteRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), BudgetFile)

	// A missing snapshot bootstraps as empty (so the first -write run
	// can create it) rather than erroring.
	empty, err := LoadBudget(path)
	if err != nil {
		t.Fatalf("LoadBudget(missing) error: %v", err)
	}
	if len(empty.Functions) != 0 {
		t.Errorf("missing snapshot loaded %d functions, want 0", len(empty.Functions))
	}

	want := &Budget{Functions: map[string]BudgetEntry{
		"internal/netsim.Sim.fire": {Escapes: 2, Bounds: 5},
		"internal/esp.OutboundSA.SealAppend": {Escapes: 0, Bounds: 7},
	}}
	if err := WriteBudget(path, want); err != nil {
		t.Fatalf("WriteBudget: %v", err)
	}
	got, err := LoadBudget(path)
	if err != nil {
		t.Fatalf("LoadBudget: %v", err)
	}
	if !reflect.DeepEqual(got.Functions, want.Functions) {
		t.Errorf("round trip = %v, want %v", got.Functions, want.Functions)
	}
	if got.Note != budgetNote {
		t.Errorf("Note not normalized on write: %q", got.Note)
	}

	// Stable serialization: write twice, identical bytes, trailing
	// newline (keeps regenerated snapshots diff-friendly).
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBudget(path, got); err != nil {
		t.Fatalf("WriteBudget(again): %v", err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Error("WriteBudget is not byte-stable across regeneration")
	}
	if len(first) == 0 || first[len(first)-1] != '\n' {
		t.Error("snapshot must end with a trailing newline")
	}

	esc, bnd := BudgetTotals(got)
	if esc != 2 || bnd != 12 {
		t.Errorf("BudgetTotals = (%d, %d), want (2, 12)", esc, bnd)
	}
}
