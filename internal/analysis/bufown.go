package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BufOwn enforces the netsim.GetBuf/PutBuf single-owner contract from
// DESIGN.md §5a with an intra-procedural, flow-approximate walk:
//
//   - double-Put: a buffer released twice on one path corrupts an
//     unrelated packet later (the pool hands the same array to two
//     owners);
//   - Put after escape: releasing a buffer that was stored into a field,
//     map, slice, channel or closure, where another reference may still
//     be live;
//   - Put of a non-pool slice: recycling a make/literal allocation;
//   - Put of an offset sub-slice (PutBuf(b[2:])): the pool would recycle
//     a base pointer shifted into another allocation;
//   - leak: a GetBuf result that is neither released nor handed off
//     (returned, stored, or passed on) on any path.
//
// Branches merge released-sets by intersection (a buffer counts as
// released only when every surviving path released it), loop bodies are
// analyzed once against their entry state, and reassignment of a tracked
// variable resets its state — deliberately conservative so the check
// stays quiet on correct code.
var BufOwn = &Analyzer{
	Name: "bufown",
	Doc:  "GetBuf/PutBuf pairing: double-Put, Put of escaped or non-pool buffers, leaked Gets",
	Run:  runBufOwn,
}

// isPoolGet reports whether call obtains a pooled buffer: netsim.GetBuf,
// or a Get method on one of the module's buffer-pool adapters
// (netsim.BufPool, the stream.BufferPool interface).
func isPoolGet(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || !strings.HasPrefix(pkgPathOf(fn), "hipcloud/") {
		return false
	}
	switch fn.Name() {
	case "GetBuf":
		return true
	case "Get":
		r := recvTypeName(fn)
		return r == "BufPool" || r == "BufferPool"
	}
	return false
}

// isPoolPut reports whether call releases a pooled buffer, returning the
// released argument.
func isPoolPut(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || !strings.HasPrefix(pkgPathOf(fn), "hipcloud/") || len(call.Args) != 1 {
		return nil, false
	}
	switch fn.Name() {
	case "PutBuf":
		return call.Args[0], true
	case "Put":
		r := recvTypeName(fn)
		if r == "BufPool" || r == "BufferPool" {
			return call.Args[0], true
		}
	}
	return nil, false
}

// isPoolGetProg extends isPoolGet through the call graph: a module
// function whose summary says it returns a fresh pool buffer (a GetBuf
// wrapper) counts as a Get.
func isPoolGetProg(prog *Program, info *types.Info, call *ast.CallExpr) bool {
	if isPoolGet(info, call) {
		return true
	}
	if prog == nil {
		return false
	}
	for _, cand := range prog.resolveCall(info, call) {
		if s := prog.SummaryOf(cand); s != nil && s.ReturnsPoolBuf {
			return true
		}
	}
	return false
}

// isPoolPutProg extends isPoolPut through the call graph: passing a
// buffer to a module function whose summary releases that parameter to
// the pool (a PutBuf wrapper) is a Put of that argument.
func isPoolPutProg(prog *Program, info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	if arg, ok := isPoolPut(info, call); ok {
		return arg, ok
	}
	if prog == nil {
		return nil, false
	}
	for _, cand := range prog.resolveCall(info, call) {
		sum := prog.SummaryOf(cand)
		if sum == nil {
			continue
		}
		for pi, arg := range callArgsWithRecv(call, cand) {
			if arg != nil && sum.paramFacts(pi)&ParamPutPool != 0 {
				return arg, true
			}
		}
	}
	return nil, false
}

// classifyOriginProg extends classifyOrigin through the call graph so a
// buffer obtained from a GetBuf wrapper is tracked like a direct Get.
func classifyOriginProg(prog *Program, info *types.Info, e ast.Expr) bufOrigin {
	if org := classifyOrigin(info, e); org != originNone {
		return org
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		if x.Low == nil || isZeroConst(info, x.Low) {
			return classifyOriginProg(prog, info, x.X)
		}
	case *ast.CallExpr:
		if !isPoolGet(info, x) && isPoolGetProg(prog, info, x) {
			return originPool
		}
	}
	return originNone
}

// bufOrigin classifies the RHS a tracked variable was assigned from.
type bufOrigin int

const (
	originNone    bufOrigin = iota
	originPool              // netsim.GetBuf / pool.Get
	originNonPool           // make([]byte, ...) or a []byte literal
)

// classifyOrigin unwraps zero-offset re-slicing (GetBuf(n)[:0]) and
// reports where a buffer expression came from.
func classifyOrigin(info *types.Info, e ast.Expr) bufOrigin {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return classifyOrigin(info, x.X)
	case *ast.SliceExpr:
		if x.Low == nil || isZeroConst(info, x.Low) {
			return classifyOrigin(info, x.X)
		}
		return originNone
	case *ast.CallExpr:
		if isPoolGet(info, x) {
			return originPool
		}
		if isBuiltinCall(info, x, "make") && len(x.Args) > 0 {
			if tv, ok := info.Types[x.Args[0]]; ok && tv.IsType() && isByteSliceType(tv.Type) {
				return originNonPool
			}
		}
		return originNone
	case *ast.CompositeLit:
		if tv, ok := info.Types[x]; ok && isByteSliceType(tv.Type) {
			return originNonPool
		}
	}
	return originNone
}

func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

func runBufOwn(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					analyzeBufBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				analyzeBufBody(pass, fn.Body)
			}
			return true
		})
	}
	// Offset sub-slice Puts are reported anywhere, tracked or not.
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			arg, ok := isPoolPutProg(pass.Prog, info, call)
			if !ok {
				return true
			}
			if se, ok := ast.Unparen(arg).(*ast.SliceExpr); ok && se.Low != nil && !isZeroConst(info, se.Low) {
				pass.Reportf(call.Pos(), "PutBuf of offset sub-slice: the pool would recycle a base pointer shifted into another allocation")
			}
			return true
		})
	}
}

// bufState is the per-path must-analysis state.
type bufState struct {
	released map[types.Object]token.Pos // definitely released on this path
	escaped  map[types.Object]bool      // may have been stored elsewhere
}

func newBufState() *bufState {
	return &bufState{released: map[types.Object]token.Pos{}, escaped: map[types.Object]bool{}}
}

func (s *bufState) clone() *bufState {
	c := newBufState()
	for k, v := range s.released {
		c.released[k] = v
	}
	for k, v := range s.escaped {
		c.escaped[k] = v
	}
	return c
}

// merge intersects released-sets (must-released on all surviving paths)
// and unions escaped-sets (may-escaped on any path).
func (s *bufState) merge(o *bufState) {
	for k := range s.released {
		if _, ok := o.released[k]; !ok {
			delete(s.released, k)
		}
	}
	for k := range o.escaped {
		s.escaped[k] = true
	}
}

// bufFn analyzes one function body.
type bufFn struct {
	pass    *Pass
	info    *types.Info
	origin  map[types.Object]bufOrigin // tracked locals
	getPos  map[types.Object]token.Pos // where the Get happened
	handoff map[types.Object]bool      // released, returned, stored or passed on somewhere
}

func analyzeBufBody(pass *Pass, body *ast.BlockStmt) {
	bf := &bufFn{
		pass:    pass,
		info:    pass.Pkg.Info,
		origin:  map[types.Object]bufOrigin{},
		getPos:  map[types.Object]token.Pos{},
		handoff: map[types.Object]bool{},
	}
	bf.collect(body)
	if len(bf.origin) == 0 {
		return
	}
	bf.walkBlock(body, newBufState())
	for obj, org := range bf.origin {
		if org == originPool && !bf.handoff[obj] {
			pass.Reportf(bf.getPos[obj], "buffer %s from GetBuf is neither released with PutBuf nor handed off on any path; it leaks every time", obj.Name())
		}
	}
}

// collect finds tracked variables and their handoff uses in a pre-pass
// over the body (skipping nested function literals, which are analyzed
// as their own scopes; outer variables they capture count as handoffs).
func (bf *bufFn) collect(body *ast.BlockStmt) {
	// Pass 1: find locals assigned from a pool Get or a make/literal.
	inspectSkipFuncLit(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := bf.info.Defs[id]
			if obj == nil {
				obj = bf.info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if org := classifyOriginProg(bf.pass.Prog, bf.info, as.Rhs[i]); org != originNone {
				if _, seen := bf.origin[obj]; !seen {
					bf.origin[obj] = org
					bf.getPos[obj] = as.Rhs[i].Pos()
				}
			}
		}
	})
	if len(bf.origin) == 0 {
		return
	}
	// Pass 2: find handoffs — any use that can transfer ownership.
	inspectSkipFuncLit(body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.CallExpr:
			if arg, isPut := isPoolPutProg(bf.pass.Prog, bf.info, x); isPut {
				if obj := bf.trackedIdent(arg); obj != nil {
					bf.handoff[obj] = true
				}
				return
			}
			// Builtin calls (len, cap, copy, append) do not take
			// ownership; any other call does, conservatively.
			if calleeFunc(bf.info, x) == nil && !isDynamicCall(bf.info, x) {
				return
			}
			for _, a := range x.Args {
				if obj := bf.trackedIdent(a); obj != nil {
					bf.handoff[obj] = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if obj := bf.trackedIdent(r); obj != nil {
					bf.handoff[obj] = true
				}
			}
		case *ast.AssignStmt:
			// b used on the RHS of an assignment to something else.
			for _, r := range x.Rhs {
				if obj := bf.trackedIdent(r); obj != nil {
					bf.handoff[obj] = true
				}
			}
		case *ast.SendStmt:
			if obj := bf.trackedIdent(x.Value); obj != nil {
				bf.handoff[obj] = true
			}
		case *ast.CompositeLit:
			for _, e := range x.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if obj := bf.trackedIdent(e); obj != nil {
					bf.handoff[obj] = true
				}
			}
		case *ast.FuncLit:
			// Captures: any tracked ident used inside counts as a handoff.
			ast.Inspect(x.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := bf.info.Uses[id]; obj != nil {
						if _, tracked := bf.origin[obj]; tracked {
							bf.handoff[obj] = true
						}
					}
				}
				return true
			})
		}
	})
}

// trackedIdent resolves e (through zero-offset re-slicing) to a tracked
// variable's object, or nil.
func (bf *bufFn) trackedIdent(e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := bf.info.Uses[x]
		if obj == nil {
			return nil
		}
		if _, ok := bf.origin[obj]; ok {
			return obj
		}
	case *ast.SliceExpr:
		return bf.trackedIdent(x.X)
	}
	return nil
}

// inspectSkipFuncLit walks n in source order, not descending into
// function literals.
func inspectSkipFuncLit(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		fn(m)
		_, isLit := m.(*ast.FuncLit)
		return !isLit
	})
}

// walkBlock runs the must-analysis over a statement list. It returns
// true when the path terminates (return/branch) before the list ends.
func (bf *bufFn) walkBlock(b *ast.BlockStmt, st *bufState) bool {
	for _, s := range b.List {
		if bf.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (bf *bufFn) walkStmt(s ast.Stmt, st *bufState) bool {
	switch x := s.(type) {
	case *ast.BlockStmt:
		return bf.walkBlock(x, st)
	case *ast.IfStmt:
		if x.Init != nil {
			bf.walkStmt(x.Init, st)
		}
		bf.scanExpr(x.Cond, st)
		thenSt := st.clone()
		thenTerm := bf.walkBlock(x.Body, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if x.Else != nil {
			elseTerm = bf.walkStmt(x.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm && x.Else != nil:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			thenSt.merge(elseSt)
			*st = *thenSt
		}
		return false
	case *ast.ForStmt:
		if x.Init != nil {
			bf.walkStmt(x.Init, st)
		}
		if x.Cond != nil {
			bf.scanExpr(x.Cond, st)
		}
		// Loop bodies run zero or more times: analyze against the entry
		// state for reporting, discard released-set changes, keep
		// escapes (union over iterations is still an escape).
		loopSt := st.clone()
		bf.walkBlock(x.Body, loopSt)
		for k := range loopSt.escaped {
			st.escaped[k] = true
		}
		return false
	case *ast.RangeStmt:
		bf.scanExpr(x.X, st)
		loopSt := st.clone()
		bf.walkBlock(x.Body, loopSt)
		for k := range loopSt.escaped {
			st.escaped[k] = true
		}
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return bf.walkCases(s, st)
	case *ast.LabeledStmt:
		return bf.walkStmt(x.Stmt, st)
	case *ast.ReturnStmt:
		bf.scanStmtExprs(s, st)
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the straight-line path.
		return true
	default:
		bf.scanStmtExprs(s, st)
		return false
	}
}

// walkCases handles switch/type-switch/select: each case runs against a
// clone of the entry state; the merged state intersects released-sets
// across the surviving cases plus, when there is no default, the
// fall-past-every-case path.
func (bf *bufFn) walkCases(s ast.Stmt, st *bufState) bool {
	var tag ast.Node
	var body *ast.BlockStmt
	hasDefault := false
	switch x := s.(type) {
	case *ast.SwitchStmt:
		if x.Init != nil {
			bf.walkStmt(x.Init, st)
		}
		if x.Tag != nil {
			bf.scanExpr(x.Tag, st)
		}
		body = x.Body
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			bf.walkStmt(x.Init, st)
		}
		tag = x.Assign
		body = x.Body
	case *ast.SelectStmt:
		body = x.Body
	}
	if tag != nil {
		// Scan the type-switch assign for events (x := y.(type) reads y).
		if as, ok := tag.(ast.Stmt); ok {
			bf.scanStmtExprs(as, st)
		}
	}
	var survivors []*bufState
	allTerm := true
	for _, c := range body.List {
		caseSt := st.clone()
		term := false
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				bf.scanExpr(e, caseSt)
			}
			if cc.List == nil {
				hasDefault = true
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				bf.walkStmt(cc.Comm, caseSt)
			} else {
				hasDefault = true
			}
			stmts = cc.Body
		}
		for _, cs := range stmts {
			if bf.walkStmt(cs, caseSt) {
				term = true
				break
			}
		}
		if !term {
			survivors = append(survivors, caseSt)
			allTerm = false
		}
	}
	if !hasDefault {
		survivors = append(survivors, st.clone())
		allTerm = false
	}
	if allTerm && len(body.List) > 0 {
		return true
	}
	if len(survivors) > 0 {
		merged := survivors[0]
		for _, o := range survivors[1:] {
			merged.merge(o)
		}
		*st = *merged
	}
	return false
}

// scanStmtExprs scans a simple statement's expression tree for events in
// source order.
func (bf *bufFn) scanStmtExprs(s ast.Stmt, st *bufState) {
	// Assignments are the store/reset points: a tracked buffer bound to
	// a second name (or appended into a container) gains a second live
	// reference; a tracked name re-bound to something else becomes a
	// fresh buffer.
	if as, ok := s.(*ast.AssignStmt); ok {
		for _, r := range as.Rhs {
			bf.scanExpr(r, st)
		}
		for i, lhs := range as.Lhs {
			var lhsObj types.Object
			if id, isIdent := lhs.(*ast.Ident); isIdent {
				lhsObj = bf.info.Defs[id]
				if lhsObj == nil {
					lhsObj = bf.info.Uses[id]
				}
			}
			if i < len(as.Rhs) {
				for _, t := range bf.escapeTargets(as.Rhs[i]) {
					// b = b[:n] / b = append(b, ...) rebinds the same
					// backing array to the same name: no second owner.
					if t != lhsObj {
						st.escaped[t] = true
					}
				}
			}
			if lhsObj != nil && i < len(as.Rhs) {
				if _, tracked := bf.origin[lhsObj]; tracked {
					if bf.trackedIdent(as.Rhs[i]) != lhsObj {
						delete(st.released, lhsObj)
						delete(st.escaped, lhsObj)
					}
				}
			}
		}
		return
	}
	inspectSkipFuncLit(s, func(n ast.Node) { bf.visitEvent(n, st) })
}

func (bf *bufFn) scanExpr(e ast.Expr, st *bufState) {
	inspectSkipFuncLit(e, func(n ast.Node) { bf.visitEvent(n, st) })
}

// escapeTargets returns the tracked variables that gain an extra live
// reference when e is bound to a name or stored into an lvalue. Plain
// call arguments are ownership loans (the append APIs hand buffers to
// callees all the time) and do NOT escape; aliasing binds do:
// direct use, re-slicing, builtin append (both the re-sliced first
// argument and reference-typed appended elements), composite literals
// and address-of.
func (bf *bufFn) escapeTargets(e ast.Expr) []types.Object {
	var out []types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := bf.trackedIdent(x); obj != nil {
			out = append(out, obj)
		}
	case *ast.SliceExpr:
		out = append(out, bf.escapeTargets(x.X)...)
	case *ast.UnaryExpr:
		out = append(out, bf.escapeTargets(x.X)...)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			out = append(out, bf.escapeTargets(el)...)
		}
	case *ast.CallExpr:
		if isBuiltinCall(bf.info, x, "append") {
			for i, a := range x.Args {
				if i > 0 && x.Ellipsis.IsValid() && i == len(x.Args)-1 {
					continue // append(dst, b...) copies bytes, no new reference
				}
				out = append(out, bf.escapeTargets(a)...)
			}
		}
	}
	return out
}

// visitEvent handles one node during a scan: Put calls, sends and
// composite-literal stores.
func (bf *bufFn) visitEvent(n ast.Node, st *bufState) {
	switch x := n.(type) {
	case *ast.CallExpr:
		arg, isPut := isPoolPutProg(bf.pass.Prog, bf.info, x)
		if !isPut {
			return
		}
		obj := bf.trackedIdent(arg)
		if obj == nil {
			return
		}
		if prev, ok := st.released[obj]; ok {
			pos := bf.pass.Pkg.Fset.Position(prev)
			bf.pass.Reportf(x.Pos(), "second PutBuf of %s on this path (already released at line %d); double-Put corrupts unrelated packets", obj.Name(), pos.Line)
			return
		}
		if st.escaped[obj] {
			bf.pass.Reportf(x.Pos(), "PutBuf of %s after it was stored elsewhere; another reference may still be live", obj.Name())
		}
		if bf.origin[obj] == originNonPool {
			bf.pass.Reportf(x.Pos(), "PutBuf of %s, which was allocated with make or a literal, not GetBuf", obj.Name())
		}
		st.released[obj] = x.Pos()
	case *ast.SendStmt:
		if obj := bf.trackedIdent(x.Value); obj != nil {
			st.escaped[obj] = true
		}
	case *ast.CompositeLit:
		for _, e := range x.Elts {
			if kv, ok := e.(*ast.KeyValueExpr); ok {
				e = kv.Value
			}
			if obj := bf.trackedIdent(e); obj != nil {
				st.escaped[obj] = true
			}
		}
	}
}
