package analysis

import (
	"go/ast"
	"strings"
)

// AppendAlias flags append-style crypto/marshal calls whose destination
// can alias their source. esp.SealAppend/OpenAppend (and tlslite's
// sealRecordAppend) write ciphertext into dst's spare capacity while
// reading payload; if both re-slice the same backing array —
//
//	sa.SealAppend(b[:0], b[n:])
//
// — the encryptor tramples the plaintext it is still reading, silently
// corrupting the packet (DESIGN.md §5a "payload must not overlap dst's
// spare capacity"). Likewise Segment.MarshalInto(b) copies the segment's
// payload into b, so b must not be the payload itself.
//
// The check is the rootChain approximation: two slice expressions are
// treated as potentially aliasing when they bottom out in the same
// variable/field chain. Distinct variables are assumed distinct arrays.
var AppendAlias = &Analyzer{
	Name: "appendalias",
	Doc:  "append-API calls (SealAppend/OpenAppend/MarshalInto) whose dst may alias src",
	Run:  runAppendAlias,
}

// appendAPIs maps callee names to the (dst, src) argument indices of the
// module's append-style two-slice APIs.
var appendAPIs = map[string][2]int{
	"SealAppend":       {0, 1},
	"OpenAppend":       {0, 1},
	"OpenDataAppend":   {0, 1},
	"sealRecordAppend": {0, 1},
}

func runAppendAlias(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || !strings.HasPrefix(pkgPathOf(fn), "hipcloud/") {
				return true
			}
			if idx, ok := appendAPIs[fn.Name()]; ok && len(call.Args) > idx[1] {
				dst, src := call.Args[idx[0]], call.Args[idx[1]]
				if sameRoot(info, dst, src) {
					chain, _ := rootChain(info, dst)
					pass.Reportf(call.Pos(), "%s: dst and src both re-slice %q and may share a backing array; the seal would trample its own input", fn.Name(), chain)
				}
				return true
			}
			if fn.Name() == "MarshalInto" && len(call.Args) == 1 {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					_, recvBase := rootChain(info, sel.X)
					_, argBase := rootChain(info, call.Args[0])
					if recvBase != nil && recvBase == argBase {
						pass.Reportf(call.Pos(), "MarshalInto destination is derived from the receiver; it may alias the segment payload being copied")
					}
				}
			}
			return true
		})
	}
}
