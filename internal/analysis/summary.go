package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer under hiplint: a module-local
// call graph plus one Summary per declared function, computed bottom-up
// over strongly connected components. A summary records what a function
// does with its parameters (logs them, compares them in variable time,
// retains their backing arrays, zeroizes them, releases them to the
// packet-buffer pool), what its results carry (key material, taint
// derived from arguments, a pooled buffer), and what it transitively
// reaches (the wall clock, a Proc-parking API, a packet emission, lock
// acquisitions). The secflow and lockorder analyzers are built on these
// summaries, and bufown/simdet/schedblock consult them so a helper that
// wraps GetBuf/PutBuf or reaches time.Now through two calls is treated
// exactly like the direct operation.
//
// Everything here is may-analysis over the AST (stdlib go/ast+go/types
// only, no SSA): facts only accumulate, so the SCC fixpoint terminates,
// and a fact like ParamZeroized means "there is a path that zeroizes",
// not "every path does". The checks built on top are written so this
// direction of approximation produces missed findings under adversarial
// code, never noise on straightforward code.

// ParamFacts is a bitset of things a function may do with one parameter
// (the receiver counts as parameter 0 of a method).
type ParamFacts uint16

const (
	// ParamLogged: the parameter's value flows into fmt/log formatting
	// or an error string.
	ParamLogged ParamFacts = 1 << iota
	// ParamVarCompared: compared with bytes.Equal, reflect.DeepEqual or
	// ==/!= rather than a constant-time primitive.
	ParamVarCompared
	// ParamRetained: the parameter's backing array may be aliased into
	// heap state (field, global, map, channel, closure) or returned.
	ParamRetained
	// ParamZeroized: overwritten with zeros (clear(), a full zero loop,
	// or a callee that zeroizes it).
	ParamZeroized
	// ParamPutPool: released to the packet-buffer pool (netsim.PutBuf
	// or a wrapper).
	ParamPutPool
)

// Reach records one transitive fact with the call chain that produces
// it, for diagnostics like "helper → metrics.snap → time.Now".
type Reach struct {
	What string   // terminal culprit ("time.Now", "Proc.Sleep", "channel send", ...)
	Via  []string // callee names from this function down to the culprit
}

func (r *Reach) chain() string {
	if r == nil {
		return ""
	}
	if len(r.Via) == 0 {
		return r.What
	}
	return strings.Join(r.Via, " → ") + " → " + r.What
}

// through extends a callee's reach with one more hop for the caller's
// summary. Chains are capped so mutual recursion cannot grow them
// unboundedly (the fact itself stays; only the narration truncates).
func through(callee string, r *Reach) *Reach {
	if r == nil {
		return nil
	}
	via := append([]string{callee}, r.Via...)
	if len(via) > 6 {
		via = via[:6]
	}
	return &Reach{What: r.What, Via: via}
}

// Summary is the interprocedural abstract of one declared function.
type Summary struct {
	Fn     *types.Func
	Params []ParamFacts // receiver first for methods, then parameters

	// ReturnsSecret: some result carries key material from a secret
	// source (keymat output, ECDH shared secret, puzzle solution).
	ReturnsSecret bool
	// TaintsReturn: some result is derived from the parameters, so a
	// secret argument makes the result secret.
	TaintsReturn bool
	// ReturnsPoolBuf: some result is a fresh pool buffer (a GetBuf
	// wrapper).
	ReturnsPoolBuf bool

	WallClock *Reach // transitively reads/waits on the wall clock
	Blocks    *Reach // transitively calls a Proc-parking API
	Emits     *Reach // transitively performs a Send/callback/channel send

	// Acquires maps lock class → how this function (transitively) takes
	// it. Lock classes are type-qualified ("tlslite.ServerSessions.mu")
	// or package-qualified for globals; function-local mutexes have no
	// class and do not appear.
	Acquires map[string]*Reach
}

func (s *Summary) paramFacts(i int) ParamFacts {
	if s == nil || i < 0 || i >= len(s.Params) {
		return 0
	}
	return s.Params[i]
}

// ParamFactsAt exposes per-parameter facts (receiver first) for tests.
func (s *Summary) ParamFactsAt(i int) ParamFacts { return s.paramFacts(i) }

// funcInfo ties a declared module function to its AST and package.
type funcInfo struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// Program aggregates every package of one hiplint run plus the
// interprocedural facts computed over them.
type Program struct {
	Pkgs []*Package

	fns        map[*types.Func]*funcInfo
	order      []*types.Func // deterministic iteration order (position)
	summaries  map[*types.Func]*Summary
	ifaceCache map[*types.Func][]*types.Func
	methods    []*types.Func // concrete module methods, for interface resolution

	// lockorder's program-wide lock graph, built lazily on first use.
	lockGraph *lockGraph
	// secflow's program-wide secret field classes, built lazily.
	secretClasses map[string]bool
	// hotpath's transitive hot set, built lazily on first use.
	hotSet map[*types.Func]*HotInfo
}

// NewProgram builds the call graph over pkgs and computes summaries
// bottom-up over SCCs.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:       pkgs,
		fns:        make(map[*types.Func]*funcInfo),
		summaries:  make(map[*types.Func]*Summary),
		ifaceCache: make(map[*types.Func][]*types.Func),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				p.fns[fn] = &funcInfo{fn: fn, decl: fd, pkg: pkg}
				p.order = append(p.order, fn)
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					p.methods = append(p.methods, fn)
				}
			}
		}
	}
	sort.Slice(p.order, func(i, j int) bool { return p.order[i].Pos() < p.order[j].Pos() })
	p.computeSummaries()
	return p
}

// SummaryOf returns fn's summary, or nil for functions outside the
// loaded module packages (stdlib, bodyless declarations).
func (p *Program) SummaryOf(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	return p.summaries[fn]
}

// FuncByName resolves "Name" or "Recv.Name" within the program, for the
// engine's own tests.
func (p *Program) FuncByName(name string) *types.Func {
	for _, fn := range p.order {
		n := fn.Name()
		if r := recvTypeName(fn); r != "" {
			n = r + "." + n
		}
		if n == name {
			return fn
		}
	}
	return nil
}

// pkgNameOf returns the package name declaring fn when fn is a module
// function known to the program, else "".
func (p *Program) pkgNameOf(fn *types.Func) string {
	if fi, ok := p.fns[fn]; ok {
		return fi.pkg.Name
	}
	return ""
}

// resolveCall returns the module functions a call may target: the static
// callee when declared in the program, or every module method that
// implements an interface method being invoked. Dynamic calls through
// func values resolve to nothing.
func (p *Program) resolveCall(info *types.Info, call *ast.CallExpr) []*types.Func {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil
	}
	if _, ok := p.fns[fn]; ok {
		return []*types.Func{fn}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	// Only resolve through module-declared interfaces. Stdlib interfaces
	// (io.Writer, hash.Hash, fmt.Stringer) have so many module
	// implementors that resolving them wires call edges between
	// subsystems that never actually touch — every hash.Write would
	// "reach" the TCP stack's Conn.Write.
	if !strings.HasPrefix(pkgPathOf(fn), "hipcloud") {
		return nil
	}
	if cands, ok := p.ifaceCache[fn]; ok {
		return cands
	}
	var cands []*types.Func
	for _, m := range p.methods {
		if m.Name() != fn.Name() {
			continue
		}
		msig, ok := m.Type().(*types.Signature)
		if !ok || msig.Recv() == nil {
			continue
		}
		rt := msig.Recv().Type()
		if types.Implements(rt, iface) {
			cands = append(cands, m)
			continue
		}
		if _, isPtr := rt.(*types.Pointer); !isPtr {
			if types.Implements(types.NewPointer(rt), iface) {
				cands = append(cands, m)
			}
		}
	}
	p.ifaceCache[fn] = cands
	return cands
}

// --- SCC ordering (Tarjan) -------------------------------------------

func (p *Program) callees(fi *funcInfo) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, c := range p.resolveCall(fi.pkg.Info, call) {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
		return true
	})
	return out
}

// sccs returns the strongly connected components of the call graph in
// bottom-up order (every component after the components it calls into).
func (p *Program) sccs() [][]*types.Func {
	index := make(map[*types.Func]int)
	low := make(map[*types.Func]int)
	onStack := make(map[*types.Func]bool)
	var stack []*types.Func
	var comps [][]*types.Func
	next := 0

	adj := make(map[*types.Func][]*types.Func, len(p.order))
	for _, fn := range p.order {
		adj[fn] = p.callees(p.fns[fn])
	}

	// Iterative Tarjan: the module graph is shallow, but recursion depth
	// should not depend on analyzed code shape.
	type frame struct {
		fn *types.Func
		i  int
	}
	var strongconnect func(root *types.Func)
	strongconnect = func(root *types.Func) {
		frames := []frame{{fn: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			advanced := false
			for f.i < len(adj[f.fn]) {
				w := adj[f.fn][f.i]
				f.i++
				if _, seen := index[w]; !seen {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{fn: w})
					advanced = true
					break
				} else if onStack[w] {
					if index[w] < low[f.fn] {
						low[f.fn] = index[w]
					}
				}
			}
			if advanced {
				continue
			}
			if low[f.fn] == index[f.fn] {
				var comp []*types.Func
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.fn {
						break
					}
				}
				comps = append(comps, comp)
			}
			done := f.fn
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[done] < low[parent.fn] {
					low[parent.fn] = low[done]
				}
			}
		}
	}
	for _, fn := range p.order {
		if _, seen := index[fn]; !seen {
			strongconnect(fn)
		}
	}
	return comps
}

func (p *Program) computeSummaries() {
	for _, comp := range p.sccs() {
		// Within an SCC, iterate to fixpoint: facts are monotone bitsets
		// and pointers that only go nil→set, so this terminates.
		for changed := true; changed; {
			changed = false
			for _, fn := range comp {
				ns := p.summarize(p.fns[fn])
				if !summaryEqual(p.summaries[fn], ns) {
					p.summaries[fn] = ns
					changed = true
				}
			}
		}
	}
}

func summaryEqual(a, b *Summary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			return false
		}
	}
	if a.ReturnsSecret != b.ReturnsSecret || a.TaintsReturn != b.TaintsReturn ||
		a.ReturnsPoolBuf != b.ReturnsPoolBuf {
		return false
	}
	if (a.WallClock == nil) != (b.WallClock == nil) ||
		(a.Blocks == nil) != (b.Blocks == nil) ||
		(a.Emits == nil) != (b.Emits == nil) {
		return false
	}
	if len(a.Acquires) != len(b.Acquires) {
		return false
	}
	for k := range a.Acquires {
		if _, ok := b.Acquires[k]; !ok {
			return false
		}
	}
	return true
}

// --- secret sources ---------------------------------------------------

// isSecretSource reports whether call's results are key material at the
// source: keymat stream draws and derivations, ECDH shared-secret
// computation, and puzzle solutions. Keyed by package name so fixtures
// re-declaring the names exercise the same predicate.
func isSecretSource(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Name() {
	case "keymat":
		switch fn.Name() {
		case "Draw", "DeriveAssociation", "DeriveESPRekey":
			return "keymat." + fn.Name(), true
		}
	case "ecdh":
		if fn.Name() == "ECDH" || (fn.Name() == "Bytes" && recvTypeName(fn) == "PrivateKey") {
			return "ecdh." + fn.Name(), true
		}
	case "puzzle":
		if fn.Name() == "Solve" {
			return "puzzle.Solve", true
		}
	}
	return "", false
}

// isECDHSecret reports whether call computes an ECDH shared secret — the
// sources covered by secflow's must-zeroize rule.
func isECDHSecret(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "ecdh" && fn.Name() == "ECDH"
}

// secretFieldNames are struct fields that hold private-key material by
// convention; reading one inside a crypto package is a secret source.
var secretFieldNames = map[string]bool{
	"priv": true, "privKey": true, "privateKey": true, "dhPriv": true,
}

// isLogSink reports whether a call to fn emits its arguments into
// human-readable output or an error string. fmt's Sprint family builds
// strings without emitting — those are taint propagators instead.
func isLogSink(fn *types.Func) bool {
	switch pkgPathOf(fn) {
	case "fmt":
		n := fn.Name()
		return strings.HasPrefix(n, "Print") || strings.HasPrefix(n, "Fprint") || n == "Errorf"
	case "log":
		return true
	case "errors":
		return fn.Name() == "New"
	}
	return false
}

// taintPropagators are stdlib calls whose result textually encodes their
// input (so a secret stays secret through them).
func isTaintPropagator(fn *types.Func) bool {
	switch pkgPathOf(fn) {
	case "encoding/hex", "encoding/base64":
		return true
	case "bytes":
		return fn.Name() == "Clone" || fn.Name() == "Join"
	case "strings":
		return fn.Name() == "Join"
	case "fmt":
		return strings.HasPrefix(fn.Name(), "Sprint") || strings.HasPrefix(fn.Name(), "Append")
	}
	return false
}

// taintCarrier reports whether a value of type t can physically carry
// key bytes: byte slices/arrays (and aggregates holding them), strings,
// and pointers to such. Errors, ints, bools and handle types cannot —
// without this gate, `x, err := deriveKeys(...)` would taint err, and
// every later `log.Fatalf(err)` in the program would light up.
func taintCarrier(t types.Type) bool {
	if t == nil {
		return true
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return taintCarrier(p.Elem())
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Info()&types.IsString != 0
	}
	if _, ok := t.Underlying().(*types.Map); ok {
		return true // maps can hold byte values; keep chains through them
	}
	return containsByteData(t)
}

// --- per-function summarization ---------------------------------------

// sumWalker computes one function's summary. Two value relations are
// tracked separately:
//
//   - taint (information flow; copies count): which parameters' bytes a
//     local value may encode, plus whether it carries source material.
//     Drives Logged/VarCompared and the return facts.
//   - alias (same backing array; copies do not count): which parameters'
//     storage a local may share. Drives Retained/Zeroized/PutPool.
type sumWalker struct {
	prog   *Program
	fi     *funcInfo
	info   *types.Info
	params []*types.Var
	pidx   map[types.Object]int

	taint  map[types.Object]uint64 // local → param mask (info flow)
	secret map[types.Object]bool   // local → carries source material
	alias  map[types.Object]uint64 // local → param mask (same array)

	out *Summary
}

func (p *Program) summarize(fi *funcInfo) *Summary {
	w := &sumWalker{
		prog:   p,
		fi:     fi,
		info:   fi.pkg.Info,
		pidx:   make(map[types.Object]int),
		taint:  make(map[types.Object]uint64),
		secret: make(map[types.Object]bool),
		alias:  make(map[types.Object]uint64),
	}
	sig := fi.fn.Type().(*types.Signature)
	if r := sig.Recv(); r != nil {
		w.params = append(w.params, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		w.params = append(w.params, sig.Params().At(i))
	}
	w.out = &Summary{Fn: fi.fn, Params: make([]ParamFacts, len(w.params)), Acquires: map[string]*Reach{}}
	for i, pv := range w.params {
		if i < 64 {
			w.pidx[pv] = i
			w.taint[pv] = 1 << uint(i)
			w.alias[pv] = 1 << uint(i)
		}
	}
	// Iterate the body until the local taint/alias maps stabilize, so
	// flows through locals defined later in source converge.
	for pass := 0; pass < 8; pass++ {
		before := len(w.taint) + len(w.alias) + countSecrets(w.secret)
		grown := w.pass()
		after := len(w.taint) + len(w.alias) + countSecrets(w.secret)
		if !grown && before == after {
			break
		}
	}
	return w.out
}

func countSecrets(m map[types.Object]bool) int {
	n := 0
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}

// markParams ORs facts into every parameter in mask.
func (w *sumWalker) markParams(mask uint64, f ParamFacts) {
	for i := range w.out.Params {
		if mask&(1<<uint(i)) != 0 {
			w.out.Params[i] |= f
		}
	}
}

// evalTaint returns (param mask, secret) for e under information flow.
func (w *sumWalker) evalTaint(e ast.Expr) (uint64, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		obj := w.info.Uses[x]
		if obj == nil {
			obj = w.info.Defs[x]
		}
		if obj == nil {
			return 0, false
		}
		return w.taint[obj], w.secret[obj]
	case *ast.SelectorExpr:
		if secretFieldNames[x.Sel.Name] && cryptoPkgs[w.fi.pkg.Name] {
			m, _ := w.evalTaint(x.X)
			return m, true
		}
		return w.evalTaint(x.X)
	case *ast.ParenExpr:
		return w.evalTaint(x.X)
	case *ast.SliceExpr:
		return w.evalTaint(x.X)
	case *ast.IndexExpr:
		return w.evalTaint(x.X)
	case *ast.StarExpr:
		return w.evalTaint(x.X)
	case *ast.UnaryExpr:
		return w.evalTaint(x.X)
	case *ast.BinaryExpr:
		m1, s1 := w.evalTaint(x.X)
		m2, s2 := w.evalTaint(x.Y)
		return m1 | m2, s1 || s2
	case *ast.CompositeLit:
		var m uint64
		s := false
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			em, es := w.evalTaint(el)
			m |= em
			s = s || es
		}
		return m, s
	case *ast.CallExpr:
		return w.evalCallTaint(x)
	case *ast.TypeAssertExpr:
		return w.evalTaint(x.X)
	}
	return 0, false
}

func (w *sumWalker) evalCallTaint(call *ast.CallExpr) (uint64, bool) {
	// Conversions carry their operand.
	if tv, ok := w.info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		return w.evalTaint(call.Args[0])
	}
	if isBuiltinCall(w.info, call, "append") {
		var m uint64
		s := false
		for _, a := range call.Args {
			am, as := w.evalTaint(a)
			m |= am
			s = s || as
		}
		return m, s
	}
	if isBuiltinCall(w.info, call, "len") || isBuiltinCall(w.info, call, "cap") {
		return 0, false
	}
	if _, ok := isSecretSource(w.info, call); ok {
		return 0, true
	}
	fn := calleeFunc(w.info, call)
	if fn != nil && isTaintPropagator(fn) {
		var m uint64
		s := false
		for _, a := range call.Args {
			am, as := w.evalTaint(a)
			m |= am
			s = s || as
		}
		return m, s
	}
	// Module callees: combine per their summaries.
	var m uint64
	s := false
	for _, cand := range w.prog.resolveCall(w.info, call) {
		sum := w.prog.summaries[cand]
		if sum == nil {
			continue
		}
		if sum.ReturnsSecret {
			s = true
		}
		if sum.TaintsReturn {
			am, as := w.callArgsTaint(call, cand)
			m |= am
			s = s || as
		}
	}
	return m, s
}

// callArgsTaint unions taint across every argument (receiver included).
func (w *sumWalker) callArgsTaint(call *ast.CallExpr, callee *types.Func) (uint64, bool) {
	var m uint64
	s := false
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			rm, rs := w.evalTaint(sel.X)
			m |= rm
			s = s || rs
		}
	}
	for _, a := range call.Args {
		am, as := w.evalTaint(a)
		m |= am
		s = s || as
	}
	return m, s
}

// evalAlias returns the parameters whose backing storage e may share.
func (w *sumWalker) evalAlias(e ast.Expr) uint64 {
	switch x := e.(type) {
	case *ast.Ident:
		obj := w.info.Uses[x]
		if obj == nil {
			obj = w.info.Defs[x]
		}
		if obj == nil {
			return 0
		}
		return w.alias[obj]
	case *ast.ParenExpr:
		return w.evalAlias(x.X)
	case *ast.SliceExpr:
		return w.evalAlias(x.X)
	case *ast.IndexExpr:
		return w.evalAlias(x.X)
	case *ast.StarExpr:
		return w.evalAlias(x.X)
	case *ast.UnaryExpr:
		return w.evalAlias(x.X)
	case *ast.SelectorExpr:
		return w.evalAlias(x.X)
	case *ast.CompositeLit:
		var m uint64
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			m |= w.evalAlias(el)
		}
		return m
	case *ast.CallExpr:
		// append(dst, b) keeps a reference to b when b is itself a
		// slice element; append(dst, b...) copies bytes.
		if isBuiltinCall(w.info, x, "append") {
			var m uint64
			for i, a := range x.Args {
				if i > 0 && x.Ellipsis.IsValid() && i == len(x.Args)-1 {
					continue
				}
				m |= w.evalAlias(a)
			}
			return m
		}
	}
	return 0
}

// pass walks the whole body once, growing the maps and the summary.
// It reports whether any summary bit changed.
func (w *sumWalker) pass() bool {
	beforeParams := append([]ParamFacts(nil), w.out.Params...)
	before := *w.out

	ast.Inspect(w.fi.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			w.assign(x)
		case *ast.RangeStmt:
			if mask, ok := w.zeroLoop(x); ok {
				w.markParams(mask, ParamZeroized)
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				m, s := w.evalTaint(r)
				if s {
					w.out.ReturnsSecret = true
				}
				if m != 0 {
					w.out.TaintsReturn = true
				}
				if w.returnsPool(r) {
					w.out.ReturnsPoolBuf = true
				}
				w.markParams(w.evalAlias(r), ParamRetained)
			}
		case *ast.SendStmt:
			w.reachEmit(&Reach{What: "channel send"})
			w.markParams(w.evalAlias(x.Value), ParamRetained)
		case *ast.BinaryExpr:
			if x.Op == token.EQL || x.Op == token.NEQ {
				if comparableSecretType(w.info, x.X) || comparableSecretType(w.info, x.Y) {
					mx, _ := w.evalTaint(x.X)
					my, _ := w.evalTaint(x.Y)
					w.markParams(mx|my, ParamVarCompared)
				}
			}
		case *ast.CallExpr:
			w.call(x)
		case *ast.FuncLit:
			// The literal's body is walked by this same Inspect; any
			// captured parameter alias additionally counts as retained
			// (the closure may outlive the call).
			ast.Inspect(x.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := w.info.Uses[id]; obj != nil {
						if i, ok := w.pidx[obj]; ok {
							w.out.Params[i] |= ParamRetained
						}
					}
				}
				return true
			})
		}
		return true
	})

	if len(beforeParams) != len(w.out.Params) {
		return true
	}
	for i := range beforeParams {
		if beforeParams[i] != w.out.Params[i] {
			return true
		}
	}
	return before.ReturnsSecret != w.out.ReturnsSecret ||
		before.TaintsReturn != w.out.TaintsReturn ||
		before.ReturnsPoolBuf != w.out.ReturnsPoolBuf ||
		(before.WallClock == nil) != (w.out.WallClock == nil) ||
		(before.Blocks == nil) != (w.out.Blocks == nil) ||
		(before.Emits == nil) != (w.out.Emits == nil)
}

func (w *sumWalker) reachEmit(r *Reach) {
	if w.out.Emits == nil {
		w.out.Emits = r
	}
}

// returnsPool reports whether e is a fresh pool buffer.
func (w *sumWalker) returnsPool(e ast.Expr) bool {
	if classifyOrigin(w.info, e) == originPool {
		return true
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		for _, cand := range w.prog.resolveCall(w.info, call) {
			if s := w.prog.summaries[cand]; s != nil && s.ReturnsPoolBuf {
				return true
			}
		}
	}
	return false
}

// assign merges RHS facts into LHS locals and records retention for
// stores into non-local locations.
func (w *sumWalker) assign(as *ast.AssignStmt) {
	// Tuple assignment from one call: every LHS gets the call's facts.
	rhsFor := func(i int) ast.Expr {
		if len(as.Rhs) == len(as.Lhs) {
			return as.Rhs[i]
		}
		if len(as.Rhs) == 1 {
			return as.Rhs[0]
		}
		return nil
	}
	for i, lhs := range as.Lhs {
		rhs := rhsFor(i)
		if rhs == nil {
			continue
		}
		m, s := w.evalTaint(rhs)
		am := w.evalAlias(rhs)
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			obj := w.info.Defs[id]
			if obj == nil {
				obj = w.info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if _, isParam := w.pidx[obj]; !isParam && isLocalObj(obj, w.fi) {
				if taintCarrier(obj.Type()) {
					w.taint[obj] |= m
					if s {
						w.secret[obj] = true
					}
				}
				w.alias[obj] |= am
				continue
			}
			// Package-level variable (or a parameter rebound): storing an
			// alias there retains it.
			w.markParams(am, ParamRetained)
			continue
		}
		// Store through a selector/index/deref: the RHS alias escapes
		// into heap state.
		w.markParams(am, ParamRetained)
	}
}

func isLocalObj(obj types.Object, fi *funcInfo) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pos() >= fi.decl.Pos() && v.Pos() <= fi.decl.End()
}

// zeroLoop matches `for i := range b { b[i] = 0 }` and returns b's alias
// mask.
func (w *sumWalker) zeroLoop(r *ast.RangeStmt) (uint64, bool) {
	if r.Key == nil || len(r.Body.List) != 1 {
		return 0, false
	}
	as, ok := r.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
		return 0, false
	}
	ix, ok := as.Lhs[0].(*ast.IndexExpr)
	if !ok || !isZeroConst(w.info, as.Rhs[0]) {
		return 0, false
	}
	if !sameRoot(w.info, ix.X, r.X) {
		return 0, false
	}
	keyID, ok := r.Key.(*ast.Ident)
	if !ok {
		return 0, false
	}
	ixID, ok := ast.Unparen(ix.Index).(*ast.Ident)
	if !ok || ixID.Name != keyID.Name {
		return 0, false
	}
	return w.evalAlias(r.X), true
}

// call processes one call expression for effects and reach facts.
func (w *sumWalker) call(call *ast.CallExpr) {
	info := w.info
	// clear(b) zeroizes.
	if isBuiltinCall(info, call, "clear") && len(call.Args) == 1 {
		w.markParams(w.evalAlias(call.Args[0]), ParamZeroized)
		return
	}
	fn := calleeFunc(info, call)

	// Wall clock.
	if fn != nil && pkgPathOf(fn) == "time" && wallClockFuncs[fn.Name()] {
		if w.out.WallClock == nil {
			w.out.WallClock = &Reach{What: "time." + fn.Name()}
		}
	}
	// Proc blocking: Proc.Sleep, or any call passing a *netsim.Proc.
	if fn != nil && isNetsimFunc(fn) && recvTypeName(fn) == "Proc" && fn.Name() == "Sleep" {
		if w.out.Blocks == nil {
			w.out.Blocks = &Reach{What: "Proc.Sleep"}
		}
	}
	// The "*Proc argument ⇒ parks the caller" convention holds for
	// netsim's public API as used from outside; netsim's own internals
	// shuttle *Proc values around constantly without parking anyone
	// (scheduleWake, ready queues, WakeAll), so the heuristic is
	// suspended while summarizing netsim itself. Proc.Sleep above stays.
	isSpawn := fn != nil && isNetsimFunc(fn) && fn.Name() == "Spawn"
	if !isSpawn && w.fi.pkg.Name != "netsim" {
		for _, a := range call.Args {
			if isProcPtr(info, a) {
				if w.out.Blocks == nil {
					w.out.Blocks = &Reach{What: callDisplayName(fn, call) + "(*Proc)"}
				}
				break
			}
		}
	}
	// Emission: module Send-shaped calls and dynamic (callback) calls.
	if fn != nil && sendNames[fn.Name()] && strings.HasPrefix(pkgPathOf(fn), "hipcloud/") {
		w.reachEmit(&Reach{What: recvTypeName(fn) + "." + fn.Name()})
	} else if fn == nil && isDynamicCall(info, call) {
		w.reachEmit(&Reach{What: "callback invocation"})
	}
	// Lock acquisition (for the transitive Acquires set).
	if chain, acquire, ok := (&lockWalker{info: info}).mutexOp(call); ok && acquire {
		if class := lockClass(info, call, chain); class != "" {
			if _, seen := w.out.Acquires[class]; !seen {
				w.out.Acquires[class] = &Reach{What: class + ".Lock"}
			}
		}
		return
	}
	// Pool release.
	if arg, ok := isPoolPut(info, call); ok {
		w.markParams(w.evalAlias(arg), ParamPutPool)
		return
	}
	// Log sinks.
	if fn != nil && isLogSink(fn) {
		for _, a := range call.Args {
			m, _ := w.evalTaint(a)
			w.markParams(m, ParamLogged)
		}
		return
	}
	// Variable-time comparison sinks.
	if fn != nil && ((fn.Name() == "Equal" && pkgPathOf(fn) == "bytes") ||
		(fn.Name() == "DeepEqual" && pkgPathOf(fn) == "reflect")) {
		for _, a := range call.Args {
			m, _ := w.evalTaint(a)
			w.markParams(m, ParamVarCompared)
		}
		return
	}
	// Module callees: propagate their summaries. Per-param and lock
	// facts use may-semantics (any candidate), so taint flows through
	// interface methods. Reach facts (wall clock, blocking, emission)
	// use must-semantics across dynamic dispatch: an interface call is
	// charged with a reach only when every module implementor has it —
	// otherwise every sim-wired call through secio's Conn would be
	// condemned for the real-socket implementor it never binds.
	cands := w.prog.resolveCall(info, call)
	static := fn != nil && len(cands) == 1 && cands[0] == fn
	wallAll, blocksAll, emitsAll := true, true, true
	if !static {
		for _, cand := range cands {
			sum := w.prog.summaries[cand]
			if sum == nil {
				continue
			}
			wallAll = wallAll && sum.WallClock != nil
			blocksAll = blocksAll && sum.Blocks != nil
			emitsAll = emitsAll && sum.Emits != nil
		}
	}
	for _, cand := range cands {
		sum := w.prog.summaries[cand]
		if sum == nil {
			continue
		}
		name := cand.Name()
		if r := recvTypeName(cand); r != "" {
			name = r + "." + name
		}
		if sum.WallClock != nil && wallAll && w.out.WallClock == nil {
			w.out.WallClock = through(name, sum.WallClock)
		}
		if sum.Blocks != nil && blocksAll && w.out.Blocks == nil {
			w.out.Blocks = through(name, sum.Blocks)
		}
		if sum.Emits != nil && emitsAll && w.out.Emits == nil {
			w.out.Emits = through(name, sum.Emits)
		}
		for class, r := range sum.Acquires {
			if _, seen := w.out.Acquires[class]; !seen {
				w.out.Acquires[class] = through(name, r)
			}
		}
		// Per-argument effects.
		args := callArgsWithRecv(call, cand)
		for pi, arg := range args {
			if arg == nil {
				continue
			}
			facts := sum.paramFacts(pi)
			if facts == 0 {
				continue
			}
			tm, _ := w.evalTaint(arg)
			am := w.evalAlias(arg)
			if facts&ParamLogged != 0 {
				w.markParams(tm, ParamLogged)
			}
			if facts&ParamVarCompared != 0 {
				w.markParams(tm, ParamVarCompared)
			}
			if facts&ParamRetained != 0 {
				w.markParams(am, ParamRetained)
			}
			if facts&ParamZeroized != 0 {
				w.markParams(am, ParamZeroized)
			}
			if facts&ParamPutPool != 0 {
				w.markParams(am, ParamPutPool)
			}
		}
	}
}

// callArgsWithRecv aligns call arguments with callee parameter indices:
// slot 0 is the receiver expression for methods, then the arguments.
// Slots beyond the argument list (variadic underflow) are nil.
func callArgsWithRecv(call *ast.CallExpr, callee *types.Func) []ast.Expr {
	var out []ast.Expr
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			out = append(out, sel.X)
		} else {
			out = append(out, nil)
		}
	}
	for _, a := range call.Args {
		out = append(out, a)
	}
	return out
}

// lockClass names a mutex for cross-function ordering: receiver-typed
// fields become "pkg.Type.field...", package-level mutexes become
// "pkg.var...". Function-local mutexes return "" (no cross-function
// ordering is possible through them).
func lockClass(info *types.Info, call *ast.CallExpr, chain string) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	_, base := rootChain(info, sel.X)
	v, ok := base.(*types.Var)
	if !ok || v.Pkg() == nil {
		return ""
	}
	rest := chain
	if i := strings.IndexByte(chain, '.'); i >= 0 {
		rest = chain[i+1:]
	} else {
		rest = ""
	}
	// Package-level mutex (or a struct var holding one).
	if v.Parent() == v.Pkg().Scope() {
		if rest == "" {
			return v.Pkg().Name() + "." + v.Name()
		}
		return v.Pkg().Name() + "." + v.Name() + "." + rest
	}
	// Receiver or parameter of a named type: qualify by the type.
	t := v.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && rest != "" {
		return v.Pkg().Name() + "." + n.Obj().Name() + "." + rest
	}
	return ""
}
