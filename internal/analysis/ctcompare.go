package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CTCompare flags variable-time comparisons of authenticator material in
// the crypto packages: bytes.Equal (and == / != on byte arrays or
// strings) leaks a timing side channel when one operand is a MAC, ICV,
// tag, digest or peer-echoed nonce — an attacker who can submit guesses
// learns a prefix length per probe. Such comparisons must go through
// hmac.Equal or subtle.ConstantTimeCompare.
//
// Heuristic: the comparison sits in a crypto package and either operand's
// name (rightmost identifier, field or method in the expression) matches
// the sensitive-name list. Non-secret equality on other data is
// untouched.
var CTCompare = &Analyzer{
	Name: "ctcompare",
	Doc:  "bytes.Equal or ==/!= on MAC/ICV/tag/digest/nonce values; use hmac.Equal",
	Run:  runCTCompare,
}

// cryptoPkgs names the packages handling keys and authenticators, keyed
// by package name (fixtures re-declare these names under testdata).
var cryptoPkgs = map[string]bool{
	"esp": true, "keymat": true, "tlslite": true, "hip": true,
	"puzzle": true, "identity": true, "secio": true, "hipwire": true,
}

// sensitiveWords mark a value as authenticator-like when they appear in
// its name.
var sensitiveWords = []string{"mac", "icv", "tag", "digest", "sum", "hmac", "nonce", "echo", "finished"}

func isSensitiveName(name string) bool {
	l := strings.ToLower(name)
	for _, w := range sensitiveWords {
		if strings.Contains(l, w) {
			return true
		}
	}
	return false
}

// exprName extracts the rightmost identifier-ish name from an expression:
// a.echoSent -> "echoSent", mac.Sum(nil) -> "Sum", tag[:n] -> "tag".
func exprName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.ParenExpr:
		return exprName(x.X)
	case *ast.SliceExpr:
		return exprName(x.X)
	case *ast.IndexExpr:
		return exprName(x.X)
	case *ast.CallExpr:
		return exprName(x.Fun)
	}
	return ""
}

func runCTCompare(pass *Pass) {
	if !cryptoPkgs[pass.Pkg.Name] {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(info, x)
				if fn == nil || fn.Name() != "Equal" || pkgPathOf(fn) != "bytes" || len(x.Args) != 2 {
					return true
				}
				for _, a := range x.Args {
					if isSensitiveName(exprName(a)) {
						pass.Reportf(x.Pos(), "bytes.Equal on %q is variable-time; compare authenticators with hmac.Equal or subtle.ConstantTimeCompare", exprName(a))
						return true
					}
				}
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				if !comparableSecretType(info, x.X) && !comparableSecretType(info, x.Y) {
					return true
				}
				for _, a := range []ast.Expr{x.X, x.Y} {
					if isSensitiveName(exprName(a)) {
						pass.Reportf(x.Pos(), "%s on %q is variable-time; compare authenticators with hmac.Equal or subtle.ConstantTimeCompare", x.Op, exprName(a))
						return true
					}
				}
			}
			return true
		})
	}
}

// comparableSecretType limits the ==/!= rule to byte arrays and strings —
// the shapes authenticator material takes; integer tags and enum
// comparisons stay legal.
func comparableSecretType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Basic:
		return t.Info()&types.IsString != 0
	case *types.Array:
		b, ok := t.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	}
	return false
}
