package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// suppression is one parsed //lint:allow comment.
type suppression struct {
	pos    token.Position
	check  string
	reason string
	used   bool
}

// parseSuppressions extracts every //lint:allow comment in pkg. Malformed
// comments (missing check name or reason) come back as diagnostics under
// the synthetic check name "lint" and are excluded from the suppression
// list.
func parseSuppressions(pkg *Package) ([]suppression, []Diagnostic) {
	var sups []suppression
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:     pos,
						Check:   "lint",
						Message: "suppression is missing a check name and/or reason: want //lint:allow <check> <reason>",
					})
					continue
				}
				sups = append(sups, suppression{
					pos:    pos,
					check:  fields[0],
					reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return sups, bad
}

// knownCheckNames is every name a //lint:allow comment may legally carry:
// the full analyzer suite plus the synthetic "lint" check the suppression
// machinery reports under.
func knownCheckNames() map[string]bool {
	known := map[string]bool{"lint": true}
	for _, a := range All() {
		known[a.Name] = true
	}
	return known
}

// applySuppressions filters diags through the package's //lint:allow
// comments and appends a diagnostic for every defective suppression.
//
// A comment
//
//	//lint:allow <check> <reason...>
//
// silences diagnostics of <check> on its own line or on the line directly
// below it (so it can trail the flagged statement or sit above it). Three
// defects are themselves findings, reported under the synthetic check
// name "lint" and impossible to waive:
//
//   - a suppression with no reason string (every waiver must say why);
//   - a check name no analyzer answers to (typo'd waivers silently
//     accept the finding they meant to document);
//   - a waiver whose check ran over the package and flagged nothing on
//     its lines (the code was fixed, or the waiver never matched — either
//     way it is dead and must be deleted).
//
// Unused-ness is only judged for checks in ran: a simdet waiver is not
// "unused" during a -checks=bufown run that never gave it a chance.
func applySuppressions(pkg *Package, diags []Diagnostic, ran []*Analyzer) []Diagnostic {
	sups, bad := parseSuppressions(pkg)
	diags = append(diags, bad...)

	known := knownCheckNames()
	ranSet := make(map[string]bool, len(ran))
	for _, a := range ran {
		ranSet[a.Name] = true
	}

	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for i := range sups {
			s := &sups[i]
			if s.check != d.Check || s.pos.Filename != d.Pos.Filename {
				continue
			}
			if s.pos.Line == d.Pos.Line || s.pos.Line == d.Pos.Line-1 {
				s.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, s := range sups {
		switch {
		case !known[s.check]:
			out = append(out, Diagnostic{
				Pos:     s.pos,
				Check:   "lint",
				Message: fmt.Sprintf("//lint:allow names unknown check %q; it suppresses nothing (see hiplint -list for check names)", s.check),
			})
		case ranSet[s.check] && !s.used:
			out = append(out, Diagnostic{
				Pos:     s.pos,
				Check:   "lint",
				Message: "unused //lint:allow " + s.check + ": the check reports nothing on this line or the next; delete the waiver",
			})
		}
	}
	return out
}

// Waiver is one active, well-formed //lint:allow comment, as listed by
// `hiplint -waivers`.
type Waiver struct {
	Pos    token.Position
	Check  string
	Reason string
}

// CollectWaivers lists every well-formed waiver across pkgs, sorted by
// position, so the waiver inventory is auditable in one command.
func CollectWaivers(pkgs []*Package) []Waiver {
	var out []Waiver
	for _, pkg := range pkgs {
		sups, _ := parseSuppressions(pkg)
		for _, s := range sups {
			out = append(out, Waiver{Pos: s.pos, Check: s.check, Reason: s.reason})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}
