package analysis

import (
	"go/token"
	"strings"
)

// suppression is one parsed //lint:allow comment.
type suppression struct {
	pos    token.Position
	check  string
	reason string
	used   bool
}

// applySuppressions filters diags through the package's //lint:allow
// comments and appends a diagnostic for every malformed suppression.
//
// A comment
//
//	//lint:allow <check> <reason...>
//
// silences diagnostics of <check> on its own line or on the line directly
// below it (so it can trail the flagged statement or sit above it). The
// reason is mandatory: a suppression without one is reported under the
// synthetic check name "lint" and silences nothing.
func applySuppressions(pkg *Package, diags []Diagnostic) []Diagnostic {
	var sups []suppression
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{
						Pos:     pos,
						Check:   "lint",
						Message: "suppression is missing a check name and/or reason: want //lint:allow <check> <reason>",
					})
					continue
				}
				sups = append(sups, suppression{
					pos:    pos,
					check:  fields[0],
					reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	if len(sups) == 0 {
		return diags
	}
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for i := range sups {
			s := &sups[i]
			if s.check != d.Check || s.pos.Filename != d.Pos.Filename {
				continue
			}
			if s.pos.Line == d.Pos.Line || s.pos.Line == d.Pos.Line-1 {
				s.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}
