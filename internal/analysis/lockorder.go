package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockOrder is the call-graph-aware companion to LockedSend: it builds
// the mutex-acquisition graph across the whole program and reports
//
//   - lock-order cycles: somewhere lock A is taken while B is held and
//     somewhere else B is taken while A is held (directly or through a
//     callee chain) — the classic ABBA deadlock, invisible to any
//     single-function walk;
//   - locks held across Proc blocking points: a simulated process that
//     parks (Proc.Sleep, WaitQueue.Wait, Conn.Read — anything taking a
//     *netsim.Proc) while holding a mutex wedges every other process
//     that needs the lock, including through helpers whose blocking is
//     only visible in their summaries;
//   - locks held across calls whose *callees* emit packets or invoke
//     callbacks (the direct-emission case is LockedSend's).
//
// Locks are identified by class — "pkg.Type.field" for mutexes reached
// through a receiver or parameter, "pkg.var" for package-level ones —
// so h1.mu and h2.mu of the same type order against each other.
// Function-local mutexes have no class: no other function can
// participate in an ordering with them, so they only join the
// held-across-blocking check. Two acquisitions of the *same* class
// (locking two peers of one type) are not reported: ordering those
// needs a runtime tiebreak the analyzer cannot see.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock-order cycles and locks held across blocking or emitting call chains",
	Run:  runLockOrder,
}

// lockEdge records "to acquired while from was held" at one site.
type lockEdge struct {
	from, to string
	pos      token.Pos
	pkg      *Package
	via      string // callee chain when the acquisition is transitive
}

// lockSite records a lock held across a blocking or emitting operation.
type lockSite struct {
	pos  token.Pos
	pkg  *Package
	held string // display name of the held lock(s)
	what string // what happens under the lock
}

type lockGraph struct {
	edges  []lockEdge
	blocks []lockSite
	emits  []lockSite

	onCycle map[string]string // "from→to" → cycle description
}

// lockOrderGraph builds (once) the program-wide acquisition graph.
func (p *Program) lockOrderGraph() *lockGraph {
	if p.lockGraph != nil {
		return p.lockGraph
	}
	g := &lockGraph{}
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				w := &orderWalker{prog: p, pkg: pkg, lw: &lockWalker{info: pkg.Info}, g: g, held: map[string]heldLock{}}
				w.walk(fd.Body)
			}
		}
	}
	g.findCycles()
	p.lockGraph = g
	return g
}

// findCycles marks every edge whose target can reach back to its source.
func (g *lockGraph) findCycles() {
	g.onCycle = map[string]string{}
	adj := map[string]map[string]bool{}
	for _, e := range g.edges {
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}
	// path returns a lock sequence from src to dst, or nil.
	var path func(src, dst string, seen map[string]bool) []string
	path = func(src, dst string, seen map[string]bool) []string {
		if src == dst {
			return []string{src}
		}
		if seen[src] {
			return nil
		}
		seen[src] = true
		next := make([]string, 0, len(adj[src]))
		for n := range adj[src] {
			next = append(next, n)
		}
		sort.Strings(next)
		for _, n := range next {
			if p := path(n, dst, seen); p != nil {
				return append([]string{src}, p...)
			}
		}
		return nil
	}
	for _, e := range g.edges {
		key := e.from + "→" + e.to
		if _, done := g.onCycle[key]; done {
			continue
		}
		if back := path(e.to, e.from, map[string]bool{}); back != nil {
			g.onCycle[key] = strings.Join(append([]string{e.from}, back...), " → ")
		}
	}
}

type heldLock struct {
	class string // "" for function-local mutexes
}

// orderWalker walks one function in statement order, maintaining the
// held set and recording graph edges and blocking/emitting sites.
type orderWalker struct {
	prog *Program
	pkg  *Package
	lw   *lockWalker // for mutexOp recognition only
	g    *lockGraph
	held map[string]heldLock // chain → lock
}

func (w *orderWalker) heldDesc() string {
	names := make([]string, 0, len(w.held))
	for chain, h := range w.held {
		if h.class != "" {
			names = append(names, h.class)
		} else {
			names = append(names, chain)
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func (w *orderWalker) acquire(call *ast.CallExpr, chain string) {
	class := lockClass(w.pkg.Info, call, chain)
	if class != "" {
		for _, h := range w.held {
			if h.class != "" && h.class != class {
				w.g.edges = append(w.g.edges, lockEdge{from: h.class, to: class, pos: call.Pos(), pkg: w.pkg})
			}
		}
	}
	w.held[chain] = heldLock{class: class}
}

func (w *orderWalker) walk(n ast.Node) {
	switch x := n.(type) {
	case *ast.BlockStmt:
		for _, s := range x.List {
			w.walk(s)
		}
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if chain, acq, ok := w.lw.mutexOp(call); ok {
				if acq {
					w.acquire(call, chain)
				} else {
					delete(w.held, chain)
				}
				return
			}
		}
		w.scan(x)
	case *ast.DeferStmt:
		if _, acq, ok := w.lw.mutexOp(x.Call); ok && !acq {
			return // defer mu.Unlock(): held to function end
		}
		w.scan(x)
	case *ast.IfStmt:
		if x.Init != nil {
			w.walk(x.Init)
		}
		w.scan(x.Cond)
		w.walkBranch(x.Body)
		if x.Else != nil {
			w.walkBranch(x.Else)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			w.walk(x.Init)
		}
		if x.Cond != nil {
			w.scan(x.Cond)
		}
		w.walkBranch(x.Body)
	case *ast.RangeStmt:
		w.scan(x.X)
		w.walkBranch(x.Body)
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.walk(x.Init)
		}
		if x.Tag != nil {
			w.scan(x.Tag)
		}
		w.walkBranch(x.Body)
	case *ast.TypeSwitchStmt:
		w.walkBranch(x.Body)
	case *ast.SelectStmt:
		w.walkBranch(x.Body)
	case *ast.CaseClause:
		for _, s := range x.Body {
			w.walk(s)
		}
	case *ast.CommClause:
		if x.Comm != nil {
			w.walk(x.Comm)
		}
		for _, s := range x.Body {
			w.walk(s)
		}
	case *ast.LabeledStmt:
		w.walk(x.Stmt)
	case ast.Stmt:
		w.scan(x)
	case ast.Expr:
		w.scan(x)
	}
}

func (w *orderWalker) walkBranch(n ast.Node) {
	saved := w.held
	w.held = make(map[string]heldLock, len(saved))
	for k, v := range saved {
		w.held[k] = v
	}
	w.walk(n)
	w.held = saved
}

// scan inspects one statement/expression under the current held set.
func (w *orderWalker) scan(n ast.Node) {
	if len(w.held) == 0 {
		return
	}
	info := w.pkg.Info
	inspectSkipFuncLit(n, func(m ast.Node) {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeFunc(info, call)

		// Direct Proc blocking under a lock.
		if fn != nil && isNetsimFunc(fn) && recvTypeName(fn) == "Proc" && fn.Name() == "Sleep" {
			w.g.blocks = append(w.g.blocks, lockSite{pos: call.Pos(), pkg: w.pkg, held: w.heldDesc(), what: "Proc.Sleep"})
			return
		}
		isSpawn := fn != nil && isNetsimFunc(fn) && fn.Name() == "Spawn"
		if !isSpawn {
			for _, a := range call.Args {
				if isProcPtr(info, a) {
					w.g.blocks = append(w.g.blocks, lockSite{pos: call.Pos(), pkg: w.pkg, held: w.heldDesc(), what: callDisplayName(fn, call) + " (takes *Proc)"})
					return
				}
			}
		}
		if fn == nil {
			return
		}
		// Direct emissions are LockedSend's; here only callee facts.
		directSend := sendNames[fn.Name()] && strings.HasPrefix(pkgPathOf(fn), "hipcloud/")
		for _, cand := range w.prog.resolveCall(info, call) {
			sum := w.prog.SummaryOf(cand)
			if sum == nil {
				continue
			}
			name := cand.Name()
			if r := recvTypeName(cand); r != "" {
				name = r + "." + name
			}
			// Transitive acquisitions: edges from every held class.
			for class, reach := range sum.Acquires {
				for _, h := range w.held {
					if h.class != "" && h.class != class {
						w.g.edges = append(w.g.edges, lockEdge{from: h.class, to: class, pos: call.Pos(), pkg: w.pkg, via: through(name, reach).chain()})
					}
				}
			}
			if sum.Blocks != nil {
				w.g.blocks = append(w.g.blocks, lockSite{pos: call.Pos(), pkg: w.pkg, held: w.heldDesc(), what: through(name, sum.Blocks).chain()})
			}
			if sum.Emits != nil && !directSend {
				w.g.emits = append(w.g.emits, lockSite{pos: call.Pos(), pkg: w.pkg, held: w.heldDesc(), what: through(name, sum.Emits).chain()})
			}
		}
	})
}

func runLockOrder(pass *Pass) {
	g := pass.Prog.lockOrderGraph()
	reported := map[string]bool{}
	for _, e := range g.edges {
		if e.pkg != pass.Pkg {
			continue
		}
		key := e.from + "→" + e.to
		cycle, ok := g.onCycle[key]
		if !ok || reported[key] {
			continue
		}
		reported[key] = true
		via := ""
		if e.via != "" {
			via = " (via " + e.via + ")"
		}
		pass.Reportf(e.pos, "acquiring %s while holding %s%s closes a lock-order cycle (%s); acquire locks in one global order", e.to, e.from, via, cycle)
	}
	// Held-across-blocking and held-across-emit extend schedblock and
	// lockedsend through the call graph, and like those checks they are
	// run-to-completion rules: they apply only to the virtual-time
	// packages. Real-socket packages (hipudp, cmd/*) hold mutexes across
	// blocking I/O and callback dispatch by design — goroutines and
	// blocking calls are their whole concurrency model — so only the
	// lock-order-cycle rule above applies to them.
	if !virtualTimePkgs[pass.Pkg.Name] {
		return
	}
	for _, s := range g.blocks {
		if s.pkg != pass.Pkg {
			continue
		}
		pass.Reportf(s.pos, "%s held across %s, which parks the calling process; any process needing the lock deadlocks the simulation", s.held, s.what)
	}
	for _, s := range g.emits {
		if s.pkg != pass.Pkg {
			continue
		}
		pass.Reportf(s.pos, "%s held across a call that reaches %s; delivery can re-enter the lock holder synchronously (deadlock shape)", s.held, s.what)
	}
}
