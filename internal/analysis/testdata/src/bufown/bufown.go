// Package bufown is a hiplint fixture: deliberate violations of the
// GetBuf/PutBuf ownership contract, with // want expectations consumed
// by the golden-file tests in internal/analysis.
package bufown

import "hipcloud/internal/netsim"

var global [][]byte

// doublePut releases the same buffer twice on one straight-line path.
func doublePut() {
	b := netsim.GetBuf(64)
	netsim.PutBuf(b)
	netsim.PutBuf(b) // want "second PutBuf of b"
}

// branchPut is correct: each path releases exactly once.
func branchPut(cond bool) []byte {
	b := netsim.GetBuf(64)
	if cond {
		netsim.PutBuf(b)
		return nil
	}
	return b
}

// putEscaped stores the buffer into a global, then releases it while the
// stored reference is still live.
func putEscaped() {
	b := netsim.GetBuf(64)
	global = append(global, b)
	netsim.PutBuf(b) // want "after it was stored"
}

// putForeign recycles a GC-owned allocation into the pool.
func putForeign() {
	b := make([]byte, 64)
	netsim.PutBuf(b) // want "allocated with make"
}

// putOffset recycles a sub-slice whose base pointer is shifted into the
// middle of another allocation.
func putOffset(b []byte) {
	netsim.PutBuf(b[2:]) // want "offset sub-slice"
}

// leak draws a buffer that no path releases or hands off.
func leak() {
	b := netsim.GetBuf(128) // want "neither released"
	b[0] = 1
}

// handoff is correct: ownership passes to the callee.
func handoff(send func(p []byte)) {
	b := netsim.GetBuf(64)
	send(b)
}

// reuseAfterReslice is correct: b = b[:0] keeps the same backing array,
// so the single PutBuf is the only release.
func reuseAfterReslice() {
	b := netsim.GetBuf(64)
	b = b[:0]
	b = append(b, 1, 2, 3)
	netsim.PutBuf(b)
}

// getScratch and putScratch wrap the pool: their summaries (returns a
// fresh pool buffer / releases its parameter) make the wrapped cases
// below equivalent to calling the pool directly.

func getScratch() []byte { return netsim.GetBuf(64) }

func putScratch(b []byte) { netsim.PutBuf(b) }

// wrappedLeak draws through the wrapper and never releases.
func wrappedLeak() {
	b := getScratch() // want "neither released"
	b[0] = 1
}

// wrappedPair is correct: acquisition and release both go through the
// wrappers.
func wrappedPair() {
	b := getScratch()
	b[0] = 1
	putScratch(b)
}

// wrappedDoublePut releases once through the wrapper and once directly.
func wrappedDoublePut() {
	b := getScratch()
	putScratch(b)
	netsim.PutBuf(b) // want "second PutBuf of b"
}
