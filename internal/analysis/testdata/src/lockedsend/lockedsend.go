// Package lockedsend is a hiplint fixture: emissions performed while a
// sync.Mutex is held (the simulator's deadlock shape).
package lockedsend

import "sync"

type fab struct{}

func (fab) Send(to string, b []byte) error { return nil }

type stack struct {
	mu sync.Mutex
	f  fab
	cb func(int)
	ch chan int
}

func (s *stack) badSend() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.f.Send("peer", nil) // want "fab.Send while holding s.mu"
}

func (s *stack) badCallback() {
	s.mu.Lock()
	s.cb(1) // want "callback invocation while holding s.mu"
	s.mu.Unlock()
}

func (s *stack) badChan(v int) {
	s.mu.Lock()
	s.ch <- v // want "channel send while holding s.mu"
	s.mu.Unlock()
}

func (s *stack) unlockedOK() {
	s.mu.Lock()
	cp := s.f
	s.mu.Unlock()
	cp.Send("peer", nil)
}

func (s *stack) branchOK(c bool) {
	s.mu.Lock()
	if c {
		s.mu.Unlock()
		s.f.Send("peer", nil) // lock released on this path: fine
		return
	}
	s.mu.Unlock()
}
