// Package netsim here is a hiplint fixture for the lockorder analyzer:
// the package name puts it in the virtual-time set, so the
// held-across-blocking and held-across-emission rules apply alongside
// the lock-order-cycle rule. The Proc stub reuses the scheduler naming
// the analyzers key on.
package netsim

import "sync"

type Proc struct{}

func (p *Proc) Sleep(d int) {}

// parkHelper parks through its Proc: callers that hold a lock across it
// are flagged through the summary engine.
func parkHelper(p *Proc) { p.Sleep(1) }

// --- lock-order cycle ---

type accountA struct{ mu sync.Mutex }
type accountB struct{ mu sync.Mutex }
type config struct{ mu sync.Mutex }

func lockAB(a *accountA, b *accountB) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "closes a lock-order cycle"
	b.mu.Unlock()
}

func lockBA(a *accountA, b *accountB) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want "closes a lock-order cycle"
	a.mu.Unlock()
}

// orderedOK nests in one global order with no reversed path anywhere:
// the edge accountA.mu -> config.mu is on no cycle.
func orderedOK(a *accountA, c *config) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}

// --- cycle closed only through a callee's summary ---

type journal struct{ mu sync.Mutex }
type index struct{ mu sync.Mutex }

// lockIndex takes the index lock; its summary carries the acquisition.
func lockIndex(ix *index) {
	ix.mu.Lock()
	ix.mu.Unlock()
}

// journalThenIndex's edge exists only through lockIndex's summary.
func journalThenIndex(j *journal, ix *index) {
	j.mu.Lock()
	defer j.mu.Unlock()
	lockIndex(ix) // want "closes a lock-order cycle"
}

func indexThenJournal(j *journal, ix *index) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	j.mu.Lock() // want "closes a lock-order cycle"
	j.mu.Unlock()
}

// --- lock held across a blocking point ---

type table struct{ mu sync.Mutex }

func (t *table) waitLocked(p *Proc) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p.Sleep(1) // want "held across Proc.Sleep"
}

func (t *table) waitViaHelper(p *Proc) {
	t.mu.Lock()
	parkHelper(p) // want "held across parkHelper"
	t.mu.Unlock()
}

// unlockFirstOK releases before parking.
func unlockFirstOK(t *table, p *Proc) {
	t.mu.Lock()
	t.mu.Unlock()
	p.Sleep(1)
}

// --- lock held across an emission ---

type mailbox struct{ ch chan int }

// deliver's summary records the channel send.
func (m *mailbox) deliver() { m.ch <- 1 }

func (t *table) notifyLocked(m *mailbox) {
	t.mu.Lock()
	m.deliver() // want "held across a call that reaches"
	t.mu.Unlock()
}

// directSendLocked is the lockedsend analyzer's territory: lockorder
// leaves sends at the flagged line itself to that check.
func (t *table) directSendLocked(m *mailbox) {
	t.mu.Lock()
	m.ch <- 2
	t.mu.Unlock()
}
