// Package keymat here is a hiplint fixture for the secflow analyzer: the
// package name puts it in the crypto set, so the source predicates
// (keymat.Draw, ecdh.ECDH), the key-material parameter seeding and the
// retire/eviction rules all fire. Each violation carries a // want
// expectation; the adjacent clean variants prove the analyzer stays
// quiet once the key material is handled correctly.
package keymat

import (
	"bytes"
	"crypto/ecdh"
	"encoding/hex"
	"fmt"
	"log"
)

// Draw stands in for keymat.Draw: calls to it are secret sources by
// package and function name.
func Draw(n int) []byte { return make([]byte, n) }

// --- log and error-string sinks ---

func logsDirect() {
	k := Draw(16)
	fmt.Printf("key=%x\n", k) // want "key material .k. flows into fmt.Printf"
}

func logsViaPropagator() {
	k := Draw(16)
	s := hex.EncodeToString(k)
	log.Println(s) // want "key material .s. flows into log.Println"
}

func logsLengthOK() {
	k := Draw(16)
	fmt.Printf("drew %d bytes\n", len(k)) // the length is not the key
}

// logHelper formats its argument; b is not named like key material, so
// only the summary engine knows callers leak through it.
func logHelper(b []byte) {
	fmt.Println(string(b))
}

func logsViaHelper() {
	k := Draw(16)
	logHelper(k) // want "key material .k. passed to logHelper, which formats it"
}

// --- taint through a module interface method ---

type sink interface{ consume(b []byte) }

type logSink struct{}

func (logSink) consume(b []byte) { log.Println(string(b)) }

func leaksViaInterface(s sink) {
	k := Draw(8)
	s.consume(k) // want "key material .k. passed to logSink.consume, which formats it"
}

// --- variable-time comparisons ---

func comparesArray(key [16]byte, tag [16]byte) bool {
	return key == tag // want "variable-time"
}

func comparesViaBytesEqual(secret, other []byte) bool {
	return bytesEqual(secret, other) // want "passed to bytesEqual, which compares it in variable time"
}

// bytesEqual hides a short-circuiting comparison behind an innocuous
// name: its summary marks both parameters variable-compared.
func bytesEqual(a, b []byte) bool {
	return bytes.Equal(a, b)
}

// --- ECDH shared-secret must-zeroize ---

// kdf copies the secret into derived output without retaining it, so the
// caller keeps the zeroization obligation.
func kdf(b []byte) []byte {
	d := append([]byte(nil), b...)
	return d
}

// wipeBuf zeroizes its parameter; passing a secret here discharges the
// obligation interprocedurally.
func wipeBuf(b []byte) { clear(b) }

func ecdhLeaked(priv *ecdh.PrivateKey, peer *ecdh.PublicKey) []byte {
	secret, err := priv.ECDH(peer) // want "ECDH shared secret secret is never zeroized"
	if err != nil {
		return nil
	}
	return kdf(secret)
}

func ecdhCleared(priv *ecdh.PrivateKey, peer *ecdh.PublicKey) []byte {
	secret, err := priv.ECDH(peer)
	if err != nil {
		return nil
	}
	out := kdf(secret)
	clear(secret)
	return out
}

func ecdhWipedViaHelper(priv *ecdh.PrivateKey, peer *ecdh.PublicKey) []byte {
	secret, err := priv.ECDH(peer)
	if err != nil {
		return nil
	}
	out := kdf(secret)
	wipeBuf(secret)
	return out
}

func ecdhReturnedOK(priv *ecdh.PrivateKey, peer *ecdh.PublicKey) []byte {
	secret, err := priv.ECDH(peer)
	if err != nil {
		return nil
	}
	return secret // ownership moves to the caller
}

// --- retire/rekey overwrites ---

type session struct {
	key []byte
}

// installKey marks session.key as a key-material class: the seeded
// parameter taints the field program-wide.
func installKey(s *session, key []byte) { s.key = key }

// rekeySwap overwrites live key material through a pointer on a
// rekey-named path without wiping the displaced value.
func rekeySwap(s *session, fresh []byte) {
	s.key = fresh // want "overwritten on a retire/rekey path"
}

// rekeyWiped clears the old key first.
func rekeyWiped(s *session, fresh []byte) {
	clear(s.key)
	s.key = fresh
}

// rekeyFreshLocal assembles a value-typed local: overwriting its fields
// strands nothing long-lived, so the retire rule stays quiet.
func rekeyFreshLocal(fresh []byte) session {
	var out session
	out.key = fresh
	return out
}

// --- map eviction dropping key bytes ---

type store struct {
	sessions map[string][]byte
}

// putSession marks store.sessions as secret-bearing.
func (st *store) putSession(id string, secret []byte) {
	st.sessions[id] = secret
}

func (st *store) evictSession(id string) {
	delete(st.sessions, id) // want "delete on st.sessions drops an entry holding key material"
}

func (st *store) evictWiped(id string) {
	clear(st.sessions[id])
	delete(st.sessions, id)
}
