// Package netsim here is the caller half of the wallclock fixture: the
// package name puts it in the virtual-time set, and every wall-clock
// access below hides behind a call into the sibling util package — only
// the interprocedural summaries can see through it.
package netsim

import "hipcloud/internal/analysis/testdata/src/wallclock/util"

func stampDirect() int64 {
	return util.NowMillis() // want "reaches the wall clock"
}

func stampChained() int64 {
	return util.Monotonic() // want "reaches the wall clock"
}

// sizeOK calls a clock-free helper from the same package: reachability,
// not package membership, is what gets flagged.
func sizeOK(b []byte) int {
	return util.Width(b)
}
