// Package util is the callee half of the wallclock fixture: a
// non-virtual-time helper package whose functions read the wall clock.
// Nothing here is flagged — simdet only polices virtual-time packages —
// but the summaries computed for these functions are what lets the
// analyzer flag the cross-package call sites in the sibling sim package.
package util

import "time"

// NowMillis reads the wall clock directly.
func NowMillis() int64 { return time.Now().UnixMilli() }

// Monotonic reaches the clock only through NowMillis, so flagging its
// callers takes a two-hop chain through the summary engine.
func Monotonic() int64 { return NowMillis() }

// Width is clock-free: calling it from a virtual-time package is fine.
func Width(b []byte) int { return len(b) }
