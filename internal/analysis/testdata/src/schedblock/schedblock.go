// Package netsim here is a hiplint fixture: it declares stand-ins for the
// scheduler types (the schedblock check keys on the netsim package name
// plus receiver type names) to exercise the run-to-completion rules.
package netsim

import "time"

type Sim struct{}

func (s *Sim) At(t time.Duration, fn func())       {}
func (s *Sim) After(d time.Duration, fn func())    {}
func (s *Sim) NewTimer(fn func()) *Timer           { return nil }
func (s *Sim) Spawn(name string, fn func(p *Proc)) {}
func (s *Sim) Now() time.Duration                  { return 0 }

type Timer struct{}

func (t *Timer) Reset(at time.Duration) {}
func (t *Timer) Stop()                  {}

type Proc struct{}

func (p *Proc) Sleep(d time.Duration)               {}
func (p *Proc) Now() time.Duration                  { return 0 }
func (p *Proc) Spawn(name string, fn func(p *Proc)) {}

type WaitQueue struct{}

func (q *WaitQueue) Wait(p *Proc, timeout time.Duration) bool { return false }
func (q *WaitQueue) WaitFn(fn func())                         {}
func (q *WaitQueue) WakeOne() bool                            { return false }

type CPU struct{}

func (c *CPU) Use(p *Proc, work time.Duration)          {}
func (c *CPU) UseAsync(work time.Duration, done func()) {}

type conn struct{}

func (c *conn) Read(p *Proc, b []byte) (int, error) { return 0, nil }

func sleepInHandler(s *Sim, p *Proc) {
	s.At(0, func() {
		p.Sleep(time.Millisecond) // want "Proc.Sleep inside a Sim.At callback blocks the scheduler"
	})
}

func waitInAfter(s *Sim, q *WaitQueue, p *Proc) {
	s.After(time.Second, func() {
		q.Wait(p, 0) // want "WaitQueue.Wait takes a .Proc inside a Sim.After callback"
	})
}

func procAPIInTimer(s *Sim, c *conn, p *Proc) {
	var buf [16]byte
	s.NewTimer(func() {
		c.Read(p, buf[:]) // want "conn.Read takes a .Proc inside a Sim.NewTimer callback"
	})
}

func cpuUseInWaitFn(q *WaitQueue, cpu *CPU, p *Proc) {
	q.WaitFn(func() {
		cpu.Use(p, time.Millisecond) // want "CPU.Use takes a .Proc inside a WaitQueue.WaitFn callback"
	})
}

func sleepInUseAsync(cpu *CPU, p *Proc) {
	cpu.UseAsync(time.Millisecond, func() {
		p.Sleep(time.Millisecond) // want "Proc.Sleep inside a CPU.UseAsync callback blocks the scheduler"
	})
}

func nestedLiteralStillSchedContext(s *Sim, p *Proc) {
	s.At(0, func() {
		retry := func() {
			p.Sleep(time.Millisecond) // want "Proc.Sleep inside a Sim.At callback blocks the scheduler"
		}
		retry()
	})
}

func spawnBodyIsProcessContextOK(s *Sim, q *WaitQueue) {
	s.At(0, func() {
		s.Spawn("worker", func(p *Proc) {
			p.Sleep(time.Millisecond) // process context: blocking is fine
			q.Wait(p, 0)
		})
	})
}

func nonBlockingHandlerOK(s *Sim, q *WaitQueue, tm *Timer) {
	s.After(time.Second, func() {
		q.WakeOne()
		tm.Reset(s.Now() + time.Second)
		s.At(s.Now(), func() {})
	})
}

// worker holds its Proc in a field: blocking through it passes no *Proc
// argument, so only the summary engine can see the park.
type worker struct{ p *Proc }

func (w *worker) wait() { w.p.Sleep(time.Millisecond) }

func fieldProcInHandler(s *Sim, w *worker) {
	s.At(0, func() {
		w.wait() // want "worker.wait inside a Sim.At callback reaches Proc.Sleep"
	})
}

// scheduleWake mirrors the scheduler's internal wake path: it takes a
// *Proc but parks nobody.
func scheduleWake(p *Proc) {}

// wakeAll's summary must stay block-free: inside package netsim the
// takes-*Proc summary heuristic is suspended (the scheduler's own wake
// machinery shuttles Procs without parking), so handlers can call it.
func wakeAll(procs []*Proc) {
	for _, p := range procs {
		scheduleWake(p)
	}
}

func wakeFromHandlerOK(s *Sim, procs []*Proc) {
	s.At(0, func() {
		wakeAll(procs)
	})
}

func processContextOK(q *WaitQueue, cpu *CPU) {
	fn := func(p *Proc) {
		p.Sleep(time.Millisecond)
		q.Wait(p, 0)
		cpu.Use(p, time.Millisecond)
	}
	_ = fn
}
