// Package netsim here is a hiplint fixture: it borrows the name of a
// hot-root package (hotpath seeds its hot set by package name), so
// Sim.Run below is a declared root and everything it reaches is hot.
// Each helper exercises one allocation idiom the check flags — plus the
// cold-path and constructor shapes it must stay quiet about.
package netsim

import (
	"errors"
	"fmt"
)

type lock struct{ held bool }

func (l *lock) Lock()   { l.held = true }
func (l *lock) Unlock() { l.held = false }

type item struct{ n int }

type handler interface{ handle() int }

type val struct{ n int }

func (v val) handle() int { return v.n }

type pval struct{ n int }

func (p *pval) handle() int { return p.n }

// DebugLog mirrors the optional-hook pattern: package-level, nil unless
// a test wires a tracer in. Bodies guarded by its nil check are cold.
var DebugLog func(string)

// lastKept pins keep's argument, so keep's summary retains its param.
var lastKept *item

// hook is a dynamic callee: hotpath cannot see through a func value, so
// composite arguments passed to it are assumed retained.
var hook func(*item)

type Sim struct {
	state   map[string]int
	peers   map[string]bool
	order   []int
	scratch []byte
	last    *item
	mu      lock
	ch      chan *item
}

// Run matches the netsim Sim.Run hot root by package, receiver, and name.
func (s *Sim) Run() {
	s.mapRange()
	s.deferLoop()
	s.closures(3)
	s.boxing(4)
	s.appends(s.scratch)
	s.conversions("key", s.scratch)
	s.composites()
	s.logging(7)
	_ = s.coldPaths(s.scratch)
	_ = s.spawn()
}

func (s *Sim) mapRange() int {
	total := 0
	for _, v := range s.state { // want "map iteration on the hot path"
		total += v
	}
	for _, v := range s.order { // slice iteration: deterministic and flat
		total += v
	}
	return total
}

func (s *Sim) deferLoop() {
	for i := 0; i < 3; i++ {
		s.mu.Lock()
		defer s.mu.Unlock() // want "defer inside a loop heap-allocates a defer record"
	}
	s.mu.Lock()
	defer s.mu.Unlock() // a single defer outside any loop: fine
}

func (s *Sim) closures(n int) int {
	f := func() int { return n } // want "closure capturing n allocates its environment"
	g := func() int { return 42 } // capture-free literal: a static funcval
	return f() + g()
}

func dispatch(h handler) int { return h.handle() }

func (s *Sim) boxing(n int) int {
	v := val{n: n}
	total := dispatch(v) // want "boxing val into handler allocates per call"
	p := &pval{n: n}
	total += dispatch(p) // pointer-shaped: fits the interface word directly
	return total
}

func (s *Sim) appends(src []byte) []byte {
	var grown []byte
	for _, c := range src {
		grown = append(grown, c) // want "append grows grown, a fresh unpooled buffer"
	}
	merged := append([]byte{}, src...) // want "append onto a fresh empty slice"
	_ = merged
	sized := make([]byte, 0, len(src))
	sized = append(sized, src...) // pre-sized once up front: the approved shape
	return sized
}

func (s *Sim) conversions(k string, b []byte) int {
	if s.peers[string(b)] { // map-index position: the compiler avoids the copy
		return 0
	}
	if string(b) == k { // comparison position: no copy
		return 1
	}
	switch string(b) { // switch-tag position: no copy
	case "stop":
		return 2
	}
	key := string(b) // want "string.b. conversion copies on the hot path"
	raw := []byte(k) // want "byte.s. conversion copies on the hot path"
	return len(key) + len(raw)
}

// keep retains its argument in package state: its summary marks the
// parameter retained, so composite arguments at its call sites escape.
func keep(it *item) { lastKept = it }

// bump only writes through the pointer; nothing outlives the call.
func bump(it *item) { it.n++ }

func (s *Sim) composites() {
	keep(&item{n: 1}) // want "escapes through this call"
	bump(&item{n: 2}) // callee provably does not retain: no finding
	s.last = &item{n: 3} // want "stored into heap state"
	s.ch <- &item{n: 4} // want "sent on a channel escapes to the heap"
	hook(&item{n: 5}) // want "escapes through this call"
	tmp := &item{n: 6} // stays local: left to escape analysis / the -budget gate
	tmp.n++
}

func (s *Sim) logging(seq int) string {
	return fmt.Sprintf("event %d", seq) // want "fmt.Sprintf allocates on the hot path"
}

func (s *Sim) coldPaths(b []byte) error {
	if len(b) == 0 {
		return errors.New("empty packet") // cold: block returns a non-nil error
	}
	if err := s.validate(b); err != nil {
		return fmt.Errorf("validate: %w", err) // cold: under an err != nil guard
	}
	if DebugLog != nil {
		DebugLog(fmt.Sprintf("accepted %d bytes", len(b))) // cold: nil-guarded debug hook
	}
	return nil
}

func (s *Sim) validate(b []byte) error {
	if len(b) > 1<<16 {
		return errors.New("oversized") // cold: error-return tail
	}
	return nil
}

// spawn returns a freshly built item: `return &T{...}` is the
// constructor idiom and is deliberately not flagged statically — the
// -budget layer prices the escape at each hot caller instead.
func (s *Sim) spawn() *item {
	return &item{n: len(s.order)}
}

// buildIndex is never reached from a hot root: the same idioms that are
// findings above draw nothing here.
func buildIndex(names []string) map[string]int {
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[fmt.Sprintf("node-%s", n)] = i
	}
	return idx
}

var _ = buildIndex
