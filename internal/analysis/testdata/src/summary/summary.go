// Package keymat here is a fixture for the summary engine itself rather
// than for any single analyzer: summary_test.go loads it, builds a
// Program and asserts the computed facts directly. The cases concentrate
// on what the bottom-up SCC walk has to get right — mutually recursive
// helpers whose facts only stabilize at the fixpoint, taint that flows
// through an interface method, and the must-semantics rule for reach
// facts across dynamic dispatch.
package keymat

import (
	"fmt"
	"time"
)

// Draw stands in for keymat.Draw, a secret source by package and name.
func Draw(n int) []byte { return make([]byte, n) }

// GetBuf/PutBuf stand in for the packet-buffer pool: the module path
// prefix and the names are what the pool predicates key on.
func GetBuf() []byte  { return make([]byte, 1500) }
func PutBuf(b []byte) {}

// --- mutual recursion: the log sink is only visible from pingLog's
// base case, but the fixpoint must mark b logged in BOTH functions. ---

func pingLog(b []byte, n int) {
	if n == 0 {
		fmt.Println(string(b))
		return
	}
	pongLog(b, n-1)
}

func pongLog(b []byte, n int) { pingLog(b, n-1) }

// --- mutually recursive buffer helpers: the PutBuf is reachable from
// either entry point only through the other. ---

func releaseEven(b []byte, n int) {
	if n == 0 {
		PutBuf(b)
		return
	}
	releaseOdd(b, n-1)
}

func releaseOdd(b []byte, n int) { releaseEven(b, n-1) }

// --- self-recursion: the secret return surfaces at the base case. ---

func recDraw(n int) []byte {
	if n == 0 {
		return Draw(16)
	}
	return recDraw(n - 1)
}

// --- recursive taint through an interface method: wrapVisitor.visit
// reaches leafVisitor.visit (which returns its argument) only through
// dynamic dispatch, and is itself one of the dispatch candidates. ---

type visitor interface{ visit(b []byte) []byte }

type leafVisitor struct{}

func (leafVisitor) visit(b []byte) []byte { return b }

type wrapVisitor struct{ inner visitor }

func (w wrapVisitor) visit(b []byte) []byte { return w.inner.visit(b) }

// --- zeroization discharged through a helper ---

func wipe(b []byte)      { clear(b) }
func wipeOuter(b []byte) { wipe(b) }

// --- wall clock: a static chain propagates, a dynamic dispatch with a
// clock-free implementor must not. ---

func now() time.Time { return time.Now() }

func stampTwice() int64 { return now().UnixNano() - now().UnixNano() }

type ticker interface{ tick() int64 }

type wallTicker struct{}

func (wallTicker) tick() int64 { return time.Now().UnixNano() }

type simTicker struct{ t int64 }

func (s simTicker) tick() int64 { return s.t }

// viaTicker's callee set is {wallTicker.tick, simTicker.tick}; since the
// sim implementor never reads the wall clock, the call proves nothing
// and viaTicker must stay clock-free (must-semantics).
func viaTicker(t ticker) int64 { return t.tick() }
