// Package appendalias is a hiplint fixture: append-style crypto calls
// whose destination aliases their source.
package appendalias

import (
	"hipcloud/internal/esp"
	"hipcloud/internal/stream"
)

func aliasedSeal(sa *esp.OutboundSA, b []byte) {
	sa.SealAppend(b[:0], b[4:]) // want "may share a backing array"
}

func aliasedOpen(sa *esp.InboundSA, pkt []byte) {
	sa.OpenAppend(pkt[:0], pkt) // want "may share a backing array"
}

func distinctOK(sa *esp.OutboundSA, b []byte) {
	dst := make([]byte, 0, 256)
	out, _ := sa.SealAppend(dst, b)
	_ = out
}

func nilDstOK(sa *esp.OutboundSA, b []byte) {
	out, _ := sa.SealAppend(nil, b)
	_ = out
}

func marshalAliased(s stream.Segment) {
	s.MarshalInto(s.Payload) // want "alias the segment payload"
}

func marshalOK(s stream.Segment, wire []byte) {
	s.MarshalInto(wire)
}
