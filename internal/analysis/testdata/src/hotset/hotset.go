// Package netsim here is a hiplint fixture for the hot-set computation
// itself: it borrows a hot-root package name so Sim.Run seeds the set,
// then lays out one interface with a single module implementor (the
// must-dispatch edge joins the hot set) and one with two (ambiguous: no
// edge, nobody joins). TestHotSetMustSemantics asserts membership; the
// single // want below just satisfies the fixture harness when this
// package is also run through the analyzer.
package netsim

type Sim struct {
	h single
	m multi
}

// single has exactly one module implementor: must-dispatch resolves it.
type single interface{ Handle() }

type only struct{ n int }

func (o *only) Handle() { o.n = onlyReached(o.n) }

func onlyReached(n int) int { return n + 1 }

// multi has two module implementors: dispatch is ambiguous, so neither
// implementation (nor anything below them) becomes hot.
type multi interface{ Do() }

type impl1 struct{}

func (impl1) Do() { implReached(1) }

type impl2 struct{}

func (impl2) Do() { implReached(2) }

var sink map[string]int

func implReached(n int) {
	// A map range that must NOT be flagged: this function is only
	// reachable through the ambiguous multi.Do dispatch.
	for k := range sink {
		sink[k] = n
	}
}

// Run is the root. direct() is hot through a static call; s.h.Handle()
// is hot through the single-implementor interface edge; s.m.Do() adds
// nothing.
func (s *Sim) Run() {
	direct()
	s.h.Handle()
	s.m.Do()
}

func direct() {
	for range sink { // want "map iteration on the hot path"
	}
}

// orphan is unreachable from any root.
func orphan() {
	for range sink {
	}
}

var _ = orphan
