// Package netsim here is a hiplint fixture for //lint:allow handling:
// a justified waiver silences exactly one diagnostic, an identical
// violation without one still fires, and a waiver with no reason is
// itself a finding (and suppresses nothing).
package netsim

import "time"

func suppressedOnce() {
	//lint:allow simdet fixture: this one wall-clock read is intentional
	time.Sleep(time.Millisecond)
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

func malformedWaiver() {
	// want:+1 "suppression is missing a check name and/or reason"
	//lint:allow simdet
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

func unknownCheckWaiver() {
	// want:+1 "names unknown check .nosuch.; it suppresses nothing"
	//lint:allow nosuch fixture: the check name has a typo
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

func unusedWaiver() {
	// want:+1 "unused //lint:allow simdet: the check reports nothing"
	//lint:allow simdet fixture: this line stopped violating long ago
	_ = time.Millisecond
}
