// Package esp here is a hiplint fixture: it borrows the name of a crypto
// package (the ctcompare check keys on package names) to exercise the
// constant-time comparison rules.
package esp

import (
	"bytes"
	"crypto/hmac"
)

func badTag(tag, want []byte) bool {
	return bytes.Equal(tag, want) // want "bytes.Equal on .tag. is variable-time"
}

func badDigest(a, digest [32]byte) bool {
	return a == digest // want "variable-time"
}

func badNonceString(nonce, got string) bool {
	return nonce != got // want "variable-time"
}

func lenOK(tag []byte) bool {
	return len(tag) == 32 // integer comparison: fine
}

func hmacOK(tag, want []byte) bool {
	return hmac.Equal(tag, want)
}

func plainDataOK(a, b []byte) bool {
	return bytes.Equal(a, b) // no sensitive name: fine
}
