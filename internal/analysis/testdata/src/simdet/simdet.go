// Package netsim here is a hiplint fixture: it borrows the name of a
// virtual-time package (the simdet check keys on package names) to
// exercise the determinism rules.
package netsim

import (
	"math/rand"
	"sort"
	"time"
)

type fabric struct{}

func (fabric) Send(to string, b []byte) {}

func wallClock() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

func wallClockNow() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func globalRand() int {
	return rand.Intn(10) // want "global math/rand.Intn"
}

func localRandOK(r *rand.Rand) int {
	return r.Intn(10) // method on a locally seeded source: fine
}

func seededOK() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

func mapEmit(m map[string][]byte, f fabric) {
	for k := range m {
		f.Send(k, m[k]) // want "call to Send inside a range over a map"
	}
}

func mapChanSend(m map[string]chan int) {
	for _, ch := range m {
		ch <- 1 // want "channel send inside a range over a map"
	}
}

func sortedEmitOK(m map[string][]byte, f fabric) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f.Send(k, m[k])
	}
}
