package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPath enforces the repo's perf contracts the way the other analyzers
// enforce its security contracts: statically. PR 1/6 bought the data
// plane and the simulator core their 0-alloc hot paths (19.4 ns/event),
// but the only guard was a handful of runtime AllocsPerRun tests — one
// stray fmt.Sprintf, boxing conversion or escaping closure in a dispatch
// loop silently erodes the BENCH_SIM.json trajectory. HotPath computes
// the transitive *hot set* from the declared roots below (the event
// dispatch loop, the packet pumps, the seal/open fast paths, the HIP
// packet/timer handlers) by walking the PR 8 call graph, and flags
// allocation idioms inside it:
//
//   - fmt/log formatting and errors.New on non-error paths
//   - interface boxing at call sites (concrete non-pointer → interface)
//   - capturing closures (each creation heap-allocates its environment)
//   - heap-escaping &composite literals (summary-aware: an argument is
//     escaping only when the callee may retain it)
//   - growing append on fresh, non-pooled buffers
//   - string ↔ []byte conversions outside the compiler-optimized forms
//   - map iteration (randomized order, cache-hostile) and defer in loops
//     (heap-allocated defer records)
//
// Error and panic branches are exempt: a branch that exists to construct
// and return an error may allocate — that path runs once per failure,
// not once per event. The companion `hiplint -budget` mode (budget.go)
// closes the gap this AST-level view can't see by ingesting the
// compiler's own escape and bounds-check diagnostics for the same hot
// set.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "allocation, boxing and iteration-order idioms inside the declared hot set",
	Run:  runHotPath,
}

// HotRoot declares one hot-set root by package name, receiver type name
// ("" for plain functions) and function name. Package *names* (not
// import paths) are matched so the testdata fixtures, which re-declare
// `package netsim` under another import path, exercise the same
// predicate as the real tree.
type HotRoot struct {
	Pkg  string
	Recv string
	Func string
}

// DefaultHotRoots is the explicit hot-set contract, mirrored in
// DESIGN.md §5a: the run-to-completion event dispatch and timer wheel
// (netsim), the rx/tx packet paths, the simtcp/hipsim kick/service
// pumps, the ESP and TLS record seal/open fast paths, and the HIP
// packet/timer handlers. Everything statically reachable from these is
// hot; a function joins through interface dispatch only when the
// dispatch *must* land on it (single module implementor — PR 8's
// must-semantics, so a cold alternate implementor does not drag its
// siblings in, and an ambiguous call site condemns nobody).
var DefaultHotRoots = []HotRoot{
	{"netsim", "Sim", "Run"},
	{"netsim", "Sim", "fire"},
	{"netsim", "Sim", "scheduleDeliver"},
	{"netsim", "Sim", "scheduleWake"},
	{"netsim", "Timer", "Reset"},
	{"netsim", "Node", "SendRaw"},
	{"netsim", "Node", "receive"},
	{"netsim", "UDPSocket", "SendTo"},
	{"simtcp", "Stack", "deliver"},
	{"simtcp", "Stack", "kick"},
	{"simtcp", "Stack", "service"},
	{"simtcp", "Stack", "chargeDone"},
	{"hipsim", "Fabric", "kick"},
	{"hipsim", "Fabric", "service"},
	{"hipsim", "Fabric", "chargeDone"},
	{"esp", "OutboundSA", "SealAppend"},
	{"esp", "InboundSA", "OpenAppend"},
	{"tlslite", "Conn", "Write"},
	{"tlslite", "Conn", "Read"},
	{"tlslite", "Conn", "sealRecordAppend"},
	{"tlslite", "Conn", "openRecordInPlace"},
	{"hip", "Host", "OnPacket"},
	{"hip", "Host", "OnTimer"},
}

// HotInfo records how one function joined the hot set.
type HotInfo struct {
	Fn *types.Func
	// Via is the call chain from a declared root down to this function,
	// root first, capped for narration like Reach chains.
	Via []string
}

func (hi *HotInfo) chain() string { return strings.Join(hi.Via, " → ") }

// HotSet returns the transitive hot set from DefaultHotRoots, memoized
// on the program. Edges follow statically resolved module calls; an
// interface call contributes an edge only when exactly one module method
// implements it (must-dispatch). Calls through plain func values resolve
// to nothing — the run-to-completion core is closure-free by design, and
// the roots are declared per layer precisely because dynamic hops are
// lossy.
func (p *Program) HotSet() map[*types.Func]*HotInfo {
	if p.hotSet != nil {
		return p.hotSet
	}
	hot := make(map[*types.Func]*HotInfo)
	var queue []*types.Func
	for _, fn := range p.order {
		fi := p.fns[fn]
		for _, r := range DefaultHotRoots {
			if fi.pkg.Name == r.Pkg && fn.Name() == r.Func && recvTypeName(fn) == r.Recv {
				hot[fn] = &HotInfo{Fn: fn, Via: []string{hotFnName(fn)}}
				queue = append(queue, fn)
			}
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fi := p.fns[fn]
		base := hot[fn].Via
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, cand := range p.hotCallees(fi.pkg.Info, call) {
				if hot[cand] != nil {
					continue
				}
				via := append(append([]string(nil), base...), hotFnName(cand))
				if len(via) > 6 {
					via = append(via[:1], via[len(via)-5:]...)
				}
				hot[cand] = &HotInfo{Fn: cand, Via: via}
				queue = append(queue, cand)
			}
			return true
		})
	}
	p.hotSet = hot
	return hot
}

// hotCallees returns the module functions a call pulls into the hot set:
// the static callee when declared in the program, or — for interface
// dispatch — the single module implementor when dispatch is unambiguous.
func (p *Program) hotCallees(info *types.Info, call *ast.CallExpr) []*types.Func {
	fn := calleeFunc(info, call)
	if fn != nil {
		if _, ok := p.fns[fn]; ok {
			return []*types.Func{fn}
		}
	}
	cands := p.resolveCall(info, call)
	if len(cands) == 1 {
		return cands
	}
	return nil
}

func hotFnName(fn *types.Func) string {
	if r := recvTypeName(fn); r != "" {
		return r + "." + fn.Name()
	}
	return fn.Name()
}

func runHotPath(pass *Pass) {
	hot := pass.Prog.HotSet()
	for _, fn := range pass.Prog.order {
		hi, ok := hot[fn]
		if !ok {
			continue
		}
		fi := pass.Prog.fns[fn]
		if fi.pkg != pass.Pkg {
			continue
		}
		(&hotWalker{
			pass: pass,
			prog: pass.Prog,
			info: fi.pkg.Info,
			decl: fi.decl,
			hi:   hi,
		}).check()
	}
}

// hotWalker checks one hot function body.
type hotWalker struct {
	pass *Pass
	prog *Program
	info *types.Info
	decl *ast.FuncDecl
	hi   *HotInfo

	cold       map[ast.Node]bool       // blocks exempt as error/panic paths
	exemptConv map[ast.Expr]bool       // conversions in compiler-optimized positions
	parents    map[ast.Node]ast.Node   // expression parent links, for escape context
	fresh      map[types.Object]bool   // locals that only ever hold a fresh empty slice
	loops      []*ast.BlockStmt        // loop bodies, for defer-in-loop
	flagged    map[*ast.CallExpr]bool  // calls already reported (skip double-tagging)
}

func (hw *hotWalker) report(pos token.Pos, format string, args ...interface{}) {
	args = append(args, hw.hi.chain())
	hw.pass.Reportf(pos, format+" (hot via %s)", args...)
}

func (hw *hotWalker) check() {
	hw.cold = coldBlocks(hw.info, hw.decl)
	hw.flagged = make(map[*ast.CallExpr]bool)
	hw.prescan()

	ast.Inspect(hw.decl.Body, func(n ast.Node) bool {
		if hw.cold[n] {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			return hw.call(x)
		case *ast.RangeStmt:
			if isMapRange(hw.info, x) {
				hw.report(x.Pos(), "map iteration on the hot path: order is randomized and cache-hostile; iterate a slice or insertion-ordered view")
			}
		case *ast.DeferStmt:
			if hw.inLoop(x.Pos()) {
				hw.report(x.Pos(), "defer inside a loop heap-allocates a defer record per iteration; hoist it out of the loop or unlock explicitly")
			}
		case *ast.FuncLit:
			if caps := capturedVars(hw.info, hw.decl, x); len(caps) > 0 {
				hw.report(x.Pos(), "closure capturing %s allocates its environment per creation on the hot path; use a method value on pre-allocated state or pass data explicitly", strings.Join(caps, ", "))
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					hw.escapingComposite(x, lit)
				}
			}
		}
		return true
	})
}

// prescan walks the body once collecting the context the per-node checks
// need: parent links, loop body spans, compiler-optimized conversion
// positions, and fresh-empty slice locals.
func (hw *hotWalker) prescan() {
	hw.exemptConv = make(map[ast.Expr]bool)
	hw.parents = make(map[ast.Node]ast.Node)
	hw.fresh = make(map[types.Object]bool)
	poisoned := make(map[types.Object]bool)

	var stack []ast.Node
	ast.Inspect(hw.decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			hw.parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)

		switch x := n.(type) {
		case *ast.ForStmt:
			hw.loops = append(hw.loops, x.Body)
		case *ast.RangeStmt:
			hw.loops = append(hw.loops, x.Body)
			hw.exemptConv[ast.Unparen(x.X)] = true
		case *ast.IndexExpr:
			if tv, ok := hw.info.Types[x.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					hw.exemptConv[ast.Unparen(x.Index)] = true
				}
			}
		case *ast.BinaryExpr:
			switch x.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
				hw.exemptConv[ast.Unparen(x.X)] = true
				hw.exemptConv[ast.Unparen(x.Y)] = true
			}
		case *ast.SwitchStmt:
			if x.Tag != nil {
				hw.exemptConv[ast.Unparen(x.Tag)] = true
			}
		case *ast.DeclStmt:
			// var x []T with no initializer: a fresh empty slice.
			if gd, ok := x.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) != 0 {
						continue
					}
					for _, name := range vs.Names {
						if obj := hw.info.Defs[name]; obj != nil && isSliceObj(obj) {
							hw.fresh[obj] = true
						}
					}
				}
			}
		case *ast.AssignStmt:
			hw.scanAssign(x, poisoned)
		}
		return true
	})
	for obj := range poisoned {
		delete(hw.fresh, obj)
	}
}

// scanAssign tracks which slice locals are guaranteed fresh-and-growing:
// assigned only empty literals/nil or self-appends. Any other source
// (a parameter, a pool buffer, a sized make, a field) poisons the local.
func (hw *hotWalker) scanAssign(as *ast.AssignStmt, poisoned map[types.Object]bool) {
	if len(as.Lhs) != len(as.Rhs) {
		for _, lhs := range as.Lhs {
			if obj := identObj(hw.info, lhs); obj != nil && isSliceObj(obj) {
				poisoned[obj] = true
			}
		}
		return
	}
	for i, lhs := range as.Lhs {
		obj := identObj(hw.info, lhs)
		if obj == nil || !isSliceObj(obj) {
			continue
		}
		rhs := ast.Unparen(as.Rhs[i])
		switch {
		case isEmptyCompositeOrNil(hw.info, rhs):
			hw.fresh[obj] = true
		case isSelfAppend(hw.info, rhs, obj):
			// append(x, ...) back into x: keeps fresh status.
		default:
			poisoned[obj] = true
		}
	}
}

func (hw *hotWalker) inLoop(pos token.Pos) bool {
	for _, b := range hw.loops {
		if b.Pos() <= pos && pos <= b.End() {
			return true
		}
	}
	return false
}

// call dispatches the per-call checks. Returns false to skip the
// subtree (panic arguments are error-path by definition).
func (hw *hotWalker) call(call *ast.CallExpr) bool {
	info := hw.info
	if isBuiltinCall(info, call, "panic") {
		return false
	}
	if isBuiltinCall(info, call, "append") {
		hw.appendCheck(call)
		return true
	}
	// Conversions: string ↔ []byte outside optimized positions.
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		hw.convCheck(call, tv.Type)
		return true
	}
	fn := calleeFunc(info, call)
	if fn != nil && isFormatAlloc(fn) {
		hw.report(call.Pos(), "%s.%s allocates on the hot path; format into a reusable buffer, precompute the string, or move this to an error branch", fn.Pkg().Name(), fn.Name())
		hw.flagged[call] = true
		return true
	}
	hw.boxingCheck(call, fn)
	return true
}

// isFormatAlloc reports whether fn is a formatting/error constructor that
// allocates per call: the whole fmt API, log emission, errors.New.
func isFormatAlloc(fn *types.Func) bool {
	switch pkgPathOf(fn) {
	case "fmt":
		return true
	case "log":
		return true
	case "errors":
		return fn.Name() == "New"
	}
	return false
}

// boxingCheck flags concrete non-pointer values converted to interface
// parameters at a call site: each conversion heap-allocates the boxed
// copy. Pointer-shaped values (pointers, maps, chans, funcs) fit in the
// interface word directly, and constants are materialized in static data.
func (hw *hotWalker) boxingCheck(call *ast.CallExpr, fn *types.Func) {
	if hw.flagged[call] {
		return
	}
	var sig *types.Signature
	if fn != nil {
		sig, _ = fn.Type().(*types.Signature)
	} else if tv, ok := hw.info.Types[ast.Unparen(call.Fun)]; ok && tv.Type != nil {
		sig, _ = tv.Type.Underlying().(*types.Signature)
	}
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i, call.Ellipsis.IsValid())
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		tv, ok := hw.info.Types[arg]
		if !ok || tv.Type == nil || tv.Value != nil {
			continue // unknown or constant (static iface data)
		}
		at := tv.Type
		if _, already := at.Underlying().(*types.Interface); already {
			continue
		}
		if isPointerShaped(at) || isUntypedNil(at) {
			continue
		}
		hw.report(arg.Pos(), "boxing %s into %s allocates per call on the hot path; keep the concrete type or pass a pointer to reused state", types.TypeString(at, types.RelativeTo(hw.pass.Pkg.Types)), types.TypeString(pt, types.RelativeTo(hw.pass.Pkg.Types)))
	}
}

// paramTypeAt returns the type call argument i is assigned to, expanding
// variadics (for a non-... call the variadic slot contributes its element
// type; for f(xs...) the final argument is the slice itself).
func paramTypeAt(sig *types.Signature, i int, ellipsis bool) types.Type {
	np := sig.Params().Len()
	if np == 0 {
		return nil
	}
	if sig.Variadic() && i >= np-1 {
		last := sig.Params().At(np - 1).Type()
		if ellipsis && i == np-1 {
			return last
		}
		if s, ok := last.Underlying().(*types.Slice); ok {
			return s.Elem()
		}
		return last
	}
	if i >= np {
		return nil
	}
	return sig.Params().At(i).Type()
}

func (hw *hotWalker) appendCheck(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dst := ast.Unparen(call.Args[0])
	if isEmptyCompositeOrNil(hw.info, dst) {
		hw.report(call.Pos(), "append onto a fresh empty slice allocates and grows on the hot path; reuse a pooled or pre-sized buffer")
		return
	}
	if obj := identObj(hw.info, dst); obj != nil && hw.fresh[obj] {
		hw.report(call.Pos(), "append grows %s, a fresh unpooled buffer, on the hot path; take a pooled buffer (netsim.GetBuf) or a pre-sized scratch field", obj.Name())
	}
}

func (hw *hotWalker) convCheck(call *ast.CallExpr, dst types.Type) {
	arg := call.Args[0]
	src, ok := hw.info.Types[arg]
	if !ok || src.Type == nil {
		return
	}
	if hw.exemptConv[ast.Unparen(call)] {
		return // m[string(b)], comparisons, range, switch: compiler-optimized
	}
	switch {
	case isStringType(dst) && isByteSliceType(src.Type):
		hw.report(call.Pos(), "string(b) conversion copies on the hot path; keep the []byte, or use it directly as a map key/comparison operand (those forms don't allocate)")
	case isByteSliceType(dst) && isStringType(src.Type):
		hw.report(call.Pos(), "[]byte(s) conversion copies on the hot path; keep data as []byte end to end")
	}
}

// escapingComposite flags &T{...} whose pointer leaves the frame: stored
// into heap state, sent, retained by a callee (per its PR 8 summary), or
// handed to code the analyzer can't see. A pointer that stays in locals
// is left to the compiler's escape analysis (and to the -budget gate,
// which reads the compiler's verdict directly). Returned composites are
// deliberately not flagged: `return &T{...}` is the constructor idiom,
// and whether the result is amortized state or per-event garbage is the
// caller's property — the budget layer tracks those escapes per function.
func (hw *hotWalker) escapingComposite(unary *ast.UnaryExpr, lit *ast.CompositeLit) {
	var child ast.Node = unary
	parent := hw.parents[child]
	for {
		if p, ok := parent.(*ast.ParenExpr); ok {
			child = p
			parent = hw.parents[p]
			continue
		}
		break
	}
	typeName := "composite literal"
	if tv, ok := hw.info.Types[lit]; ok && tv.Type != nil {
		typeName = "&" + types.TypeString(tv.Type, types.RelativeTo(hw.pass.Pkg.Types)) + "{...}"
	}
	switch p := parent.(type) {
	case *ast.CallExpr:
		if ast.Unparen(p.Fun) == child {
			return
		}
		if hw.calleeRetains(p, child) {
			hw.report(unary.Pos(), "%s escapes through this call (callee may retain it), heap-allocating per event on the hot path; reuse pooled or pre-allocated state", typeName)
		}
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if ast.Unparen(rhs) != child || i >= len(p.Lhs) {
				continue
			}
			switch ast.Unparen(p.Lhs[i]).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				hw.report(unary.Pos(), "%s stored into heap state heap-allocates per event on the hot path; reuse a pooled object or a pre-allocated field", typeName)
			}
		}
	case *ast.SendStmt:
		hw.report(unary.Pos(), "%s sent on a channel escapes to the heap on the hot path", typeName)
	case *ast.KeyValueExpr, *ast.CompositeLit:
		hw.report(unary.Pos(), "%s nested in a composite escapes to the heap on the hot path", typeName)
	}
}

// calleeRetains decides whether passing ptr as an argument of call lets
// the callee keep it: unknown/stdlib/dynamic callees are assumed to
// retain; module callees retain only when some resolved candidate's
// summary marks that parameter ParamRetained.
func (hw *hotWalker) calleeRetains(call *ast.CallExpr, arg ast.Node) bool {
	if isBuiltinCall(hw.info, call, "append") {
		return true // retained by the destination slice
	}
	idx := -1
	for i, a := range call.Args {
		if ast.Unparen(a) == arg {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	cands := hw.prog.resolveCall(hw.info, call)
	if len(cands) == 0 {
		return true // stdlib, dynamic or unresolved: assume the worst
	}
	for _, cand := range cands {
		sum := hw.prog.SummaryOf(cand)
		if sum == nil {
			return true
		}
		slot := idx
		if sig, ok := cand.Type().(*types.Signature); ok && sig.Recv() != nil {
			slot++
		}
		if sum.paramFacts(slot)&ParamRetained != 0 {
			return true
		}
	}
	return false
}

// --- cold-path computation -------------------------------------------

// coldBlocks marks the error/panic branches of a function: an if-body
// guarded by `err != nil` (or the else of `err == nil`), an if-body
// guarded by a nil-check on a package-level variable (debug/trace hooks
// like netsim.DebugLog default to nil; the guarded branch is
// configuration-dependent, off in production and benchmarks), and any
// block whose final statement panics or returns a non-nil error.
// Allocations there run once per failure, not once per event, and are
// exempt.
func coldBlocks(info *types.Info, decl *ast.FuncDecl) map[ast.Node]bool {
	cold := make(map[ast.Node]bool)
	errResult := funcReturnsError(info, decl)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		switch errNilGuard(info, ifs.Cond) {
		case guardErrNonNil:
			cold[ifs.Body] = true
		case guardErrNil:
			if blk, ok := ifs.Else.(*ast.BlockStmt); ok {
				cold[blk] = true
			}
		}
		if pkgVarNonNilGuard(info, ifs.Cond) {
			cold[ifs.Body] = true
		}
		if blockEndsCold(info, ifs.Body, errResult) {
			cold[ifs.Body] = true
		}
		if blk, ok := ifs.Else.(*ast.BlockStmt); ok && blockEndsCold(info, blk, errResult) {
			cold[blk] = true
		}
		return true
	})
	return cold
}

type guardKind int

const (
	guardNone guardKind = iota
	guardErrNonNil
	guardErrNil
)

// errNilGuard classifies `x != nil` / `x == nil` conditions where x is an
// error.
func errNilGuard(info *types.Info, cond ast.Expr) guardKind {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (b.Op != token.NEQ && b.Op != token.EQL) {
		return guardNone
	}
	var other ast.Expr
	switch {
	case isNilIdent(b.X):
		other = b.Y
	case isNilIdent(b.Y):
		other = b.X
	default:
		return guardNone
	}
	tv, ok := info.Types[other]
	if !ok || tv.Type == nil || !isErrorType(tv.Type) {
		return guardNone
	}
	if b.Op == token.NEQ {
		return guardErrNonNil
	}
	return guardErrNil
}

// pkgVarNonNilGuard matches `v != nil` where v is a package-level
// variable: the optional-hook pattern (DebugLog, trace writers) whose
// guarded branch is off unless explicitly wired up.
func pkgVarNonNilGuard(info *types.Info, cond ast.Expr) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != token.NEQ {
		return false
	}
	var other ast.Expr
	switch {
	case isNilIdent(b.X):
		other = b.Y
	case isNilIdent(b.Y):
		other = b.X
	default:
		return false
	}
	obj := identObj(info, other)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// blockEndsCold reports whether a block's last statement panics or
// returns a non-nil error.
func blockEndsCold(info *types.Info, blk *ast.BlockStmt, errResultIdx int) bool {
	if len(blk.List) == 0 {
		return false
	}
	switch last := blk.List[len(blk.List)-1].(type) {
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok && isBuiltinCall(info, call, "panic") {
			return true
		}
	case *ast.ReturnStmt:
		if errResultIdx < 0 || errResultIdx >= len(last.Results) {
			return false
		}
		return !isNilIdent(last.Results[errResultIdx])
	}
	return false
}

// funcReturnsError returns the index of decl's error result, or -1.
func funcReturnsError(info *types.Info, decl *ast.FuncDecl) int {
	if decl.Type.Results == nil {
		return -1
	}
	idx := 0
	for _, f := range decl.Type.Results.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		if tv, ok := info.Types[f.Type]; ok && tv.Type != nil && isErrorType(tv.Type) {
			return idx + n - 1
		}
		idx += n
	}
	return -1
}

// --- small predicates -------------------------------------------------

func isErrorType(t types.Type) bool {
	return types.Implements(t, types.Universe.Lookup("error").Type().Underlying().(*types.Interface)) &&
		types.IsInterface(t)
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isPointerShaped reports whether a value of type t fits the interface
// data word directly, so converting it to an interface does not allocate.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}

func isSliceObj(obj types.Object) bool {
	_, ok := obj.Type().Underlying().(*types.Slice)
	return ok
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// isEmptyCompositeOrNil matches []T{}, []T(nil) and nil.
func isEmptyCompositeOrNil(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name == "nil"
	case *ast.CompositeLit:
		if _, ok := info.Types[x].Type.Underlying().(*types.Slice); ok {
			return len(x.Elts) == 0
		}
	case *ast.CallExpr:
		if tv, ok := info.Types[ast.Unparen(x.Fun)]; ok && tv.IsType() && len(x.Args) == 1 {
			return isNilIdent(x.Args[0])
		}
	}
	return false
}

// isSelfAppend matches append(obj, ...) growing obj itself.
func isSelfAppend(info *types.Info, e ast.Expr, obj types.Object) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || !isBuiltinCall(info, call, "append") || len(call.Args) == 0 {
		return false
	}
	return identObj(info, call.Args[0]) == obj
}

// capturedVars lists the enclosing function's variables a literal
// captures by reference (anything declared in the enclosing function but
// outside the literal). A literal capturing nothing compiles to a static
// funcval and is free.
func capturedVars(info *types.Info, decl *ast.FuncDecl, lit *ast.FuncLit) []string {
	var names []string
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || seen[obj] {
			return true
		}
		if v.Pos() >= decl.Pos() && v.Pos() < decl.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			seen[obj] = true
			names = append(names, v.Name())
		}
		return true
	})
	return names
}
