package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the quoted expectation patterns from a // want comment.
var wantRe = regexp.MustCompile(`"([^"]*)"`)

// loadFixture type-checks one testdata/src package.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	return pkgs[0]
}

// checkFixture runs the analyzer over the fixture package and verifies
// its diagnostics against the fixture's // want comments:
//
//	stmt() // want "regexp" "another"
//
// expects matching diagnostics on that line;
//
//	// want:+1 "regexp"
//
// expects one on the following line (used when the flagged line is
// itself a comment, e.g. a malformed //lint:allow). Every diagnostic
// must be wanted and every want matched — so deleting an analyzer's
// detection logic fails the test.
func checkFixture(t *testing.T, fixture string, analyzer *Analyzer) {
	t.Helper()
	checkPkgs(t, fixture, []*Package{loadFixture(t, fixture)}, analyzer)
}

// checkFixtureMulti loads every package under testdata/src/<fixture>/...
// into one shared Program before checking // want comments across all of
// them: the harness for cross-package interprocedural cases, where the
// flagged call site and the summarized callee live in different packages.
func checkFixtureMulti(t *testing.T, fixture string, analyzer *Analyzer) {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(filepath.Join("testdata", "src", fixture) + "/...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	if len(pkgs) < 2 {
		t.Fatalf("fixture %s: got %d packages, want at least 2 (use checkFixture for single-package fixtures)", fixture, len(pkgs))
	}
	checkPkgs(t, fixture, pkgs, analyzer)
}

func checkPkgs(t *testing.T, fixture string, pkgs []*Package, analyzer *Analyzer) {
	t.Helper()

	type lineKey struct {
		file string
		line int
	}
	type want struct {
		re   *regexp.Regexp
		used bool
	}
	wants := make(map[lineKey][]*want)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "// want")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					line := pos.Line
					if rest, ok := strings.CutPrefix(text, ":+1"); ok {
						line++
						text = rest
					}
					for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						k := lineKey{pos.Filename, line}
						wants[k] = append(wants[k], &want{re: re})
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want expectations", fixture)
	}

	for _, d := range RunProgram(NewProgram(pkgs), []*Analyzer{analyzer}) {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w.re)
			}
		}
	}
}

func TestBufOwnFixture(t *testing.T)      { checkFixture(t, "bufown", BufOwn) }
func TestAppendAliasFixture(t *testing.T) { checkFixture(t, "appendalias", AppendAlias) }
func TestSimDetFixture(t *testing.T)      { checkFixture(t, "simdet", SimDet) }
func TestSchedBlockFixture(t *testing.T)  { checkFixture(t, "schedblock", SchedBlock) }
func TestCTCompareFixture(t *testing.T)   { checkFixture(t, "ctcompare", CTCompare) }
func TestLockedSendFixture(t *testing.T)  { checkFixture(t, "lockedsend", LockedSend) }
func TestSecFlowFixture(t *testing.T)     { checkFixture(t, "secflow", SecFlow) }
func TestLockOrderFixture(t *testing.T)   { checkFixture(t, "lockorder", LockOrder) }
func TestHotPathFixture(t *testing.T)     { checkFixture(t, "hotpath", HotPath) }
func TestHotSetFixture(t *testing.T)      { checkFixture(t, "hotset", HotPath) }

// TestSimDetInterprocFixture spans two packages: the virtual-time caller
// package is flagged for wall-clock access it can only reach through the
// summarized helper package.
func TestSimDetInterprocFixture(t *testing.T) { checkFixtureMulti(t, "wallclock", SimDet) }

// TestSuppressFixture proves //lint:allow semantics: a justified waiver
// silences exactly one simdet diagnostic, an identical violation without
// one still fires, and a reason-less waiver is itself reported.
func TestSuppressFixture(t *testing.T) { checkFixture(t, "suppress", SimDet) }
