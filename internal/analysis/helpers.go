package analysis

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the static *types.Func a call targets, or nil for
// dynamic calls (func-valued variables, fields, parameters), conversions
// and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fn].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fn.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isDynamicCall reports whether call invokes a func-typed value (a
// callback) rather than a statically known function, method, conversion
// or builtin.
func isDynamicCall(info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	var obj types.Object
	switch fn := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	default:
		// Calling the result of an expression (f()(), m[k](), ...).
		tv, ok := info.Types[fun]
		if !ok {
			return false
		}
		_, isSig := tv.Type.Underlying().(*types.Signature)
		return isSig
	}
	if obj == nil {
		return false
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return false
	}
	_, isSig := obj.Type().Underlying().(*types.Signature)
	return isSig
}

// pkgPathOf returns the import path of the package declaring fn, or "".
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// recvTypeName returns the bare name of fn's receiver's named type
// ("*esp.OutboundSA" -> "OutboundSA"), or "" for plain functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// rootChain reduces an expression to the access chain it reads from:
// unwrapping parens, slicing, indexing and address-of down to a dotted
// path of identifiers ("b", "s.buf"). It returns the chain as a string
// plus the base identifier's object, or ("", nil) when the expression
// does not bottom out in an identifier (calls, literals, nil).
//
// Two slice expressions can share a backing array only if their chains
// agree on the same base object — the approximation the appendalias
// check is built on.
func rootChain(info *types.Info, e ast.Expr) (string, types.Object) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return rootChain(info, x.X)
	case *ast.SliceExpr:
		return rootChain(info, x.X)
	case *ast.IndexExpr:
		return rootChain(info, x.X)
	case *ast.StarExpr:
		return rootChain(info, x.X)
	case *ast.UnaryExpr:
		return rootChain(info, x.X)
	case *ast.SelectorExpr:
		chain, base := rootChain(info, x.X)
		if base == nil {
			return "", nil
		}
		return chain + "." + x.Sel.Name, base
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if obj == nil {
			return "", nil
		}
		return x.Name, obj
	}
	return "", nil
}

// sameRoot reports whether a and b resolve to the same access chain on
// the same base object (so their backing arrays may alias).
func sameRoot(info *types.Info, a, b ast.Expr) bool {
	ca, oa := rootChain(info, a)
	cb, ob := rootChain(info, b)
	return oa != nil && oa == ob && ca == cb
}

// isBuiltinCall reports whether call invokes the named builtin
// (append, make, copy, ...). Builtin identifiers resolve to
// *types.Builtin objects in Uses, or to nil for make/new in some
// positions.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		return true
	}
	_, isB := obj.(*types.Builtin)
	return isB
}

// isByteSliceType reports whether t's underlying type is []byte.
func isByteSliceType(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
