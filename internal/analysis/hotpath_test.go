package analysis

import (
	"sort"
	"testing"
)

// TestHotSetMustSemantics pins the hot-set propagation rules on the
// hotset fixture: static module calls and single-implementor interface
// dispatch join the set; ambiguous (multi-implementor) dispatch and
// unreachable functions do not.
func TestHotSetMustSemantics(t *testing.T) {
	pkg := loadFixture(t, "hotset")
	prog := NewProgram([]*Package{pkg})
	hot := prog.HotSet()

	byName := make(map[string]*HotInfo)
	for fn, hi := range hot {
		byName[hotFnName(fn)] = hi
	}
	have := make([]string, 0, len(byName))
	for n := range byName {
		have = append(have, n)
	}
	sort.Strings(have)

	for _, want := range []string{"Sim.Run", "only.Handle", "onlyReached", "direct"} {
		if byName[want] == nil {
			t.Errorf("hot set missing %s; have %v", want, have)
		}
	}
	for _, not := range []string{"impl1.Do", "impl2.Do", "implReached", "orphan"} {
		if hi := byName[not]; hi != nil {
			t.Errorf("%s must not be hot (ambiguous dispatch or unreachable); via %v", not, hi.Via)
		}
	}

	// The narration chain is rooted at the declared root.
	if hi := byName["onlyReached"]; hi != nil {
		if len(hi.Via) < 2 || hi.Via[0] != "Sim.Run" || hi.Via[len(hi.Via)-1] != "onlyReached" {
			t.Errorf("onlyReached via = %v, want a chain from Sim.Run down to onlyReached", hi.Via)
		}
	}
	if hi := byName["Sim.Run"]; hi != nil {
		if len(hi.Via) != 1 || hi.Via[0] != "Sim.Run" {
			t.Errorf("root via = %v, want [Sim.Run]", hi.Via)
		}
	}

	// Memoized: a second call returns the identical map.
	if again := prog.HotSet(); len(again) != len(hot) {
		t.Errorf("HotSet not stable across calls: %d then %d entries", len(hot), len(again))
	}
}

// TestHotSetRootsResolve runs the hot set over the fixture and checks
// that only root-shaped functions seed it: the fixture's Sim.Run matches
// the declared netsim root, while same-name functions on the wrong
// receiver would not (orphan has no receiver and is not a root name).
func TestHotSetRootsResolve(t *testing.T) {
	pkg := loadFixture(t, "hotpath")
	prog := NewProgram([]*Package{pkg})
	hot := prog.HotSet()
	if len(hot) == 0 {
		t.Fatal("hotpath fixture produced an empty hot set; Sim.Run should seed it")
	}
	for fn, hi := range hot {
		if len(hi.Via) == 0 || hi.Via[0] != "Sim.Run" {
			t.Errorf("%s joined the hot set via %v; the fixture's only root is Sim.Run", hotFnName(fn), hi.Via)
		}
	}
	byName := make(map[string]bool)
	for fn := range hot {
		byName[hotFnName(fn)] = true
	}
	if byName["buildIndex"] {
		t.Error("buildIndex is unreachable from Sim.Run and must not be hot")
	}
	if !byName["Sim.validate"] {
		t.Error("Sim.validate is reached from Sim.Run through Sim.coldPaths and must be hot")
	}
}
