package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SimDet enforces determinism inside the virtual-time packages: the
// simulator's whole value (netsim's package doc, EXPERIMENTS.md) rests on
// runs being bit-identical for a fixed seed, so those packages must not
// read the wall clock, draw from the globally seeded math/rand, or let
// Go's randomized map iteration order decide the order packets and
// events are emitted.
//
// Wall-clock packages (hipudp, cmd/*, examples) are exempt by config:
// they drive real sockets and real time on purpose.
var SimDet = &Analyzer{
	Name: "simdet",
	Doc:  "wall-clock, global math/rand and map-order-dependent emission in virtual-time packages",
	Run:  runSimDet,
}

// virtualTimePkgs names the packages that run on simulated time; keyed by
// package name, so the testdata fixtures (which declare `package netsim`
// under a different import path) exercise the same predicate.
var virtualTimePkgs = map[string]bool{
	"netsim":      true,
	"hipsim":      true,
	"simtcp":      true,
	"stream":      true,
	"experiments": true,
	"faults":      true,
	"hip":         true,
	"cloud":       true,
	"rvs":         true,
	"hipdns":      true,
}

// wallClockFuncs are the time-package functions that read or wait on the
// wall clock. time.Duration arithmetic and constants stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Since": true, "Until": true, "Tick": true, "NewTicker": true, "NewTimer": true,
}

// globalRandFuncs are math/rand's package-level functions, all of which
// draw from the shared, seed-once global source. Constructors (New,
// NewSource, NewZipf) are fine: a locally seeded *rand.Rand is exactly
// what the simulator wants.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true, "Int63": true,
	"Int63n": true, "Uint32": true, "Uint64": true, "Float32": true,
	"Float64": true, "ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Read": true, "Seed": true,
}

// emissionNames are callee names treated as "emits a packet or schedules
// an event": reaching one from inside a map-range makes the emission
// order depend on Go's randomized map iteration.
var emissionNames = map[string]bool{
	"Send": true, "SendTo": true, "SendRaw": true,
	"Emit": true, "emit": true, "Deliver": true, "deliver": true,
	"flush": true, "Flush": true, "Schedule": true, "After": true, "At": true,
}

func runSimDet(pass *Pass) {
	if !virtualTimePkgs[pass.Pkg.Name] {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(info, x)
				if fn == nil {
					return true
				}
				switch pkgPathOf(fn) {
				case "time":
					if wallClockFuncs[fn.Name()] {
						pass.Reportf(x.Pos(), "time.%s reads the wall clock inside a virtual-time package; use the simulator clock (Sim.Now/Proc.Now, Sim.After)", fn.Name())
					}
				case "math/rand":
					if globalRandFuncs[fn.Name()] && isPackageLevelCall(info, x) {
						pass.Reportf(x.Pos(), "global math/rand.%s uses the shared seed-once source; draw from the simulation's seeded *rand.Rand (Sim.Rand)", fn.Name())
					}
				default:
					// Interprocedural: calling out to a module function in a
					// wall-clock package whose summary transitively reaches
					// the clock smuggles nondeterminism in through a helper.
					// Callees in virtual-time packages are flagged at their
					// own direct call site instead. Only statically resolved
					// callees count: a sim run wires sim implementations
					// behind module interfaces, so condemning a call for
					// every implementor (e.g. the real-socket hipudp.Conn)
					// would flag bindings it never takes.
					calleePkg := pass.Prog.pkgNameOf(fn)
					if calleePkg != "" && !virtualTimePkgs[calleePkg] {
						if sum := pass.Prog.SummaryOf(fn); sum != nil && sum.WallClock != nil {
							pass.Reportf(x.Pos(), "call to %s.%s reaches the wall clock (%s) from a virtual-time package; thread the simulator clock through instead", calleePkg, fn.Name(), sum.WallClock.chain())
						}
					}
				}
			case *ast.RangeStmt:
				if !isMapRange(info, x) {
					return true
				}
				if pos, name, found := findEmission(info, x.Body); found {
					pass.Reportf(pos, "%s inside a range over a map: emission order depends on randomized map iteration; iterate a sorted or insertion-ordered view instead", name)
				}
			}
			return true
		})
	}
}

// isPackageLevelCall distinguishes rand.Intn(...) (package function) from
// r.Intn(...) (method on a *rand.Rand, which is fine): the callee must
// have no receiver.
func isPackageLevelCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

func isMapRange(info *types.Info, r *ast.RangeStmt) bool {
	tv, ok := info.Types[r.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// findEmission scans a loop body (nested statements and closures
// included — a closure invoked later still emits in discovery order) for
// a channel send or an emission-named call.
func findEmission(info *types.Info, body *ast.BlockStmt) (pos token.Pos, name string, found bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			pos, name, found = x.Pos(), "channel send", true
		case *ast.CallExpr:
			var callee string
			switch fn := ast.Unparen(x.Fun).(type) {
			case *ast.Ident:
				callee = fn.Name
			case *ast.SelectorExpr:
				callee = fn.Sel.Name
			}
			if emissionNames[callee] {
				pos, name, found = x.Pos(), "call to "+callee, true
			}
		}
		return !found
	})
	return pos, name, found
}
