package analysis

import (
	"go/ast"
	"go/types"
)

// SchedBlock enforces the run-to-completion contract on scheduler-context
// callbacks: a function literal handed to netsim's scheduler entry points
// (Sim.At / Sim.After / Sim.NewTimer / WaitQueue.WaitFn / CPU.UseAsync)
// runs on the scheduler goroutine and must return without blocking — a
// blocked handler deadlocks the whole simulation, since nothing else can
// fire until it returns.
//
// The repo's API convention makes "blocking" checkable: every API that
// can park the caller takes an explicit *netsim.Proc (WaitQueue.Wait,
// CPU.Use, Conn.Read/Write, Dial/Accept, ...), and the one exception is
// the method Proc.Sleep. So inside a scheduler-context literal the check
// flags any call that passes a *Proc argument, plus Proc.Sleep itself.
// Literals passed to Spawn are process context — blocking is their whole
// point — and are skipped, including when spawned from a handler.
var SchedBlock = &Analyzer{
	Name: "schedblock",
	Doc:  "blocking Proc APIs called from run-to-completion scheduler callbacks",
	Run:  runSchedBlock,
}

// schedEntryPoints maps netsim receiver type -> method names whose func
// arguments run in scheduler context.
var schedEntryPoints = map[string]map[string]bool{
	"Sim":       {"At": true, "After": true, "NewTimer": true},
	"WaitQueue": {"WaitFn": true},
	"CPU":       {"UseAsync": true},
}

func runSchedBlock(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if entry := schedEntryName(info, call); entry != "" {
				for _, arg := range call.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						checkSchedBody(pass, info, entry, lit.Body)
					}
				}
			}
			return true
		})
	}
}

// schedEntryName returns "Type.Method" when call registers a
// scheduler-context callback, else "".
func schedEntryName(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || !isNetsimFunc(fn) {
		return ""
	}
	recv := recvTypeName(fn)
	if schedEntryPoints[recv][fn.Name()] {
		return recv + "." + fn.Name()
	}
	return ""
}

// isNetsimFunc reports whether fn is declared in the netsim package (by
// package name, so fixtures declaring `package netsim` exercise the same
// predicate as the real import path).
func isNetsimFunc(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Name() == "netsim"
}

// checkSchedBody walks one scheduler-context body and reports blocking
// calls. Nested literals stay in scheduler context (they can only run if
// the handler invokes or re-registers them) except Spawn bodies, which
// run as processes.
func checkSchedBody(pass *Pass, info *types.Info, entry string, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn != nil && isNetsimFunc(fn) {
			switch {
			case recvTypeName(fn) == "Proc" && fn.Name() == "Spawn",
				recvTypeName(fn) == "Sim" && fn.Name() == "Spawn":
				// The spawned literal runs in process context: skip it.
				// (Other args — the name — can't block; don't descend.)
				return false
			case recvTypeName(fn) == "Proc" && fn.Name() == "Sleep":
				pass.Reportf(call.Pos(), "Proc.Sleep inside a %s callback blocks the scheduler; use Sim.After or a Timer to resume later", entry)
				return true
			}
		}
		for _, arg := range call.Args {
			if isProcPtr(info, arg) {
				name := callDisplayName(fn, call)
				pass.Reportf(call.Pos(), "%s takes a *Proc inside a %s callback: Proc APIs park the caller and would block the scheduler; restructure as events or move the call into a spawned process", name, entry)
				return true
			}
		}
		// Interprocedural: a callee that blocks through a Proc it holds
		// internally (a field, a captured variable) is just as fatal to
		// the scheduler as passing one in.
		for _, cand := range pass.Prog.resolveCall(info, call) {
			if sum := pass.Prog.SummaryOf(cand); sum != nil && sum.Blocks != nil {
				pass.Reportf(call.Pos(), "%s inside a %s callback reaches %s, which parks the calling process and would block the scheduler", callDisplayName(fn, call), entry, sum.Blocks.chain())
				break
			}
		}
		return true
	})
}

// isProcPtr reports whether e's static type is *netsim.Proc.
func isProcPtr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	p, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Proc" && n.Obj().Pkg().Name() == "netsim"
}

// callDisplayName renders a call target for diagnostics: Type.Method,
// plain function name, or "call" for dynamic callees.
func callDisplayName(fn *types.Func, call *ast.CallExpr) string {
	if fn == nil {
		return "dynamic call"
	}
	if r := recvTypeName(fn); r != "" {
		return r + "." + fn.Name()
	}
	return fn.Name()
}
